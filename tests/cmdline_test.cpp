// Tests for the kernel-command-line and sysctl.conf codecs, including a
// parameterized round-trip sweep over random configurations.
#include <string>

#include <gtest/gtest.h>

#include "src/configspace/cmdline.h"
#include "src/configspace/linux_space.h"

namespace wayfinder {
namespace {

class CmdlineFixture : public ::testing::Test {
 protected:
  CmdlineFixture() : space_(BuildLinuxSearchSpace()) {}
  ConfigSpace space_;
};

// ---------------------------------------------------------------------------
// Rendering.

TEST_F(CmdlineFixture, DefaultConfigurationRendersEmpty) {
  Configuration config = space_.DefaultConfiguration();
  EXPECT_EQ(RenderCmdline(config), "");
  EXPECT_EQ(RenderSysctlConf(config), "");
}

TEST_F(CmdlineFixture, BoolOnRendersAsBareFlag) {
  Configuration config = space_.DefaultConfiguration();
  config.Set("nosmt", 1);  // Default off.
  EXPECT_EQ(RenderCmdline(config), "nosmt");
}

TEST_F(CmdlineFixture, BoolOffRendersExplicitZero) {
  Configuration config = space_.DefaultConfiguration();
  config.Set("watchdog", 0);  // Default on.
  EXPECT_EQ(RenderCmdline(config), "watchdog=0");
}

TEST_F(CmdlineFixture, StringRendersChoiceText) {
  Configuration config = space_.DefaultConfiguration();
  size_t index = *space_.Find("mitigations");
  // Choice 1 is "off".
  config.SetRaw(index, 1);
  std::string cmdline = RenderCmdline(config);
  EXPECT_EQ(cmdline, "mitigations=off");
}

TEST_F(CmdlineFixture, RuntimeParamsNeverAppearOnTheCmdline) {
  Configuration config = space_.DefaultConfiguration();
  config.Set("net.core.somaxconn", 4096);
  EXPECT_EQ(RenderCmdline(config), "");
  EXPECT_NE(RenderSysctlConf(config).find("net.core.somaxconn = 4096"), std::string::npos);
}

TEST_F(CmdlineFixture, BootParamsNeverAppearInSysctl) {
  Configuration config = space_.DefaultConfiguration();
  config.Set("nosmt", 1);
  EXPECT_EQ(RenderSysctlConf(config), "");
}

TEST_F(CmdlineFixture, SysctlRendersBoolsNumerically) {
  Configuration config = space_.DefaultConfiguration();
  config.Set("net.ipv4.tcp_tw_reuse", 1);  // Default off.
  EXPECT_NE(RenderSysctlConf(config).find("net.ipv4.tcp_tw_reuse = 1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Parsing.

TEST_F(CmdlineFixture, ParsesFlagsValuesAndQuotes) {
  ConfigParseResult result =
      ParseCmdline(space_, "nosmt loglevel=7 mitigations=\"auto,nosmt\"");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.config.Get("nosmt"), 1);
  EXPECT_EQ(result.config.Get("loglevel"), 7);
  size_t index = *space_.Find("mitigations");
  EXPECT_EQ(space_.Param(index).FormatValue(result.config.Raw(index)), "auto,nosmt");
}

TEST_F(CmdlineFixture, UnknownTokensAreCollectedNotFatal) {
  ConfigParseResult result = ParseCmdline(space_, "console=ttyS0 nosmt ro root=/dev/vda1");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.config.Get("nosmt"), 1);
  ASSERT_EQ(result.unknown.size(), 3u);
  EXPECT_EQ(result.unknown[0], "console");
  EXPECT_EQ(result.unknown[1], "ro");
  EXPECT_EQ(result.unknown[2], "root");
}

TEST_F(CmdlineFixture, MalformedNumberIsAnError) {
  ConfigParseResult result = ParseCmdline(space_, "loglevel=verbose");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("loglevel"), std::string::npos);
}

TEST_F(CmdlineFixture, OutOfRangeValueIsAnError) {
  ConfigParseResult result = ParseCmdline(space_, "loglevel=99");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("range"), std::string::npos);
}

TEST_F(CmdlineFixture, BareFlagOnNonBoolIsAnError) {
  ConfigParseResult result = ParseCmdline(space_, "loglevel");
  EXPECT_FALSE(result.ok);
}

TEST_F(CmdlineFixture, UnterminatedQuoteIsAnError) {
  ConfigParseResult result = ParseCmdline(space_, "mitigations=\"off");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("quote"), std::string::npos);
}

TEST_F(CmdlineFixture, UnknownStringChoiceIsAnError) {
  ConfigParseResult result = ParseCmdline(space_, "mitigations=nonsense");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("choice"), std::string::npos);
}

TEST_F(CmdlineFixture, EmptyAndWhitespaceCmdlinesParse) {
  EXPECT_TRUE(ParseCmdline(space_, "").ok);
  EXPECT_TRUE(ParseCmdline(space_, "   \t  ").ok);
}

TEST_F(CmdlineFixture, SysctlParsesCommentsAndSpacing) {
  ConfigParseResult result = ParseSysctlConf(space_,
                                             "# tuning profile\n"
                                             "\n"
                                             "net.core.somaxconn = 4096\n"
                                             "net.ipv4.tcp_tw_reuse=1   ; inline comment\n"
                                             "  vm.swappiness   =   10\n");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.config.Get("net.core.somaxconn"), 4096);
  EXPECT_EQ(result.config.Get("net.ipv4.tcp_tw_reuse"), 1);
  EXPECT_EQ(result.config.Get("vm.swappiness"), 10);
}

TEST_F(CmdlineFixture, SysctlMissingEqualsIsAnError) {
  ConfigParseResult result = ParseSysctlConf(space_, "net.core.somaxconn 4096\n");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("line 1"), std::string::npos);
}

TEST_F(CmdlineFixture, SysctlUnknownKeysAreCollected) {
  ConfigParseResult result = ParseSysctlConf(space_, "kernel.nonexistent_knob = 65536\n");
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.unknown.size(), 1u);
  EXPECT_EQ(result.unknown[0], "kernel.nonexistent_knob");
}

// ---------------------------------------------------------------------------
// Round-trip property: render -> parse recovers the boot/runtime slices of
// any random configuration, across seeds.

class CmdlineRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CmdlineRoundTrip, BootPhaseSurvivesCmdlineRoundTrip) {
  ConfigSpace space = BuildLinuxSearchSpace();
  Rng rng(GetParam());
  Configuration config = space.RandomConfiguration(rng);
  ConfigParseResult parsed = ParseCmdline(space, RenderCmdline(config));
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_TRUE(parsed.unknown.empty());
  for (size_t i = 0; i < space.Size(); ++i) {
    if (space.Param(i).phase == ParamPhase::kBootTime) {
      EXPECT_EQ(parsed.config.Raw(i), config.Raw(i)) << space.Param(i).name;
    }
  }
}

TEST_P(CmdlineRoundTrip, RuntimePhaseSurvivesSysctlRoundTrip) {
  ConfigSpace space = BuildLinuxSearchSpace();
  Rng rng(GetParam() ^ 0x5ca1ab1e);
  Configuration config = space.RandomConfiguration(rng);
  ConfigParseResult parsed = ParseSysctlConf(space, RenderSysctlConf(config));
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_TRUE(parsed.unknown.empty());
  for (size_t i = 0; i < space.Size(); ++i) {
    if (space.Param(i).phase == ParamPhase::kRuntime) {
      EXPECT_EQ(parsed.config.Raw(i), config.Raw(i)) << space.Param(i).name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CmdlineRoundTrip,
                         ::testing::Values(1u, 2u, 3u, 17u, 101u, 9001u, 0xdeadu, 0xbeefu));

}  // namespace
}  // namespace wayfinder
