// Hostile-world robustness: the fault-injection scenario matrix and the
// outcome-aware policies it exercises.
//
//   * An empty FaultPlan is a strict no-op: sessions are bit-identical to a
//     bench constructed without one (the contract every pre-existing
//     trajectory pin rests on), even with the retry policy armed.
//   * Scenario matrix: every registry searcher survives every fault class
//     (timeout, hang, flake, heteroscedastic noise, mid-search drift) —
//     completes its budget, never poisons its model with NaN, still finds a
//     finite best.
//   * Unit pins: the watchdog charges its full window; retries are
//     deterministic, budget-charged, and clear transients; median-of-k
//     repeats charge the budget; the drift detector fires and re-validates
//     the elite; warm start skips transient and drift-stale store records;
//     checkpoints round-trip the failure taxonomy and per-trial reasons.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "src/configspace/unikraft_space.h"
#include "src/core/wayfinder_api.h"
#include "src/platform/checkpoint.h"
#include "src/platform/job_file.h"
#include "src/platform/searcher_registry.h"
#include "src/platform/session.h"
#include "src/service/binary_codec.h"
#include "src/service/session_manager.h"
#include "src/simos/fault_plan.h"

namespace wayfinder {
namespace {

void ExpectSameHistory(const std::vector<TrialRecord>& a,
                       const std::vector<TrialRecord>& b, const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].config.values(), b[i].config.values()) << label << " trial " << i;
    ASSERT_EQ(static_cast<int>(a[i].outcome.status), static_cast<int>(b[i].outcome.status))
        << label << " trial " << i;
    ASSERT_EQ(a[i].outcome.metric, b[i].outcome.metric) << label << " trial " << i;
    ASSERT_EQ(a[i].outcome.memory_mb, b[i].outcome.memory_mb) << label << " trial " << i;
    ASSERT_EQ(a[i].sim_time_end, b[i].sim_time_end) << label << " trial " << i;
    if (std::isnan(a[i].objective)) {
      ASSERT_TRUE(std::isnan(b[i].objective)) << label << " trial " << i;
    } else {
      ASSERT_EQ(a[i].objective, b[i].objective) << label << " trial " << i;
    }
  }
}

struct FaultRun {
  FaultPlan plan;
  size_t retries = 0;
  size_t repeats = 1;
  bool drift_detection = false;
  size_t drift_window = 8;
  double drift_threshold = 0.25;
  size_t iterations = 20;
  uint64_t bench_seed = 0xfa17;
  uint64_t session_seed = 0x90;
  uint64_t searcher_seed = 0xabc;
};

SessionResult RunFaultSession(const std::string& algorithm, const FaultRun& run) {
  ConfigSpace space = BuildUnikraftSpace();
  TestbenchOptions bench_options;
  bench_options.substrate = Substrate::kUnikraftKvm;
  bench_options.seed = run.bench_seed;
  bench_options.faults = run.plan;
  Testbench bench(&space, AppId::kNginx, bench_options);
  auto searcher = MakeSearcher(algorithm, &space, run.searcher_seed);
  SessionOptions options;
  options.max_iterations = run.iterations;
  options.seed = run.session_seed;
  options.retry_transient = run.retries;
  options.measure_repeats = run.repeats;
  options.drift_detection = run.drift_detection;
  options.drift_window = run.drift_window;
  options.drift_threshold = run.drift_threshold;
  return RunSearch(&bench, searcher.get(), options);
}

TEST(FaultPlan, EmptyPlanIsStrictNoOp) {
  // Inert knobs (nonzero watchdog window / blend weight but zero
  // probabilities) plus an armed retry policy: still bit-identical to a
  // bench that has never heard of fault plans — zero extra RNG draws.
  for (const char* algorithm : {"random", "deeptune"}) {
    FaultRun clean;
    SessionResult baseline = RunFaultSession(algorithm, clean);

    FaultRun inert;
    inert.plan.timeout_seconds = 120.0;
    inert.plan.drift_magnitude = 0.7;
    inert.retries = 3;  // No transients can occur, so no retry stream draws.
    SessionResult armed = RunFaultSession(algorithm, inert);

    ExpectSameHistory(baseline.history, armed.history, algorithm);
    EXPECT_EQ(armed.transient_retries, 0u) << algorithm;
    EXPECT_EQ(armed.drift_events, 0u) << algorithm;
    EXPECT_FALSE(inert.plan.Active());
  }
}

TEST(FaultPlan, ScenarioMatrixEverySearcherSurvivesEveryFaultClass) {
  // Drift is scheduled mid-run: probe a clean session for its total
  // simulated span and drift a third of the way in.
  FaultRun probe;
  double clean_span = RunFaultSession("random", probe).total_sim_seconds;
  ASSERT_GT(clean_span, 0.0);

  struct Scenario {
    const char* name;
    FaultRun run;
  };
  std::vector<Scenario> scenarios;
  {
    Scenario timeout{"timeout", {}};
    timeout.run.plan.timeout_prob = 0.3;
    timeout.run.plan.timeout_seconds = 120.0;
    timeout.run.retries = 2;
    scenarios.push_back(timeout);

    Scenario hang{"hang", {}};
    hang.run.plan.hang_prob = 0.3;
    hang.run.plan.timeout_seconds = 180.0;
    hang.run.retries = 2;
    scenarios.push_back(hang);

    Scenario flake{"flake", {}};
    flake.run.plan.flake_prob = 0.5;
    flake.run.retries = 3;
    scenarios.push_back(flake);

    Scenario noise{"noise", {}};
    noise.run.plan.noise_sigma = 0.4;
    noise.run.repeats = 3;
    scenarios.push_back(noise);

    Scenario drift{"drift", {}};
    drift.run.plan.drift_at = clean_span / 3.0;
    drift.run.plan.drift_magnitude = 1.0;
    drift.run.drift_detection = true;
    drift.run.drift_window = 4;
    drift.run.drift_threshold = 0.2;
    scenarios.push_back(drift);
  }

  size_t total_retries = 0;
  for (const std::string& algorithm : RegisteredSearcherNames()) {
    for (const Scenario& scenario : scenarios) {
      SessionResult result = RunFaultSession(algorithm, scenario.run);
      const std::string label = algorithm + "/" + scenario.name;
      // The session completes its full budget: no searcher wedges, throws,
      // or drains the budget early under any fault class.
      EXPECT_EQ(result.history.size(), scenario.run.iterations) << label;
      // No NaN poisoning: every committed objective is NaN (crash) or
      // finite, and every successful metric is finite.
      for (const TrialRecord& trial : result.history) {
        if (trial.HasObjective()) {
          EXPECT_TRUE(std::isfinite(trial.objective)) << label;
        }
        if (trial.outcome.ok()) {
          EXPECT_TRUE(std::isfinite(trial.outcome.metric)) << label;
        }
      }
      // Convergence in the weak, robust sense: something succeeded and the
      // best is finite (stronger per-scenario pins live below).
      ASSERT_NE(result.best(), nullptr) << label;
      EXPECT_TRUE(std::isfinite(result.best()->objective)) << label;
      total_retries += result.transient_retries;
    }
  }
  // The retry policy actually engaged somewhere in the matrix.
  EXPECT_GT(total_retries, 0u);
}

TEST(FaultPlan, WatchdogChargesItsFullWindow) {
  ConfigSpace space = BuildUnikraftSpace();
  TestbenchOptions options;
  options.substrate = Substrate::kUnikraftKvm;
  options.faults.timeout_prob = 1.0;
  options.faults.timeout_seconds = 77.0;
  Testbench bench(&space, AppId::kNginx, options);
  Rng rng(11);
  SimClock clock;
  // Every trial that reaches the benchmark phase must time out; crashes
  // earlier in the pipeline are the only other possibility.
  bool saw_timeout = false;
  for (int i = 0; i < 12 && !saw_timeout; ++i) {
    Configuration config = space.RandomConfiguration(rng);
    double before = clock.Now();
    TrialOutcome outcome = bench.Evaluate(config, rng, &clock);
    if (outcome.status == TrialOutcome::Status::kTimeout) {
      saw_timeout = true;
      EXPECT_EQ(outcome.run_seconds, 77.0);
      EXPECT_TRUE(outcome.transient());
      EXPECT_EQ(outcome.failure_reason, "transient: benchmark exceeded watchdog");
      EXPECT_GE(clock.Now() - before, 77.0);  // Budget-charged.
    } else {
      EXPECT_FALSE(outcome.ok()) << "with timeout_prob=1 a success is impossible";
    }
  }
  EXPECT_TRUE(saw_timeout);
}

TEST(FaultPlan, HangsAreDistinguishedByReason) {
  ConfigSpace space = BuildUnikraftSpace();
  TestbenchOptions options;
  options.substrate = Substrate::kUnikraftKvm;
  options.faults.hang_prob = 1.0;
  Testbench bench(&space, AppId::kNginx, options);
  Rng rng(12);
  SimClock clock;
  for (int i = 0; i < 12; ++i) {
    TrialOutcome outcome = bench.Evaluate(space.RandomConfiguration(rng), rng, &clock);
    if (outcome.status == TrialOutcome::Status::kTimeout) {
      EXPECT_EQ(outcome.failure_reason, "transient: hang killed by watchdog");
      EXPECT_EQ(outcome.run_seconds, 600.0);  // The default watchdog window.
      return;
    }
  }
  FAIL() << "no trial reached the benchmark phase in 12 attempts";
}

TEST(FaultPlan, RetryPolicyIsDeterministicAndClearsTransients) {
  FaultRun flaky;
  flaky.plan.flake_prob = 0.6;
  flaky.iterations = 24;

  FaultRun retried = flaky;
  retried.retries = 3;

  SessionResult without = RunFaultSession("random", flaky);
  SessionResult with_a = RunFaultSession("random", retried);
  SessionResult with_b = RunFaultSession("random", retried);

  // Counter-derived retry streams: the whole policy is deterministic.
  ExpectSameHistory(with_a.history, with_b.history, "retry determinism");
  EXPECT_EQ(with_a.transient_retries, with_b.transient_retries);
  EXPECT_GT(with_a.transient_retries, 0u);

  auto transients = [](const SessionResult& result) {
    size_t n = 0;
    for (const TrialRecord& trial : result.history) {
      n += trial.outcome.transient() ? 1 : 0;
    }
    return n;
  };
  // Three retries against p=0.6 clear most transients.
  EXPECT_LT(transients(with_a), transients(without));
  // Every attempt was budget-charged: the retried run consumed more
  // simulated time per committed trial.
  EXPECT_GT(with_a.total_sim_seconds, without.total_sim_seconds);
}

TEST(FaultPlan, MedianRepeatsAreDeterministicAndBudgetCharged) {
  FaultRun noisy;
  noisy.plan.noise_sigma = 0.5;

  FaultRun repeated = noisy;
  repeated.repeats = 3;

  SessionResult once = RunFaultSession("random", noisy);
  SessionResult med_a = RunFaultSession("random", repeated);
  SessionResult med_b = RunFaultSession("random", repeated);

  ExpectSameHistory(med_a.history, med_b.history, "median determinism");
  // The k-1 extra measurements cost simulated time.
  EXPECT_GT(med_a.total_sim_seconds, once.total_sim_seconds);
  EXPECT_EQ(med_a.history.size(), once.history.size());
}

TEST(FaultPlan, NoiseSigmaIsHeteroscedastic) {
  FaultPlan plan;
  plan.noise_sigma = 0.3;
  // Config-dependent: different hashes map to different sigmas inside
  // [0.5, 1.5) x noise_sigma.
  double lo = plan.NoiseSigmaFor(0);
  double hi = plan.NoiseSigmaFor(511);
  EXPECT_NE(lo, hi);
  for (uint64_t hash : {0ull, 17ull, 511ull, 1023ull, 0xdeadbeefull}) {
    double sigma = plan.NoiseSigmaFor(hash);
    EXPECT_GE(sigma, 0.5 * plan.noise_sigma);
    EXPECT_LT(sigma, 1.5 * plan.noise_sigma);
  }
}

TEST(FaultPlan, DriftDetectorFiresAndRevalidatesTheElite) {
  // A full-magnitude drift scheduled ~60% into the run: long enough before
  // it for the search to lock in a strong elite, long enough after it for a
  // window of post-drift successes. Whether the drifted landscape actually
  // regresses the elite is seed-dependent, so scan seeds and searchers;
  // everything is deterministic, so once one fires it always fires.
  FaultRun probe;
  probe.iterations = 40;
  double clean_span = RunFaultSession("random", probe).total_sim_seconds;

  size_t fired = 0;
  for (const char* algorithm : {"deeptune", "hillclimb", "random"}) {
    for (uint64_t seed = 1; seed <= 8 && fired == 0; ++seed) {
      FaultRun drift;
      drift.iterations = 40;
      drift.bench_seed = 0xfa17 + seed;
      drift.session_seed = 0x90 + seed;
      drift.plan.drift_at = 0.6 * clean_span;
      drift.plan.drift_magnitude = 1.0;
      drift.drift_detection = true;
      drift.drift_window = 4;
      drift.drift_threshold = 0.1;
      SessionResult result = RunFaultSession(algorithm, drift);
      if (result.drift_events == 0) {
        continue;
      }
      ++fired;
      // The detector fired and the session still completed at least its
      // budget (the elite re-validation trial may add one) with a finite
      // best: OnDrift invalidated elites instead of wedging the model.
      EXPECT_GE(result.history.size(), drift.iterations);
      ASSERT_NE(result.best(), nullptr);
      EXPECT_TRUE(std::isfinite(result.best()->objective));
      EXPECT_GT(result.drift_events, 0u);
    }
    if (fired > 0) {
      break;
    }
  }
  EXPECT_GT(fired, 0u) << "no seed in the scan produced a drift event";
}

TEST(FaultPlan, JobFileCarriesTheFaultMapping) {
  JobParseResult parsed = ParseJobText(
      "name: hostile\n"
      "os: unikraft\n"
      "application: nginx\n"
      "metric: performance\n"
      "budget:\n"
      "  iterations: 10\n"
      "search:\n"
      "  algorithm: random\n"
      "  seed: 7\n"
      "faults:\n"
      "  flake_prob: 0.1\n"
      "  timeout_prob: 0.05\n"
      "  hang_prob: 0.02\n"
      "  timeout_s: 300\n"
      "  noise_sigma: 0.25\n"
      "  drift_at: 5000\n"
      "  drift_magnitude: 0.8\n"
      "  retries: 2\n"
      "  repeats: 3\n");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const JobSpec& spec = parsed.spec;
  EXPECT_EQ(spec.faults.flake_prob, 0.1);
  EXPECT_EQ(spec.faults.timeout_prob, 0.05);
  EXPECT_EQ(spec.faults.hang_prob, 0.02);
  EXPECT_EQ(spec.faults.timeout_seconds, 300.0);
  EXPECT_EQ(spec.faults.noise_sigma, 0.25);
  EXPECT_EQ(spec.faults.drift_at, 5000.0);
  EXPECT_EQ(spec.faults.drift_magnitude, 0.8);
  EXPECT_EQ(spec.fault_retries, 2u);
  EXPECT_EQ(spec.measure_repeats, 3u);

  // The plan reaches both halves of the stack: testbench and session.
  TestbenchOptions bench_options = spec.ToTestbenchOptions();
  EXPECT_EQ(bench_options.faults.flake_prob, 0.1);
  SessionOptions session_options = spec.ToSessionOptions();
  EXPECT_EQ(session_options.retry_transient, 2u);
  EXPECT_EQ(session_options.measure_repeats, 3u);
  EXPECT_TRUE(session_options.drift_detection);  // drift_at > 0 arms it.

  // Validation: probabilities outside [0, 1] are rejected.
  JobParseResult bad = ParseJobText(
      "name: bad\nfaults:\n  flake_prob: 1.5\n");
  EXPECT_FALSE(bad.ok);
}

TEST(FaultPlan, CheckpointRoundTripsTaxonomyAndReasons) {
  ConfigSpace space = BuildUnikraftSpace();
  Rng rng(5);
  std::vector<TrialRecord> history;
  auto push = [&](TrialOutcome::Status status, const char* reason, double objective) {
    TrialRecord trial;
    trial.iteration = history.size();
    trial.config = space.RandomConfiguration(rng);
    trial.outcome.status = status;
    trial.outcome.failure_reason = reason;
    trial.outcome.metric = status == TrialOutcome::Status::kOk ? 100.0 : 0.0;
    trial.objective = objective;
    trial.sim_time_end = 10.0 * (history.size() + 1);
    history.push_back(std::move(trial));
  };
  push(TrialOutcome::Status::kOk, "", 1.0);
  push(TrialOutcome::Status::kBuildFailed, "transient: infrastructure flake",
       std::nan(""));
  push(TrialOutcome::Status::kTimeout, "transient: benchmark exceeded watchdog",
       std::nan(""));
  push(TrialOutcome::Status::kRunCrashed, "workload segfault", std::nan(""));
  push(TrialOutcome::Status::kOk, "", 2.0);

  std::string text = CheckpointToText(history);
  CheckpointLoadResult loaded = LoadCheckpointText(space, text);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  ASSERT_EQ(loaded.history.size(), history.size());
  for (size_t i = 0; i < history.size(); ++i) {
    EXPECT_EQ(static_cast<int>(loaded.history[i].outcome.status),
              static_cast<int>(history[i].outcome.status)) << i;
    EXPECT_EQ(loaded.history[i].outcome.failure_reason,
              history[i].outcome.failure_reason) << i;
  }
  // The aggregate `failures` line matches the per-trial statuses.
  EXPECT_EQ(loaded.build_failures, 1u);
  EXPECT_EQ(loaded.boot_failures, 0u);
  EXPECT_EQ(loaded.run_crashes, 1u);
  EXPECT_EQ(loaded.timeouts, 1u);
  // And the transient markers survive the round trip.
  EXPECT_TRUE(loaded.history[1].outcome.transient());
  EXPECT_TRUE(loaded.history[2].outcome.transient());
  EXPECT_FALSE(loaded.history[3].outcome.transient());

  // Files written before the taxonomy extensions still load: reasons empty,
  // counts zero.
  std::string old_text;
  std::istringstream lines(text);
  for (std::string line; std::getline(lines, line);) {
    if (line.rfind("failures", 0) == 0) {
      continue;
    }
    old_text += line + "\n";
  }
  CheckpointLoadResult old_loaded = LoadCheckpointText(space, old_text);
  ASSERT_TRUE(old_loaded.ok) << old_loaded.error;
  EXPECT_EQ(old_loaded.build_failures, 0u);
  EXPECT_EQ(old_loaded.timeouts, 0u);
}

TEST(FaultPlan, StatusCodecsAgreeOnFaultCounters) {
  ServiceResponse response;
  response.ok = true;
  SessionStatus hostile;
  hostile.id = "s1";
  hostile.name = "hostile";
  hostile.algorithm = "deeptune";
  hostile.state = "running";
  hostile.trials = 30;
  hostile.iterations = 40;
  hostile.build_failed = 2;
  hostile.boot_failed = 1;
  hostile.run_crashed = 4;
  hostile.timeouts = 3;
  hostile.retries = 7;
  hostile.drift_events = 1;
  SessionStatus clean;
  clean.id = "s2";
  clean.name = "clean";
  clean.algorithm = "random";
  clean.state = "done";
  clean.trials = 10;
  clean.iterations = 10;
  response.sessions = {hostile, clean};

  std::string error;
  ServiceResponse from_yaml, from_binary;
  ASSERT_TRUE(DecodeResponse(EncodeResponse(response), &from_yaml, &error)) << error;
  ASSERT_TRUE(DecodeResponseBinary(EncodeResponseBinary(response), &from_binary, &error))
      << error;
  for (const ServiceResponse* decoded : {&from_yaml, &from_binary}) {
    ASSERT_EQ(decoded->sessions.size(), 2u);
    EXPECT_EQ(decoded->sessions[0].build_failed, 2u);
    EXPECT_EQ(decoded->sessions[0].boot_failed, 1u);
    EXPECT_EQ(decoded->sessions[0].run_crashed, 4u);
    EXPECT_EQ(decoded->sessions[0].timeouts, 3u);
    EXPECT_EQ(decoded->sessions[0].retries, 7u);
    EXPECT_EQ(decoded->sessions[0].drift_events, 1u);
    // Presence parity: a clean session encodes no counter fields in either
    // codec and decodes back to zeros.
    EXPECT_EQ(decoded->sessions[1].build_failed, 0u);
    EXPECT_EQ(decoded->sessions[1].timeouts, 0u);
    EXPECT_EQ(decoded->sessions[1].retries, 0u);
    EXPECT_EQ(decoded->sessions[1].drift_events, 0u);
  }
  // The clean session's YAML carries none of the counter keys at all.
  std::string yaml = EncodeResponse(response);
  size_t clean_at = yaml.find("clean");
  ASSERT_NE(clean_at, std::string::npos);
  EXPECT_EQ(yaml.find("timeouts:", clean_at), std::string::npos);
  EXPECT_EQ(yaml.find("retries:", clean_at), std::string::npos);
}

TEST(FaultPlan, WarmStartSkipsTransientAndDriftStaleTrials) {
  std::string store_dir =
      (std::filesystem::temp_directory_path() / "wf_faultplan_store").string();
  std::filesystem::remove_all(store_dir);

  auto job = [](const std::string& name, const std::string& fault_block) {
    std::string yaml;
    yaml += "name: " + name + "\n";
    yaml += "os: unikraft\n";
    yaml += "application: nginx\n";
    yaml += "metric: performance\n";
    yaml += "budget:\n  iterations: 16\n";
    yaml += "search:\n  algorithm: random\n  seed: 77\n";
    yaml += fault_block;
    return yaml;
  };

  SessionManagerOptions options;
  options.store_dir = store_dir;
  SessionManager manager(options);

  // Seed the store with a hostile run: timeouts persist with kTimeout
  // status, so they stay identifiable as transient after the store
  // round-trip (no retries, so they commit instead of being cleared).
  std::string seed_id, error;
  ASSERT_TRUE(manager.Submit(
      job("hostile-seed", "faults:\n  timeout_prob: 0.6\n  timeout_s: 60\n"),
      false, &seed_id, &error))
      << error;
  ASSERT_TRUE(manager.WaitDone(seed_id, 60000));
  SessionStatus seeded;
  ASSERT_TRUE(manager.Status(seed_id, &seeded));
  ASSERT_GT(seeded.timeouts, 0u) << "scenario produced no timeouts; bump the seed";
  EXPECT_EQ(seeded.trials, 16u);

  // A clean warm start observes everything EXCEPT the transient records.
  std::string warm_id;
  ASSERT_TRUE(manager.Submit(job("clean-warm", ""), true, &warm_id, &error)) << error;
  SessionStatus warm;
  ASSERT_TRUE(manager.Status(warm_id, &warm));
  EXPECT_EQ(warm.warm_started, seeded.trials - seeded.timeouts);

  // A job that schedules drift far in the future treats every stored trial
  // as stale: nothing warm-starts.
  std::string stale_id;
  ASSERT_TRUE(manager.Submit(
      job("drift-warm", "faults:\n  drift_at: 1000000000\n"), true, &stale_id, &error))
      << error;
  SessionStatus stale;
  ASSERT_TRUE(manager.Status(stale_id, &stale));
  EXPECT_EQ(stale.warm_started, 0u);

  ASSERT_TRUE(manager.WaitDone(warm_id, 60000));
  ASSERT_TRUE(manager.WaitDone(stale_id, 60000));
  manager.Shutdown();
  std::filesystem::remove_all(store_dir);
}

}  // namespace
}  // namespace wayfinder
