// Tests for the crash-analytics module: per-parameter crash-rate lift,
// stage accounting, wasted-time accounting, and formatting.
#include <gtest/gtest.h>

#include "src/configspace/linux_space.h"
#include "src/platform/crash_report.h"
#include "src/platform/random_search.h"
#include "src/platform/session.h"
#include "src/simos/testbench.h"

namespace wayfinder {
namespace {

// A two-parameter space where moving "killer" always crashes the trial in
// the synthetic histories below.
ConfigSpace TinySpace() {
  ConfigSpace space;
  space.Add(ParamSpec::Bool("killer", ParamPhase::kRuntime, "debug", false));
  space.Add(ParamSpec::Bool("benign", ParamPhase::kRuntime, "net", false));
  return space;
}

TrialRecord MakeTrial(const ConfigSpace& space, bool killer_on, bool benign_on,
                      bool crashed, double seconds = 100.0) {
  TrialRecord trial;
  trial.config = space.DefaultConfiguration();
  trial.config.Set("killer", killer_on ? 1 : 0);
  trial.config.Set("benign", benign_on ? 1 : 0);
  trial.outcome.status =
      crashed ? TrialOutcome::Status::kRunCrashed : TrialOutcome::Status::kOk;
  trial.outcome.run_seconds = seconds;
  trial.objective = crashed ? std::nan("") : 1.0;
  return trial;
}

TEST(CrashReportTest, KillerParameterTopsTheRanking) {
  ConfigSpace space = TinySpace();
  std::vector<TrialRecord> history;
  // killer moved -> crash (8 trials); benign moved -> fine (8); both at
  // default -> fine (8).
  for (int i = 0; i < 8; ++i) {
    history.push_back(MakeTrial(space, true, false, true));
    history.push_back(MakeTrial(space, false, true, false));
    history.push_back(MakeTrial(space, false, false, false));
  }
  CrashReport report = AnalyzeCrashes(space, history);
  EXPECT_EQ(report.trials, 24u);
  EXPECT_EQ(report.crashes, 8u);
  EXPECT_EQ(report.run_crashes, 8u);
  ASSERT_EQ(report.correlates.size(), 2u);
  EXPECT_EQ(report.correlates[0].name, "killer");
  EXPECT_DOUBLE_EQ(report.correlates[0].moved_crash_rate, 1.0);
  EXPECT_DOUBLE_EQ(report.correlates[0].baseline_crash_rate, 0.0);
  EXPECT_DOUBLE_EQ(report.correlates[0].lift, 1.0);
  // benign has zero (or negative) lift.
  EXPECT_LE(report.correlates[1].lift, 0.0);
}

TEST(CrashReportTest, MinMovedFiltersSmallSamples) {
  ConfigSpace space = TinySpace();
  std::vector<TrialRecord> history;
  history.push_back(MakeTrial(space, true, false, true));  // killer moved once.
  for (int i = 0; i < 10; ++i) {
    history.push_back(MakeTrial(space, false, true, false));
  }
  CrashReport report = AnalyzeCrashes(space, history, /*min_moved=*/5);
  for (const CrashCorrelate& correlate : report.correlates) {
    EXPECT_NE(correlate.name, "killer");  // 1 < min_moved: excluded.
  }
}

TEST(CrashReportTest, WastedTimeSumsOnlyCrashedTrials) {
  ConfigSpace space = TinySpace();
  std::vector<TrialRecord> history;
  for (int i = 0; i < 6; ++i) {
    history.push_back(MakeTrial(space, true, false, true, 50.0));
    history.push_back(MakeTrial(space, false, false, false, 100.0));
  }
  CrashReport report = AnalyzeCrashes(space, history);
  EXPECT_DOUBLE_EQ(report.wasted_sim_seconds, 6 * 50.0);
  EXPECT_DOUBLE_EQ(report.total_sim_seconds, 6 * 150.0);
}

TEST(CrashReportTest, StageCountsSplitByStatus) {
  ConfigSpace space = TinySpace();
  std::vector<TrialRecord> history;
  TrialRecord build = MakeTrial(space, true, false, true);
  build.outcome.status = TrialOutcome::Status::kBuildFailed;
  TrialRecord boot = MakeTrial(space, true, false, true);
  boot.outcome.status = TrialOutcome::Status::kBootFailed;
  TrialRecord run = MakeTrial(space, true, false, true);
  history.insert(history.end(), {build, boot, run});
  CrashReport report = AnalyzeCrashes(space, history, /*min_moved=*/1);
  EXPECT_EQ(report.build_failures, 1u);
  EXPECT_EQ(report.boot_failures, 1u);
  EXPECT_EQ(report.run_crashes, 1u);
}

TEST(CrashReportTest, EmptyHistoryIsCleanlyEmpty) {
  ConfigSpace space = TinySpace();
  CrashReport report = AnalyzeCrashes(space, {});
  EXPECT_EQ(report.trials, 0u);
  EXPECT_TRUE(report.correlates.empty());
  std::string text = FormatCrashReport(report);
  EXPECT_NE(text.find("0/0"), std::string::npos);
}

TEST(CrashReportTest, FormatListsKillerFirst) {
  ConfigSpace space = TinySpace();
  std::vector<TrialRecord> history;
  for (int i = 0; i < 8; ++i) {
    history.push_back(MakeTrial(space, true, false, true));
    history.push_back(MakeTrial(space, false, false, false));
  }
  std::string text = FormatCrashReport(AnalyzeCrashes(space, history));
  size_t killer_at = text.find("killer");
  ASSERT_NE(killer_at, std::string::npos);
  EXPECT_NE(text.find("crash-associated"), std::string::npos);
}

TEST(CrashReportTest, RealSessionFindsDebugSubsystemCorrelates) {
  // On the simulated substrate debug-subsystem parameters are among the
  // crash drivers; the analysis should surface positive-lift parameters
  // from a real random-search history.
  ConfigSpace space = BuildLinuxSearchSpace();
  Testbench bench(&space, AppId::kNginx);
  RandomSearcher searcher;
  SessionOptions options;
  options.max_iterations = 150;
  options.seed = 301;
  SessionResult result = RunSearch(&bench, &searcher, options);
  ASSERT_GT(result.crashes, 10u);

  CrashReport report = AnalyzeCrashes(space, result.history);
  ASSERT_FALSE(report.correlates.empty());
  EXPECT_GT(report.correlates.front().lift, 0.0);
  EXPECT_GT(report.wasted_sim_seconds, 0.0);
  EXPECT_LT(report.wasted_sim_seconds, report.total_sim_seconds);
}

}  // namespace
}  // namespace wayfinder
