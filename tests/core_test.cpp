// Tests for DeepTune: the DTM, the scoring function, the searcher, and
// transfer learning.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "src/configspace/linux_space.h"
#include "src/core/deeptune.h"
#include "src/core/scoring.h"
#include "src/core/wayfinder_api.h"
#include "src/platform/random_search.h"
#include "src/util/stats.h"

namespace wayfinder {
namespace {

// A learnable toy problem: objective = 3*x0 - 2*x1, crash iff x2 > 0.8.
struct ToyProblem {
  static double Objective(const std::vector<double>& x) { return 3.0 * x[0] - 2.0 * x[1]; }
  static bool Crashes(const std::vector<double>& x) { return x[2] > 0.8; }
};

DeepTuneModel TrainToyModel(size_t samples, uint64_t seed) {
  DtmOptions options;
  options.seed = seed;
  DeepTuneModel model(4, options);
  Rng rng(seed);
  for (size_t i = 0; i < samples; ++i) {
    std::vector<double> x = {rng.Uniform(), rng.Uniform(), rng.Uniform(), rng.Uniform()};
    bool crashed = ToyProblem::Crashes(x);
    model.AddSample(x, crashed, crashed ? 0.0 : ToyProblem::Objective(x));
    if (i % 4 == 3) {
      model.Update();
    }
  }
  for (int extra = 0; extra < 20; ++extra) {
    model.Update();
  }
  return model;
}

TEST(Dtm, LearnsCrashBoundary) {
  DeepTuneModel model = TrainToyModel(300, 0x70f);
  Rng rng(99);
  size_t correct = 0;
  const size_t kEval = 200;
  for (size_t i = 0; i < kEval; ++i) {
    std::vector<double> x = {rng.Uniform(), rng.Uniform(), rng.Uniform(), rng.Uniform()};
    DtmPrediction p = model.Predict(x);
    bool predicted = p.crash_prob > 0.5;
    correct += predicted == ToyProblem::Crashes(x) ? 1 : 0;
  }
  EXPECT_GT(static_cast<double>(correct) / kEval, 0.8);
}

TEST(Dtm, LearnsObjectiveOrdering) {
  DeepTuneModel model = TrainToyModel(300, 0x71f);
  std::vector<double> good = {0.95, 0.05, 0.2, 0.5};
  std::vector<double> bad = {0.05, 0.95, 0.2, 0.5};
  EXPECT_GT(model.Predict(good).objective, model.Predict(bad).objective);
}

TEST(Dtm, PredictionRegressionQuality) {
  DeepTuneModel model = TrainToyModel(400, 0x72f);
  Rng rng(7);
  double err_sum = 0.0;
  size_t count = 0;
  for (size_t i = 0; i < 200; ++i) {
    std::vector<double> x = {rng.Uniform(), rng.Uniform(), rng.Uniform() * 0.8, rng.Uniform()};
    double actual = ToyProblem::Objective(x);
    double predicted = model.DenormalizeObjective(model.Predict(x).objective);
    err_sum += std::abs(predicted - actual);
    ++count;
  }
  // Objective range is [-2, 3]; mean error well under a unit is "learned".
  EXPECT_LT(err_sum / static_cast<double>(count), 0.8);
}

TEST(Dtm, UncertaintyHigherOffDistribution) {
  DtmOptions options;
  options.seed = 0x73f;
  DeepTuneModel model(4, options);
  Rng rng(0x73f);
  // Train only inside [0, 0.4]^4.
  for (size_t i = 0; i < 200; ++i) {
    std::vector<double> x = {rng.Uniform(0, 0.4), rng.Uniform(0, 0.4), rng.Uniform(0, 0.4),
                             rng.Uniform(0, 0.4)};
    model.AddSample(x, false, x[0]);
    if (i % 4 == 3) {
      model.Update();
    }
  }
  // Compare average sigma inside vs far outside the training support.
  double inside = 0.0;
  double outside = 0.0;
  for (int i = 0; i < 20; ++i) {
    double t = static_cast<double>(i) / 19.0;
    inside += model.Predict({0.2 * t, 0.2, 0.2, 0.2}).sigma;
    outside += model.Predict({0.9, 0.9 + 0.005 * t, 0.95, 0.9}).sigma;
  }
  // The RBF branch's activations collapse off-distribution, so sigma falls
  // back to the head bias — it must not be *lower* than in-distribution.
  EXPECT_GE(outside, inside * 0.75);
}

TEST(Dtm, UpdateCostDoesNotGrowWithHistory) {
  DtmOptions options;
  DeepTuneModel model(32, options);
  Rng rng(5);
  auto add = [&](size_t n) {
    for (size_t i = 0; i < n; ++i) {
      std::vector<double> x(32);
      for (double& v : x) {
        v = rng.Uniform();
      }
      model.AddSample(x, rng.Bernoulli(0.3), rng.Normal(0.0, 1.0));
    }
  };
  add(50);
  WallTimer t1;
  model.Update();
  double small = t1.ElapsedSeconds();
  add(500);
  WallTimer t2;
  model.Update();
  double big = t2.ElapsedSeconds();
  // Constant steps per update: cost should not scale with the buffer.
  EXPECT_LT(big, small * 5.0 + 0.05);
}

TEST(Dtm, SaveLoadRoundTrip) {
  DeepTuneModel a = TrainToyModel(100, 0x74f);
  std::string path = "/tmp/wf_dtm_test.wfnn";
  ASSERT_TRUE(a.Save(path));
  DtmOptions options;
  options.seed = 0x999;  // Different init; load must overwrite.
  DeepTuneModel b(4, options);
  ASSERT_TRUE(b.Load(path));
  std::vector<double> x = {0.3, 0.7, 0.2, 0.9};
  DtmPrediction pa = a.Predict(x);
  DtmPrediction pb = b.Predict(x);
  EXPECT_NEAR(pa.crash_prob, pb.crash_prob, 1e-9);
  EXPECT_NEAR(pa.objective, pb.objective, 1e-9);
  std::remove(path.c_str());
}

TEST(Scoring, DissimilarityProperties) {
  std::vector<std::vector<double>> known = {{0.5, 0.5}, {0.1, 0.1}};
  // Empty set: maximal novelty.
  EXPECT_DOUBLE_EQ(Dissimilarity({0.5, 0.5}, {}), 1.0);
  // A known point has zero novelty.
  EXPECT_NEAR(Dissimilarity({0.5, 0.5}, known), 0.0, 1e-12);
  // Farther points are more novel (monotonicity).
  double near = Dissimilarity({0.55, 0.5}, known);
  double far = Dissimilarity({1.0, 1.0}, known);
  EXPECT_GT(far, near);
  EXPECT_LE(far, 1.0);
}

TEST(Scoring, RankScorePenalizesPredictedCrashes) {
  ScoreOptions options;
  DtmPrediction safe{0.1, 1.0, 0.5};
  DtmPrediction crashy{0.9, 1.0, 0.5};
  EXPECT_GT(RankScore(safe, 0.5, 0.5, options), RankScore(crashy, 0.5, 0.5, options));
}

TEST(Scoring, AlphaBlendsExplorationTerms) {
  DtmPrediction p{0.0, 0.0, 1.0};
  ScoreOptions pure_ds;
  pure_ds.alpha = 1.0;
  pure_ds.predict_weight = 0.0;
  EXPECT_DOUBLE_EQ(RankScore(p, 0.7, 0.2, pure_ds), 0.7);
  ScoreOptions pure_sigma;
  pure_sigma.alpha = 0.0;
  pure_sigma.predict_weight = 0.0;
  EXPECT_DOUBLE_EQ(RankScore(p, 0.7, 0.2, pure_sigma), 0.2);
}

TEST(Scoring, NormalizeSigmasMaxIsOne) {
  std::vector<DtmPrediction> predictions(3);
  predictions[0].sigma = 1.0;
  predictions[1].sigma = 4.0;
  predictions[2].sigma = 2.0;
  std::vector<double> normalized = NormalizeSigmas(predictions);
  EXPECT_DOUBLE_EQ(normalized[1], 1.0);
  EXPECT_DOUBLE_EQ(normalized[0], 0.25);
}

TEST(DeepTuneSearcherTest, WarmupProposesWithoutModel) {
  ConfigSpace space = BuildLinuxSearchSpace();
  DeepTuneSearcher searcher(&space);
  std::vector<TrialRecord> history;
  Rng rng(1);
  SearchContext context;
  context.space = &space;
  context.history = &history;
  context.rng = &rng;
  Configuration config = searcher.Propose(context);
  EXPECT_TRUE(space.IsValid(config));
}

TEST(DeepTuneSearcherTest, BeatsRandomOnNginx) {
  ConfigSpace space = BuildLinuxSearchSpace();
  SessionOptions options;
  options.max_iterations = 150;
  options.sample_options = SampleOptions::FavorRuntime();
  options.seed = 0xbea7;

  Testbench bench_random(&space, AppId::kNginx);
  RandomSearcher random;
  SessionResult random_result = RunSearch(&bench_random, &random, options);

  Testbench bench_dt(&space, AppId::kNginx);
  DeepTuneSearcher deeptune(&space);
  SessionResult dt_result = RunSearch(&bench_dt, &deeptune, options);

  ASSERT_NE(dt_result.best(), nullptr);
  ASSERT_NE(random_result.best(), nullptr);
  // DeepTune's crash rate must be clearly below random's ~1/3.
  EXPECT_LT(dt_result.CrashRate(), random_result.CrashRate() * 0.6);
  // And its best found should not be worse (usually far better); a small
  // slack absorbs seed-to-seed variance at this reduced scale.
  EXPECT_GE(dt_result.best()->outcome.metric, random_result.best()->outcome.metric * 0.95);
}

TEST(DeepTuneSearcherTest, TransferLearningReducesEarlyCrashes) {
  ConfigSpace space = BuildLinuxSearchSpace();
  SessionOptions options;
  options.max_iterations = 100;
  options.sample_options = SampleOptions::FavorRuntime();
  options.seed = 0x71a;

  // Donor trained on redis.
  Testbench donor_bench(&space, AppId::kRedis);
  DeepTuneSearcher donor(&space);
  RunSearch(&donor_bench, &donor, options);
  std::string path = "/tmp/wf_tl_test.wfnn";
  ASSERT_TRUE(donor.SaveModel(path));

  // Fresh vs transferred on nginx: compare crashes in the first 40 trials.
  auto early_crashes = [&](bool transfer) {
    Testbench bench(&space, AppId::kNginx);
    DeepTuneSearcher searcher(&space);
    if (transfer) {
      EXPECT_TRUE(searcher.LoadModel(path));
      EXPECT_TRUE(searcher.transferred());
    }
    SessionOptions o = options;
    o.max_iterations = 40;
    o.seed = 0x3344;
    SessionResult result = RunSearch(&bench, &searcher, o);
    return result.crashes;
  };
  size_t cold = early_crashes(false);
  size_t warm = early_crashes(true);
  EXPECT_LE(warm, cold);
  std::remove(path.c_str());
}

TEST(DeepTuneSearcherTest, ParameterImpactsFlagDocumentedParams) {
  // After a session, the model's top impactful parameters should include
  // curated high-impact ones (§4.1) well above the median synthetic knob.
  // Asserted over the documented set as a whole: any single parameter's
  // learned impact is seed-noisy, but the set's mean is stably above the
  // median across seeds.
  ConfigSpace space = BuildLinuxSearchSpace();
  Testbench bench(&space, AppId::kNginx);
  DeepTuneSearcher searcher(&space);
  SessionOptions options;
  options.max_iterations = 150;
  options.sample_options = SampleOptions::FavorRuntime();
  options.seed = 0x88;
  RunSearch(&bench, &searcher, options);

  std::vector<TrialRecord> history;
  Rng rng(1);
  SearchContext context;
  context.space = &space;
  context.history = &history;
  context.rng = &rng;
  std::vector<double> impacts = searcher.ParameterImpacts(context);
  double documented_mean = 0.0;
  size_t documented_count = 0;
  for (const std::string& name : DocumentedHighImpactParams()) {
    auto index = space.Find(name);
    ASSERT_TRUE(index.has_value()) << name;
    documented_mean += impacts[*index];
    ++documented_count;
  }
  documented_mean /= static_cast<double>(documented_count);
  double median = Quantile(impacts, 0.5);
  EXPECT_GT(documented_mean, median);
}

TEST(WayfinderApi, MakeSearcherKnowsAllAlgorithms) {
  ConfigSpace space = BuildLinuxSearchSpace();
  for (const char* name : {"random", "grid", "bayesopt", "causal", "deeptune"}) {
    std::unique_ptr<Searcher> searcher = MakeSearcher(name, &space);
    ASSERT_NE(searcher, nullptr) << name;
    EXPECT_EQ(searcher->Name(), name);
  }
  EXPECT_EQ(MakeSearcher("simulated-annealing", &space), nullptr);
}

TEST(WayfinderApi, RunJobTextEndToEnd) {
  const char* job = R"(name: api-test
os: linux
application: nginx
metric: performance
budget:
  iterations: 25
search:
  algorithm: random
  favor: runtime
  seed: 5
freeze:
  - name: kernel.randomize_va_space
    value: 2
)";
  JobRunResult result = RunJobText(job);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.session.history.size(), 25u);
  // The frozen security parameter was never varied (§3.5).
  auto index = result.space->Find("kernel.randomize_va_space");
  ASSERT_TRUE(index.has_value());
  for (const TrialRecord& trial : result.session.history) {
    EXPECT_EQ(trial.config.Raw(*index), 2);
  }
}

TEST(WayfinderApi, RejectsUnknownAlgorithmAndBadYaml) {
  JobRunResult bad_algo = RunJobText("name: x\nsearch:\n  algorithm: nope\n");
  EXPECT_FALSE(bad_algo.ok);
  JobRunResult bad_yaml = RunJobText("a:\n\tb: tabs\n");
  EXPECT_FALSE(bad_yaml.ok);
}

}  // namespace
}  // namespace wayfinder
