// Determinism contract of the batch-concurrent session executor:
//
//   * parallel_evaluations = 1 is the serial loop, bit for bit (StepBatch
//     dispatches straight to Step);
//   * at fixed parallel_evaluations, histories are bit-identical at any
//     eval_threads value — physical concurrency never leaks into results —
//     pinned for DeepTune, random, and multi-metric sessions;
//   * rounds commit in virtual-time order with ties broken by batch index;
//   * Resume() at a round boundary followed by batched Step()s reproduces
//     the uninterrupted batched run.
#include <gtest/gtest.h>

#include <cmath>

#include "src/configspace/linux_space.h"
#include "src/configspace/unikraft_space.h"
#include "src/core/multi_metric.h"
#include "src/core/wayfinder_api.h"
#include "src/platform/random_search.h"
#include "src/platform/session.h"

namespace wayfinder {
namespace {

// Bitwise history equality over everything deterministic (searcher_seconds
// is wall clock and excluded by design).
void ExpectSameHistory(const std::vector<TrialRecord>& a,
                       const std::vector<TrialRecord>& b, const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].config.Hash(), b[i].config.Hash()) << label << " trial " << i;
    ASSERT_EQ(a[i].iteration, b[i].iteration) << label << " trial " << i;
    ASSERT_EQ(static_cast<int>(a[i].outcome.status), static_cast<int>(b[i].outcome.status))
        << label << " trial " << i;
    if (std::isnan(a[i].objective)) {
      ASSERT_TRUE(std::isnan(b[i].objective)) << label << " trial " << i;
    } else {
      ASSERT_EQ(a[i].objective, b[i].objective) << label << " trial " << i;
    }
    ASSERT_EQ(a[i].sim_time_end, b[i].sim_time_end) << label << " trial " << i;
    ASSERT_EQ(a[i].outcome.metric, b[i].outcome.metric) << label << " trial " << i;
    ASSERT_EQ(a[i].outcome.memory_mb, b[i].outcome.memory_mb) << label << " trial " << i;
  }
}

SessionResult RunLinuxSession(const std::string& algorithm, size_t parallel,
                              size_t eval_threads, size_t iterations = 24) {
  ConfigSpace space = BuildLinuxSearchSpace();
  TestbenchOptions bench_options;
  bench_options.seed = 0x7e57;
  Testbench bench(&space, AppId::kNginx, bench_options);
  auto searcher = MakeSearcher(algorithm, &space, 0xabc);
  SessionOptions options;
  options.max_iterations = iterations;
  options.seed = 0x90;
  options.parallel_evaluations = parallel;
  options.eval_threads = eval_threads;
  return RunSearch(&bench, searcher.get(), options);
}

TEST(SessionParallel, ParallelOneIsExactlyTheSerialLoop) {
  // Run() at parallel_evaluations=1 vs a manual Step() loop: the batch
  // dispatcher must route through the identical serial path.
  ConfigSpace space = BuildLinuxSearchSpace();
  SessionOptions options;
  options.max_iterations = 20;
  options.seed = 0x51;

  Testbench bench_a(&space, AppId::kNginx);
  RandomSearcher searcher_a;
  SearchSession manual(&bench_a, &searcher_a, options);
  while (manual.Step()) {
  }
  SessionResult stepped = manual.Finish();

  Testbench bench_b(&space, AppId::kNginx);
  RandomSearcher searcher_b;
  options.parallel_evaluations = 1;
  SessionResult batched = RunSearch(&bench_b, &searcher_b, options);

  ExpectSameHistory(stepped.history, batched.history, "serial-vs-dispatch");
  EXPECT_EQ(stepped.builds, batched.builds);
  EXPECT_EQ(stepped.builds_skipped, batched.builds_skipped);
  EXPECT_EQ(stepped.crashes, batched.crashes);
  EXPECT_EQ(stepped.total_sim_seconds, batched.total_sim_seconds);
}

// The acceptance pin: at parallel_evaluations=4, worker counts {1, 2, 4}
// produce bit-identical histories for DeepTune, random, and multi-metric
// sessions. Physical threads are an execution detail only.
class WorkerInvarianceTest : public ::testing::TestWithParam<const char*> {};

TEST_P(WorkerInvarianceTest, HistoryInvariantAcrossEvalThreads) {
  SessionResult t1 = RunLinuxSession(GetParam(), 4, 1);
  SessionResult t2 = RunLinuxSession(GetParam(), 4, 2);
  SessionResult t4 = RunLinuxSession(GetParam(), 4, 4);
  ExpectSameHistory(t2.history, t1.history, std::string(GetParam()) + " t2-vs-t1");
  ExpectSameHistory(t2.history, t4.history, std::string(GetParam()) + " t2-vs-t4");
  EXPECT_EQ(t2.builds, t4.builds) << GetParam();
  EXPECT_EQ(t2.crashes, t4.crashes) << GetParam();
  EXPECT_EQ(t2.total_sim_seconds, t4.total_sim_seconds) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Searchers, WorkerInvarianceTest,
                         ::testing::Values("deeptune", "random"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

TEST(SessionParallel, MultiMetricHistoryInvariantAcrossEvalThreads) {
  auto run = [](size_t eval_threads) {
    ConfigSpace space = BuildLinuxSearchSpace();
    TestbenchOptions bench_options;
    bench_options.seed = 0x7e58;
    Testbench bench(&space, AppId::kNginx, bench_options);
    MultiMetricSearcher searcher(
        &space, {MetricSpec::AppThroughput(1.0), MetricSpec::MemoryFootprint(0.5)}, {});
    SessionOptions options;
    options.max_iterations = 20;
    options.seed = 0x91;
    options.objective = ObjectiveKind::kScore;
    options.parallel_evaluations = 4;
    options.eval_threads = eval_threads;
    return RunSearch(&bench, &searcher, options);
  };
  SessionResult t2 = run(2);
  SessionResult t4 = run(4);
  ExpectSameHistory(t2.history, t4.history, "multi t2-vs-t4");
}

TEST(SessionParallel, RoundsCommitInVirtualTimeOrder) {
  SessionResult result = RunLinuxSession("random", 4, 4, 24);
  ASSERT_EQ(result.history.size(), 24u);
  for (size_t round = 0; round < 24; round += 4) {
    double previous = -1.0;
    for (size_t i = round; i < round + 4; ++i) {
      EXPECT_EQ(result.history[i].iteration, i);
      // Within a round, commit order is ascending virtual finish time.
      EXPECT_GE(result.history[i].sim_time_end, previous) << "trial " << i;
      previous = result.history[i].sim_time_end;
    }
  }
  // Rounds stack in time: each round starts where the previous one ended.
  EXPECT_EQ(result.total_sim_seconds, result.history.back().sim_time_end);
}

TEST(SessionParallel, BatchBudgetIsExact) {
  // A budget that is not a multiple of the batch width still lands exactly.
  SessionResult result = RunLinuxSession("random", 4, 0, 22);
  EXPECT_EQ(result.history.size(), 22u);
  size_t builds_accounted = result.builds + result.builds_skipped;
  EXPECT_EQ(builds_accounted, 22u);
}

TEST(SessionParallel, ResumeAtRoundBoundaryReproducesUninterruptedRun) {
  // Uninterrupted batched run vs Resume(first 2 rounds) + batched Step()s:
  // identical histories. Batch rounds draw counter-derived entropy, so the
  // continuation does not depend on how many draws the replayed prefix's
  // proposals once consumed.
  ConfigSpace space = BuildLinuxSearchSpace();
  SessionOptions options;
  options.max_iterations = 24;
  options.seed = 0x77;
  options.parallel_evaluations = 4;

  TestbenchOptions bench_options;
  bench_options.seed = 0x7e59;
  Testbench bench_a(&space, AppId::kNginx, bench_options);
  RandomSearcher searcher_a;
  SessionResult uninterrupted = RunSearch(&bench_a, &searcher_a, options);
  ASSERT_EQ(uninterrupted.history.size(), 24u);

  std::vector<TrialRecord> prefix(uninterrupted.history.begin(),
                                  uninterrupted.history.begin() + 8);
  Testbench bench_b(&space, AppId::kNginx, bench_options);
  RandomSearcher searcher_b;
  SearchSession resumed(&bench_b, &searcher_b, options);
  resumed.Resume(prefix);
  while (resumed.StepBatch() > 0) {
  }
  SessionResult continued = resumed.Finish();

  ExpectSameHistory(uninterrupted.history, continued.history, "resume-continuation");
  EXPECT_EQ(uninterrupted.builds, continued.builds);
  EXPECT_EQ(uninterrupted.builds_skipped, continued.builds_skipped);
  EXPECT_EQ(uninterrupted.total_sim_seconds, continued.total_sim_seconds);
}

TEST(SessionParallel, ResumeThenBatchedStepsIsReproducible) {
  // Model-based searchers carry proposal-side state a replay cannot clone,
  // so their continuation is not required to equal the uninterrupted run —
  // but resume + batched stepping must be fully deterministic.
  ConfigSpace space = BuildUnikraftSpace();
  TestbenchOptions bench_options;
  bench_options.substrate = Substrate::kUnikraftKvm;
  bench_options.seed = 0x7e60;
  SessionOptions options;
  options.max_iterations = 30;
  options.seed = 0x78;
  options.parallel_evaluations = 4;

  std::vector<TrialRecord> prefix = [&] {
    Testbench bench(&space, AppId::kNginx, bench_options);
    auto searcher = MakeSearcher("deeptune", &space, 0xd7);
    SessionOptions prior = options;
    prior.max_iterations = 12;
    return RunSearch(&bench, searcher.get(), prior).history;
  }();
  ASSERT_EQ(prefix.size(), 12u);

  auto continue_from_prefix = [&] {
    Testbench bench(&space, AppId::kNginx, bench_options);
    auto searcher = MakeSearcher("deeptune", &space, 0xd7);
    SearchSession session(&bench, searcher.get(), options);
    session.Resume(prefix);
    while (session.StepBatch() > 0) {
    }
    return session.Finish();
  };
  SessionResult first = continue_from_prefix();
  SessionResult second = continue_from_prefix();
  ASSERT_EQ(first.history.size(), 30u);
  ExpectSameHistory(first.history, second.history, "deeptune resume determinism");
}

// ---------------------------------------------------------------------------
// Sliding-window executor (SessionOptions::sliding_window).

SessionResult RunSliding(const std::string& algorithm, bool sliding, size_t eval_threads,
                         double fixed_trial_seconds, size_t iterations = 24) {
  ConfigSpace space = BuildLinuxSearchSpace();
  TestbenchOptions bench_options;
  bench_options.seed = 0x7e80;
  bench_options.fixed_trial_seconds = fixed_trial_seconds;
  Testbench bench(&space, AppId::kNginx, bench_options);
  auto searcher = MakeSearcher(algorithm, &space, 0xabd);
  SessionOptions options;
  options.max_iterations = iterations;
  options.seed = 0x92;
  options.parallel_evaluations = 4;
  options.eval_threads = eval_threads;
  options.sliding_window = sliding;
  return RunSearch(&bench, searcher.get(), options);
}

// The satellite's pin: with equal-duration trials every in-flight window
// finishes as one wave, and the sliding executor must reproduce the
// lock-step schedule bit for bit — proposals, commit order, timestamps.
class SlidingLockStepTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SlidingLockStepTest, EqualDurationTrialsMatchLockStepBitForBit) {
  SessionResult lock_step = RunSliding(GetParam(), /*sliding=*/false, 1, 10.0);
  SessionResult sliding = RunSliding(GetParam(), /*sliding=*/true, 1, 10.0);
  ExpectSameHistory(lock_step.history, sliding.history,
                    std::string(GetParam()) + " sliding-vs-lockstep");
  EXPECT_EQ(lock_step.builds, sliding.builds) << GetParam();
  EXPECT_EQ(lock_step.builds_skipped, sliding.builds_skipped) << GetParam();
  EXPECT_EQ(lock_step.crashes, sliding.crashes) << GetParam();
  EXPECT_EQ(lock_step.total_sim_seconds, sliding.total_sim_seconds) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Searchers, SlidingLockStepTest,
                         ::testing::Values("random", "deeptune"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

TEST(SlidingWindow, VariedDurationsFillTheBudgetInVirtualTimeOrder) {
  // Realistic (varying) durations: waves are mostly singletons. The full
  // budget still lands, commits are monotone in virtual time, and the
  // window refills from the commit clock (no trial finishes before it
  // could have started).
  SessionResult result = RunSliding("random", /*sliding=*/true, 0, 0.0, 22);
  ASSERT_EQ(result.history.size(), 22u);
  double previous = 0.0;
  for (const TrialRecord& trial : result.history) {
    EXPECT_GE(trial.sim_time_end, previous);
    previous = trial.sim_time_end;
  }
  EXPECT_EQ(result.builds + result.builds_skipped, 22u);
  EXPECT_EQ(result.total_sim_seconds, result.history.back().sim_time_end);
}

TEST(SlidingWindow, HistoryInvariantAcrossEvalThreads) {
  // Physical workers stay an execution detail under the sliding executor
  // too: same pin as the lock-step WorkerInvarianceTest.
  SessionResult t1 = RunSliding("deeptune", true, 1, 0.0);
  SessionResult t2 = RunSliding("deeptune", true, 2, 0.0);
  SessionResult t4 = RunSliding("deeptune", true, 4, 0.0);
  ExpectSameHistory(t2.history, t1.history, "sliding t2-vs-t1");
  ExpectSameHistory(t2.history, t4.history, "sliding t2-vs-t4");
}

TEST(SlidingWindow, DeterministicAcrossRuns) {
  SessionResult first = RunSliding("random", true, 0, 0.0);
  SessionResult second = RunSliding("random", true, 0, 0.0);
  ExpectSameHistory(first.history, second.history, "sliding repeat");
}

TEST(SlidingWindow, KeepsTheWindowFullerThanLockStep) {
  // With varying durations the sliding schedule never idles a slot waiting
  // for the round's straggler, so the same trial count finishes in no more
  // virtual time than lock-step gives it. (Same proposals cannot be
  // guaranteed — the schedules diverge — so compare makespan, not content.)
  SessionResult lock_step = RunSliding("random", false, 0, 0.0, 32);
  SessionResult sliding = RunSliding("random", true, 0, 0.0, 32);
  ASSERT_EQ(lock_step.history.size(), 32u);
  ASSERT_EQ(sliding.history.size(), 32u);
  EXPECT_LE(sliding.total_sim_seconds, lock_step.total_sim_seconds * 1.05);
}

TEST(SessionParallel, DedupAppliesWithinABatch) {
  // A degenerate one-parameter space forces duplicate proposals; dedup must
  // retry within the round (bounded by dedup_retries) and still complete.
  ConfigSpace space;
  space.Add(ParamSpec::Bool("a", ParamPhase::kRuntime, "net", false));
  Testbench bench(&space, AppId::kNginx);
  RandomSearcher searcher;
  SessionOptions options;
  options.max_iterations = 8;
  options.seed = 0x79;
  options.parallel_evaluations = 4;
  SessionResult result = RunSearch(&bench, &searcher, options);
  EXPECT_EQ(result.history.size(), 8u);
  for (const TrialRecord& trial : result.history) {
    EXPECT_TRUE(space.IsValid(trial.config));
  }
}

TEST(SessionParallel, DeployCheckRunsAtCommitTime) {
  // The deploy check executes serially during the merge, and demotions are
  // identical at any worker count.
  auto run = [](size_t eval_threads) {
    ConfigSpace space = BuildLinuxSearchSpace();
    Testbench bench(&space, AppId::kNginx);
    RandomSearcher searcher;
    SessionOptions options;
    options.max_iterations = 12;
    options.seed = 0x7a;
    options.parallel_evaluations = 4;
    options.eval_threads = eval_threads;
    options.deploy_check = [](const Configuration&, const TrialOutcome& outcome) {
      return outcome.metric >= 60000.0;  // Demote the slower half.
    };
    return RunSearch(&bench, &searcher, options);
  };
  SessionResult t1 = run(1);
  SessionResult t4 = run(4);
  ExpectSameHistory(t1.history, t4.history, "deploy-check");
  EXPECT_GT(t1.crashes, 0u);
  for (const TrialRecord& trial : t1.history) {
    if (trial.crashed() && trial.outcome.failure_reason == "deployment check failed") {
      EXPECT_EQ(trial.outcome.status, TrialOutcome::Status::kRunCrashed);
    }
  }
}

}  // namespace
}  // namespace wayfinder
