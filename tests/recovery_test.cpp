// Crash safety end to end: the write-ahead session journal, automatic
// recovery after kill -9, the filesystem fault-injection seam, and the
// client-side reconnect policy.
//
// The acceptance pins live here:
//   * kill -9 mid-search + restart converges to the SAME final result as an
//     uninterrupted run for a deterministic searcher (bit-exact Resume
//     through the journaled checkpoint-v2 live state);
//   * under injected ENOSPC / torn writes / fsync failures / crash-around-
//     rename, no committed trial and no accepted submission is ever lost —
//     the daemon degrades with a reported reason instead of crashing;
//   * with the journal disabled, SessionManager behaves exactly as the
//     pre-journal service (same results, no journal file).
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/configspace/linux_space.h"
#include "src/platform/checkpoint.h"
#include "src/platform/fs_faults.h"
#include "src/service/client.h"
#include "src/service/session_journal.h"
#include "src/service/session_manager.h"
#include "src/service/trial_store.h"
#include "src/util/rng.h"

namespace wayfinder {
namespace {

std::string FreshDir(const char* name) {
  std::string dir = (std::filesystem::temp_directory_path() / name).string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string DeterministicJob(const char* name, size_t iterations, uint64_t seed) {
  std::string yaml;
  yaml += std::string("name: ") + name + "\n";
  yaml += "os: linux\n";
  yaml += "application: nginx\n";
  yaml += "metric: performance\n";
  yaml += "budget:\n  iterations: " + std::to_string(iterations) + "\n";
  yaml += "search:\n  algorithm: random\n";
  yaml += "  seed: " + std::to_string(seed) + "\n";
  return yaml;
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Checkpoint text with the one wall-clock field (searcher_seconds, the
// 11th token of a trial line) blanked: everything else in a deterministic
// session — configs, outcomes, objectives, sim clock, live RNG state — must
// be byte-identical across runs, but searcher wall time never is.
std::string BlankWallClock(const std::string& checkpoint_text) {
  std::istringstream in(checkpoint_text);
  std::string out;
  for (std::string line; std::getline(in, line);) {
    if (line.rfind("trial ", 0) == 0) {
      size_t spaces = 0, start = std::string::npos;
      for (size_t i = 0; i < line.size(); ++i) {
        if (line[i] == ' ' && ++spaces == 11) {
          start = i + 1;
          break;
        }
      }
      if (start != std::string::npos) {
        size_t end = line.find(' ', start);
        line.replace(start, (end == std::string::npos ? line.size() : end) - start, "_");
      }
    }
    out += line + "\n";
  }
  return out;
}

size_t CountWaveRecords(const std::string& journal_path) {
  std::ifstream in(journal_path);
  size_t waves = 0;
  for (std::string line; std::getline(in, line);) {
    if (line.rfind("wave ", 0) == 0) {
      ++waves;
    }
  }
  return waves;
}

// ---------------------------------------------------------------------------
// Journal unit behaviour.

TEST(JournalEscapeTest, RoundTripsEveryPayloadShape) {
  for (const std::string text :
       {std::string(""), std::string("plain"), std::string("two\nlines\n"),
        std::string("back\\slash"), std::string("\r\n\r\n"),
        std::string("trail\\"), std::string(1000, '\n')}) {
    EXPECT_EQ(JournalUnescape(JournalEscape(text)), text);
    // The escaped form must be strictly one line.
    EXPECT_EQ(JournalEscape(text).find('\n'), std::string::npos);
    EXPECT_EQ(JournalEscape(text).find('\r'), std::string::npos);
  }
}

TEST(SessionJournalTest, AppendsReplayInSubmissionOrder) {
  std::string dir = FreshDir("wf-journal-replay");
  std::string path = dir + "/journal.wfj";
  {
    SessionJournal journal(path);
    ASSERT_TRUE(journal.Open().ok);
    ASSERT_TRUE(journal.AppendSubmit("s1", "job: one\n", true));
    ASSERT_TRUE(journal.AppendSubmit("s2", "job: two\n", false));
    ASSERT_TRUE(journal.AppendWave("s1", 3, false, "wayfinder-checkpoint v2\nparams 0\n"));
    ASSERT_TRUE(journal.AppendState("s1", "paused", ""));
    ASSERT_TRUE(journal.AppendState("s2", "failed", "step failed: boot crash"));
  }
  SessionJournal::ReplayResult replay = SessionJournal::Replay(path);
  ASSERT_TRUE(replay.ok) << replay.error;
  ASSERT_EQ(replay.sessions.size(), 2u);
  EXPECT_EQ(replay.sessions[0].id, "s1");
  EXPECT_TRUE(replay.sessions[0].warm_start);
  EXPECT_EQ(replay.sessions[0].job_text, "job: one\n");
  EXPECT_EQ(replay.sessions[0].job_hash, StableHash("job: one\n"));
  EXPECT_EQ(replay.sessions[0].state, "paused");
  ASSERT_EQ(replay.sessions[0].waves.size(), 1u);
  EXPECT_EQ(replay.sessions[0].waves[0].trials_total, 3u);
  EXPECT_FALSE(replay.sessions[0].waves[0].full);
  EXPECT_EQ(replay.sessions[1].state, "failed");
  EXPECT_EQ(replay.sessions[1].error, "step failed: boot crash");
}

TEST(SessionJournalTest, TornTailIsTruncatedOnOpenAndSkippedOnReplay) {
  std::string dir = FreshDir("wf-journal-torn");
  std::string path = dir + "/journal.wfj";
  {
    SessionJournal journal(path);
    ASSERT_TRUE(journal.Open().ok);
    ASSERT_TRUE(journal.AppendSubmit("s1", "job: one\n", false));
  }
  std::string clean = ReadFileOrEmpty(path);
  // A crash mid-append leaves an unterminated record. Replay must skip it...
  {
    std::ofstream out(path, std::ios::app | std::ios::binary);
    out << "state s1 done";  // No trailing newline: torn.
  }
  SessionJournal::ReplayResult replay = SessionJournal::Replay(path);
  ASSERT_TRUE(replay.ok);
  ASSERT_EQ(replay.sessions.size(), 1u);
  EXPECT_EQ(replay.sessions[0].state, "submitted");  // Torn record ignored.
  // ...and Open must truncate the file back to the last complete record.
  SessionJournal journal(path);
  SessionJournal::OpenResult opened = journal.Open();
  ASSERT_TRUE(opened.ok) << opened.error;
  EXPECT_EQ(opened.truncated_bytes, std::string("state s1 done").size());
  journal.Close();
  EXPECT_EQ(ReadFileOrEmpty(path), clean);
}

TEST(SessionJournalTest, RefusesAForeignFile) {
  std::string dir = FreshDir("wf-journal-foreign");
  std::string path = dir + "/not-a-journal";
  std::ofstream(path) << "operator data, hands off\n";
  SessionJournal journal(path);
  EXPECT_FALSE(journal.Open().ok);
}

TEST(SessionJournalTest, UnknownRecordKeywordsAreSkippedOnReplay) {
  std::string dir = FreshDir("wf-journal-future");
  std::string path = dir + "/journal.wfj";
  std::ofstream(path) << SessionJournal::Header()
                      << SessionJournal::SubmitLine("s1", "job: one\n", false)
                      << "lease s1 owner=host-7 ttl=30\n"  // A future record.
                      << SessionJournal::StateLine("s1", "done", "");
  SessionJournal::ReplayResult replay = SessionJournal::Replay(path);
  ASSERT_TRUE(replay.ok) << replay.error;
  ASSERT_EQ(replay.sessions.size(), 1u);
  EXPECT_EQ(replay.sessions[0].state, "done");
}

TEST(SessionJournalTest, FirstFailedAppendDegradesPermanently) {
  std::string dir = FreshDir("wf-journal-enospc");
  SessionJournal journal(dir + "/journal.wfj");
  ASSERT_TRUE(journal.Open().ok);
  ASSERT_TRUE(journal.AppendSubmit("s1", "job: one\n", false));

  FsFaultPlan plan;
  plan.fail_write_at = 0;  // The very next write fails with ENOSPC.
  FsFaultInjector::Instance().Arm(plan);
  EXPECT_FALSE(journal.AppendWave("s1", 1, false, "payload"));
  FsFaultInjector::Instance().Disarm();

  EXPECT_FALSE(journal.healthy());
  EXPECT_NE(journal.degraded_reason().find("No space left"), std::string::npos)
      << journal.degraded_reason();
  // Degraded is sticky: even with the disk healthy again, appends stay off
  // (the on-disk prefix is valid and must not gain a gap).
  EXPECT_FALSE(journal.AppendState("s1", "done", ""));
  journal.Close();

  SessionJournal::ReplayResult replay = SessionJournal::Replay(journal.path());
  ASSERT_TRUE(replay.ok);
  ASSERT_EQ(replay.sessions.size(), 1u);  // The durable prefix survived.
  EXPECT_TRUE(replay.sessions[0].waves.empty());
}

// ---------------------------------------------------------------------------
// Fault-injection seam.

TEST(FsFaultsTest, AtomicWriteFileSurvivesCrashAroundRename) {
  std::string dir = FreshDir("wf-atomic");
  std::string path = dir + "/target";
  ASSERT_TRUE(AtomicWriteFile(path, "old contents\n"));

  // Crash BEFORE the rename: target keeps the old bytes, tmp is left
  // behind exactly as a real crash would leave it.
  FsFaultPlan plan;
  plan.crash_before_rename_at = 0;
  FsFaultInjector::Instance().Arm(plan);
  std::string error;
  EXPECT_FALSE(AtomicWriteFile(path, "new contents\n", &error));
  FsFaultInjector::Instance().Disarm();
  EXPECT_EQ(ReadFileOrEmpty(path), "old contents\n");
  EXPECT_TRUE(std::filesystem::exists(path + ".tmp"));
  std::filesystem::remove(path + ".tmp");

  // Crash AFTER the rename: the replace already committed — the new bytes
  // are the file, whole, never a torn mixture.
  plan = FsFaultPlan();
  plan.crash_after_rename_at = 0;
  FsFaultInjector::Instance().Arm(plan);
  EXPECT_FALSE(AtomicWriteFile(path, "new contents\n", &error));
  FsFaultInjector::Instance().Disarm();
  EXPECT_EQ(ReadFileOrEmpty(path), "new contents\n");
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(FsFaultsTest, SeededProbabilisticPlanIsDeterministic) {
  FsFaultPlan plan;
  plan.seed = 99;
  plan.write_fail_prob = 0.5;
  std::vector<int> first;
  for (int round = 0; round < 2; ++round) {
    FsFaultInjector::Instance().Arm(plan);
    std::vector<int> outcomes;
    for (int i = 0; i < 64; ++i) {
      outcomes.push_back(static_cast<int>(FsFaultInjector::Instance().NextWrite()));
    }
    FsFaultInjector::Instance().Disarm();
    if (round == 0) {
      first = outcomes;
      // A 0.5 plan must actually fire both ways.
      EXPECT_NE(std::count(first.begin(), first.end(), 0), 0);
      EXPECT_NE(std::count(first.begin(), first.end(), 0), 64);
    } else {
      EXPECT_EQ(outcomes, first);  // Same seed, same plan, same schedule.
    }
  }
}

// The compaction crash-window satellite: a crash between writing the
// compacted tmp file and the rename used to leave `<key>.wftrials.tmp`
// around forever. Open now sweeps stale tmps, and the store contents stay
// the pre-compaction records (the rename never happened).
TEST(TrialStoreFaultTest, CompactionCrashLeavesNoStaleTmpAfterReopen) {
  std::string dir = FreshDir("wf-store-crash");
  ConfigSpace space = BuildLinuxSearchSpace();
  std::string key;
  {
    SessionManagerOptions options;
    options.store_dir = dir;
    SessionManager manager(options);
    std::string id, error;
    ASSERT_TRUE(manager.Submit(DeterministicJob("crash-compact", 6, 41), false, &id,
                               &error))
        << error;
    ASSERT_TRUE(manager.WaitDone(id, 30000));
    SessionStatus status;
    ASSERT_TRUE(manager.Status(id, &status));
    key = status.store_key;
    manager.Shutdown();
  }

  TrialStore store(dir);
  ASSERT_EQ(store.Load(key, space).trials.size(), 6u);
  FsFaultPlan plan;
  plan.crash_before_rename_at = 0;
  FsFaultInjector::Instance().Arm(plan);
  TrialStore::CompactStats stats = store.CompactAll();
  EXPECT_FALSE(stats.ok) << stats.error;
  FsFaultInjector::Instance().Disarm();
  store.FsyncClose();
  // The injected crash leaves the tmp behind, as a real crash would.
  bool saw_tmp = false;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    saw_tmp |= entry.path().string().find(".wftrials.tmp") != std::string::npos;
  }
  EXPECT_TRUE(saw_tmp);

  // Reopen: the sweep removes the stale tmp; no trial was lost.
  TrialStore reopened(dir);
  EXPECT_EQ(reopened.Load(key, space).trials.size(), 6u);
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    EXPECT_EQ(entry.path().string().find(".wftrials.tmp"), std::string::npos)
        << entry.path();
  }
}

// ---------------------------------------------------------------------------
// Manager-level recovery.

SessionManagerOptions ManagerOptions(const std::string& dir, bool journal = true) {
  SessionManagerOptions options;
  options.store_dir = dir + "/store";
  if (journal) {
    options.journal_path = dir + "/store/journal.wfj";
  }
  return options;
}

// The journal-off pin: with journal_path empty the manager must behave
// exactly as the pre-journal service — identical results, and no journal
// file anywhere near the store.
TEST(RecoveryTest, DisabledJournalChangesNothing) {
  std::string with_dir = FreshDir("wf-rec-journal-on");
  std::string without_dir = FreshDir("wf-rec-journal-off");
  std::string job = DeterministicJob("pinned", 10, 4242);
  std::string with_text, without_text;
  for (int pass = 0; pass < 2; ++pass) {
    bool journal = pass == 0;
    SessionManager manager(ManagerOptions(journal ? with_dir : without_dir, journal));
    std::string id, error;
    ASSERT_TRUE(manager.Submit(job, false, &id, &error)) << error;
    ASSERT_TRUE(manager.WaitDone(id, 30000));
    std::string text;
    ASSERT_TRUE(manager.Result(id, &text, &error)) << error;
    (journal ? with_text : without_text) = text;
    manager.Shutdown();
  }
  EXPECT_EQ(BlankWallClock(with_text), BlankWallClock(without_text));
  EXPECT_FALSE(std::filesystem::exists(without_dir + "/store/journal.wfj"));
  EXPECT_TRUE(std::filesystem::exists(with_dir + "/store/journal.wfj"));
}

// The kill-9 determinism pin. A child process runs a deterministic session
// with the journal on; the parent SIGKILLs it mid-search (after a few wave
// records are durable), recovers in a fresh manager over the same
// directories, lets the session finish, and the final checkpoint must be
// byte-identical to an uninterrupted run of the same job.
TEST(RecoveryTest, Kill9MidSearchConvergesToUninterruptedResult) {
  std::string crash_dir = FreshDir("wf-rec-kill9");
  std::string clean_dir = FreshDir("wf-rec-kill9-clean");
  std::string job = DeterministicJob("kill9", 24, 777);
  std::string journal_path = crash_dir + "/store/journal.wfj";

  pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: run the session under the journal until killed. Everything
    // here must _exit — returning would re-run gtest in the child.
    SessionManager manager(ManagerOptions(crash_dir));
    std::string id, error;
    if (!manager.Submit(job, false, &id, &error)) {
      _exit(10);
    }
    manager.WaitDone(id, 60000);
    // Unexpectedly finished before the kill landed: still fine — recovery
    // then resurrects a done session and the comparison below holds.
    for (;;) {
      std::this_thread::sleep_for(std::chrono::seconds(1));
    }
  }

  // Parent: wait until at least a few waves are journaled, then kill -9.
  for (int spin = 0; spin < 2000 && CountWaveRecords(journal_path) < 5; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GE(CountWaveRecords(journal_path), 5u) << "child never made progress";
  ASSERT_EQ(kill(child, SIGKILL), 0);
  int wait_status = 0;
  ASSERT_EQ(waitpid(child, &wait_status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(wait_status));

  // Recover over the same directories and let the session run out.
  SessionManager recovered(ManagerOptions(crash_dir));
  std::string summary;
  ASSERT_TRUE(recovered.Recover(&summary)) << summary;
  EXPECT_NE(summary.find("recovered 1 session(s)"), std::string::npos) << summary;
  std::vector<SessionStatus> sessions = recovered.List();
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_TRUE(sessions[0].recovered);
  std::string id = sessions[0].id;
  ASSERT_TRUE(recovered.WaitDone(id, 60000));
  std::string recovered_text, error;
  ASSERT_TRUE(recovered.Result(id, &recovered_text, &error)) << error;
  recovered.Shutdown();

  // The uninterrupted control run.
  SessionManager control(ManagerOptions(clean_dir));
  std::string control_id;
  ASSERT_TRUE(control.Submit(job, false, &control_id, &error)) << error;
  ASSERT_TRUE(control.WaitDone(control_id, 60000));
  std::string control_text;
  ASSERT_TRUE(control.Result(control_id, &control_text, &error)) << error;
  control.Shutdown();

  EXPECT_EQ(BlankWallClock(recovered_text), BlankWallClock(control_text))
      << "kill -9 + recovery diverged from the uninterrupted run";
}

// A submission the daemon accepted but never started must survive: the
// write-ahead submit record alone is enough to requeue it.
TEST(RecoveryTest, AcceptedButNeverStartedSubmissionIsRequeued) {
  std::string dir = FreshDir("wf-rec-requeue");
  std::string job = DeterministicJob("requeued", 6, 11);
  std::string journal_path = dir + "/store/journal.wfj";
  std::filesystem::create_directories(dir + "/store");
  {
    SessionJournal journal(journal_path);
    ASSERT_TRUE(journal.Open().ok);
    ASSERT_TRUE(journal.AppendSubmit("s1", job, false));
  }
  SessionManager manager(ManagerOptions(dir));
  std::string summary;
  ASSERT_TRUE(manager.Recover(&summary)) << summary;
  EXPECT_NE(summary.find("1 requeued"), std::string::npos) << summary;
  ASSERT_TRUE(manager.WaitDone("s1", 30000));
  SessionStatus status;
  ASSERT_TRUE(manager.Status("s1", &status));
  EXPECT_EQ(status.state, "done");
  EXPECT_TRUE(status.recovered);
  EXPECT_EQ(status.trials, 6u);
  // New submissions keep numbering past the recovered ids.
  std::string id, error;
  ASSERT_TRUE(manager.Submit(DeterministicJob("next", 3, 12), false, &id, &error));
  EXPECT_EQ(id, "s2");
  manager.Shutdown();
}

TEST(RecoveryTest, FinishedSessionsComeBackQueryable) {
  std::string dir = FreshDir("wf-rec-done");
  std::string job = DeterministicJob("finished", 8, 21);
  std::string pre_crash_history;
  {
    SessionManager manager(ManagerOptions(dir));
    std::string id, error;
    ASSERT_TRUE(manager.Submit(job, false, &id, &error)) << error;
    ASSERT_TRUE(manager.WaitDone(id, 30000));
    ASSERT_TRUE(manager.Result(id, &pre_crash_history, &error));
    manager.Shutdown();
  }
  SessionManager manager(ManagerOptions(dir));
  std::string summary;
  ASSERT_TRUE(manager.Recover(&summary)) << summary;
  EXPECT_NE(summary.find("1 finished"), std::string::npos) << summary;
  SessionStatus status;
  ASSERT_TRUE(manager.Status("s1", &status));
  EXPECT_EQ(status.state, "done");
  EXPECT_TRUE(status.recovered);
  EXPECT_EQ(status.trials, 8u);
  // The trial history survives verbatim. A recovered terminal session
  // renders replay-only (no live-state lines — the final searcher state
  // died with the process and a finished session never resumes), so strip
  // those lines from the pre-crash text before comparing.
  std::string text, error;
  ASSERT_TRUE(manager.Result("s1", &text, &error));
  std::string before;
  std::istringstream lines(pre_crash_history);
  for (std::string line; std::getline(lines, line);) {
    if (line.rfind("rng-session ", 0) == 0 || line.rfind("rng-searcher ", 0) == 0 ||
        line.rfind("searcher-state ", 0) == 0) {
      continue;
    }
    before += line + "\n";
  }
  EXPECT_EQ(text, before);
  manager.Shutdown();
}

TEST(RecoveryTest, PausedSessionComesBackPaused) {
  std::string dir = FreshDir("wf-rec-paused");
  std::string job = DeterministicJob("paused", 6, 31);
  std::string journal_path = dir + "/store/journal.wfj";
  std::filesystem::create_directories(dir + "/store");
  {
    SessionJournal journal(journal_path);
    ASSERT_TRUE(journal.Open().ok);
    ASSERT_TRUE(journal.AppendSubmit("s1", job, false));
    ASSERT_TRUE(journal.AppendState("s1", "paused", ""));
  }
  SessionManager manager(ManagerOptions(dir));
  std::string summary;
  ASSERT_TRUE(manager.Recover(&summary)) << summary;
  // The pause request re-lands at the first wave boundary; wait for it.
  SessionStatus status;
  for (int spin = 0; spin < 2000; ++spin) {
    ASSERT_TRUE(manager.Status("s1", &status));
    if (status.state == "paused" || status.state == "done") {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(status.state, "paused");
  // And it resumes normally.
  ASSERT_TRUE(manager.Resume("s1"));
  ASSERT_TRUE(manager.WaitDone("s1", 30000));
  manager.Shutdown();
}

// Nothing is silently dropped: a journal whose job text no longer matches
// its hash (disk corruption) resurfaces as a failed session with an
// `unrecoverable:` reason, never as a vanished one.
TEST(RecoveryTest, CorruptJournalEntryBecomesFailedNotLost) {
  std::string dir = FreshDir("wf-rec-corrupt");
  std::string journal_path = dir + "/store/journal.wfj";
  std::filesystem::create_directories(dir + "/store");
  {
    std::ofstream out(journal_path, std::ios::binary);
    out << SessionJournal::Header();
    out << "submit s1 0 00000000deadbeef "
        << JournalEscape(DeterministicJob("tampered", 4, 5)) << "\n";
  }
  SessionManager manager(ManagerOptions(dir));
  std::string summary;
  ASSERT_TRUE(manager.Recover(&summary)) << summary;
  EXPECT_NE(summary.find("1 unrecoverable"), std::string::npos) << summary;
  SessionStatus status;
  ASSERT_TRUE(manager.Status("s1", &status));
  EXPECT_EQ(status.state, "failed");
  EXPECT_TRUE(status.recovered);
  EXPECT_NE(status.error.find("unrecoverable:"), std::string::npos) << status.error;
  manager.Shutdown();
}

// ENOSPC on the journal write path: the daemon degrades — the reason is
// queryable, appends stop — but serving, searching, and the trial store
// keep working. Accepted work completes; committed trials reach the store.
TEST(RecoveryTest, JournalEnospcDegradesWithoutLosingTrials) {
  std::string dir = FreshDir("wf-rec-enospc");
  SessionManager manager(ManagerOptions(dir));
  std::string healthy_reason;
  ASSERT_TRUE(manager.JournalHealthy(&healthy_reason)) << healthy_reason;

  // The next FaultWrite after Arm is the write-ahead submit append (the
  // store has nothing to write until a driver commits a wave).
  FsFaultPlan plan;
  plan.fail_write_at = 0;
  FsFaultInjector::Instance().Arm(plan);
  std::string id, error;
  ASSERT_TRUE(manager.Submit(DeterministicJob("degraded", 6, 51), false, &id, &error))
      << error;
  FsFaultInjector::Instance().Disarm();

  std::string reason;
  EXPECT_FALSE(manager.JournalHealthy(&reason));
  EXPECT_NE(reason.find("No space left"), std::string::npos) << reason;

  ASSERT_TRUE(manager.WaitDone(id, 30000));
  SessionStatus status;
  ASSERT_TRUE(manager.Status(id, &status));
  EXPECT_EQ(status.state, "done");
  EXPECT_EQ(status.trials, 6u);
  std::string key = status.store_key;
  manager.Shutdown();

  // Every committed trial reached the store despite the degraded journal.
  TrialStore store(dir + "/store");
  ConfigSpace space = BuildLinuxSearchSpace();
  EXPECT_EQ(store.Load(key, space).trials.size(), 6u);
}

TEST(RecoveryTest, UnopenableJournalStillServes) {
  std::string dir = FreshDir("wf-rec-badjournal");
  std::filesystem::create_directories(dir + "/store/journal.wfj");  // A DIRECTORY.
  SessionManager manager(ManagerOptions(dir));
  std::string reason;
  EXPECT_FALSE(manager.JournalHealthy(&reason));
  EXPECT_NE(reason.find("journal open failed"), std::string::npos) << reason;
  std::string id, error;
  ASSERT_TRUE(manager.Submit(DeterministicJob("noj", 4, 61), false, &id, &error))
      << error;
  ASSERT_TRUE(manager.WaitDone(id, 30000));
  manager.Shutdown();
}

// After recovery the journal is compacted: one submit + at most one full
// wave + one state record per session, and a second recovery over the
// compacted file reproduces the same fleet.
TEST(RecoveryTest, JournalIsCompactedAfterRecovery) {
  std::string dir = FreshDir("wf-rec-compact");
  std::string job = DeterministicJob("compacted", 8, 71);
  std::string journal_path = dir + "/store/journal.wfj";
  {
    SessionManager manager(ManagerOptions(dir));
    std::string id, error;
    ASSERT_TRUE(manager.Submit(job, false, &id, &error)) << error;
    ASSERT_TRUE(manager.WaitDone(id, 30000));
    manager.Shutdown();
  }
  // 8 iterations = several wave records pre-compaction.
  ASSERT_GE(CountWaveRecords(journal_path), 2u);
  {
    SessionManager manager(ManagerOptions(dir));
    std::string summary;
    ASSERT_TRUE(manager.Recover(&summary)) << summary;
    manager.Shutdown();
  }
  EXPECT_EQ(CountWaveRecords(journal_path), 1u);  // One full record now.
  // Round trip: the compacted journal recovers the same session.
  SessionManager manager(ManagerOptions(dir));
  std::string summary;
  ASSERT_TRUE(manager.Recover(&summary)) << summary;
  SessionStatus status;
  ASSERT_TRUE(manager.Status("s1", &status));
  EXPECT_EQ(status.state, "done");
  EXPECT_EQ(status.trials, 8u);
  manager.Shutdown();
}

// ---------------------------------------------------------------------------
// Client-side reconnect policy.

TEST(ReconnectTest, BackoffGrowsExponentiallyWithBoundedJitter) {
  ReconnectPolicy policy;
  policy.base_delay_ms = 50;
  policy.max_delay_ms = 400;
  policy.seed = 7;
  uint64_t state = policy.seed;
  int previous_nominal = 0;
  for (int attempt = 1; attempt <= 6; ++attempt) {
    int nominal = std::min(400, 50 << (attempt - 1));
    int delay = BackoffDelayMs(policy, attempt, &state);
    EXPECT_GE(delay, nominal / 2) << attempt;
    EXPECT_LE(delay, nominal) << attempt;
    EXPECT_GE(nominal, previous_nominal);
    previous_nominal = nominal;
  }
  // Deterministic for a fixed seed: the soak and this test can both pin it.
  uint64_t a = policy.seed, b = policy.seed;
  EXPECT_EQ(BackoffDelayMs(policy, 3, &a), BackoffDelayMs(policy, 3, &b));
}

TEST(ReconnectTest, OnlyIdempotentCommandsRetryByDefault) {
  EXPECT_TRUE(IdempotentServiceCommand("status"));
  EXPECT_TRUE(IdempotentServiceCommand("result"));
  EXPECT_TRUE(IdempotentServiceCommand("watch"));
  EXPECT_TRUE(IdempotentServiceCommand("ping"));
  EXPECT_FALSE(IdempotentServiceCommand("submit"));
  EXPECT_FALSE(IdempotentServiceCommand("pause"));
  EXPECT_FALSE(IdempotentServiceCommand("resume"));
  EXPECT_FALSE(IdempotentServiceCommand("stop"));
  EXPECT_FALSE(IdempotentServiceCommand("compact"));
}

TEST(ReconnectTest, RetryStopsAtNonTransportFailures) {
  // No daemon at this path: every attempt is a transport failure, so a
  // 2-attempt policy dials 3 times and still reports the connect error.
  ReconnectPolicy policy;
  policy.attempts = 2;
  policy.base_delay_ms = 1;
  policy.max_delay_ms = 2;
  ServiceRequest request;
  request.command = "status";
  auto start = std::chrono::steady_clock::now();
  ServiceCallResult result =
      CallServiceRetry("/tmp/wf-definitely-no-daemon.sock", request, policy);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.transport_error);
  // It really slept between attempts (>= 2 backoff delays >= 1ms each).
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - start)
                .count(),
            1);

  // A non-idempotent command must NOT burn retry attempts by default.
  request.command = "submit";
  result = CallServiceRetry("/tmp/wf-definitely-no-daemon.sock", request, policy,
                            "name: x\n");
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.transport_error);
}

}  // namespace
}  // namespace wayfinder
