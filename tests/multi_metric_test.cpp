// Tests for the multi-metric extension (§3.2): the K-target heteroscedastic
// loss, the MultiDtm (K objective heads + K uncertainty heads), and the
// MultiMetricSearcher that aggregates per-metric Eq. 3 scores.
#include <cmath>
#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "src/configspace/linux_space.h"
#include "src/configspace/unikraft_space.h"
#include "src/core/multi_dtm.h"
#include "src/core/multi_metric.h"
#include "src/nn/losses.h"
#include "src/platform/session.h"
#include "src/simos/testbench.h"

namespace wayfinder {
namespace {

// ---------------------------------------------------------------------------
// HeteroscedasticLossMulti.

TEST(MultiLossTest, SingleColumnMatchesScalarLoss) {
  Matrix yhat(3, 1);
  Matrix s(3, 1);
  std::vector<double> y = {1.0, -0.5, 2.0};
  std::vector<std::vector<double>> y_multi = {{1.0}, {-0.5}, {2.0}};
  std::vector<bool> mask = {true, true, true};
  yhat.At(0, 0) = 0.8;
  yhat.At(1, 0) = 0.0;
  yhat.At(2, 0) = 2.5;
  s.At(0, 0) = 0.1;
  s.At(1, 0) = -0.2;
  s.At(2, 0) = 0.3;

  Matrix dy1, ds1, dy2, ds2;
  double scalar = HeteroscedasticLoss(yhat, s, y, mask, &dy1, &ds1);
  double multi = HeteroscedasticLossMulti(yhat, s, y_multi, mask, &dy2, &ds2);
  EXPECT_NEAR(scalar, multi, 1e-12);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(dy1.At(i, 0), dy2.At(i, 0), 1e-12);
    EXPECT_NEAR(ds1.At(i, 0), ds2.At(i, 0), 1e-12);
  }
}

TEST(MultiLossTest, MaskedRowsContributeNothing) {
  Matrix yhat(2, 2);
  Matrix s(2, 2);
  std::vector<std::vector<double>> y = {{1.0, 2.0}, {100.0, -100.0}};
  std::vector<bool> mask = {true, false};
  yhat.At(0, 0) = 1.0;
  yhat.At(0, 1) = 2.0;
  yhat.At(1, 0) = 0.0;
  yhat.At(1, 1) = 0.0;

  Matrix dy, ds;
  double loss = HeteroscedasticLossMulti(yhat, s, y, mask, &dy, &ds);
  // Row 0 predicts perfectly (err = 0, s = 0): loss is exactly 0.
  EXPECT_NEAR(loss, 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(dy.At(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(dy.At(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(ds.At(1, 0), 0.0);
}

TEST(MultiLossTest, AllMaskedIsZero) {
  Matrix yhat(2, 3);
  Matrix s(2, 3);
  std::vector<std::vector<double>> y = {{1, 2, 3}, {4, 5, 6}};
  std::vector<bool> mask = {false, false};
  Matrix dy, ds;
  EXPECT_DOUBLE_EQ(HeteroscedasticLossMulti(yhat, s, y, mask, &dy, &ds), 0.0);
}

TEST(MultiLossTest, GradientMatchesFiniteDifference) {
  Matrix yhat(2, 2);
  Matrix s(2, 2);
  std::vector<std::vector<double>> y = {{0.5, -1.0}, {1.5, 0.2}};
  std::vector<bool> mask = {true, true};
  yhat.At(0, 0) = 0.2;
  yhat.At(0, 1) = -0.6;
  yhat.At(1, 0) = 1.1;
  yhat.At(1, 1) = 0.0;
  s.At(0, 0) = 0.3;
  s.At(0, 1) = -0.1;
  s.At(1, 0) = 0.0;
  s.At(1, 1) = 0.5;

  Matrix dy, ds;
  HeteroscedasticLossMulti(yhat, s, y, mask, &dy, &ds);

  const double eps = 1e-6;
  for (size_t i = 0; i < 2; ++i) {
    for (size_t k = 0; k < 2; ++k) {
      Matrix y_hi = yhat;
      Matrix y_lo = yhat;
      y_hi.At(i, k) += eps;
      y_lo.At(i, k) -= eps;
      Matrix tmp1, tmp2;
      double hi = HeteroscedasticLossMulti(y_hi, s, y, mask, &tmp1, &tmp2);
      double lo = HeteroscedasticLossMulti(y_lo, s, y, mask, &tmp1, &tmp2);
      EXPECT_NEAR(dy.At(i, k), (hi - lo) / (2 * eps), 1e-5) << i << "," << k;

      Matrix s_hi = s;
      Matrix s_lo = s;
      s_hi.At(i, k) += eps;
      s_lo.At(i, k) -= eps;
      hi = HeteroscedasticLossMulti(yhat, s_hi, y, mask, &tmp1, &tmp2);
      lo = HeteroscedasticLossMulti(yhat, s_lo, y, mask, &tmp1, &tmp2);
      EXPECT_NEAR(ds.At(i, k), (hi - lo) / (2 * eps), 1e-5) << i << "," << k;
    }
  }
}

// ---------------------------------------------------------------------------
// MultiDtm.

TEST(MultiDtmTest, PredictionShapesMatchMetricCount) {
  MultiDtm model(6, 3);
  MultiDtmPrediction prediction = model.Predict({0.1, 0.2, 0.3, 0.4, 0.5, 0.6});
  EXPECT_EQ(prediction.objectives.size(), 3u);
  EXPECT_EQ(prediction.sigmas.size(), 3u);
  EXPECT_GE(prediction.crash_prob, 0.0);
  EXPECT_LE(prediction.crash_prob, 1.0);
}

TEST(MultiDtmTest, PerMetricNormalizersAreIndependent) {
  DtmOptions options;
  options.steps_per_update = 1;
  MultiDtm model(2, 2, options);
  // Metric 0 ranges around 1000, metric 1 around 1.
  Rng rng(31);
  for (int i = 0; i < 40; ++i) {
    double a = rng.Uniform(900, 1100);
    double b = rng.Uniform(0.5, 1.5);
    model.AddSample({rng.Uniform(), rng.Uniform()}, false, {a, b});
  }
  model.Update();
  // Round trips through each normalizer recover the raw values.
  EXPECT_NEAR(model.DenormalizeObjective(0, model.NormalizeObjective(0, 1000.0)), 1000.0,
              1e-9);
  EXPECT_NEAR(model.DenormalizeObjective(1, model.NormalizeObjective(1, 1.0)), 1.0, 1e-9);
  // Scales differ by ~3 orders of magnitude.
  double z_a = model.NormalizeObjective(0, 1100.0);
  double z_b = model.NormalizeObjective(1, 1.5);
  EXPECT_LT(std::abs(z_a), 10.0);
  EXPECT_LT(std::abs(z_b), 10.0);
}

TEST(MultiDtmTest, TrainingReducesLossOnSeparableTargets) {
  DtmOptions options;
  options.steps_per_update = 16;
  options.seed = 7;
  MultiDtm model(3, 2, options);
  Rng rng(32);
  // Metric 0 = x0, metric 1 = -x1 (plus noise); crash when x2 > 0.8.
  for (int i = 0; i < 120; ++i) {
    double x0 = rng.Uniform();
    double x1 = rng.Uniform();
    double x2 = rng.Uniform();
    bool crashed = x2 > 0.8;
    model.AddSample({x0, x1, x2}, crashed, {x0 + 0.01 * rng.Normal(), -x1});
  }
  double first = model.Update();
  double last = 0.0;
  for (int epoch = 0; epoch < 30; ++epoch) {
    last = model.Update();
  }
  EXPECT_LT(last, first);
}

TEST(MultiDtmTest, SaveLoadRoundTripPreservesPredictions) {
  DtmOptions options;
  options.seed = 11;
  MultiDtm model(4, 2, options);
  Rng rng(33);
  for (int i = 0; i < 50; ++i) {
    std::vector<double> x = {rng.Uniform(), rng.Uniform(), rng.Uniform(), rng.Uniform()};
    model.AddSample(x, rng.Bernoulli(0.2), {x[0], x[1]});
  }
  for (int epoch = 0; epoch < 5; ++epoch) {
    model.Update();
  }

  std::filesystem::path path =
      std::filesystem::temp_directory_path() / "wf_multi_dtm_test.wfnn";
  ASSERT_TRUE(model.Save(path.string()));

  MultiDtm restored(4, 2, options);
  ASSERT_TRUE(restored.Load(path.string()));
  std::filesystem::remove(path);

  std::vector<double> probe = {0.3, 0.7, 0.1, 0.9};
  MultiDtmPrediction a = model.Predict(probe);
  MultiDtmPrediction b = restored.Predict(probe);
  EXPECT_NEAR(a.crash_prob, b.crash_prob, 1e-9);
  for (size_t k = 0; k < 2; ++k) {
    EXPECT_NEAR(a.objectives[k], b.objectives[k], 1e-9);
    EXPECT_NEAR(a.sigmas[k], b.sigmas[k], 1e-9);
  }
}

// Feeds the same fixed sample stream to a model (shared by the fast-path
// equivalence tests below).
void FeedSamples(MultiDtm& model, size_t count) {
  Rng rng(34);
  for (size_t i = 0; i < count; ++i) {
    std::vector<double> x(model.input_dim());
    for (double& v : x) {
      v = rng.Uniform();
    }
    std::vector<double> objectives(model.metric_count());
    for (double& o : objectives) {
      o = rng.Normal(0.0, 1.0);
    }
    model.AddSample(x, rng.Bernoulli(0.25), objectives);
  }
}

TEST(MultiDtmTest, NoAllocationAfterWarmup) {
  DtmOptions options;
  options.seed = 13;
  MultiDtm model(7, 3, options);
  FeedSamples(model, 48);
  std::vector<std::vector<double>> pool(96, std::vector<double>(7));
  Rng rng(35);
  for (auto& x : pool) {
    for (double& v : x) {
      v = rng.Uniform();
    }
  }

  // Warm the workspace: one predict round at this pool shape plus one
  // training round at the configured batch size.
  model.PredictBatch(pool);
  model.Update();
  model.PredictBatch(pool);
  size_t warm = model.workspace_grow_count();

  // Steady state: repeated same-shaped rounds must not grow any buffer —
  // the MultiDtm port shares the DTM's zero-alloc-after-warmup guarantee.
  for (int round = 0; round < 5; ++round) {
    model.PredictBatch(pool);
    model.Update();
  }
  EXPECT_EQ(model.workspace_grow_count(), warm);
}

TEST(MultiDtmTest, ThreadedTrainingBitIdenticalToSerial) {
  DtmOptions serial_options;
  serial_options.seed = 17;
  DtmOptions threaded_options;
  threaded_options.seed = 17;
  threaded_options.threads = 4;
  MultiDtm serial(6, 2, serial_options);
  MultiDtm threaded(6, 2, threaded_options);
  FeedSamples(serial, 40);
  FeedSamples(threaded, 40);
  serial.Update();
  threaded.Update();

  std::vector<std::vector<double>> pool(33, std::vector<double>(6));
  Rng rng(36);
  for (auto& x : pool) {
    for (double& v : x) {
      v = rng.Uniform();
    }
  }
  auto serial_pred = serial.PredictBatch(pool);
  auto threaded_pred = threaded.PredictBatch(pool);
  ASSERT_EQ(serial_pred.size(), threaded_pred.size());
  for (size_t i = 0; i < serial_pred.size(); ++i) {
    // Partitioning never changes per-element arithmetic: exact equality.
    EXPECT_EQ(serial_pred[i].crash_prob, threaded_pred[i].crash_prob) << i;
    for (size_t k = 0; k < 2; ++k) {
      EXPECT_EQ(serial_pred[i].objectives[k], threaded_pred[i].objectives[k]) << i;
      EXPECT_EQ(serial_pred[i].sigmas[k], threaded_pred[i].sigmas[k]) << i;
    }
  }
}

TEST(MultiDtmTest, TrainingUnchangedByKernelBackend) {
  DtmOptions portable_options;
  portable_options.seed = 19;
  portable_options.kernels = KernelBackend::kPortable;
  DtmOptions simd_options;
  simd_options.seed = 19;
  simd_options.kernels = KernelBackend::kAvx2;
  MultiDtm portable(5, 2, portable_options);
  MultiDtm simd(5, 2, simd_options);
  FeedSamples(portable, 40);
  FeedSamples(simd, 40);
  portable.Update();
  simd.Update();

  std::vector<double> probe = {0.2, 0.4, 0.6, 0.8, 0.5};
  MultiDtmPrediction a = portable.Predict(probe);
  MultiDtmPrediction b = simd.Predict(probe);
  // Backends are bit-identical by construction (falls back to portable on
  // hardware without AVX2, where this holds trivially).
  EXPECT_EQ(a.crash_prob, b.crash_prob);
  for (size_t k = 0; k < 2; ++k) {
    EXPECT_EQ(a.objectives[k], b.objectives[k]);
    EXPECT_EQ(a.sigmas[k], b.sigmas[k]);
  }
}

TEST(MultiDtmTest, BatchMatrixOverloadMatchesVectorApi) {
  DtmOptions options;
  options.seed = 23;
  MultiDtm model(4, 2, options);
  FeedSamples(model, 32);
  model.Update();
  std::vector<std::vector<double>> pool(9, std::vector<double>(4));
  Rng rng(37);
  for (auto& x : pool) {
    for (double& v : x) {
      v = rng.Uniform();
    }
  }
  Matrix staged(pool.size(), 4);
  for (size_t i = 0; i < pool.size(); ++i) {
    for (size_t j = 0; j < 4; ++j) {
      staged.At(i, j) = pool[i][j];
    }
  }
  auto from_vectors = model.PredictBatch(pool);
  auto from_matrix = model.PredictBatch(staged);
  ASSERT_EQ(from_vectors.size(), from_matrix.size());
  for (size_t i = 0; i < from_vectors.size(); ++i) {
    EXPECT_EQ(from_vectors[i].crash_prob, from_matrix[i].crash_prob) << i;
    for (size_t k = 0; k < 2; ++k) {
      EXPECT_EQ(from_vectors[i].objectives[k], from_matrix[i].objectives[k]) << i;
    }
  }
}

TEST(MultiDtmTest, MemoryGrowsWithReplayBuffer) {
  MultiDtm model(3, 2);
  size_t empty = model.MemoryBytes();
  for (int i = 0; i < 64; ++i) {
    model.AddSample({0.1, 0.2, 0.3}, false, {1.0, 2.0});
  }
  EXPECT_GT(model.MemoryBytes(), empty);
}

// ---------------------------------------------------------------------------
// MetricSpec.

TEST(MetricSpecTest, BuiltinExtractorsAndPolarity) {
  TrialOutcome outcome;
  outcome.metric = 15000.0;
  outcome.memory_mb = 210.0;

  MetricSpec throughput = MetricSpec::AppThroughput(2.0);
  EXPECT_EQ(throughput.name, "throughput");
  EXPECT_TRUE(throughput.higher_is_better);
  EXPECT_DOUBLE_EQ(throughput.weight, 2.0);
  EXPECT_DOUBLE_EQ(throughput.extract(outcome), 15000.0);

  MetricSpec memory = MetricSpec::MemoryFootprint();
  EXPECT_FALSE(memory.higher_is_better);
  EXPECT_DOUBLE_EQ(memory.extract(outcome), 210.0);
}

// ---------------------------------------------------------------------------
// MultiMetricSearcher.

TEST(MultiMetricSearcherTest, AggregateScorePrefersDominatingOutcomes) {
  ConfigSpace space = BuildUnikraftSpace();
  MultiMetricSearcher searcher(
      &space, {MetricSpec::AppThroughput(), MetricSpec::MemoryFootprint()});

  // Feed some history so the z-scores are meaningful.
  std::vector<TrialRecord> history;
  Rng rng(41);
  SearchContext context;
  context.space = &space;
  context.history = &history;
  context.rng = &rng;
  for (int i = 0; i < 20; ++i) {
    TrialRecord trial;
    trial.config = space.RandomConfiguration(rng);
    trial.outcome.status = TrialOutcome::Status::kOk;
    trial.outcome.metric = rng.Uniform(10000, 20000);
    trial.outcome.memory_mb = rng.Uniform(150, 250);
    trial.objective = trial.outcome.metric;
    searcher.Observe(trial, context);
  }

  TrialOutcome dominator;
  dominator.metric = 25000.0;  // More throughput...
  dominator.memory_mb = 100.0;  // ...and less memory.
  TrialOutcome dominated;
  dominated.metric = 9000.0;
  dominated.memory_mb = 300.0;
  EXPECT_GT(searcher.AggregateScore(dominator), searcher.AggregateScore(dominated));
}

TEST(MultiMetricSearcherTest, WeightsShiftTheTradeoff) {
  ConfigSpace space = BuildUnikraftSpace();
  // All weight on memory: a slow-but-tiny outcome must outrank a
  // fast-but-huge one.
  MultiMetricSearcher searcher(
      &space, {MetricSpec::AppThroughput(0.0), MetricSpec::MemoryFootprint(1.0)});
  std::vector<TrialRecord> history;
  Rng rng(42);
  SearchContext context;
  context.space = &space;
  context.history = &history;
  context.rng = &rng;
  for (int i = 0; i < 20; ++i) {
    TrialRecord trial;
    trial.config = space.RandomConfiguration(rng);
    trial.outcome.status = TrialOutcome::Status::kOk;
    trial.outcome.metric = rng.Uniform(10000, 20000);
    trial.outcome.memory_mb = rng.Uniform(150, 250);
    trial.objective = trial.outcome.metric;
    searcher.Observe(trial, context);
  }

  TrialOutcome tiny;
  tiny.metric = 5000.0;
  tiny.memory_mb = 120.0;
  TrialOutcome fast;
  fast.metric = 30000.0;
  fast.memory_mb = 280.0;
  EXPECT_GT(searcher.AggregateScore(tiny), searcher.AggregateScore(fast));
}

TEST(MultiMetricSearcherTest, SessionProposalsStayValid) {
  ConfigSpace space = BuildLinuxSearchSpace();
  MultiMetricOptions options;
  options.warmup = 5;
  options.pool_size = 32;
  options.model.steps_per_update = 4;
  MultiMetricSearcher searcher(
      &space, {MetricSpec::AppThroughput(), MetricSpec::MemoryFootprint()}, options);

  Testbench bench(&space, AppId::kNginx);
  SessionOptions session;
  session.max_iterations = 25;
  session.sample_options = SampleOptions::FavorRuntime();
  session.seed = 43;
  SearchSession run(&bench, &searcher, session);
  while (run.Step()) {
    ASSERT_TRUE(space.IsValid(run.history().back().config));
  }
  EXPECT_EQ(run.history().size(), 25u);
}

TEST(MultiMetricSearcherTest, TransferLearningRoundTrip) {
  ConfigSpace space = BuildUnikraftSpace();
  std::vector<MetricSpec> metrics = {MetricSpec::AppThroughput(),
                                     MetricSpec::MemoryFootprint()};
  MultiMetricOptions options;
  options.model.steps_per_update = 2;
  MultiMetricSearcher donor(&space, metrics, options);

  // Train the donor a little so the weights are distinctive.
  std::vector<TrialRecord> history;
  Rng rng(44);
  SearchContext context;
  context.space = &space;
  context.history = &history;
  context.rng = &rng;
  for (int i = 0; i < 15; ++i) {
    TrialRecord trial;
    trial.config = space.RandomConfiguration(rng);
    trial.outcome.status = TrialOutcome::Status::kOk;
    trial.outcome.metric = rng.Uniform(10000, 20000);
    trial.outcome.memory_mb = rng.Uniform(150, 250);
    trial.objective = trial.outcome.metric;
    donor.Observe(trial, context);
  }

  std::filesystem::path path =
      std::filesystem::temp_directory_path() / "wf_multi_tl_test.wfnn";
  ASSERT_TRUE(donor.SaveModel(path.string()));

  MultiMetricSearcher adopter(&space, metrics, options);
  EXPECT_FALSE(adopter.transferred());
  ASSERT_TRUE(adopter.LoadModel(path.string()));
  EXPECT_TRUE(adopter.transferred());
  std::filesystem::remove(path);

  Configuration probe = space.DefaultConfiguration();
  MultiDtmPrediction a = donor.PredictConfig(probe);
  MultiDtmPrediction b = adopter.PredictConfig(probe);
  EXPECT_NEAR(a.crash_prob, b.crash_prob, 1e-9);
  for (size_t k = 0; k < 2; ++k) {
    EXPECT_NEAR(a.objectives[k], b.objectives[k], 1e-9);
  }
}

TEST(MultiMetricSearcherTest, PredictConfigEmitsPerMetricVerdicts) {
  ConfigSpace space = BuildUnikraftSpace();
  MultiMetricSearcher searcher(
      &space, {MetricSpec::AppThroughput(), MetricSpec::MemoryFootprint()});
  MultiDtmPrediction prediction = searcher.PredictConfig(space.DefaultConfiguration());
  EXPECT_EQ(prediction.objectives.size(), 2u);
  EXPECT_EQ(prediction.sigmas.size(), 2u);
}

}  // namespace
}  // namespace wayfinder
