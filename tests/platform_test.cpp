// Tests for the orchestration layer: sessions (build-skip, budgets,
// objectives), grid search, series extraction, and job files.
#include <gtest/gtest.h>

#include <cmath>

#include "src/configspace/linux_space.h"
#include "src/platform/grid_search.h"
#include "src/platform/job_file.h"
#include "src/platform/random_search.h"
#include "src/platform/session.h"

namespace wayfinder {
namespace {

TEST(Session, RunsForExactIterationBudget) {
  ConfigSpace space = BuildLinuxSearchSpace();
  Testbench bench(&space, AppId::kNginx);
  RandomSearcher searcher;
  SessionOptions options;
  options.max_iterations = 30;
  options.seed = 1;
  SessionResult result = RunSearch(&bench, &searcher, options);
  EXPECT_EQ(result.history.size(), 30u);
  EXPECT_GT(result.total_sim_seconds, 0.0);
}

TEST(Session, StopsAtSimTimeBudget) {
  ConfigSpace space = BuildLinuxSearchSpace();
  Testbench bench(&space, AppId::kNginx);
  RandomSearcher searcher;
  SessionOptions options;
  options.max_iterations = 100000;
  options.max_sim_seconds = 2000.0;
  options.seed = 2;
  SessionResult result = RunSearch(&bench, &searcher, options);
  EXPECT_LT(result.history.size(), 200u);
  // The last trial may overshoot the budget, but not by more than one trial.
  EXPECT_LT(result.total_sim_seconds, 2000.0 + 1200.0);
}

TEST(Session, BuildSkippedForRuntimeOnlyChanges) {
  ConfigSpace space = BuildLinuxSearchSpace();
  Testbench bench(&space, AppId::kNginx);
  RandomSearcher searcher;
  SessionOptions options;
  options.max_iterations = 60;
  // Pure-runtime sampling: after the first image every trial reuses it.
  options.sample_options = SampleOptions{0.0, 0.0, 1.0};
  options.seed = 3;
  SessionResult result = RunSearch(&bench, &searcher, options);
  EXPECT_GE(result.builds_skipped, 50u);
  EXPECT_LE(result.builds, 10u);
}

TEST(Session, BestIndexTracksMaxObjective) {
  ConfigSpace space = BuildLinuxSearchSpace();
  Testbench bench(&space, AppId::kNginx);
  RandomSearcher searcher;
  SessionOptions options;
  options.max_iterations = 50;
  options.seed = 4;
  SessionResult result = RunSearch(&bench, &searcher, options);
  ASSERT_TRUE(result.best_index.has_value());
  const TrialRecord* best = result.best();
  for (const TrialRecord& trial : result.history) {
    if (trial.HasObjective()) {
      EXPECT_LE(trial.objective, best->objective);
    }
  }
  EXPECT_GT(result.TimeToBest(), 0.0);
}

TEST(Session, SqliteObjectivePolarityIsMinimize) {
  ConfigSpace space = BuildLinuxSearchSpace();
  Testbench bench(&space, AppId::kSqlite);
  RandomSearcher searcher;
  SessionOptions options;
  options.max_iterations = 40;
  options.seed = 5;
  SessionResult result = RunSearch(&bench, &searcher, options);
  ASSERT_TRUE(result.best_index.has_value());
  // Best objective = -latency; the best trial must have the lowest latency.
  const TrialRecord* best = result.best();
  for (const TrialRecord& trial : result.history) {
    if (trial.outcome.ok()) {
      EXPECT_GE(trial.outcome.metric, best->outcome.metric - 1e-9);
    }
  }
}

TEST(Session, MemoryObjectiveSkipsBenchmarkPhase) {
  ConfigSpace space = BuildLinuxSearchSpace();
  TestbenchOptions bench_options;
  bench_options.substrate = Substrate::kLinuxRiscvQemu;
  Testbench bench(&space, AppId::kNginx, bench_options);
  RandomSearcher searcher;
  SessionOptions options;
  options.max_iterations = 20;
  options.objective = ObjectiveKind::kMemoryFootprint;
  options.sample_options = SampleOptions::FavorCompileTime();
  options.seed = 6;
  SessionResult result = RunSearch(&bench, &searcher, options);
  for (const TrialRecord& trial : result.history) {
    EXPECT_DOUBLE_EQ(trial.outcome.run_seconds, 0.0);
    if (trial.HasObjective()) {
      EXPECT_NEAR(trial.objective, -trial.outcome.memory_mb, 1e-9);
    }
  }
}

TEST(Session, ScoreObjectiveIsMinMaxNormalized) {
  ConfigSpace space = BuildLinuxSearchSpace();
  Testbench bench(&space, AppId::kNginx);
  RandomSearcher searcher;
  SessionOptions options;
  options.max_iterations = 40;
  options.objective = ObjectiveKind::kScore;
  options.sample_options = SampleOptions::FavorRuntime();
  options.seed = 7;
  SessionResult result = RunSearch(&bench, &searcher, options);
  for (const TrialRecord& trial : result.history) {
    if (trial.HasObjective()) {
      EXPECT_GE(trial.objective, -1.0 - 1e-9);
      EXPECT_LE(trial.objective, 1.0 + 1e-9);
    }
  }
}

TEST(Session, CrashRateMatchesHistory) {
  ConfigSpace space = BuildLinuxSearchSpace();
  Testbench bench(&space, AppId::kNginx);
  RandomSearcher searcher;
  SessionOptions options;
  options.max_iterations = 80;
  options.sample_options = SampleOptions::FavorRuntime();
  options.seed = 8;
  SessionResult result = RunSearch(&bench, &searcher, options);
  size_t crashed = 0;
  for (const TrialRecord& trial : result.history) {
    crashed += trial.crashed() ? 1 : 0;
  }
  EXPECT_EQ(result.crashes, crashed);
  EXPECT_NEAR(result.CrashRate(), static_cast<double>(crashed) / 80.0, 1e-12);
}

TEST(SeriesExtraction, ObjectiveAndCrashSeries) {
  std::vector<TrialRecord> history(4);
  history[0].objective = 1.0;
  history[0].sim_time_end = 10.0;
  history[1].objective = std::nan("");
  history[1].outcome.status = TrialOutcome::Status::kRunCrashed;
  history[2].objective = 2.0;
  history[2].sim_time_end = 30.0;
  history[3].objective = 1.5;
  history[3].sim_time_end = 40.0;
  std::vector<SeriesPoint> series = ObjectiveSeries(history);
  ASSERT_EQ(series.size(), 3u);
  EXPECT_DOUBLE_EQ(series[1].time, 30.0);
  std::vector<double> crash = CrashRateSeries(history, 4);
  EXPECT_NEAR(crash.back(), 0.25, 1e-12);
}

TEST(GridSearch, SweepsOneParameterAtATime) {
  ConfigSpace space;
  space.Add(ParamSpec::Bool("a", ParamPhase::kRuntime, "net", false));
  space.Add(ParamSpec::Int("b", ParamPhase::kRuntime, "net", 0, 100, 50));
  GridSearcher searcher(3);
  std::vector<TrialRecord> history;
  Rng rng(9);
  SearchContext context;
  context.space = &space;
  context.history = &history;
  context.rng = &rng;
  Configuration def = space.DefaultConfiguration();
  // First proposals only vary "a".
  Configuration p1 = searcher.Propose(context);
  Configuration p2 = searcher.Propose(context);
  EXPECT_EQ(p1.Get("b"), def.Get("b"));
  EXPECT_EQ(p2.Get("b"), def.Get("b"));
  EXPECT_NE(p1.Get("a"), p2.Get("a"));
  // Then "b" sweeps its grid while "a" returns to default.
  Configuration p3 = searcher.Propose(context);
  EXPECT_EQ(p3.Get("a"), def.Get("a"));
}

TEST(GridSearch, CombinationPhaseUsesObservedBest) {
  ConfigSpace space;
  space.Add(ParamSpec::Bool("a", ParamPhase::kRuntime, "net", false));
  space.Add(ParamSpec::Bool("b", ParamPhase::kRuntime, "net", false));
  GridSearcher searcher(2);
  std::vector<TrialRecord> history;
  Rng rng(10);
  SearchContext context;
  context.space = &space;
  context.history = &history;
  context.rng = &rng;
  // Drive the sweep manually: objective = a + b.
  for (int i = 0; i < 4; ++i) {
    TrialRecord record;
    record.config = searcher.Propose(context);
    record.outcome.status = TrialOutcome::Status::kOk;
    record.objective =
        static_cast<double>(record.config.Get("a") + record.config.Get("b"));
    searcher.Observe(record, context);
  }
  // Exhausted: combination proposals should favor a=1/b=1 (modulo the one
  // random perturbation it injects).
  int both_on = 0;
  for (int i = 0; i < 10; ++i) {
    Configuration combo = searcher.Propose(context);
    both_on += (combo.Get("a") + combo.Get("b") == 2) ? 1 : 0;
  }
  EXPECT_GT(both_on, 3);
}

TEST(JobFile, ParsesFullSpec) {
  JobParseResult result = ParseJobText(R"(name: memtest
os: linux-riscv
application: redis
metric: memory
budget:
  iterations: 99
  sim_seconds: 5000
search:
  algorithm: bayesopt
  favor: compile
  seed: 77
)");
  ASSERT_TRUE(result.ok) << result.error;
  const JobSpec& spec = result.spec;
  EXPECT_EQ(spec.name, "memtest");
  EXPECT_EQ(spec.SubstrateKind(), Substrate::kLinuxRiscvQemu);
  EXPECT_EQ(spec.app, AppId::kRedis);
  EXPECT_EQ(spec.objective, ObjectiveKind::kMemoryFootprint);
  EXPECT_EQ(spec.algorithm, "bayesopt");
  EXPECT_EQ(spec.iterations, 99u);
  EXPECT_DOUBLE_EQ(spec.sim_seconds, 5000.0);
  EXPECT_EQ(spec.seed, 77u);
  SessionOptions options = spec.ToSessionOptions();
  EXPECT_EQ(options.objective, ObjectiveKind::kMemoryFootprint);
  EXPECT_LT(options.sample_options.runtime_prob, 0.1);
}

TEST(JobFile, DefaultsAreSane) {
  JobParseResult result = ParseJobText("name: minimal\n");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.spec.os, "linux");
  EXPECT_EQ(result.spec.app, AppId::kNginx);
  EXPECT_EQ(result.spec.algorithm, "deeptune");
  EXPECT_EQ(result.spec.iterations, 250u);
  EXPECT_EQ(result.spec.parallel, 1u);
  EXPECT_FALSE(result.spec.sliding);
}

TEST(JobFile, ParallelAndSlidingKeysReachSessionOptions) {
  JobParseResult result = ParseJobText("name: wide\nparallel: 4\nsliding: true\n");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.spec.parallel, 4u);
  EXPECT_TRUE(result.spec.sliding);
  SessionOptions options = result.spec.ToSessionOptions();
  EXPECT_EQ(options.parallel_evaluations, 4u);
  EXPECT_TRUE(options.sliding_window);
}

TEST(JobFile, RejectsUnknowns) {
  EXPECT_FALSE(ParseJobText("os: plan9\n").ok);
  EXPECT_FALSE(ParseJobText("application: doom\n").ok);
  EXPECT_FALSE(ParseJobText("metric: vibes\n").ok);
  EXPECT_FALSE(ParseJobText("freeze:\n  - value: 2\n").ok);
}

TEST(JobFile, UnikraftSpaceSelected) {
  JobParseResult result = ParseJobText("os: unikraft\n");
  ASSERT_TRUE(result.ok);
  ConfigSpace space = BuildJobSpace(result.spec);
  EXPECT_EQ(space.Size(), 33u);
}

}  // namespace
}  // namespace wayfinder
