// Tests for the parallel proposal pipeline (src/core/proposal.h) and the
// searcher-level determinism contracts that ride on it:
//
//   * pool assembly is bit-identical at any thread count (the pool layout is
//     arithmetic and every candidate has its own counter-derived RNG stream);
//   * a fixed-seed DeepTune search trajectory is bit-identical across the
//     full cross-product of thread counts {0, 1, 4} and kernel backends —
//     both axes at once, not each alone — and likewise for the
//     MultiMetricSearcher;
//   * the proposal path stays allocation-stable once warm, asserted through
//     DeepTuneSearcher::MemoryBytes so footprint regressions fail loudly;
//   * MemoryBytes accounts for the elite set and the memoized-encode cache.
//
// On hardware without AVX2/AVX-512 those backends fall back to portable and
// the corresponding combinations pass trivially.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/configspace/linux_space.h"
#include "src/core/deeptune.h"
#include "src/core/multi_metric.h"
#include "src/core/proposal.h"
#include "src/nn/kernels.h"
#include "src/platform/session.h"
#include "src/simos/testbench.h"
#include "src/util/rng.h"

namespace wayfinder {
namespace {

std::vector<KernelBackend> BackendsUnderTest() {
  // Unavailable backends still dispatch (to a fallback table), so keeping
  // them in the list costs nothing and keeps the cross-product exhaustive
  // where the hardware allows it.
  return {KernelBackend::kPortable, KernelBackend::kAvx2, KernelBackend::kAvx512};
}

std::string ComboName(KernelBackend backend, size_t threads) {
  return std::string(KernelBackendName(backend)) + "/t" + std::to_string(threads);
}

// --- pool assembly -----------------------------------------------------------

TEST(ProposalPipeline, PoolAssemblyBitIdenticalAcrossThreadCounts) {
  ConfigSpace space = BuildLinuxSearchSpace();
  Rng rng(0x9a7);
  std::vector<Configuration> elites;
  for (int i = 0; i < 3; ++i) {
    elites.push_back(space.RandomConfiguration(rng));
  }
  const uint64_t pool_seed = 0xfeedbeef;

  auto assemble = [&](size_t threads, bool line_search) {
    ProposalPoolSpec spec;
    spec.pool_size = 64;
    spec.exploit_fraction = 0.6;
    spec.max_mutations = 4;
    spec.line_search = line_search;
    spec.threads = threads;
    std::vector<Configuration> pool;
    Matrix encoded;
    AssembleProposalPool(space, elites, SampleOptions(), spec, pool_seed, pool, encoded);
    return std::make_pair(std::move(pool), std::move(encoded));
  };

  for (bool line_search : {true, false}) {
    auto [pool_serial, encoded_serial] = assemble(0, line_search);
    for (size_t threads : {1u, 3u, 4u, 7u}) {
      auto [pool_t, encoded_t] = assemble(threads, line_search);
      ASSERT_EQ(pool_serial.size(), pool_t.size());
      for (size_t i = 0; i < pool_serial.size(); ++i) {
        EXPECT_EQ(pool_serial[i].values(), pool_t[i].values())
            << "threads=" << threads << " line_search=" << line_search << " i=" << i;
      }
      ASSERT_EQ(encoded_serial.size(), encoded_t.size());
      for (size_t i = 0; i < encoded_serial.size(); ++i) {
        EXPECT_EQ(encoded_serial.data()[i], encoded_t.data()[i]) << i;
      }
    }
  }
}

TEST(ProposalPipeline, PoolSeedChangesThePool) {
  ConfigSpace space = BuildLinuxSearchSpace();
  ProposalPoolSpec spec;
  spec.pool_size = 16;
  std::vector<Configuration> pool_a, pool_b;
  Matrix encoded_a, encoded_b;
  AssembleProposalPool(space, {}, SampleOptions(), spec, 1, pool_a, encoded_a);
  AssembleProposalPool(space, {}, SampleOptions(), spec, 2, pool_b, encoded_b);
  size_t differing = 0;
  for (size_t i = 0; i < pool_a.size(); ++i) {
    differing += pool_a[i].values() == pool_b[i].values() ? 0 : 1;
  }
  EXPECT_GT(differing, 0u);
}

// --- trajectory pinning: the cross-product -----------------------------------

SessionResult RunDeepTune(KernelBackend backend, size_t threads) {
  ConfigSpace space = BuildLinuxSearchSpace();
  SessionOptions options;
  options.max_iterations = 60;
  options.sample_options = SampleOptions::FavorRuntime();
  options.seed = 0x60d;

  DeepTuneOptions searcher_options;
  searcher_options.model.kernels = backend;
  searcher_options.model.threads = threads;
  Testbench bench(&space, AppId::kRedis);
  DeepTuneSearcher searcher(&space, searcher_options);
  return RunSearch(&bench, &searcher, options);
}

// A fixed-seed 60-iteration DeepTune session proposes the exact same
// configuration sequence and finds the same best across every (backend,
// thread count) combination simultaneously — kernel backends change only
// speed, and the proposal pipeline's candidate streams are partition-free.
TEST(ProposalPipeline, SixtyIterationTrajectoryInvariantAcrossBackendsAndThreads) {
  SessionResult baseline = RunDeepTune(KernelBackend::kPortable, 0);
  ASSERT_EQ(baseline.history.size(), 60u);
  for (KernelBackend backend : BackendsUnderTest()) {
    for (size_t threads : {0u, 1u, 4u}) {
      if (backend == KernelBackend::kPortable && threads == 0) {
        continue;  // The baseline itself.
      }
      SessionResult result = RunDeepTune(backend, threads);
      ASSERT_EQ(baseline.history.size(), result.history.size())
          << ComboName(backend, threads);
      for (size_t i = 0; i < baseline.history.size(); ++i) {
        ASSERT_EQ(baseline.history[i].config.Hash(), result.history[i].config.Hash())
            << ComboName(backend, threads) << " diverged at iteration " << i;
        if (baseline.history[i].HasObjective()) {
          ASSERT_EQ(baseline.history[i].objective, result.history[i].objective)
              << ComboName(backend, threads) << " iteration " << i;
        }
      }
      EXPECT_EQ(baseline.best_index, result.best_index) << ComboName(backend, threads);
    }
  }
}

SessionResult RunMultiMetric(KernelBackend backend, size_t threads) {
  ConfigSpace space = BuildLinuxSearchSpace();
  SessionOptions options;
  options.max_iterations = 40;
  options.sample_options = SampleOptions::FavorRuntime();
  options.seed = 0x3b1;

  MultiMetricOptions searcher_options;
  searcher_options.warmup = 6;
  searcher_options.model.steps_per_update = 8;
  searcher_options.model.kernels = backend;
  searcher_options.model.threads = threads;
  Testbench bench(&space, AppId::kNginx);
  MultiMetricSearcher searcher(
      &space, {MetricSpec::AppThroughput(), MetricSpec::MemoryFootprint()},
      searcher_options);
  return RunSearch(&bench, &searcher, options);
}

TEST(ProposalPipeline, MultiMetricTrajectoryInvariantAcrossBackendsAndThreads) {
  SessionResult baseline = RunMultiMetric(KernelBackend::kPortable, 0);
  ASSERT_EQ(baseline.history.size(), 40u);
  for (KernelBackend backend : BackendsUnderTest()) {
    for (size_t threads : {0u, 1u, 4u}) {
      if (backend == KernelBackend::kPortable && threads == 0) {
        continue;
      }
      SessionResult result = RunMultiMetric(backend, threads);
      ASSERT_EQ(baseline.history.size(), result.history.size())
          << ComboName(backend, threads);
      for (size_t i = 0; i < baseline.history.size(); ++i) {
        ASSERT_EQ(baseline.history[i].config.Hash(), result.history[i].config.Hash())
            << ComboName(backend, threads) << " diverged at iteration " << i;
      }
      EXPECT_EQ(baseline.best_index, result.best_index) << ComboName(backend, threads);
    }
  }
}

// --- footprint ---------------------------------------------------------------

// Repeated Proposes on a warm searcher must not grow its live state: the
// candidate pool, its encoded batch, the history ring, and the model
// workspace are all reused in place. A growing footprint here is an
// allocation regression in the proposal hot path.
TEST(ProposalPipeline, WarmProposeFootprintIsStable) {
  ConfigSpace space = BuildLinuxSearchSpace();
  DeepTuneOptions options;
  options.warmup = 4;
  options.pool_size = 32;
  options.model.steps_per_update = 4;
  DeepTuneSearcher searcher(&space, options);

  Rng rng(0xf00);
  std::vector<TrialRecord> history;
  SearchContext context;
  context.space = &space;
  context.history = &history;
  context.rng = &rng;
  context.sample_options = SampleOptions::FavorRuntime();
  for (size_t i = 0; i < 16; ++i) {
    TrialRecord trial;
    trial.config = space.RandomConfiguration(rng, context.sample_options);
    trial.outcome.status = TrialOutcome::Status::kOk;
    trial.outcome.metric = rng.Normal(100.0, 10.0);
    trial.objective = trial.outcome.metric;
    searcher.Observe(trial, context);
    history.push_back(trial);
  }

  // Warm every proposal-path buffer (pool, encoded batch, history ring,
  // model workspace), then pin the footprint.
  searcher.Propose(context);
  searcher.Propose(context);
  size_t warm_bytes = searcher.MemoryBytes();
  size_t warm_grow = searcher.model().workspace_grow_count();
  for (int round = 0; round < 5; ++round) {
    searcher.Propose(context);
    EXPECT_EQ(searcher.MemoryBytes(), warm_bytes) << "round " << round;
  }
  EXPECT_EQ(searcher.model().workspace_grow_count(), warm_grow);
}

// MemoryBytes must cover the searcher's auxiliary state, not just the model:
// the elite set and the space's memoized-encode cache (populated by the
// searcher's Observe path).
TEST(ProposalPipeline, MemoryBytesIncludesElitesAndEncodeCache) {
  ConfigSpace space = BuildLinuxSearchSpace();
  DeepTuneOptions options;
  options.warmup = 2;
  options.pool_size = 16;
  options.model.steps_per_update = 2;
  DeepTuneSearcher searcher(&space, options);
  size_t fresh_bytes = searcher.MemoryBytes();

  Rng rng(0xe11);
  std::vector<TrialRecord> history;
  SearchContext context;
  context.space = &space;
  context.history = &history;
  context.rng = &rng;
  for (size_t i = 0; i < 6; ++i) {
    TrialRecord trial;
    trial.config = space.RandomConfiguration(rng);
    trial.outcome.status = TrialOutcome::Status::kOk;
    trial.outcome.metric = rng.Normal(100.0, 10.0);
    trial.objective = trial.outcome.metric;
    searcher.Observe(trial, context);
    history.push_back(trial);
  }

  // Observe populated the elite set and the encode cache; both must appear
  // in the footprint over and above the model's own growth.
  EXPECT_GT(space.EncodeCacheBytes(), 0u);
  size_t accounted = searcher.model().MemoryBytes() + space.EncodeCacheBytes();
  EXPECT_GE(searcher.MemoryBytes(), accounted);
  EXPECT_GT(searcher.MemoryBytes(), fresh_bytes);
}

}  // namespace
}  // namespace wayfinder
