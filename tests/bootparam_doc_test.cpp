// Tests for the kernel-parameters.txt-style boot-parameter documentation
// parser (§3.4's static analysis path for boot-time options).
#include <gtest/gtest.h>

#include "src/configspace/bootparam_doc.h"

namespace wayfinder {
namespace {

TEST(BootParamDocTest, ParsesIntWithRangeAndDefault) {
  BootParamDocResult result = ParseBootParamDoc(
      "somaxconn=\t[NET] Upper bound on the listen backlog.\n"
      "\t\tFormat: <int>\n"
      "\t\tDefault: 128\n"
      "\t\tRange: 16 65536\n");
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.params.size(), 1u);
  const ParamSpec& spec = result.params[0];
  EXPECT_EQ(spec.name, "somaxconn");
  EXPECT_EQ(spec.kind, ParamKind::kInt);
  EXPECT_EQ(spec.phase, ParamPhase::kBootTime);
  EXPECT_EQ(spec.subsystem, "net");
  EXPECT_EQ(spec.min_value, 16);
  EXPECT_EQ(spec.max_value, 65536);
  EXPECT_EQ(spec.default_value, 128);
  EXPECT_TRUE(spec.log_scale);  // Wide range.
  EXPECT_EQ(spec.help, "Upper bound on the listen backlog.");
}

TEST(BootParamDocTest, BareFlagBecomesDefaultOffBool) {
  BootParamDocResult result = ParseBootParamDoc(
      "nosmt\t\t[KNL] Disable symmetric multithreading.\n");
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.params.size(), 1u);
  EXPECT_EQ(result.params[0].kind, ParamKind::kBool);
  EXPECT_EQ(result.params[0].default_value, 0);
}

TEST(BootParamDocTest, ChoiceFormatBecomesCategorical) {
  BootParamDocResult result = ParseBootParamDoc(
      "mitigations=\t[X86,ARM64] Control CPU vulnerability mitigations.\n"
      "\t\tFormat: {auto|off|auto,nosmt}\n"
      "\t\tDefault: auto\n");
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.params.size(), 1u);
  const ParamSpec& spec = result.params[0];
  EXPECT_EQ(spec.kind, ParamKind::kString);
  EXPECT_EQ(spec.subsystem, "arch");  // First tag wins.
  ASSERT_EQ(spec.choices.size(), 3u);
  EXPECT_EQ(spec.choices[0], "auto");
  EXPECT_EQ(spec.choices[1], "off");
  EXPECT_EQ(spec.choices[2], "auto,nosmt");
  EXPECT_EQ(spec.default_value, 0);  // "auto".
}

TEST(BootParamDocTest, BoolFormatWithDefaultOn) {
  BootParamDocResult result = ParseBootParamDoc(
      "watchdog=\t[KNL] Enable the lockup watchdog.\n"
      "\t\tFormat: <bool>\n"
      "\t\tDefault: 1\n");
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.params.size(), 1u);
  EXPECT_EQ(result.params[0].kind, ParamKind::kBool);
  EXPECT_EQ(result.params[0].default_value, 1);
}

TEST(BootParamDocTest, ValueEntryWithoutFormatIsUndocumented) {
  BootParamDocResult result = ParseBootParamDoc(
      "console=\t[KNL] Output console device and options.\n"
      "\t\tProse description only, no Format line.\n"
      "somaxconn=\t[NET] Documented neighbor.\n"
      "\t\tFormat: <int>\n"
      "\t\tDefault: 128\n");
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.params.size(), 1u);
  EXPECT_EQ(result.params[0].name, "somaxconn");
  ASSERT_EQ(result.undocumented.size(), 1u);
  EXPECT_EQ(result.undocumented[0], "console");
}

TEST(BootParamDocTest, UnrecognizedFormatIsUndocumented) {
  BootParamDocResult result = ParseBootParamDoc(
      "isolcpus=\t[SCHED] Isolate CPUs.\n"
      "\t\tFormat: <cpu list>\n");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.params.empty());
  ASSERT_EQ(result.undocumented.size(), 1u);
  EXPECT_EQ(result.undocumented[0], "isolcpus");
}

TEST(BootParamDocTest, MissingRangeGetsWideWindow) {
  BootParamDocResult result = ParseBootParamDoc(
      "loop_max=\t[BLOCK] Loop devices to create.\n"
      "\t\tFormat: <int>\n"
      "\t\tDefault: 8\n");
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.params.size(), 1u);
  EXPECT_LE(result.params[0].min_value, 0);
  EXPECT_GE(result.params[0].max_value, 8 * 128);
  EXPECT_EQ(result.params[0].subsystem, "block");
}

TEST(BootParamDocTest, MultipleEntriesAndProseAreSeparated) {
  BootParamDocResult result = ParseBootParamDoc(
      "preempt=\t[SCHED] Preemption mode.\n"
      "\t\tFormat: {none|voluntary|full}\n"
      "\t\tDefault: voluntary\n"
      "\t\tSelecting full trades throughput for latency, which\n"
      "\t\tmatters for audio and similar workloads.\n"
      "quiet\t\t[KNL] Disable most log messages.\n"
      "loglevel=\t[KNL,EARLY] Console loglevel.\n"
      "\t\tFormat: <int>\n"
      "\t\tDefault: 4\n"
      "\t\tRange: 0 7\n");
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.params.size(), 3u);
  EXPECT_EQ(result.params[0].name, "preempt");
  EXPECT_EQ(result.params[0].default_value, 1);  // "voluntary".
  EXPECT_EQ(result.params[1].name, "quiet");
  EXPECT_EQ(result.params[2].name, "loglevel");
  EXPECT_EQ(result.params[2].max_value, 7);
}

TEST(BootParamDocTest, ProseStartingWithRangeIsIgnored) {
  BootParamDocResult result = ParseBootParamDoc(
      "x=\t[KNL] X.\n"
      "\t\tFormat: <int>\n"
      "\t\tDefault: 5\n"
      "\t\tRange: values around ten are typical in practice.\n");
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.params.size(), 1u);
  // The prose line set no range: the wide default window applies.
  EXPECT_GE(result.params[0].max_value, 1024);
}

TEST(BootParamDocTest, MalformedRangeIsAnError) {
  BootParamDocResult result = ParseBootParamDoc(
      "x=\t[KNL] X.\n"
      "\t\tFormat: <int>\n"
      "\t\tRange: 10 2\n");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("Range"), std::string::npos);
  EXPECT_EQ(result.error_line, 3);
}

TEST(BootParamDocTest, UnterminatedTagListIsAnError) {
  BootParamDocResult result = ParseBootParamDoc("x=\t[KNL broken tag\n");
  EXPECT_FALSE(result.ok);
}

TEST(BootParamDocTest, EmptyChoiceListIsAnError) {
  BootParamDocResult result = ParseBootParamDoc(
      "x=\t[KNL] X.\n"
      "\t\tFormat: {}\n");
  EXPECT_FALSE(result.ok);
}

TEST(BootParamDocTest, DocTagMapping) {
  EXPECT_EQ(SubsystemFromDocTag("NET"), "net");
  EXPECT_EQ(SubsystemFromDocTag("MM"), "vm");
  EXPECT_EQ(SubsystemFromDocTag("SCHED"), "sched");
  EXPECT_EQ(SubsystemFromDocTag("KVM"), "virt");
  EXPECT_EQ(SubsystemFromDocTag("UNHEARD_OF"), "kernel");
}

TEST(BootParamDocTest, WriterRoundTrips) {
  std::vector<ParamSpec> params;
  params.push_back(ParamSpec::Bool("nosmt", ParamPhase::kBootTime, "sched", false));
  params.back().help = "Disable SMT.";
  params.push_back(ParamSpec::Int("loglevel", ParamPhase::kBootTime, "debug", 0, 7, 4));
  params.back().help = "Console loglevel.";
  params.push_back(ParamSpec::String("preempt", ParamPhase::kBootTime, "sched",
                                     {"none", "voluntary", "full"}, 1));
  params.back().help = "Preemption mode.";

  std::string text = WriteBootParamDoc(params);
  BootParamDocResult result = ParseBootParamDoc(text);
  ASSERT_TRUE(result.ok) << result.error << " in:\n" << text;
  ASSERT_EQ(result.params.size(), params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    EXPECT_EQ(result.params[i].name, params[i].name);
    EXPECT_EQ(result.params[i].kind, params[i].kind);
    EXPECT_EQ(result.params[i].default_value, params[i].default_value);
  }
  EXPECT_EQ(result.params[2].choices, params[2].choices);
}

TEST(BootParamDocTest, ParsedParamsPlugIntoAConfigSpace) {
  BootParamDocResult result = ParseBootParamDoc(
      "loglevel=\t[KNL] Console loglevel.\n"
      "\t\tFormat: <int>\n"
      "\t\tDefault: 4\n"
      "\t\tRange: 0 7\n"
      "nosmt\t\t[KNL] Disable SMT.\n");
  ASSERT_TRUE(result.ok) << result.error;
  ConfigSpace space;
  for (ParamSpec& spec : result.params) {
    space.Add(std::move(spec));
  }
  EXPECT_EQ(space.CountPhase(ParamPhase::kBootTime), 2u);
  Rng rng(101);
  for (int i = 0; i < 50; ++i) {
    Configuration config = space.RandomConfiguration(rng);
    ASSERT_TRUE(space.IsValid(config));
  }
}

}  // namespace
}  // namespace wayfinder
