// Tests for the NN building blocks: matrix kernels, layers (including
// gradient checks against finite differences), losses, Adam, serialization.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "src/core/dtm.h"
#include "src/nn/layers.h"
#include "src/nn/losses.h"
#include "src/nn/matrix.h"
#include "src/nn/optimizer.h"
#include "src/nn/serialize.h"
#include "src/util/thread_pool.h"

namespace wayfinder {
namespace {

TEST(MatrixTest, MatMulKnownValues) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  int v = 1;
  for (size_t i = 0; i < a.size(); ++i) {
    a.data()[i] = v++;
  }
  for (size_t i = 0; i < b.size(); ++i) {
    b.data()[i] = v++;
  }
  Matrix c = MatMul(a, b);
  // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12].
  EXPECT_DOUBLE_EQ(c.At(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c.At(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c.At(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c.At(1, 1), 154.0);
}

TEST(MatrixTest, TransposedProductsAgree) {
  Rng rng(3);
  Matrix a(4, 5);
  Matrix b(6, 5);
  for (double& v : a.data()) {
    v = rng.Normal();
  }
  for (double& v : b.data()) {
    v = rng.Normal();
  }
  // a * b^T via MatMulBt must equal explicit transpose multiplication.
  Matrix bt(5, 6);
  for (size_t i = 0; i < 6; ++i) {
    for (size_t j = 0; j < 5; ++j) {
      bt.At(j, i) = b.At(i, j);
    }
  }
  Matrix direct = MatMul(a, bt);
  Matrix fused = MatMulBt(a, b);
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_NEAR(direct.data()[i], fused.data()[i], 1e-12);
  }
}

TEST(MatrixTest, ConcatAndSliceRoundTrip) {
  Matrix a(2, 2, 1.0);
  Matrix b(2, 3, 2.0);
  Matrix c = ConcatCols(a, b);
  ASSERT_EQ(c.cols(), 5u);
  Matrix back = SliceCols(c, 2, 5);
  for (size_t i = 0; i < back.size(); ++i) {
    EXPECT_DOUBLE_EQ(back.data()[i], 2.0);
  }
}

TEST(MatrixTest, ColSumAndAddRow) {
  Matrix m(3, 2);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<double>(i);
  }
  Matrix sums = ColSum(m);
  EXPECT_DOUBLE_EQ(sums.At(0, 0), 0.0 + 2.0 + 4.0);
  EXPECT_DOUBLE_EQ(sums.At(0, 1), 1.0 + 3.0 + 5.0);
  Matrix bias(1, 2);
  bias.At(0, 0) = 10.0;
  bias.At(0, 1) = 20.0;
  AddRowInPlace(m, bias);
  EXPECT_DOUBLE_EQ(m.At(2, 1), 25.0);
}

// Finite-difference gradient check for a Dense+ReLU stack against a scalar
// loss L = sum(relu(xW+b)).
TEST(GradCheck, DenseRelu) {
  Rng rng(11);
  DenseLayer dense(4, 3, rng);
  ReluLayer relu;
  Matrix x(2, 4);
  for (double& v : x.data()) {
    v = rng.Normal();
  }
  auto loss_fn = [&]() {
    Matrix y = relu.Forward(dense.Forward(x));
    double loss = 0.0;
    for (double v : y.data()) {
      loss += v;
    }
    return loss;
  };
  // Analytic gradient.
  double base = loss_fn();
  (void)base;
  Matrix dy(2, 3, 1.0);
  dense.weight().ZeroGrad();
  dense.bias().ZeroGrad();
  dense.Backward(relu.Backward(dy));

  const double eps = 1e-6;
  for (size_t i = 0; i < dense.weight().value.size(); ++i) {
    double saved = dense.weight().value.data()[i];
    dense.weight().value.data()[i] = saved + eps;
    double up = loss_fn();
    dense.weight().value.data()[i] = saved - eps;
    double down = loss_fn();
    dense.weight().value.data()[i] = saved;
    double numeric = (up - down) / (2.0 * eps);
    EXPECT_NEAR(dense.weight().grad.data()[i], numeric, 1e-4) << "weight " << i;
  }
}

// Gradient check for the RBF layer (both input and centroid gradients).
TEST(GradCheck, RbfLayer) {
  Rng rng(13);
  RbfLayer rbf(3, 4, /*gamma=*/0.9, rng);
  Matrix z(2, 3);
  for (double& v : z.data()) {
    v = rng.Normal(0.0, 0.5);
  }
  auto loss_fn = [&](const Matrix& input) {
    Matrix phi = rbf.Forward(input);
    double loss = 0.0;
    for (double v : phi.data()) {
      loss += v * v;
    }
    return 0.5 * loss;
  };
  Matrix phi = rbf.Forward(z);
  Matrix dphi = phi;  // dL/dphi = phi for L = 0.5 sum phi^2.
  rbf.centroids().ZeroGrad();
  Matrix dz = rbf.Backward(dphi);

  const double eps = 1e-6;
  for (size_t i = 0; i < z.size(); ++i) {
    Matrix zp = z;
    zp.data()[i] += eps;
    Matrix zm = z;
    zm.data()[i] -= eps;
    double numeric = (loss_fn(zp) - loss_fn(zm)) / (2.0 * eps);
    EXPECT_NEAR(dz.data()[i], numeric, 1e-5) << "input " << i;
  }
  for (size_t i = 0; i < rbf.centroids().value.size(); ++i) {
    double saved = rbf.centroids().value.data()[i];
    rbf.centroids().value.data()[i] = saved + eps;
    double up = loss_fn(z);
    rbf.centroids().value.data()[i] = saved - eps;
    double down = loss_fn(z);
    rbf.centroids().value.data()[i] = saved;
    double numeric = (up - down) / (2.0 * eps);
    EXPECT_NEAR(rbf.centroids().grad.data()[i], numeric, 1e-5) << "centroid " << i;
  }
}

TEST(RbfLayerTest, OutlierActivationsVanish) {
  Rng rng(17);
  RbfLayer rbf(4, 3, 0.5, rng);
  Matrix near(1, 4, 0.0);
  Matrix far(1, 4, 50.0);
  double near_max = 0.0;
  double far_max = 0.0;
  Matrix near_phi = rbf.Forward(near);
  for (double v : near_phi.data()) {
    near_max = std::max(near_max, v);
  }
  Matrix far_phi = rbf.Forward(far);
  for (double v : far_phi.data()) {
    far_max = std::max(far_max, v);
  }
  EXPECT_GT(near_max, 1e-3);
  EXPECT_LT(far_max, 1e-10);
}

TEST(ChamferTest, PullsCentroidsTowardData) {
  Rng rng(19);
  RbfLayer rbf(2, 2, 1.0, rng);
  // Batch clustered at (5, 5); centroids start near the origin.
  Matrix z(8, 2, 5.0);
  rbf.Forward(z);
  for (int step = 0; step < 200; ++step) {
    rbf.centroids().ZeroGrad();
    rbf.Forward(z);
    double loss = rbf.AccumulateChamferGradient(1.0);
    (void)loss;
    for (size_t i = 0; i < rbf.centroids().value.size(); ++i) {
      rbf.centroids().value.data()[i] -= 0.05 * rbf.centroids().grad.data()[i];
    }
  }
  for (double v : rbf.centroids().value.data()) {
    EXPECT_NEAR(v, 5.0, 0.2);
  }
}

TEST(DropoutTest, IdentityWhenEvaluating) {
  DropoutLayer dropout(0.5);
  Rng rng(23);
  Matrix x(4, 4, 1.0);
  Matrix y = dropout.Forward(x, rng, /*training=*/false);
  for (double v : y.data()) {
    EXPECT_DOUBLE_EQ(v, 1.0);
  }
}

TEST(DropoutTest, InvertedScalingPreservesExpectation) {
  DropoutLayer dropout(0.25);
  Rng rng(29);
  Matrix x(64, 64, 1.0);
  double sum = 0.0;
  Matrix y = dropout.Forward(x, rng, /*training=*/true);
  for (double v : y.data()) {
    sum += v;
  }
  EXPECT_NEAR(sum / static_cast<double>(x.size()), 1.0, 0.05);
}

TEST(LossTest, SoftmaxCrossEntropyKnown) {
  Matrix logits(1, 2);
  logits.At(0, 0) = 0.0;
  logits.At(0, 1) = 0.0;
  Matrix dlogits;
  double loss = SoftmaxCrossEntropy(logits, {1}, &dlogits);
  EXPECT_NEAR(loss, std::log(2.0), 1e-12);
  EXPECT_NEAR(dlogits.At(0, 0), 0.5, 1e-12);
  EXPECT_NEAR(dlogits.At(0, 1), -0.5, 1e-12);
}

TEST(LossTest, HeteroscedasticGradientSigns) {
  Matrix yhat(2, 1);
  Matrix s(2, 1, 0.0);
  yhat.At(0, 0) = 2.0;  // Over-prediction of y=1.
  yhat.At(1, 0) = 0.0;  // Masked row.
  Matrix dyhat;
  Matrix ds;
  double loss =
      HeteroscedasticLoss(yhat, s, {1.0, 5.0}, {true, false}, &dyhat, &ds);
  EXPECT_GT(loss, 0.0);
  EXPECT_GT(dyhat.At(0, 0), 0.0);   // Push prediction down.
  EXPECT_DOUBLE_EQ(dyhat.At(1, 0), 0.0);  // Masked: no gradient.
  // Error (1.0) matches exp(-s)=1 -> ds = 0.5(1-1) = 0.
  EXPECT_NEAR(ds.At(0, 0), 0.0, 1e-12);
}

TEST(LossTest, HeteroscedasticLearnsVariance) {
  // With fixed yhat != y, minimizing over s should settle near log(err^2).
  double y = 0.0;
  double yhat = 2.0;
  double s = 0.0;
  for (int step = 0; step < 4000; ++step) {
    double precision = std::exp(-s);
    double grad_s = 0.5 * (1.0 - precision * (yhat - y) * (yhat - y));
    s -= 0.01 * grad_s;
  }
  EXPECT_NEAR(s, std::log(4.0), 0.01);
}

TEST(AdamTest, MinimizesQuadratic) {
  ParamBlock p;
  p.value.Resize(1, 2);
  p.value.At(0, 0) = 5.0;
  p.value.At(0, 1) = -3.0;
  p.grad.Resize(1, 2);
  AdamOptions options;
  options.learning_rate = 0.05;
  Adam adam({&p}, options);
  for (int step = 0; step < 500; ++step) {
    p.grad.At(0, 0) = 2.0 * (p.value.At(0, 0) - 1.0);
    p.grad.At(0, 1) = 2.0 * (p.value.At(0, 1) - 2.0);
    adam.Step();
  }
  EXPECT_NEAR(p.value.At(0, 0), 1.0, 0.05);
  EXPECT_NEAR(p.value.At(0, 1), 2.0, 0.05);
}

TEST(AdamTest, GradClipBoundsUpdate) {
  ParamBlock p;
  p.value.Resize(1, 1);
  p.grad.Resize(1, 1);
  p.grad.At(0, 0) = 1e9;
  AdamOptions options;
  options.grad_clip = 1.0;
  options.learning_rate = 0.1;
  Adam adam({&p}, options);
  adam.Step();
  EXPECT_LT(std::abs(p.value.At(0, 0)), 1.0);
}

// --- fast-kernel vs reference equivalence -----------------------------------

Matrix RandomMatrix(Rng& rng, size_t rows, size_t cols) {
  Matrix m(rows, cols);
  for (double& v : m.data()) {
    v = rng.Normal();
  }
  return m;
}

TEST(KernelEquivalence, FastMatMulMatchesNaive) {
  Rng rng(101);
  // Odd sizes exercise the 4x-unroll remainders.
  for (size_t n : {1u, 3u, 17u}) {
    for (size_t k : {1u, 5u, 37u}) {
      for (size_t m : {1u, 7u, 23u}) {
        Matrix a = RandomMatrix(rng, n, k);
        Matrix b = RandomMatrix(rng, k, m);
        Matrix fast;
        MatMulInto(a, b, fast);
        Matrix naive = NaiveMatMul(a, b);
        ASSERT_EQ(fast.rows(), naive.rows());
        ASSERT_EQ(fast.cols(), naive.cols());
        for (size_t i = 0; i < fast.size(); ++i) {
          EXPECT_NEAR(fast.data()[i], naive.data()[i], 1e-9)
              << n << "x" << k << "x" << m << " element " << i;
        }
      }
    }
  }
}

TEST(KernelEquivalence, FastTransposedProductsMatchNaive) {
  Rng rng(103);
  Matrix a = RandomMatrix(rng, 9, 13);
  Matrix b = RandomMatrix(rng, 11, 13);  // For Bt: b is M x K.
  Matrix fast_bt;
  MatMulBtInto(a, b, fast_bt);
  Matrix naive_bt = NaiveMatMulBt(a, b);
  for (size_t i = 0; i < fast_bt.size(); ++i) {
    EXPECT_NEAR(fast_bt.data()[i], naive_bt.data()[i], 1e-9);
  }
  Matrix c = RandomMatrix(rng, 9, 11);  // For At: shares rows with a.
  Matrix fast_at;
  MatMulAtInto(a, c, fast_at);
  Matrix naive_at = NaiveMatMulAt(a, c);
  for (size_t i = 0; i < fast_at.size(); ++i) {
    EXPECT_NEAR(fast_at.data()[i], naive_at.data()[i], 1e-9);
  }
}

TEST(KernelEquivalence, FusedBiasMatchesSeparateOps) {
  Rng rng(107);
  Matrix a = RandomMatrix(rng, 6, 19);
  Matrix b = RandomMatrix(rng, 19, 8);
  Matrix bias = RandomMatrix(rng, 1, 8);
  Matrix fused;
  MatMulAddBiasInto(a, b, bias, fused);
  Matrix separate = NaiveMatMul(a, b);
  AddRowInPlace(separate, bias);
  for (size_t i = 0; i < fused.size(); ++i) {
    EXPECT_NEAR(fused.data()[i], separate.data()[i], 1e-9);
  }
}

std::vector<std::vector<double>> RandomPool(Rng& rng, size_t n, size_t dim) {
  std::vector<std::vector<double>> pool(n);
  for (auto& x : pool) {
    x.resize(dim);
    for (double& v : x) {
      v = rng.Uniform();
    }
  }
  return pool;
}

// In place (a DeepTuneModel is not safely movable: Adam holds pointers into
// the layers' parameter blocks).
void TrainModel(DeepTuneModel& model) {
  size_t dim = model.input_dim();
  Rng rng(5);
  for (size_t i = 0; i < 48; ++i) {
    std::vector<double> x(dim);
    for (double& v : x) {
      v = rng.Uniform();
    }
    model.AddSample(x, rng.Bernoulli(0.25), rng.Normal(0.0, 1.0));
  }
  model.Update();
}

TEST(DtmEquivalence, FastPredictBatchMatchesNaiveReference) {
  const size_t dim = 33;
  DtmOptions fast_options;
  DtmOptions naive_options;
  naive_options.naive = true;
  DeepTuneModel fast(dim, fast_options);
  DeepTuneModel naive(dim, naive_options);
  TrainModel(fast);
  TrainModel(naive);

  Rng rng(9);
  auto pool = RandomPool(rng, 64, dim);
  auto fast_pred = fast.PredictBatch(pool);
  auto naive_pred = naive.PredictBatch(pool);
  ASSERT_EQ(fast_pred.size(), naive_pred.size());
  for (size_t i = 0; i < fast_pred.size(); ++i) {
    EXPECT_NEAR(fast_pred[i].crash_prob, naive_pred[i].crash_prob, 1e-9);
    EXPECT_NEAR(fast_pred[i].objective, naive_pred[i].objective, 1e-9);
    EXPECT_NEAR(fast_pred[i].sigma, naive_pred[i].sigma, 1e-9);
  }
}

TEST(DtmEquivalence, ThreadedPredictBatchBitIdenticalToSerial) {
  const size_t dim = 29;
  DtmOptions serial_options;
  DtmOptions threaded_options;
  threaded_options.threads = 4;
  DeepTuneModel serial(dim, serial_options);
  DeepTuneModel threaded(dim, threaded_options);
  TrainModel(serial);
  TrainModel(threaded);

  Rng rng(11);
  auto pool = RandomPool(rng, 257, dim);  // Odd size: uneven chunking.
  auto serial_pred = serial.PredictBatch(pool);
  auto threaded_pred = threaded.PredictBatch(pool);
  ASSERT_EQ(serial_pred.size(), threaded_pred.size());
  for (size_t i = 0; i < serial_pred.size(); ++i) {
    // Row partitioning never changes per-row arithmetic: exact equality.
    EXPECT_EQ(serial_pred[i].crash_prob, threaded_pred[i].crash_prob) << i;
    EXPECT_EQ(serial_pred[i].objective, threaded_pred[i].objective) << i;
    EXPECT_EQ(serial_pred[i].sigma, threaded_pred[i].sigma) << i;
  }
}

TEST(DtmEquivalence, SinglePredictMatchesBatchRow) {
  const size_t dim = 21;
  DeepTuneModel model(dim, {});
  TrainModel(model);
  Rng rng(13);
  auto pool = RandomPool(rng, 8, dim);
  auto batch = model.PredictBatch(pool);
  for (size_t i = 0; i < pool.size(); ++i) {
    DtmPrediction single = model.Predict(pool[i]);
    EXPECT_EQ(single.crash_prob, batch[i].crash_prob);
    EXPECT_EQ(single.objective, batch[i].objective);
    EXPECT_EQ(single.sigma, batch[i].sigma);
  }
}

TEST(DtmWorkspace, NoAllocationAfterWarmup) {
  const size_t dim = 25;
  DeepTuneModel model(dim, {});
  TrainModel(model);
  Rng rng(17);
  auto pool = RandomPool(rng, 96, dim);

  // Warm the workspace: one predict round at this pool shape plus one
  // training round at the configured batch size.
  model.PredictBatch(pool);
  model.Update();
  model.PredictBatch(pool);
  size_t warm = model.workspace_grow_count();

  // Steady state: repeated same-shaped forwards must not grow any buffer.
  for (int round = 0; round < 5; ++round) {
    model.PredictBatch(pool);
    model.Update();
  }
  EXPECT_EQ(model.workspace_grow_count(), warm);
}

TEST(MatrixTest, ReshapeReportsGrowthOnlyWhenBufferGrows) {
  Matrix m;
  EXPECT_TRUE(m.Reshape(8, 8));
  EXPECT_FALSE(m.Reshape(4, 4));   // Shrink within capacity.
  EXPECT_FALSE(m.Reshape(8, 8));   // Back to the high-water mark.
  EXPECT_TRUE(m.Reshape(16, 16));  // Genuine growth.
}

TEST(SerializeTest, RoundTripsAndRejectsMismatch) {
  Rng rng(31);
  DenseLayer a(3, 2, rng);
  DenseLayer b(3, 2, rng);
  std::stringstream buffer;
  std::vector<ParamBlock*> a_params = a.Params();
  SaveParams(a_params, buffer);
  std::vector<ParamBlock*> b_params = b.Params();
  ASSERT_TRUE(LoadParams(b_params, buffer));
  for (size_t i = 0; i < a.weight().value.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.weight().value.data()[i], b.weight().value.data()[i]);
  }
  // Shape mismatch must be rejected without touching the target.
  DenseLayer c(4, 2, rng);
  std::stringstream buffer2;
  SaveParams(a_params, buffer2);
  std::vector<ParamBlock*> c_params = c.Params();
  double before = c.weight().value.data()[0];
  EXPECT_FALSE(LoadParams(c_params, buffer2));
  EXPECT_DOUBLE_EQ(c.weight().value.data()[0], before);
}

}  // namespace
}  // namespace wayfinder
