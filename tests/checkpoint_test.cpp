// Tests for session checkpoint/resume, the §3.5 deployment check, and
// transient-fault injection in the testbench.
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "src/configspace/linux_space.h"
#include "src/configspace/unikraft_space.h"
#include "src/core/deeptune.h"
#include "src/core/wayfinder_api.h"
#include "src/platform/checkpoint.h"
#include "src/platform/random_search.h"
#include "src/platform/session.h"
#include "src/simos/testbench.h"

namespace wayfinder {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::vector<TrialRecord> RunSome(const ConfigSpace& space, size_t iterations,
                                 uint64_t seed) {
  Testbench bench(&space, AppId::kNginx);
  RandomSearcher searcher;
  SessionOptions options;
  options.max_iterations = iterations;
  options.seed = seed;
  return RunSearch(&bench, &searcher, options).history;
}

// ---------------------------------------------------------------------------
// Checkpoint save/load.

TEST(CheckpointTest, RoundTripsAFullHistory) {
  ConfigSpace space = BuildLinuxSearchSpace();
  std::vector<TrialRecord> history = RunSome(space, 30, 61);
  std::string path = TempPath("wf_checkpoint_roundtrip.txt");
  ASSERT_TRUE(SaveCheckpoint(history, path));

  CheckpointLoadResult loaded = LoadCheckpoint(space, path);
  std::filesystem::remove(path);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  ASSERT_EQ(loaded.history.size(), history.size());
  for (size_t i = 0; i < history.size(); ++i) {
    const TrialRecord& a = history[i];
    const TrialRecord& b = loaded.history[i];
    EXPECT_EQ(a.iteration, b.iteration);
    EXPECT_EQ(a.outcome.status, b.outcome.status);
    EXPECT_EQ(a.outcome.build_skipped, b.outcome.build_skipped);
    EXPECT_DOUBLE_EQ(a.outcome.metric, b.outcome.metric);
    EXPECT_DOUBLE_EQ(a.outcome.memory_mb, b.outcome.memory_mb);
    EXPECT_DOUBLE_EQ(a.sim_time_end, b.sim_time_end);
    EXPECT_EQ(a.HasObjective(), b.HasObjective());
    if (a.HasObjective()) {
      EXPECT_DOUBLE_EQ(a.objective, b.objective);
    }
    EXPECT_EQ(a.config.values(), b.config.values());
  }
}

TEST(CheckpointTest, CrashedTrialsKeepNanObjectives) {
  ConfigSpace space = BuildLinuxSearchSpace();
  std::vector<TrialRecord> history = RunSome(space, 60, 62);
  bool any_crash = false;
  for (const TrialRecord& trial : history) {
    any_crash |= trial.crashed();
  }
  ASSERT_TRUE(any_crash) << "random search at 60 iterations should hit crashes";

  std::string path = TempPath("wf_checkpoint_nan.txt");
  ASSERT_TRUE(SaveCheckpoint(history, path));
  CheckpointLoadResult loaded = LoadCheckpoint(space, path);
  std::filesystem::remove(path);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  for (size_t i = 0; i < history.size(); ++i) {
    if (history[i].crashed()) {
      EXPECT_FALSE(loaded.history[i].HasObjective());
    }
  }
}

TEST(CheckpointTest, EmptyHistoryRoundTrips) {
  ConfigSpace space = BuildUnikraftSpace();
  std::string path = TempPath("wf_checkpoint_empty.txt");
  ASSERT_TRUE(SaveCheckpoint({}, path));
  CheckpointLoadResult loaded = LoadCheckpoint(space, path);
  std::filesystem::remove(path);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_TRUE(loaded.history.empty());
}

TEST(CheckpointTest, MissingFileFails) {
  ConfigSpace space = BuildUnikraftSpace();
  CheckpointLoadResult loaded = LoadCheckpoint(space, TempPath("wf_no_such_file.txt"));
  EXPECT_FALSE(loaded.ok);
}

TEST(CheckpointTest, WrongSpaceSizeFails) {
  ConfigSpace linux_space = BuildLinuxSearchSpace();
  std::vector<TrialRecord> history = RunSome(linux_space, 5, 63);
  std::string path = TempPath("wf_checkpoint_wrong_space.txt");
  ASSERT_TRUE(SaveCheckpoint(history, path));

  ConfigSpace unikraft_space = BuildUnikraftSpace();
  CheckpointLoadResult loaded = LoadCheckpoint(unikraft_space, path);
  std::filesystem::remove(path);
  EXPECT_FALSE(loaded.ok);
  EXPECT_NE(loaded.error.find("parameters"), std::string::npos);
}

TEST(CheckpointTest, CorruptHeaderFails) {
  ConfigSpace space = BuildUnikraftSpace();
  std::string path = TempPath("wf_checkpoint_corrupt.txt");
  {
    std::ofstream out(path);
    out << "definitely not a checkpoint\n";
  }
  CheckpointLoadResult loaded = LoadCheckpoint(space, path);
  std::filesystem::remove(path);
  EXPECT_FALSE(loaded.ok);
  EXPECT_NE(loaded.error.find("header"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Checkpoint v2: live RNG / searcher state.

void ExpectSameTrials(const std::vector<TrialRecord>& a, const std::vector<TrialRecord>& b,
                      const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].config.values(), b[i].config.values()) << label << " trial " << i;
    ASSERT_EQ(static_cast<int>(a[i].outcome.status), static_cast<int>(b[i].outcome.status))
        << label << " trial " << i;
    ASSERT_EQ(a[i].sim_time_end, b[i].sim_time_end) << label << " trial " << i;
    if (std::isnan(a[i].objective)) {
      ASSERT_TRUE(std::isnan(b[i].objective)) << label << " trial " << i;
    } else {
      ASSERT_EQ(a[i].objective, b[i].objective) << label << " trial " << i;
    }
  }
}

TEST(CheckpointV2Test, LiveStateRoundTrips) {
  ConfigSpace space = BuildLinuxSearchSpace();
  std::vector<TrialRecord> history = RunSome(space, 10, 80);
  CheckpointLiveState live;
  Rng session_rng(81);
  Rng searcher_rng(82);
  session_rng.Normal();  // Populate the Box-Muller cache so it round-trips too.
  live.session_rng = session_rng.SerializeState();
  live.searcher_rng = searcher_rng.SerializeState();
  live.searcher_state = "pool-iteration 17";

  std::string text = CheckpointToText(history, &live);
  CheckpointLoadResult loaded = LoadCheckpointText(space, text);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.live.session_rng, live.session_rng);
  EXPECT_EQ(loaded.live.searcher_rng, live.searcher_rng);
  EXPECT_EQ(loaded.live.searcher_state, live.searcher_state);
  ASSERT_EQ(loaded.history.size(), history.size());

  // The restored RNG continues exactly where the serialized one stood.
  Rng restored(0);
  ASSERT_TRUE(restored.DeserializeState(loaded.live.session_rng));
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(restored.Next(), session_rng.Next());
  }
  EXPECT_EQ(restored.Normal(), session_rng.Normal());
}

TEST(CheckpointV2Test, V1FilesStillLoad) {
  // A v1 writer's output: same trial/values body, old header, none of the
  // v2-only lines (live state, the `failures` taxonomy aggregate).
  ConfigSpace space = BuildLinuxSearchSpace();
  std::vector<TrialRecord> history = RunSome(space, 8, 83);
  std::string v2_text = CheckpointToText(history);
  ASSERT_EQ(v2_text.find("wayfinder-checkpoint v2"), 0u);
  std::string text;
  std::istringstream lines(v2_text);
  for (std::string line; std::getline(lines, line);) {
    if (line.rfind("failures", 0) == 0) {
      continue;
    }
    text += line + "\n";
  }
  text.replace(0, std::string("wayfinder-checkpoint v2").size(), "wayfinder-checkpoint v1");

  CheckpointLoadResult loaded = LoadCheckpointText(space, text);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.history.size(), history.size());
  EXPECT_FALSE(loaded.live.Any());
  EXPECT_EQ(loaded.timeouts, 0u);
}

TEST(CheckpointV2Test, LiveStateLinesRejectedUnderV1Header) {
  ConfigSpace space = BuildLinuxSearchSpace();
  CheckpointLiveState live;
  live.session_rng = Rng(84).SerializeState();
  std::string text = CheckpointToText({}, &live);
  text.replace(0, std::string("wayfinder-checkpoint v2").size(), "wayfinder-checkpoint v1");
  CheckpointLoadResult loaded = LoadCheckpointText(space, text);
  EXPECT_FALSE(loaded.ok);
}

// Forward compatibility: a FUTURE writer may add optional header-area
// sections in the spirit of the live-state and `failures` lines. This
// reader must load such a file — skipping what it cannot parse — rather
// than refuse a checkpoint that is otherwise perfectly usable.
TEST(CheckpointV2Test, UnknownHeaderSectionsAreSkipped) {
  ConfigSpace space = BuildLinuxSearchSpace();
  std::vector<TrialRecord> history = RunSome(space, 6, 85);
  CheckpointLiveState live;
  live.session_rng = Rng(86).SerializeState();
  std::string text = CheckpointToText(history, &live);

  // Splice two future sections between the header area and the first trial.
  size_t first_trial = text.find("\ntrial ");
  ASSERT_NE(first_trial, std::string::npos);
  text.insert(first_trial + 1,
              "wall-clock-budget 3600\n"
              "annotations key=value other=thing\n");

  CheckpointLoadResult loaded = LoadCheckpointText(space, text);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.history.size(), history.size());
  EXPECT_EQ(loaded.live.session_rng, live.session_rng);  // Known lines kept.
}

TEST(CheckpointV2Test, UnknownKeywordsStillRejectedWhereTheyBreakStructure) {
  ConfigSpace space = BuildLinuxSearchSpace();
  std::vector<TrialRecord> history = RunSome(space, 4, 87);
  std::string text = CheckpointToText(history);

  // Between trial records an unknown keyword would detach a trial from its
  // values line — structural damage, not a future section.
  size_t second_trial = text.find("\ntrial ", text.find("\ntrial ") + 1);
  ASSERT_NE(second_trial, std::string::npos);
  std::string damaged = text;
  damaged.insert(second_trial + 1, "future-line in the trial body\n");
  EXPECT_FALSE(LoadCheckpointText(space, damaged).ok);

  // A stray `values` in the header area is damage too, never skipped.
  size_t first_trial = text.find("\ntrial ");
  damaged = text;
  damaged.insert(first_trial + 1, "values 1 2 3\n");
  EXPECT_FALSE(LoadCheckpointText(space, damaged).ok);

  // v1 files get no forward-compat leniency: the vocabulary was closed.
  std::string v1 = "wayfinder-checkpoint v1\nparams 0\nfuture-section x\n";
  EXPECT_FALSE(LoadCheckpointText(space, v1).ok);
}

TEST(CheckpointV2Test, MalformedRngStateFailsResume) {
  ConfigSpace space = BuildLinuxSearchSpace();
  Testbench bench(&space, AppId::kNginx);
  RandomSearcher searcher;
  SessionOptions options;
  options.max_iterations = 5;
  CheckpointLiveState live;
  live.session_rng = "definitely not hex words";
  SearchSession session(&bench, &searcher, options);
  EXPECT_FALSE(session.Resume({}, live));
}

// The satellite's pin: with the v2 live state, Resume() reproduces the
// uninterrupted run bit-for-bit — for the serial loop, where proposal
// randomness flows from the (now persisted) searcher RNG stream, and for
// model-based searchers, whose pool-seed counter rides in searcher-state.
class LiveResumeTest : public ::testing::TestWithParam<const char*> {};

TEST_P(LiveResumeTest, SerialResumeWithLiveStateIsExact) {
  ConfigSpace space = BuildLinuxSearchSpace();
  TestbenchOptions bench_options;
  bench_options.seed = 0x7e70;
  SessionOptions options;
  options.max_iterations = 30;
  options.seed = 0x85;

  Testbench bench_a(&space, AppId::kNginx, bench_options);
  auto searcher_a = MakeSearcher(GetParam(), &space, 0xd8);
  SessionResult uninterrupted = RunSearch(&bench_a, searcher_a.get(), options);
  ASSERT_EQ(uninterrupted.history.size(), 30u);

  // Interrupt at 18: run the prefix, checkpoint with live state (through
  // text, like the real flow), resume a fresh session+searcher from it.
  std::string checkpoint_text = [&] {
    Testbench bench(&space, AppId::kNginx, bench_options);
    auto searcher = MakeSearcher(GetParam(), &space, 0xd8);
    SessionOptions prefix = options;
    prefix.max_iterations = 18;
    SearchSession session(&bench, searcher.get(), prefix);
    while (session.Step()) {
    }
    CheckpointLiveState live = session.ExportLiveState();
    return CheckpointToText(session.history(), &live);
  }();

  CheckpointLoadResult loaded = LoadCheckpointText(space, checkpoint_text);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  ASSERT_TRUE(loaded.live.Any());
  Testbench bench_b(&space, AppId::kNginx, bench_options);
  auto searcher_b = MakeSearcher(GetParam(), &space, 0xd8);
  SearchSession resumed(&bench_b, searcher_b.get(), options);
  ASSERT_TRUE(resumed.Resume(loaded.history, loaded.live));
  while (resumed.Step()) {
  }
  ExpectSameTrials(uninterrupted.history, resumed.Finish().history,
                   std::string(GetParam()) + " serial live resume");
}

TEST_P(LiveResumeTest, BatchedResumeWithLiveStateIsExact) {
  // Same pin for the batch-concurrent executor at a round boundary. Before
  // v2 this held only for stateless searchers; the persisted searcher-state
  // (DeepTune's pool-seed counter) extends it to model-based ones.
  ConfigSpace space = BuildLinuxSearchSpace();
  TestbenchOptions bench_options;
  bench_options.seed = 0x7e71;
  SessionOptions options;
  options.max_iterations = 28;
  options.seed = 0x86;
  options.parallel_evaluations = 4;

  Testbench bench_a(&space, AppId::kNginx, bench_options);
  auto searcher_a = MakeSearcher(GetParam(), &space, 0xd9);
  SessionResult uninterrupted = RunSearch(&bench_a, searcher_a.get(), options);
  ASSERT_EQ(uninterrupted.history.size(), 28u);

  std::string checkpoint_text = [&] {
    Testbench bench(&space, AppId::kNginx, bench_options);
    auto searcher = MakeSearcher(GetParam(), &space, 0xd9);
    SessionOptions prefix = options;
    prefix.max_iterations = 16;
    SearchSession session(&bench, searcher.get(), prefix);
    while (session.StepBatch() > 0) {
    }
    CheckpointLiveState live = session.ExportLiveState();
    return CheckpointToText(session.history(), &live);
  }();

  CheckpointLoadResult loaded = LoadCheckpointText(space, checkpoint_text);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  Testbench bench_b(&space, AppId::kNginx, bench_options);
  auto searcher_b = MakeSearcher(GetParam(), &space, 0xd9);
  SearchSession resumed(&bench_b, searcher_b.get(), options);
  ASSERT_TRUE(resumed.Resume(loaded.history, loaded.live));
  while (resumed.StepBatch() > 0) {
  }
  ExpectSameTrials(uninterrupted.history, resumed.Finish().history,
                   std::string(GetParam()) + " batched live resume");
}

INSTANTIATE_TEST_SUITE_P(Searchers, LiveResumeTest,
                         ::testing::Values("random", "deeptune"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

// ---------------------------------------------------------------------------
// Session resume.

TEST(ResumeTest, ResumedSessionContinuesCountersAndClock) {
  ConfigSpace space = BuildLinuxSearchSpace();

  // First half.
  Testbench bench1(&space, AppId::kNginx);
  RandomSearcher searcher1;
  SessionOptions options;
  options.max_iterations = 20;
  options.seed = 64;
  SearchSession first(&bench1, &searcher1, options);
  SessionResult half = first.Run();
  ASSERT_EQ(half.history.size(), 20u);

  // Second half, resumed into a fresh session with a larger budget.
  Testbench bench2(&space, AppId::kNginx);
  RandomSearcher searcher2;
  options.max_iterations = 40;
  SearchSession second(&bench2, &searcher2, options);
  second.Resume(half.history);
  SessionResult full = second.Run();

  EXPECT_EQ(full.history.size(), 40u);
  // The prior history is intact at the front.
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(full.history[i].config.values(), half.history[i].config.values());
  }
  // The clock continued rather than restarting.
  EXPECT_GT(full.total_sim_seconds, half.total_sim_seconds);
  // Crash accounting covers both halves.
  size_t crashes = 0;
  for (const TrialRecord& trial : full.history) {
    crashes += trial.crashed() ? 1 : 0;
  }
  EXPECT_EQ(full.crashes, crashes);
}

TEST(ResumeTest, ReplayWarmsTheSearcherModel) {
  ConfigSpace space = BuildUnikraftSpace();
  std::vector<TrialRecord> prior =
      [&] {
        Testbench bench(&space, AppId::kNginx,
                        TestbenchOptions{.substrate = Substrate::kUnikraftKvm});
        RandomSearcher searcher;
        SessionOptions options;
        options.max_iterations = 25;
        options.seed = 65;
        return RunSearch(&bench, &searcher, options).history;
      }();

  Testbench bench(&space, AppId::kNginx,
                  TestbenchOptions{.substrate = Substrate::kUnikraftKvm});
  DeepTuneOptions dt;
  dt.model.steps_per_update = 2;
  DeepTuneSearcher searcher(&space, dt);
  SessionOptions options;
  options.max_iterations = 25;  // Already exhausted by the resumed history.
  options.seed = 66;
  SearchSession session(&bench, &searcher, options);
  session.Resume(prior);
  EXPECT_EQ(searcher.model().sample_count(), 25u);
  // Budget is already spent: stepping refuses.
  EXPECT_FALSE(session.Step());
}

TEST(ResumeTest, CheckpointThenResumeEndToEnd) {
  ConfigSpace space = BuildLinuxSearchSpace();
  std::vector<TrialRecord> prior = RunSome(space, 15, 67);
  std::string path = TempPath("wf_resume_e2e.txt");
  ASSERT_TRUE(SaveCheckpoint(prior, path));
  CheckpointLoadResult loaded = LoadCheckpoint(space, path);
  std::filesystem::remove(path);
  ASSERT_TRUE(loaded.ok) << loaded.error;

  Testbench bench(&space, AppId::kNginx);
  RandomSearcher searcher;
  SessionOptions options;
  options.max_iterations = 30;
  options.seed = 68;
  SearchSession session(&bench, &searcher, options);
  session.Resume(loaded.history);
  SessionResult result = session.Run();
  EXPECT_EQ(result.history.size(), 30u);
}

// ---------------------------------------------------------------------------
// Deployment check (§3.5).

TEST(DeployCheckTest, FailingCheckDemotesTrialsToCrashes) {
  ConfigSpace space = BuildLinuxSearchSpace();
  Testbench bench(&space, AppId::kNginx);
  RandomSearcher searcher;
  SessionOptions options;
  options.max_iterations = 15;
  options.seed = 69;
  options.deploy_check = [](const Configuration&, const TrialOutcome&) { return false; };
  SessionResult result = RunSearch(&bench, &searcher, options);
  EXPECT_EQ(result.crashes, result.history.size());
  EXPECT_EQ(result.best(), nullptr);
  for (const TrialRecord& trial : result.history) {
    if (trial.outcome.failure_reason == "deployment check failed") {
      return;  // At least one trial was demoted by the check (not the model).
    }
  }
  FAIL() << "no trial carries the deployment-check failure reason";
}

TEST(DeployCheckTest, SelectiveCheckOnlyDemotesMatchingConfigs) {
  ConfigSpace space = BuildLinuxSearchSpace();
  Testbench bench(&space, AppId::kNginx);
  RandomSearcher searcher;
  SessionOptions options;
  options.max_iterations = 40;
  options.seed = 70;
  // Production requires ASLR: configurations that disable it fail review.
  options.deploy_check = [](const Configuration& config, const TrialOutcome&) {
    return config.Get("kernel.randomize_va_space") != 0;
  };
  SessionResult result = RunSearch(&bench, &searcher, options);
  for (const TrialRecord& trial : result.history) {
    if (trial.HasObjective()) {
      EXPECT_NE(trial.config.Get("kernel.randomize_va_space"), 0);
    }
  }
}

TEST(DeployCheckTest, PassingCheckChangesNothing) {
  ConfigSpace space = BuildLinuxSearchSpace();
  SessionOptions options;
  options.max_iterations = 15;
  options.seed = 71;

  Testbench bench_a(&space, AppId::kNginx);
  RandomSearcher searcher_a;
  SessionResult baseline = RunSearch(&bench_a, &searcher_a, options);

  options.deploy_check = [](const Configuration&, const TrialOutcome&) { return true; };
  Testbench bench_b(&space, AppId::kNginx);
  RandomSearcher searcher_b;
  SessionResult checked = RunSearch(&bench_b, &searcher_b, options);

  // Identical seeds: the two sessions are deterministic twins, and a check
  // that always passes must not perturb anything.
  ASSERT_EQ(baseline.history.size(), checked.history.size());
  EXPECT_EQ(baseline.crashes, checked.crashes);
  ASSERT_EQ(baseline.best() != nullptr, checked.best() != nullptr);
  if (baseline.best() != nullptr) {
    EXPECT_DOUBLE_EQ(baseline.best()->objective, checked.best()->objective);
  }
  // Fully random sampling (compile phase included) crashes often; use the
  // runtime-favored mode to guarantee some successes for the comparison.
  options.sample_options = SampleOptions::FavorRuntime();
  Testbench bench_c(&space, AppId::kNginx);
  RandomSearcher searcher_c;
  SessionResult runtime_checked = RunSearch(&bench_c, &searcher_c, options);
  EXPECT_NE(runtime_checked.best(), nullptr);
}

// ---------------------------------------------------------------------------
// Transient fault injection.

TEST(FaultInjectionTest, CertainFlakeFailsEveryTrial) {
  ConfigSpace space = BuildLinuxSearchSpace();
  TestbenchOptions bench_options;
  bench_options.transient_flake_prob = 1.0;
  Testbench bench(&space, AppId::kNginx, bench_options);
  Rng rng(72);
  SimClock clock;
  for (int i = 0; i < 10; ++i) {
    TrialOutcome outcome = bench.Evaluate(space.DefaultConfiguration(), rng, &clock);
    EXPECT_FALSE(outcome.ok());
    EXPECT_NE(outcome.failure_reason.find("transient"), std::string::npos);
  }
}

TEST(FaultInjectionTest, ZeroFlakeProbIsNoise_Free) {
  ConfigSpace space = BuildLinuxSearchSpace();
  Testbench bench(&space, AppId::kNginx);  // Default: no injection.
  Rng rng(73);
  SimClock clock;
  // The default configuration never crashes on its own.
  for (int i = 0; i < 10; ++i) {
    TrialOutcome outcome = bench.Evaluate(space.DefaultConfiguration(), rng, &clock);
    EXPECT_TRUE(outcome.ok()) << outcome.failure_reason;
  }
}

TEST(FaultInjectionTest, ModerateFlakeRateRaisesCrashRateProportionally) {
  ConfigSpace space = BuildLinuxSearchSpace();
  TestbenchOptions bench_options;
  bench_options.transient_flake_prob = 0.5;
  Testbench bench(&space, AppId::kNginx, bench_options);
  Rng rng(74);
  SimClock clock;
  size_t failures = 0;
  const int kTrials = 200;
  for (int i = 0; i < kTrials; ++i) {
    TrialOutcome outcome = bench.Evaluate(space.DefaultConfiguration(), rng, &clock);
    failures += outcome.ok() ? 0 : 1;
  }
  EXPECT_NEAR(static_cast<double>(failures) / kTrials, 0.5, 0.12);
}

TEST(FaultInjectionTest, SearchSurvivesAFlakyTestbench) {
  ConfigSpace space = BuildLinuxSearchSpace();
  TestbenchOptions bench_options;
  bench_options.transient_flake_prob = 0.3;
  Testbench bench(&space, AppId::kNginx, bench_options);
  RandomSearcher searcher;
  SessionOptions options;
  options.max_iterations = 50;
  options.seed = 75;
  SessionResult result = RunSearch(&bench, &searcher, options);
  EXPECT_EQ(result.history.size(), 50u);
  EXPECT_NE(result.best(), nullptr);  // Some trials still succeed.
  EXPECT_GT(result.crashes, 5u);      // And many were flaked.
}

}  // namespace
}  // namespace wayfinder
