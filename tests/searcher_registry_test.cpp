// Registry round-trip: every registered name constructs a working searcher
// whose Name() matches its key, MakeSearcher/MakeJobSearcher resolve purely
// through the registry, unknown names error cleanly, and a test-local
// registration behaves like a built-in (the out-of-tree contract that
// examples/custom_searcher.cpp relies on).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/configspace/unikraft_space.h"
#include "src/core/wayfinder_api.h"
#include "src/platform/searcher_registry.h"

namespace wayfinder {
namespace {

TEST(SearcherRegistry, EveryRegisteredNameConstructsAndRoundTrips) {
  ConfigSpace space = BuildUnikraftSpace();
  std::vector<std::string> names = RegisteredSearcherNames();
  // The ten in-tree algorithms are all present (a test-local registration
  // below may add more).
  for (const char* expected :
       {"random", "grid", "bayesopt", "causal", "annealing", "genetic", "hillclimb",
        "smac", "deeptune", "deeptune-multi"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end()) << expected;
  }
  EXPECT_GE(names.size(), 10u);
  // Sorted and duplicate-free: deterministic help text and test matrices.
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end());

  for (const std::string& name : names) {
    std::unique_ptr<Searcher> searcher = MakeSearcher(name, &space, 0x1e9);
    ASSERT_NE(searcher, nullptr) << name;
    EXPECT_EQ(searcher->Name(), name);
    // Every registered searcher can actually propose.
    Rng rng(7);
    std::vector<TrialRecord> history;
    SearchContext context;
    context.space = &space;
    context.history = &history;
    context.rng = &rng;
    Configuration proposal = searcher->Propose(context);
    EXPECT_TRUE(space.IsValid(proposal)) << name;
    // And serve a batch through the (possibly defaulted) batch entry point.
    std::vector<Configuration> batch;
    searcher->ProposeBatch(context, 3, &batch);
    ASSERT_EQ(batch.size(), 3u) << name;
    for (const Configuration& candidate : batch) {
      EXPECT_TRUE(space.IsValid(candidate)) << name;
    }
  }
}

TEST(SearcherRegistry, EverySearcherSurvivesACrashHeavyRun) {
  // Crash-heavy soak: at transient_flake_prob = 0.9 roughly nine of ten
  // trials commit with NaN objectives. Every registered searcher must run a
  // 40-trial session through that regime without wedging, throwing, or
  // poisoning its model — and still propose valid configurations afterward.
  ConfigSpace space = BuildUnikraftSpace();
  for (const std::string& name : RegisteredSearcherNames()) {
    TestbenchOptions bench_options;
    bench_options.substrate = Substrate::kUnikraftKvm;
    bench_options.seed = 0xc7a5;
    bench_options.transient_flake_prob = 0.9;
    Testbench bench(&space, AppId::kNginx, bench_options);
    std::unique_ptr<Searcher> searcher = MakeSearcher(name, &space, 0x1e9);
    ASSERT_NE(searcher, nullptr) << name;

    SessionOptions options;
    options.max_iterations = 40;
    options.seed = 0x50a;
    SessionResult result = RunSearch(&bench, searcher.get(), options);
    EXPECT_EQ(result.history.size(), 40u) << name;
    size_t successes = 0;
    for (const TrialRecord& trial : result.history) {
      if (trial.HasObjective()) {
        ++successes;
        EXPECT_TRUE(std::isfinite(trial.objective)) << name;
      }
    }
    // The flake rate leaves a sliver of successes; none may be NaN/inf.
    EXPECT_LT(successes, 20u) << name;

    // The searcher is still functional after 40 near-total failures.
    Rng rng(9);
    SearchContext context;
    context.space = &space;
    context.history = &result.history;
    context.rng = &rng;
    Configuration proposal = searcher->Propose(context);
    EXPECT_TRUE(space.IsValid(proposal)) << name;
  }
}

TEST(SearcherRegistry, MetadataDrivesMultiMetricRouting) {
  const SearcherInfo* deeptune = SearcherRegistry::Instance().Find("deeptune");
  ASSERT_NE(deeptune, nullptr);
  EXPECT_TRUE(deeptune->SupportsMultiMetric());
  EXPECT_EQ(deeptune->multi_metric_variant, "deeptune-multi");
  EXPECT_TRUE(deeptune->supports_transfer);

  const SearcherInfo* random = SearcherRegistry::Instance().Find("random");
  ASSERT_NE(random, nullptr);
  EXPECT_FALSE(random->SupportsMultiMetric());
  EXPECT_FALSE(random->supports_transfer);
  EXPECT_FALSE(random->summary.empty());

  EXPECT_EQ(SearcherRegistry::Instance().Find("no-such-searcher"), nullptr);
}

TEST(SearcherRegistry, UnknownNamesErrorThroughMakeJobSearcher) {
  ConfigSpace space = BuildUnikraftSpace();
  JobSpec spec;
  spec.algorithm = "simulated-annealing";  // Not a registered name.
  std::string error;
  EXPECT_EQ(MakeJobSearcher(spec, &space, &error), nullptr);
  EXPECT_NE(error.find("simulated-annealing"), std::string::npos) << error;

  // metric: multi on an algorithm without a registered multi variant.
  spec.algorithm = "random";
  spec.metrics.push_back({"throughput", 1.0});
  error.clear();
  EXPECT_EQ(MakeJobSearcher(spec, &space, &error), nullptr);
  EXPECT_NE(error.find("multi"), std::string::npos) << error;

  // The supported route still works and carries the metrics through.
  spec.algorithm = "deeptune";
  error.clear();
  auto searcher = MakeJobSearcher(spec, &space, &error);
  ASSERT_NE(searcher, nullptr) << error;
  EXPECT_EQ(searcher->Name(), "deeptune-multi");
}

// A local searcher registered from this test file — the out-of-tree path.
class CountingSearcher : public Searcher {
 public:
  std::string Name() const override { return "test-counting"; }
  Configuration Propose(SearchContext& context) override {
    ++proposals_;
    return context.space->RandomConfiguration(*context.rng, context.sample_options);
  }

 private:
  size_t proposals_ = 0;
};

const SearcherRegistration kCountingRegistration{
    {"test-counting", "test-only: counts proposals"},
    [](const SearcherArgs&) { return std::make_unique<CountingSearcher>(); }};

TEST(SearcherRegistry, OutOfTreeRegistrationIsFirstClass) {
  ConfigSpace space = BuildUnikraftSpace();
  std::unique_ptr<Searcher> searcher = MakeSearcher("test-counting", &space);
  ASSERT_NE(searcher, nullptr);
  EXPECT_EQ(searcher->Name(), "test-counting");

  // It resolves through the job path too — no core file mentions it.
  JobSpec spec;
  spec.algorithm = "test-counting";
  std::string error;
  auto job_searcher = MakeJobSearcher(spec, &space, &error);
  ASSERT_NE(job_searcher, nullptr) << error;

  std::vector<std::string> names = RegisteredSearcherNames();
  EXPECT_NE(std::find(names.begin(), names.end(), "test-counting"), names.end());
}

}  // namespace
}  // namespace wayfinder
