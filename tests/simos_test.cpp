// Tests for the simulated substrate: performance, crash, and memory models,
// the testbench, and the Cozart-style debloater. Several tests check the
// *calibration* claims DESIGN.md makes against the paper.
#include <gtest/gtest.h>

#include <cmath>

#include "src/configspace/linux_space.h"
#include "src/configspace/unikraft_space.h"
#include "src/simos/cozart.h"
#include "src/simos/testbench.h"
#include "src/util/stats.h"

namespace wayfinder {
namespace {

class SimosFixture : public ::testing::Test {
 protected:
  // Same seeds a default-constructed Testbench derives, so the fixture
  // tests the exact models the search experiments run against.
  SimosFixture()
      : space_(BuildLinuxSearchSpace()),
        perf_(&space_),
        crash_(&space_, HashCombine(0xbe27c4, 0xc4a5)),
        memory_(&space_) {}

  ConfigSpace space_;
  PerfModel perf_;
  CrashModel crash_;
  MemoryModel memory_;
};

TEST_F(SimosFixture, DefaultConfigHitsBaselines) {
  Configuration def = space_.DefaultConfiguration();
  for (const AppProfile& app : AllApps()) {
    EXPECT_NEAR(perf_.MeanMetric(app.id, def), app.baseline, app.baseline * 1e-9) << app.name;
    EXPECT_NEAR(perf_.Goodness(app.id, def), 0.0, 1e-9) << app.name;
  }
}

TEST_F(SimosFixture, PerfModelIsDeterministic) {
  Rng rng(4);
  Configuration config = space_.RandomConfiguration(rng);
  double a = perf_.MeanMetric(AppId::kNginx, config);
  double b = perf_.MeanMetric(AppId::kNginx, config);
  EXPECT_DOUBLE_EQ(a, b);
  PerfModel other(&space_);
  EXPECT_DOUBLE_EQ(other.MeanMetric(AppId::kNginx, config), a);
}

TEST_F(SimosFixture, SampleNoiseMatchesAppCv) {
  Configuration def = space_.DefaultConfiguration();
  Rng rng(5);
  RunningStats stats;
  for (int i = 0; i < 2000; ++i) {
    stats.Add(std::log(perf_.SampleMetric(AppId::kNginx, def, rng)));
  }
  EXPECT_NEAR(stats.StdDev(), GetApp(AppId::kNginx).noise_cv, 0.005);
}

TEST_F(SimosFixture, DocumentedParamsImproveNginx) {
  // §4.1: somaxconn, rmem_default, keepalive — raising them toward their
  // tuned values must beat the default for Nginx.
  Configuration tuned = space_.DefaultConfiguration();
  tuned.Set("net.core.somaxconn", 8192);
  tuned.Set("net.core.rmem_default", 4 * 1024 * 1024);
  tuned.Set("net.ipv4.tcp_keepalive_time", 300);
  EXPECT_GT(perf_.MeanMetric(AppId::kNginx, tuned), GetApp(AppId::kNginx).baseline * 1.02);
}

TEST_F(SimosFixture, DebugKnobsHurtNginx) {
  // §4.1 negative parameters: verbosity, printk delay, block dump.
  Configuration noisy = space_.DefaultConfiguration();
  noisy.Set("kernel.printk", 7);
  noisy.Set("kernel.printk_delay", 5000);
  noisy.Set("vm.block_dump", 1);
  EXPECT_LT(perf_.MeanMetric(AppId::kNginx, noisy), GetApp(AppId::kNginx).baseline * 0.97);
}

TEST_F(SimosFixture, NpbBarelyReactsToOsConfig) {
  // MaxHeadroom sums the whole space (the runtime-anchored target plus the
  // rarely-explored boot/compile tail), so the bound is a little above the
  // calibrated log(1.025) runtime target.
  EXPECT_LT(perf_.MaxHeadroom(AppId::kNpb), 0.07);
  EXPECT_GT(perf_.MaxHeadroom(AppId::kNginx), 5.0 * perf_.MaxHeadroom(AppId::kNpb));
}

TEST_F(SimosFixture, SqliteDefaultNearOptimal) {
  EXPECT_LT(perf_.MaxHeadroom(AppId::kSqlite), 0.03);
}

TEST_F(SimosFixture, TrueImportanceCorrelatesAcrossNetApps) {
  // The Figure 5 premise: Nginx and Redis share impactful parameters; NPB
  // does not.
  std::vector<double> nginx = perf_.TrueImportance(AppId::kNginx);
  std::vector<double> redis = perf_.TrueImportance(AppId::kRedis);
  std::vector<double> npb = perf_.TrueImportance(AppId::kNpb);
  double nginx_redis = PearsonCorrelation(nginx, redis);
  double nginx_npb = PearsonCorrelation(nginx, npb);
  EXPECT_GT(nginx_redis, 0.7);
  EXPECT_LT(nginx_npb, nginx_redis - 0.2);
}

TEST_F(SimosFixture, RandomCrashRateAboutOneThird) {
  // §2.2: "about a third of randomly generated configurations crash".
  Rng rng(6);
  size_t crashes = 0;
  const size_t kTrials = 1500;
  for (size_t i = 0; i < kTrials; ++i) {
    Configuration config = space_.RandomConfiguration(rng, SampleOptions::FavorRuntime());
    crashes += crash_.CheckDeterministic(AppId::kNginx, config).crashed ? 1 : 0;
  }
  double rate = static_cast<double>(crashes) / static_cast<double>(kTrials);
  EXPECT_GT(rate, 0.22);
  EXPECT_LT(rate, 0.45);
}

TEST_F(SimosFixture, DefaultConfigurationNeverCrashes) {
  Configuration def = space_.DefaultConfiguration();
  for (const AppProfile& app : AllApps()) {
    EXPECT_FALSE(crash_.CheckDeterministic(app.id, def).crashed) << app.name;
  }
}

TEST_F(SimosFixture, CrashIsDeterministicInConfig) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    Configuration config = space_.RandomConfiguration(rng);
    CrashOutcome a = crash_.CheckDeterministic(AppId::kRedis, config);
    CrashOutcome b = crash_.CheckDeterministic(AppId::kRedis, config);
    ASSERT_EQ(a.crashed, b.crashed);
    ASSERT_EQ(a.reason, b.reason);
  }
}

TEST_F(SimosFixture, FragileZoneTriggersWithReason) {
  ASSERT_FALSE(crash_.fragile_zones().empty());
  const auto& zone = crash_.fragile_zones().front();
  Configuration config = space_.DefaultConfiguration();
  double inside = zone.high_side ? 1.0 : 0.0;
  config.SetRaw(zone.param, space_.DecodeParam(zone.param, inside));
  CrashOutcome outcome = crash_.CheckDeterministic(AppId::kNginx, config);
  EXPECT_TRUE(outcome.crashed);
  EXPECT_NE(outcome.reason.find(space_.Param(zone.param).name), std::string::npos);
}

TEST_F(SimosFixture, CuratedRules) {
  Configuration config = space_.DefaultConfiguration();
  config.Set("CONFIG_NR_CPUS", 2);  // Nginx runs on 16 cores.
  CrashOutcome outcome = crash_.CheckDeterministic(AppId::kNginx, config);
  EXPECT_TRUE(outcome.crashed);
  // Boots fine; fails when the multicore workload starts.
  EXPECT_EQ(outcome.stage, ParamPhase::kRuntime);
  // SQLite runs on 1 core: same config boots fine.
  EXPECT_FALSE(crash_.CheckDeterministic(AppId::kSqlite, config).crashed);
}

TEST_F(SimosFixture, EssentialPairCrashOnlyWhenBothDisabled) {
  const auto& pairs = crash_.essential_pairs();
  ASSERT_GE(pairs.size(), 2u);
  Configuration config = space_.DefaultConfiguration();
  config.SetRaw(pairs[0], 0);
  EXPECT_FALSE(crash_.CheckDeterministic(AppId::kNginx, config).crashed);
  config.SetRaw(pairs[1], 0);
  CrashOutcome outcome = crash_.CheckDeterministic(AppId::kNginx, config);
  EXPECT_TRUE(outcome.crashed);
  EXPECT_EQ(outcome.stage, ParamPhase::kBootTime);
}

TEST_F(SimosFixture, MemoryModelAnchoredAt210) {
  Configuration def = space_.DefaultConfiguration();
  EXPECT_NEAR(memory_.FootprintMb(def), 210.0, 1e-6);
}

TEST_F(SimosFixture, DisablingFeaturesShrinksFootprint) {
  Configuration config = space_.DefaultConfiguration();
  config.Set("CONFIG_MODULES", 0);
  config.Set("CONFIG_FTRACE", 0);
  double smaller = memory_.FootprintMb(config);
  EXPECT_LT(smaller, 210.0 - 8.0);
  // Figure 10 needs ~18 MB of removable mass in the compile-time subset.
  EXPECT_LT(memory_.MinFootprintMb(), 192.0);
}

TEST_F(SimosFixture, EnablingDebugGrowsFootprint) {
  Configuration config = space_.DefaultConfiguration();
  config.Set("CONFIG_KASAN", 1);
  EXPECT_GT(memory_.FootprintMb(config), 240.0);
}

TEST_F(SimosFixture, LogBufShiftScalesExponentially) {
  Configuration a = space_.DefaultConfiguration();
  Configuration b = a;
  a.Set("CONFIG_LOG_BUF_SHIFT", 12);
  b.Set("CONFIG_LOG_BUF_SHIFT", 25);
  EXPECT_GT(memory_.FootprintMb(b) - memory_.FootprintMb(a), 25.0);
}

// --- Testbench ---------------------------------------------------------------

TEST(TestbenchTest, SuccessfulTrialAdvancesClockThroughAllPhases) {
  ConfigSpace space = BuildLinuxSearchSpace();
  Testbench bench(&space, AppId::kNginx);
  Rng rng(8);
  SimClock clock;
  TrialOutcome outcome = bench.Evaluate(space.DefaultConfiguration(), rng, &clock);
  ASSERT_TRUE(outcome.ok());
  EXPECT_GT(outcome.build_seconds, 0.0);
  EXPECT_GT(outcome.boot_seconds, 0.0);
  EXPECT_GT(outcome.run_seconds, 0.0);
  EXPECT_NEAR(clock.Now(), outcome.TotalSeconds(), 1e-9);
  EXPECT_GT(outcome.metric, 0.0);
  EXPECT_GT(outcome.memory_mb, 100.0);
}

TEST(TestbenchTest, SkipBuildSkipsBuildTime) {
  ConfigSpace space = BuildLinuxSearchSpace();
  Testbench bench(&space, AppId::kNginx);
  Rng rng(9);
  SimClock clock;
  TrialOutcome outcome =
      bench.Evaluate(space.DefaultConfiguration(), rng, &clock, /*skip_build=*/true);
  EXPECT_TRUE(outcome.build_skipped);
  EXPECT_DOUBLE_EQ(outcome.build_seconds, 0.0);
}

TEST(TestbenchTest, RunCrashReportsStageAndReason) {
  ConfigSpace space = BuildLinuxSearchSpace();
  Testbench bench(&space, AppId::kNginx);
  Rng rng(10);
  Configuration config = space.DefaultConfiguration();
  config.Set("CONFIG_SMP", 0);  // Boots, but the 16-core workload fails.
  TrialOutcome outcome = bench.Evaluate(config, rng, nullptr);
  EXPECT_EQ(outcome.status, TrialOutcome::Status::kRunCrashed);
  EXPECT_FALSE(outcome.failure_reason.empty());
}

TEST(TestbenchTest, BootFailureFromEssentialTristate) {
  ConfigSpace space = BuildLinuxSearchSpace();
  Testbench bench(&space, AppId::kNginx);
  auto essential = bench.crash_model().essential_tristate();
  ASSERT_TRUE(essential.has_value());
  Configuration config = space.DefaultConfiguration();
  config.SetRaw(*essential, 0);
  Rng rng(12);
  TrialOutcome outcome = bench.Evaluate(config, rng, nullptr);
  EXPECT_EQ(outcome.status, TrialOutcome::Status::kBootFailed);
  // "m" (module) still boots.
  config.SetRaw(*essential, 1);
  EXPECT_FALSE(bench.crash_model().CheckDeterministic(AppId::kNginx, config).crashed);
}

TEST(TestbenchTest, UnikraftBuildsFaster) {
  ConfigSpace linux_space = BuildLinuxSearchSpace();
  ConfigSpace uk_space = BuildUnikraftSpace();
  Testbench linux_bench(&linux_space, AppId::kNginx);
  TestbenchOptions uk_options;
  uk_options.substrate = Substrate::kUnikraftKvm;
  Testbench uk_bench(&uk_space, AppId::kNginx, uk_options);
  Rng rng(11);
  RunningStats linux_build;
  RunningStats uk_build;
  for (int i = 0; i < 50; ++i) {
    linux_build.Add(linux_bench.SampleBuildSeconds(rng));
    uk_build.Add(uk_bench.SampleBuildSeconds(rng));
  }
  EXPECT_GT(linux_build.Mean(), 2.0 * uk_build.Mean());
}

// --- Cozart ---------------------------------------------------------------------

TEST(CozartTest, DisablesOnlyUnusedNonEssentialOptions) {
  ConfigSpace space = BuildLinuxSearchSpace();
  CrashModel crash(&space, HashCombine(0xbe27c4, 0xc4a5));
  CozartDebloater cozart(&space, &crash);
  DebloatResult result = cozart.Debloat(AppId::kNginx);
  EXPECT_GT(result.disabled.size(), 0u);
  const AppProfile& nginx = GetApp(AppId::kNginx);
  for (size_t index : result.disabled) {
    const ParamSpec& spec = space.Param(index);
    EXPECT_EQ(spec.phase, ParamPhase::kCompileTime);
    EXPECT_LT(nginx.weights.For(spec.subsystem), 0.06) << spec.name;
    EXPECT_FALSE(crash.IsEssentialCompileOption(index)) << spec.name;
    EXPECT_EQ(result.baseline.Raw(index), 0);
  }
}

TEST(CozartTest, BaselineStillBootsAndShrinksMemory) {
  ConfigSpace space = BuildLinuxSearchSpace();
  Testbench bench(&space, AppId::kNginx);
  CozartDebloater cozart(&space, &bench.crash_model());
  DebloatResult result = cozart.Debloat(AppId::kNginx);
  EXPECT_FALSE(bench.crash_model().CheckDeterministic(AppId::kNginx, result.baseline).crashed);
  EXPECT_LT(bench.memory_model().FootprintMb(result.baseline),
            bench.memory_model().FootprintMb(space.DefaultConfiguration()));
  // Debloating also helps performance a little (the bloat-drag term).
  EXPECT_GT(bench.perf_model().MeanMetric(AppId::kNginx, result.baseline),
            bench.perf_model().BaselineMetric(AppId::kNginx));
}

TEST(CozartTest, FreezeDisabledShrinksSearchSpace) {
  ConfigSpace space = BuildLinuxSearchSpace();
  CrashModel crash(&space, 1);
  CozartDebloater cozart(&space, &crash);
  DebloatResult result = cozart.Debloat(AppId::kNginx);
  size_t frozen = CozartDebloater::FreezeDisabled(&space, result);
  EXPECT_EQ(frozen, result.disabled.size());
  EXPECT_EQ(space.FrozenCount(), frozen);
}

// Property: per-app crash rates all land in the paper's band.
class CrashRateTest : public ::testing::TestWithParam<AppId> {};

TEST_P(CrashRateTest, AboutOneThirdForRandomConfigs) {
  ConfigSpace space = BuildLinuxSearchSpace();
  CrashModel crash(&space, HashCombine(0xbe27c4, 0xc4a5));
  Rng rng(StableHash(AppName(GetParam())));
  size_t crashes = 0;
  for (int i = 0; i < 1000; ++i) {
    Configuration config = space.RandomConfiguration(rng, SampleOptions::FavorRuntime());
    crashes += crash.CheckDeterministic(GetParam(), config).crashed ? 1 : 0;
  }
  double rate = static_cast<double>(crashes) / 1000.0;
  EXPECT_GT(rate, 0.18) << AppName(GetParam());
  EXPECT_LT(rate, 0.48) << AppName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Apps, CrashRateTest,
                         ::testing::Values(AppId::kNginx, AppId::kRedis, AppId::kSqlite,
                                           AppId::kNpb),
                         [](const ::testing::TestParamInfo<AppId>& info) {
                           return AppName(info.param);
                         });

}  // namespace
}  // namespace wayfinder
