// Tests for Pareto-front extraction and multi-metric job files.
#include <algorithm>

#include <gtest/gtest.h>

#include "src/core/pareto.h"
#include "src/core/wayfinder_api.h"

namespace wayfinder {
namespace {

// ---------------------------------------------------------------------------
// ParetoFrontIndices (all coordinates maximized).

TEST(ParetoTest, SinglePointIsItsOwnFront) {
  EXPECT_EQ(ParetoFrontIndices({{1.0, 2.0}}), (std::vector<size_t>{0}));
}

TEST(ParetoTest, DominatedPointsAreDropped) {
  // (3,3) dominates everything else.
  std::vector<size_t> front =
      ParetoFrontIndices({{1.0, 1.0}, {3.0, 3.0}, {2.0, 2.0}, {3.0, 2.0}});
  EXPECT_EQ(front, (std::vector<size_t>{1}));
}

TEST(ParetoTest, TradeoffCurveSurvives) {
  // Classic staircase: each point best in one coordinate.
  std::vector<size_t> front =
      ParetoFrontIndices({{1.0, 4.0}, {2.0, 3.0}, {3.0, 2.0}, {4.0, 1.0}, {1.0, 1.0}});
  EXPECT_EQ(front, (std::vector<size_t>{0, 1, 2, 3}));
}

TEST(ParetoTest, DuplicatesAreAllKept) {
  std::vector<size_t> front = ParetoFrontIndices({{2.0, 2.0}, {2.0, 2.0}, {1.0, 1.0}});
  EXPECT_EQ(front, (std::vector<size_t>{0, 1}));
}

TEST(ParetoTest, EmptyInputYieldsEmptyFront) {
  EXPECT_TRUE(ParetoFrontIndices({}).empty());
}

TEST(ParetoTest, SingleObjectiveFrontIsTheMax) {
  std::vector<size_t> front = ParetoFrontIndices({{1.0}, {5.0}, {3.0}});
  EXPECT_EQ(front, (std::vector<size_t>{1}));
}

TEST(ParetoTest, FrontFromHistoryHandlesPolarityAndCrashes) {
  std::vector<MetricSpec> metrics = {MetricSpec::AppThroughput(),
                                     MetricSpec::MemoryFootprint()};
  std::vector<TrialRecord> history(4);
  // #0: fast and big.
  history[0].outcome.status = TrialOutcome::Status::kOk;
  history[0].outcome.metric = 20000;
  history[0].outcome.memory_mb = 250;
  history[0].objective = 20000;
  // #1: slow and small.
  history[1].outcome.status = TrialOutcome::Status::kOk;
  history[1].outcome.metric = 12000;
  history[1].outcome.memory_mb = 180;
  history[1].objective = 12000;
  // #2: dominated (slower AND bigger than #0... and than #1 in memory).
  history[2].outcome.status = TrialOutcome::Status::kOk;
  history[2].outcome.metric = 11000;
  history[2].outcome.memory_mb = 260;
  history[2].objective = 11000;
  // #3: would dominate everything, but crashed.
  history[3].outcome.status = TrialOutcome::Status::kRunCrashed;
  history[3].outcome.metric = 99999;
  history[3].outcome.memory_mb = 1;

  std::vector<size_t> front = ParetoFront(history, metrics);
  EXPECT_EQ(front, (std::vector<size_t>{0, 1}));
}

TEST(ParetoTest, FrontOfARealSessionIsNonEmptyAndNonDominated) {
  JobSpec spec;
  spec.name = "pareto-session";
  spec.app = AppId::kNginx;
  spec.algorithm = "random";
  spec.favor = "runtime";  // Fully random compile sampling rarely survives.
  spec.iterations = 60;
  spec.seed = 111;
  JobRunResult run = RunJob(spec);
  ASSERT_TRUE(run.ok) << run.error;

  std::vector<MetricSpec> metrics = {MetricSpec::AppThroughput(),
                                     MetricSpec::MemoryFootprint()};
  std::vector<size_t> front = ParetoFront(run.session.history, metrics);
  ASSERT_FALSE(front.empty());
  // Every front member is successful and not dominated by any other trial.
  for (size_t i : front) {
    const TrialRecord& a = run.session.history[i];
    ASSERT_FALSE(a.crashed());
    for (const TrialRecord& b : run.session.history) {
      if (b.crashed()) {
        continue;
      }
      bool dominates = b.outcome.metric >= a.outcome.metric &&
                       b.outcome.memory_mb <= a.outcome.memory_mb &&
                       (b.outcome.metric > a.outcome.metric ||
                        b.outcome.memory_mb < a.outcome.memory_mb);
      EXPECT_FALSE(dominates);
    }
  }
}

// ---------------------------------------------------------------------------
// Multi-metric job files.

TEST(MultiMetricJobTest, ParsesMetricsList) {
  JobParseResult parsed = ParseJobText(
      "name: multi-job\n"
      "application: nginx\n"
      "metric: multi\n"
      "metrics:\n"
      "  - name: throughput\n"
      "    weight: 1.0\n"
      "  - name: memory\n"
      "    weight: 0.5\n"
      "budget:\n"
      "  iterations: 10\n");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  ASSERT_TRUE(parsed.spec.IsMultiMetric());
  ASSERT_EQ(parsed.spec.metrics.size(), 2u);
  EXPECT_EQ(parsed.spec.metrics[0].name, "throughput");
  EXPECT_DOUBLE_EQ(parsed.spec.metrics[1].weight, 0.5);
  EXPECT_EQ(parsed.spec.objective, ObjectiveKind::kScore);
}

TEST(MultiMetricJobTest, MultiWithoutMetricsListFails) {
  JobParseResult parsed = ParseJobText(
      "name: broken\n"
      "metric: multi\n");
  EXPECT_FALSE(parsed.ok);
  EXPECT_NE(parsed.error.find("metrics"), std::string::npos);
}

TEST(MultiMetricJobTest, UnknownMetricNameFails) {
  JobParseResult parsed = ParseJobText(
      "name: broken\n"
      "metric: multi\n"
      "metrics:\n"
      "  - name: latency_p99\n");
  EXPECT_FALSE(parsed.ok);
  EXPECT_NE(parsed.error.find("latency_p99"), std::string::npos);
}

TEST(MultiMetricJobTest, NegativeWeightFails) {
  JobParseResult parsed = ParseJobText(
      "name: broken\n"
      "metric: multi\n"
      "metrics:\n"
      "  - name: memory\n"
      "    weight: -1\n");
  EXPECT_FALSE(parsed.ok);
}

TEST(MultiMetricJobTest, RunsEndToEndWithDeepTune) {
  JobParseResult parsed = ParseJobText(
      "name: multi-e2e\n"
      "application: nginx\n"
      "metric: multi\n"
      "metrics:\n"
      "  - name: throughput\n"
      "  - name: memory\n"
      "budget:\n"
      "  iterations: 20\n"
      "search:\n"
      "  algorithm: deeptune\n"
      "  favor: runtime\n"
      "  seed: 5\n");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  JobRunResult run = RunJob(parsed.spec);
  ASSERT_TRUE(run.ok) << run.error;
  EXPECT_EQ(run.session.history.size(), 20u);
}

TEST(MultiMetricJobTest, NonDeepTuneAlgorithmIsRejected) {
  JobParseResult parsed = ParseJobText(
      "name: multi-bad-algo\n"
      "metric: multi\n"
      "metrics:\n"
      "  - name: throughput\n"
      "search:\n"
      "  algorithm: random\n");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  JobRunResult run = RunJob(parsed.spec);
  EXPECT_FALSE(run.ok);
  EXPECT_NE(run.error.find("deeptune"), std::string::npos);
}

}  // namespace
}  // namespace wayfinder
