// Tests for the §3.4 runtime-space prober against the simulated sysfs.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/configspace/linux_space.h"
#include "src/configspace/probe.h"
#include "src/simos/sysfs.h"

namespace wayfinder {
namespace {

ConfigSpace ProbeSpace() {
  ConfigSpace space;
  space.Add(ParamSpec::Bool("net.ipv4.tcp_sack", ParamPhase::kRuntime, "net", true));
  space.Add(ParamSpec::Int("net.core.somaxconn", ParamPhase::kRuntime, "net", 16, 65536, 128,
                           true));
  space.Add(ParamSpec::Int("vm.swappiness", ParamPhase::kRuntime, "vm", 0, 100, 60));
  space.Add(ParamSpec::String("net.core.default_qdisc", ParamPhase::kRuntime, "net",
                              {"pfifo_fast", "fq"}, 0));
  space.Add(ParamSpec::Bool("CONFIG_COMPILED", ParamPhase::kCompileTime, "net", true));
  return space;
}

TEST(SimSysfs, ExposesOnlyRuntimeParams) {
  ConfigSpace space = ProbeSpace();
  SimulatedSysfs sysfs(&space);
  std::vector<std::string> paths = sysfs.ListWritablePaths();
  EXPECT_EQ(paths.size(), 4u);
  EXPECT_EQ(std::find(paths.begin(), paths.end(), "CONFIG_COMPILED"), paths.end());
}

TEST(SimSysfs, ReadReturnsDefaults) {
  ConfigSpace space = ProbeSpace();
  SimulatedSysfs sysfs(&space);
  EXPECT_EQ(sysfs.ReadValue("net.core.somaxconn").value_or(""), "128");
  EXPECT_EQ(sysfs.ReadValue("net.ipv4.tcp_sack").value_or(""), "1");
  EXPECT_EQ(sysfs.ReadValue("net.core.default_qdisc").value_or(""), "pfifo_fast");
  EXPECT_FALSE(sysfs.ReadValue("missing").has_value());
}

TEST(SimSysfs, WriteRespectsDomain) {
  ConfigSpace space = ProbeSpace();
  SimulatedSysfs sysfs(&space, /*seed=*/1);  // Seed chosen so nothing is locked below.
  EXPECT_EQ(sysfs.TryWrite("vm.swappiness", "80"), ProbeWriteResult::kOk);
  EXPECT_EQ(sysfs.ReadValue("vm.swappiness").value_or(""), "80");
  EXPECT_EQ(sysfs.TryWrite("vm.swappiness", "101"), ProbeWriteResult::kRejected);
  EXPECT_EQ(sysfs.TryWrite("vm.swappiness", "garbage"), ProbeWriteResult::kRejected);
}

TEST(SimSysfs, FarOutOfRangeWriteCrashesAndReboots) {
  ConfigSpace space = ProbeSpace();
  SimulatedSysfs sysfs(&space, 1);
  sysfs.TryWrite("vm.swappiness", "80");
  // 100x beyond the true maximum crashes the guest.
  EXPECT_EQ(sysfs.TryWrite("vm.swappiness", "100000"), ProbeWriteResult::kCrash);
  EXPECT_EQ(sysfs.crash_count(), 1u);
  // Reboot restored the default.
  EXPECT_EQ(sysfs.ReadValue("vm.swappiness").value_or(""), "60");
}

TEST(Prober, DiscoversTypesAndRanges) {
  ConfigSpace space = ProbeSpace();
  SimulatedSysfs sysfs(&space, 1);
  ProbeReport report = ProbeRuntimeSpace(sysfs);

  // The string parameter is skipped (non-numeric, §3.4).
  ASSERT_EQ(report.skipped_non_numeric.size(), 1u);
  EXPECT_EQ(report.skipped_non_numeric[0], "net.core.default_qdisc");

  // Booleans and integers are discovered with sane domains.
  bool found_bool = false;
  bool found_somaxconn = false;
  for (const ParamSpec& spec : report.params) {
    EXPECT_EQ(spec.phase, ParamPhase::kRuntime);
    if (spec.name == "net.ipv4.tcp_sack") {
      found_bool = true;
      EXPECT_EQ(spec.kind, ParamKind::kBool);
      EXPECT_EQ(spec.default_value, 1);
    }
    if (spec.name == "net.core.somaxconn") {
      found_somaxconn = true;
      EXPECT_EQ(spec.kind, ParamKind::kInt);
      EXPECT_EQ(spec.default_value, 128);
      // The x10 probe found 1280 and 12800 valid but was rejected past the
      // true range; the discovered range must be inside the true one.
      EXPECT_GE(spec.min_value, 0);
      EXPECT_LE(spec.max_value, 65536);
      EXPECT_GT(spec.max_value, 1000);
    }
  }
  EXPECT_TRUE(found_bool);
  EXPECT_TRUE(found_somaxconn);
}

TEST(Prober, DiscoveredRangesAlwaysContainDefault) {
  ConfigSpace space = BuildLinuxSearchSpace(77);
  SimulatedSysfs sysfs(&space, 3);
  ProbeReport report = ProbeRuntimeSpace(sysfs);
  EXPECT_GT(report.params.size(), 50u);
  for (const ParamSpec& spec : report.params) {
    EXPECT_TRUE(spec.InDomain(spec.default_value)) << spec.name;
    EXPECT_LE(spec.min_value, spec.max_value) << spec.name;
  }
  EXPECT_GT(report.writes_attempted, report.params.size());
}

TEST(Prober, RestoresDefaultsAfterProbing) {
  ConfigSpace space = ProbeSpace();
  SimulatedSysfs sysfs(&space, 1);
  ProbeRuntimeSpace(sysfs);
  EXPECT_EQ(sysfs.ReadValue("vm.swappiness").value_or(""), "60");
  EXPECT_EQ(sysfs.ReadValue("net.core.somaxconn").value_or(""), "128");
}

// ---------------------------------------------------------------------------
// Multi-choice (bracket-notation) discovery.

TEST(SimSysfs, BracketModeRendersChoiceVocabulary) {
  ConfigSpace space = ProbeSpace();
  SimulatedSysfs sysfs(&space, /*seed=*/0x5f5f5f, /*bracket_choice_files=*/true);
  EXPECT_EQ(sysfs.ReadValue("net.core.default_qdisc").value_or(""), "[pfifo_fast] fq");
  // Writing another token moves the bracket.
  EXPECT_EQ(sysfs.TryWrite("net.core.default_qdisc", "fq"), ProbeWriteResult::kOk);
  EXPECT_EQ(sysfs.ReadValue("net.core.default_qdisc").value_or(""), "pfifo_fast [fq]");
}

TEST(ProbeChoices, DiscoversBracketNotatedCategoricals) {
  ConfigSpace space;
  space.Add(ParamSpec::String("queue.scheduler", ParamPhase::kRuntime, "block",
                              {"noop", "mq-deadline", "kyber"}, 1));
  SimulatedSysfs sysfs(&space, /*seed=*/7, /*bracket_choice_files=*/true);
  ProbeReport report = ProbeRuntimeSpace(sysfs);
  ASSERT_EQ(report.params.size(), 1u);
  const ParamSpec& spec = report.params[0];
  EXPECT_EQ(spec.kind, ParamKind::kString);
  ASSERT_EQ(spec.choices.size(), 3u);
  EXPECT_EQ(spec.choices[1], "mq-deadline");
  EXPECT_EQ(spec.default_value, 1);  // The bracketed token.
  EXPECT_EQ(spec.subsystem, "kernel");  // "queue" is not a known subsystem.
  EXPECT_TRUE(report.skipped_non_numeric.empty());
}

TEST(ProbeChoices, RestoresTheActiveTokenAfterProbing) {
  ConfigSpace space;
  space.Add(ParamSpec::String("queue.scheduler", ParamPhase::kRuntime, "block",
                              {"noop", "kyber"}, 1));
  SimulatedSysfs sysfs(&space, /*seed=*/7, /*bracket_choice_files=*/true);
  ProbeRuntimeSpace(sysfs);
  EXPECT_EQ(sysfs.ReadValue("queue.scheduler").value_or(""), "noop [kyber]");
}

TEST(ProbeChoices, PlainStringFilesStayManual) {
  ConfigSpace space;
  space.Add(ParamSpec::String("net.core.default_qdisc", ParamPhase::kRuntime, "net",
                              {"pfifo_fast", "fq"}, 0));
  // Bracket rendering off: the file reads as plain "pfifo_fast".
  SimulatedSysfs sysfs(&space, /*seed=*/7, /*bracket_choice_files=*/false);
  ProbeReport report = ProbeRuntimeSpace(sysfs);
  EXPECT_TRUE(report.params.empty());
  ASSERT_EQ(report.skipped_non_numeric.size(), 1u);
  EXPECT_EQ(report.skipped_non_numeric[0], "net.core.default_qdisc");
}

TEST(ProbeChoices, DiscoveryCanBeDisabled) {
  ConfigSpace space;
  space.Add(ParamSpec::String("queue.scheduler", ParamPhase::kRuntime, "block",
                              {"noop", "kyber"}, 0));
  SimulatedSysfs sysfs(&space, /*seed=*/7, /*bracket_choice_files=*/true);
  ProbeOptions options;
  options.discover_choices = false;
  ProbeReport report = ProbeRuntimeSpace(sysfs, options);
  EXPECT_TRUE(report.params.empty());
  EXPECT_EQ(report.skipped_non_numeric.size(), 1u);
}

TEST(ProbeChoices, SingleTokenFilesAreNotCategorical) {
  ConfigSpace space;
  space.Add(ParamSpec::String("lonely.choice", ParamPhase::kRuntime, "kernel",
                              {"only"}, 0));
  SimulatedSysfs sysfs(&space, /*seed=*/7, /*bracket_choice_files=*/true);
  ProbeReport report = ProbeRuntimeSpace(sysfs);
  // "[only]" has one token: not a vocabulary, falls back to manual.
  EXPECT_TRUE(report.params.empty());
  EXPECT_EQ(report.skipped_non_numeric.size(), 1u);
}

TEST(ProbeChoices, MixedSpaceDiscoversEveryKind) {
  ConfigSpace space = ProbeSpace();
  SimulatedSysfs sysfs(&space, /*seed=*/0xaaaa, /*bracket_choice_files=*/true);
  ProbeReport report = ProbeRuntimeSpace(sysfs);
  size_t bools = 0;
  size_t ints = 0;
  size_t strings = 0;
  for (const ParamSpec& spec : report.params) {
    bools += spec.kind == ParamKind::kBool ? 1 : 0;
    ints += spec.kind == ParamKind::kInt ? 1 : 0;
    strings += spec.kind == ParamKind::kString ? 1 : 0;
  }
  EXPECT_GE(bools, 1u);
  EXPECT_GE(ints, 1u);
  EXPECT_GE(strings, 1u);
}

}  // namespace
}  // namespace wayfinder
