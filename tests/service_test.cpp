// The multi-session tuning service (src/service/): TrialStore persistence
// and dedup, SessionManager lifecycle (submitted → running → paused → done,
// queueing, graceful drain), shutdown durability (fsync + reopen loses no
// committed trial), and the acceptance end-to-end: a wfd daemon serving
// three concurrent sessions with different registry algorithms over the
// socket, bit-identical to the same jobs run standalone, plus a
// second submission warm-starting from the TrialStore.
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_set>

#include <gtest/gtest.h>

#include "src/configspace/linux_space.h"
#include "src/configspace/unikraft_space.h"
#include "src/core/wayfinder_api.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/platform/checkpoint.h"
#include "src/service/client.h"
#include "src/service/session_manager.h"
#include "src/service/trial_store.h"
#include "src/service/wfd.h"

namespace wayfinder {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string FreshDir(const char* name) {
  std::string dir = TempPath(name);
  std::filesystem::remove_all(dir);
  return dir;
}

std::string JobYaml(const std::string& name, const std::string& app,
                    const std::string& algorithm, size_t iterations, uint64_t seed,
                    size_t parallel = 1) {
  std::string yaml;
  yaml += "name: " + name + "\n";
  yaml += "os: linux\n";
  yaml += "application: " + app + "\n";
  yaml += "metric: performance\n";
  yaml += "budget:\n";
  yaml += "  iterations: " + std::to_string(iterations) + "\n";
  if (parallel > 1) {
    yaml += "parallel: " + std::to_string(parallel) + "\n";
  }
  yaml += "search:\n";
  yaml += "  algorithm: " + algorithm + "\n";
  yaml += "  seed: " + std::to_string(seed) + "\n";
  return yaml;
}

void ExpectSameTrials(const std::vector<TrialRecord>& a, const std::vector<TrialRecord>& b,
                      const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].config.values(), b[i].config.values()) << label << " trial " << i;
    ASSERT_EQ(static_cast<int>(a[i].outcome.status), static_cast<int>(b[i].outcome.status))
        << label << " trial " << i;
    ASSERT_EQ(a[i].sim_time_end, b[i].sim_time_end) << label << " trial " << i;
    ASSERT_EQ(a[i].outcome.metric, b[i].outcome.metric) << label << " trial " << i;
    if (std::isnan(a[i].objective)) {
      ASSERT_TRUE(std::isnan(b[i].objective)) << label << " trial " << i;
    } else {
      ASSERT_EQ(a[i].objective, b[i].objective) << label << " trial " << i;
    }
  }
}

std::vector<TrialRecord> RunSome(const ConfigSpace& space, size_t iterations,
                                 uint64_t seed) {
  Testbench bench(&space, AppId::kNginx);
  auto searcher = MakeSearcher("random", &space);
  SessionOptions options;
  options.max_iterations = iterations;
  options.seed = seed;
  return RunSearch(&bench, searcher.get(), options).history;
}

// ---------------------------------------------------------------------------
// TrialStore.

TEST(TrialStoreTest, AppendLoadRoundTripsAndDedups) {
  std::string dir = FreshDir("wf_trialstore_roundtrip");
  ConfigSpace space = BuildLinuxSearchSpace();
  std::vector<TrialRecord> history = RunSome(space, 12, 0xa1);
  std::string key = TrialStoreKey(space, AppId::kNginx);

  TrialStore store(dir);
  size_t written = 0;
  for (const TrialRecord& trial : history) {
    written += store.Append(key, trial) ? 1 : 0;
  }
  std::unordered_set<uint64_t> distinct;
  for (const TrialRecord& trial : history) {
    distinct.insert(trial.config.Hash());
  }
  EXPECT_EQ(written, distinct.size());
  // Re-appending the same history is a no-op.
  for (const TrialRecord& trial : history) {
    EXPECT_FALSE(store.Append(key, trial));
  }
  EXPECT_EQ(store.Count(key), distinct.size());

  TrialStore::LoadResult loaded = store.Load(key, space);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  ASSERT_EQ(loaded.trials.size(), distinct.size());
  for (size_t i = 0; i < loaded.trials.size(); ++i) {
    EXPECT_EQ(loaded.trials[i].config.values(), history[i].config.values()) << i;
    EXPECT_EQ(loaded.trials[i].outcome.metric, history[i].outcome.metric) << i;
    EXPECT_EQ(loaded.trials[i].sim_time_end, history[i].sim_time_end) << i;
    EXPECT_EQ(loaded.trials[i].HasObjective(), history[i].HasObjective()) << i;
    if (history[i].HasObjective()) {
      EXPECT_EQ(loaded.trials[i].objective, history[i].objective) << i;
    }
  }
}

TEST(TrialStoreTest, SurvivesCloseAndReopen) {
  std::string dir = FreshDir("wf_trialstore_reopen");
  ConfigSpace space = BuildLinuxSearchSpace();
  std::vector<TrialRecord> first = RunSome(space, 8, 0xa2);
  std::string key = TrialStoreKey(space, AppId::kNginx);
  {
    TrialStore store(dir);
    for (const TrialRecord& trial : first) {
      store.Append(key, trial);
    }
    store.FsyncClose();
  }
  // A second process lifetime: dedup state and contents both survive.
  TrialStore reopened(dir);
  EXPECT_FALSE(reopened.Append(key, first.front()));
  std::vector<TrialRecord> second = RunSome(space, 8, 0xa3);
  for (const TrialRecord& trial : second) {
    reopened.Append(key, trial);
  }
  TrialStore::LoadResult loaded = reopened.Load(key, space);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  std::unordered_set<uint64_t> expected;
  for (const TrialRecord& trial : first) {
    expected.insert(trial.config.Hash());
  }
  for (const TrialRecord& trial : second) {
    expected.insert(trial.config.Hash());
  }
  EXPECT_EQ(loaded.trials.size(), expected.size());
}

TEST(TrialStoreTest, KeysSeparateAppsAndSpaces) {
  ConfigSpace linux_space = BuildLinuxSearchSpace();
  ConfigSpace unikraft_space = BuildUnikraftSpace();
  EXPECT_NE(TrialStoreKey(linux_space, AppId::kNginx),
            TrialStoreKey(linux_space, AppId::kRedis));
  EXPECT_NE(TrialStoreKey(linux_space, AppId::kNginx),
            TrialStoreKey(unikraft_space, AppId::kNginx));
  // Freezing a parameter does not change raw-value meaning, but adding one
  // does: the fingerprint tracks the parameter list.
  EXPECT_EQ(TrialStoreKey(linux_space, AppId::kNginx).rfind("nginx-", 0), 0u);
}

TEST(TrialStoreTest, RecoversFromATornTail) {
  // A daemon SIGKILLed mid-append leaves a half-written record. Reopening
  // must (a) load the valid prefix, (b) truncate the torn bytes so new
  // appends do not land after garbage, and (c) keep warm-start submissions
  // working — one torn write must never brick the key.
  std::string dir = FreshDir("wf_trialstore_torn");
  ConfigSpace space = BuildLinuxSearchSpace();
  std::vector<TrialRecord> history = RunSome(space, 6, 0xa5);
  std::string key = TrialStoreKey(space, AppId::kNginx);
  std::string path = dir + "/" + key + ".wftrials";
  {
    TrialStore store(dir);
    for (const TrialRecord& trial : history) {
      store.Append(key, trial);
    }
    store.FsyncClose();
  }
  // Tear the tail: a trial line with no values line, plus half a line.
  {
    std::ofstream out(path, std::ios::app);
    out << "trial ok 1.5 2.5 3.5 4.5 5.5 0 1.0 9\nvalues 1 2 3";  // Short.
  }
  TrialStore reopened(dir);
  TrialStore::LoadResult loaded = reopened.Load(key, space);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  std::unordered_set<uint64_t> distinct;
  for (const TrialRecord& trial : history) {
    distinct.insert(trial.config.Hash());
  }
  EXPECT_EQ(loaded.trials.size(), distinct.size());
  // Appends after recovery extend a clean log.
  std::vector<TrialRecord> more = RunSome(space, 4, 0xa6);
  for (const TrialRecord& trial : more) {
    reopened.Append(key, trial);
  }
  reopened.FsyncClose();
  TrialStore final_store(dir);
  TrialStore::LoadResult final_load = final_store.Load(key, space);
  ASSERT_TRUE(final_load.ok) << final_load.error;
  for (const TrialRecord& trial : more) {
    distinct.insert(trial.config.Hash());
  }
  EXPECT_EQ(final_load.trials.size(), distinct.size());
}

TEST(TrialStoreTest, RecoversFromAMissingFinalNewline) {
  // A SIGKILL can cut the log one byte short of the final newline. The
  // unterminated record counts as torn (it never became fully durable);
  // recovery must drop it cleanly so the next append starts a fresh,
  // properly delimited line instead of concatenating onto the old one.
  std::string dir = FreshDir("wf_trialstore_nonewline");
  ConfigSpace space = BuildLinuxSearchSpace();
  std::vector<TrialRecord> history = RunSome(space, 6, 0xa7);
  std::string key = TrialStoreKey(space, AppId::kNginx);
  std::string path = dir + "/" + key + ".wftrials";
  std::unordered_set<uint64_t> distinct;
  {
    TrialStore store(dir);
    for (const TrialRecord& trial : history) {
      if (store.Append(key, trial)) {
        distinct.insert(trial.config.Hash());
      }
    }
    store.FsyncClose();
  }
  std::filesystem::resize_file(path, std::filesystem::file_size(path) - 1);

  TrialStore reopened(dir);
  TrialStore::LoadResult loaded = reopened.Load(key, space);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.trials.size(), distinct.size() - 1);
  std::unordered_set<uint64_t> expected;
  for (const TrialRecord& trial : loaded.trials) {
    expected.insert(trial.config.Hash());
  }
  std::vector<TrialRecord> more = RunSome(space, 4, 0xa8);
  for (const TrialRecord& trial : more) {
    reopened.Append(key, trial);
    expected.insert(trial.config.Hash());
  }
  reopened.FsyncClose();
  TrialStore final_store(dir);
  TrialStore::LoadResult final_load = final_store.Load(key, space);
  ASSERT_TRUE(final_load.ok) << final_load.error;
  EXPECT_EQ(final_load.trials.size(), expected.size());
}

TEST(TrialStoreTest, RejectsMismatchedSpace) {
  std::string dir = FreshDir("wf_trialstore_mismatch");
  ConfigSpace linux_space = BuildLinuxSearchSpace();
  ConfigSpace unikraft_space = BuildUnikraftSpace();
  std::vector<TrialRecord> history = RunSome(linux_space, 4, 0xa4);
  TrialStore store(dir);
  std::string key = TrialStoreKey(linux_space, AppId::kNginx);
  for (const TrialRecord& trial : history) {
    store.Append(key, trial);
  }
  store.Flush();
  TrialStore::LoadResult loaded = store.Load(key, unikraft_space);
  EXPECT_FALSE(loaded.ok);
}

// ---------------------------------------------------------------------------
// SessionManager lifecycle.

TEST(SessionManagerTest, RunsSubmittedJobsToDone) {
  SessionManagerOptions options;
  options.store_dir = FreshDir("wf_mgr_basic_store");
  SessionManager manager(options);
  std::string id, error;
  ASSERT_TRUE(manager.Submit(JobYaml("mgr-basic", "nginx", "random", 10, 5), true, &id,
                             &error))
      << error;
  EXPECT_EQ(id, "s1");
  ASSERT_TRUE(manager.WaitDone(id, 30000));
  SessionStatus status;
  ASSERT_TRUE(manager.Status(id, &status));
  EXPECT_EQ(status.state, "done");
  EXPECT_EQ(status.trials, 10u);
  EXPECT_EQ(status.warm_started, 0u);
  EXPECT_FALSE(status.store_key.empty());

  std::string checkpoint_text;
  ASSERT_TRUE(manager.Result(id, &checkpoint_text, &error)) << error;
  JobParseResult job = ParseJobText(JobYaml("mgr-basic", "nginx", "random", 10, 5));
  ConfigSpace space = BuildJobSpace(job.spec);
  CheckpointLoadResult loaded = LoadCheckpointText(space, checkpoint_text);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.history.size(), 10u);
  EXPECT_TRUE(loaded.live.Any());  // Done sessions carry live state.
  manager.Shutdown();
}

TEST(SessionManagerTest, RejectsBadJobsAndUnknownIds) {
  SessionManagerOptions options;
  SessionManager manager(options);
  std::string id, error;
  EXPECT_FALSE(manager.Submit("os: betamax\n", true, &id, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(manager.Pause("s1"));
  EXPECT_FALSE(manager.Resume("s1"));
  SessionStatus status;
  EXPECT_FALSE(manager.Status("s1", &status));
  std::string text;
  EXPECT_FALSE(manager.Result("s1", &text, &error));
  manager.Shutdown();
}

TEST(SessionManagerTest, QueuesBeyondMaxRunning) {
  SessionManagerOptions options;
  options.max_running = 1;
  SessionManager manager(options);
  std::string first, second, error;
  ASSERT_TRUE(manager.Submit(JobYaml("queue-a", "nginx", "random", 40, 6), true, &first,
                             &error))
      << error;
  ASSERT_TRUE(manager.Submit(JobYaml("queue-b", "redis", "random", 10, 7), true, &second,
                             &error))
      << error;
  // With one slot, the second job waits its turn...
  SessionStatus status;
  ASSERT_TRUE(manager.Status(second, &status));
  EXPECT_TRUE(status.state == "submitted" || status.state == "running") << status.state;
  // ...and both finish.
  ASSERT_TRUE(manager.WaitDone(first, 30000));
  ASSERT_TRUE(manager.WaitDone(second, 30000));
  ASSERT_TRUE(manager.Status(second, &status));
  EXPECT_EQ(status.state, "done");
  manager.Shutdown();
}

TEST(SessionManagerTest, PauseHoldsAtARoundBoundaryAndResumeContinues) {
  SessionManagerOptions options;
  SessionManager manager(options);
  std::string id, error;
  // Enough budget that the pause lands mid-run.
  ASSERT_TRUE(manager.Submit(JobYaml("pausable", "nginx", "random", 2000, 8), true, &id,
                             &error))
      << error;
  ASSERT_TRUE(manager.Pause(id));
  // The driver parks at the next StepBatch boundary.
  SessionStatus status;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(manager.Status(id, &status));
    if (status.state == "paused") {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(status.state, "paused");
  size_t paused_trials = status.trials;
  EXPECT_LT(paused_trials, 2000u);
  // Paused sessions are checkpointable mid-run, live state included.
  std::string checkpoint_text;
  ASSERT_TRUE(manager.Result(id, &checkpoint_text, &error)) << error;
  EXPECT_NE(checkpoint_text.find("rng-session"), std::string::npos);
  // Frozen while paused.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(manager.Status(id, &status));
  EXPECT_EQ(status.trials, paused_trials);
  ASSERT_TRUE(manager.Resume(id));
  ASSERT_TRUE(manager.WaitDone(id, 60000));
  ASSERT_TRUE(manager.Status(id, &status));
  EXPECT_EQ(status.state, "done");
  EXPECT_EQ(status.trials, 2000u);
  manager.Shutdown();
}

// The "small fix" satellite: shutdown must fsync + close every TrialStore
// file and flush checkpoints so no committed trial is lost — verified by
// draining mid-run, then reopening the store in a fresh instance.
TEST(SessionManagerTest, DrainLosesNoCommittedTrialAndWritesCheckpoints) {
  std::string store_dir = FreshDir("wf_mgr_drain_store");
  std::string ckpt_dir = FreshDir("wf_mgr_drain_ckpt");
  SessionManagerOptions options;
  options.store_dir = store_dir;
  options.checkpoint_dir = ckpt_dir;

  std::string id, error;
  std::string yaml = JobYaml("drainable", "nginx", "random", 4000, 9);
  std::vector<TrialRecord> committed;
  {
    SessionManager manager(options);
    ASSERT_TRUE(manager.Submit(yaml, true, &id, &error)) << error;
    // Let it commit a few trials, then pull the plug mid-run.
    SessionStatus status;
    for (int i = 0; i < 1000; ++i) {
      ASSERT_TRUE(manager.Status(id, &status));
      if (status.trials >= 5) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_GE(status.trials, 5u);
    manager.Shutdown();
    ASSERT_TRUE(manager.Status(id, &status));
    EXPECT_EQ(status.state, "stopped");
    std::string checkpoint_text;
    ASSERT_TRUE(manager.Result(id, &checkpoint_text, &error)) << error;
    JobParseResult job = ParseJobText(yaml);
    ConfigSpace space = BuildJobSpace(job.spec);
    CheckpointLoadResult loaded = LoadCheckpointText(space, checkpoint_text);
    ASSERT_TRUE(loaded.ok) << loaded.error;
    committed = loaded.history;
    ASSERT_GE(committed.size(), 5u);
  }

  // A fresh store (new "process") sees every committed trial.
  JobParseResult job = ParseJobText(yaml);
  ConfigSpace space = BuildJobSpace(job.spec);
  TrialStore reopened(store_dir);
  TrialStore::LoadResult stored = reopened.Load(TrialStoreKey(space, job.spec.app), space);
  ASSERT_TRUE(stored.ok) << stored.error;
  std::unordered_set<uint64_t> on_disk;
  for (const TrialRecord& trial : stored.trials) {
    on_disk.insert(trial.config.Hash());
  }
  for (const TrialRecord& trial : committed) {
    EXPECT_TRUE(on_disk.count(trial.config.Hash()) == 1)
        << "committed trial " << trial.iteration << " lost by shutdown";
  }

  // The drain checkpoint restores into a session that finishes the budget.
  CheckpointLoadResult drained =
      LoadCheckpoint(space, ckpt_dir + "/" + id + ".ckpt");
  ASSERT_TRUE(drained.ok) << drained.error;
  ASSERT_EQ(drained.history.size(), committed.size());
  EXPECT_TRUE(drained.live.Any());
}

TEST(SessionManagerTest, ScoreObjectiveResultsCarryFinalObjectives) {
  // metric: score re-normalizes PAST objectives after every wave
  // (RefreshScores), so the manager's mirror — what status/result/store
  // see — must track the rewritten history, not the at-commit values. The
  // pin: the daemon-side result equals the standalone run bit for bit,
  // objectives included.
  std::string yaml =
      "name: score-mirror\nos: linux\napplication: nginx\nmetric: score\n"
      "budget:\n  iterations: 20\nsearch:\n  algorithm: random\n  seed: 31\n";
  SessionManagerOptions options;
  options.store_dir = FreshDir("wf_mgr_score_store");
  SessionManager manager(options);
  std::string id, error;
  ASSERT_TRUE(manager.Submit(yaml, true, &id, &error)) << error;
  ASSERT_TRUE(manager.WaitDone(id, 30000));

  std::string checkpoint_text;
  ASSERT_TRUE(manager.Result(id, &checkpoint_text, &error)) << error;
  JobParseResult job = ParseJobText(yaml);
  ConfigSpace space = BuildJobSpace(job.spec);
  CheckpointLoadResult daemon_history = LoadCheckpointText(space, checkpoint_text);
  ASSERT_TRUE(daemon_history.ok) << daemon_history.error;
  JobRunResult standalone = RunJobText(yaml);
  ASSERT_TRUE(standalone.ok) << standalone.error;
  ExpectSameTrials(standalone.session.history, daemon_history.history, "score mirror");

  // Status `best` reflects the final normalization too.
  SessionStatus status;
  ASSERT_TRUE(manager.Status(id, &status));
  double best = -1e300;
  for (const TrialRecord& trial : standalone.session.history) {
    if (trial.HasObjective()) {
      best = std::max(best, trial.objective);
    }
  }
  ASSERT_TRUE(status.has_best);
  EXPECT_EQ(status.best, best);

  // The store, too, holds final objectives (appended at run end).
  TrialStore::LoadResult stored =
      manager.store()->Load(TrialStoreKey(space, job.spec.app), space);
  ASSERT_TRUE(stored.ok) << stored.error;
  ASSERT_FALSE(stored.trials.empty());
  manager.Shutdown();
}

TEST(SessionManagerTest, WarmStartObservesPriorTrials) {
  std::string store_dir = FreshDir("wf_mgr_warm_store");
  SessionManagerOptions options;
  options.store_dir = store_dir;
  SessionManager manager(options);
  std::string first, warm, cold, error;
  ASSERT_TRUE(manager.Submit(JobYaml("warm-a", "nginx", "random", 12, 10), true, &first,
                             &error))
      << error;
  ASSERT_TRUE(manager.WaitDone(first, 30000));
  size_t stored = manager.store()->Count(
      TrialStoreKey(BuildJobSpace(ParseJobText(JobYaml("warm-a", "nginx", "random", 12, 10)).spec),
                    AppId::kNginx));
  ASSERT_GT(stored, 0u);

  // Second submission against the same (space, app) key: warm-started.
  ASSERT_TRUE(manager.Submit(JobYaml("warm-b", "nginx", "deeptune", 6, 11), true, &warm,
                             &error))
      << error;
  SessionStatus status;
  ASSERT_TRUE(manager.Status(warm, &status));
  EXPECT_EQ(status.warm_started, stored);
  // Opting out works.
  ASSERT_TRUE(manager.Submit(JobYaml("warm-c", "nginx", "deeptune", 6, 11), false, &cold,
                             &error))
      << error;
  ASSERT_TRUE(manager.Status(cold, &status));
  EXPECT_EQ(status.warm_started, 0u);
  ASSERT_TRUE(manager.WaitDone(warm, 60000));
  ASSERT_TRUE(manager.WaitDone(cold, 60000));
  manager.Shutdown();
}

// ---------------------------------------------------------------------------
// The acceptance end-to-end: wfd over the socket.

TEST(WfdEndToEnd, ThreeConcurrentAlgorithmsMatchStandaloneThenWarmStart) {
  std::string socket_path = TempPath("wf_service_e2e.sock");
  std::string store_dir = FreshDir("wf_service_e2e_store");
  WfdOptions options;
  options.socket_path = socket_path;
  options.poll_ms = 10;
  options.manager.store_dir = store_dir;
  options.manager.max_running = 4;
  WfdServer server(options);
  ASSERT_TRUE(server.Start()) << server.error();
  std::thread serve([&] { server.Serve(); });

  // Three different registry algorithms, three different (space, app) keys
  // (distinct apps), one with in-session parallelism — all submitted before
  // any completes, so they run concurrently on the shared pool.
  std::vector<std::string> yamls = {
      JobYaml("e2e-deeptune", "nginx", "deeptune", 16, 21),
      JobYaml("e2e-random", "redis", "random", 16, 22, /*parallel=*/2),
      JobYaml("e2e-genetic", "sqlite", "genetic", 16, 23),
  };
  std::vector<std::string> ids;
  for (const std::string& yaml : yamls) {
    ServiceCallResult submitted = SubmitJob(socket_path, yaml);
    ASSERT_TRUE(submitted.ok) << submitted.error;
    ids.push_back(submitted.response.id);
  }
  ServiceCallResult fleet = QueryStatus(socket_path);
  ASSERT_TRUE(fleet.ok) << fleet.error;
  ASSERT_EQ(fleet.response.sessions.size(), 3u);

  for (size_t i = 0; i < ids.size(); ++i) {
    ASSERT_TRUE(server.manager().WaitDone(ids[i], 120000)) << yamls[i];
    ServiceCallResult status = QueryStatus(socket_path, ids[i]);
    ASSERT_TRUE(status.ok) << status.error;
    ASSERT_EQ(status.response.sessions.size(), 1u);
    EXPECT_EQ(status.response.sessions[0].state, "done");
    EXPECT_EQ(status.response.sessions[0].trials, 16u);
    EXPECT_EQ(status.response.sessions[0].warm_started, 0u);
  }

  // Bit-identity: each session's history, fetched over the socket, equals
  // the same job run standalone (RunJobText) with the same seeds.
  for (size_t i = 0; i < ids.size(); ++i) {
    ServiceCallResult result = FetchResult(socket_path, ids[i]);
    ASSERT_TRUE(result.ok) << result.error;
    JobParseResult job = ParseJobText(yamls[i]);
    ASSERT_TRUE(job.ok) << job.error;
    ConfigSpace space = BuildJobSpace(job.spec);
    CheckpointLoadResult daemon_history = LoadCheckpointText(space, result.payload);
    ASSERT_TRUE(daemon_history.ok) << daemon_history.error;

    JobRunResult standalone = RunJobText(yamls[i]);
    ASSERT_TRUE(standalone.ok) << standalone.error;
    ExpectSameTrials(standalone.session.history, daemon_history.history,
                     "daemon-vs-standalone " + yamls[i]);
  }

  // Second submission against the deeptune job's (space, app) key: its
  // searcher observes the full prior history from the TrialStore before
  // proposing, and the status reports it.
  std::unordered_set<uint64_t> distinct;
  {
    ServiceCallResult result = FetchResult(socket_path, ids[0]);
    ASSERT_TRUE(result.ok) << result.error;
    JobParseResult job = ParseJobText(yamls[0]);
    ConfigSpace space = BuildJobSpace(job.spec);
    CheckpointLoadResult history = LoadCheckpointText(space, result.payload);
    ASSERT_TRUE(history.ok);
    for (const TrialRecord& trial : history.history) {
      distinct.insert(trial.config.Hash());
    }
  }
  std::string warm_yaml = JobYaml("e2e-warm", "nginx", "deeptune", 6, 24);
  ServiceCallResult warm = SubmitJob(socket_path, warm_yaml);
  ASSERT_TRUE(warm.ok) << warm.error;
  ServiceCallResult warm_status = QueryStatus(socket_path, warm.response.id);
  ASSERT_TRUE(warm_status.ok) << warm_status.error;
  EXPECT_EQ(warm_status.response.sessions[0].warm_started, distinct.size());
  EXPECT_GT(warm_status.response.sessions[0].warm_started, 0u);
  ASSERT_TRUE(server.manager().WaitDone(warm.response.id, 120000));
  // The observed prior history shows in the trial log: a warm-started
  // DeepTune skips its random warmup and proposes from the pre-trained
  // model, so the trajectory diverges from the same job run cold.
  {
    ServiceCallResult result = FetchResult(socket_path, warm.response.id);
    ASSERT_TRUE(result.ok) << result.error;
    JobParseResult job = ParseJobText(warm_yaml);
    ConfigSpace space = BuildJobSpace(job.spec);
    CheckpointLoadResult warm_history = LoadCheckpointText(space, result.payload);
    ASSERT_TRUE(warm_history.ok) << warm_history.error;
    ASSERT_EQ(warm_history.history.size(), 6u);
    JobRunResult cold = RunJobText(warm_yaml);
    ASSERT_TRUE(cold.ok) << cold.error;
    bool diverged = false;
    for (size_t i = 0; i < 6; ++i) {
      diverged |= warm_history.history[i].config.Hash() !=
                  cold.session.history[i].config.Hash();
    }
    EXPECT_TRUE(diverged) << "warm start left no trace in the trial log";
  }

  ServiceCallResult stop = StopDaemon(socket_path);
  EXPECT_TRUE(stop.ok) << stop.error;
  serve.join();
}

// ---------------------------------------------------------------------------
// Server-pushed watch and the binary codec against a live daemon.

TEST(WfdEndToEnd, WatchStreamsPushesUntilDone) {
  std::string socket_path = TempPath("wf_service_watch.sock");
  WfdOptions options;
  options.socket_path = socket_path;
  options.poll_ms = 10;
  options.manager.store_dir = FreshDir("wf_service_watch_store");
  WfdServer server(options);
  ASSERT_TRUE(server.Start()) << server.error();
  std::thread serve([&] { server.Serve(); });

  ServiceCallResult submitted =
      SubmitJob(socket_path, JobYaml("watch-e2e", "nginx", "random", 200, 31));
  ASSERT_TRUE(submitted.ok) << submitted.error;
  const std::string id = submitted.response.id;

  ServiceConnection watcher;
  std::string error;
  ASSERT_TRUE(watcher.Connect(socket_path, /*binary=*/false, &error)) << error;
  SetRecvTimeout(watcher.fd(), 30000);
  ServiceRequest watch;
  watch.command = "watch";
  watch.id = id;
  ServiceCallResult ack = watcher.Call(watch);
  ASSERT_TRUE(ack.ok) << ack.error;
  EXPECT_EQ(ack.response.state, "watching");
  ASSERT_EQ(ack.response.sessions.size(), 1u);  // Baseline snapshot.
  EXPECT_EQ(ack.response.sessions[0].id, id);

  // Pushes arrive at wave boundaries: trials never go backwards and the
  // stream ends with the terminal state.
  size_t last_trials = ack.response.sessions[0].trials;
  std::string last_state = ack.response.sessions[0].state;
  size_t pushes = 0;
  while (last_state != "done" && last_state != "failed") {
    ServiceResponse push;
    ASSERT_TRUE(watcher.ReadResponse(&push, &error)) << error;
    ASSERT_TRUE(push.ok) << push.error;
    EXPECT_EQ(push.state, "push");
    ASSERT_EQ(push.sessions.size(), 1u);
    EXPECT_EQ(push.sessions[0].id, id);
    EXPECT_GE(push.sessions[0].trials, last_trials) << "trials went backwards";
    last_trials = push.sessions[0].trials;
    last_state = push.sessions[0].state;
    ++pushes;
    ASSERT_LT(pushes, 10000u) << "watch stream never reached a terminal state";
  }
  EXPECT_EQ(last_state, "done");
  EXPECT_EQ(last_trials, 200u);
  EXPECT_GE(pushes, 1u);

  ServiceCallResult stop = StopDaemon(socket_path);
  EXPECT_TRUE(stop.ok) << stop.error;
  serve.join();
}

TEST(WfdEndToEnd, BinaryAndYamlCodecsAgreeOnLiveSessions) {
  std::string socket_path = TempPath("wf_service_codec.sock");
  WfdOptions options;
  options.socket_path = socket_path;
  options.poll_ms = 10;
  options.manager.store_dir = FreshDir("wf_service_codec_store");
  WfdServer server(options);
  ASSERT_TRUE(server.Start()) << server.error();
  std::thread serve([&] { server.Serve(); });

  // Same job submitted once per codec (cold both times so the second does
  // not warm-start from the first): the daemon must produce bit-identical
  // sessions regardless of which codec carried the request.
  const std::string yaml = JobYaml("codec-e2e", "nginx", "random", 12, 32);
  ServiceRequest submit;
  submit.command = "submit";
  submit.warm_start = false;
  ServiceCallResult via_yaml = CallService(socket_path, submit, yaml, /*binary=*/false);
  ASSERT_TRUE(via_yaml.ok) << via_yaml.error;
  ServiceCallResult via_binary = CallService(socket_path, submit, yaml, /*binary=*/true);
  ASSERT_TRUE(via_binary.ok) << via_binary.error;
  ASSERT_TRUE(server.manager().WaitDone(via_yaml.response.id, 60000));
  ASSERT_TRUE(server.manager().WaitDone(via_binary.response.id, 60000));

  // Each session's status, fetched through BOTH codecs, decodes to the same
  // fields — the semantic-equivalence pin exercised end to end.
  for (const std::string& id : {via_yaml.response.id, via_binary.response.id}) {
    ServiceRequest status;
    status.command = "status";
    status.id = id;
    ServiceCallResult y = CallService(socket_path, status, "", /*binary=*/false);
    ServiceCallResult b = CallService(socket_path, status, "", /*binary=*/true);
    ASSERT_TRUE(y.ok) << y.error;
    ASSERT_TRUE(b.ok) << b.error;
    ASSERT_EQ(y.response.sessions.size(), 1u);
    ASSERT_EQ(b.response.sessions.size(), 1u);
    const SessionStatus& ys = y.response.sessions[0];
    const SessionStatus& bs = b.response.sessions[0];
    EXPECT_EQ(ys.id, bs.id);
    EXPECT_EQ(ys.name, bs.name);
    EXPECT_EQ(ys.state, bs.state);
    EXPECT_EQ(ys.trials, bs.trials);
    EXPECT_EQ(ys.iterations, bs.iterations);
    EXPECT_EQ(ys.has_best, bs.has_best);
    EXPECT_EQ(ys.best, bs.best);
    EXPECT_EQ(ys.sim_seconds, bs.sim_seconds);
    EXPECT_EQ(ys.store_key, bs.store_key);
  }

  // And the two sessions themselves are identical: same seed, same search,
  // codec choice left no trace in the trial history. (The checkpoints are
  // compared decoded, not byte-for-byte — they carry per-trial searcher
  // wall-clock seconds, which legitimately differ between runs.)
  ServiceCallResult r1 = FetchResult(socket_path, via_yaml.response.id);
  ServiceCallResult r2 = FetchResult(socket_path, via_binary.response.id);
  ASSERT_TRUE(r1.ok) << r1.error;
  ASSERT_TRUE(r2.ok) << r2.error;
  JobParseResult job = ParseJobText(yaml);
  ASSERT_TRUE(job.ok) << job.error;
  ConfigSpace space = BuildJobSpace(job.spec);
  CheckpointLoadResult h1 = LoadCheckpointText(space, r1.payload);
  CheckpointLoadResult h2 = LoadCheckpointText(space, r2.payload);
  ASSERT_TRUE(h1.ok) << h1.error;
  ASSERT_TRUE(h2.ok) << h2.error;
  ExpectSameTrials(h1.history, h2.history, "yaml-vs-binary submission");

  ServiceCallResult stop = StopDaemon(socket_path);
  EXPECT_TRUE(stop.ok) << stop.error;
  serve.join();
}

// The daemon caches the encoded fleet-status reply per codec and reuses it
// until the manager's status version moves (the dashboard fast path). Two
// held connections — one per codec — repeatedly ask for fleet status while
// the fleet changes underneath them: every reply must reflect the current
// fleet, and repeated identical asks (the cache-hit path) must agree with
// each other and across codecs.
TEST(WfdEndToEnd, FleetStatusStaysFreshAcrossCacheHits) {
  std::string socket_path = TempPath("wf_service_statuscache.sock");
  WfdOptions options;
  options.socket_path = socket_path;
  options.poll_ms = 10;
  WfdServer server(options);
  ASSERT_TRUE(server.Start()) << server.error();
  std::thread serve([&] { server.Serve(); });

  ServiceConnection yaml_conn;
  ServiceConnection binary_conn;
  std::string error;
  ASSERT_TRUE(yaml_conn.Connect(socket_path, /*binary=*/false, &error)) << error;
  ASSERT_TRUE(binary_conn.Connect(socket_path, /*binary=*/true, &error)) << error;
  ASSERT_TRUE(binary_conn.binary());
  SetRecvTimeout(yaml_conn.fd(), 30000);
  SetRecvTimeout(binary_conn.fd(), 30000);

  ServiceRequest fleet;
  fleet.command = "status";
  auto fleet_sizes = [&](size_t expect) {
    // Ask twice per codec so the second hit is served from the cache.
    for (int round = 0; round < 2; ++round) {
      for (ServiceConnection* conn : {&yaml_conn, &binary_conn}) {
        ServiceCallResult got = conn->Call(fleet);
        ASSERT_TRUE(got.ok) << got.error;
        ASSERT_EQ(got.response.sessions.size(), expect)
            << (conn->binary() ? "binary" : "yaml") << " round " << round;
      }
    }
  };

  fleet_sizes(0);  // Empty daemon: empty fleet, from both codecs, twice.
  ServiceCallResult first =
      SubmitJob(socket_path, JobYaml("cache-a", "nginx", "random", 6, 41));
  ASSERT_TRUE(first.ok) << first.error;
  fleet_sizes(1);  // Submission invalidated the cached empty reply.
  ServiceCallResult second =
      SubmitJob(socket_path, JobYaml("cache-b", "nginx", "random", 6, 42));
  ASSERT_TRUE(second.ok) << second.error;
  fleet_sizes(2);
  ASSERT_TRUE(server.manager().WaitDone(first.response.id, 60000));
  ASSERT_TRUE(server.manager().WaitDone(second.response.id, 60000));

  // Terminal states reached the cache too: both codecs report both sessions
  // done with their full trial counts, and agree field-for-field.
  ServiceCallResult y = yaml_conn.Call(fleet);
  ServiceCallResult b = binary_conn.Call(fleet);
  ASSERT_TRUE(y.ok) << y.error;
  ASSERT_TRUE(b.ok) << b.error;
  ASSERT_EQ(y.response.sessions.size(), 2u);
  ASSERT_EQ(b.response.sessions.size(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(y.response.sessions[i].state, "done");
    EXPECT_EQ(y.response.sessions[i].trials, 6u);
    EXPECT_EQ(y.response.sessions[i].id, b.response.sessions[i].id);
    EXPECT_EQ(y.response.sessions[i].state, b.response.sessions[i].state);
    EXPECT_EQ(y.response.sessions[i].trials, b.response.sessions[i].trials);
    EXPECT_EQ(y.response.sessions[i].best, b.response.sessions[i].best);
  }

  ServiceCallResult stop = StopDaemon(socket_path);
  EXPECT_TRUE(stop.ok) << stop.error;
  serve.join();
}

// ---------------------------------------------------------------------------
// TrialStore compaction.

TEST(TrialStoreTest, CompactionDropsSupersededAndSurvivesReopen) {
  std::string dir = FreshDir("wf_trialstore_compact");
  ConfigSpace space = BuildLinuxSearchSpace();
  std::vector<TrialRecord> history = RunSome(space, 6, 0xc0);
  std::string key = TrialStoreKey(space, AppId::kNginx);
  {
    TrialStore store(dir);
    for (const TrialRecord& trial : history) {
      store.Append(key, trial);
    }
  }  // FsyncClose.

  // Simulate a merged/concatenated store: duplicate every record by
  // appending the file's record lines (everything after the two header
  // lines) to itself. Single-daemon appends dedup at write time, so this
  // is the only way duplicates arise in practice.
  std::filesystem::path file;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".wftrials") {
      file = entry.path();
    }
  }
  ASSERT_FALSE(file.empty());
  std::string records;
  {
    std::ifstream in(file, std::ios::binary);
    std::string line;
    ASSERT_TRUE(std::getline(in, line));  // wayfinder-trials v1
    ASSERT_TRUE(std::getline(in, line));  // params N
    while (std::getline(in, line)) {
      records += line + "\n";
    }
  }
  {
    std::ofstream out(file, std::ios::binary | std::ios::app);
    out << records;
  }

  TrialStore store(dir);
  EXPECT_EQ(store.Count(key), history.size());  // Distinct configs only.
  TrialStore::CompactStats stats = store.CompactAll();
  ASSERT_TRUE(stats.ok) << stats.error;
  EXPECT_EQ(stats.files, 1u);
  EXPECT_EQ(stats.kept, history.size());
  EXPECT_EQ(stats.dropped, history.size());

  // The compacted file reloads to exactly the original history, order
  // preserved...
  TrialStore::LoadResult loaded = store.Load(key, space);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  ExpectSameTrials(history, loaded.trials, "after compaction");

  // ...and the store still accepts appends (handles reopened lazily after
  // the atomic-rename swap).
  std::vector<TrialRecord> more = RunSome(space, 10, 0xc1);
  size_t appended = 0;
  for (const TrialRecord& trial : more) {
    appended += store.Append(key, trial) ? 1 : 0;
  }
  store.Flush();
  loaded = store.Load(key, space);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.trials.size(), history.size() + appended);

  // Compacting an already-compact store is a no-op.
  stats = store.CompactAll();
  ASSERT_TRUE(stats.ok) << stats.error;
  EXPECT_EQ(stats.dropped, 0u);
}

// ---------------------------------------------------------------------------
// Observability plane: metrics/trace over the socket, codec parity, and the
// metrics-on-equals-metrics-off determinism pin.

// Restores the default-off recording state on scope exit so a metrics-on
// daemon test can never leak an enabled registry into later tests (the
// WfdServer enable is global and deliberately one-way).
struct ScopedRecordingOff {
  ~ScopedRecordingOff() { obs::SetEnabled(false); }
};

// Normalizes the one wall-clock field in a v2 checkpoint text — each trial
// line's trailing searcher_seconds (field 11; an optional failure reason
// follows it) — so two runs compare byte-for-byte on everything the
// determinism contract actually covers.
std::string StripWallClock(const std::string& checkpoint) {
  std::istringstream in(checkpoint);
  std::string out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("trial ", 0) == 0) {
      size_t pos = 0;
      int spaces = 0;
      while (pos < line.size() && spaces < 11) {
        if (line[pos] == ' ') {
          ++spaces;
        }
        ++pos;
      }
      size_t end = line.find(' ', pos);
      if (spaces == 11) {
        line = line.substr(0, pos) + "0" +
               (end == std::string::npos ? "" : line.substr(end));
      }
    }
    out += line + "\n";
  }
  return out;
}

TEST(WfdObservability, MetricsAndTracePayloadsAgreeAcrossCodecs) {
  std::string socket_path = TempPath("wf_service_obs_parity.sock");
  WfdOptions options;
  options.socket_path = socket_path;
  options.poll_ms = 10;
  WfdServer server(options);  // No --metrics: the registry is frozen.
  ASSERT_TRUE(server.Start()) << server.error();
  std::thread serve([&] { server.Serve(); });

  ServiceCallResult submitted =
      SubmitJob(socket_path, JobYaml("obs-parity", "nginx", "random", 8, 41));
  ASSERT_TRUE(submitted.ok) << submitted.error;
  std::string id = submitted.response.id;
  ASSERT_TRUE(server.manager().WaitDone(id, 120000));

  // With recording off every instrument is frozen, so the metrics payload
  // is stable across calls — and must be byte-identical across codecs (the
  // daemon renders one text and ships it as a payload frame either way).
  ServiceRequest metrics;
  metrics.command = "metrics";
  ServiceCallResult yaml_metrics = CallService(socket_path, metrics, "", false);
  ServiceCallResult bin_metrics = CallService(socket_path, metrics, "", true);
  ASSERT_TRUE(yaml_metrics.ok) << yaml_metrics.error;
  ASSERT_TRUE(bin_metrics.ok) << bin_metrics.error;
  EXPECT_EQ(yaml_metrics.payload, bin_metrics.payload);
  EXPECT_EQ(yaml_metrics.payload.rfind("# wayfinder metrics v1\nrecording 0\n", 0),
            0u);
  // Recording off also means the health gauge still tells the truth: this
  // daemon runs without a journal, which is healthy (nothing to degrade).
  EXPECT_NE(yaml_metrics.payload.find("gauge service.journal_degraded 0"),
            std::string::npos);

  // Trace parity: the done session's ring is frozen (and empty — recording
  // was off), so both codecs return the same bytes, and the export is
  // valid Chrome trace JSON even with zero events.
  ServiceRequest trace;
  trace.command = "trace";
  trace.id = id;
  ServiceCallResult yaml_trace = CallService(socket_path, trace, "", false);
  ServiceCallResult bin_trace = CallService(socket_path, trace, "", true);
  ASSERT_TRUE(yaml_trace.ok) << yaml_trace.error;
  ASSERT_TRUE(bin_trace.ok) << bin_trace.error;
  EXPECT_EQ(yaml_trace.payload, bin_trace.payload);
  std::string error;
  EXPECT_TRUE(obs::ValidateChromeTraceJson(yaml_trace.payload, &error)) << error;

  // Unknown-session trace errors identically under both codecs.
  trace.id = "s999";
  ServiceCallResult yaml_bad = CallService(socket_path, trace, "", false);
  ServiceCallResult bin_bad = CallService(socket_path, trace, "", true);
  EXPECT_FALSE(yaml_bad.ok);
  EXPECT_FALSE(bin_bad.ok);
  EXPECT_EQ(yaml_bad.error, bin_bad.error);

  ServiceCallResult stop = StopDaemon(socket_path);
  EXPECT_TRUE(stop.ok) << stop.error;
  serve.join();
}

TEST(WfdObservability, RecordingDaemonServesLiveMetricsAndTraces) {
  ScopedRecordingOff restore;
  std::string socket_path = TempPath("wf_service_obs_live.sock");
  WfdOptions options;
  options.socket_path = socket_path;
  options.poll_ms = 10;
  options.metrics = true;  // `wfd --metrics`.
  WfdServer server(options);
  ASSERT_TRUE(server.Start()) << server.error();
  std::thread serve([&] { server.Serve(); });

  ServiceCallResult submitted =
      SubmitJob(socket_path, JobYaml("obs-live", "nginx", "deeptune", 12, 42));
  ASSERT_TRUE(submitted.ok) << submitted.error;
  std::string id = submitted.response.id;
  ASSERT_TRUE(server.manager().WaitDone(id, 120000));

  ServiceRequest metrics;
  metrics.command = "metrics";
  ServiceCallResult call = CallService(socket_path, metrics);
  ASSERT_TRUE(call.ok) << call.error;
  const std::string& text = call.payload;
  EXPECT_EQ(text.rfind("# wayfinder metrics v1\nrecording 1\n", 0), 0u);
  // The session plane counted its work...
  EXPECT_NE(text.find("counter service.trials 12"), std::string::npos) << text;
  EXPECT_NE(text.find("histogram service.wave_ns count="), std::string::npos);
  // ...and so did the transport underneath this very conversation.
  EXPECT_NE(text.find("counter transport.frames_rx "), std::string::npos);

  // The per-session gauges folded into SessionStatus at wave boundaries.
  ServiceCallResult status = QueryStatus(socket_path, id);
  ASSERT_TRUE(status.ok) << status.error;
  ASSERT_EQ(status.response.sessions.size(), 1u);
  EXPECT_GT(status.response.sessions[0].memory_bytes, 0u);
  EXPECT_GT(status.response.sessions[0].wave_p99_ms,
            status.response.sessions[0].wave_p50_ms * 0.999);

  // The trace ring saw the whole trial lifecycle and exports valid Chrome
  // trace JSON with the stage names in place.
  ServiceRequest trace;
  trace.command = "trace";
  trace.id = id;
  ServiceCallResult traced = CallService(socket_path, trace);
  ASSERT_TRUE(traced.ok) << traced.error;
  std::string error;
  EXPECT_TRUE(obs::ValidateChromeTraceJson(traced.payload, &error)) << error;
  EXPECT_NE(traced.payload.find("\"propose\""), std::string::npos);
  EXPECT_NE(traced.payload.find("\"evaluate\""), std::string::npos);
  EXPECT_NE(traced.payload.find("\"commit\""), std::string::npos);
  EXPECT_NE(traced.payload.find("\"store_append\""), std::string::npos);

  ServiceCallResult stop = StopDaemon(socket_path);
  EXPECT_TRUE(stop.ok) << stop.error;
  serve.join();
}

// The acceptance pin: a metrics-on daemon commits byte-identical histories
// and checkpoints to a metrics-off daemon for the same jobs. Recording must
// observe, never perturb.
TEST(WfdObservability, MetricsOnIsBitIdenticalToMetricsOff) {
  ScopedRecordingOff restore;
  std::vector<std::string> yamls = {
      JobYaml("obs-det-deeptune", "nginx", "deeptune", 40, 51),
      JobYaml("obs-det-random", "redis", "random", 40, 52, /*parallel=*/2),
  };

  auto run_fleet = [&](const char* tag, bool metrics_on) {
    std::string socket_path = TempPath((std::string("wf_obs_det_") + tag + ".sock").c_str());
    WfdOptions options;
    options.socket_path = socket_path;
    options.poll_ms = 10;
    options.manager.store_dir =
        FreshDir((std::string("wf_obs_det_store_") + tag).c_str());
    options.metrics = metrics_on;
    WfdServer server(options);
    EXPECT_TRUE(server.Start()) << server.error();
    std::thread serve([&] { server.Serve(); });
    std::vector<std::string> payloads;
    for (const std::string& yaml : yamls) {
      ServiceCallResult submitted = SubmitJob(socket_path, yaml);
      EXPECT_TRUE(submitted.ok) << submitted.error;
      EXPECT_TRUE(server.manager().WaitDone(submitted.response.id, 120000));
      ServiceCallResult result = FetchResult(socket_path, submitted.response.id);
      EXPECT_TRUE(result.ok) << result.error;
      payloads.push_back(result.payload);
    }
    ServiceCallResult stop = StopDaemon(socket_path);
    EXPECT_TRUE(stop.ok) << stop.error;
    serve.join();
    return payloads;
  };

  std::vector<std::string> off = run_fleet("off", false);
  obs::SetEnabled(false);  // The metrics-on fleet must enable it itself.
  std::vector<std::string> on = run_fleet("on", true);
  ASSERT_EQ(off.size(), on.size());
  for (size_t i = 0; i < off.size(); ++i) {
    // Byte-for-byte on the checkpoint text, with only the wall-clock
    // searcher_seconds field masked (it is nondeterministic in both runs).
    EXPECT_EQ(StripWallClock(off[i]), StripWallClock(on[i])) << yamls[i];
  }
}

}  // namespace
}  // namespace wayfinder
