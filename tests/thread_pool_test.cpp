// Tests for the shared thread pool: ParallelFor correctness and chunking,
// exception propagation, shutdown, and bit-determinism of threaded kernels.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "src/nn/matrix.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace wayfinder {
namespace {

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(hits.size(), /*grain=*/1, /*max_ways=*/4, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) {
      hits[i].fetch_add(1);
    }
  });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, ZeroWorkerPoolRunsInline) {
  ThreadPool pool(0);
  size_t covered = 0;
  pool.ParallelFor(17, 1, 8, [&](size_t b, size_t e) { covered += e - b; });
  EXPECT_EQ(covered, 17u);
}

TEST(ThreadPoolTest, EmptyRangeIsANoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, 1, 4, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, GrainBoundsChunkCount) {
  ThreadPool pool(3);
  std::atomic<int> chunks{0};
  // 10 items with grain 8 can support at most 2 chunks.
  pool.ParallelFor(10, /*grain=*/8, /*max_ways=*/4, [&](size_t, size_t) {
    chunks.fetch_add(1);
  });
  EXPECT_LE(chunks.load(), 2);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.ParallelFor(100, 1, 3,
                       [&](size_t b, size_t) {
                         if (b > 0) {
                           throw std::runtime_error("worker chunk failed");
                         }
                       }),
      std::runtime_error);
  // The pool must survive a throwing round and keep serving work.
  size_t covered = 0;
  pool.ParallelFor(5, 1, 1, [&](size_t b, size_t e) { covered += e - b; });
  EXPECT_EQ(covered, 5u);
}

TEST(ThreadPoolTest, CallerChunkExceptionPropagatesToo) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelFor(100, 1, 3,
                                [&](size_t b, size_t) {
                                  if (b == 0) {  // Chunk 0 runs on the caller.
                                    throw std::runtime_error("caller chunk failed");
                                  }
                                }),
               std::runtime_error);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedWork) {
  // Destroying a pool right after a round must join cleanly (no hang, no
  // leak under sanitizers).
  for (int round = 0; round < 10; ++round) {
    ThreadPool pool(4);
    std::atomic<size_t> sum{0};
    pool.ParallelFor(256, 1, 5, [&](size_t b, size_t e) {
      for (size_t i = b; i < e; ++i) {
        sum.fetch_add(i);
      }
    });
    EXPECT_EQ(sum.load(), 256u * 255u / 2u);
  }
}

TEST(ThreadPoolTest, FreeHelperSerialWhenPoolNull) {
  size_t covered = 0;
  ParallelFor(nullptr, 9, 2, 4, [&](size_t b, size_t e) { covered += e - b; });
  EXPECT_EQ(covered, 9u);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineInsteadOfDeadlocking) {
  // A ParallelFor issued from inside a pool worker must not block on the
  // queue it is draining. With one worker this deadlocked before the
  // reentrancy fix: the worker's nested round queued a chunk nobody was
  // left to run. Now nested rounds run inline on the worker.
  ThreadPool pool(1);
  std::vector<std::atomic<int>> hits(64 * 16);
  pool.ParallelFor(64, /*grain=*/1, /*max_ways=*/2, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) {
      pool.ParallelFor(16, /*grain=*/1, /*max_ways=*/2, [&](size_t nb, size_t ne) {
        for (size_t j = nb; j < ne; ++j) {
          hits[i * 16 + j].fetch_add(1);
        }
      });
    }
  });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, NestedParallelForPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.ParallelFor(8, 1, 3,
                       [&](size_t, size_t) {
                         pool.ParallelFor(4, 1, 2, [&](size_t nb, size_t) {
                           if (nb == 0) {
                             throw std::runtime_error("nested chunk failed");
                           }
                         });
                       }),
      std::runtime_error);
  // Still serviceable afterwards.
  size_t covered = 0;
  pool.ParallelFor(5, 1, 1, [&](size_t b, size_t e) { covered += e - b; });
  EXPECT_EQ(covered, 5u);
}

TEST(ThreadPoolTest, SharedPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::Shared(), &ThreadPool::Shared());
  EXPECT_GE(ThreadPool::Shared().thread_count(), 1u);
}

TEST(ThreadPoolTest, ThreadedMatMulBitIdenticalToSerial) {
  Rng rng(41);
  Matrix a(97, 53);
  Matrix b(53, 31);
  for (double& v : a.data()) {
    v = rng.Normal();
  }
  for (double& v : b.data()) {
    v = rng.Normal();
  }
  Matrix serial;
  MatMulInto(a, b, serial);
  ThreadPool pool(3);
  Matrix threaded;
  MatMulInto(a, b, threaded, Parallelism{&pool, 4});
  ASSERT_EQ(serial.size(), threaded.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    // Row partitioning leaves per-row arithmetic untouched: exact equality.
    EXPECT_EQ(serial.data()[i], threaded.data()[i]) << "element " << i;
  }
}

}  // namespace
}  // namespace wayfinder
