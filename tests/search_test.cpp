// Tests for the src/search searchers: simulated annealing, genetic,
// hill climbing, and the SMAC-style forest surrogate. Unit tests cover each
// algorithm's internal mechanics; the parameterized suite at the bottom
// checks the Searcher-contract properties every implementation must hold.
#include <algorithm>
#include <cmath>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "src/configspace/linux_space.h"
#include "src/configspace/unikraft_space.h"
#include "src/core/wayfinder_api.h"
#include "src/forest/random_forest.h"
#include "src/platform/session.h"
#include "src/search/annealing_search.h"
#include "src/search/genetic_search.h"
#include "src/search/hill_climb.h"
#include "src/search/smac_search.h"
#include "src/simos/testbench.h"

namespace wayfinder {
namespace {

// A small space keeps the unit tests fast and the assertions sharp.
ConfigSpace SmallSpace() { return BuildUnikraftSpace(); }

SearchContext MakeContext(const ConfigSpace& space, const std::vector<TrialRecord>& history,
                          Rng& rng) {
  SearchContext context;
  context.space = &space;
  context.history = &history;
  context.rng = &rng;
  return context;
}

TrialRecord MakeTrial(const Configuration& config, double objective, bool crashed) {
  TrialRecord trial;
  trial.config = config;
  trial.outcome.status =
      crashed ? TrialOutcome::Status::kRunCrashed : TrialOutcome::Status::kOk;
  trial.objective = crashed ? std::nan("") : objective;
  return trial;
}

// ---------------------------------------------------------------------------
// Simulated annealing.

TEST(AnnealingTest, FirstProposalIsRandomAndValid) {
  ConfigSpace space = SmallSpace();
  AnnealingSearcher searcher;
  std::vector<TrialRecord> history;
  Rng rng(1);
  SearchContext context = MakeContext(space, history, rng);
  Configuration proposal = searcher.Propose(context);
  EXPECT_TRUE(space.IsValid(proposal));
}

TEST(AnnealingTest, TemperatureCoolsMonotonicallyUntilFloor) {
  ConfigSpace space = SmallSpace();
  AnnealingOptions options;
  options.cooling_rate = 0.5;
  options.min_temperature = 0.1;
  AnnealingSearcher searcher(options);
  std::vector<TrialRecord> history;
  Rng rng(2);
  SearchContext context = MakeContext(space, history, rng);

  double previous = searcher.temperature();
  for (int i = 0; i < 10; ++i) {
    searcher.Observe(MakeTrial(space.DefaultConfiguration(), 100.0 + i, false), context);
    EXPECT_LE(searcher.temperature(), previous);
    previous = searcher.temperature();
  }
  EXPECT_DOUBLE_EQ(searcher.temperature(), options.min_temperature);
}

TEST(AnnealingTest, ImprovementIsAlwaysAccepted) {
  ConfigSpace space = SmallSpace();
  AnnealingSearcher searcher;
  std::vector<TrialRecord> history;
  Rng rng(3);
  SearchContext context = MakeContext(space, history, rng);

  Configuration a = space.DefaultConfiguration();
  searcher.Observe(MakeTrial(a, 10.0, false), context);
  Configuration b = space.RandomConfiguration(rng);
  searcher.Observe(MakeTrial(b, 20.0, false), context);
  // The incumbent moved to b: proposals are now neighbors of b, and with the
  // temperature still warm a large improvement can only have been accepted.
  EXPECT_EQ(searcher.reheats(), 0u);
}

TEST(AnnealingTest, ReheatsAfterSustainedRejection) {
  ConfigSpace space = SmallSpace();
  AnnealingOptions options;
  options.reheat_after = 5;
  options.cooling_rate = 0.5;
  options.min_temperature = 1e-6;  // Cold fast => rejections certain.
  AnnealingSearcher searcher(options);
  std::vector<TrialRecord> history;
  Rng rng(4);
  SearchContext context = MakeContext(space, history, rng);

  searcher.Observe(MakeTrial(space.DefaultConfiguration(), 1000.0, false), context);
  // Stream of much-worse results: all rejected once cold.
  for (int i = 0; i < 40; ++i) {
    searcher.Observe(MakeTrial(space.RandomConfiguration(rng), 1.0, false), context);
  }
  EXPECT_GE(searcher.reheats(), 1u);
}

TEST(AnnealingTest, CrashesAreNeverAccepted) {
  ConfigSpace space = SmallSpace();
  AnnealingSearcher searcher;
  std::vector<TrialRecord> history;
  Rng rng(5);
  SearchContext context = MakeContext(space, history, rng);

  searcher.Observe(MakeTrial(space.DefaultConfiguration(), 50.0, false), context);
  size_t memory_before = searcher.MemoryBytes();
  for (int i = 0; i < 10; ++i) {
    searcher.Observe(MakeTrial(space.RandomConfiguration(rng), 0.0, true), context);
  }
  // Crashes update no incumbent state (memory footprint is flat).
  EXPECT_EQ(searcher.MemoryBytes(), memory_before);
}

// ---------------------------------------------------------------------------
// Genetic algorithm.

TEST(GeneticTest, PoolIsBoundedAndSorted) {
  ConfigSpace space = SmallSpace();
  GeneticOptions options;
  options.population = 8;
  GeneticSearcher searcher(options);
  std::vector<TrialRecord> history;
  Rng rng(6);
  SearchContext context = MakeContext(space, history, rng);

  for (int i = 0; i < 30; ++i) {
    Configuration config = space.RandomConfiguration(rng);
    searcher.Observe(MakeTrial(config, static_cast<double>(i), false), context);
  }
  EXPECT_EQ(searcher.PoolSize(), options.population);
  // Truncation is elitist: the best fitness seen (29) must have survived.
  EXPECT_DOUBLE_EQ(searcher.BestFitness(), 29.0);
}

TEST(GeneticTest, CrashesRankBelowEverySuccess) {
  ConfigSpace space = SmallSpace();
  GeneticOptions options;
  options.population = 4;
  GeneticSearcher searcher(options);
  std::vector<TrialRecord> history;
  Rng rng(7);
  SearchContext context = MakeContext(space, history, rng);

  searcher.Observe(MakeTrial(space.RandomConfiguration(rng), 0.0, true), context);
  searcher.Observe(MakeTrial(space.RandomConfiguration(rng), 0.0, true), context);
  searcher.Observe(MakeTrial(space.RandomConfiguration(rng), 1.0, false), context);
  EXPECT_DOUBLE_EQ(searcher.BestFitness(), 1.0);

  // Filling the pool with successes evicts the crashes entirely.
  for (int i = 0; i < 4; ++i) {
    searcher.Observe(MakeTrial(space.RandomConfiguration(rng), 2.0 + i, false), context);
  }
  EXPECT_EQ(searcher.PoolSize(), options.population);
  EXPECT_DOUBLE_EQ(searcher.BestFitness(), 5.0);
}

TEST(GeneticTest, BestFitnessIsNanBeforeAnySuccess) {
  GeneticSearcher searcher;
  EXPECT_TRUE(std::isnan(searcher.BestFitness()));
}

TEST(GeneticTest, ChildrenAreValidAndRespectFrozenParams) {
  ConfigSpace space = SmallSpace();
  const std::string frozen_name = space.Param(0).name;
  int64_t frozen_value = space.Param(0).default_value;
  ASSERT_TRUE(space.Freeze(frozen_name, frozen_value));

  GeneticOptions options;
  options.population = 6;
  options.mutations_per_child = 4.0;
  GeneticSearcher searcher(options);
  std::vector<TrialRecord> history;
  Rng rng(8);
  SearchContext context = MakeContext(space, history, rng);

  for (int i = 0; i < 6; ++i) {
    searcher.Observe(MakeTrial(space.RandomConfiguration(rng), i, false), context);
  }
  for (int i = 0; i < 50; ++i) {
    Configuration child = searcher.Propose(context);
    ASSERT_TRUE(space.IsValid(child));
    EXPECT_EQ(child.Get(frozen_name), frozen_value);
  }
}

// ---------------------------------------------------------------------------
// Hill climbing.

TEST(HillClimbTest, MovesOnlyOnImprovement) {
  ConfigSpace space = SmallSpace();
  HillClimbSearcher searcher;
  std::vector<TrialRecord> history;
  Rng rng(9);
  SearchContext context = MakeContext(space, history, rng);

  Configuration first = space.DefaultConfiguration();
  searcher.Observe(MakeTrial(first, 10.0, false), context);
  // Worse observation: the next proposal still neighbors `first`.
  searcher.Observe(MakeTrial(space.RandomConfiguration(rng), 5.0, false), context);

  // A one-step neighbor differs from the incumbent in at most one position
  // (possibly more after constraint repair, but never in most positions).
  Configuration proposal = searcher.Propose(context);
  size_t differences = 0;
  for (size_t i = 0; i < proposal.Size(); ++i) {
    differences += proposal.Raw(i) != first.Raw(i) ? 1 : 0;
  }
  EXPECT_LE(differences, 3u);
}

TEST(HillClimbTest, RestartsAfterPatienceRunsOut) {
  ConfigSpace space = SmallSpace();
  HillClimbOptions options;
  options.patience = 4;
  HillClimbSearcher searcher(options);
  std::vector<TrialRecord> history;
  Rng rng(10);
  SearchContext context = MakeContext(space, history, rng);

  searcher.Observe(MakeTrial(space.DefaultConfiguration(), 100.0, false), context);
  for (int i = 0; i < 8; ++i) {
    searcher.Observe(MakeTrial(space.RandomConfiguration(rng), 1.0, false), context);
  }
  EXPECT_GE(searcher.restarts(), 1u);
}

TEST(HillClimbTest, CrashStreakCountsAsStagnation) {
  ConfigSpace space = SmallSpace();
  HillClimbOptions options;
  options.patience = 3;
  HillClimbSearcher searcher(options);
  std::vector<TrialRecord> history;
  Rng rng(11);
  SearchContext context = MakeContext(space, history, rng);

  for (int i = 0; i < 9; ++i) {
    searcher.Observe(MakeTrial(space.RandomConfiguration(rng), 0.0, true), context);
  }
  EXPECT_EQ(searcher.restarts(), 3u);
}

// ---------------------------------------------------------------------------
// SMAC (random-forest surrogate).

TEST(SmacTest, ExpectedImprovementViaForestVariance) {
  RandomForestRegressor::PredictionStats stats;
  // With zero variance, EI is the positive part of the improvement.
  // (Exercised through the searcher below; here we check the forest side.)
  RandomForestRegressor forest;
  EXPECT_FALSE(forest.IsFitted());
  stats = forest.PredictStats({0.5, 0.5});
  EXPECT_DOUBLE_EQ(stats.mean, 0.0);
  EXPECT_DOUBLE_EQ(stats.variance, 0.0);
}

TEST(SmacTest, ForestVarianceIsNonNegativeAndShrinksOnConstantTargets) {
  ForestOptions options;
  options.trees = 20;
  options.seed = 99;
  RandomForestRegressor forest(options);
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  Rng rng(12);
  for (int i = 0; i < 60; ++i) {
    xs.push_back({rng.Uniform(), rng.Uniform(), rng.Uniform()});
    ys.push_back(3.5);  // Constant target: every leaf must predict 3.5.
  }
  forest.Fit(xs, ys);
  auto stats = forest.PredictStats({0.5, 0.5, 0.5});
  EXPECT_NEAR(stats.mean, 3.5, 1e-9);
  EXPECT_NEAR(stats.variance, 0.0, 1e-9);
}

TEST(SmacTest, RefitsOnScheduleOnceWarm) {
  ConfigSpace space = SmallSpace();
  SmacOptions options;
  options.warmup = 4;
  options.refit_every = 2;
  SmacSearcher searcher(&space, options);
  std::vector<TrialRecord> history;
  Rng rng(13);
  SearchContext context = MakeContext(space, history, rng);

  for (int i = 0; i < 12; ++i) {
    searcher.Observe(MakeTrial(space.RandomConfiguration(rng), 10.0 + i, false), context);
  }
  EXPECT_GE(searcher.refits(), 3u);
  EXPECT_TRUE(searcher.surrogate().IsFitted());
}

TEST(SmacTest, NoRefitBeforeAnySuccess) {
  ConfigSpace space = SmallSpace();
  SmacOptions options;
  options.warmup = 2;
  options.refit_every = 1;
  SmacSearcher searcher(&space, options);
  std::vector<TrialRecord> history;
  Rng rng(14);
  SearchContext context = MakeContext(space, history, rng);

  for (int i = 0; i < 8; ++i) {
    searcher.Observe(MakeTrial(space.RandomConfiguration(rng), 0.0, true), context);
  }
  EXPECT_EQ(searcher.refits(), 0u);
  // All-crash history: proposals fall back to random sampling but stay valid.
  Configuration proposal = searcher.Propose(context);
  EXPECT_TRUE(space.IsValid(proposal));
}

TEST(SmacTest, MemoryGrowsWithHistory) {
  ConfigSpace space = SmallSpace();
  SmacSearcher searcher(&space);
  std::vector<TrialRecord> history;
  Rng rng(15);
  SearchContext context = MakeContext(space, history, rng);

  size_t before = searcher.MemoryBytes();
  for (int i = 0; i < 20; ++i) {
    searcher.Observe(MakeTrial(space.RandomConfiguration(rng), i, false), context);
  }
  EXPECT_GT(searcher.MemoryBytes(), before);
}

// ---------------------------------------------------------------------------
// Searcher-contract properties, swept over every REGISTERED algorithm: the
// matrix is RegisteredSearcherNames() itself, so a searcher registered
// anywhere in the link (including out-of-tree) is held to the contract
// without editing this file.

class AllSearchersTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AllSearchersTest, FactoryConstructs) {
  ConfigSpace space = SmallSpace();
  auto searcher = MakeSearcher(GetParam(), &space, 21);
  ASSERT_NE(searcher, nullptr);
  EXPECT_EQ(searcher->Name(), GetParam());
}

TEST_P(AllSearchersTest, ProposalsAreAlwaysValidOverAFullSession) {
  ConfigSpace space = SmallSpace();
  auto searcher = MakeSearcher(GetParam(), &space, 22);
  ASSERT_NE(searcher, nullptr);

  Testbench bench(&space, AppId::kNginx,
                  TestbenchOptions{.substrate = Substrate::kUnikraftKvm, .seed = 77});
  SessionOptions options;
  options.max_iterations = 40;
  options.seed = 23;
  SearchSession session(&bench, searcher.get(), options);
  while (session.Step()) {
    const TrialRecord& last = session.history().back();
    ASSERT_TRUE(space.IsValid(last.config))
        << GetParam() << " proposed an invalid configuration at iteration "
        << last.iteration;
  }
  EXPECT_EQ(session.history().size(), 40u);
}

TEST_P(AllSearchersTest, FrozenParametersAreNeverMoved) {
  ConfigSpace space = SmallSpace();
  const std::string frozen_name = space.Param(1).name;
  const int64_t frozen_value = space.Param(1).default_value;
  ASSERT_TRUE(space.Freeze(frozen_name, frozen_value));

  auto searcher = MakeSearcher(GetParam(), &space, 24);
  ASSERT_NE(searcher, nullptr);
  Testbench bench(&space, AppId::kRedis,
                  TestbenchOptions{.substrate = Substrate::kUnikraftKvm, .seed = 78});
  SessionOptions options;
  options.max_iterations = 30;
  options.seed = 25;
  SessionResult result = RunSearch(&bench, searcher.get(), options);
  for (const TrialRecord& trial : result.history) {
    ASSERT_EQ(trial.config.Get(frozen_name), frozen_value) << GetParam();
  }
}

TEST_P(AllSearchersTest, FindsSomethingAtLeastAsGoodAsTheWorstSample) {
  ConfigSpace space = SmallSpace();
  auto searcher = MakeSearcher(GetParam(), &space, 26);
  ASSERT_NE(searcher, nullptr);
  Testbench bench(&space, AppId::kNginx,
                  TestbenchOptions{.substrate = Substrate::kUnikraftKvm, .seed = 79});
  SessionOptions options;
  options.max_iterations = 60;
  options.seed = 27;
  SessionResult result = RunSearch(&bench, searcher.get(), options);
  ASSERT_NE(result.best(), nullptr) << GetParam();
  for (const TrialRecord& trial : result.history) {
    if (trial.HasObjective()) {
      EXPECT_GE(result.best()->objective, trial.objective) << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Registry, AllSearchersTest,
                         // Evaluated lazily at test registration, i.e. after
                         // every static-init searcher registration has run.
                         ::testing::ValuesIn(RegisteredSearcherNames()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

}  // namespace
}  // namespace wayfinder
