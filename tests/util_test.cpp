// Unit and property tests for src/util: RNG, statistics, tables, clock.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "src/util/rng.h"
#include "src/util/sim_clock.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace wayfinder {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += (a.Next() == b.Next()) ? 1 : 0;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(3);
  EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.Add(rng.Normal());
  }
  EXPECT_NEAR(stats.Mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.StdDev(), 1.0, 0.02);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / 20000.0, 0.3, 0.02);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(19);
  std::vector<double> weights = {1.0, 3.0, 0.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 20000; ++i) {
    ++counts[rng.WeightedIndex(weights)];
  }
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(static_cast<double>(counts[1]) / 20000.0, 0.75, 0.02);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(31);
  Rng child = a.Fork();
  // The child stream should not replay the parent's outputs.
  Rng b(31);
  b.Fork();
  EXPECT_NE(child.Next(), a.Next());
}

TEST(Hashing, StableHashIsStable) {
  EXPECT_EQ(StableHash("net.core.somaxconn"), StableHash("net.core.somaxconn"));
  EXPECT_NE(StableHash("a"), StableHash("b"));
}

TEST(Hashing, HashCombineOrderSensitive) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

TEST(RunningStats, MatchesBatchComputation) {
  RunningStats stats;
  std::vector<double> values = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (double v : values) {
    stats.Add(v);
  }
  EXPECT_DOUBLE_EQ(stats.Mean(), 5.0);
  EXPECT_NEAR(stats.StdDev(), StdDev(values), 1e-12);
  EXPECT_DOUBLE_EQ(stats.Min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.Max(), 9.0);
}

TEST(Stats, QuantileInterpolates) {
  std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 0.5), 2.5);
}

TEST(Stats, PearsonCorrelationKnownCases) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  std::vector<double> z = {10, 8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(x, z), -1.0, 1e-12);
  std::vector<double> c = {3, 3, 3, 3, 3};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(x, c), 0.0);
}

TEST(Stats, MinMaxNormalizeRangeAndConstants) {
  std::vector<double> v = {10.0, 20.0, 15.0};
  std::vector<double> n = MinMaxNormalize(v);
  EXPECT_DOUBLE_EQ(n[0], 0.0);
  EXPECT_DOUBLE_EQ(n[1], 1.0);
  EXPECT_DOUBLE_EQ(n[2], 0.5);
  std::vector<double> constant = {5.0, 5.0};
  for (double c : MinMaxNormalize(constant)) {
    EXPECT_DOUBLE_EQ(c, 0.5);
  }
}

TEST(Stats, ZScoreNormalizerRoundTrip) {
  std::vector<std::vector<double>> rows = {{1.0, 10.0}, {3.0, 30.0}, {5.0, 50.0}};
  ZScoreNormalizer norm;
  norm.Fit(rows);
  std::vector<double> t = norm.Transform({3.0, 30.0});
  EXPECT_NEAR(t[0], 0.0, 1e-12);
  EXPECT_NEAR(t[1], 0.0, 1e-12);
}

TEST(Stats, SmoothSeriesWindowMean) {
  std::vector<double> v = {1, 2, 3, 4, 5};
  std::vector<double> s = SmoothSeries(v, 2);
  EXPECT_DOUBLE_EQ(s[0], 1.0);
  EXPECT_DOUBLE_EQ(s[1], 1.5);
  EXPECT_DOUBLE_EQ(s[4], 4.5);
}

TEST(Stats, RunningBestMonotone) {
  std::vector<double> v = {3, 1, 4, 1, 5};
  std::vector<double> best = RunningBest(v, true);
  EXPECT_EQ(best, (std::vector<double>{3, 3, 4, 4, 5}));
  std::vector<double> worst = RunningBest(v, false);
  EXPECT_EQ(worst, (std::vector<double>{3, 1, 1, 1, 1}));
}

TEST(Stats, ArgBest) {
  std::vector<double> v = {3, 9, 4};
  EXPECT_EQ(ArgBest(v, true), 1u);
  EXPECT_EQ(ArgBest(v, false), 0u);
}

TEST(SimClock, AdvancesAndIgnoresNegative) {
  SimClock clock;
  EXPECT_DOUBLE_EQ(clock.Now(), 0.0);
  clock.Advance(5.5);
  clock.Advance(-2.0);
  EXPECT_DOUBLE_EQ(clock.Now(), 5.5);
  clock.Reset();
  EXPECT_DOUBLE_EQ(clock.Now(), 0.0);
}

TEST(WallTimerTest, MeasuresElapsed) {
  WallTimer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) {
    sink += std::sqrt(static_cast<double>(i));
  }
  EXPECT_GT(timer.ElapsedSeconds(), 0.0);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"longer-name", "2"});
  std::ostringstream oss;
  table.Print(oss);
  std::string text = oss.str();
  EXPECT_NE(text.find("longer-name"), std::string::npos);
  EXPECT_NE(text.find("value"), std::string::npos);
  EXPECT_EQ(table.RowCount(), 2u);
}

TEST(TablePrinterTest, NumFormatsPrecision) {
  EXPECT_EQ(TablePrinter::Num(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::Num(2.0, 0), "2");
}

// Property sweep: Uniform(lo, hi) stays in range for many (lo, hi) pairs.
class UniformRangeTest : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(UniformRangeTest, StaysWithin) {
  auto [lo, hi] = GetParam();
  Rng rng(StableHash("range") ^ static_cast<uint64_t>(lo * 1000.0));
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(lo, hi);
    ASSERT_GE(v, lo);
    ASSERT_LT(v, hi);
  }
}

INSTANTIATE_TEST_SUITE_P(Ranges, UniformRangeTest,
                         ::testing::Values(std::make_pair(0.0, 1.0), std::make_pair(-5.0, 5.0),
                                           std::make_pair(1e-6, 2e-6),
                                           std::make_pair(-1e9, 1e9)));

TEST(MeanCiTest, EmptyAndSingleSampleHaveZeroWidth) {
  MeanCi empty = MeanConfidenceInterval({});
  EXPECT_DOUBLE_EQ(empty.mean, 0.0);
  EXPECT_DOUBLE_EQ(empty.half_width, 0.0);

  MeanCi single = MeanConfidenceInterval({42.0});
  EXPECT_DOUBLE_EQ(single.mean, 42.0);
  EXPECT_DOUBLE_EQ(single.half_width, 0.0);
  EXPECT_DOUBLE_EQ(single.lo(), 42.0);
  EXPECT_DOUBLE_EQ(single.hi(), 42.0);
}

TEST(MeanCiTest, KnownValues) {
  // Values 1..5: mean 3, sample std sqrt(2.5), n=5.
  MeanCi ci = MeanConfidenceInterval({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(ci.mean, 3.0);
  EXPECT_NEAR(ci.half_width, 1.96 * std::sqrt(2.5) / std::sqrt(5.0), 1e-12);
  EXPECT_LT(ci.lo(), ci.mean);
  EXPECT_GT(ci.hi(), ci.mean);
}

TEST(MeanCiTest, WidthShrinksWithSampleCount) {
  Rng rng(401);
  std::vector<double> small;
  std::vector<double> large;
  for (int i = 0; i < 400; ++i) {
    double v = rng.Normal(10.0, 2.0);
    if (i < 20) {
      small.push_back(v);
    }
    large.push_back(v);
  }
  EXPECT_LT(MeanConfidenceInterval(large).half_width,
            MeanConfidenceInterval(small).half_width);
}

TEST(MeanCiTest, CustomZScalesWidth) {
  std::vector<double> values = {1, 2, 3, 4, 5, 6};
  MeanCi narrow = MeanConfidenceInterval(values, 1.0);
  MeanCi wide = MeanConfidenceInterval(values, 2.58);
  EXPECT_NEAR(wide.half_width / narrow.half_width, 2.58, 1e-12);
}

}  // namespace
}  // namespace wayfinder
