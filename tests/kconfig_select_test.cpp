// Tests for Kconfig "select" and "if" block support: parsing, round-trip
// through WriteKconfig, and constraint propagation through
// ConfigSpace::ApplyConstraints (select raises its target and overrides the
// target's own dependencies, as in real Kconfig).
#include <gtest/gtest.h>

#include "src/configspace/config_space.h"
#include "src/configspace/kconfig.h"

namespace wayfinder {
namespace {

ConfigSpace SpaceFrom(const std::string& kconfig) {
  KconfigParseResult parsed = ParseKconfig(kconfig);
  EXPECT_TRUE(parsed.ok) << parsed.error << " at line " << parsed.error_line;
  ConfigSpace space;
  for (ParamSpec& spec : parsed.params) {
    space.Add(std::move(spec));
  }
  return space;
}

// ---------------------------------------------------------------------------
// Parsing.

TEST(KconfigSelectTest, SelectIsRecorded) {
  KconfigParseResult parsed = ParseKconfig(
      "config NET\n"
      "\tbool \"Networking\"\n"
      "\tselect NETDEVICES\n"
      "\tselect INET if IPV6\n");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  ASSERT_EQ(parsed.params.size(), 1u);
  ASSERT_EQ(parsed.params[0].selects.size(), 2u);
  EXPECT_EQ(parsed.params[0].selects[0], "NETDEVICES");
  // Conditional selects are recorded unconditionally (conservative).
  EXPECT_EQ(parsed.params[0].selects[1], "INET");
}

TEST(KconfigSelectTest, SelectWithoutSymbolIsAnError) {
  KconfigParseResult parsed = ParseKconfig(
      "config NET\n"
      "\tbool \"Networking\"\n"
      "\tselect\n");
  EXPECT_FALSE(parsed.ok);
  EXPECT_NE(parsed.error.find("select"), std::string::npos);
}

TEST(KconfigSelectTest, IfBlockAddsDependencies) {
  KconfigParseResult parsed = ParseKconfig(
      "config PCI\n"
      "\tbool \"PCI support\"\n"
      "if PCI\n"
      "config PCI_MSI\n"
      "\tbool \"MSI interrupts\"\n"
      "config PCIE_BUS\n"
      "\tbool \"PCIe bus\"\n"
      "endif\n"
      "config UNRELATED\n"
      "\tbool \"Outside the block\"\n");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  ASSERT_EQ(parsed.params.size(), 4u);
  ASSERT_EQ(parsed.params[1].depends_on.size(), 1u);
  EXPECT_EQ(parsed.params[1].depends_on[0], "PCI");
  ASSERT_EQ(parsed.params[2].depends_on.size(), 1u);
  EXPECT_EQ(parsed.params[2].depends_on[0], "PCI");
  EXPECT_TRUE(parsed.params[3].depends_on.empty());
}

TEST(KconfigSelectTest, NestedIfBlocksStackDependencies) {
  KconfigParseResult parsed = ParseKconfig(
      "if NET\n"
      "if INET\n"
      "config TCP_CONG_BBR\n"
      "\ttristate \"BBR\"\n"
      "endif\n"
      "endif\n");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  ASSERT_EQ(parsed.params.size(), 1u);
  ASSERT_EQ(parsed.params[0].depends_on.size(), 2u);
  EXPECT_EQ(parsed.params[0].depends_on[0], "NET");
  EXPECT_EQ(parsed.params[0].depends_on[1], "INET");
}

TEST(KconfigSelectTest, IfExpressionSymbolsAreAllConjuncts) {
  KconfigParseResult parsed = ParseKconfig(
      "if NET && (INET || IPV6)\n"
      "config DUMMY\n"
      "\tbool \"d\"\n"
      "endif\n");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  ASSERT_EQ(parsed.params[0].depends_on.size(), 3u);
}

TEST(KconfigSelectTest, UnterminatedIfIsAnError) {
  KconfigParseResult parsed = ParseKconfig(
      "if NET\n"
      "config FOO\n"
      "\tbool \"f\"\n");
  EXPECT_FALSE(parsed.ok);
  EXPECT_NE(parsed.error.find("if"), std::string::npos);
}

TEST(KconfigSelectTest, DanglingEndifIsAnError) {
  KconfigParseResult parsed = ParseKconfig("endif\n");
  EXPECT_FALSE(parsed.ok);
}

TEST(KconfigSelectTest, SelectRoundTripsThroughWriteKconfig) {
  const char* kconfig =
      "config CRYPTO_TLS\n"
      "\ttristate \"TLS\"\n"
      "\tselect CRYPTO_AES\n"
      "\tselect CRYPTO_SHA256\n";
  KconfigParseResult first = ParseKconfig(kconfig);
  ASSERT_TRUE(first.ok) << first.error;
  std::string rendered = WriteKconfig(first.params);
  KconfigParseResult second = ParseKconfig(rendered);
  ASSERT_TRUE(second.ok) << second.error;
  ASSERT_EQ(second.params.size(), 1u);
  EXPECT_EQ(second.params[0].selects, first.params[0].selects);
}

// ---------------------------------------------------------------------------
// Constraint propagation.

TEST(KconfigSelectTest, EnabledSelectorForcesTargetOn) {
  ConfigSpace space = SpaceFrom(
      "config A\n"
      "\tbool \"a\"\n"
      "\tselect B\n"
      "config B\n"
      "\tbool \"b\"\n");
  Configuration config = space.DefaultConfiguration();
  config.Set("A", 1);
  config.Set("B", 0);
  space.ApplyConstraints(&config);
  EXPECT_EQ(config.Get("B"), 1);
}

TEST(KconfigSelectTest, DisabledSelectorLeavesTargetAlone) {
  ConfigSpace space = SpaceFrom(
      "config A\n"
      "\tbool \"a\"\n"
      "\tselect B\n"
      "config B\n"
      "\tbool \"b\"\n");
  Configuration config = space.DefaultConfiguration();
  config.Set("A", 0);
  config.Set("B", 0);
  EXPECT_EQ(space.ApplyConstraints(&config), 0u);
  EXPECT_EQ(config.Get("B"), 0);
}

TEST(KconfigSelectTest, TristateSelectorRaisesTargetToItsLevel) {
  ConfigSpace space = SpaceFrom(
      "config MOD\n"
      "\ttristate \"m\"\n"
      "\tselect DEP\n"
      "config DEP\n"
      "\ttristate \"d\"\n");
  Configuration config = space.DefaultConfiguration();
  config.Set("MOD", 1);  // =m
  config.Set("DEP", 0);
  space.ApplyConstraints(&config);
  EXPECT_EQ(config.Get("DEP"), 1);  // Raised to m, not to y.

  config.Set("MOD", 2);  // =y
  space.ApplyConstraints(&config);
  EXPECT_EQ(config.Get("DEP"), 2);  // Raised further.
}

TEST(KconfigSelectTest, SelectDoesNotLowerAnAlreadyHigherTarget) {
  ConfigSpace space = SpaceFrom(
      "config MOD\n"
      "\ttristate \"m\"\n"
      "\tselect DEP\n"
      "config DEP\n"
      "\ttristate \"d\"\n");
  Configuration config = space.DefaultConfiguration();
  config.Set("MOD", 1);
  config.Set("DEP", 2);
  space.ApplyConstraints(&config);
  EXPECT_EQ(config.Get("DEP"), 2);
}

TEST(KconfigSelectTest, SelectOverridesTargetDependencies) {
  // B depends on GATE (off) but is selected by A: Kconfig semantics keep B
  // on anyway (the notorious select-vs-depends interaction).
  ConfigSpace space = SpaceFrom(
      "config GATE\n"
      "\tbool \"gate\"\n"
      "config A\n"
      "\tbool \"a\"\n"
      "\tselect B\n"
      "config B\n"
      "\tbool \"b\"\n"
      "\tdepends on GATE\n");
  Configuration config = space.DefaultConfiguration();
  config.Set("GATE", 0);
  config.Set("A", 1);
  config.Set("B", 0);
  space.ApplyConstraints(&config);
  EXPECT_EQ(config.Get("B"), 1);
}

TEST(KconfigSelectTest, SelectChainsPropagateTransitively) {
  ConfigSpace space = SpaceFrom(
      "config A\n"
      "\tbool \"a\"\n"
      "\tselect B\n"
      "config B\n"
      "\tbool \"b\"\n"
      "\tselect C\n"
      "config C\n"
      "\tbool \"c\"\n");
  Configuration config = space.DefaultConfiguration();
  config.Set("A", 1);
  config.Set("B", 0);
  config.Set("C", 0);
  space.ApplyConstraints(&config);
  EXPECT_EQ(config.Get("B"), 1);
  EXPECT_EQ(config.Get("C"), 1);
}

TEST(KconfigSelectTest, SelectOfNumericSymbolIsIgnored) {
  ConfigSpace space = SpaceFrom(
      "config A\n"
      "\tbool \"a\"\n"
      "\tselect SIZE\n"
      "config SIZE\n"
      "\tint \"size\"\n"
      "\trange 0 100\n"
      "\tdefault 10\n");
  Configuration config = space.DefaultConfiguration();
  config.Set("A", 1);
  config.Set("SIZE", 5);
  space.ApplyConstraints(&config);
  EXPECT_EQ(config.Get("SIZE"), 5);  // Untouched: Kconfig only selects bools.
}

TEST(KconfigSelectTest, IsValidSeesSelectViolations) {
  ConfigSpace space = SpaceFrom(
      "config A\n"
      "\tbool \"a\"\n"
      "\tselect B\n"
      "config B\n"
      "\tbool \"b\"\n");
  Configuration violating = space.DefaultConfiguration();
  violating.Set("A", 1);
  violating.Set("B", 0);
  EXPECT_FALSE(space.IsValid(violating));

  Configuration satisfied = violating;
  satisfied.Set("B", 1);
  EXPECT_TRUE(space.IsValid(satisfied));
}

TEST(KconfigSelectTest, RandomSamplesAlwaysSatisfySelectEdges) {
  ConfigSpace space = SpaceFrom(
      "config A\n"
      "\tbool \"a\"\n"
      "\tselect B\n"
      "config B\n"
      "\tbool \"b\"\n"
      "\tselect C\n"
      "config C\n"
      "\tbool \"c\"\n"
      "\tdepends on GATE\n"
      "config GATE\n"
      "\tbool \"gate\"\n");
  Rng rng(51);
  for (int i = 0; i < 200; ++i) {
    Configuration config = space.RandomConfiguration(rng);
    ASSERT_TRUE(space.IsValid(config)) << config.DiffString();
  }
}

}  // namespace
}  // namespace wayfinder
