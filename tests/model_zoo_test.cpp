// Tests for the transfer-learning model zoo (§3.3): fingerprints, publish /
// list / rank / adopt / remove, and the end-to-end donor-selection property
// that network-bound apps match each other and not the CPU-bound one
// (Figure 5's structure).
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "src/configspace/linux_space.h"
#include "src/core/model_zoo.h"
#include "src/forest/random_forest.h"

namespace wayfinder {
namespace {

namespace fs = std::filesystem;

class ModelZooFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() / "wf_zoo_test").string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  std::string dir_;
};

TEST_F(ModelZooFixture, CreatesItsDirectory) {
  ModelZoo zoo(dir_);
  EXPECT_TRUE(fs::exists(dir_));
  EXPECT_TRUE(zoo.List().empty());
}

TEST_F(ModelZooFixture, PublishListAdoptRoundTrip) {
  ConfigSpace space = BuildLinuxSearchSpace();
  ModelZoo zoo(dir_);
  DeepTuneSearcher donor(&space);
  std::vector<double> fingerprint(space.FeatureDimension(), 0.0);
  fingerprint[0] = 0.7;
  fingerprint[1] = 0.3;
  ASSERT_TRUE(zoo.Publish("redis", donor, fingerprint));

  std::vector<ZooEntry> entries = zoo.List();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].name, "redis");
  EXPECT_EQ(entries[0].input_dim, space.FeatureDimension());
  EXPECT_EQ(entries[0].fingerprint.size(), fingerprint.size());
  EXPECT_DOUBLE_EQ(entries[0].fingerprint[0], 0.7);

  DeepTuneSearcher adopter(&space);
  EXPECT_FALSE(adopter.transferred());
  ASSERT_TRUE(zoo.Adopt("redis", &adopter));
  EXPECT_TRUE(adopter.transferred());
}

TEST_F(ModelZooFixture, AdoptedWeightsMatchTheDonor) {
  ConfigSpace space = BuildLinuxSearchSpace();
  ModelZoo zoo(dir_);

  DeepTuneSearcher donor(&space);
  // Give the donor some training so the weights are distinctive.
  Rng rng(81);
  for (int i = 0; i < 20; ++i) {
    Configuration config = space.RandomConfiguration(rng);
    donor.mutable_model().AddSample(space.Encode(config), false, rng.Uniform(0, 100));
  }
  donor.mutable_model().Update();
  std::vector<double> fingerprint(space.FeatureDimension(), 1.0);
  ASSERT_TRUE(zoo.Publish("donor", donor, fingerprint));

  DeepTuneSearcher adopter(&space);
  ASSERT_TRUE(zoo.Adopt("donor", &adopter));
  Configuration probe = space.DefaultConfiguration();
  DtmPrediction a = donor.PredictConfig(probe);
  DtmPrediction b = adopter.PredictConfig(probe);
  EXPECT_NEAR(a.crash_prob, b.crash_prob, 1e-9);
  EXPECT_NEAR(a.objective, b.objective, 1e-9);
}

TEST_F(ModelZooFixture, RankDonorsOrdersBySimilarity) {
  ConfigSpace space = BuildLinuxSearchSpace();
  ModelZoo zoo(dir_);
  DeepTuneSearcher model(&space);

  size_t d = space.FeatureDimension();
  std::vector<double> net(d, 0.0);
  net[0] = 1.0;  // "network-heavy" fingerprint.
  std::vector<double> cpu(d, 0.0);
  cpu[d - 1] = 1.0;  // Orthogonal "CPU-heavy" fingerprint.
  std::vector<double> mixed(d, 0.0);
  mixed[0] = 0.8;
  mixed[d - 1] = 0.2;

  ASSERT_TRUE(zoo.Publish("npb", model, cpu));
  ASSERT_TRUE(zoo.Publish("redis", model, net));
  ASSERT_TRUE(zoo.Publish("sqlite", model, mixed));

  std::vector<DonorMatch> matches = zoo.RankDonors(net);
  ASSERT_EQ(matches.size(), 3u);
  EXPECT_EQ(matches[0].name, "redis");
  EXPECT_NEAR(matches[0].similarity, 1.0, 1e-9);
  EXPECT_EQ(matches[1].name, "sqlite");
  EXPECT_EQ(matches[2].name, "npb");
  EXPECT_NEAR(matches[2].similarity, 0.0, 1e-9);
}

TEST_F(ModelZooFixture, MismatchedDimensionsAreExcluded) {
  ConfigSpace space = BuildLinuxSearchSpace();
  ModelZoo zoo(dir_);
  DeepTuneSearcher model(&space);
  ASSERT_TRUE(zoo.Publish("redis", model,
                          std::vector<double>(space.FeatureDimension(), 1.0)));
  // Query with a wrong-dimension fingerprint.
  EXPECT_TRUE(zoo.RankDonors(std::vector<double>(3, 1.0)).empty());
}

TEST_F(ModelZooFixture, RemoveDeletesBothFiles) {
  ConfigSpace space = BuildLinuxSearchSpace();
  ModelZoo zoo(dir_);
  DeepTuneSearcher model(&space);
  ASSERT_TRUE(zoo.Publish("redis", model,
                          std::vector<double>(space.FeatureDimension(), 1.0)));
  ASSERT_EQ(zoo.List().size(), 1u);
  EXPECT_TRUE(zoo.Remove("redis"));
  EXPECT_TRUE(zoo.List().empty());
  EXPECT_FALSE(zoo.Remove("redis"));
}

TEST_F(ModelZooFixture, RejectsPathTraversalNames) {
  ConfigSpace space = BuildLinuxSearchSpace();
  ModelZoo zoo(dir_);
  DeepTuneSearcher model(&space);
  EXPECT_FALSE(zoo.Publish("../evil", model, {1.0}));
  EXPECT_FALSE(zoo.Publish("", model, {1.0}));
}

TEST_F(ModelZooFixture, CorruptFingerprintFilesAreSkipped) {
  ConfigSpace space = BuildLinuxSearchSpace();
  ModelZoo zoo(dir_);
  DeepTuneSearcher model(&space);
  ASSERT_TRUE(zoo.Publish("good", model,
                          std::vector<double>(space.FeatureDimension(), 1.0)));
  {
    std::ofstream bad(fs::path(dir_) / "bad.fingerprint");
    bad << "not a fingerprint\n";
  }
  {
    // Fingerprint without a model file: also skipped.
    std::ofstream orphan(fs::path(dir_) / "orphan.fingerprint");
    orphan << "wayfinder-fingerprint v1\ndim 3\nimportance 1 0 0\n";
  }
  std::vector<ZooEntry> entries = zoo.List();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].name, "good");
}

// ---------------------------------------------------------------------------
// End to end: fingerprints computed from the simulated substrate reproduce
// Figure 5's structure, and donor selection picks the related application.

TEST_F(ModelZooFixture, FingerprintsReproduceFigure5Structure) {
  ConfigSpace space = BuildLinuxSearchSpace();
  Testbench nginx(&space, AppId::kNginx);
  Testbench redis(&space, AppId::kRedis);
  Testbench npb(&space, AppId::kNpb);

  const size_t kSamples = 400;  // Stable forest, still fast in CI.
  std::vector<double> fp_nginx = ComputeImportanceFingerprint(nginx, kSamples, 91);
  std::vector<double> fp_redis = ComputeImportanceFingerprint(redis, kSamples, 92);
  std::vector<double> fp_npb = ComputeImportanceFingerprint(npb, kSamples, 93);

  double nginx_redis = ImportanceSimilarity(fp_nginx, fp_redis);
  double nginx_npb = ImportanceSimilarity(fp_nginx, fp_npb);
  // The ordering property of Figure 5: the two network apps resemble each
  // other more than the web server resembles the HPC suite. (The absolute
  // gap needs thousands of samples to reach the paper's 0.95-vs-0.45; at
  // CI scale only the ordering is stable.)
  EXPECT_GT(nginx_redis, nginx_npb + 0.05)
      << "nginx~redis=" << nginx_redis << " nginx~npb=" << nginx_npb;

  // Donor selection: with Redis and NPB in the zoo, Nginx picks Redis.
  ModelZoo zoo(dir_);
  DeepTuneSearcher model(&space);
  ASSERT_TRUE(zoo.Publish("redis", model, fp_redis));
  ASSERT_TRUE(zoo.Publish("npb", model, fp_npb));
  std::vector<DonorMatch> matches = zoo.RankDonors(fp_nginx);
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].name, "redis");
}

}  // namespace
}  // namespace wayfinder
