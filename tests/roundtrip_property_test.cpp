// Property sweeps over the text codecs: randomly generated parameter sets
// must survive WriteKconfig -> ParseKconfig and WriteBootParamDoc ->
// ParseBootParamDoc unchanged, across seeds; and the YAML-subset parser
// must reject (not crash on) a catalogue of adversarial inputs.
#include <string>

#include <gtest/gtest.h>

#include "src/configspace/bootparam_doc.h"
#include "src/configspace/kconfig.h"
#include "src/util/rng.h"
#include "src/util/yaml.h"

namespace wayfinder {
namespace {

// ---------------------------------------------------------------------------
// Random spec generation.

std::string RandomSymbol(Rng& rng, const char* prefix, int index) {
  return std::string(prefix) + "_" + std::to_string(index) + "_" +
         std::to_string(rng.UniformInt(0, 999));
}

ParamSpec RandomCompileSpec(Rng& rng, int index) {
  switch (rng.UniformInt(0, 3)) {
    case 0: {
      ParamSpec spec = ParamSpec::Bool(RandomSymbol(rng, "OPT", index),
                                       ParamPhase::kCompileTime, "net",
                                       rng.Bernoulli(0.5));
      spec.help = "bool option";
      return spec;
    }
    case 1: {
      ParamSpec spec = ParamSpec::Tristate(RandomSymbol(rng, "MOD", index), "block",
                                           rng.UniformInt(0, 2));
      spec.help = "tristate option";
      return spec;
    }
    case 2: {
      int64_t lo = rng.UniformInt(0, 100);
      int64_t hi = lo + rng.UniformInt(1, 100000);
      int64_t def = rng.UniformInt(lo, hi);
      ParamSpec spec = ParamSpec::Int(RandomSymbol(rng, "NR", index),
                                      ParamPhase::kCompileTime, "vm", lo, hi, def);
      spec.help = "int option";
      return spec;
    }
    default: {
      int64_t lo = 0x1000;
      int64_t hi = 0x100000;
      ParamSpec spec = ParamSpec::Hex(RandomSymbol(rng, "ADDR", index), "kernel", lo, hi,
                                      0x8000);
      spec.help = "hex option";
      return spec;
    }
  }
}

ParamSpec RandomBootSpec(Rng& rng, int index) {
  switch (rng.UniformInt(0, 2)) {
    case 0: {
      ParamSpec spec = ParamSpec::Bool(RandomSymbol(rng, "flag", index),
                                       ParamPhase::kBootTime, "kernel",
                                       rng.Bernoulli(0.3));
      spec.help = "boot flag";
      return spec;
    }
    case 1: {
      int64_t lo = rng.UniformInt(0, 10);
      int64_t hi = lo + rng.UniformInt(1, 5000);
      ParamSpec spec = ParamSpec::Int(RandomSymbol(rng, "knob", index),
                                      ParamPhase::kBootTime, "sched", lo, hi,
                                      rng.UniformInt(lo, hi));
      spec.help = "boot knob";
      return spec;
    }
    default: {
      ParamSpec spec = ParamSpec::String(RandomSymbol(rng, "mode", index),
                                         ParamPhase::kBootTime, "power",
                                         {"alpha", "beta", "gamma"},
                                         rng.UniformInt(0, 2));
      spec.help = "boot mode";
      return spec;
    }
  }
}

// ---------------------------------------------------------------------------
// Kconfig round-trip sweep.

class KconfigRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KconfigRoundTrip, RandomSpecsSurvive) {
  Rng rng(GetParam());
  std::vector<ParamSpec> params;
  int count = 5 + static_cast<int>(rng.UniformInt(0, 20));
  for (int i = 0; i < count; ++i) {
    params.push_back(RandomCompileSpec(rng, i));
  }
  // Sprinkle dependency and select edges between earlier boolean symbols.
  for (size_t i = 1; i < params.size(); ++i) {
    if (rng.Bernoulli(0.3) && params[i - 1].kind == ParamKind::kBool) {
      params[i].depends_on.push_back(params[i - 1].name);
    }
    if (rng.Bernoulli(0.2) && params[i].kind == ParamKind::kBool &&
        params[i - 1].kind == ParamKind::kBool) {
      params[i].selects.push_back(params[i - 1].name);
    }
  }

  std::string text = WriteKconfig(params);
  KconfigParseResult parsed = ParseKconfig(text);
  ASSERT_TRUE(parsed.ok) << parsed.error << " at line " << parsed.error_line << " in:\n"
                         << text;
  ASSERT_EQ(parsed.params.size(), params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    EXPECT_EQ(parsed.params[i].name, params[i].name);
    EXPECT_EQ(parsed.params[i].kind, params[i].kind);
    EXPECT_EQ(parsed.params[i].default_value, params[i].default_value);
    EXPECT_EQ(parsed.params[i].depends_on, params[i].depends_on);
    EXPECT_EQ(parsed.params[i].selects, params[i].selects);
    if (params[i].kind == ParamKind::kInt || params[i].kind == ParamKind::kHex) {
      EXPECT_EQ(parsed.params[i].min_value, params[i].min_value);
      EXPECT_EQ(parsed.params[i].max_value, params[i].max_value);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KconfigRoundTrip,
                         ::testing::Values(1u, 7u, 42u, 1337u, 0xabcdu, 0xfeedu));

// ---------------------------------------------------------------------------
// Boot-doc round-trip sweep.

class BootDocRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BootDocRoundTrip, RandomSpecsSurvive) {
  Rng rng(GetParam() ^ 0xb007);
  std::vector<ParamSpec> params;
  int count = 4 + static_cast<int>(rng.UniformInt(0, 12));
  for (int i = 0; i < count; ++i) {
    params.push_back(RandomBootSpec(rng, i));
  }

  std::string text = WriteBootParamDoc(params);
  BootParamDocResult parsed = ParseBootParamDoc(text);
  ASSERT_TRUE(parsed.ok) << parsed.error << " at line " << parsed.error_line << " in:\n"
                         << text;
  ASSERT_EQ(parsed.params.size(), params.size());
  EXPECT_TRUE(parsed.undocumented.empty());
  for (size_t i = 0; i < params.size(); ++i) {
    EXPECT_EQ(parsed.params[i].name, params[i].name);
    EXPECT_EQ(parsed.params[i].kind, params[i].kind);
    EXPECT_EQ(parsed.params[i].default_value, params[i].default_value) << params[i].name;
    if (params[i].kind == ParamKind::kString) {
      EXPECT_EQ(parsed.params[i].choices, params[i].choices);
    }
    if (params[i].kind == ParamKind::kInt) {
      EXPECT_EQ(parsed.params[i].min_value, params[i].min_value);
      EXPECT_EQ(parsed.params[i].max_value, params[i].max_value);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BootDocRoundTrip,
                         ::testing::Values(2u, 9u, 64u, 4096u, 0xdadau, 0xc0dau));

// ---------------------------------------------------------------------------
// Adversarial YAML inputs: every case must fail cleanly or parse without
// crashing — never abort, never loop.

struct YamlCase {
  const char* label;
  const char* text;
};

class YamlAdversarial : public ::testing::TestWithParam<YamlCase> {};

TEST_P(YamlAdversarial, ParsesOrFailsCleanly) {
  YamlParseResult result = ParseYaml(GetParam().text);
  if (!result.ok) {
    EXPECT_FALSE(result.error.empty());
    EXPECT_GE(result.error_line, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Inputs, YamlAdversarial,
    ::testing::Values(
        YamlCase{"empty", ""},
        YamlCase{"only_comment", "# nothing here\n"},
        YamlCase{"bare_scalar", "42\n"},
        YamlCase{"colon_only", ":\n"},
        YamlCase{"dangling_key", "key:\n"},
        YamlCase{"deep_nesting",
                 "a:\n b:\n  c:\n   d:\n    e:\n     f:\n      g:\n       h: 1\n"},
        YamlCase{"mixed_tabs", "a:\n\tb: 1\n"},
        YamlCase{"negative_indent_jump", "a:\n    b: 1\n  c: 2\n"},
        YamlCase{"sequence_of_nothing", "xs:\n  -\n  -\n"},
        YamlCase{"colon_in_value", "url: http://host:8080/path\n"},
        YamlCase{"unicode_value", "name: wëgfinder\n"},
        YamlCase{"very_long_line",
                 "k: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
                 "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\n"},
        YamlCase{"duplicate_keys", "a: 1\na: 2\n"},
        YamlCase{"sequence_then_mapping", "xs:\n  - 1\n  key: value\n"}),
    [](const ::testing::TestParamInfo<YamlCase>& info) {
      return std::string(info.param.label);
    });

}  // namespace
}  // namespace wayfinder
