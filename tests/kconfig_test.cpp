// Tests for the Kconfig-subset parser and writer.
#include <gtest/gtest.h>

#include "src/configspace/kconfig.h"

namespace wayfinder {
namespace {

TEST(Kconfig, ParsesBoolOption) {
  KconfigParseResult result = ParseKconfig(
      "config DEBUG_KERNEL\n"
      "\tbool \"Kernel debugging\"\n"
      "\tdefault y\n");
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.params.size(), 1u);
  const ParamSpec& spec = result.params[0];
  EXPECT_EQ(spec.name, "DEBUG_KERNEL");
  EXPECT_EQ(spec.kind, ParamKind::kBool);
  EXPECT_EQ(spec.default_value, 1);
  EXPECT_EQ(spec.phase, ParamPhase::kCompileTime);
  EXPECT_EQ(spec.help, "Kernel debugging");
}

TEST(Kconfig, ParsesTristateDefaults) {
  KconfigParseResult result = ParseKconfig(
      "config MOD_A\n"
      "\ttristate \"module a\"\n"
      "\tdefault m\n"
      "config MOD_B\n"
      "\ttristate \"module b\"\n"
      "\tdefault y\n"
      "config MOD_C\n"
      "\ttristate \"module c\"\n");
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.params.size(), 3u);
  EXPECT_EQ(result.params[0].default_value, 1);
  EXPECT_EQ(result.params[1].default_value, 2);
  EXPECT_EQ(result.params[2].default_value, 0);
}

TEST(Kconfig, ParsesIntWithRange) {
  KconfigParseResult result = ParseKconfig(
      "config LOG_BUF_SHIFT\n"
      "\tint \"Kernel log buffer size\"\n"
      "\trange 12 25\n"
      "\tdefault 17\n");
  ASSERT_TRUE(result.ok) << result.error;
  const ParamSpec& spec = result.params[0];
  EXPECT_EQ(spec.kind, ParamKind::kInt);
  EXPECT_EQ(spec.min_value, 12);
  EXPECT_EQ(spec.max_value, 25);
  EXPECT_EQ(spec.default_value, 17);
}

TEST(Kconfig, IntWithoutRangeGetsWideDomain) {
  KconfigParseResult result = ParseKconfig(
      "config NR_SOMETHING\n"
      "\tint \"count\"\n"
      "\tdefault 64\n");
  ASSERT_TRUE(result.ok) << result.error;
  const ParamSpec& spec = result.params[0];
  EXPECT_LE(spec.min_value, 0);
  EXPECT_GE(spec.max_value, 64 * 64);
  EXPECT_EQ(spec.default_value, 64);
}

TEST(Kconfig, ParsesHexAsLogScale) {
  KconfigParseResult result = ParseKconfig(
      "config PHYS_START\n"
      "\thex \"physical start\"\n"
      "\trange 0x100000 0x1000000\n"
      "\tdefault 0x200000\n");
  ASSERT_TRUE(result.ok) << result.error;
  const ParamSpec& spec = result.params[0];
  EXPECT_EQ(spec.kind, ParamKind::kHex);
  EXPECT_EQ(spec.default_value, 0x200000);
  EXPECT_TRUE(spec.log_scale);
}

TEST(Kconfig, DependsOnCollectsSymbols) {
  KconfigParseResult result = ParseKconfig(
      "config CHILD\n"
      "\tbool \"child\"\n"
      "\tdepends on NET && BLOCK\n");
  ASSERT_TRUE(result.ok) << result.error;
  const ParamSpec& spec = result.params[0];
  ASSERT_EQ(spec.depends_on.size(), 2u);
  EXPECT_EQ(spec.depends_on[0], "NET");
  EXPECT_EQ(spec.depends_on[1], "BLOCK");
}

TEST(Kconfig, MenusAssignSubsystems) {
  KconfigParseResult result = ParseKconfig(
      "menu \"Networking support\"\n"
      "config TCP_THING\n"
      "\tbool \"thing\"\n"
      "endmenu\n"
      "menu \"Memory Management options\"\n"
      "config VM_THING\n"
      "\tbool \"thing\"\n"
      "endmenu\n"
      "config OTHER\n"
      "\tbool \"thing\"\n");
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.params.size(), 3u);
  EXPECT_EQ(result.params[0].subsystem, "net");
  EXPECT_EQ(result.params[1].subsystem, "vm");
  EXPECT_EQ(result.params[2].subsystem, "kernel");
}

TEST(Kconfig, HelpBodyConsumed) {
  KconfigParseResult result = ParseKconfig(
      "config A\n"
      "\tbool \"a\"\n"
      "\thelp\n"
      "\t  This is documentation that spans\n"
      "\t  multiple lines.\n"
      "config B\n"
      "\tbool \"b\"\n");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.params.size(), 2u);
}

TEST(Kconfig, ChoiceBlocksParsed) {
  KconfigParseResult result = ParseKconfig(
      "choice\n"
      "config HZ_100\n"
      "\tbool \"100 Hz\"\n"
      "config HZ_1000\n"
      "\tbool \"1000 Hz\"\n"
      "endchoice\n");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.params.size(), 2u);
}

TEST(Kconfig, UnterminatedMenuIsError) {
  KconfigParseResult result = ParseKconfig("menu \"Oops\"\nconfig A\n\tbool \"a\"\n");
  EXPECT_FALSE(result.ok);
}

TEST(Kconfig, MissingTypeIsError) {
  KconfigParseResult result = ParseKconfig("config UNTYPED\n\tdefault y\n");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("no type"), std::string::npos);
}

TEST(Kconfig, UnknownConstructIsError) {
  // "macro" is not part of the supported subset ("if" blocks and "select"
  // are; see kconfig_select_test.cpp).
  KconfigParseResult result = ParseKconfig("macro $(warning,hi)\nconfig A\n\tbool \"a\"\n");
  EXPECT_FALSE(result.ok);
  EXPECT_GT(result.error_line, 0);
}

TEST(Kconfig, CommentsAndSourceIgnored) {
  KconfigParseResult result = ParseKconfig(
      "# a comment\n"
      "source \"drivers/Kconfig\"\n"
      "comment \"section\"\n"
      "config A\n"
      "\tbool \"a\"\n");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.params.size(), 1u);
}

TEST(Kconfig, WriterRoundTrips) {
  std::vector<ParamSpec> params;
  params.push_back(ParamSpec::Bool("FEATURE_X", ParamPhase::kCompileTime, "net", true));
  params.back().help = "Feature X";
  params.push_back(ParamSpec::Tristate("MOD_Y", "block", 1));
  params.back().help = "Module Y";
  params.push_back(
      ParamSpec::Int("COUNT_Z", ParamPhase::kCompileTime, "vm", 1, 128, 32));
  params.back().help = "Count Z";
  params.back().depends_on.push_back("FEATURE_X");

  std::string text = WriteKconfig(params);
  KconfigParseResult result = ParseKconfig(text);
  ASSERT_TRUE(result.ok) << result.error << " in:\n" << text;
  ASSERT_EQ(result.params.size(), params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    EXPECT_EQ(result.params[i].name, params[i].name);
    EXPECT_EQ(result.params[i].kind, params[i].kind);
    EXPECT_EQ(result.params[i].default_value, params[i].default_value);
  }
  EXPECT_EQ(result.params[2].depends_on, params[2].depends_on);
}

TEST(SubsystemMapping, KnownTitles) {
  EXPECT_EQ(SubsystemFromMenuTitle("Networking support"), "net");
  EXPECT_EQ(SubsystemFromMenuTitle("Kernel hacking"), "debug");
  EXPECT_EQ(SubsystemFromMenuTitle("File systems"), "fs");
  EXPECT_EQ(SubsystemFromMenuTitle("Device Drivers"), "drivers");
  EXPECT_EQ(SubsystemFromMenuTitle("Something else"), "kernel");
}

}  // namespace
}  // namespace wayfinder
