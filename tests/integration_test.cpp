// End-to-end integration tests: full search sessions across modules, the
// paper's headline claims at reduced scale, and determinism of whole runs.
#include <gtest/gtest.h>

#include <cmath>

#include "src/configspace/linux_space.h"
#include "src/configspace/unikraft_space.h"
#include "src/core/wayfinder_api.h"
#include "src/simos/cozart.h"

namespace wayfinder {
namespace {

TEST(Integration, FullSessionIsDeterministic) {
  auto run_once = [] {
    ConfigSpace space = BuildLinuxSearchSpace();
    Testbench bench(&space, AppId::kNginx);
    std::unique_ptr<Searcher> searcher = MakeSearcher("deeptune", &space, 1234);
    SessionOptions options;
    options.max_iterations = 40;
    options.sample_options = SampleOptions::FavorRuntime();
    options.seed = 99;
    return RunSearch(&bench, searcher.get(), options);
  };
  SessionResult a = run_once();
  SessionResult b = run_once();
  ASSERT_EQ(a.history.size(), b.history.size());
  for (size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].config.Hash(), b.history[i].config.Hash()) << i;
    EXPECT_EQ(a.history[i].crashed(), b.history[i].crashed()) << i;
    if (a.history[i].HasObjective() && b.history[i].HasObjective()) {
      EXPECT_DOUBLE_EQ(a.history[i].objective, b.history[i].objective) << i;
    }
  }
}

TEST(Integration, HeadlineClaimReducedScale) {
  // C1 at reduced scale: DeepTune finds a configuration well above the
  // default baseline for Nginx, with a crash rate well under random's.
  ConfigSpace space = BuildLinuxSearchSpace();
  Testbench bench(&space, AppId::kNginx);
  std::unique_ptr<Searcher> searcher = MakeSearcher("deeptune", &space);
  SessionOptions options;
  options.max_iterations = 150;
  options.sample_options = SampleOptions::FavorRuntime();
  options.seed = 21;
  SessionResult result = RunSearch(&bench, searcher.get(), options);
  ASSERT_NE(result.best(), nullptr);
  EXPECT_GT(result.best()->outcome.metric, 15731.0 * 1.05);
  EXPECT_LT(result.CrashRate(), 0.2);
}

TEST(Integration, MemorySearchReducesFootprint) {
  // Figure 10's claim at reduced scale: compile-time search shrinks the
  // image below the 210 MB default.
  ConfigSpace space = BuildLinuxSearchSpace();
  TestbenchOptions bench_options;
  bench_options.substrate = Substrate::kLinuxRiscvQemu;
  Testbench bench(&space, AppId::kNginx, bench_options);
  std::unique_ptr<Searcher> searcher = MakeSearcher("deeptune", &space);
  SessionOptions options;
  options.max_iterations = 80;
  options.objective = ObjectiveKind::kMemoryFootprint;
  options.sample_options = SampleOptions::FavorCompileTime();
  options.seed = 31;
  SessionResult result = RunSearch(&bench, searcher.get(), options);
  ASSERT_NE(result.best(), nullptr);
  EXPECT_LT(result.best()->outcome.memory_mb, 205.0);
}

TEST(Integration, CozartThenWayfinderScoreSearch) {
  // Figure 11's pipeline: debloat, freeze, then co-optimize the score.
  ConfigSpace space = BuildLinuxSearchSpace();
  Testbench probe(&space, AppId::kNginx);
  CozartDebloater cozart(&space, &probe.crash_model());
  DebloatResult debloat = cozart.Debloat(AppId::kNginx);
  ASSERT_GT(debloat.disabled.size(), 0u);
  CozartDebloater::FreezeDisabled(&space, debloat);

  Testbench bench(&space, AppId::kNginx);
  std::unique_ptr<Searcher> searcher = MakeSearcher("deeptune", &space);
  SessionOptions options;
  options.max_iterations = 60;
  options.objective = ObjectiveKind::kScore;
  options.sample_options = SampleOptions::FavorRuntime();
  options.seed = 41;
  SessionResult result = RunSearch(&bench, searcher.get(), options);
  ASSERT_NE(result.best(), nullptr);
  // Every explored configuration keeps the debloated options off.
  for (const TrialRecord& trial : result.history) {
    for (size_t index : debloat.disabled) {
      ASSERT_EQ(trial.config.Raw(index), 0);
    }
  }
  EXPECT_GT(result.best()->objective, 0.0);
}

TEST(Integration, UnikraftSessionOutperformsBaseline) {
  ConfigSpace space = BuildUnikraftSpace();
  TestbenchOptions bench_options;
  bench_options.substrate = Substrate::kUnikraftKvm;
  Testbench bench(&space, AppId::kNginx, bench_options);
  std::unique_ptr<Searcher> searcher = MakeSearcher("deeptune", &space);
  SessionOptions options;
  options.max_iterations = 120;
  options.seed = 51;
  SessionResult result = RunSearch(&bench, searcher.get(), options);
  ASSERT_NE(result.best(), nullptr);
  // Unikernel configuration headroom is large (§4.4): 1.5x is conservative.
  EXPECT_GT(result.best()->outcome.metric, 12000.0 * 1.5);
}

// Property sweep: every algorithm completes a session on every app without
// invalid configurations.
struct AlgoApp {
  const char* algorithm;
  AppId app;
};

class AllPairsTest : public ::testing::TestWithParam<AlgoApp> {};

TEST_P(AllPairsTest, SessionCompletesWithValidConfigs) {
  ConfigSpace space = BuildLinuxSearchSpace();
  Testbench bench(&space, GetParam().app);
  std::unique_ptr<Searcher> searcher = MakeSearcher(GetParam().algorithm, &space);
  ASSERT_NE(searcher, nullptr);
  SessionOptions options;
  options.max_iterations = 25;
  options.sample_options = SampleOptions::FavorRuntime();
  options.seed = StableHash(GetParam().algorithm);
  SessionResult result = RunSearch(&bench, searcher.get(), options);
  EXPECT_EQ(result.history.size(), 25u);
  for (const TrialRecord& trial : result.history) {
    ASSERT_TRUE(space.IsValid(trial.config));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AllPairsTest,
    ::testing::Values(AlgoApp{"random", AppId::kNginx}, AlgoApp{"random", AppId::kSqlite},
                      AlgoApp{"grid", AppId::kNginx}, AlgoApp{"bayesopt", AppId::kRedis},
                      AlgoApp{"causal", AppId::kNpb}, AlgoApp{"deeptune", AppId::kRedis},
                      AlgoApp{"deeptune", AppId::kNpb}),
    [](const ::testing::TestParamInfo<AlgoApp>& info) {
      return std::string(info.param.algorithm) + "_" + AppName(info.param.app);
    });

}  // namespace
}  // namespace wayfinder
