// Tests for the minimal YAML-subset parser.
#include <gtest/gtest.h>

#include "src/util/yaml.h"

namespace wayfinder {
namespace {

TEST(Yaml, EmptyDocumentIsEmptyMapping) {
  YamlParseResult result = ParseYaml("");
  ASSERT_TRUE(result.ok);
  EXPECT_TRUE(result.root.IsMapping());
  EXPECT_EQ(result.root.Size(), 0u);
}

TEST(Yaml, ScalarTypes) {
  YamlParseResult result = ParseYaml(
      "name: wayfinder\n"
      "count: 42\n"
      "ratio: 0.5\n"
      "enabled: true\n"
      "disabled: false\n"
      "hex: 0x10\n");
  ASSERT_TRUE(result.ok) << result.error;
  const YamlNode& root = result.root;
  EXPECT_EQ(root.GetString("name"), "wayfinder");
  EXPECT_EQ(root.GetInt("count"), 42);
  EXPECT_DOUBLE_EQ(root.GetDouble("ratio"), 0.5);
  EXPECT_TRUE(root.GetBool("enabled"));
  EXPECT_FALSE(root.GetBool("disabled", true));
  EXPECT_EQ(root.GetInt("hex"), 16);
}

TEST(Yaml, TypedAccessorsRejectWrongTypes) {
  YamlParseResult result = ParseYaml("value: not-a-number\n");
  ASSERT_TRUE(result.ok);
  const YamlNode* node = result.root.Get("value");
  ASSERT_NE(node, nullptr);
  EXPECT_FALSE(node->AsInt().has_value());
  EXPECT_FALSE(node->AsDouble().has_value());
  EXPECT_FALSE(node->AsBool().has_value());
}

TEST(Yaml, NestedMappings) {
  YamlParseResult result = ParseYaml(
      "budget:\n"
      "  iterations: 250\n"
      "  nested:\n"
      "    deep: 1\n"
      "search:\n"
      "  algorithm: deeptune\n");
  ASSERT_TRUE(result.ok) << result.error;
  const YamlNode* budget = result.root.Get("budget");
  ASSERT_NE(budget, nullptr);
  EXPECT_EQ(budget->GetInt("iterations"), 250);
  const YamlNode* nested = budget->Get("nested");
  ASSERT_NE(nested, nullptr);
  EXPECT_EQ(nested->GetInt("deep"), 1);
  EXPECT_EQ(result.root.GetString("search", ""), "");
}

TEST(Yaml, SequencesOfScalars) {
  YamlParseResult result = ParseYaml(
      "items:\n"
      "  - alpha\n"
      "  - beta\n"
      "  - gamma\n");
  ASSERT_TRUE(result.ok) << result.error;
  const YamlNode* items = result.root.Get("items");
  ASSERT_NE(items, nullptr);
  ASSERT_TRUE(items->IsSequence());
  ASSERT_EQ(items->Size(), 3u);
  EXPECT_EQ(items->At(1).AsString(), "beta");
}

TEST(Yaml, SequenceAtSameIndentAsKey) {
  YamlParseResult result = ParseYaml(
      "freeze:\n"
      "- name: a\n"
      "- name: b\n");
  ASSERT_TRUE(result.ok) << result.error;
  const YamlNode* freeze = result.root.Get("freeze");
  ASSERT_NE(freeze, nullptr);
  ASSERT_TRUE(freeze->IsSequence());
  EXPECT_EQ(freeze->Size(), 2u);
}

TEST(Yaml, SequenceOfInlineMappings) {
  YamlParseResult result = ParseYaml(
      "freeze:\n"
      "  - name: kernel.randomize_va_space\n"
      "    value: 2\n"
      "  - name: audit\n"
      "    value: 1\n");
  ASSERT_TRUE(result.ok) << result.error;
  const YamlNode* freeze = result.root.Get("freeze");
  ASSERT_NE(freeze, nullptr);
  ASSERT_EQ(freeze->Size(), 2u);
  EXPECT_EQ(freeze->At(0).GetString("name"), "kernel.randomize_va_space");
  EXPECT_EQ(freeze->At(0).GetInt("value"), 2);
  EXPECT_EQ(freeze->At(1).GetString("name"), "audit");
}

TEST(Yaml, FlowSequence) {
  YamlParseResult result = ParseYaml("values: [1, 2, 3]\n");
  ASSERT_TRUE(result.ok) << result.error;
  const YamlNode* values = result.root.Get("values");
  ASSERT_NE(values, nullptr);
  ASSERT_TRUE(values->IsSequence());
  ASSERT_EQ(values->Size(), 3u);
  EXPECT_EQ(values->At(2).AsInt().value_or(0), 3);
}

TEST(Yaml, CommentsAndBlankLines) {
  YamlParseResult result = ParseYaml(
      "# header comment\n"
      "\n"
      "key: value  # trailing comment\n"
      "other: \"quoted # not comment\"\n");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.root.GetString("key"), "value");
  EXPECT_EQ(result.root.GetString("other"), "quoted # not comment");
}

TEST(Yaml, QuotedStrings) {
  YamlParseResult result = ParseYaml(
      "a: \"hello world\"\n"
      "b: 'single'\n");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.root.GetString("a"), "hello world");
  EXPECT_EQ(result.root.GetString("b"), "single");
}

TEST(Yaml, DuplicateKeyIsError) {
  YamlParseResult result = ParseYaml("a: 1\na: 2\n");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("duplicate"), std::string::npos);
}

TEST(Yaml, TabIndentationIsError) {
  YamlParseResult result = ParseYaml("a:\n\tb: 1\n");
  EXPECT_FALSE(result.ok);
}

TEST(Yaml, AnchorsRejected) {
  YamlParseResult result = ParseYaml("a: 1\n&anchor\n");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("unsupported"), std::string::npos);
}

TEST(Yaml, ErrorCarriesLineNumber) {
  YamlParseResult result = ParseYaml("ok: 1\nnot a mapping line\n");
  ASSERT_FALSE(result.ok);
  EXPECT_EQ(result.error_line, 2);
}

TEST(Yaml, DocumentStartMarkerTolerated) {
  YamlParseResult result = ParseYaml("---\nkey: v\n");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.root.GetString("key"), "v");
}

TEST(Yaml, EmptyValueBecomesEmptyScalar) {
  YamlParseResult result = ParseYaml("key:\nnext: 1\n");
  ASSERT_TRUE(result.ok) << result.error;
  const YamlNode* key = result.root.Get("key");
  ASSERT_NE(key, nullptr);
  EXPECT_TRUE(key->IsScalar());
  EXPECT_EQ(key->AsString(), "");
}

TEST(Yaml, MissingFileError) {
  YamlParseResult result = ParseYamlFile("/nonexistent/job.yaml");
  EXPECT_FALSE(result.ok);
}

}  // namespace
}  // namespace wayfinder
