// Hostile-churn soak of the wfd daemon (tier2 in CI, where it runs long
// under ASan and TSan with WF_SOAK=1): many submit/pause/resume cycles of
// jobs carrying a ~10% mixed-fault plan, interleaved with clients that
// vanish at every stage of the exchange — silent connects, a submit whose
// job frame never arrives, truncated frame headers, non-YAML payloads,
// watch subscribers that die without draining their pushes. The daemon
// must neither crash nor wedge, every session must still run to done, and
// the fault taxonomy must surface over the wire.
//
// Default (tier-1) run keeps the cycle count small so plain `ctest` stays
// fast; WF_SOAK=1 raises it to the full 32-cycle churn.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "src/service/client.h"
#include "src/service/protocol.h"
#include "src/service/wfd.h"
#include "src/util/socket.h"

namespace wayfinder {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

size_t SoakCycles() {
  const char* env = std::getenv("WF_SOAK");
  return (env != nullptr && env[0] == '1') ? 32 : 4;
}

// A small job with a ~10% mixed-fault plan: flakes, timeouts, hangs, and
// measurement noise all active at once, with one transient retry.
std::string SoakJob(size_t cycle) {
  std::string yaml;
  yaml += "name: soak-" + std::to_string(cycle) + "\n";
  yaml += "os: unikraft\n";
  yaml += "application: nginx\n";
  yaml += "metric: performance\n";
  yaml += "budget:\n  iterations: 12\n";
  yaml += "search:\n";
  yaml += std::string("  algorithm: ") + (cycle % 2 == 0 ? "random" : "deeptune") + "\n";
  yaml += "  seed: " + std::to_string(0x50a + cycle) + "\n";
  yaml += "faults:\n";
  yaml += "  flake_prob: 0.06\n";
  yaml += "  timeout_prob: 0.03\n";
  yaml += "  hang_prob: 0.01\n";
  yaml += "  timeout_s: 120\n";
  yaml += "  noise_sigma: 0.1\n";
  yaml += "  retries: 1\n";
  return yaml;
}

// The hostile-client repertoire. None of these are allowed to take the
// daemon down or leak its per-connection state.
void HarassDaemon(const std::string& socket_path, size_t cycle, const std::string& id) {
  // Connect, say nothing, vanish.
  {
    std::string error;
    ServiceConnection silent;
    if (silent.Connect(socket_path, cycle % 2 == 1, &error)) {
      silent.Close();
    }
  }
  // Announce a submit, then die before the job frame arrives.
  {
    UnixConn conn = ConnectUnix(socket_path);
    if (conn.ok()) {
      ServiceRequest submit;
      submit.command = "submit";
      WriteFrame(conn.fd(), EncodeRequest(submit));
      conn.Close();
    }
  }
  // Die mid-frame-header (the kTruncated path).
  {
    UnixConn conn = ConnectUnix(socket_path);
    if (conn.ok()) {
      const char half_header[2] = {0x00, 0x00};
      (void)send(conn.fd(), half_header, sizeof(half_header), MSG_NOSIGNAL);
      conn.Close();
    }
  }
  // A frame that is not YAML, abandoned without reading the error reply.
  {
    UnixConn conn = ConnectUnix(socket_path);
    if (conn.ok()) {
      WriteFrame(conn.fd(), "!!junk: [unterminated");
      conn.Close();
    }
  }
  // Subscribe to pushes, then vanish without draining them.
  if (!id.empty()) {
    UnixConn conn = ConnectUnix(socket_path);
    if (conn.ok()) {
      ServiceRequest watch;
      watch.command = "watch";
      watch.id = id;
      WriteFrame(conn.fd(), EncodeRequest(watch));
      conn.Close();
    }
  }
}

TEST(ServiceSoak, DaemonSurvivesHostileChurn) {
  std::string socket_path = TempPath("wf_soak.sock");
  std::string store_dir = TempPath("wf_soak_store");
  std::filesystem::remove(socket_path);
  std::filesystem::remove_all(store_dir);

  WfdOptions options;
  options.socket_path = socket_path;
  options.manager.store_dir = store_dir;
  options.manager.max_running = 3;
  options.poll_ms = 5;
  options.idle_timeout_ms = 2000;
  WfdServer server(options);
  ASSERT_TRUE(server.Start()) << server.error();
  std::thread serve([&server] { server.Serve(); });

  const size_t cycles = SoakCycles();
  std::vector<std::string> ids;
  for (size_t cycle = 0; cycle < cycles; ++cycle) {
    ServiceCallResult submitted =
        SubmitJob(socket_path, SoakJob(cycle), /*warm_start=*/cycle % 2 == 0);
    ASSERT_TRUE(submitted.ok) << "cycle " << cycle << ": " << submitted.error;
    ASSERT_FALSE(submitted.response.id.empty());
    ids.push_back(submitted.response.id);

    HarassDaemon(socket_path, cycle, ids[cycle / 2]);

    // Lifecycle churn on an earlier session: pause, peek, resume. These may
    // legitimately no-op (the session can already be done) but must never
    // kill the connection or the daemon.
    const std::string& victim = ids[cycle / 2];
    ServiceRequest pause;
    pause.command = "pause";
    pause.id = victim;
    (void)CallService(socket_path, pause);
    ServiceCallResult fleet = QueryStatus(socket_path);
    ASSERT_TRUE(fleet.ok) << "cycle " << cycle << ": " << fleet.error;
    ASSERT_EQ(fleet.response.sessions.size(), ids.size());
    ServiceRequest resume;
    resume.command = "resume";
    resume.id = victim;
    (void)CallService(socket_path, resume);
  }

  // Every submitted session drains to done despite the churn.
  for (const std::string& id : ids) {
    ASSERT_TRUE(server.manager().WaitDone(id, 120000)) << id;
  }
  ServiceCallResult final_status = QueryStatus(socket_path);
  ASSERT_TRUE(final_status.ok) << final_status.error;
  ASSERT_EQ(final_status.response.sessions.size(), cycles);
  size_t injected = 0;
  for (const SessionStatus& session : final_status.response.sessions) {
    EXPECT_EQ(session.state, "done") << session.id << ": " << session.error;
    EXPECT_EQ(session.trials, 12u) << session.id;
    injected += session.build_failed + session.boot_failed + session.run_crashed +
                session.timeouts + session.retries;
  }
  // The 10% mixed-fault plan actually bit somewhere in the fleet, and the
  // taxonomy made it over the wire.
  EXPECT_GT(injected, 0u);

  ServiceCallResult stop = StopDaemon(socket_path);
  EXPECT_TRUE(stop.ok) << stop.error;
  serve.join();
  std::filesystem::remove_all(store_dir);
}

}  // namespace
}  // namespace wayfinder
