// Wire-protocol hardening tests: the framing layer (length-prefixed frames
// over Unix sockets), the YAML request/response codec, and — the satellite's
// pin — a live wfd daemon that survives malformed, truncated, and oversized
// frames, unknown commands, and clients vanishing mid-exchange without
// crashing or wedging. Runs under ASan and TSan in CI.
#include <sys/socket.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "src/service/client.h"
#include "src/service/protocol.h"
#include "src/service/wfd.h"
#include "src/util/socket.h"

namespace wayfinder {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// ---------------------------------------------------------------------------
// Framing.

class FramePair : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
  }
  void TearDown() override {
    CloseA();
    CloseB();
  }
  void CloseA() {
    if (fds_[0] >= 0) {
      ::close(fds_[0]);
      fds_[0] = -1;
    }
  }
  void CloseB() {
    if (fds_[1] >= 0) {
      ::close(fds_[1]);
      fds_[1] = -1;
    }
  }
  int a() const { return fds_[0]; }
  int b() const { return fds_[1]; }

 private:
  int fds_[2] = {-1, -1};
};

TEST_F(FramePair, RoundTripsPayloads) {
  for (const std::string payload : {std::string(""), std::string("hello"),
                                    std::string(100000, 'x')}) {
    ASSERT_TRUE(WriteFrame(a(), payload));
    std::string read_back;
    ASSERT_EQ(ReadFrame(b(), &read_back), FrameStatus::kOk);
    EXPECT_EQ(read_back, payload);
  }
}

TEST_F(FramePair, BackToBackFramesStayDelimited) {
  ASSERT_TRUE(WriteFrame(a(), "first"));
  ASSERT_TRUE(WriteFrame(a(), "second"));
  std::string payload;
  ASSERT_EQ(ReadFrame(b(), &payload), FrameStatus::kOk);
  EXPECT_EQ(payload, "first");
  ASSERT_EQ(ReadFrame(b(), &payload), FrameStatus::kOk);
  EXPECT_EQ(payload, "second");
}

TEST_F(FramePair, CleanEofReadsAsClosed) {
  CloseA();
  std::string payload;
  EXPECT_EQ(ReadFrame(b(), &payload), FrameStatus::kClosed);
}

TEST_F(FramePair, TruncatedHeaderReadsAsTruncated) {
  const char partial[2] = {0, 0};
  ASSERT_EQ(::send(a(), partial, sizeof(partial), 0), 2);
  CloseA();
  std::string payload;
  EXPECT_EQ(ReadFrame(b(), &payload), FrameStatus::kTruncated);
}

TEST_F(FramePair, TruncatedPayloadReadsAsTruncated) {
  // Header promises 100 bytes; only 10 arrive before the peer dies.
  const unsigned char header[4] = {0, 0, 0, 100};
  ASSERT_EQ(::send(a(), header, sizeof(header), 0), 4);
  ASSERT_EQ(::send(a(), "0123456789", 10, 0), 10);
  CloseA();
  std::string payload;
  EXPECT_EQ(ReadFrame(b(), &payload), FrameStatus::kTruncated);
}

TEST_F(FramePair, OversizedHeaderReadsAsOversized) {
  const unsigned char header[4] = {0xff, 0xff, 0xff, 0xff};
  ASSERT_EQ(::send(a(), header, sizeof(header), 0), 4);
  std::string payload;
  EXPECT_EQ(ReadFrame(b(), &payload), FrameStatus::kOversized);
  EXPECT_TRUE(payload.empty());
}

TEST_F(FramePair, WriterRefusesOversizedPayloads) {
  std::string huge(kMaxFrameBytes + 1, 'x');
  EXPECT_FALSE(WriteFrame(a(), huge));
}

// ---------------------------------------------------------------------------
// Codec.

TEST(ProtocolCodec, RequestRoundTrips) {
  ServiceRequest request;
  request.command = "result";
  request.id = "s42";
  request.warm_start = false;
  ServiceRequest decoded;
  std::string error;
  ASSERT_TRUE(DecodeRequest(EncodeRequest(request), &decoded, &error)) << error;
  EXPECT_EQ(decoded.command, "result");
  EXPECT_EQ(decoded.id, "s42");
  EXPECT_FALSE(decoded.warm_start);
}

TEST(ProtocolCodec, RejectsGarbageAndUnknownCommands) {
  ServiceRequest decoded;
  std::string error;
  EXPECT_FALSE(DecodeRequest("{{{{ not yaml %%%", &decoded, &error));
  EXPECT_FALSE(DecodeRequest("just a scalar", &decoded, &error));
  EXPECT_FALSE(DecodeRequest("command: exfiltrate\n", &decoded, &error));
  EXPECT_NE(error.find("unknown command"), std::string::npos);
  EXPECT_FALSE(DecodeRequest("id: s1\n", &decoded, &error));     // No command.
  EXPECT_FALSE(DecodeRequest("command: pause\n", &decoded, &error));  // Needs id.
}

TEST(ProtocolCodec, ResponseRoundTripsSessionsAndQuoting) {
  ServiceResponse response;
  response.ok = true;
  SessionStatus status;
  status.id = "s7";
  status.name = "job: with colons #and hash";  // Exercises the quoter.
  status.algorithm = "deeptune";
  status.state = "running";
  status.trials = 12;
  status.iterations = 250;
  status.has_best = true;
  status.best = 1234.5;
  status.sim_seconds = 99.25;
  status.warm_started = 30;
  status.store_key = "nginx-00ff";
  response.sessions.push_back(status);
  status.id = "s8";
  status.has_best = false;
  status.error = "space mismatch: expected 298";
  response.sessions.push_back(status);

  ServiceResponse decoded;
  std::string error;
  ASSERT_TRUE(DecodeResponse(EncodeResponse(response), &decoded, &error)) << error;
  ASSERT_EQ(decoded.sessions.size(), 2u);
  EXPECT_EQ(decoded.sessions[0].name, "job: with colons #and hash");
  EXPECT_EQ(decoded.sessions[0].trials, 12u);
  EXPECT_TRUE(decoded.sessions[0].has_best);
  EXPECT_EQ(decoded.sessions[0].best, 1234.5);
  EXPECT_EQ(decoded.sessions[0].warm_started, 30u);
  EXPECT_FALSE(decoded.sessions[1].has_best);
  EXPECT_EQ(decoded.sessions[1].error, "space mismatch: expected 298");
}

TEST(ProtocolCodec, ErrorResponseRoundTrips) {
  ServiceResponse response;
  response.error = "unknown session: s9";
  ServiceResponse decoded;
  std::string error;
  ASSERT_TRUE(DecodeResponse(EncodeResponse(response), &decoded, &error)) << error;
  EXPECT_FALSE(decoded.ok);
  EXPECT_EQ(decoded.error, "unknown session: s9");
}

// ---------------------------------------------------------------------------
// Daemon hardening: nothing a client does may crash or wedge wfd.

class WfdHardeningTest : public ::testing::Test {
 protected:
  void SetUp() override {
    socket_path_ = TempPath("wf_protocol_wfd.sock");
    WfdOptions options;
    options.socket_path = socket_path_;
    options.poll_ms = 10;
    server_ = std::make_unique<WfdServer>(options);
    ASSERT_TRUE(server_->Start()) << server_->error();
    serve_thread_ = std::thread([this] { server_->Serve(); });
  }

  void TearDown() override {
    // The daemon must still be healthy enough to stop cleanly.
    ServiceCallResult stop = StopDaemon(socket_path_);
    EXPECT_TRUE(stop.ok) << stop.error;
    serve_thread_.join();
  }

  // The liveness probe every abuse case ends with.
  void ExpectDaemonAlive() {
    ServiceRequest ping;
    ping.command = "ping";
    ServiceCallResult result = CallService(socket_path_, ping);
    EXPECT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.response.state, "alive");
  }

  std::string socket_path_;
  std::unique_ptr<WfdServer> server_;
  std::thread serve_thread_;
};

TEST_F(WfdHardeningTest, SurvivesNonYamlPayload) {
  UnixConn conn = ConnectUnix(socket_path_);
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(WriteFrame(conn.fd(), "\x01\x02 binary garbage \xff\xfe"));
  std::string reply;
  ASSERT_EQ(ReadFrame(conn.fd(), &reply), FrameStatus::kOk);
  ServiceResponse response;
  std::string error;
  ASSERT_TRUE(DecodeResponse(reply, &response, &error)) << error;
  EXPECT_FALSE(response.ok);
  conn.Close();
  ExpectDaemonAlive();
}

TEST_F(WfdHardeningTest, SurvivesUnknownCommand) {
  UnixConn conn = ConnectUnix(socket_path_);
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(WriteFrame(conn.fd(), "command: make-coffee\n"));
  std::string reply;
  ASSERT_EQ(ReadFrame(conn.fd(), &reply), FrameStatus::kOk);
  ServiceResponse response;
  std::string error;
  ASSERT_TRUE(DecodeResponse(reply, &response, &error)) << error;
  EXPECT_FALSE(response.ok);
  EXPECT_NE(response.error.find("unknown command"), std::string::npos);
  conn.Close();
  ExpectDaemonAlive();
}

TEST_F(WfdHardeningTest, SurvivesOversizedFrameHeader) {
  UnixConn conn = ConnectUnix(socket_path_);
  ASSERT_TRUE(conn.ok());
  const unsigned char header[4] = {0x7f, 0xff, 0xff, 0xff};
  ASSERT_EQ(::send(conn.fd(), header, sizeof(header), MSG_NOSIGNAL), 4);
  std::string reply;
  ASSERT_EQ(ReadFrame(conn.fd(), &reply), FrameStatus::kOk);  // Courtesy error.
  conn.Close();
  ExpectDaemonAlive();
}

TEST_F(WfdHardeningTest, SurvivesMidFrameDisconnects) {
  // Vanish at every interesting point: mid-header, mid-payload, and between
  // a submit header and its job frame.
  {
    UnixConn conn = ConnectUnix(socket_path_);
    ASSERT_TRUE(conn.ok());
    const char partial[2] = {0, 0};
    ::send(conn.fd(), partial, sizeof(partial), MSG_NOSIGNAL);
  }
  {
    UnixConn conn = ConnectUnix(socket_path_);
    ASSERT_TRUE(conn.ok());
    const unsigned char header[4] = {0, 0, 0, 50};
    ::send(conn.fd(), header, sizeof(header), MSG_NOSIGNAL);
    ::send(conn.fd(), "short", 5, MSG_NOSIGNAL);
  }
  {
    UnixConn conn = ConnectUnix(socket_path_);
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(WriteFrame(conn.fd(), "command: submit\n"));
    // No job frame: hang up instead.
  }
  ExpectDaemonAlive();
  // The aborted submit must not have created a session.
  ServiceCallResult status = QueryStatus(socket_path_);
  ASSERT_TRUE(status.ok) << status.error;
  EXPECT_TRUE(status.response.sessions.empty());
}

TEST_F(WfdHardeningTest, SurvivesBadJobFileAndKeepsServing) {
  ServiceCallResult bad = SubmitJob(socket_path_, "os: not-a-real-os\n");
  EXPECT_FALSE(bad.ok);
  EXPECT_FALSE(bad.error.empty());
  ExpectDaemonAlive();
}

TEST(WfdIdleTimeout, SilentClientCannotWedgeTheDaemon) {
  // Connections are handled inline on the accept thread: a client that
  // connects and sends nothing must be dropped after idle_timeout_ms so
  // later clients get served.
  WfdOptions options;
  options.socket_path = TempPath("wf_protocol_idle.sock");
  options.poll_ms = 10;
  options.idle_timeout_ms = 100;
  WfdServer server(options);
  ASSERT_TRUE(server.Start()) << server.error();
  std::thread serve([&] { server.Serve(); });

  UnixConn silent = ConnectUnix(options.socket_path);
  ASSERT_TRUE(silent.ok());
  // Say nothing. The daemon must time the connection out and move on.
  ServiceRequest ping;
  ping.command = "ping";
  ServiceCallResult result = CallService(options.socket_path, ping);
  EXPECT_TRUE(result.ok) << result.error;
  // The silent connection was dropped, not left half-open.
  std::string reply;
  EXPECT_NE(ReadFrame(silent.fd(), &reply), FrameStatus::kOk);

  ServiceCallResult stop = StopDaemon(options.socket_path);
  EXPECT_TRUE(stop.ok) << stop.error;
  serve.join();
}

TEST_F(WfdHardeningTest, UnknownSessionQueriesError) {
  ServiceCallResult status = QueryStatus(socket_path_, "s999");
  EXPECT_FALSE(status.ok);
  ServiceCallResult result = FetchResult(socket_path_, "s999");
  EXPECT_FALSE(result.ok);
  ExpectDaemonAlive();
}

}  // namespace
}  // namespace wayfinder
