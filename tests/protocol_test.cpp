// Wire-protocol hardening tests: the framing layer (length-prefixed frames
// over Unix sockets), the YAML request/response codec, and — the satellite's
// pin — a live wfd daemon that survives malformed, truncated, and oversized
// frames, unknown commands, and clients vanishing mid-exchange without
// crashing or wedging. Runs under ASan and TSan in CI.
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/service/binary_codec.h"
#include "src/service/client.h"
#include "src/service/protocol.h"
#include "src/service/wfd.h"
#include "src/util/socket.h"

namespace wayfinder {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// ---------------------------------------------------------------------------
// Framing.

class FramePair : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
  }
  void TearDown() override {
    CloseA();
    CloseB();
  }
  void CloseA() {
    if (fds_[0] >= 0) {
      ::close(fds_[0]);
      fds_[0] = -1;
    }
  }
  void CloseB() {
    if (fds_[1] >= 0) {
      ::close(fds_[1]);
      fds_[1] = -1;
    }
  }
  int a() const { return fds_[0]; }
  int b() const { return fds_[1]; }

 private:
  int fds_[2] = {-1, -1};
};

TEST_F(FramePair, RoundTripsPayloads) {
  for (const std::string payload : {std::string(""), std::string("hello"),
                                    std::string(100000, 'x')}) {
    ASSERT_TRUE(WriteFrame(a(), payload));
    std::string read_back;
    ASSERT_EQ(ReadFrame(b(), &read_back), FrameStatus::kOk);
    EXPECT_EQ(read_back, payload);
  }
}

TEST_F(FramePair, BackToBackFramesStayDelimited) {
  ASSERT_TRUE(WriteFrame(a(), "first"));
  ASSERT_TRUE(WriteFrame(a(), "second"));
  std::string payload;
  ASSERT_EQ(ReadFrame(b(), &payload), FrameStatus::kOk);
  EXPECT_EQ(payload, "first");
  ASSERT_EQ(ReadFrame(b(), &payload), FrameStatus::kOk);
  EXPECT_EQ(payload, "second");
}

TEST_F(FramePair, CleanEofReadsAsClosed) {
  CloseA();
  std::string payload;
  EXPECT_EQ(ReadFrame(b(), &payload), FrameStatus::kClosed);
}

TEST_F(FramePair, TruncatedHeaderReadsAsTruncated) {
  const char partial[2] = {0, 0};
  ASSERT_EQ(::send(a(), partial, sizeof(partial), 0), 2);
  CloseA();
  std::string payload;
  EXPECT_EQ(ReadFrame(b(), &payload), FrameStatus::kTruncated);
}

TEST_F(FramePair, TruncatedPayloadReadsAsTruncated) {
  // Header promises 100 bytes; only 10 arrive before the peer dies.
  const unsigned char header[4] = {0, 0, 0, 100};
  ASSERT_EQ(::send(a(), header, sizeof(header), 0), 4);
  ASSERT_EQ(::send(a(), "0123456789", 10, 0), 10);
  CloseA();
  std::string payload;
  EXPECT_EQ(ReadFrame(b(), &payload), FrameStatus::kTruncated);
}

TEST_F(FramePair, OversizedHeaderReadsAsOversized) {
  const unsigned char header[4] = {0xff, 0xff, 0xff, 0xff};
  ASSERT_EQ(::send(a(), header, sizeof(header), 0), 4);
  std::string payload;
  EXPECT_EQ(ReadFrame(b(), &payload), FrameStatus::kOversized);
  EXPECT_TRUE(payload.empty());
}

TEST_F(FramePair, WriterRefusesOversizedPayloads) {
  std::string huge(kMaxFrameBytes + 1, 'x');
  EXPECT_FALSE(WriteFrame(a(), huge));
}

// ---------------------------------------------------------------------------
// Codec.

TEST(ProtocolCodec, RequestRoundTrips) {
  ServiceRequest request;
  request.command = "result";
  request.id = "s42";
  request.warm_start = false;
  ServiceRequest decoded;
  std::string error;
  ASSERT_TRUE(DecodeRequest(EncodeRequest(request), &decoded, &error)) << error;
  EXPECT_EQ(decoded.command, "result");
  EXPECT_EQ(decoded.id, "s42");
  EXPECT_FALSE(decoded.warm_start);
}

TEST(ProtocolCodec, RejectsGarbageAndUnknownCommands) {
  ServiceRequest decoded;
  std::string error;
  EXPECT_FALSE(DecodeRequest("{{{{ not yaml %%%", &decoded, &error));
  EXPECT_FALSE(DecodeRequest("just a scalar", &decoded, &error));
  EXPECT_FALSE(DecodeRequest("command: exfiltrate\n", &decoded, &error));
  EXPECT_NE(error.find("unknown command"), std::string::npos);
  EXPECT_FALSE(DecodeRequest("id: s1\n", &decoded, &error));     // No command.
  EXPECT_FALSE(DecodeRequest("command: pause\n", &decoded, &error));  // Needs id.
}

TEST(ProtocolCodec, ObservabilityCommandsValidate) {
  ServiceRequest decoded;
  std::string error;
  // metrics is fleet-scoped: no id required.
  ASSERT_TRUE(DecodeRequest("command: metrics\n", &decoded, &error)) << error;
  EXPECT_EQ(decoded.command, "metrics");
  // trace is session-scoped: id required, carried through.
  EXPECT_FALSE(DecodeRequest("command: trace\n", &decoded, &error));
  EXPECT_NE(error.find("requires an id"), std::string::npos);
  ASSERT_TRUE(DecodeRequest("command: trace\nid: s7\n", &decoded, &error)) << error;
  EXPECT_EQ(decoded.command, "trace");
  EXPECT_EQ(decoded.id, "s7");
  // The binary codec shares ValidateRequest, so it agrees on both.
  ServiceRequest trace_no_id;
  trace_no_id.command = "trace";
  EXPECT_FALSE(DecodeRequestBinary(EncodeRequestBinary(trace_no_id), &decoded, &error));
  ServiceRequest metrics;
  metrics.command = "metrics";
  ASSERT_TRUE(DecodeRequestBinary(EncodeRequestBinary(metrics), &decoded, &error))
      << error;
  EXPECT_EQ(decoded.command, "metrics");
}

TEST(ProtocolCodec, ResponseRoundTripsSessionsAndQuoting) {
  ServiceResponse response;
  response.ok = true;
  SessionStatus status;
  status.id = "s7";
  status.name = "job: with colons #and hash";  // Exercises the quoter.
  status.algorithm = "deeptune";
  status.state = "running";
  status.trials = 12;
  status.iterations = 250;
  status.has_best = true;
  status.best = 1234.5;
  status.sim_seconds = 99.25;
  status.warm_started = 30;
  status.store_key = "nginx-00ff";
  response.sessions.push_back(status);
  status.id = "s8";
  status.has_best = false;
  status.error = "space mismatch: expected 298";
  response.sessions.push_back(status);

  ServiceResponse decoded;
  std::string error;
  ASSERT_TRUE(DecodeResponse(EncodeResponse(response), &decoded, &error)) << error;
  ASSERT_EQ(decoded.sessions.size(), 2u);
  EXPECT_EQ(decoded.sessions[0].name, "job: with colons #and hash");
  EXPECT_EQ(decoded.sessions[0].trials, 12u);
  EXPECT_TRUE(decoded.sessions[0].has_best);
  EXPECT_EQ(decoded.sessions[0].best, 1234.5);
  EXPECT_EQ(decoded.sessions[0].warm_started, 30u);
  EXPECT_FALSE(decoded.sessions[1].has_best);
  EXPECT_EQ(decoded.sessions[1].error, "space mismatch: expected 298");
}

TEST(ProtocolCodec, ErrorResponseRoundTrips) {
  ServiceResponse response;
  response.error = "unknown session: s9";
  ServiceResponse decoded;
  std::string error;
  ASSERT_TRUE(DecodeResponse(EncodeResponse(response), &decoded, &error)) << error;
  EXPECT_FALSE(decoded.ok);
  EXPECT_EQ(decoded.error, "unknown session: s9");
}

// ---------------------------------------------------------------------------
// Binary TLV codec: round trips, semantic equivalence with YAML, fuzz.

// Field-by-field equality — the shape both codecs must agree on.
void ExpectSameStatus(const SessionStatus& a, const SessionStatus& b) {
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.algorithm, b.algorithm);
  EXPECT_EQ(a.state, b.state);
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.has_best, b.has_best);
  if (a.has_best && b.has_best) {
    EXPECT_EQ(a.best, b.best);
  }
  EXPECT_EQ(a.sim_seconds, b.sim_seconds);
  EXPECT_EQ(a.warm_started, b.warm_started);
  EXPECT_EQ(a.recovered, b.recovered);
  EXPECT_EQ(a.version, b.version);
  EXPECT_EQ(a.store_key, b.store_key);
  EXPECT_EQ(a.error, b.error);
}

void ExpectSameResponse(const ServiceResponse& a, const ServiceResponse& b) {
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.error, b.error);
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.state, b.state);
  EXPECT_EQ(a.note, b.note);
  EXPECT_EQ(a.has_payload, b.has_payload);
  ASSERT_EQ(a.sessions.size(), b.sessions.size());
  for (size_t i = 0; i < a.sessions.size(); ++i) {
    ExpectSameStatus(a.sessions[i], b.sessions[i]);
  }
}

SessionStatus MakeStatus(const char* id, bool has_best, const char* error_text) {
  SessionStatus status;
  status.id = id;
  status.name = "warm-run";
  status.algorithm = "deeptune";
  status.state = "running";
  status.trials = 37;
  status.iterations = 250;
  status.has_best = has_best;
  status.best = has_best ? 1234.0625 : 0.0;
  status.sim_seconds = 8871.5;
  status.warm_started = 12;
  status.recovered = has_best;  // Exercise both presence states.
  status.version = has_best ? 41u : 0u;
  status.store_key = "nginx-00ffaa11";
  status.error = error_text;
  return status;
}

TEST(BinaryCodec, RequestRoundTrips) {
  ServiceRequest request;
  request.command = "result";
  request.id = "s42";
  request.warm_start = false;
  ServiceRequest decoded;
  std::string error;
  ASSERT_TRUE(DecodeRequestBinary(EncodeRequestBinary(request), &decoded, &error))
      << error;
  EXPECT_EQ(decoded.command, "result");
  EXPECT_EQ(decoded.id, "s42");
  EXPECT_FALSE(decoded.warm_start);
  // Defaults mirror the YAML codec: absent tag == absent key.
  request = ServiceRequest();
  request.command = "ping";
  ASSERT_TRUE(DecodeRequestBinary(EncodeRequestBinary(request), &decoded, &error))
      << error;
  EXPECT_EQ(decoded.command, "ping");
  EXPECT_TRUE(decoded.id.empty());
  EXPECT_TRUE(decoded.warm_start);
}

TEST(BinaryCodec, ResponseRoundTripsSessions) {
  ServiceResponse response;
  response.ok = true;
  response.id = "s7";
  response.state = "watching";
  response.sessions.push_back(MakeStatus("s7", true, ""));
  response.sessions.push_back(MakeStatus("s8", false, "step failed: boot crash"));
  ServiceResponse decoded;
  std::string error;
  ASSERT_TRUE(DecodeResponseBinary(EncodeResponseBinary(response), &decoded, &error))
      << error;
  ExpectSameResponse(response, decoded);
}

// The acceptance pin: every message shape decodes identically through the
// YAML path and the binary path (absent key == absent tag, same defaults,
// same validation). Strings stay within what the YAML quoter passes
// through — the protocol never legitimately carries quotes or newlines.
TEST(BinaryCodec, SemanticallyEquivalentToYaml) {
  std::vector<ServiceRequest> requests;
  ServiceRequest request;
  request.command = "ping";
  requests.push_back(request);
  request = ServiceRequest();
  request.command = "submit";
  request.warm_start = false;
  requests.push_back(request);
  request = ServiceRequest();
  request.command = "status";
  request.id = "s3";
  requests.push_back(request);
  request = ServiceRequest();
  request.command = "watch";
  request.id = "s12";
  requests.push_back(request);
  request = ServiceRequest();
  request.command = "watch";  // A reconnecting watcher carrying its cursor.
  request.id = "s12";
  request.since_version = 77;
  requests.push_back(request);
  for (const ServiceRequest& message : requests) {
    ServiceRequest from_yaml;
    ServiceRequest from_binary;
    std::string error;
    ASSERT_TRUE(DecodeRequest(EncodeRequest(message), &from_yaml, &error)) << error;
    ASSERT_TRUE(DecodeRequestBinary(EncodeRequestBinary(message), &from_binary, &error))
        << error;
    EXPECT_EQ(from_yaml.command, from_binary.command);
    EXPECT_EQ(from_yaml.id, from_binary.id);
    EXPECT_EQ(from_yaml.warm_start, from_binary.warm_start);
    EXPECT_EQ(from_yaml.since_version, from_binary.since_version);
    EXPECT_EQ(from_yaml.since_version, message.since_version);
  }

  std::vector<ServiceResponse> responses;
  ServiceResponse response;
  response.ok = true;
  response.state = "alive";
  responses.push_back(response);
  response = ServiceResponse();
  response.error = "unknown session: s9";
  responses.push_back(response);
  response = ServiceResponse();
  response.ok = true;
  response.has_payload = true;
  responses.push_back(response);
  response = ServiceResponse();
  response.ok = true;
  response.state = "alive";  // Degraded-journal ping: advisory note rides along.
  response.note = "journal degraded: append failed: No space left on device";
  responses.push_back(response);
  response = ServiceResponse();
  response.ok = true;
  response.state = "push";
  response.sessions.push_back(MakeStatus("s1", true, ""));
  response.sessions.push_back(MakeStatus("s2", false, "space mismatch: expected 298"));
  responses.push_back(response);
  for (const ServiceResponse& message : responses) {
    ServiceResponse from_yaml;
    ServiceResponse from_binary;
    std::string error;
    ASSERT_TRUE(DecodeResponse(EncodeResponse(message), &from_yaml, &error)) << error;
    ASSERT_TRUE(
        DecodeResponseBinary(EncodeResponseBinary(message), &from_binary, &error))
        << error;
    ExpectSameResponse(from_yaml, from_binary);
  }
}

// Both codecs reject the same invalid requests (shared ValidateRequest).
TEST(BinaryCodec, ValidationMatchesYaml) {
  ServiceRequest bad;
  bad.command = "exfiltrate";
  ServiceRequest decoded;
  std::string error;
  EXPECT_FALSE(DecodeRequestBinary(EncodeRequestBinary(bad), &decoded, &error));
  EXPECT_NE(error.find("unknown command"), std::string::npos);
  bad.command = "pause";  // Needs an id.
  bad.id.clear();
  EXPECT_FALSE(DecodeRequestBinary(EncodeRequestBinary(bad), &decoded, &error));
  EXPECT_NE(error.find("requires an id"), std::string::npos);
}

// Deterministic fuzz: truncations at EVERY byte length of valid messages,
// plus pseudo-random garbage. The decoders may reject, never crash or read
// out of bounds (ASan-pinned in CI).
TEST(BinaryCodec, SurvivesTruncationAndGarbage) {
  ServiceResponse response;
  response.ok = true;
  response.sessions.push_back(MakeStatus("s1", true, "err"));
  std::string encoded_response = EncodeResponseBinary(response);
  ServiceRequest request;
  request.command = "submit";
  request.id = "s1";
  request.warm_start = false;
  std::string encoded_request = EncodeRequestBinary(request);

  std::string error;
  for (size_t n = 0; n < encoded_response.size(); ++n) {
    ServiceResponse decoded;
    DecodeResponseBinary(encoded_response.substr(0, n), &decoded, &error);
  }
  for (size_t n = 0; n < encoded_request.size(); ++n) {
    ServiceRequest decoded;
    DecodeRequestBinary(encoded_request.substr(0, n), &decoded, &error);
  }

  // xorshift garbage, fixed seed: reproducible, and length-prefix fields
  // inside get arbitrary (often huge) values the reader must bound-check.
  uint64_t state = 0x9e3779b97f4a7c15ULL;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return static_cast<char>(state);
  };
  for (int round = 0; round < 200; ++round) {
    std::string garbage(1 + (round % 97), '\0');
    for (char& c : garbage) {
      c = next();
    }
    ServiceRequest decoded_request;
    ServiceResponse decoded_response;
    DecodeRequestBinary(garbage, &decoded_request, &error);
    DecodeResponseBinary(garbage, &decoded_response, &error);
    DecodeRequest(garbage, &decoded_request, &error);   // YAML path too.
    DecodeResponse(garbage, &decoded_response, &error);
    // Flipping one byte of a valid message must also never crash.
    std::string mutated = encoded_response;
    mutated[static_cast<size_t>(round * 13) % mutated.size()] = next();
    DecodeResponseBinary(mutated, &decoded_response, &error);
  }
}

// ---------------------------------------------------------------------------
// Daemon hardening: nothing a client does may crash or wedge wfd.

class WfdHardeningTest : public ::testing::Test {
 protected:
  void SetUp() override {
    socket_path_ = TempPath("wf_protocol_wfd.sock");
    WfdOptions options;
    options.socket_path = socket_path_;
    options.poll_ms = 10;
    server_ = std::make_unique<WfdServer>(options);
    ASSERT_TRUE(server_->Start()) << server_->error();
    serve_thread_ = std::thread([this] { server_->Serve(); });
  }

  void TearDown() override {
    // The daemon must still be healthy enough to stop cleanly.
    ServiceCallResult stop = StopDaemon(socket_path_);
    EXPECT_TRUE(stop.ok) << stop.error;
    serve_thread_.join();
  }

  // The liveness probe every abuse case ends with.
  void ExpectDaemonAlive() {
    ServiceRequest ping;
    ping.command = "ping";
    ServiceCallResult result = CallService(socket_path_, ping);
    EXPECT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.response.state, "alive");
  }

  std::string socket_path_;
  std::unique_ptr<WfdServer> server_;
  std::thread serve_thread_;
};

TEST_F(WfdHardeningTest, SurvivesNonYamlPayload) {
  UnixConn conn = ConnectUnix(socket_path_);
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(WriteFrame(conn.fd(), "\x01\x02 binary garbage \xff\xfe"));
  std::string reply;
  ASSERT_EQ(ReadFrame(conn.fd(), &reply), FrameStatus::kOk);
  ServiceResponse response;
  std::string error;
  ASSERT_TRUE(DecodeResponse(reply, &response, &error)) << error;
  EXPECT_FALSE(response.ok);
  conn.Close();
  ExpectDaemonAlive();
}

TEST_F(WfdHardeningTest, SurvivesUnknownCommand) {
  UnixConn conn = ConnectUnix(socket_path_);
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(WriteFrame(conn.fd(), "command: make-coffee\n"));
  std::string reply;
  ASSERT_EQ(ReadFrame(conn.fd(), &reply), FrameStatus::kOk);
  ServiceResponse response;
  std::string error;
  ASSERT_TRUE(DecodeResponse(reply, &response, &error)) << error;
  EXPECT_FALSE(response.ok);
  EXPECT_NE(response.error.find("unknown command"), std::string::npos);
  conn.Close();
  ExpectDaemonAlive();
}

TEST_F(WfdHardeningTest, SurvivesOversizedFrameHeader) {
  UnixConn conn = ConnectUnix(socket_path_);
  ASSERT_TRUE(conn.ok());
  const unsigned char header[4] = {0x7f, 0xff, 0xff, 0xff};
  ASSERT_EQ(::send(conn.fd(), header, sizeof(header), MSG_NOSIGNAL), 4);
  std::string reply;
  ASSERT_EQ(ReadFrame(conn.fd(), &reply), FrameStatus::kOk);  // Courtesy error.
  conn.Close();
  ExpectDaemonAlive();
}

TEST_F(WfdHardeningTest, SurvivesMidFrameDisconnects) {
  // Vanish at every interesting point: mid-header, mid-payload, and between
  // a submit header and its job frame.
  {
    UnixConn conn = ConnectUnix(socket_path_);
    ASSERT_TRUE(conn.ok());
    const char partial[2] = {0, 0};
    ::send(conn.fd(), partial, sizeof(partial), MSG_NOSIGNAL);
  }
  {
    UnixConn conn = ConnectUnix(socket_path_);
    ASSERT_TRUE(conn.ok());
    const unsigned char header[4] = {0, 0, 0, 50};
    ::send(conn.fd(), header, sizeof(header), MSG_NOSIGNAL);
    ::send(conn.fd(), "short", 5, MSG_NOSIGNAL);
  }
  {
    UnixConn conn = ConnectUnix(socket_path_);
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(WriteFrame(conn.fd(), "command: submit\n"));
    // No job frame: hang up instead.
  }
  ExpectDaemonAlive();
  // The aborted submit must not have created a session.
  ServiceCallResult status = QueryStatus(socket_path_);
  ASSERT_TRUE(status.ok) << status.error;
  EXPECT_TRUE(status.response.sessions.empty());
}

TEST_F(WfdHardeningTest, SurvivesBadJobFileAndKeepsServing) {
  ServiceCallResult bad = SubmitJob(socket_path_, "os: not-a-real-os\n");
  EXPECT_FALSE(bad.ok);
  EXPECT_FALSE(bad.error.empty());
  ExpectDaemonAlive();
}

TEST(WfdIdleTimeout, SilentClientCannotWedgeTheDaemon) {
  // Connections are handled inline on the accept thread: a client that
  // connects and sends nothing must be dropped after idle_timeout_ms so
  // later clients get served.
  WfdOptions options;
  options.socket_path = TempPath("wf_protocol_idle.sock");
  options.poll_ms = 10;
  options.idle_timeout_ms = 100;
  WfdServer server(options);
  ASSERT_TRUE(server.Start()) << server.error();
  std::thread serve([&] { server.Serve(); });

  UnixConn silent = ConnectUnix(options.socket_path);
  ASSERT_TRUE(silent.ok());
  // Say nothing. The daemon must time the connection out and move on.
  ServiceRequest ping;
  ping.command = "ping";
  ServiceCallResult result = CallService(options.socket_path, ping);
  EXPECT_TRUE(result.ok) << result.error;
  // The silent connection was dropped, not left half-open.
  std::string reply;
  EXPECT_NE(ReadFrame(silent.fd(), &reply), FrameStatus::kOk);

  ServiceCallResult stop = StopDaemon(options.socket_path);
  EXPECT_TRUE(stop.ok) << stop.error;
  serve.join();
}

TEST_F(WfdHardeningTest, UnknownSessionQueriesError) {
  ServiceCallResult status = QueryStatus(socket_path_, "s999");
  EXPECT_FALSE(status.ok);
  ServiceCallResult result = FetchResult(socket_path_, "s999");
  EXPECT_FALSE(result.ok);
  ExpectDaemonAlive();
}

// ---------------------------------------------------------------------------
// Hello negotiation and the binary path against a live daemon.

TEST_F(WfdHardeningTest, NegotiatesBinaryAndServesRequests) {
  UnixConn conn = ConnectUnix(socket_path_);
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(WriteFrame(conn.fd(), std::string(kBinaryHello, 4)));
  std::string ack;
  ASSERT_EQ(ReadFrame(conn.fd(), &ack), FrameStatus::kOk);
  EXPECT_TRUE(IsBinaryHello(ack));
  // Everything after the ack speaks TLV, multiple requests per connection.
  for (int i = 0; i < 3; ++i) {
    ServiceRequest ping;
    ping.command = "ping";
    ASSERT_TRUE(WriteFrame(conn.fd(), EncodeRequestBinary(ping)));
    std::string reply;
    ASSERT_EQ(ReadFrame(conn.fd(), &reply), FrameStatus::kOk);
    ServiceResponse response;
    std::string error;
    ASSERT_TRUE(DecodeResponseBinary(reply, &response, &error)) << error;
    EXPECT_TRUE(response.ok);
    EXPECT_EQ(response.state, "alive");
  }
  conn.Close();
  ExpectDaemonAlive();
}

TEST_F(WfdHardeningTest, UnknownHelloVersionDowngradesToYaml) {
  UnixConn conn = ConnectUnix(socket_path_);
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(WriteFrame(conn.fd(), "WFB9"));  // A version we do not speak.
  std::string reply;
  ASSERT_EQ(ReadFrame(conn.fd(), &reply), FrameStatus::kOk);
  EXPECT_FALSE(IsBinaryHello(reply));  // Not an ack: a YAML error response.
  ServiceResponse response;
  std::string error;
  ASSERT_TRUE(DecodeResponse(reply, &response, &error)) << error;
  EXPECT_FALSE(response.ok);
  // The SAME connection keeps serving, in YAML.
  ServiceRequest ping;
  ping.command = "ping";
  ASSERT_TRUE(WriteFrame(conn.fd(), EncodeRequest(ping)));
  ASSERT_EQ(ReadFrame(conn.fd(), &reply), FrameStatus::kOk);
  ASSERT_TRUE(DecodeResponse(reply, &response, &error)) << error;
  EXPECT_TRUE(response.ok);
  EXPECT_EQ(response.state, "alive");
  conn.Close();
  ExpectDaemonAlive();
}

TEST_F(WfdHardeningTest, ClientAutoFallsBackFromBinary) {
  // ServiceConnection(binary) against a daemon that speaks it: binary mode.
  ServiceConnection conn;
  std::string error;
  ASSERT_TRUE(conn.Connect(socket_path_, /*binary=*/true, &error)) << error;
  EXPECT_TRUE(conn.binary());
  ServiceRequest ping;
  ping.command = "ping";
  ServiceCallResult result = conn.Call(ping);
  EXPECT_TRUE(result.ok) << result.error;
  conn.Close();
  ExpectDaemonAlive();
}

TEST_F(WfdHardeningTest, SurvivesBinaryGarbageAfterNegotiation) {
  // Truncated TLV and garbage on a NEGOTIATED connection: the daemon must
  // answer an error (the frame is intact, just semantically bad) or drop,
  // and stay alive either way.
  ServiceRequest request;
  request.command = "status";
  std::string valid = EncodeRequestBinary(request);
  for (size_t cut : {size_t(1), valid.size() / 2, valid.size() - 1}) {
    UnixConn conn = ConnectUnix(socket_path_);
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(WriteFrame(conn.fd(), std::string(kBinaryHello, 4)));
    std::string ack;
    ASSERT_EQ(ReadFrame(conn.fd(), &ack), FrameStatus::kOk);
    ASSERT_TRUE(WriteFrame(conn.fd(), valid.substr(0, cut)));
    std::string reply;
    if (ReadFrame(conn.fd(), &reply) == FrameStatus::kOk) {
      ServiceResponse response;
      std::string error;
      ASSERT_TRUE(DecodeResponseBinary(reply, &response, &error)) << error;
      EXPECT_FALSE(response.ok);
    }
  }
  ExpectDaemonAlive();
}

// ---------------------------------------------------------------------------
// Watch subscribers vanishing mid-stream.

TEST_F(WfdHardeningTest, WatchOnUnknownSessionErrors) {
  ServiceConnection conn;
  std::string error;
  ASSERT_TRUE(conn.Connect(socket_path_, false, &error)) << error;
  ServiceRequest watch;
  watch.command = "watch";
  watch.id = "s404";
  ServiceCallResult result = conn.Call(watch);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("unknown session"), std::string::npos);
  conn.Close();
  ExpectDaemonAlive();
}

TEST_F(WfdHardeningTest, SurvivesWatcherDisconnectMidPush) {
  // A real session committing waves, a subscriber that hangs up right after
  // the ack: the daemon must clean up the subscription (the observer posts
  // into a dead connection id, which must be a no-op) and keep serving.
  std::string job;
  job += "name: watch-abort\n";
  job += "os: linux\n";
  job += "application: nginx\n";
  job += "metric: performance\n";
  job += "budget:\n  iterations: 40\n";
  job += "search:\n  algorithm: random\n  seed: 11\n";
  ServiceCallResult submit = SubmitJob(socket_path_, job);
  ASSERT_TRUE(submit.ok) << submit.error;
  const std::string id = submit.response.id;

  {
    ServiceConnection watcher;
    std::string error;
    ASSERT_TRUE(watcher.Connect(socket_path_, false, &error)) << error;
    ServiceRequest watch;
    watch.command = "watch";
    watch.id = id;
    ServiceCallResult ack = watcher.Call(watch);
    ASSERT_TRUE(ack.ok) << ack.error;
    EXPECT_EQ(ack.response.state, "watching");
    watcher.Close();  // Vanish while the session is still pushing.
  }

  // The session must still run to completion under a live daemon.
  for (int i = 0; i < 200; ++i) {
    ServiceCallResult status = QueryStatus(socket_path_, id);
    ASSERT_TRUE(status.ok) << status.error;
    ASSERT_EQ(status.response.sessions.size(), 1u);
    if (status.response.sessions[0].state == "done") {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  ExpectDaemonAlive();
}

}  // namespace
}  // namespace wayfinder
