// Tests for the runtime-dispatched SIMD kernel backend (src/nn/kernels.h):
// primitive-level and matrix-level equivalence between the portable and AVX2
// backends, bit-identical threaded Adam, and the end-to-end invariant the
// design buys — a fixed-seed DeepTune search trajectory is unchanged by the
// backend choice.
//
// The backends are built to be *bit-identical* (same expression trees, same
// lane-structured reductions, FMA contraction off), so these tests assert
// exact equality — stronger than the 1e-12 the design requires. On hardware
// without AVX2 the avx2 table falls back to portable and everything here
// passes trivially.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/configspace/linux_space.h"
#include "src/core/deeptune.h"
#include "src/core/dtm.h"
#include "src/nn/kernels.h"
#include "src/nn/layers.h"
#include "src/nn/matrix.h"
#include "src/nn/optimizer.h"
#include "src/platform/session.h"
#include "src/simos/testbench.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace wayfinder {
namespace {

std::vector<double> RandomArray(Rng& rng, size_t n) {
  std::vector<double> v(n);
  for (double& x : v) {
    x = rng.Normal();
  }
  return v;
}

Matrix RandomMatrix(Rng& rng, size_t rows, size_t cols) {
  Matrix m(rows, cols);
  for (double& v : m.data()) {
    v = rng.Normal();
  }
  return m;
}

TEST(KernelBackend, DispatchResolvesToARealBackend) {
  KernelBackend backend = DefaultKernelBackend();
  // CPUID auto-resolution stops at AVX2; avx512 can only appear here via the
  // explicit WF_KERNELS=avx512 opt-in (legal when the suite runs under it).
  bool avx512_opted_in = false;
  if (const char* env = std::getenv("WF_KERNELS")) {
    avx512_opted_in = std::strcmp(env, "avx512") == 0;
  }
  EXPECT_TRUE(backend == KernelBackend::kPortable || backend == KernelBackend::kAvx2 ||
              (avx512_opted_in && backend == KernelBackend::kAvx512));
  EXPECT_STREQ(KernelsFor(KernelBackend::kPortable).name, "portable");
  if (KernelBackendAvailable(KernelBackend::kAvx2)) {
    EXPECT_STREQ(KernelsFor(KernelBackend::kAvx2).name, "avx2");
  } else {
    // Unavailable backends fall back to portable instead of crashing.
    EXPECT_STREQ(KernelsFor(KernelBackend::kAvx2).name, "portable");
  }
  if (KernelBackendAvailable(KernelBackend::kAvx512)) {
    EXPECT_STREQ(KernelsFor(KernelBackend::kAvx512).name, "avx512");
  } else {
    // Requested-but-unavailable AVX-512 falls down the chain, widest first.
    const char* fallback = KernelsFor(KernelBackend::kAvx512).name;
    EXPECT_TRUE(std::string(fallback) == "avx2" || std::string(fallback) == "portable");
  }
}

// Every primitive of every SIMD backend, at sizes that exercise the wide
// main loops and every remainder lane. On hardware without the instruction
// set, the table falls back and the comparison passes trivially.
class KernelBackendPrimitives : public ::testing::TestWithParam<KernelBackend> {};

TEST_P(KernelBackendPrimitives, MatchPortableBitwise) {
  const KernelOps& portable = KernelsFor(KernelBackend::kPortable);
  const KernelOps& simd = KernelsFor(GetParam());
  Rng rng(71);
  for (size_t n : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 16u, 33u, 67u}) {
    std::vector<double> a = RandomArray(rng, n);
    std::vector<double> b = RandomArray(rng, n);

    EXPECT_EQ(portable.dot(a.data(), b.data(), n), simd.dot(a.data(), b.data(), n)) << n;
    EXPECT_EQ(portable.sqdist(a.data(), b.data(), n), simd.sqdist(a.data(), b.data(), n))
        << n;
    EXPECT_EQ(portable.sqnorm(a.data(), n), simd.sqnorm(a.data(), n)) << n;

    std::vector<double> y1 = b, y2 = b;
    portable.axpy(1.7, a.data(), y1.data(), n);
    simd.axpy(1.7, a.data(), y2.data(), n);
    EXPECT_EQ(y1, y2) << "axpy n=" << n;

    y1 = b;
    y2 = b;
    portable.axpy_diff(-0.9, a.data(), b.data(), y1.data(), n);
    simd.axpy_diff(-0.9, a.data(), b.data(), y2.data(), n);
    EXPECT_EQ(y1, y2) << "axpy_diff n=" << n;

    y1 = b;
    y2 = b;
    portable.vadd(a.data(), y1.data(), n);
    simd.vadd(a.data(), y2.data(), n);
    EXPECT_EQ(y1, y2) << "vadd n=" << n;

    y1 = a;
    y2 = a;
    portable.scal(0.37, y1.data(), n);
    simd.scal(0.37, y2.data(), n);
    EXPECT_EQ(y1, y2) << "scal n=" << n;

    y1 = a;
    y2 = a;
    portable.relu(y1.data(), n);
    simd.relu(y2.data(), n);
    EXPECT_EQ(y1, y2) << "relu n=" << n;

    // gemm_row across k remainders (including a zero a[k] to hit the skip)
    // and every j tile width (16-wide, 4-wide, scalar tail).
    for (size_t k_dim : {1u, 4u, 6u, 9u}) {
      std::vector<double> arow = RandomArray(rng, k_dim);
      if (k_dim > 4) {
        arow[k_dim - 1] = 0.0;  // Remainder-k zero skip.
      }
      std::vector<double> bmat = RandomArray(rng, k_dim * n);
      std::vector<double> bias = RandomArray(rng, n);
      std::vector<double> o1(n), o2(n);
      portable.gemm_row(arow.data(), k_dim, bmat.data(), n, bias.data(), o1.data(), n);
      simd.gemm_row(arow.data(), k_dim, bmat.data(), n, bias.data(), o2.data(), n);
      EXPECT_EQ(o1, o2) << "gemm_row k=" << k_dim << " m=" << n;
      portable.gemm_row(arow.data(), k_dim, bmat.data(), n, nullptr, o1.data(), n);
      simd.gemm_row(arow.data(), k_dim, bmat.data(), n, nullptr, o2.data(), n);
      EXPECT_EQ(o1, o2) << "gemm_row nobias k=" << k_dim << " m=" << n;
    }

    AdamScalars scalars;
    scalars.bias1 = 0.19;
    scalars.bias2 = 0.002;
    scalars.weight_decay = 1e-5;
    std::vector<double> v1 = RandomArray(rng, n);
    std::vector<double> g = RandomArray(rng, n);
    std::vector<double> m = RandomArray(rng, n);
    std::vector<double> vv = a;
    for (double& x : vv) {
      x = std::abs(x);  // Second moments are non-negative.
    }
    std::vector<double> v2 = v1, g2 = g, m2 = m, vv2 = vv;
    portable.adam_update(v1.data(), g.data(), m.data(), vv.data(), n, scalars);
    simd.adam_update(v2.data(), g2.data(), m2.data(), vv2.data(), n, scalars);
    EXPECT_EQ(v1, v2) << "adam value n=" << n;
    EXPECT_EQ(m, m2) << "adam m n=" << n;
    EXPECT_EQ(vv, vv2) << "adam v n=" << n;
    for (double x : g2) {
      EXPECT_EQ(x, 0.0);  // Gradients zeroed by the update.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSimdBackends, KernelBackendPrimitives,
                         ::testing::Values(KernelBackend::kAvx2, KernelBackend::kAvx512),
                         [](const ::testing::TestParamInfo<KernelBackend>& info) {
                           return std::string(KernelBackendName(info.param));
                         });

// The matrix kernels routed through each backend agree within 1e-12 (the
// design tolerance) — and in fact exactly.
class KernelBackendMatrix : public ::testing::TestWithParam<KernelBackend> {};

TEST_P(KernelBackendMatrix, MatchAcrossBackends) {
  Rng rng(73);
  Parallelism portable{nullptr, 1, &KernelsFor(KernelBackend::kPortable)};
  Parallelism simd{nullptr, 1, &KernelsFor(GetParam())};
  // Odd sizes exercise the unroll remainders.
  for (size_t n : {1u, 5u, 17u}) {
    for (size_t k : {3u, 8u, 37u}) {
      for (size_t m : {1u, 6u, 23u}) {
        Matrix a = RandomMatrix(rng, n, k);
        Matrix b = RandomMatrix(rng, k, m);
        Matrix bias = RandomMatrix(rng, 1, m);
        Matrix out_p, out_s;
        MatMulAddBiasInto(a, b, bias, out_p, portable);
        MatMulAddBiasInto(a, b, bias, out_s, simd);
        ASSERT_EQ(out_p.size(), out_s.size());
        for (size_t i = 0; i < out_p.size(); ++i) {
          EXPECT_NEAR(out_p.data()[i], out_s.data()[i], 1e-12);
          EXPECT_EQ(out_p.data()[i], out_s.data()[i]) << n << "x" << k << "x" << m;
        }

        Matrix bt = RandomMatrix(rng, m, k);
        Matrix bt_p, bt_s;
        MatMulBtInto(a, bt, bt_p, portable);
        MatMulBtInto(a, bt, bt_s, simd);
        for (size_t i = 0; i < bt_p.size(); ++i) {
          EXPECT_EQ(bt_p.data()[i], bt_s.data()[i]);
        }

        Matrix c = RandomMatrix(rng, n, m);
        Matrix acc_p(k, m, 0.25), acc_s(k, m, 0.25);
        MatMulAtAccum(a, c, acc_p, portable.kernels);
        MatMulAtAccum(a, c, acc_s, simd.kernels);
        for (size_t i = 0; i < acc_p.size(); ++i) {
          EXPECT_EQ(acc_p.data()[i], acc_s.data()[i]);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSimdBackends, KernelBackendMatrix,
                         ::testing::Values(KernelBackend::kAvx2, KernelBackend::kAvx512),
                         [](const ::testing::TestParamInfo<KernelBackend>& info) {
                           return std::string(KernelBackendName(info.param));
                         });

// Adam's per-block thread split must not change a single bit — the clip norm
// is computed before the parallel section and per-block math is serial.
TEST(KernelBackend, AdamThreadedBitIdenticalToSerial) {
  auto make_params = [](Rng& rng, std::vector<ParamBlock>& blocks) {
    std::vector<ParamBlock*> out;
    for (auto& b : blocks) {
      b.value = RandomMatrix(rng, 9, 7);
      b.grad = RandomMatrix(rng, 9, 7);
      out.push_back(&b);
    }
    return out;
  };
  Rng rng_a(77);
  Rng rng_b(77);
  std::vector<ParamBlock> blocks_a(6), blocks_b(6);
  std::vector<ParamBlock*> params_a = make_params(rng_a, blocks_a);
  std::vector<ParamBlock*> params_b = make_params(rng_b, blocks_b);
  AdamOptions options;
  options.weight_decay = 1e-5;
  Adam serial(params_a, options);
  Adam threaded(params_b, options);
  ThreadPool pool(3);
  for (int step = 0; step < 5; ++step) {
    for (size_t p = 0; p < blocks_a.size(); ++p) {
      Rng grad_rng(100 + static_cast<uint64_t>(step));
      blocks_a[p].grad = RandomMatrix(grad_rng, 9, 7);
      Rng grad_rng2(100 + static_cast<uint64_t>(step));
      blocks_b[p].grad = RandomMatrix(grad_rng2, 9, 7);
    }
    serial.Step();
    threaded.Step(Parallelism{&pool, 4});
    for (size_t p = 0; p < blocks_a.size(); ++p) {
      for (size_t i = 0; i < blocks_a[p].value.size(); ++i) {
        ASSERT_EQ(blocks_a[p].value.data()[i], blocks_b[p].value.data()[i])
            << "step " << step << " block " << p << " element " << i;
      }
    }
  }
}

void TrainAndCompareModels(DeepTuneModel& a, DeepTuneModel& b) {
  Rng rng(5);
  size_t dim = a.input_dim();
  for (size_t i = 0; i < 48; ++i) {
    std::vector<double> x(dim);
    for (double& v : x) {
      v = rng.Uniform();
    }
    bool crashed = rng.Bernoulli(0.25);
    double objective = rng.Normal(0.0, 1.0);
    a.AddSample(x, crashed, objective);
    b.AddSample(x, crashed, objective);
  }
  a.Update();
  b.Update();
  Rng pool_rng(9);
  Matrix pool(64, dim);
  for (double& v : pool.data()) {
    v = pool_rng.Uniform();
  }
  auto pred_a = a.PredictBatch(pool);
  auto pred_b = b.PredictBatch(pool);
  ASSERT_EQ(pred_a.size(), pred_b.size());
  for (size_t i = 0; i < pred_a.size(); ++i) {
    EXPECT_EQ(pred_a[i].crash_prob, pred_b[i].crash_prob) << i;
    EXPECT_EQ(pred_a[i].objective, pred_b[i].objective) << i;
    EXPECT_EQ(pred_a[i].sigma, pred_b[i].sigma) << i;
  }
}

// Training (gather + forward/backward + losses + Chamfer + Adam) computes
// identical weights on either backend.
TEST(KernelBackend, DtmTrainingUnchangedByBackend) {
  DtmOptions portable_options;
  portable_options.kernels = KernelBackend::kPortable;
  DtmOptions simd_options;
  simd_options.kernels = KernelBackend::kAvx2;
  DeepTuneModel portable(31, portable_options);
  DeepTuneModel simd(31, simd_options);
  TrainAndCompareModels(portable, simd);
}

// And identical weights at any thread count (full Update, not just inference).
TEST(KernelBackend, DtmTrainingBitIdenticalWhenThreaded) {
  DtmOptions serial_options;
  DtmOptions threaded_options;
  threaded_options.threads = 4;
  DeepTuneModel serial(27, serial_options);
  DeepTuneModel threaded(27, threaded_options);
  TrainAndCompareModels(serial, threaded);
}

// The end-to-end invariant (acceptance criterion): a fixed-seed 60-iteration
// DeepTune session proposes the exact same configuration sequence and finds
// the same best, whichever kernel backend the model runs on.
TEST(KernelBackend, SixtyIterationTrajectoryUnchangedByBackend) {
  ConfigSpace space = BuildLinuxSearchSpace();
  SessionOptions options;
  options.max_iterations = 60;
  options.sample_options = SampleOptions::FavorRuntime();
  options.seed = 0x60d;

  DeepTuneOptions portable_options;
  portable_options.model.kernels = KernelBackend::kPortable;
  Testbench bench_portable(&space, AppId::kRedis);
  DeepTuneSearcher portable(&space, portable_options);
  SessionResult portable_result = RunSearch(&bench_portable, &portable, options);

  DeepTuneOptions simd_options;
  simd_options.model.kernels = KernelBackend::kAvx2;
  Testbench bench_simd(&space, AppId::kRedis);
  DeepTuneSearcher simd(&space, simd_options);
  SessionResult simd_result = RunSearch(&bench_simd, &simd, options);

  ASSERT_EQ(portable_result.history.size(), simd_result.history.size());
  for (size_t i = 0; i < portable_result.history.size(); ++i) {
    EXPECT_EQ(portable_result.history[i].config.Hash(), simd_result.history[i].config.Hash())
        << "trajectories diverged at iteration " << i;
    if (portable_result.history[i].HasObjective()) {
      EXPECT_EQ(portable_result.history[i].objective, simd_result.history[i].objective) << i;
    }
  }
  EXPECT_EQ(portable_result.best_index, simd_result.best_index);
}

}  // namespace
}  // namespace wayfinder
