// Kill -9 recovery soak (tier2 in CI, where it runs long under ASan with
// WF_SOAK=1): the same deterministic search is murdered and recovered over
// and over on ONE store directory, with each kill landing at a different
// journal depth. However many times the process dies mid-wave, the final
// result must be byte-identical (modulo searcher wall time) to a single
// uninterrupted run, and no cycle may leave a stale compaction *.tmp or a
// duplicated trial behind.
//
// Default (tier-1) run keeps the cycle count small so plain `ctest` stays
// fast; WF_SOAK=1 raises it to the full schedule.
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/service/session_manager.h"

namespace wayfinder {
namespace {

std::string FreshDir(const char* name) {
  std::string dir = (std::filesystem::temp_directory_path() / name).string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

size_t SoakCycles() {
  const char* env = std::getenv("WF_SOAK");
  return (env != nullptr && env[0] == '1') ? 12 : 3;
}

// Long enough that every kill in the schedule lands mid-search.
std::string SoakJob(uint64_t seed) {
  std::string yaml;
  yaml += "name: recovery-soak\n";
  yaml += "os: linux\n";
  yaml += "application: nginx\n";
  yaml += "metric: performance\n";
  yaml += "budget:\n  iterations: 48\n";
  yaml += "search:\n  algorithm: random\n";
  yaml += "  seed: " + std::to_string(seed) + "\n";
  return yaml;
}

SessionManagerOptions ManagerOptions(const std::string& dir) {
  SessionManagerOptions options;
  options.store_dir = dir + "/store";
  options.journal_path = dir + "/store/journal.wfj";
  return options;
}

size_t CountWaveRecords(const std::string& journal_path) {
  std::ifstream in(journal_path);
  size_t waves = 0;
  for (std::string line; std::getline(in, line);) {
    if (line.rfind("wave ", 0) == 0) {
      ++waves;
    }
  }
  return waves;
}

// Checkpoint text normalised for cross-run comparison: the one wall-clock
// field (searcher_seconds, the 11th token of a trial line) is blanked, and
// live-state lines are dropped entirely. The latter matters for the soak's
// inherent race — a kill that lands just after the final `done` state record
// makes recovery render the session replay-only (no live state), which is
// correct but not byte-comparable to an in-process result. The trial
// history is the convergence pin here; bit-exact live state after resume is
// pinned separately in recovery_test.
std::string Normalise(const std::string& checkpoint_text) {
  std::istringstream in(checkpoint_text);
  std::string out;
  for (std::string line; std::getline(in, line);) {
    if (line.rfind("rng-session ", 0) == 0 || line.rfind("rng-searcher ", 0) == 0 ||
        line.rfind("searcher-state ", 0) == 0) {
      continue;
    }
    if (line.rfind("trial ", 0) == 0) {
      size_t spaces = 0, start = std::string::npos;
      for (size_t i = 0; i < line.size(); ++i) {
        if (line[i] == ' ' && ++spaces == 11) {
          start = i + 1;
          break;
        }
      }
      if (start != std::string::npos) {
        size_t end = line.find(' ', start);
        line.replace(start, (end == std::string::npos ? line.size() : end) - start, "_");
      }
    }
    out += line + "\n";
  }
  return out;
}

// Forks a child that recovers the store and keeps searching until killed.
// The parent waits for the journal to grow past `kill_after_waves` NEW wave
// records, then SIGKILLs it. Returns false if the child finished (exited)
// before the threshold — the session is done and the soak loop can stop.
bool RunOneCrashCycle(const std::string& dir, const std::string& job, bool first_cycle,
                      size_t kill_after_waves) {
  const std::string journal_path = dir + "/store/journal.wfj";
  const size_t waves_before = CountWaveRecords(journal_path);
  pid_t child = fork();
  EXPECT_GE(child, 0);
  if (child == 0) {
    // Child: everything must _exit — returning would re-run gtest here.
    SessionManager manager(ManagerOptions(dir));
    std::string summary, id, error;
    if (!manager.Recover(&summary)) {
      _exit(10);
    }
    if (first_cycle && !manager.Submit(job, false, &id, &error)) {
      _exit(11);
    }
    manager.WaitDone("s1", 120000);
    manager.Shutdown();
    _exit(0);
  }
  const size_t target = waves_before + kill_after_waves;
  bool exited = false;
  for (int spin = 0; spin < 4000; ++spin) {
    int wait_status = 0;
    if (waitpid(child, &wait_status, WNOHANG) == child) {
      // Finished before the kill landed: session ran to done.
      EXPECT_TRUE(WIFEXITED(wait_status) && WEXITSTATUS(wait_status) == 0);
      exited = true;
      break;
    }
    if (CountWaveRecords(journal_path) >= target) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  if (exited) {
    return false;
  }
  EXPECT_GE(CountWaveRecords(journal_path), target) << "child never made progress";
  EXPECT_EQ(kill(child, SIGKILL), 0);
  int wait_status = 0;
  EXPECT_EQ(waitpid(child, &wait_status, 0), child);
  return true;
}

TEST(RecoverySoakTest, RepeatedKill9CyclesConvergeAndLeaveNoDebris) {
  std::string crash_dir = FreshDir("wf-soak-kill9");
  std::string clean_dir = FreshDir("wf-soak-kill9-clean");
  std::string job = SoakJob(4242);

  // Vary the kill depth so interruptions land at different wave boundaries
  // (and therefore different journal shapes) every cycle.
  size_t cycles = SoakCycles();
  for (size_t cycle = 0; cycle < cycles; ++cycle) {
    if (!RunOneCrashCycle(crash_dir, job, cycle == 0, 2 + cycle % 3)) {
      break;
    }
    // Every intermediate recovery must leave no stale compaction temps.
    for (const auto& entry : std::filesystem::directory_iterator(crash_dir + "/store")) {
      EXPECT_NE(entry.path().extension(), ".tmp") << entry.path();
    }
  }

  // Final recovery in-process: run whatever is left to completion.
  SessionManager recovered(ManagerOptions(crash_dir));
  std::string summary;
  ASSERT_TRUE(recovered.Recover(&summary)) << summary;
  EXPECT_NE(summary.find("recovered 1 session(s)"), std::string::npos) << summary;
  ASSERT_TRUE(recovered.WaitDone("s1", 120000));
  std::string recovered_text, error;
  ASSERT_TRUE(recovered.Result("s1", &recovered_text, &error)) << error;
  recovered.Shutdown();

  // The uninterrupted control run.
  SessionManager control(ManagerOptions(clean_dir));
  std::string control_id;
  ASSERT_TRUE(control.Submit(job, false, &control_id, &error)) << error;
  ASSERT_TRUE(control.WaitDone(control_id, 120000));
  std::string control_text;
  ASSERT_TRUE(control.Result(control_id, &control_text, &error)) << error;
  control.Shutdown();

  EXPECT_EQ(Normalise(recovered_text), Normalise(control_text))
      << cycles << " kill -9 cycles diverged from the uninterrupted run";
}

}  // namespace
}  // namespace wayfinder
