// Tests for parameters, configurations, encoding, and space builders.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/configspace/config_space.h"
#include "src/configspace/linux_space.h"
#include "src/configspace/unikraft_space.h"

namespace wayfinder {
namespace {

ConfigSpace SmallSpace() {
  ConfigSpace space;
  space.Add(ParamSpec::Bool("feature.a", ParamPhase::kCompileTime, "net", true));
  space.Add(ParamSpec::Tristate("feature.b", "vm", 1));
  space.Add(ParamSpec::Int("tunable.c", ParamPhase::kRuntime, "net", 0, 100, 50));
  space.Add(ParamSpec::Int("buffer.d", ParamPhase::kRuntime, "net", 1, 1 << 20, 4096, true));
  space.Add(ParamSpec::String("mode.e", ParamPhase::kBootTime, "sched", {"x", "y", "z"}, 1));
  space.Add(ParamSpec::IntSet("quant.f", ParamPhase::kRuntime, "vm", {8, 64, 512}, 64));
  return space;
}

TEST(ParamSpec, DomainSizes) {
  ConfigSpace space = SmallSpace();
  EXPECT_EQ(space.Param(0).DomainSize(), 2);
  EXPECT_EQ(space.Param(1).DomainSize(), 3);
  EXPECT_EQ(space.Param(2).DomainSize(), 101);
  EXPECT_EQ(space.Param(4).DomainSize(), 3);
  EXPECT_EQ(space.Param(5).DomainSize(), 3);
}

TEST(ParamSpec, ClampAndInDomain) {
  ConfigSpace space = SmallSpace();
  const ParamSpec& c = space.Param(2);
  EXPECT_EQ(c.Clamp(-5), 0);
  EXPECT_EQ(c.Clamp(500), 100);
  EXPECT_TRUE(c.InDomain(100));
  EXPECT_FALSE(c.InDomain(101));
  const ParamSpec& f = space.Param(5);
  EXPECT_EQ(f.Clamp(60), 64);     // Nearest quantized value.
  EXPECT_EQ(f.Clamp(10000), 512);
  EXPECT_TRUE(f.InDomain(8));
  EXPECT_FALSE(f.InDomain(9));
}

TEST(ParamSpec, FormatValue) {
  ConfigSpace space = SmallSpace();
  EXPECT_EQ(space.Param(0).FormatValue(1), "y");
  EXPECT_EQ(space.Param(0).FormatValue(0), "n");
  EXPECT_EQ(space.Param(1).FormatValue(1), "m");
  EXPECT_EQ(space.Param(4).FormatValue(2), "z");
  ParamSpec hex = ParamSpec::Hex("h", "kernel", 0, 0xffff, 0xff);
  EXPECT_EQ(hex.FormatValue(255), "0xff");
}

TEST(ConfigSpaceTest, DefaultConfiguration) {
  ConfigSpace space = SmallSpace();
  Configuration def = space.DefaultConfiguration();
  EXPECT_EQ(def.Get("feature.a"), 1);
  EXPECT_EQ(def.Get("tunable.c"), 50);
  EXPECT_EQ(def.Get("quant.f"), 64);
  EXPECT_TRUE(space.IsValid(def));
}

TEST(ConfigSpaceTest, FindAndDuplicateLookup) {
  ConfigSpace space = SmallSpace();
  EXPECT_TRUE(space.Find("mode.e").has_value());
  EXPECT_FALSE(space.Find("nope").has_value());
}

TEST(ConfigSpaceTest, RandomConfigurationsValidAndDiverse) {
  ConfigSpace space = SmallSpace();
  Rng rng(5);
  std::set<uint64_t> hashes;
  for (int i = 0; i < 200; ++i) {
    Configuration config = space.RandomConfiguration(rng);
    ASSERT_TRUE(space.IsValid(config));
    hashes.insert(config.Hash());
  }
  EXPECT_GT(hashes.size(), 150u);
}

TEST(ConfigSpaceTest, PhaseBiasedSamplingKeepsOtherPhasesAtDefault) {
  ConfigSpace space = SmallSpace();
  Rng rng(6);
  SampleOptions favor_runtime{0.0, 0.0, 1.0};
  for (int i = 0; i < 50; ++i) {
    Configuration config = space.RandomConfiguration(rng, favor_runtime);
    EXPECT_EQ(config.Get("feature.a"), 1);   // Compile stays default.
    EXPECT_EQ(config.Get("mode.e"), 1);      // Boot stays default.
  }
}

TEST(ConfigSpaceTest, FreezePinsValue) {
  ConfigSpace space = SmallSpace();
  ASSERT_TRUE(space.Freeze("tunable.c", 77));
  EXPECT_FALSE(space.Freeze("missing", 1));
  EXPECT_EQ(space.FrozenCount(), 1u);
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    Configuration config = space.RandomConfiguration(rng);
    EXPECT_EQ(config.Get("tunable.c"), 77);
  }
  EXPECT_EQ(space.DefaultConfiguration().Get("tunable.c"), 77);
}

TEST(ConfigSpaceTest, DependencyForcesDefault) {
  ConfigSpace space;
  space.Add(ParamSpec::Bool("GATE", ParamPhase::kCompileTime, "net", true));
  ParamSpec child = ParamSpec::Bool("CHILD", ParamPhase::kCompileTime, "net", false);
  child.depends_on.push_back("GATE");
  space.Add(child);
  Configuration config = space.DefaultConfiguration();
  config.Set("CHILD", 1);
  config.Set("GATE", 0);
  EXPECT_GT(space.ApplyConstraints(&config), 0u);
  EXPECT_EQ(config.Get("CHILD"), 0);  // Forced back to default.
  EXPECT_TRUE(space.IsValid(config));
}

TEST(ConfigSpaceTest, EncodeDecodeRoundTrip) {
  ConfigSpace space = SmallSpace();
  Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    Configuration config = space.RandomConfiguration(rng);
    for (size_t p = 0; p < space.Size(); ++p) {
      double code = space.EncodeParam(p, config.Raw(p));
      ASSERT_GE(code, 0.0);
      ASSERT_LE(code, 1.0);
      int64_t decoded = space.DecodeParam(p, code);
      // Log-scaled wide domains round-trip approximately; exact for others.
      if (space.Param(p).log_scale) {
        double rel = std::abs(static_cast<double>(decoded - config.Raw(p))) /
                     std::max<double>(1.0, static_cast<double>(config.Raw(p)));
        EXPECT_LT(rel, 0.01);
      } else {
        EXPECT_EQ(decoded, config.Raw(p));
      }
    }
  }
}

TEST(ConfigSpaceTest, NeighborMutatesFewParams) {
  ConfigSpace space = SmallSpace();
  Rng rng(9);
  Configuration base = space.DefaultConfiguration();
  Configuration neighbor = space.Neighbor(base, rng, 1);
  size_t diffs = 0;
  for (size_t p = 0; p < space.Size(); ++p) {
    diffs += neighbor.Raw(p) != base.Raw(p) ? 1 : 0;
  }
  EXPECT_LE(diffs, 1u);
}

TEST(ConfigSpaceTest, DiffStringListsOnlyChanges) {
  ConfigSpace space = SmallSpace();
  Configuration config = space.DefaultConfiguration();
  config.Set("tunable.c", 99);
  std::string diff = config.DiffString();
  EXPECT_NE(diff.find("tunable.c=99"), std::string::npos);
  EXPECT_EQ(diff.find("feature.a"), std::string::npos);
}

TEST(ConfigSpaceTest, HashDiffersAcrossConfigs) {
  ConfigSpace space = SmallSpace();
  Configuration a = space.DefaultConfiguration();
  Configuration b = a;
  b.Set("tunable.c", 51);
  EXPECT_NE(a.Hash(), b.Hash());
  EXPECT_FALSE(a == b);
}

// --- Linux space ------------------------------------------------------------

TEST(LinuxSpace, VersionCurveIsMonotone) {
  std::vector<std::string> versions = LinuxVersionTimeline();
  ASSERT_GE(versions.size(), 10u);
  size_t prev = 0;
  for (const std::string& version : versions) {
    size_t count = LinuxCompileOptionCount(version);
    EXPECT_GT(count, prev);
    prev = count;
  }
  EXPECT_NEAR(static_cast<double>(LinuxCompileOptionCount("6.0")), 20400.0, 500.0);
}

TEST(LinuxSpace, KindFractionsSumToOne) {
  double total = 0.0;
  for (ParamKind kind : {ParamKind::kBool, ParamKind::kTristate, ParamKind::kString,
                         ParamKind::kHex, ParamKind::kInt}) {
    total += LinuxKindFraction(kind);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(LinuxSpace, FullCensusMatchesTable1Shape) {
  LinuxSpaceOptions options;
  options.version = "6.0";
  options.scale = 1.0;
  ConfigSpace space = BuildLinuxSpace(options);
  size_t compile = space.CountPhase(ParamPhase::kCompileTime);
  size_t boot = space.CountPhase(ParamPhase::kBootTime);
  size_t runtime = space.CountPhase(ParamPhase::kRuntime);
  // Table 1: ~21272 compile, 231 boot, 13328 runtime.
  EXPECT_NEAR(static_cast<double>(compile), 20400.0, 2000.0);
  EXPECT_NEAR(static_cast<double>(boot), 231.0, 60.0);
  EXPECT_NEAR(static_cast<double>(runtime), 13328.0, 1500.0);
  // Tristate should dominate compile-time kinds, as in Table 1.
  EXPECT_GT(space.CountKind(ParamKind::kTristate), space.CountKind(ParamKind::kBool) / 2);
  EXPECT_GT(space.CountKind(ParamKind::kInt), 2000u);
}

TEST(LinuxSpace, DeterministicForSeed) {
  ConfigSpace a = BuildLinuxSearchSpace(123);
  ConfigSpace b = BuildLinuxSearchSpace(123);
  ASSERT_EQ(a.Size(), b.Size());
  for (size_t i = 0; i < a.Size(); ++i) {
    EXPECT_EQ(a.Param(i).name, b.Param(i).name);
    EXPECT_EQ(a.Param(i).default_value, b.Param(i).default_value);
  }
}

TEST(LinuxSpace, SearchSpaceContainsCuratedHighImpactParams) {
  ConfigSpace space = BuildLinuxSearchSpace();
  for (const std::string& name : DocumentedHighImpactParams()) {
    EXPECT_TRUE(space.Find(name).has_value()) << name;
  }
  EXPECT_GT(space.CountPhase(ParamPhase::kRuntime), 100u);
}

TEST(LinuxSpace, CuratedParamsHaveSaneDomains) {
  for (const ParamSpec& spec : CuratedLinuxParams()) {
    EXPECT_FALSE(spec.name.empty());
    EXPECT_TRUE(spec.InDomain(spec.default_value)) << spec.name;
    if (spec.kind == ParamKind::kString) {
      EXPECT_FALSE(spec.choices.empty()) << spec.name;
    }
  }
}

// --- Unikraft space ----------------------------------------------------------

TEST(UnikraftSpace, Has33ParamsSplit10And23) {
  ConfigSpace space = BuildUnikraftSpace();
  EXPECT_EQ(space.Size(), 33u);
  size_t app_params = 0;
  for (size_t i = 0; i < space.Size(); ++i) {
    app_params += space.Param(i).subsystem == "app" ? 1 : 0;
  }
  EXPECT_EQ(app_params, 10u);
}

TEST(UnikraftSpace, SpaceSizeMatchesPaper) {
  // §4.4: 3.7e13 permutations -> log10 ~ 13.57.
  ConfigSpace space = BuildUnikraftSpace();
  EXPECT_NEAR(space.Log10SpaceSize(), 13.57, 1.2);
}

// Property sweep: every builder yields spaces whose random samples validate.
class SpaceBuilderTest : public ::testing::TestWithParam<int> {};

TEST_P(SpaceBuilderTest, RandomSamplesAreValid) {
  ConfigSpace space =
      GetParam() == 0 ? BuildLinuxSearchSpace() : BuildUnikraftSpace();
  Rng rng(99);
  for (int i = 0; i < 100; ++i) {
    Configuration config = space.RandomConfiguration(rng);
    ASSERT_TRUE(space.IsValid(config));
  }
}

INSTANTIATE_TEST_SUITE_P(Builders, SpaceBuilderTest, ::testing::Values(0, 1));

}  // namespace
}  // namespace wayfinder
