// Tests for the observability plane (src/obs/): histogram bucket math, the
// trace ring's wrap/drop accounting, the zero-allocation record-path
// guarantee (counted via a global operator new hook), concurrent recorders
// (exercised under TSan in CI), and the Chrome trace JSON exporter and its
// validator.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/clock.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

// --- allocation counting -----------------------------------------------------
//
// Global operator new replacement so the zero-alloc tests can count heap
// activity on the record paths. Counting is relaxed-atomic; the hook is
// live for the whole binary, which is fine — every other test ignores it.
namespace {
std::atomic<uint64_t> g_news{0};
}  // namespace

void* operator new(std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) {
    return p;
  }
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

void* operator new[](std::size_t size) { return operator new(size); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace wayfinder {
namespace {

// Flips recording on for one test body and restores the default-off state
// on the way out, so the obs tests cannot leak an enabled registry into a
// determinism-sensitive test running later in the same binary.
struct ScopedRecording {
  explicit ScopedRecording(bool on) { obs::SetEnabled(on); }
  ~ScopedRecording() { obs::SetEnabled(false); }
};

// --- histogram bucket math ---------------------------------------------------

TEST(Histogram, BucketIndexPowerOfTwoLadder) {
  EXPECT_EQ(obs::Histogram::BucketIndex(0), 0);
  EXPECT_EQ(obs::Histogram::BucketIndex(1), 1);
  EXPECT_EQ(obs::Histogram::BucketIndex(2), 2);
  EXPECT_EQ(obs::Histogram::BucketIndex(3), 2);
  EXPECT_EQ(obs::Histogram::BucketIndex(4), 3);
  // Bucket i holds [2^(i-1), 2^i): both edges of every bucket land inside.
  for (int i = 1; i < 62; ++i) {
    uint64_t lo = uint64_t{1} << (i - 1);
    uint64_t hi = (uint64_t{1} << i) - 1;
    EXPECT_EQ(obs::Histogram::BucketIndex(lo), i) << "lo of bucket " << i;
    EXPECT_EQ(obs::Histogram::BucketIndex(hi), i) << "hi of bucket " << i;
  }
  // The last bucket catches everything up to UINT64_MAX.
  EXPECT_EQ(obs::Histogram::BucketIndex(~uint64_t{0}),
            obs::Histogram::kBuckets - 1);
}

TEST(Histogram, BucketBoundsAreMonotoneAndConsistent) {
  for (int i = 1; i < obs::Histogram::kBuckets; ++i) {
    EXPECT_GT(obs::Histogram::BucketUpperBound(i),
              obs::Histogram::BucketUpperBound(i - 1));
    // The inclusive upper bound maps back into its own bucket.
    EXPECT_EQ(obs::Histogram::BucketIndex(obs::Histogram::BucketUpperBound(i)),
              i);
  }
}

TEST(Histogram, CountSumMeanAndQuantiles) {
  ScopedRecording rec(true);
  obs::Histogram h;
  // 100 samples of 1000 and 1 sample of 1'000'000: p50 must sit near the
  // mass, p99+ may climb toward the outlier; everything carries
  // log2-resolution error (one bucket spans [2^(i-1), 2^i)).
  for (int i = 0; i < 100; ++i) {
    h.Record(1000);
  }
  h.Record(1000000);
  EXPECT_EQ(h.Count(), 101u);
  EXPECT_EQ(h.Sum(), 100u * 1000u + 1000000u);
  EXPECT_NEAR(h.Mean(), static_cast<double>(h.Sum()) / 101.0, 1e-9);
  double p50 = h.Quantile(0.5);
  EXPECT_GE(p50, 512.0);     // 1000 lives in [512, 1024).
  EXPECT_LE(p50, 1024.0);
  // Rank math: with 101 samples only q=1.0 reaches the single outlier —
  // q=0.999 still resolves to the 101st-of-100 boundary inside the mass.
  double max = h.Quantile(1.0);
  EXPECT_GE(max, 524288.0);  // The outlier's bucket: [2^19, 2^20).
  EXPECT_LE(max, 1048576.0);
  // Quantiles are monotone in q.
  EXPECT_LE(h.Quantile(0.1), h.Quantile(0.9));
}

TEST(Histogram, EmptyQuantileIsZero) {
  obs::Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
}

// --- recording gate ----------------------------------------------------------

TEST(RecordingGate, DisabledRecordersAreNoOps) {
  ASSERT_FALSE(obs::Enabled());  // Default-off is part of the contract.
  obs::Counter c;
  obs::Gauge g;
  obs::Histogram h;
  c.Add(5);
  g.Set(7);
  g.Add(3);
  h.Record(100);
  EXPECT_EQ(c.Value(), 0u);
  EXPECT_EQ(g.Value(), 0);
  EXPECT_EQ(h.Count(), 0u);
  // Force bypasses the gate: health flags stay truthful while recording is
  // off (service.journal_degraded depends on this).
  g.Force(1);
  EXPECT_EQ(g.Value(), 1);
}

TEST(RecordingGate, ScopedTimerReadsNoClockWhenDisabled) {
  ASSERT_FALSE(obs::Enabled());
  obs::Histogram h;
  {
    obs::ScopedTimerNs timer(h);
  }
  EXPECT_EQ(h.Count(), 0u);
  {
    ScopedRecording rec(true);
    obs::ScopedTimerNs timer(h);
  }
  EXPECT_EQ(h.Count(), 1u);
}

// --- zero-allocation record path ---------------------------------------------

TEST(ZeroAlloc, RecordPathsNeverTouchTheHeap) {
  ScopedRecording rec(true);
  // Registration (allowed to allocate) happens before the measured window.
  obs::Counter& counter = obs::Registry::Instance().GetCounter("test.zero_alloc");
  obs::Histogram& histogram =
      obs::Registry::Instance().GetHistogram("test.zero_alloc_ns");
  obs::Gauge& gauge = obs::Registry::Instance().GetGauge("test.zero_alloc_g");
  obs::TraceRing ring(64);
  // Warm the shard index / any lazy thread-local state.
  counter.Add(1);
  histogram.Record(1);
  ring.Record(obs::TraceKind::kPropose, 0, 1, 1);

  uint64_t before = g_news.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    counter.Add(1);
    gauge.Set(i);
    gauge.Add(1);
    histogram.Record(static_cast<uint64_t>(i) * 977);
    ring.Record(obs::TraceKind::kEvaluate, static_cast<uint64_t>(i),
                obs::NowNs(), 5);
    ring.RecordInstant(obs::TraceKind::kCommit, static_cast<uint64_t>(i));
  }
  uint64_t after = g_news.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << "record path allocated " << (after - before)
                           << " times";
}

// --- concurrent recorders (TSan coverage in CI) ------------------------------

TEST(Concurrency, ParallelRecordersAgreeOnTotals) {
  ScopedRecording rec(true);
  obs::Counter counter;
  obs::Gauge gauge;
  obs::Histogram histogram;
  obs::TraceRing ring(256);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.Add(1);
        gauge.Add(1);
        histogram.Record(static_cast<uint64_t>(t * kPerThread + i));
        ring.Record(obs::TraceKind::kEvaluate,
                    static_cast<uint64_t>(t * kPerThread + i), i + 1, 1);
      }
    });
  }
  for (std::thread& w : workers) {
    w.join();
  }
  EXPECT_EQ(counter.Value(), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(gauge.Value(), int64_t{kThreads} * kPerThread);
  EXPECT_EQ(histogram.Count(), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(ring.Snapshot().size(), 256u);
  EXPECT_EQ(ring.dropped(), uint64_t{kThreads} * kPerThread - 256);
}

// --- trace ring wrap / drop accounting ---------------------------------------

TEST(TraceRing, KeepsNewestAndCountsDrops) {
  ScopedRecording rec(true);
  obs::TraceRing ring(8);
  for (uint64_t i = 0; i < 20; ++i) {
    ring.Record(obs::TraceKind::kCommit, i, static_cast<int64_t>(i + 1), 0);
  }
  EXPECT_EQ(ring.dropped(), 12u);
  std::vector<obs::TraceEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 8u);
  // Oldest-first snapshot of the 8 newest events: iterations 12..19.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].iteration, 12 + i);
  }
}

TEST(TraceRing, DisabledRecordingLeavesRingEmpty) {
  ASSERT_FALSE(obs::Enabled());
  obs::TraceRing ring(8);
  ring.Record(obs::TraceKind::kCommit, 1, 1, 1);
  ring.RecordInstant(obs::TraceKind::kRetry, 2);
  obs::TraceEvent batch[2] = {{obs::TraceKind::kBuild, 3, 1, 0},
                              {obs::TraceKind::kCommit, 3, 1, 0}};
  ring.RecordBatch(batch, 2);
  EXPECT_TRUE(ring.Snapshot().empty());
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(TraceRing, BatchAppendsInOrderAndWraps) {
  ScopedRecording rec(true);
  obs::TraceRing ring(4);
  ring.Record(obs::TraceKind::kPropose, 0, 10, 5);
  obs::TraceEvent batch[3] = {{obs::TraceKind::kBuild, 1, 20, 0},
                              {obs::TraceKind::kRetry, 1, 20, 0},
                              {obs::TraceKind::kCommit, 1, 20, 0}};
  ring.RecordBatch(batch, 3);
  std::vector<obs::TraceEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].kind, obs::TraceKind::kPropose);
  EXPECT_EQ(events[1].kind, obs::TraceKind::kBuild);
  EXPECT_EQ(events[2].kind, obs::TraceKind::kRetry);
  EXPECT_EQ(events[3].kind, obs::TraceKind::kCommit);
  // A second batch wraps the ring like individual records would.
  ring.RecordBatch(batch, 3);
  EXPECT_EQ(ring.dropped(), 3u);
  events = ring.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].kind, obs::TraceKind::kCommit);
  EXPECT_EQ(events[1].kind, obs::TraceKind::kBuild);
}

// --- Chrome trace export / validation ----------------------------------------

TEST(ChromeTrace, ExportValidatesAndCarriesEvents) {
  std::vector<obs::TraceEvent> events;
  events.push_back({obs::TraceKind::kPropose, 0, 1000, 500});
  events.push_back({obs::TraceKind::kEvaluate, 0, 1500, 2000});
  events.push_back({obs::TraceKind::kCommit, 0, 3500, 0});  // Instant.
  std::string json = obs::RenderChromeTrace(events, "s1");
  std::string error;
  EXPECT_TRUE(obs::ValidateChromeTraceJson(json, &error)) << error;
  // Span events render as complete ("X") events, instants as "i".
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"propose\""), std::string::npos);
  EXPECT_NE(json.find("\"commit\""), std::string::npos);
  EXPECT_NE(json.find("s1"), std::string::npos);  // process_name metadata.
}

TEST(ChromeTrace, EmptyTraceIsStillValid) {
  std::string json = obs::RenderChromeTrace({}, "empty");
  std::string error;
  EXPECT_TRUE(obs::ValidateChromeTraceJson(json, &error)) << error;
}

TEST(ChromeTrace, ValidatorRejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(obs::ValidateChromeTraceJson("", &error));
  EXPECT_FALSE(obs::ValidateChromeTraceJson("not json", &error));
  EXPECT_FALSE(obs::ValidateChromeTraceJson("{\"traceEvents\":{}}", &error));
  EXPECT_FALSE(obs::ValidateChromeTraceJson("{\"traceEvents\":[1,2]}", &error));
  // Events missing required keys fail the shape check.
  EXPECT_FALSE(obs::ValidateChromeTraceJson(
      "{\"traceEvents\":[{\"name\":\"x\"}]}", &error));
  // Trailing garbage after a well-formed document is rejected.
  EXPECT_FALSE(obs::ValidateChromeTraceJson(
      "{\"traceEvents\":[]} trailing", &error));
}

// --- registry rendering ------------------------------------------------------

TEST(Registry, RenderTextListsInstrumentsAndInfo) {
  ScopedRecording rec(true);
  obs::Registry::Instance().GetCounter("test.render_c").Add(3);
  obs::Registry::Instance().GetGauge("test.render_g").Set(-2);
  obs::Registry::Instance().GetHistogram("test.render_h").Record(8);
  obs::Registry::Instance().SetInfo("test.render_i", "hello world");
  std::string text = obs::Registry::Instance().RenderText();
  EXPECT_EQ(text.rfind("# wayfinder metrics v1\nrecording 1\n", 0), 0u);
  EXPECT_NE(text.find("counter test.render_c 3"), std::string::npos);
  EXPECT_NE(text.find("gauge test.render_g -2"), std::string::npos);
  EXPECT_NE(text.find("histogram test.render_h count=1"), std::string::npos);
  EXPECT_NE(text.find("info test.render_i hello world"), std::string::npos);
  // Info entries strip newlines and erase on empty value.
  obs::Registry::Instance().SetInfo("test.render_i", "");
  EXPECT_EQ(obs::Registry::Instance().RenderText().find("test.render_i"),
            std::string::npos);
}

}  // namespace
}  // namespace wayfinder
