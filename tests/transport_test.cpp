// Transport subsystem tests: the incremental frame assembler and the epoll
// event loop (src/transport/) exercised directly with a tiny echo handler —
// no service layer involved, so failures localize to the transport. Runs
// under ASan and TSan in CI.
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/transport/event_loop.h"
#include "src/transport/frame.h"
#include "src/util/socket.h"

namespace wayfinder {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// ---------------------------------------------------------------------------
// FrameAssembler.

TEST(FrameAssembler, ReassemblesByteAtATime) {
  std::string wire;
  ASSERT_TRUE(AppendFrame(&wire, "hello"));
  ASSERT_TRUE(AppendFrame(&wire, ""));  // Empty frames are legal.
  ASSERT_TRUE(AppendFrame(&wire, std::string(3000, 'x')));
  FrameAssembler assembler;
  std::vector<std::string> frames;
  std::string frame;
  for (char c : wire) {
    assembler.Feed(&c, 1);
    while (assembler.Next(&frame) == FrameAssembler::Result::kFrame) {
      frames.push_back(frame);
    }
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0], "hello");
  EXPECT_EQ(frames[1], "");
  EXPECT_EQ(frames[2], std::string(3000, 'x'));
  EXPECT_EQ(assembler.pending(), 0u);
}

TEST(FrameAssembler, DrainsMultipleFramesFromOneFeed) {
  std::string wire;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(AppendFrame(&wire, "frame-" + std::to_string(i)));
  }
  FrameAssembler assembler;
  assembler.Feed(wire.data(), wire.size());
  std::string frame;
  int count = 0;
  while (assembler.Next(&frame) == FrameAssembler::Result::kFrame) {
    EXPECT_EQ(frame, "frame-" + std::to_string(count));
    ++count;
  }
  EXPECT_EQ(count, 50);
}

TEST(FrameAssembler, ReportsOversizedHeaders) {
  const char header[4] = {'\x7f', '\x7f', '\x7f', '\x7f'};
  FrameAssembler assembler;
  assembler.Feed(header, sizeof(header));
  std::string frame;
  EXPECT_EQ(assembler.Next(&frame), FrameAssembler::Result::kOversized);
  // Oversized is sticky: the stream cannot be re-framed past a bad header.
  EXPECT_EQ(assembler.Next(&frame), FrameAssembler::Result::kOversized);
}

TEST(FrameAssembler, CompactsConsumedPrefix) {
  // Long-lived connections must not grow their rx buffer without bound:
  // after many consumed frames the buffered bytes stay near one frame.
  FrameAssembler assembler;
  std::string frame;
  for (int i = 0; i < 1000; ++i) {
    std::string wire;
    ASSERT_TRUE(AppendFrame(&wire, std::string(100, 'y')));
    assembler.Feed(wire.data(), wire.size());
    ASSERT_EQ(assembler.Next(&frame), FrameAssembler::Result::kFrame);
  }
  EXPECT_EQ(assembler.pending(), 0u);
}

// ---------------------------------------------------------------------------
// Event loop, driven by an echo handler.

class EchoHandler : public TransportHandler {
 public:
  explicit EchoHandler(TransportServer* server) : server_(server) {}

  void OnFrame(uint64_t conn, std::string payload) override {
    ++frames_;
    server_->Send(conn, "echo:" + payload);
  }
  void OnOversized(uint64_t conn) override {
    ++oversized_;
    server_->Send(conn, "too-big");
  }
  void OnOpen(uint64_t) override { ++opens_; }
  void OnClose(uint64_t) override { ++closes_; }

  std::atomic<int> frames_{0};
  std::atomic<int> opens_{0};
  std::atomic<int> closes_{0};
  std::atomic<int> oversized_{0};

 private:
  TransportServer* server_;
};

class TransportLoopTest : public ::testing::Test {
 protected:
  void StartServer(const char* socket_name, int idle_timeout_ms = 10000) {
    options_.socket_path = TempPath(socket_name);
    options_.idle_timeout_ms = idle_timeout_ms;
    options_.tick_ms = 10;
    handler_ = std::make_unique<EchoHandler>(&server_);
    ASSERT_TRUE(server_.Start(options_, handler_.get())) << server_.error();
    loop_ = std::thread([this] { server_.Run(); });
  }

  void TearDown() override {
    if (loop_.joinable()) {
      server_.Stop();
      loop_.join();
    }
  }

  // One blocking request/response round trip against the echo server.
  static bool RoundTrip(int fd, const std::string& payload) {
    if (!WriteFrame(fd, payload)) {
      return false;
    }
    std::string reply;
    return ReadFrame(fd, &reply) == FrameStatus::kOk &&
           reply == "echo:" + payload;
  }

  TransportOptions options_;
  TransportServer server_;
  std::unique_ptr<EchoHandler> handler_;
  std::thread loop_;
};

TEST_F(TransportLoopTest, SilentConnectionDoesNotBlockOthers) {
  // THE bug the blocking accept loop had: one connected-but-silent client
  // starved everyone behind it. Under the event loop a silent connection is
  // just an idle epoll registration.
  StartServer("wf_transport_silent.sock");
  UnixConn silent = ConnectUnix(options_.socket_path);
  ASSERT_TRUE(silent.ok());
  UnixConn active = ConnectUnix(options_.socket_path);
  ASSERT_TRUE(active.ok());
  SetRecvTimeout(active.fd(), 5000);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(RoundTrip(active.fd(), "req-" + std::to_string(i)));
  }
  EXPECT_EQ(handler_->frames_.load(), 20);
}

TEST_F(TransportLoopTest, ServesManyConcurrentClients) {
  StartServer("wf_transport_many.sock");
  constexpr int kClients = 8;
  constexpr int kRoundTrips = 50;
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([this, c, &failures] {
      UnixConn conn = ConnectUnix(options_.socket_path);
      if (!conn.ok()) {
        ++failures;
        return;
      }
      SetRecvTimeout(conn.fd(), 10000);
      for (int i = 0; i < kRoundTrips; ++i) {
        if (!RoundTrip(conn.fd(), std::to_string(c) + ":" + std::to_string(i))) {
          ++failures;
          return;
        }
      }
    });
  }
  for (std::thread& t : clients) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(handler_->frames_.load(), kClients * kRoundTrips);
}

TEST_F(TransportLoopTest, SweepsIdleButNotActiveConnections) {
  StartServer("wf_transport_idle.sock", /*idle_timeout_ms=*/100);
  UnixConn idle = ConnectUnix(options_.socket_path);
  ASSERT_TRUE(idle.ok());
  UnixConn active = ConnectUnix(options_.socket_path);
  ASSERT_TRUE(active.ok());
  SetRecvTimeout(active.fd(), 5000);
  // Keep one connection busy past the idle budget; say nothing on the other.
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(RoundTrip(active.fd(), "tick"));
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  std::string reply;
  EXPECT_NE(ReadFrame(idle.fd(), &reply), FrameStatus::kOk);  // Swept.
  EXPECT_TRUE(RoundTrip(active.fd(), "still-here"));          // Survived.
}

TEST_F(TransportLoopTest, OversizedFrameGetsCourtesyReplyThenClose) {
  StartServer("wf_transport_oversized.sock");
  UnixConn conn = ConnectUnix(options_.socket_path);
  ASSERT_TRUE(conn.ok());
  SetRecvTimeout(conn.fd(), 5000);
  const unsigned char header[4] = {0x7f, 0xff, 0xff, 0xff};
  ASSERT_EQ(::send(conn.fd(), header, sizeof(header), MSG_NOSIGNAL), 4);
  std::string reply;
  ASSERT_EQ(ReadFrame(conn.fd(), &reply), FrameStatus::kOk);
  EXPECT_EQ(reply, "too-big");
  // Then the drain closes the connection.
  EXPECT_EQ(ReadFrame(conn.fd(), &reply), FrameStatus::kClosed);
  EXPECT_EQ(handler_->oversized_.load(), 1);
}

TEST_F(TransportLoopTest, StopDrainsPendingTx) {
  // Responses queued before Stop() must still reach their clients — the
  // graceful-drain guarantee `stop` acknowledgements rely on.
  StartServer("wf_transport_drain.sock");
  UnixConn conn = ConnectUnix(options_.socket_path);
  ASSERT_TRUE(conn.ok());
  SetRecvTimeout(conn.fd(), 5000);
  ASSERT_TRUE(WriteFrame(conn.fd(), "last-words"));
  // Give the loop a moment to process the frame and queue the echo, then
  // stop without reading it first.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server_.Stop();
  loop_.join();
  std::string reply;
  ASSERT_EQ(ReadFrame(conn.fd(), &reply), FrameStatus::kOk);
  EXPECT_EQ(reply, "echo:last-words");
}

TEST_F(TransportLoopTest, PostRunsOnLoopThread) {
  StartServer("wf_transport_post.sock");
  std::atomic<bool> ran{false};
  server_.Post([&ran] { ran = true; });
  for (int i = 0; i < 200 && !ran; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(ran.load());
}

TEST_F(TransportLoopTest, CountsOpensAndCloses) {
  StartServer("wf_transport_lifecycle.sock");
  {
    UnixConn conn = ConnectUnix(options_.socket_path);
    ASSERT_TRUE(conn.ok());
    SetRecvTimeout(conn.fd(), 5000);
    ASSERT_TRUE(RoundTrip(conn.fd(), "hi"));
  }  // Destructor closes.
  for (int i = 0; i < 200 && handler_->closes_.load() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(handler_->opens_.load(), 1);
  EXPECT_EQ(handler_->closes_.load(), 1);
}

}  // namespace
}  // namespace wayfinder
