// Cross-feature integration tests: the new subsystems composed the way a
// real deployment would use them — frozen security parameters, deployment
// checks, checkpoints/resume, multi-metric search, fault injection, and the
// extra searchers, all in one session at a time.
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "src/configspace/linux_space.h"
#include "src/configspace/unikraft_space.h"
#include "src/core/multi_metric.h"
#include "src/core/wayfinder_api.h"
#include "src/platform/checkpoint.h"
#include "src/simos/testbench.h"

namespace wayfinder {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(CrossFeature, ResumedDeepTuneSessionKeepsFreezeAndFinishes) {
  ConfigSpace space = BuildLinuxSearchSpace();
  ASSERT_TRUE(space.Freeze("kernel.randomize_va_space", 2));

  // First half with DeepTune, checkpointed to disk and loaded back.
  std::string path = TempPath("wf_cross_freeze_resume.txt");
  {
    auto searcher = MakeSearcher("deeptune", &space, 0xc3);
    Testbench bench(&space, AppId::kNginx);
    SessionOptions options;
    options.max_iterations = 12;
    options.sample_options = SampleOptions::FavorRuntime();
    options.seed = 203;
    SessionResult half = RunSearch(&bench, searcher.get(), options);
    ASSERT_TRUE(SaveCheckpoint(half.history, path));
  }
  CheckpointLoadResult loaded = LoadCheckpoint(space, path);
  std::filesystem::remove(path);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  std::vector<TrialRecord> prior = std::move(loaded.history);

  auto searcher = MakeSearcher("deeptune", &space, 0xc4);
  Testbench bench(&space, AppId::kNginx);
  SessionOptions options;
  options.max_iterations = 24;
  options.sample_options = SampleOptions::FavorRuntime();
  options.seed = 204;
  SearchSession session(&bench, searcher.get(), options);
  session.Resume(prior);
  SessionResult result = session.Run();
  EXPECT_EQ(result.history.size(), 24u);
  for (const TrialRecord& trial : result.history) {
    ASSERT_EQ(trial.config.Get("kernel.randomize_va_space"), 2);
  }
}

TEST(CrossFeature, MultiMetricSearchRespectsFrozenParams) {
  ConfigSpace space = BuildLinuxSearchSpace();
  ASSERT_TRUE(space.Freeze("selinux", 1));

  MultiMetricOptions options;
  options.warmup = 4;
  options.pool_size = 24;
  options.model.steps_per_update = 2;
  MultiMetricSearcher searcher(
      &space, {MetricSpec::AppThroughput(), MetricSpec::MemoryFootprint()}, options);
  Testbench bench(&space, AppId::kNginx);
  SessionOptions session;
  session.max_iterations = 20;
  session.sample_options = SampleOptions::FavorRuntime();
  session.seed = 205;
  SessionResult result = RunSearch(&bench, &searcher, session);
  EXPECT_EQ(result.history.size(), 20u);
  for (const TrialRecord& trial : result.history) {
    ASSERT_EQ(trial.config.Get("selinux"), 1);
  }
}

TEST(CrossFeature, DeployCheckComposesWithDeepTune) {
  ConfigSpace space = BuildLinuxSearchSpace();
  auto searcher = MakeSearcher("deeptune", &space, 0xc5);
  Testbench bench(&space, AppId::kNginx);
  SessionOptions options;
  options.max_iterations = 30;
  options.sample_options = SampleOptions::FavorRuntime();
  options.seed = 206;
  options.deploy_check = [](const Configuration& config, const TrialOutcome&) {
    return config.Get("vm.swappiness") <= 80;  // "Production" requirement.
  };
  SessionResult result = RunSearch(&bench, searcher.get(), options);
  EXPECT_EQ(result.history.size(), 30u);
  for (const TrialRecord& trial : result.history) {
    if (trial.HasObjective()) {
      EXPECT_LE(trial.config.Get("vm.swappiness"), 80);
    }
  }
}

TEST(CrossFeature, FlakyTestbenchDoesNotDerailNewSearchers) {
  ConfigSpace space = BuildUnikraftSpace();
  TestbenchOptions bench_options;
  bench_options.substrate = Substrate::kUnikraftKvm;
  bench_options.transient_flake_prob = 0.25;
  for (const char* algorithm : {"annealing", "genetic", "smac"}) {
    Testbench bench(&space, AppId::kNginx, bench_options);
    auto searcher = MakeSearcher(algorithm, &space, 0xc6);
    SessionOptions options;
    options.max_iterations = 40;
    options.seed = 207;
    SessionResult result = RunSearch(&bench, searcher.get(), options);
    EXPECT_EQ(result.history.size(), 40u) << algorithm;
    EXPECT_NE(result.best(), nullptr) << algorithm;
  }
}

TEST(CrossFeature, MultiMetricJobWithFreezeEndToEnd) {
  JobParseResult parsed = ParseJobText(
      "name: cross-multi\n"
      "application: nginx\n"
      "metric: multi\n"
      "metrics:\n"
      "  - name: throughput\n"
      "    weight: 1.0\n"
      "  - name: memory\n"
      "    weight: 1.0\n"
      "budget:\n"
      "  iterations: 15\n"
      "search:\n"
      "  algorithm: deeptune\n"
      "  favor: runtime\n"
      "  seed: 9\n"
      "freeze:\n"
      "  - name: kernel.randomize_va_space\n"
      "    value: 2\n");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  JobRunResult run = RunJob(parsed.spec);
  ASSERT_TRUE(run.ok) << run.error;
  EXPECT_EQ(run.session.history.size(), 15u);
  for (const TrialRecord& trial : run.session.history) {
    ASSERT_EQ(trial.config.Get("kernel.randomize_va_space"), 2);
  }
}

TEST(CrossFeature, MakeJobSearcherSelectsTheMultiMetricVariant) {
  ConfigSpace space = BuildLinuxSearchSpace();
  JobSpec spec;
  spec.algorithm = "deeptune";
  spec.metrics.push_back({"throughput", 1.0});
  spec.metrics.push_back({"memory", 0.5});
  std::string error;
  auto searcher = MakeJobSearcher(spec, &space, &error);
  ASSERT_NE(searcher, nullptr) << error;
  EXPECT_EQ(searcher->Name(), "deeptune-multi");

  spec.metrics.clear();
  searcher = MakeJobSearcher(spec, &space, &error);
  ASSERT_NE(searcher, nullptr) << error;
  EXPECT_EQ(searcher->Name(), "deeptune");
}

// Session-completion sweep: every new searcher on every application.
struct SweepCase {
  const char* algorithm;
  AppId app;
};

class NewSearcherAppSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(NewSearcherAppSweep, SessionCompletesWithValidConfigs) {
  ConfigSpace space = BuildUnikraftSpace();
  auto searcher = MakeSearcher(GetParam().algorithm, &space, 0xc7);
  ASSERT_NE(searcher, nullptr);
  Testbench bench(&space, GetParam().app,
                  TestbenchOptions{.substrate = Substrate::kUnikraftKvm, .seed = 208});
  SessionOptions options;
  options.max_iterations = 25;
  options.seed = 209;
  SearchSession session(&bench, searcher.get(), options);
  while (session.Step()) {
    ASSERT_TRUE(space.IsValid(session.history().back().config));
  }
  EXPECT_EQ(session.history().size(), 25u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NewSearcherAppSweep,
    ::testing::Values(SweepCase{"annealing", AppId::kNginx},
                      SweepCase{"annealing", AppId::kRedis},
                      SweepCase{"annealing", AppId::kSqlite},
                      SweepCase{"annealing", AppId::kNpb},
                      SweepCase{"genetic", AppId::kNginx},
                      SweepCase{"genetic", AppId::kRedis},
                      SweepCase{"genetic", AppId::kSqlite},
                      SweepCase{"genetic", AppId::kNpb},
                      SweepCase{"hillclimb", AppId::kNginx},
                      SweepCase{"hillclimb", AppId::kRedis},
                      SweepCase{"hillclimb", AppId::kSqlite},
                      SweepCase{"hillclimb", AppId::kNpb},
                      SweepCase{"smac", AppId::kNginx},
                      SweepCase{"smac", AppId::kRedis},
                      SweepCase{"smac", AppId::kSqlite},
                      SweepCase{"smac", AppId::kNpb}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return std::string(info.param.algorithm) + "_" +
             std::string(GetApp(info.param.app).name);
    });

}  // namespace
}  // namespace wayfinder
