// wf-lint engine + rule-family tests (src/analyze/).
//
// Matrix per rule family: a known-bad fixture fires, the corresponding
// known-good fixture is silent, suppressions are honored, and suppressions
// that fail to name a (known) rule are rejected. The Historical* tests
// reproduce real pre-sweep violations harvested from this repo's git
// history — re-introducing any of them must fail CI.
//
// Fixture paths are repo-relative pretend-paths: rule scoping keys off the
// path, so a fixture can live anywhere in the tree it wants to test.
#include "src/analyze/wf_lint.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/analyze/lexer.h"

namespace wayfinder {
namespace analyze {
namespace {

std::vector<Diagnostic> Lint(const std::string& path, const std::string& src) {
  return LintSource(path, src);
}

int CountRule(const std::vector<Diagnostic>& diags, const std::string& rule) {
  int n = 0;
  for (const Diagnostic& d : diags) {
    if (d.rule == rule) ++n;
  }
  return n;
}

// Builds a suppression marker without embedding the literal sequence in
// this file (which is itself linted).
std::string Allow(const std::string& rules, const std::string& why) {
  return std::string("// wf-lint: ") + "allow(" + rules + ") — " + why;
}

// --- lexer ------------------------------------------------------------------

TEST(Lexer, CommentsStringsAndRawStringsAreOpaque) {
  std::string src =
      "// rand() in a comment\n"
      "/* rand() in a block\n   comment */\n"
      "const char* s = \"rand()\";\n"
      "const char* r = R\"(rand() time())\";\n"
      "char c = 'r';\n";
  auto tokens = Lex(src);
  int ident_rand = 0;
  for (const Token& t : tokens) {
    if (t.kind == TokenKind::kIdentifier && t.text == "rand") ++ident_rand;
  }
  EXPECT_EQ(ident_rand, 0);
  // And the whole fixture is silent even in the strictest directory.
  EXPECT_TRUE(Lint("src/core/fixture.cc", src).empty());
}

TEST(Lexer, TracksLinesThroughMultilineConstructs) {
  std::string src = "/* a\nb\nc */\nint x;\nR\"(1\n2)\";\nint y;\n";
  auto tokens = Lex(src);
  // `int x` lands on line 4; `int y` on line 7.
  int x_line = 0, y_line = 0;
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i].text == "int") {
      if (tokens[i + 1].text == "x") x_line = tokens[i + 1].line;
      if (tokens[i + 1].text == "y") y_line = tokens[i + 1].line;
    }
  }
  EXPECT_EQ(x_line, 4);
  EXPECT_EQ(y_line, 7);
}

TEST(Lexer, PreprocessorDirectivesAreSingleTokens) {
  auto tokens = Lex("#include <unistd.h>\nint v = 1;\n#define W write\n");
  int pp = 0;
  for (const Token& t : tokens) {
    if (t.kind == TokenKind::kPreprocessor) ++pp;
  }
  EXPECT_EQ(pp, 2);
  // The include of unistd.h / the define naming `write` never reach rules.
  EXPECT_TRUE(Lint("src/core/fixture.cc",
                  "#include <unistd.h>\n#define DO_IT write(fd, b, n)\n")
                  .empty());
}

// --- determinism: det-banned-call -------------------------------------------

TEST(DetBannedCall, FiresOnAmbientEntropyInCore) {
  std::string bad =
      "int f() {\n"
      "  int a = rand();\n"
      "  srand(42);\n"
      "  long t = time(nullptr);\n"
      "  const char* e = getenv(\"HOME\");\n"
      "  std::random_device rd;\n"
      "  auto n = std::chrono::system_clock::now();\n"
      "  return a;\n"
      "}\n";
  auto diags = Lint("src/core/fixture.cc", bad);
  EXPECT_EQ(CountRule(diags, "det-banned-call"), 6) << FormatText(diags);
}

TEST(DetBannedCall, SilentOnSeededRngAndMemberNames) {
  std::string good =
      "double f(Rng& rng, Widget& w) {\n"
      "  double u = rng.Uniform();\n"
      "  w.time(3);\n"          // Member call named `time` is not ::time.
      "  int t = obj->rand();\n"  // Member access, not libc.
      "  return u;\n"
      "}\n";
  EXPECT_TRUE(Lint("src/core/fixture.cc", good).empty());
}

TEST(DetBannedCall, OutOfScopeDirsAreExempt) {
  // The service plane may read the environment (flag parsing etc.).
  std::string src = "const char* e = std::getenv(\"WFD_SOCK\");\n";
  EXPECT_TRUE(Lint("src/service/fixture.cc", src).empty());
}

TEST(DetBannedCall, HistoricalKernelsGetenvFires) {
  // Harvested from src/nn/kernels.cc (PR 2): the WF_KERNELS backend
  // override read the environment in a determinism directory. It survives
  // in-tree only under a named suppression.
  std::string historical =
      "KernelBackend ResolveAuto() {\n"
      "  if (const char* env = std::getenv(\"WF_KERNELS\")) {\n"
      "    return KernelBackend::kPortable;\n"
      "  }\n"
      "  return Detect();\n"
      "}\n";
  auto diags = Lint("src/nn/fixture.cc", historical);
  EXPECT_EQ(CountRule(diags, "det-banned-call"), 1);
}

// --- determinism: det-rng-seed ----------------------------------------------

TEST(DetRngSeed, FiresOnAdHocSeed) {
  std::string bad = "void f() {\n  Rng rng(42);\n  Use(rng);\n}\n";
  auto diags = Lint("src/search/fixture.cc", bad);
  EXPECT_EQ(CountRule(diags, "det-rng-seed"), 1);
}

TEST(DetRngSeed, SilentOnDerivedSeeds) {
  std::string good =
      "void f(uint64_t seed, size_t i) {\n"
      "  Rng a(seed);\n"
      "  Rng b(HashCombine(seed, i));\n"
      "  Rng c(options_.seed);\n"
      "  Rng d = parent.Fork();\n"
      "  Rng plain;\n"           // Declaration without an ad-hoc seed.
      "  const Rng& ref = a;\n"  // Reference, not a construction.
      "}\n"
      "Rng MakeStream();\n";  // Function declaration returning Rng.
  auto diags = Lint("src/search/fixture.cc", good);
  EXPECT_EQ(CountRule(diags, "det-rng-seed"), 0) << FormatText(diags);
}

TEST(DetRngSeed, ProposalSeamIsExempt) {
  std::string seam = "Rng StreamFor() {\n  return Rng(0x1234);\n}\n";
  EXPECT_EQ(CountRule(Lint("src/core/proposal.cc", seam), "det-rng-seed"), 0);
  EXPECT_EQ(CountRule(Lint("src/core/fixture.cc", seam), "det-rng-seed"), 1);
}

// --- syscall discipline: io-syscall-seam ------------------------------------

TEST(IoSyscallSeam, FiresOnRawSyscallsOutsideSeams) {
  std::string bad =
      "void f(int fd) {\n"
      "  char b[8];\n"
      "  ::read(fd, b, 8);\n"
      "  write(fd, b, 8);\n"
      "  ::poll(nullptr, 0, 0);\n"
      "  std::rename(\"a\", \"b\");\n"
      "  unlink(\"a\");\n"
      "}\n";
  auto diags = Lint("src/core/fixture.cc", bad);
  EXPECT_EQ(CountRule(diags, "io-syscall-seam"), 5) << FormatText(diags);
}

TEST(IoSyscallSeam, SeamFilesAndMemberCallsAreExempt) {
  std::string raw = "void f(int fd) {\n  ::write(fd, \"x\", 1);\n}\n";
  EXPECT_TRUE(Lint("src/util/socket.cc", raw).empty());
  EXPECT_TRUE(Lint("src/platform/fs_faults.cc", raw).empty());
  std::string member =
      "void g(std::ostream& out, Frame& f) {\n"
      "  out.write(f.data(), f.size());\n"
      "  assembler->accept(f);\n"
      "  fs::rename(a, b);\n"  // Foreign-namespace qualification.
      "}\n";
  EXPECT_TRUE(Lint("src/service/fixture.cc", member).empty());
}

TEST(IoSyscallSeam, HistoricalTrialStoreCompactionFires) {
  // Harvested from src/service/trial_store.cc at PR 6 (pre fs-fault seam):
  // compaction fsync'd and renamed with raw calls, so fault plans could not
  // reach it. PR 8 routed it through FaultFsync/FaultRename.
  std::string historical =
      "bool CompactOne(std::FILE* out, const std::string& tmp_path,\n"
      "                const std::string& path) {\n"
      "  bool wrote = std::fflush(out) == 0 && ::fsync(fileno(out)) == 0;\n"
      "  if (!wrote || std::rename(tmp_path.c_str(), path.c_str()) != 0) {\n"
      "    return false;\n"
      "  }\n"
      "  return true;\n"
      "}\n";
  auto diags = Lint("src/service/fixture.cc", historical);
  EXPECT_EQ(CountRule(diags, "io-syscall-seam"), 2) << FormatText(diags);
  // The fsync does precede the rename, so the durability rule stays quiet.
  EXPECT_EQ(CountRule(diags, "dur-fsync-before-rename"), 0);
}

// --- durability: dur-fsync-before-rename ------------------------------------

TEST(DurFsyncBeforeRename, FiresOnRenameWithoutFsync) {
  std::string bad =
      "bool Publish(const std::string& tmp, const std::string& dst) {\n"
      "  WriteAll(tmp);\n"
      "  return FaultRename(tmp, dst);\n"
      "}\n";
  auto diags = Lint("src/service/fixture.cc", bad);
  EXPECT_EQ(CountRule(diags, "dur-fsync-before-rename"), 1);
}

TEST(DurFsyncBeforeRename, SilentWhenFsyncPrecedes) {
  std::string good =
      "bool Publish(std::FILE* f, const std::string& tmp,\n"
      "             const std::string& dst) {\n"
      "  if (!FaultFsync(fileno(f))) return false;\n"
      "  return FaultRename(tmp, dst);\n"
      "}\n";
  EXPECT_TRUE(Lint("src/service/fixture.cc", good).empty());
}

TEST(DurFsyncBeforeRename, ControlFlowBlocksStayInFunctionScope) {
  // The fsync sits in an if-block, the rename in a loop — same function, so
  // the obligation is met (brace tracking must not treat `if (...) {` as a
  // new function).
  std::string good =
      "bool Publish(std::FILE* f, const std::string& tmp,\n"
      "             const std::string& dst) {\n"
      "  if (f != nullptr) {\n"
      "    if (!FaultFsync(fileno(f))) return false;\n"
      "  }\n"
      "  for (int i = 0; i < 3; ++i) {\n"
      "    if (FaultRename(tmp, dst)) return true;\n"
      "  }\n"
      "  return false;\n"
      "}\n";
  EXPECT_TRUE(Lint("src/service/fixture.cc", good).empty());
}

// --- durability: dur-ofstream-seam ------------------------------------------

TEST(DurOfstreamSeam, FiresOutsideDurableWriters) {
  std::string bad =
      "void Dump(const std::string& path) {\n"
      "  std::ofstream out(path);\n"
      "  out << \"data\";\n"
      "}\n";
  EXPECT_EQ(CountRule(Lint("src/service/fixture.cc", bad), "dur-ofstream-seam"),
            1);
  // The durable writers and non-durability dirs are exempt.
  EXPECT_TRUE(Lint("src/service/trial_store.cc", bad).empty());
  EXPECT_TRUE(Lint("src/nn/fixture.cc", bad).empty());
}

TEST(DurOfstreamSeam, HistoricalSeedCheckpointFires) {
  // Harvested from src/platform/checkpoint.cc at the seed: checkpoints were
  // written straight through std::ofstream — no tmp file, no fsync, no
  // atomic rename — so a crash mid-write tore the checkpoint. PR 8 moved it
  // onto AtomicWriteFile.
  std::string historical =
      "bool SaveCheckpoint(const History& history, const std::string& path) {\n"
      "  std::ofstream out(path);\n"
      "  if (!out) {\n"
      "    return false;\n"
      "  }\n"
      "  out.precision(17);\n"
      "  out << \"wayfinder-checkpoint v1\\n\";\n"
      "  return true;\n"
      "}\n";
  auto diags = Lint("src/platform/checkpoint.cc", historical);
  EXPECT_EQ(CountRule(diags, "dur-ofstream-seam"), 1);
}

// --- concurrency: conc-thread-seam / conc-detach ----------------------------

TEST(ConcThread, FiresOutsideThreadPool) {
  std::string bad =
      "void f() {\n"
      "  std::thread t([] {});\n"
      "  t.join();\n"
      "}\n";
  EXPECT_EQ(CountRule(Lint("src/core/fixture.cc", bad), "conc-thread-seam"), 1);
  EXPECT_TRUE(Lint("src/util/thread_pool.cc", bad).empty());
}

TEST(ConcThread, HistoricalSessionDriverFires) {
  // Harvested from src/service/session_manager.cc (PR 5): the per-session
  // driver thread — the one std::thread the design intends, which is why it
  // carries a named suppression in-tree rather than a rewrite.
  std::string historical =
      "void SessionManager::StartEligible() {\n"
      "  managed->driver = std::thread(&SessionManager::Drive, this,\n"
      "                                managed.get());\n"
      "}\n";
  auto diags = Lint("src/service/fixture.cc", historical);
  EXPECT_EQ(CountRule(diags, "conc-thread-seam"), 1);
}

TEST(ConcDetach, FiresAnywhere) {
  std::string bad = "void f(std::thread& t) {\n  t.detach();\n}\n";
  EXPECT_EQ(CountRule(Lint("src/util/thread_pool.cc", bad), "conc-detach"), 1);
  std::string good = "void f(std::thread& t) {\n  t.join();\n}\n";
  EXPECT_EQ(CountRule(Lint("src/util/thread_pool.cc", good), "conc-detach"), 0);
}

// --- concurrency: conc-lock-order-comment -----------------------------------

TEST(ConcLockOrder, FiresOnUndocumentedMutexMember) {
  // Harvested shape: src/transport/event_loop.h's posted_mu_ pre-sweep.
  std::string bad =
      "class TransportServer {\n"
      " private:\n"
      "  std::mutex posted_mu_;\n"
      "};\n";
  EXPECT_EQ(
      CountRule(Lint("src/transport/event_loop.h", bad), "conc-lock-order-comment"),
      1);
  // Out-of-scope subsystems document locking in prose instead.
  EXPECT_TRUE(Lint("src/util/thread_pool.h", bad).empty());
}

TEST(ConcLockOrder, CommentBlockAboveOrTrailingSatisfies) {
  std::string good =
      "class TransportServer {\n"
      " private:\n"
      "  // lock-order: leaf — held only to swap the posted queue; never\n"
      "  // while calling out.\n"
      "  std::mutex posted_mu_;\n"
      "  std::mutex tx_mu_;  // lock-order: after posted_mu_.\n"
      "};\n";
  EXPECT_TRUE(Lint("src/transport/event_loop.h", good).empty());
  // lock_guard/unique_lock *uses* are not declarations and never flagged.
  std::string use =
      "void f() {\n  std::lock_guard<std::mutex> lock(mu_);\n}\n";
  EXPECT_TRUE(Lint("src/transport/event_loop.cc", use).empty());
}

// --- observability: obs-clock-seam -------------------------------------------

TEST(ObsClockSeam, FiresOnRawClockGettimeOutsideObs) {
  // Harvested from src/transport/event_loop.cc (PR 7): the idle-sweep
  // timestamp helper, rerouted through obs::NowMs() in PR 10.
  std::string bad =
      "int64_t NowMs() {\n"
      "  struct timespec ts;\n"
      "  clock_gettime(CLOCK_MONOTONIC, &ts);\n"
      "  return ts.tv_sec * 1000 + ts.tv_nsec / 1000000;\n"
      "}\n";
  EXPECT_EQ(
      CountRule(Lint("src/transport/event_loop.cc", bad), "obs-clock-seam"), 1);
  // The seam itself is exempt — that is where the clock lives.
  EXPECT_TRUE(Lint("src/obs/clock.cc", bad).empty());
}

TEST(ObsClockSeam, FiresOnSteadyClockTypeUse) {
  // Harvested from src/util/sim_clock.cc (PR 1): WallTimer's direct
  // steady_clock reads, rerouted through obs::NowNs() in PR 10. The type
  // name is flagged anywhere (not just call position): clock types leak
  // through auto and member declarations.
  std::string historical =
      "double WallTimer::Seconds() const {\n"
      "  auto now = std::chrono::steady_clock::now();\n"
      "  return std::chrono::duration<double>(now - start_).count();\n"
      "}\n";
  auto diags = Lint("src/util/sim_clock.cc", historical);
  EXPECT_EQ(CountRule(diags, "obs-clock-seam"), 1) << FormatText(diags);
}

TEST(ObsClockSeam, SeamRouteAndMemberAccessAreSilent) {
  std::string good =
      "bool WaitDone(int64_t timeout_ms) {\n"
      "  auto deadline = obs::DeadlineAfterMs(timeout_ms);\n"
      "  return obs::NowNs() < 0;\n"
      "}\n";
  EXPECT_TRUE(Lint("src/service/session_manager.cc", good).empty());
  // A member that merely shares the clock's name is someone else's object.
  std::string member = "void f(T& t) {\n  t.steady_clock = 1;\n}\n";
  EXPECT_TRUE(Lint("src/core/fixture.cc", member).empty());
}

TEST(ObsDeterminism, BannedCallsCoverObsDir) {
  // src/obs/ sits inside instrumented search-core code, so the ambient-
  // entropy bans extend to it: its one sanctioned clock is steady_clock.
  std::string bad =
      "uint64_t Stamp() {\n"
      "  return static_cast<uint64_t>(time(nullptr));\n"
      "}\n";
  EXPECT_EQ(CountRule(Lint("src/obs/metrics.cc", bad), "det-banned-call"), 1);
}

TEST(ObsLockOrder, ObsMutexMembersNeedComments) {
  std::string bad =
      "class TraceRing {\n"
      " private:\n"
      "  std::mutex mutex_;\n"
      "};\n";
  EXPECT_EQ(
      CountRule(Lint("src/obs/trace.h", bad), "conc-lock-order-comment"), 1);
}

// --- hot path: hot-path-alloc -----------------------------------------------

// Assembles the hot-path marker (word, colon) without this comment or the
// string literals below becoming markers themselves.
std::string HotMarker() { return std::string("// wf-hot-path") + ": test\n"; }

TEST(HotPathAlloc, FiresOnAllocationInMarkedFunction) {
  std::string bad = HotMarker() +
                    "void Forward(Workspace& ws, size_t n) {\n"
                    "  std::vector<double> tmp(n);\n"
                    "  auto p = std::make_unique<double[]>(n);\n"
                    "  double* q = new double[n];\n"
                    "  Use(tmp, p, q);\n"
                    "}\n";
  auto diags = Lint("src/nn/fixture.cc", bad);
  EXPECT_EQ(CountRule(diags, "hot-path-alloc"), 3) << FormatText(diags);
}

TEST(HotPathAlloc, SeedStyleNaiveLayerFires) {
  // Models the seed's textbook dense layer (one fresh buffer per op) — the
  // allocation pattern PR 1 replaced with the workspace arena. Marked hot,
  // it must fire; that is exactly the regression the arena tests pin
  // dynamically via workspace_grow_count().
  std::string historical =
      HotMarker() +
      "std::vector<double> DenseForward(const std::vector<double>& x,\n"
      "                                 const Weights& w) {\n"
      "  std::vector<double> out(w.rows);\n"
      "  MatVec(w, x, &out);\n"
      "  return out;\n"
      "}\n";
  EXPECT_EQ(CountRule(Lint("src/nn/fixture.cc", historical), "hot-path-alloc"),
            1);
}

TEST(HotPathAlloc, UnmarkedFunctionsAndReferencesAreSilent) {
  std::string good =
      "void Cold(size_t n) {\n"
      "  std::vector<double> tmp(n);\n"  // No marker: allowed.
      "  Use(tmp);\n"
      "}\n" +
      HotMarker() +
      "void Hot(Workspace& ws) {\n"
      "  const std::vector<double>& row = ws.rows[0];\n"  // Reference: fine.
      "  std::vector<double>* ptr = &ws.scratch;\n"       // Pointer: fine.
      "  Use(row, ptr);\n"
      "}\n";
  auto diags = Lint("src/nn/fixture.cc", good);
  EXPECT_EQ(CountRule(diags, "hot-path-alloc"), 0) << FormatText(diags);
}

TEST(HotPathAlloc, MarkerOnDeclarationDoesNotLeak) {
  // A marker above a *declaration* must not arm the next unrelated body.
  std::string src = HotMarker() +
                    "void Forward(const Matrix& x);\n"
                    "void Helper(size_t n) {\n"
                    "  std::vector<double> tmp(n);\n"
                    "  Use(tmp);\n"
                    "}\n";
  EXPECT_EQ(CountRule(Lint("src/nn/fixture.cc", src), "hot-path-alloc"), 0);
}

// --- suppressions ------------------------------------------------------------

TEST(Suppression, TrailingAndStandaloneAreHonored) {
  std::string trailing =
      "void f() {\n"
      "  int a = rand();  " + Allow("det-banned-call", "fixture") + "\n"
      "  Use(a);\n"
      "}\n";
  EXPECT_TRUE(Lint("src/core/fixture.cc", trailing).empty());

  std::string standalone =
      "void f() {\n"
      "  " + Allow("det-banned-call", "fixture") + "\n"
      "  int a = rand();\n"
      "  Use(a);\n"
      "}\n";
  EXPECT_TRUE(Lint("src/core/fixture.cc", standalone).empty());
}

TEST(Suppression, OnlyNamedRuleIsSuppressed) {
  // The suppression names det-rng-seed but the line violates
  // det-banned-call: the violation must survive and the suppression is
  // reported unused.
  std::string src =
      "void f() {\n"
      "  int a = rand();  " + Allow("det-rng-seed", "wrong rule") + "\n"
      "  Use(a);\n"
      "}\n";
  auto diags = Lint("src/core/fixture.cc", src);
  EXPECT_EQ(CountRule(diags, "det-banned-call"), 1);
  EXPECT_EQ(CountRule(diags, "unused-suppression"), 1);
}

TEST(Suppression, UnknownRuleIsRejected) {
  std::string src =
      "void f() {\n"
      "  int a = rand();  " + Allow("no-such-rule", "typo") + "\n"
      "  Use(a);\n"
      "}\n";
  auto diags = Lint("src/core/fixture.cc", src);
  EXPECT_EQ(CountRule(diags, "bad-suppression"), 1);
  // And the underlying violation still fires — a bad marker never silences.
  EXPECT_EQ(CountRule(diags, "det-banned-call"), 1);
}

TEST(Suppression, EmptyAllowListIsRejected) {
  std::string src =
      "void f() {\n"
      "  int a = rand();  " + Allow("", "names nothing") + "\n"
      "  Use(a);\n"
      "}\n";
  auto diags = Lint("src/core/fixture.cc", src);
  EXPECT_EQ(CountRule(diags, "bad-suppression"), 1);
  EXPECT_EQ(CountRule(diags, "det-banned-call"), 1);
}

TEST(Suppression, DeletingALoadBearingSuppressionResurfaces) {
  // The acceptance property in one unit: with the suppression the fixture
  // is clean; with the marker line deleted the violation fails the lint.
  std::string with =
      "void f() {\n"
      "  " + Allow("det-banned-call", "pinned fixture") + "\n"
      "  srand(7);\n"
      "}\n";
  std::string without = "void f() {\n  srand(7);\n}\n";
  EXPECT_TRUE(Lint("src/core/fixture.cc", with).empty());
  EXPECT_EQ(CountRule(Lint("src/core/fixture.cc", without), "det-banned-call"),
            1);
}

TEST(Suppression, StaleSuppressionIsFlaggedUnused) {
  std::string src =
      "void f() {\n"
      "  " + Allow("det-banned-call", "nothing wrong below") + "\n"
      "  int a = 1;\n"
      "  Use(a);\n"
      "}\n";
  auto diags = Lint("src/core/fixture.cc", src);
  EXPECT_EQ(CountRule(diags, "unused-suppression"), 1);
}

TEST(Suppression, MultiRuleListCoversBoth) {
  std::string src =
      "void f() {\n"
      "  " + Allow("det-banned-call, det-rng-seed", "both on next line") + "\n"
      "  Rng rng(time(nullptr));\n"
      "  Use(rng);\n"
      "}\n";
  EXPECT_TRUE(Lint("src/search/fixture.cc", src).empty());
}

// --- output formats ----------------------------------------------------------

TEST(Output, TextAndJsonCarryFileLineRule) {
  auto diags = Lint("src/core/fixture.cc", "int a = rand();\n");
  ASSERT_EQ(diags.size(), 1u);
  std::string text = FormatText(diags);
  EXPECT_NE(text.find("src/core/fixture.cc:1"), std::string::npos);
  EXPECT_NE(text.find("det-banned-call"), std::string::npos);
  std::string json = FormatJson(diags);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"by_rule\""), std::string::npos);
  EXPECT_NE(json.find("\"det-banned-call\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"line\": 1"), std::string::npos);
}

TEST(Output, EmptyJsonIsWellFormed) {
  std::string json = FormatJson({});
  EXPECT_NE(json.find("\"count\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"diagnostics\": []"), std::string::npos);
}

// --- registry ----------------------------------------------------------------

TEST(Registry, EveryRuleHasIdAndSummaryAndScopes) {
  const auto& rules = AllRules();
  ASSERT_GE(rules.size(), 11u);
  for (const auto& r : rules) {
    EXPECT_FALSE(r.id.empty());
    EXPECT_FALSE(r.summary.empty());
    EXPECT_TRUE(IsKnownRule(r.id));
  }
  EXPECT_FALSE(IsKnownRule("no-such-rule"));
  // Spot-check the per-directory registry.
  EXPECT_TRUE(RuleAppliesTo("det-banned-call", "src/core/dtm.cc"));
  EXPECT_FALSE(RuleAppliesTo("det-banned-call", "src/service/wfd.cc"));
  EXPECT_FALSE(RuleAppliesTo("io-syscall-seam", "src/util/socket.cc"));
  EXPECT_TRUE(RuleAppliesTo("io-syscall-seam", "src/util/yaml.cc"));
  EXPECT_FALSE(RuleAppliesTo("det-rng-seed", "src/core/proposal.cc"));
  EXPECT_TRUE(RuleAppliesTo("conc-lock-order-comment",
                            "src/transport/event_loop.h"));
}

}  // namespace
}  // namespace analyze
}  // namespace wayfinder
