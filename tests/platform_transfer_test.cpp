// Tests for cross-platform performance transfer (§3.5 future work): the
// least-squares fit, calibration over two testbenches, and history mapping.
#include <cmath>

#include <gtest/gtest.h>

#include "src/configspace/linux_space.h"
#include "src/core/platform_transfer.h"
#include "src/platform/random_search.h"
#include "src/platform/session.h"

namespace wayfinder {
namespace {

TEST(LinearTransferTest, RecoversAKnownLinearMap) {
  std::vector<double> source = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<double> target;
  for (double x : source) {
    target.push_back(2.5 * x + 10.0);
  }
  LinearTransfer transfer = FitLinearTransfer(source, target);
  EXPECT_NEAR(transfer.slope, 2.5, 1e-9);
  EXPECT_NEAR(transfer.intercept, 10.0, 1e-9);
  EXPECT_NEAR(transfer.correlation, 1.0, 1e-9);
  EXPECT_TRUE(transfer.Reliable());
  EXPECT_NEAR(transfer.Predict(10.0), 35.0, 1e-9);
}

TEST(LinearTransferTest, NoisyMapStillCorrelates) {
  Rng rng(501);
  std::vector<double> source;
  std::vector<double> target;
  for (int i = 0; i < 100; ++i) {
    double x = rng.Uniform(1000, 2000);
    source.push_back(x);
    target.push_back(0.5 * x - 100.0 + rng.Normal(0.0, 20.0));
  }
  LinearTransfer transfer = FitLinearTransfer(source, target);
  EXPECT_NEAR(transfer.slope, 0.5, 0.05);
  EXPECT_GT(transfer.correlation, 0.95);
}

TEST(LinearTransferTest, DegenerateInputsFallBackToIdentity) {
  LinearTransfer empty = FitLinearTransfer({}, {});
  EXPECT_DOUBLE_EQ(empty.slope, 1.0);
  EXPECT_DOUBLE_EQ(empty.intercept, 0.0);
  EXPECT_FALSE(empty.Reliable());

  LinearTransfer single = FitLinearTransfer({5.0}, {7.0});
  EXPECT_FALSE(single.Reliable());

  // Zero source variance: slope cannot be estimated.
  LinearTransfer flat = FitLinearTransfer({3, 3, 3, 3}, {1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(flat.slope, 1.0);
  EXPECT_DOUBLE_EQ(flat.correlation, 0.0);
}

TEST(LinearTransferTest, AnticorrelatedPlatformsAreUnreliable) {
  std::vector<double> source = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<double> target = {10, 9, 8, 7, 6, 5, 4, 3, 2, 1};
  LinearTransfer transfer = FitLinearTransfer(source, target);
  EXPECT_LT(transfer.correlation, 0.0);
  EXPECT_FALSE(transfer.Reliable());
}

TEST(PlatformTransferTest, CalibratesAcrossSubstrates) {
  // x86 KVM -> RISC-V QEMU for the same app and space: the substrates share
  // the configuration-sensitivity structure, so the metrics correlate and
  // the linear transfer is reliable.
  ConfigSpace space = BuildLinuxSearchSpace();
  Testbench x86(&space, AppId::kNginx,
                TestbenchOptions{.substrate = Substrate::kLinuxKvm, .seed = 601});
  Testbench riscv(&space, AppId::kNginx,
                  TestbenchOptions{.substrate = Substrate::kLinuxRiscvQemu, .seed = 601});
  LinearTransfer transfer = CalibrateTransfer(x86, riscv, /*pairs=*/24, /*seed=*/602);
  EXPECT_GE(transfer.pairs, 8u);
  EXPECT_TRUE(transfer.Reliable())
      << "pairs=" << transfer.pairs << " corr=" << transfer.correlation;

  // The transferred prediction lands near the real RISC-V measurement for a
  // fresh configuration (within the substrate's noise envelope).
  Rng rng(603);
  Configuration probe = space.RandomConfiguration(rng, SampleOptions::FavorRuntime());
  Rng eval_rng(604);
  TrialOutcome on_x86 = x86.Evaluate(probe, eval_rng, nullptr);
  TrialOutcome on_riscv = riscv.Evaluate(probe, eval_rng, nullptr);
  if (on_x86.ok() && on_riscv.ok()) {
    double predicted = transfer.Predict(on_x86.metric);
    EXPECT_NEAR(predicted, on_riscv.metric, 0.35 * on_riscv.metric);
  }
}

TEST(PlatformTransferTest, HistoryMappingPreservesStructure) {
  ConfigSpace space = BuildLinuxSearchSpace();
  Testbench bench(&space, AppId::kNginx);
  RandomSearcher searcher;
  SessionOptions options;
  options.max_iterations = 30;
  options.sample_options = SampleOptions::FavorRuntime();
  options.seed = 605;
  SessionResult result = RunSearch(&bench, &searcher, options);

  LinearTransfer transfer;
  transfer.slope = 0.4;
  transfer.intercept = 100.0;
  transfer.pairs = 20;
  transfer.correlation = 0.95;
  std::vector<TrialRecord> mapped = TransferHistory(result.history, transfer);
  ASSERT_EQ(mapped.size(), result.history.size());
  for (size_t i = 0; i < mapped.size(); ++i) {
    const TrialRecord& before = result.history[i];
    const TrialRecord& after = mapped[i];
    EXPECT_EQ(after.crashed(), before.crashed());
    EXPECT_EQ(after.config.values(), before.config.values());
    if (before.outcome.ok()) {
      EXPECT_NEAR(after.outcome.metric, 0.4 * before.outcome.metric + 100.0, 1e-9);
      EXPECT_NEAR(after.objective, 0.4 * before.objective + 100.0, 1e-9);
    } else {
      EXPECT_FALSE(after.HasObjective());
    }
  }
  // Ordering of successful trials is preserved (positive slope).
  for (size_t i = 0; i + 1 < mapped.size(); ++i) {
    if (result.history[i].HasObjective() && result.history[i + 1].HasObjective()) {
      EXPECT_EQ(result.history[i].objective < result.history[i + 1].objective,
                mapped[i].objective < mapped[i + 1].objective);
    }
  }
}

TEST(PlatformTransferTest, TransferredHistorySeedsASession) {
  ConfigSpace space = BuildLinuxSearchSpace();
  // Source history on x86.
  Testbench x86(&space, AppId::kNginx,
                TestbenchOptions{.substrate = Substrate::kLinuxKvm, .seed = 611});
  RandomSearcher source_searcher;
  SessionOptions options;
  options.max_iterations = 25;
  options.sample_options = SampleOptions::FavorRuntime();
  options.seed = 612;
  SessionResult source_result = RunSearch(&x86, &source_searcher, options);

  // Calibrate and map into RISC-V units.
  Testbench x86_cal(&space, AppId::kNginx,
                    TestbenchOptions{.substrate = Substrate::kLinuxKvm, .seed = 611});
  Testbench riscv_cal(&space, AppId::kNginx,
                      TestbenchOptions{.substrate = Substrate::kLinuxRiscvQemu, .seed = 611});
  LinearTransfer transfer = CalibrateTransfer(x86_cal, riscv_cal, 16, 613);
  std::vector<TrialRecord> seeded = TransferHistory(source_result.history, transfer);

  // Resume a RISC-V session from the transferred knowledge.
  Testbench riscv(&space, AppId::kNginx,
                  TestbenchOptions{.substrate = Substrate::kLinuxRiscvQemu, .seed = 611});
  RandomSearcher target_searcher;
  options.max_iterations = 35;
  options.seed = 614;
  SearchSession session(&riscv, &target_searcher, options);
  session.Resume(seeded);
  SessionResult result = session.Run();
  EXPECT_EQ(result.history.size(), 35u);
}

}  // namespace
}  // namespace wayfinder
