// Tests for history export and summaries.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/configspace/linux_space.h"
#include "src/platform/history_export.h"
#include "src/platform/random_search.h"
#include "src/platform/session.h"

namespace wayfinder {
namespace {

std::vector<TrialRecord> SampleHistory() {
  ConfigSpace space = BuildLinuxSearchSpace();
  Testbench bench(&space, AppId::kNginx);
  RandomSearcher searcher;
  SessionOptions options;
  options.max_iterations = 30;
  options.sample_options = SampleOptions::FavorRuntime();
  options.seed = 77;
  static SessionResult result = RunSearch(&bench, &searcher, options);
  return result.history;
}

TEST(HistoryExport, WritesOneRowPerTrialPlusHeader) {
  std::vector<TrialRecord> history = SampleHistory();
  std::string path = "/tmp/wf_history_test.csv";
  ASSERT_TRUE(ExportHistoryCsv(history, path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
  }
  EXPECT_EQ(lines, history.size() + 1);
  std::remove(path.c_str());
}

TEST(HistoryExport, FailsOnUnwritablePath) {
  EXPECT_FALSE(ExportHistoryCsv(SampleHistory(), "/nonexistent-dir/x.csv"));
}

TEST(HistorySummaryTest, CountsMatchHistory) {
  std::vector<TrialRecord> history = SampleHistory();
  HistorySummary summary = SummarizeHistory(history);
  EXPECT_EQ(summary.trials, history.size());
  size_t crashes = 0;
  for (const TrialRecord& trial : history) {
    crashes += trial.crashed() ? 1 : 0;
  }
  EXPECT_EQ(summary.crashes, crashes);
  EXPECT_EQ(summary.crashes,
            summary.build_failures + summary.boot_failures + summary.run_crashes);
  EXPECT_TRUE(summary.has_best);
  EXPECT_GT(summary.total_sim_seconds, 0.0);
}

TEST(HistorySummaryTest, EmptyHistory) {
  HistorySummary summary = SummarizeHistory({});
  EXPECT_EQ(summary.trials, 0u);
  EXPECT_FALSE(summary.has_best);
  EXPECT_DOUBLE_EQ(summary.mean_searcher_seconds, 0.0);
}

}  // namespace
}  // namespace wayfinder
