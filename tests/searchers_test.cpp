// Tests for the baseline searchers: Gaussian process + Bayesian
// optimization, the Unicorn-style causal searcher, and the random forest.
#include <gtest/gtest.h>

#include <cmath>

#include "src/bayes/bayes_search.h"
#include "src/causal/causal_search.h"
#include "src/configspace/unikraft_space.h"
#include "src/forest/random_forest.h"
#include "src/platform/session.h"

namespace wayfinder {
namespace {

// --- Gaussian process ---------------------------------------------------------

TEST(Gp, InterpolatesTrainingPoints) {
  GpOptions options;
  options.noise_variance = 1e-6;
  GaussianProcess gp(options);
  std::vector<std::vector<double>> xs = {{0.0}, {0.5}, {1.0}};
  std::vector<double> ys = {1.0, 2.0, 0.5};
  ASSERT_TRUE(gp.Fit(xs, ys));
  for (size_t i = 0; i < xs.size(); ++i) {
    GaussianProcess::Posterior p = gp.Predict(xs[i]);
    EXPECT_NEAR(p.mean, ys[i], 1e-2);
    EXPECT_LT(p.variance, 0.05);
  }
}

TEST(Gp, UncertaintyGrowsAwayFromData) {
  GaussianProcess gp;
  std::vector<std::vector<double>> xs = {{0.0}, {0.1}};
  std::vector<double> ys = {0.0, 0.1};
  ASSERT_TRUE(gp.Fit(xs, ys));
  double near = gp.Predict({0.05}).variance;
  double far = gp.Predict({5.0}).variance;
  EXPECT_GT(far, near * 2.0);
}

TEST(Gp, EmptyFitPredictsPrior) {
  GaussianProcess gp;
  ASSERT_TRUE(gp.Fit({}, {}));
  GaussianProcess::Posterior p = gp.Predict({1.0});
  EXPECT_DOUBLE_EQ(p.mean, 0.0);
  EXPECT_GT(p.variance, 0.5);
}

TEST(Gp, MemoryGrowsQuadratically) {
  GaussianProcess gp;
  Rng rng(1);
  auto fit_n = [&](size_t n) {
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    for (size_t i = 0; i < n; ++i) {
      xs.push_back({rng.Uniform(), rng.Uniform()});
      ys.push_back(rng.Normal());
    }
    gp.Fit(xs, ys);
    return gp.MemoryBytes();
  };
  size_t small = fit_n(50);
  size_t big = fit_n(200);
  // 4x the points -> ~16x the kernel memory (O(n^2)).
  EXPECT_GT(big, small * 8);
}

TEST(ExpectedImprovementTest, Properties) {
  // At the incumbent with small sigma, EI is tiny; above it, positive.
  EXPECT_LT(ExpectedImprovement(0.0, 1e-8, 0.0), 1e-4);
  EXPECT_NEAR(ExpectedImprovement(1.0, 1e-12, 0.0), 1.0, 1e-6);
  // More uncertainty -> more EI below the incumbent.
  EXPECT_GT(ExpectedImprovement(-0.5, 4.0, 0.0), ExpectedImprovement(-0.5, 0.01, 0.0));
}

TEST(BayesSearcherTest, FindsGoodUnikraftConfigs) {
  ConfigSpace space = BuildUnikraftSpace();
  TestbenchOptions bench_options;
  bench_options.substrate = Substrate::kUnikraftKvm;
  Testbench bench(&space, AppId::kNginx, bench_options);
  BayesSearcher searcher(&space);
  SessionOptions options;
  options.max_iterations = 60;
  options.seed = 0xb0;
  SessionResult result = RunSearch(&bench, &searcher, options);
  ASSERT_NE(result.best(), nullptr);
  // Must clearly beat the 12000 req/s Unikraft baseline within 60 iters.
  EXPECT_GT(result.best()->outcome.metric, 14000.0);
}

// --- Causal searcher -------------------------------------------------------------

ConfigSpace TinySpace(size_t d) {
  ConfigSpace space;
  for (size_t i = 0; i < d; ++i) {
    space.Add(
        ParamSpec::Int("k" + std::to_string(i), ParamPhase::kRuntime, "kernel", 0, 100, 50));
  }
  return space;
}

TEST(CausalSearcherTest, IdentifiesTrueParents) {
  ConfigSpace space = TinySpace(8);
  CausalSearcher searcher(&space);
  std::vector<TrialRecord> history;
  Rng rng(2);
  SearchContext context;
  context.space = &space;
  context.history = &history;
  context.rng = &rng;
  // Objective depends only on k0 (positively) and k1 (negatively).
  for (int i = 0; i < 120; ++i) {
    TrialRecord record;
    record.config = space.RandomConfiguration(rng);
    record.outcome.status = TrialOutcome::Status::kOk;
    record.objective = static_cast<double>(record.config.Raw(0)) -
                       0.8 * static_cast<double>(record.config.Raw(1)) + rng.Normal(0.0, 3.0);
    searcher.Observe(record, context);
  }
  std::vector<size_t> parents = searcher.CausalParents();
  ASSERT_GE(parents.size(), 2u);
  EXPECT_TRUE(parents[0] == 0 || parents[0] == 1);
  EXPECT_TRUE(parents[1] == 0 || parents[1] == 1);
}

TEST(CausalSearcherTest, PerIterationCostGrows) {
  ConfigSpace space = TinySpace(24);
  CausalSearcher searcher(&space);
  std::vector<TrialRecord> history;
  Rng rng(3);
  SearchContext context;
  context.space = &space;
  context.history = &history;
  context.rng = &rng;
  double early = 0.0;
  double late = 0.0;
  for (int i = 0; i < 180; ++i) {
    TrialRecord record;
    record.config = searcher.Propose(context);
    record.outcome.status = TrialOutcome::Status::kOk;
    record.objective = static_cast<double>(record.config.Raw(0));
    WallTimer timer;
    searcher.Observe(record, context);
    double cost = timer.ElapsedSeconds();
    if (i < 40) {
      early += cost;
    }
    if (i >= 140) {
      late += cost;
    }
  }
  EXPECT_GT(late, early * 2.0);  // Non-incremental refits get slower.
  EXPECT_GT(searcher.MemoryBytes(), 100000u);
}

// --- Random forest ---------------------------------------------------------------

TEST(RandomForestTest, LearnsSimpleFunction) {
  Rng rng(4);
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  for (int i = 0; i < 600; ++i) {
    double a = rng.Uniform();
    double b = rng.Uniform();
    double c = rng.Uniform();
    xs.push_back({a, b, c});
    ys.push_back(5.0 * a + 0.1 * b);
  }
  RandomForestRegressor forest;
  forest.Fit(xs, ys);
  EXPECT_TRUE(forest.IsFitted());
  double err = 0.0;
  for (int i = 0; i < 100; ++i) {
    double a = rng.Uniform();
    err += std::abs(forest.Predict({a, 0.5, 0.5}) - (5.0 * a + 0.05));
  }
  EXPECT_LT(err / 100.0, 0.8);
}

TEST(RandomForestTest, ImportanceRanksDominantFeature) {
  Rng rng(5);
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  for (int i = 0; i < 800; ++i) {
    std::vector<double> x = {rng.Uniform(), rng.Uniform(), rng.Uniform(), rng.Uniform()};
    xs.push_back(x);
    ys.push_back(10.0 * x[2] + 0.5 * x[0] + rng.Normal(0.0, 0.1));
  }
  RandomForestRegressor forest;
  forest.Fit(xs, ys);
  std::vector<double> importance = forest.FeatureImportance();
  ASSERT_EQ(importance.size(), 4u);
  EXPECT_GT(importance[2], 0.5);
  EXPECT_GT(importance[2], importance[0]);
  EXPECT_GT(importance[0], importance[1]);
  double total = importance[0] + importance[1] + importance[2] + importance[3];
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ImportanceSimilarityTest, CosineProperties) {
  std::vector<double> a = {1.0, 0.0, 0.5};
  EXPECT_NEAR(ImportanceSimilarity(a, a), 1.0, 1e-12);
  std::vector<double> orthogonal = {0.0, 1.0, 0.0};
  EXPECT_NEAR(ImportanceSimilarity(a, orthogonal), 0.0, 1e-12);
  std::vector<double> zero = {0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(ImportanceSimilarity(a, zero), 0.0);
}

}  // namespace
}  // namespace wayfinder
