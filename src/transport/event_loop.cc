#include "src/transport/event_loop.h"

#include <errno.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <utility>

#include "src/obs/clock.h"
#include "src/obs/metrics.h"

namespace wayfinder {

namespace {

// epoll user-data ids for the two non-connection fds.
constexpr uint64_t kListenerId = 0;
constexpr uint64_t kWakeId = ~0ULL;

// Monotonic milliseconds from the TraceClock seam (obs-clock-seam rule:
// src/obs/ owns every wall-clock read in the tree).
int64_t NowMs() { return obs::NowMs(); }

// Transport-plane instruments. Static-init registration like the searcher
// registry: the names exist from process start; recording stays a no-op
// until obs::SetEnabled(true).
obs::Counter& g_frames_rx = obs::Registry::Instance().GetCounter("transport.frames_rx");
obs::Counter& g_frames_tx = obs::Registry::Instance().GetCounter("transport.frames_tx");
obs::Counter& g_bytes_rx = obs::Registry::Instance().GetCounter("transport.bytes_rx");
obs::Counter& g_bytes_tx = obs::Registry::Instance().GetCounter("transport.bytes_tx");
obs::Gauge& g_connections = obs::Registry::Instance().GetGauge("transport.connections");
obs::Gauge& g_tx_queue_bytes =
    obs::Registry::Instance().GetGauge("transport.tx_queue_bytes");
obs::Histogram& g_dispatch_ns =
    obs::Registry::Instance().GetHistogram("transport.dispatch_ns");
obs::Histogram& g_frame_bytes =
    obs::Registry::Instance().GetHistogram("transport.frame_bytes");

}  // namespace

TransportServer::~TransportServer() {
  for (auto& entry : conns_) {
    ::close(entry.second.fd);
  }
  conns_.clear();
  if (wake_fd_ >= 0) {
    ::close(wake_fd_);
  }
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
  }
}

bool TransportServer::Start(const TransportOptions& options,
                            TransportHandler* handler) {
  options_ = options;
  handler_ = handler;
  if (!listener_.Listen(options.socket_path, options.backlog)) {
    error_ = listener_.error();
    return false;
  }
  if (!SetNonBlocking(listener_.fd())) {
    error_ = std::string("fcntl(listener): ") + ::strerror(errno);
    return false;
  }
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    error_ = std::string("epoll/eventfd: ") + ::strerror(errno);
    return false;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerId;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listener_.fd(), &ev) != 0) {
    error_ = std::string("epoll_ctl(listener): ") + ::strerror(errno);
    return false;
  }
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeId;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    error_ = std::string("epoll_ctl(wake): ") + ::strerror(errno);
    return false;
  }
  return true;
}

void TransportServer::Stop() {
  stop_ = true;
  if (wake_fd_ >= 0) {
    uint64_t one = 1;
    // write(2) is async-signal-safe; this is the daemon's SIGTERM path. The
    // socket-seam helpers are not signal-safe, so the raw call is required.
    // wf-lint: allow(io-syscall-seam) — eventfd wake from a signal handler.
    ssize_t ignored = ::write(wake_fd_, &one, sizeof(one));
    (void)ignored;
  }
}

void TransportServer::Post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(posted_mu_);
    posted_.push_back(std::move(fn));
  }
  if (wake_fd_ >= 0) {
    uint64_t one = 1;
    // wf-lint: allow(io-syscall-seam) — eventfd wake; a lost EINTR write is
    // harmless (the loop re-checks posted_ every tick).
    ssize_t ignored = ::write(wake_fd_, &one, sizeof(one));
    (void)ignored;
  }
}

void TransportServer::RunPosted() {
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lock(posted_mu_);
    batch.swap(posted_);
  }
  for (auto& fn : batch) {
    fn();
  }
}

void TransportServer::Run() {
  epoll_event events[64];
  while (!stop_) {
    int n = ::epoll_wait(epoll_fd_, events, 64, options_.tick_ms);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      error_ = std::string("epoll_wait: ") + ::strerror(errno);
      break;
    }
    for (int i = 0; i < n && !stop_; ++i) {
      uint64_t id = events[i].data.u64;
      uint32_t flags = events[i].events;
      if (id == kListenerId) {
        AcceptReady();
        continue;
      }
      if (id == kWakeId) {
        uint64_t drained = 0;
        // wf-lint: allow(io-syscall-seam) — nonblocking eventfd drain; EAGAIN
        // (not EINTR retry) is the loop-exit condition.
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        RunPosted();
        continue;
      }
      // A connection may have been closed by an earlier event in this
      // batch; ids are never reused, so a missing entry is just stale.
      if (conns_.find(id) == conns_.end()) {
        continue;
      }
      if (flags & (EPOLLERR | EPOLLHUP)) {
        // EPOLLHUP with pending tx still allows the peer to have data in
        // flight to read; treat as readable first, then close on EOF.
        HandleReadable(id);
        if (conns_.find(id) != conns_.end() && (flags & EPOLLERR)) {
          CloseConn(id, true);
        }
        continue;
      }
      if (flags & EPOLLIN) {
        HandleReadable(id);
      }
      if ((flags & EPOLLOUT) && conns_.find(id) != conns_.end()) {
        HandleWritable(id);
      }
    }
    RunPosted();
    SweepIdle(NowMs());
  }
  DrainAll();
}

void TransportServer::AcceptReady() {
  while (true) {
    // wf-lint: allow(io-syscall-seam) — nonblocking accept4 (the socket
    // seam's Accept is the *blocking* EINTR-retry variant; here any failure
    // including EINTR just returns to epoll, which retries naturally).
    int fd = ::accept4(listener_.fd(), nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      // EAGAIN drains the backlog; anything else (EMFILE, ECONNABORTED) is
      // per-connection and must not kill the loop.
      return;
    }
    uint64_t id = next_id_++;
    Conn conn;
    conn.fd = fd;
    conn.last_activity_ms = NowMs();
    auto inserted = conns_.emplace(id, std::move(conn)).first;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      conns_.erase(inserted);
      continue;
    }
    g_connections.Add(1);
    if (handler_ != nullptr) {
      handler_->OnOpen(id);
    }
  }
}

void TransportServer::HandleReadable(uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end() || it->second.draining || it->second.oversized) {
    return;
  }
  char buf[16384];
  while (true) {
    auto conn_it = conns_.find(id);
    if (conn_it == conns_.end()) {
      return;  // Handler closed it mid-loop.
    }
    ssize_t got = ::recv(conn_it->second.fd, buf, sizeof(buf), 0);
    if (got < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return;
      }
      CloseConn(id, true);
      return;
    }
    if (got == 0) {
      CloseConn(id, true);
      return;
    }
    conn_it->second.last_activity_ms = NowMs();
    g_bytes_rx.Add(static_cast<uint64_t>(got));
    conn_it->second.rx.Feed(buf, static_cast<size_t>(got));
    std::string payload;
    while (true) {
      conn_it = conns_.find(id);
      if (conn_it == conns_.end() || conn_it->second.draining) {
        return;
      }
      FrameAssembler::Result result = conn_it->second.rx.Next(&payload);
      if (result == FrameAssembler::Result::kNeedMore) {
        break;
      }
      if (result == FrameAssembler::Result::kOversized) {
        conn_it->second.oversized = true;
        if (handler_ != nullptr) {
          handler_->OnOversized(id);
        }
        CloseSoon(id);
        return;
      }
      g_frames_rx.Add(1);
      g_frame_bytes.Record(payload.size());
      if (handler_ != nullptr) {
        // May Send(), CloseSoon(), or (via erase on empty tx) drop `id` —
        // re-looked-up at the top of both loops.
        obs::ScopedTimerNs dispatch_timer(g_dispatch_ns);
        handler_->OnFrame(id, std::move(payload));
      }
    }
  }
}

bool TransportServer::Send(uint64_t id, const std::string& payload) {
  auto it = conns_.find(id);
  if (it == conns_.end()) {
    return false;
  }
  size_t before = it->second.tx.size();
  if (!AppendFrame(&it->second.tx, payload)) {
    return false;
  }
  g_frames_tx.Add(1);
  g_bytes_tx.Add(payload.size());
  g_tx_queue_bytes.Add(static_cast<int64_t>(it->second.tx.size() - before));
  return FlushTx(id);
}

bool TransportServer::FlushTx(uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) {
    return false;
  }
  Conn& conn = it->second;
  while (conn.tx_pos < conn.tx.size()) {
    ssize_t put = ::send(conn.fd, conn.tx.data() + conn.tx_pos,
                         conn.tx.size() - conn.tx_pos, MSG_NOSIGNAL);
    if (put < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        UpdateEpoll(id, /*want_write=*/true);
        return true;
      }
      CloseConn(id, true);
      return false;
    }
    conn.tx_pos += static_cast<size_t>(put);
    g_tx_queue_bytes.Add(-static_cast<int64_t>(put));
    conn.last_activity_ms = NowMs();
  }
  conn.tx.clear();
  conn.tx_pos = 0;
  if (conn.draining) {
    CloseConn(id, true);
    return false;
  }
  UpdateEpoll(id, /*want_write=*/false);
  return true;
}

void TransportServer::HandleWritable(uint64_t id) { FlushTx(id); }

void TransportServer::CloseSoon(uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) {
    return;
  }
  if (it->second.tx_pos >= it->second.tx.size()) {
    CloseConn(id, true);
    return;
  }
  it->second.draining = true;
  UpdateEpoll(id, /*want_write=*/true);
}

void TransportServer::SetIdleExempt(uint64_t id, bool exempt) {
  auto it = conns_.find(id);
  if (it != conns_.end()) {
    it->second.idle_exempt = exempt;
  }
}

size_t TransportServer::TxBytes(uint64_t id) const {
  auto it = conns_.find(id);
  return it == conns_.end() ? 0 : it->second.tx.size() - it->second.tx_pos;
}

void TransportServer::UpdateEpoll(uint64_t id, bool want_write) {
  auto it = conns_.find(id);
  if (it == conns_.end()) {
    return;
  }
  epoll_event ev{};
  // Draining/oversized connections stop reading: their remaining job is to
  // flush tx and go away.
  ev.events = (it->second.draining || it->second.oversized ? 0u : EPOLLIN) |
              (want_write ? EPOLLOUT : 0u);
  ev.data.u64 = id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, it->second.fd, &ev);
}

void TransportServer::CloseConn(uint64_t id, bool notify) {
  auto it = conns_.find(id);
  if (it == conns_.end()) {
    return;
  }
  int fd = it->second.fd;
  // Un-count any bytes still queued so the fleet-wide depth gauge does not
  // leak what a dead connection never flushed.
  g_tx_queue_bytes.Add(
      -static_cast<int64_t>(it->second.tx.size() - it->second.tx_pos));
  g_connections.Add(-1);
  conns_.erase(it);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  if (notify && handler_ != nullptr) {
    handler_->OnClose(id);
  }
}

void TransportServer::SweepIdle(int64_t now_ms) {
  std::vector<uint64_t> expired;
  for (const auto& entry : conns_) {
    const Conn& conn = entry.second;
    int64_t budget = conn.draining ? options_.drain_timeout_ms
                                   : options_.idle_timeout_ms;
    if (conn.idle_exempt && !conn.draining) {
      continue;
    }
    if (budget > 0 && now_ms - conn.last_activity_ms > budget) {
      expired.push_back(entry.first);
    }
  }
  for (uint64_t id : expired) {
    CloseConn(id, true);
  }
}

void TransportServer::DrainAll() {
  // Best-effort flush of every connection's pending tx before shutdown, so
  // a `stop` acknowledgement already queued still reaches its client.
  int64_t deadline = NowMs() + options_.drain_timeout_ms;
  while (NowMs() < deadline) {
    bool pending = false;
    std::vector<uint64_t> ids;
    ids.reserve(conns_.size());
    for (const auto& entry : conns_) {
      if (entry.second.tx_pos < entry.second.tx.size()) {
        ids.push_back(entry.first);
      }
    }
    for (uint64_t id : ids) {
      auto it = conns_.find(id);
      if (it == conns_.end()) {
        continue;
      }
      it->second.draining = true;
      if (FlushTx(id)) {
        auto again = conns_.find(id);
        if (again != conns_.end() &&
            again->second.tx_pos < again->second.tx.size()) {
          pending = true;
        }
      }
    }
    if (!pending) {
      break;
    }
    struct timespec nap {
      0, 2 * 1000 * 1000
    };
    ::nanosleep(&nap, nullptr);
  }
  std::vector<uint64_t> ids;
  ids.reserve(conns_.size());
  for (const auto& entry : conns_) {
    ids.push_back(entry.first);
  }
  for (uint64_t id : ids) {
    CloseConn(id, true);
  }
}

}  // namespace wayfinder
