#include "src/transport/frame.h"

#include <cstdint>

#include "src/util/socket.h"

namespace wayfinder {

bool AppendFrame(std::string* out, const std::string& payload) {
  if (payload.size() > kMaxFrameBytes) {
    return false;
  }
  uint32_t length = static_cast<uint32_t>(payload.size());
  char header[4] = {static_cast<char>(length >> 24),
                    static_cast<char>(length >> 16),
                    static_cast<char>(length >> 8),
                    static_cast<char>(length)};
  out->append(header, sizeof(header));
  out->append(payload);
  return true;
}

FrameAssembler::Result FrameAssembler::Next(std::string* payload) {
  payload->clear();
  if (buffer_.size() - pos_ < 4) {
    return Result::kNeedMore;
  }
  const unsigned char* header =
      reinterpret_cast<const unsigned char*>(buffer_.data()) + pos_;
  uint32_t length = (static_cast<uint32_t>(header[0]) << 24) |
                    (static_cast<uint32_t>(header[1]) << 16) |
                    (static_cast<uint32_t>(header[2]) << 8) |
                    static_cast<uint32_t>(header[3]);
  if (length > kMaxFrameBytes) {
    return Result::kOversized;
  }
  if (buffer_.size() - pos_ - 4 < length) {
    return Result::kNeedMore;
  }
  payload->assign(buffer_, pos_ + 4, length);
  pos_ += 4 + static_cast<size_t>(length);
  // Compact once the consumed prefix dominates, so a long-lived connection
  // does not grow its rx buffer without bound.
  if (pos_ >= 4096 && pos_ * 2 >= buffer_.size()) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  return Result::kFrame;
}

}  // namespace wayfinder
