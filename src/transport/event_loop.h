// Event-driven Unix-socket server: epoll loop, per-connection rx/tx
// buffers, idle sweeping, graceful drain.
//
// TransportServer owns the listener and every accepted connection; a
// TransportHandler (the service layer) sees only whole frames and replies
// via Send(). One thread runs the loop; other threads may call Stop() and
// Post() — both wake the loop through an eventfd, everything else is
// loop-thread-only. This replaces the one-client-at-a-time blocking accept
// loop the daemon started with: a slow or silent client now costs one idle
// epoll registration instead of wedging everyone behind it.
//
// Connection lifecycle:
//   accept → OnOpen → (OnFrame per complete frame) → OnClose.
// OnOversized fires once when a peer announces a frame beyond
// kMaxFrameBytes; the handler may Send() a courtesy error, then the
// connection drains its tx and closes (the byte stream past a bogus header
// cannot be re-framed). CloseSoon() likewise flushes pending tx before
// closing — stopping the server drains every connection the same way,
// bounded by drain_timeout_ms.
#ifndef WAYFINDER_SRC_TRANSPORT_EVENT_LOOP_H_
#define WAYFINDER_SRC_TRANSPORT_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/transport/frame.h"
#include "src/util/socket.h"

namespace wayfinder {

struct TransportOptions {
  std::string socket_path;
  int idle_timeout_ms = 10000;  // Drop connections silent this long.
  int backlog = 128;
  int drain_timeout_ms = 2000;  // Cap on flushing tx at shutdown/close.
  int tick_ms = 50;             // Idle-sweep cadence (epoll_wait timeout).
};

// Frame-level callbacks, invoked on the loop thread. `conn` ids are unique
// for the server's lifetime (never reused), so a stale id held across a
// disconnect is harmless — Send()/CloseSoon() on it are no-ops.
struct TransportHandler {
  virtual ~TransportHandler() = default;
  virtual void OnOpen(uint64_t conn) { (void)conn; }
  virtual void OnFrame(uint64_t conn, std::string payload) = 0;
  virtual void OnOversized(uint64_t conn) { (void)conn; }
  virtual void OnClose(uint64_t conn) { (void)conn; }
};

class TransportServer {
 public:
  TransportServer() = default;
  ~TransportServer();
  TransportServer(const TransportServer&) = delete;
  TransportServer& operator=(const TransportServer&) = delete;

  // Binds the socket; false (with error()) when the path is unusable or a
  // live daemon already serves it.
  bool Start(const TransportOptions& options, TransportHandler* handler);

  // Runs the epoll loop until Stop(). Call from exactly one thread.
  void Run();

  // Signals the loop to drain and exit. Safe from any thread and from
  // signal handlers (one eventfd write).
  void Stop();

  // Queues `fn` to run on the loop thread; safe from any thread. Used by
  // SessionManager observers to push frames without touching connection
  // state off-loop. Posts after Stop() may be dropped.
  void Post(std::function<void()> fn);

  // Loop-thread-only from here down. ------------------------------------

  // Queues one frame on `conn`'s tx buffer and flushes opportunistically.
  // No-op (false) when the connection is gone.
  bool Send(uint64_t conn, const std::string& payload);

  // Flush pending tx, then close. No more OnFrame for this connection.
  void CloseSoon(uint64_t conn);

  // Exempts `conn` from the idle sweep (watch subscribers legitimately sit
  // silent between pushes).
  void SetIdleExempt(uint64_t conn, bool exempt);

  // Bytes queued but unsent on `conn` (0 when gone) — backpressure signal
  // for push producers.
  size_t TxBytes(uint64_t conn) const;

  const std::string& error() const { return error_; }
  const std::string& path() const { return listener_.path(); }

 private:
  struct Conn {
    int fd = -1;
    FrameAssembler rx;
    std::string tx;
    size_t tx_pos = 0;
    int64_t last_activity_ms = 0;
    bool draining = false;    // Close once tx empties.
    bool idle_exempt = false;
    bool oversized = false;   // Stream unframeable; stop reading.
  };

  void AcceptReady();
  void HandleReadable(uint64_t id);
  void HandleWritable(uint64_t id);
  // Flushes as much tx as the socket takes; arms/disarms EPOLLOUT; closes
  // draining connections that emptied. False when the connection died.
  bool FlushTx(uint64_t id);
  void CloseConn(uint64_t id, bool notify);
  void SweepIdle(int64_t now_ms);
  void DrainAll();
  void RunPosted();
  void UpdateEpoll(uint64_t id, bool want_write);

  UnixListener listener_;
  TransportHandler* handler_ = nullptr;
  TransportOptions options_;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: Stop() and Post() wakeups.
  // Atomic, not volatile: Stop() runs on other threads (and in the
  // SIGTERM handler — a lock-free atomic store is async-signal-safe).
  std::atomic<bool> stop_{false};
  uint64_t next_id_ = 1;
  std::map<uint64_t, Conn> conns_;
  // lock-order: leaf — held only for the enqueue/swap of posted_, never
  // while calling out (Post is safe to call with SessionManager::mutex_
  // held; the reverse never happens: posted fns run with no lock held).
  std::mutex posted_mu_;
  std::vector<std::function<void()>> posted_;
  std::string error_;
};

}  // namespace wayfinder

#endif  // WAYFINDER_SRC_TRANSPORT_EVENT_LOOP_H_
