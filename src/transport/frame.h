// Incremental framing for the event-driven transport (src/transport/).
//
// The blocking helpers in src/util/socket.h read one whole frame per call;
// an epoll loop instead receives arbitrary byte runs and must reassemble
// frames across reads. FrameAssembler buffers fed bytes and yields complete
// frames — same wire format as ReadFrame/WriteFrame (4-byte big-endian
// payload length, then payload, capped at kMaxFrameBytes), so blocking
// clients and the event-driven daemon interoperate byte-for-byte.
#ifndef WAYFINDER_SRC_TRANSPORT_FRAME_H_
#define WAYFINDER_SRC_TRANSPORT_FRAME_H_

#include <cstddef>
#include <string>

namespace wayfinder {

// Appends the 4-byte header + payload for one frame to `out` (an event
// loop's tx buffer). Payload must fit kMaxFrameBytes; returns false and
// appends nothing otherwise.
bool AppendFrame(std::string* out, const std::string& payload);

// Reassembles frames from arbitrary byte runs. Feed() whatever recv()
// returned, then drain Next() until it reports kNeedMore.
class FrameAssembler {
 public:
  enum class Result {
    kFrame,      // *payload holds one complete frame.
    kNeedMore,   // Partial header/payload buffered; feed more bytes.
    kOversized,  // Header announced more than kMaxFrameBytes. The stream is
                 // unframeable past this point; the connection must close.
  };

  void Feed(const char* data, size_t n) { buffer_.append(data, n); }

  Result Next(std::string* payload);

  // Bytes buffered but not yet yielded (partial frame).
  size_t pending() const { return buffer_.size() - pos_; }

 private:
  std::string buffer_;
  size_t pos_ = 0;  // Consumed prefix; compacted lazily.
};

}  // namespace wayfinder

#endif  // WAYFINDER_SRC_TRANSPORT_FRAME_H_
