// Multi-metric DeepTune searcher — the §3.2 extension end to end.
//
// "During the scoring phase, we apply equation 3 to each target metric to
// obtain individual scores. Then, we calculate a representative score for
// each permutation sample by taking a weighted average [...] of these
// individual scores." This searcher owns a MultiDtm (one network, K
// objective heads), scores each candidate per metric with the Eq. 2/3
// machinery, and ranks by the weighted average. Metric polarity is
// normalized internally: lower-is-better metrics (memory, latency) are
// negated on the way in so the network and elites always maximize.
#ifndef WAYFINDER_SRC_CORE_MULTI_METRIC_H_
#define WAYFINDER_SRC_CORE_MULTI_METRIC_H_

#include <functional>
#include <string>
#include <vector>

#include "src/core/multi_dtm.h"
#include "src/core/proposal.h"
#include "src/core/scoring.h"
#include "src/platform/searcher.h"
#include "src/simos/testbench.h"
#include "src/util/stats.h"

namespace wayfinder {

// One target metric of a multi-metric job.
struct MetricSpec {
  std::string name;
  double weight = 1.0;
  bool higher_is_better = true;
  // Pulls the raw value out of a finished trial.
  std::function<double(const TrialOutcome&)> extract;

  // The two metrics of the paper's co-optimization experiment (Figure 11):
  // application throughput (maximized) and boot memory (minimized).
  static MetricSpec AppThroughput(double weight = 1.0);
  static MetricSpec MemoryFootprint(double weight = 1.0);
};

struct MultiMetricOptions {
  DtmOptions model;
  ScoreOptions scoring;
  size_t pool_size = 128;
  double exploit_fraction = 0.6;
  size_t max_mutations = 4;
  size_t warmup = 12;
  size_t update_every = 1;
};

class MultiMetricSearcher : public Searcher {
 public:
  MultiMetricSearcher(const ConfigSpace* space, std::vector<MetricSpec> metrics,
                      const MultiMetricOptions& options = {});

  std::string Name() const override { return "deeptune-multi"; }
  Configuration Propose(SearchContext& context) override;
  // One pool assembly + one fused MultiDtm pass per round; the batch is the
  // n top-ranked distinct candidates by the §3.2 weighted score (see
  // DeepTuneSearcher::ProposeBatch).
  void ProposeBatch(SearchContext& context, size_t n,
                    std::vector<Configuration>* batch) override;
  void Observe(const TrialRecord& trial, SearchContext& context) override;
  // Drift: drop the pre-drift elite set and retrain (see
  // DeepTuneSearcher::OnDrift).
  void OnDrift(SearchContext& context) override;
  size_t MemoryBytes() const override;

  // Checkpoint v2 live state: the shared proposal pipeline's pool-seed
  // iteration counter (see DeepTuneSearcher::ExportState).
  std::string ExportState() const override;
  bool RestoreState(const std::string& state) override;

  const MultiDtm& model() const { return model_; }
  const std::vector<MetricSpec>& metrics() const { return metrics_; }

  // Transfer learning (§3.3), as in DeepTuneSearcher: persist the trained
  // weights / warm-start from a donor trained on the same space and the
  // same metric count.
  bool SaveModel(const std::string& path) const { return model_.Save(path); }
  bool LoadModel(const std::string& path);
  bool transferred() const { return transferred_; }

  // Weighted z-score aggregate of a trial's raw metric values — the scalar
  // the elites are ranked by; exposed so harnesses can report the same
  // number (the analogue of the paper's Eq. 4 score).
  double AggregateScore(const TrialOutcome& outcome) const;

  // Model verdict for one configuration (per-metric ŷ and σ̂ plus k̂).
  MultiDtmPrediction PredictConfig(const Configuration& config);

 private:
  // Raw metric vector in internal (higher-is-better) orientation.
  std::vector<double> ExtractOriented(const TrialOutcome& outcome) const;
  // Assembles the pool and returns each row's weighted-average rank score —
  // shared by Propose (argmax) and ProposeBatch (top-n distinct).
  std::vector<double> ScorePool(SearchContext& context);

  const ConfigSpace* space_;
  std::vector<MetricSpec> metrics_;
  MultiMetricOptions options_;
  MultiDtm model_;
  size_t observed_ = 0;
  bool transferred_ = false;

  // Per-metric running stats over successful trials, for elite ranking.
  std::vector<RunningStats> metric_stats_;
  std::vector<Configuration> elites_;
  std::vector<double> elite_scores_;

  // Proposal pipeline state (see DeepTuneSearcher): counter-derived candidate
  // streams keep the pool bit-identical at any thread count, and the scratch
  // containers persist so the warm path reuses their buffers. The history
  // ring is synced incrementally — one encode per new trial, ever.
  static constexpr size_t kHistoryWindow = 128;
  ProposalState proposal_;
};

}  // namespace wayfinder

#endif  // WAYFINDER_SRC_CORE_MULTI_METRIC_H_
