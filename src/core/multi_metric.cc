#include "src/core/multi_metric.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <limits>

#include "src/platform/searcher_registry.h"

namespace wayfinder {

MetricSpec MetricSpec::AppThroughput(double weight) {
  MetricSpec spec;
  spec.name = "throughput";
  spec.weight = weight;
  spec.higher_is_better = true;
  spec.extract = [](const TrialOutcome& outcome) { return outcome.metric; };
  return spec;
}

MetricSpec MetricSpec::MemoryFootprint(double weight) {
  MetricSpec spec;
  spec.name = "memory_mb";
  spec.weight = weight;
  spec.higher_is_better = false;
  spec.extract = [](const TrialOutcome& outcome) { return outcome.memory_mb; };
  return spec;
}

MultiMetricSearcher::MultiMetricSearcher(const ConfigSpace* space,
                                         std::vector<MetricSpec> metrics,
                                         const MultiMetricOptions& options)
    : space_(space),
      metrics_(std::move(metrics)),
      options_(options),
      model_(space->FeatureDimension(), metrics_.size(), options.model),
      metric_stats_(metrics_.size()),
      proposal_(options.model.seed) {
  assert(!metrics_.empty());
  for (const MetricSpec& metric : metrics_) {
    assert(metric.extract != nullptr);
    (void)metric;
  }
}

bool MultiMetricSearcher::LoadModel(const std::string& path) {
  transferred_ = model_.Load(path);
  return transferred_;
}

std::vector<double> MultiMetricSearcher::ExtractOriented(
    const TrialOutcome& outcome) const {
  std::vector<double> values(metrics_.size());
  for (size_t k = 0; k < metrics_.size(); ++k) {
    double raw = metrics_[k].extract(outcome);
    values[k] = metrics_[k].higher_is_better ? raw : -raw;
  }
  return values;
}

double MultiMetricSearcher::AggregateScore(const TrialOutcome& outcome) const {
  std::vector<double> values = ExtractOriented(outcome);
  double total_weight = 0.0;
  double score = 0.0;
  for (size_t k = 0; k < metrics_.size(); ++k) {
    double std_dev = metric_stats_[k].Count() > 1 ? metric_stats_[k].StdDev() : 1.0;
    if (std_dev <= 1e-12) {
      std_dev = 1.0;
    }
    score += metrics_[k].weight * (values[k] - metric_stats_[k].Mean()) / std_dev;
    total_weight += metrics_[k].weight;
  }
  return total_weight > 0.0 ? score / total_weight : 0.0;
}

std::vector<double> MultiMetricSearcher::ScorePool(SearchContext& context) {
  // Candidate pool: elite mutations + fresh random samples (the multi-metric
  // variant skips DeepTune's coordinate line search — elites already encode
  // the trade-off frontier the weights select). Assembly runs through the
  // shared proposal pipeline: sharded over the thread pool on counter-derived
  // RNG streams, encoded straight into the pool batch matrix, bit-identical
  // at any thread count.
  ProposalPoolSpec spec;
  spec.pool_size = options_.pool_size;
  spec.exploit_fraction = options_.exploit_fraction;
  spec.max_mutations = options_.max_mutations;
  spec.line_search = false;
  spec.threads = options_.model.threads;
  AssembleProposalPool(*space_, elites_, context.sample_options, spec,
                       proposal_.NextPoolSeed(*context.rng), proposal_.pool,
                       proposal_.encoded);

  std::vector<MultiDtmPrediction> predictions = model_.PredictBatch(proposal_.encoded);

  // Pool-normalize each metric's sigma column to [0, 1].
  std::vector<std::vector<double>> sigma_norm(
      metrics_.size(), std::vector<double>(proposal_.pool.size(), 0.0));
  for (size_t k = 0; k < metrics_.size(); ++k) {
    double max_sigma = 0.0;
    for (const MultiDtmPrediction& prediction : predictions) {
      max_sigma = std::max(max_sigma, prediction.sigmas[k]);
    }
    if (max_sigma > 0.0) {
      for (size_t i = 0; i < proposal_.pool.size(); ++i) {
        sigma_norm[k][i] = predictions[i].sigmas[k] / max_sigma;
      }
    }
  }

  // Recent-history window for the dissimilarity term: the shared encoded
  // ring, synced incrementally (each trial encoded exactly once, ever). A
  // null history means "no known points" — score with maximal novelty
  // rather than against whatever a previous session left in the ring.
  size_t dim = space_->FeatureDimension();
  size_t known_rows = 0;
  if (context.history != nullptr) {
    proposal_.history.Sync(*space_, *context.history, kHistoryWindow);
    known_rows = proposal_.history.row_count();
  }

  double total_weight = 0.0;
  for (const MetricSpec& metric : metrics_) {
    total_weight += metric.weight;
  }

  std::vector<double> scores(proposal_.pool.size());
  for (size_t i = 0; i < proposal_.pool.size(); ++i) {
    double ds = Dissimilarity(proposal_.encoded.Row(i), dim, proposal_.history.rows(),
                              known_rows);
    // Eq. 3 per metric, then the weighted average (§3.2).
    double score = 0.0;
    for (size_t k = 0; k < metrics_.size(); ++k) {
      DtmPrediction as_single;
      as_single.crash_prob = predictions[i].crash_prob;
      as_single.objective = predictions[i].objectives[k];
      as_single.sigma = predictions[i].sigmas[k];
      score += metrics_[k].weight *
               RankScore(as_single, ds, sigma_norm[k][i], options_.scoring);
    }
    scores[i] = total_weight > 0.0 ? score / total_weight : score;
  }
  return scores;
}

Configuration MultiMetricSearcher::Propose(SearchContext& context) {
  size_t warmup = transferred_ ? std::min<size_t>(2, options_.warmup) : options_.warmup;
  if (observed_ < warmup) {
    return space_->RandomConfiguration(*context.rng, context.sample_options);
  }
  std::vector<double> scores = ScorePool(context);
  size_t best = 0;
  for (size_t i = 1; i < scores.size(); ++i) {
    if (scores[i] > scores[best]) {
      best = i;
    }
  }
  return proposal_.pool[best];
}

void MultiMetricSearcher::ProposeBatch(SearchContext& context, size_t n,
                                       std::vector<Configuration>* batch) {
  batch->clear();
  batch->reserve(n);
  size_t warmup = transferred_ ? std::min<size_t>(2, options_.warmup) : options_.warmup;
  if (observed_ < warmup) {
    for (size_t i = 0; i < n; ++i) {
      batch->push_back(space_->RandomConfiguration(*context.rng, context.sample_options));
    }
    return;
  }
  // Shared selection with DeepTuneSearcher::ProposeBatch: one ranking, n
  // best distinct candidates, history-unseen first, random top-up.
  std::vector<double> scores = ScorePool(context);
  SelectTopCandidates(scores, proposal_.pool, context.history, n, batch);
  while (batch->size() < n) {
    batch->push_back(space_->RandomConfiguration(*context.rng, context.sample_options));
  }
}

void MultiMetricSearcher::Observe(const TrialRecord& trial, SearchContext& /*context*/) {
  if (trial.outcome.transient()) {
    // Infrastructure noise (timeout/flake), not a config-caused crash: keep
    // it out of the model (same policy as DeepTuneSearcher::Observe).
    ++observed_;
    if (observed_ % options_.update_every == 0) {
      model_.Update();
    }
    return;
  }
  bool crashed = trial.crashed();
  std::vector<double> values;
  if (!crashed) {
    values = ExtractOriented(trial.outcome);
    for (size_t k = 0; k < metrics_.size(); ++k) {
      metric_stats_[k].Add(values[k]);
    }
  }
  model_.AddSample(space_->Encode(trial.config), crashed, values);
  ++observed_;

  if (!crashed) {
    double score = AggregateScore(trial.outcome);
    constexpr size_t kEliteCount = 4;
    if (elites_.size() < kEliteCount) {
      elites_.push_back(trial.config);
      elite_scores_.push_back(score);
    } else {
      size_t worst = 0;
      for (size_t i = 1; i < elite_scores_.size(); ++i) {
        if (elite_scores_[i] < elite_scores_[worst]) {
          worst = i;
        }
      }
      if (score > elite_scores_[worst]) {
        elites_[worst] = trial.config;
        elite_scores_[worst] = score;
      }
    }
  }
  if (observed_ % options_.update_every == 0) {
    model_.Update();
  }
}

void MultiMetricSearcher::OnDrift(SearchContext& context) {
  (void)context;
  elites_.clear();
  elite_scores_.clear();
  model_.Update();
}

MultiDtmPrediction MultiMetricSearcher::PredictConfig(const Configuration& config) {
  return model_.Predict(space_->Encode(config));
}

std::string MultiMetricSearcher::ExportState() const {
  return "pool-iteration " + std::to_string(proposal_.iteration);
}

bool MultiMetricSearcher::RestoreState(const std::string& state) {
  if (state.empty()) {
    return true;  // v1 checkpoints carry no live state.
  }
  unsigned long long iteration = 0;
  if (std::sscanf(state.c_str(), "pool-iteration %llu", &iteration) != 1) {
    return false;
  }
  proposal_.iteration = static_cast<uint64_t>(iteration);
  return true;
}

size_t MultiMetricSearcher::MemoryBytes() const {
  size_t bytes = model_.MemoryBytes();
  // Elite set: configurations and their aggregate scores.
  for (const Configuration& elite : elites_) {
    bytes += elite.Size() * sizeof(int64_t);
  }
  bytes += elite_scores_.capacity() * sizeof(double);
  // Proposal-path scratch: the candidate pool, its encoded batch matrix,
  // and the encoded-history ring.
  bytes += proposal_.ScratchBytes();
  return bytes;
}

namespace {
// The `metric: multi` variant (§3.2). Constructible directly by name too;
// without an explicit metrics list it co-optimizes throughput and memory at
// equal weight (the paper's Figure 11 pairing).
const SearcherRegistration kRegistration{
    {"deeptune-multi",
     "multi-metric DeepTune: weighted per-metric Eq. 3 scores on one K-head DTM",
     /*multi_metric_variant=*/"deeptune-multi",
     /*supports_transfer=*/true},
    [](const SearcherArgs& args) {
      std::vector<MetricSpec> metrics;
      for (const auto& [name, weight] : args.metrics) {
        metrics.push_back(name == "memory" ? MetricSpec::MemoryFootprint(weight)
                                           : MetricSpec::AppThroughput(weight));
      }
      if (metrics.empty()) {
        metrics.push_back(MetricSpec::AppThroughput(1.0));
        metrics.push_back(MetricSpec::MemoryFootprint(1.0));
      }
      MultiMetricOptions options;
      options.model.seed = args.seed;
      return std::make_unique<MultiMetricSearcher>(args.space, std::move(metrics), options);
    }};
}  // namespace

}  // namespace wayfinder
