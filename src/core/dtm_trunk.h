// The K-wide DTM trunk — the one implementation of the DeepTune Model's
// network (Figure 4), shared by every head count.
//
// Architecture (identical for K = 1 and K > 1):
//
//   * prediction branch F_p: dense -> ReLU -> dropout -> dense -> ReLU with
//     two heads — crash logits (2-way softmax) and a K-wide objective ŷ;
//   * uncertainty branch F_u: a Gaussian RBF layer parallel to each trunk
//     stage (input, hidden-1, hidden-2), concatenated into a linear head
//     emitting K log-variances s = log σ².
//
// `DeepTuneModel` (K = 1) and `MultiDtm` (K = metric count) are thin heads
// over this class: they own no layers, no optimizer, no replay buffer and no
// backward pass — they only convert the trunk's row/head accessors into
// their prediction structs. The order-sensitive backward pass, the Adam
// step, the minibatch gather, and the zero-alloc workspace arena therefore
// exist in exactly one place, and the bit-determinism contracts are carried
// by the trunk itself:
//
//   * `workspace_grow_count()` is stable across repeated same-shaped
//     forward/update rounds (zero heap allocation once warm);
//   * `Update()` and inference are bit-identical at any `DtmOptions::threads`
//     value (row/block partitioning never changes per-element arithmetic);
//   * results are bit-identical across SIMD kernel backends (the backends
//     evaluate the same expression trees — src/nn/kernels.h).
//
// Updates are incremental — a constant number of gradient steps per new
// observation — so per-iteration model cost stays O(1) and O(n) overall,
// unlike Gaussian-process or causal-graph refits (§2.3, Figure 7).
#ifndef WAYFINDER_SRC_CORE_DTM_TRUNK_H_
#define WAYFINDER_SRC_CORE_DTM_TRUNK_H_

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "src/nn/kernels.h"
#include "src/nn/layers.h"
#include "src/nn/losses.h"
#include "src/nn/optimizer.h"
#include "src/util/rng.h"

namespace wayfinder {

struct DtmOptions {
  size_t hidden1 = 64;
  size_t hidden2 = 32;
  size_t rbf_centroids = 12;
  // gamma for an RBF layer = gamma_factor * sqrt(input width); the paper's
  // gamma = 0.1 assumes per-dimension-normalized scalar-ish latents, which
  // this generalizes to arbitrary widths.
  double gamma_factor = 0.7;
  double dropout = 0.10;
  double learning_rate = 2e-3;
  size_t batch_size = 32;
  size_t steps_per_update = 32;  // Constant per observation: O(n) total.
  double chamfer_weight = 0.05;
  uint64_t seed = 0xd7a1;
  // Parallelism of forward/backward row blocks, the training-loop minibatch
  // gather, per-block Adam updates, and the searchers' candidate-pool
  // generation over the process-wide shared ThreadPool: number of concurrent
  // chunks, 0 (or 1) = fully serial. Partitioning never changes per-element
  // arithmetic, so any value gives bit-identical results.
  size_t threads = 0;
  // SIMD kernel backend for this model's forward/backward/update math.
  // kAuto follows the process default (WF_KERNELS env, else CPUID). Backends
  // are bit-identical by construction, so this only changes speed.
  KernelBackend kernels = KernelBackend::kAuto;
  // Route inference through the scalar, allocation-per-op reference path
  // (textbook kernels, one fresh matrix per op — the seed implementation).
  // Baseline for bench_micro_matmul's --naive mode and equivalence tests.
  bool naive = false;
};

class DtmTrunk {
 public:
  // `head_count` >= 1: width of the objective and uncertainty heads.
  DtmTrunk(size_t input_dim, size_t head_count, const DtmOptions& options);

  size_t input_dim() const { return input_dim_; }
  size_t head_count() const { return head_count_; }
  size_t sample_count() const { return crashed_.size(); }

  // Appends one observation to the replay buffer. `objectives` points at
  // head_count raw values; it is ignored (and may be null) for crashes.
  void AddSample(const std::vector<double>& x, bool crashed, const double* objectives);

  // Runs `steps_per_update` minibatch gradient steps on the replay buffer.
  // Returns the last batch's total loss (0 when there is nothing to train).
  double Update();

  // --- inference -----------------------------------------------------------
  // Stage + one fused forward pass (softmax included); read results through
  // the row/head accessors below. Returns the staged row count. The Matrix
  // overload runs straight off the caller's row-major candidate matrix with
  // no per-candidate staging.
  size_t PredictRows(const Matrix& xs);
  size_t PredictRows(const std::vector<std::vector<double>>& xs);
  size_t PredictRow(const std::vector<double>& x);

  // Valid after a PredictRows/PredictRow call, for rows < the returned count.
  double CrashProb(size_t row) const { return ws_.probs.At(row, 1); }
  double Objective(size_t row, size_t head) const { return ws_.yhat.At(row, head); }
  double Sigma(size_t row, size_t head) const {
    double s = std::clamp(ws_.s.At(row, head), -10.0, 10.0);
    return std::exp(0.5 * s);
  }

  // Per-head objective z-score normalization over successful observations.
  double NormalizeObjective(size_t head, double objective) const;
  double DenormalizeObjective(size_t head, double normalized) const;

  // Trainable blocks in a stable order (for Adam and serialization).
  std::vector<ParamBlock*> Params();

  // Transfer learning (§3.3): persist/restore the trained weights. Loading
  // requires an identical architecture (input dim, head count, options).
  bool Save(const std::string& path) const;
  bool Load(const std::string& path);

  // Live state footprint (weights + optimizer moments + replay buffer +
  // workspace arena).
  size_t MemoryBytes() const;

  const DtmOptions& options() const { return options_; }

  // Times any workspace buffer had to (re)allocate. Stable across repeated
  // same-shaped rounds — the zero-alloc-after-warmup guarantee tests pin.
  size_t workspace_grow_count() const { return ws_.grow_count; }

  // The SIMD backend this trunk resolved at construction.
  const char* kernel_backend_name() const { return kernels_->name; }

 private:
  // Scratch arena for one forward/backward round. Buffers are reshaped in
  // place every call and only ever grow, so a warm trunk's hot path does no
  // heap allocation.
  struct Workspace {
    Matrix x;                          // Staged input batch.
    Matrix h1, h2;                     // Trunk activations (in-place ReLU/dropout).
    Matrix crash_logits, yhat, s;      // Head outputs (yhat/s are N x K).
    Matrix phi0, phi1, phi2, phi;      // RBF activations and their concat.
    Matrix probs;                      // Softmax output for prediction.
    Matrix y;                          // Staged N x K regression targets.
    Matrix dlogits, dyhat, ds;         // Loss gradients.
    Matrix dphi, dphi0, dphi1, dphi2;  // Uncertainty-branch gradients.
    Matrix dh2, dh2_scratch, dh1;      // Trunk gradients.
    // Training-loop gather scratch: minibatch replay indices and targets.
    std::vector<size_t> batch_index;
    std::vector<int> crash_target;
    std::vector<bool> mask;
    size_t grow_count = 0;

    void Count(size_t grew) { grow_count += grew; }
    // Resizes the gather scratch, counting vector buffer growth like Matrix
    // reshapes so the zero-alloc guarantee covers the whole training loop.
    void ReserveGather(size_t batch);
    size_t Bytes() const;
  };

  // Fast path: runs the network over `x` into the workspace. `x` must stay
  // alive/unmodified until the round's backward pass completes.
  void Forward(const Matrix& x, bool training);
  // The seed implementation, verbatim in structure: textbook kernels and a
  // fresh matrix per op, landing its outputs in the same workspace slots the
  // fast path uses. Correctness/perf baseline for equivalence tests and the
  // --naive benchmarks.
  void ForwardNaive(const Matrix& xs);
  Parallelism Par() const;
  void RefreshNormalizers();

  size_t input_dim_;
  size_t head_count_;
  DtmOptions options_;
  Rng rng_;

  DenseLayer dense1_;
  ReluLayer relu1_;
  DropoutLayer dropout_;
  DenseLayer dense2_;
  ReluLayer relu2_;
  DenseLayer crash_head_;
  DenseLayer perf_head_;  // hidden2 -> K.
  RbfLayer rbf0_;
  RbfLayer rbf1_;
  RbfLayer rbf2_;
  DenseLayer unc_head_;   // 3*centroids -> K.
  std::unique_ptr<Adam> adam_;
  const KernelOps* kernels_ = nullptr;  // Resolved once from options().kernels.
  Workspace ws_;

  // Replay buffer. Objectives are stored flat with stride head_count_ (NaN
  // for crashed trials) so appends never allocate a nested vector.
  std::vector<std::vector<double>> xs_;
  std::vector<bool> crashed_;
  std::vector<double> objectives_;

  std::vector<double> head_mean_;
  std::vector<double> head_std_;
  bool normalizer_dirty_ = true;
};

}  // namespace wayfinder

#endif  // WAYFINDER_SRC_CORE_DTM_TRUNK_H_
