#include "src/core/platform_transfer.h"

#include <cmath>

#include "src/util/stats.h"

namespace wayfinder {

LinearTransfer FitLinearTransfer(const std::vector<double>& source,
                                 const std::vector<double>& target) {
  LinearTransfer transfer;
  size_t n = std::min(source.size(), target.size());
  transfer.pairs = n;
  if (n < 2) {
    return transfer;
  }
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sx += source[i];
    sy += target[i];
    sxx += source[i] * source[i];
    sxy += source[i] * target[i];
    syy += target[i] * target[i];
  }
  double nf = static_cast<double>(n);
  double var_x = sxx - sx * sx / nf;
  double var_y = syy - sy * sy / nf;
  double cov = sxy - sx * sy / nf;
  if (var_x <= 1e-12) {
    return transfer;  // Identity: the source sample carries no signal.
  }
  transfer.slope = cov / var_x;
  transfer.intercept = (sy - transfer.slope * sx) / nf;
  transfer.correlation =
      var_y > 1e-12 ? cov / std::sqrt(var_x * var_y) : 0.0;
  return transfer;
}

LinearTransfer CalibrateTransfer(Testbench& source, Testbench& target, size_t pairs,
                                 uint64_t seed) {
  const ConfigSpace& space = source.space();
  Rng sample_rng(seed);
  Rng source_rng(HashCombine(seed, 0x50u));
  Rng target_rng(HashCombine(seed, 0x7au));

  std::vector<double> source_metrics;
  std::vector<double> target_metrics;
  size_t attempts = 0;
  const size_t max_attempts = pairs * 10;  // Crash headroom on either side.
  while (source_metrics.size() < pairs && attempts < max_attempts) {
    ++attempts;
    Configuration config =
        space.RandomConfiguration(sample_rng, SampleOptions::FavorRuntime());
    TrialOutcome on_source = source.Evaluate(config, source_rng, /*clock=*/nullptr);
    if (!on_source.ok()) {
      continue;
    }
    TrialOutcome on_target = target.Evaluate(config, target_rng, /*clock=*/nullptr);
    if (!on_target.ok()) {
      continue;
    }
    source_metrics.push_back(on_source.metric);
    target_metrics.push_back(on_target.metric);
  }
  return FitLinearTransfer(source_metrics, target_metrics);
}

std::vector<TrialRecord> TransferHistory(const std::vector<TrialRecord>& source_history,
                                         const LinearTransfer& transfer) {
  std::vector<TrialRecord> mapped = source_history;
  for (TrialRecord& trial : mapped) {
    if (!trial.outcome.ok()) {
      continue;  // Crash labels transfer as-is (validity is config-driven).
    }
    trial.outcome.metric = transfer.Predict(trial.outcome.metric);
    if (trial.HasObjective()) {
      // Objectives are polarity-normalized metrics; apply the same map with
      // the sign the polarity chose.
      double sign = trial.objective < 0.0 ? -1.0 : 1.0;
      trial.objective = sign * transfer.Predict(sign * trial.objective);
    }
  }
  return mapped;
}

}  // namespace wayfinder
