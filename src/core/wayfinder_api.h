// Top-level Wayfinder API: the one header a downstream user needs.
//
//   ConfigSpace space = BuildLinuxSearchSpace();
//   Testbench bench(&space, AppId::kNginx);
//   auto searcher = MakeSearcher("deeptune", &space);
//   SessionOptions options;
//   SessionResult result = RunSearch(&bench, searcher.get(), options);
//
// or, driven by a YAML job file (§3.1):
//
//   JobRunResult run = RunJobText(yaml);
#ifndef WAYFINDER_SRC_CORE_WAYFINDER_API_H_
#define WAYFINDER_SRC_CORE_WAYFINDER_API_H_

#include <memory>
#include <string>

#include "src/core/deeptune.h"
#include "src/platform/job_file.h"
#include "src/platform/searcher_registry.h"
#include "src/platform/session.h"

namespace wayfinder {

// Instantiates a searcher by registered name — a SearcherRegistry lookup,
// nothing more. The authoritative name list is RegisteredSearcherNames()
// (surfaced by `wfctl algorithms`); out-of-tree searchers that register
// themselves resolve here too. Returns nullptr for unknown names. `seed`
// feeds algorithm-internal randomness (model init); proposal randomness
// comes from the session.
std::unique_ptr<Searcher> MakeSearcher(const std::string& name, const ConfigSpace* space,
                                       uint64_t seed = 0x5eed);

// Instantiates the searcher a job spec asks for: the registered algorithm's
// multi-metric variant when `metric: multi` (spec.IsMultiMetric(), routed
// via SearcherInfo::multi_metric_variant), else the named algorithm itself.
// Returns nullptr with `error` set on a bad spec.
std::unique_ptr<Searcher> MakeJobSearcher(const JobSpec& spec, const ConfigSpace* space,
                                          std::string* error);

struct JobRunResult {
  bool ok = false;
  std::string error;
  JobSpec spec;
  SessionResult session;
  // Set when the job's space was built locally (owned by this struct).
  std::shared_ptr<ConfigSpace> space;
};

// Parses and runs a job file end to end. `model_in` warm-starts DeepTune
// from a saved model (transfer learning); `model_out` saves the trained
// model afterwards. Both optional (empty = off, ignored for non-DeepTune
// algorithms).
JobRunResult RunJobText(const std::string& yaml_text, const std::string& model_in = "",
                        const std::string& model_out = "");
JobRunResult RunJobFile(const std::string& path, const std::string& model_in = "",
                        const std::string& model_out = "");
JobRunResult RunJob(const JobSpec& spec, const std::string& model_in = "",
                    const std::string& model_out = "");

}  // namespace wayfinder

#endif  // WAYFINDER_SRC_CORE_WAYFINDER_API_H_
