#include "src/core/dtm_trunk.h"

#include <cassert>

#include "src/nn/serialize.h"
#include "src/obs/metrics.h"
#include "src/util/stats.h"
#include "src/util/thread_pool.h"

namespace wayfinder {

namespace {

// Model-side long pole: one full Update() (minibatch gather + forward +
// backward + Adam, steps_per_update times).
obs::Histogram& g_trunk_update_ns =
    obs::Registry::Instance().GetHistogram("core.trunk_update_ns");

}  // namespace

DtmTrunk::DtmTrunk(size_t input_dim, size_t head_count, const DtmOptions& options)
    : input_dim_(input_dim),
      head_count_(head_count),
      options_(options),
      rng_(options.seed),
      dense1_(input_dim, options.hidden1, rng_),
      dropout_(options.dropout),
      dense2_(options.hidden1, options.hidden2, rng_),
      crash_head_(options.hidden2, 2, rng_),
      perf_head_(options.hidden2, head_count, rng_),
      rbf0_(input_dim, options.rbf_centroids,
            options.gamma_factor * std::sqrt(static_cast<double>(input_dim)), rng_),
      rbf1_(options.hidden1, options.rbf_centroids,
            options.gamma_factor * std::sqrt(static_cast<double>(options.hidden1)), rng_),
      rbf2_(options.hidden2, options.rbf_centroids,
            options.gamma_factor * std::sqrt(static_cast<double>(options.hidden2)), rng_),
      unc_head_(3 * options.rbf_centroids, head_count, rng_),
      kernels_(&KernelsFor(options.kernels)),
      head_mean_(head_count, 0.0),
      head_std_(head_count, 1.0) {
  assert(head_count_ >= 1);
  std::vector<ParamBlock*> params = Params();
  AdamOptions adam_options;
  adam_options.learning_rate = options.learning_rate;
  adam_options.weight_decay = 1e-5;
  adam_ = std::make_unique<Adam>(params, adam_options);
}

std::vector<ParamBlock*> DtmTrunk::Params() {
  std::vector<ParamBlock*> params;
  auto append = [&params](std::vector<ParamBlock*> block) {
    params.insert(params.end(), block.begin(), block.end());
  };
  append(dense1_.Params());
  append(dense2_.Params());
  append(crash_head_.Params());
  append(perf_head_.Params());
  append(rbf0_.Params());
  append(rbf1_.Params());
  append(rbf2_.Params());
  append(unc_head_.Params());
  return params;
}

void DtmTrunk::AddSample(const std::vector<double>& x, bool crashed,
                         const double* objectives) {
  assert(x.size() == input_dim_);
  xs_.push_back(x);
  crashed_.push_back(crashed);
  for (size_t k = 0; k < head_count_; ++k) {
    objectives_.push_back(crashed ? std::nan("") : objectives[k]);
  }
  normalizer_dirty_ = true;
}

void DtmTrunk::RefreshNormalizers() {
  if (!normalizer_dirty_) {
    return;
  }
  for (size_t k = 0; k < head_count_; ++k) {
    RunningStats stats;
    for (size_t i = 0; i < crashed_.size(); ++i) {
      if (!crashed_[i]) {
        stats.Add(objectives_[i * head_count_ + k]);
      }
    }
    head_mean_[k] = stats.Mean();
    head_std_[k] = stats.StdDev() > 1e-9 ? stats.StdDev() : 1.0;
  }
  normalizer_dirty_ = false;
}

double DtmTrunk::NormalizeObjective(size_t head, double objective) const {
  return (objective - head_mean_[head]) / head_std_[head];
}

double DtmTrunk::DenormalizeObjective(size_t head, double normalized) const {
  return normalized * head_std_[head] + head_mean_[head];
}

Parallelism DtmTrunk::Par() const {
  if (options_.threads <= 1) {
    return Parallelism{nullptr, 1, kernels_};
  }
  return Parallelism{&ThreadPool::Shared(), options_.threads, kernels_};
}

// wf-hot-path: workspace-arena — every buffer is a ws_ member reshaped in
// place; nn_test pins workspace_grow_count() stable across warm rounds.
void DtmTrunk::Forward(const Matrix& x, bool training) {
  Parallelism par = Par();
  ws_.Count(dense1_.ForwardInto(x, ws_.h1, par));  // Fused x W + b.
  relu1_.ForwardInPlace(ws_.h1, par);
  dropout_.ForwardInPlace(ws_.h1, rng_, training);
  ws_.Count(dense2_.ForwardInto(ws_.h1, ws_.h2, par));
  relu2_.ForwardInPlace(ws_.h2, par);
  ws_.Count(crash_head_.ForwardInto(ws_.h2, ws_.crash_logits, par));
  ws_.Count(perf_head_.ForwardInto(ws_.h2, ws_.yhat, par));
  ws_.Count(rbf0_.ForwardInto(x, ws_.phi0, par));
  ws_.Count(rbf1_.ForwardInto(ws_.h1, ws_.phi1, par));
  ws_.Count(rbf2_.ForwardInto(ws_.h2, ws_.phi2, par));
  ws_.Count(ConcatCols3Into(ws_.phi0, ws_.phi1, ws_.phi2, ws_.phi));
  ws_.Count(unc_head_.ForwardInto(ws_.phi, ws_.s, par));
}

// wf-hot-path: workspace-arena — the whole training loop (gather, forward,
// backward, Adam) runs out of ws_; zero heap allocation once warm.
double DtmTrunk::Update() {
  if (xs_.empty()) {
    return 0.0;
  }
  obs::ScopedTimerNs update_timer(g_trunk_update_ns);
  RefreshNormalizers();
  Parallelism par = Par();
  double last_loss = 0.0;
  size_t batch = std::min(options_.batch_size, xs_.size());
  ws_.Count(ws_.x.Reshape(batch, input_dim_) ? 1 : 0);
  ws_.Count(ws_.y.Reshape(batch, head_count_) ? 1 : 0);
  ws_.ReserveGather(batch);
  for (size_t step = 0; step < options_.steps_per_update; ++step) {
    // Sample a minibatch (with replacement) from the replay buffer. Indices
    // and targets are drawn serially (the RNG stream and the vector<bool>
    // mask are order-sensitive); only the wide row copies go parallel.
    for (size_t b = 0; b < batch; ++b) {
      size_t i = static_cast<size_t>(
          rng_.UniformInt(0, static_cast<int64_t>(xs_.size()) - 1));
      ws_.batch_index[b] = i;
      ws_.crash_target[b] = crashed_[i] ? 1 : 0;
      ws_.mask[b] = false;
      for (size_t k = 0; k < head_count_; ++k) {
        ws_.y.At(b, k) = 0.0;
      }
      if (!crashed_[i]) {
        for (size_t k = 0; k < head_count_; ++k) {
          ws_.y.At(b, k) = NormalizeObjective(k, objectives_[i * head_count_ + k]);
        }
        ws_.mask[b] = true;
      }
    }
    ParallelFor(par.pool, batch, /*grain=*/8, par.max_ways, [&](size_t b0, size_t b1) {
      for (size_t b = b0; b < b1; ++b) {
        const std::vector<double>& row = xs_[ws_.batch_index[b]];
        std::copy(row.begin(), row.end(), ws_.x.Row(b));
      }
    });

    Forward(ws_.x, /*training=*/true);

    // --- Losses ------------------------------------------------------------
    double loss_cce =
        SoftmaxCrossEntropy(ws_.crash_logits, ws_.crash_target, &ws_.dlogits, ws_.probs);
    double loss_reg =
        HeteroscedasticLossMulti(ws_.yhat, ws_.s, ws_.y, ws_.mask, &ws_.dyhat, &ws_.ds);
    double loss_cham = rbf0_.AccumulateChamferGradient(options_.chamfer_weight, par) +
                       rbf1_.AccumulateChamferGradient(options_.chamfer_weight, par) +
                       rbf2_.AccumulateChamferGradient(options_.chamfer_weight, par);
    last_loss = loss_cce + loss_reg + options_.chamfer_weight * loss_cham;

    // --- Backward -----------------------------------------------------------
    ws_.Count(unc_head_.BackwardInto(ws_.ds, &ws_.dphi, par));
    size_t k = options_.rbf_centroids;
    ws_.Count(SliceColsInto(ws_.dphi, 0, k, ws_.dphi0));
    ws_.Count(SliceColsInto(ws_.dphi, k, 2 * k, ws_.dphi1));
    ws_.Count(SliceColsInto(ws_.dphi, 2 * k, 3 * k, ws_.dphi2));

    ws_.Count(crash_head_.BackwardInto(ws_.dlogits, &ws_.dh2, par));
    ws_.Count(perf_head_.BackwardInto(ws_.dyhat, &ws_.dh2_scratch, par));
    for (size_t i = 0; i < ws_.dh2.size(); ++i) {
      ws_.dh2.data()[i] += ws_.dh2_scratch.data()[i];
    }
    rbf2_.BackwardInto(ws_.dphi2, &ws_.dh2, /*accumulate=*/true, par);
    relu2_.BackwardInPlace(ws_.dh2);
    ws_.Count(dense2_.BackwardInto(ws_.dh2, &ws_.dh1, par));
    rbf1_.BackwardInto(ws_.dphi1, &ws_.dh1, /*accumulate=*/true, par);
    dropout_.BackwardInPlace(ws_.dh1);
    relu1_.BackwardInPlace(ws_.dh1);
    dense1_.BackwardInto(ws_.dh1, /*dx=*/nullptr, par);
    // Input gradient discarded.
    rbf0_.BackwardInto(ws_.dphi0, /*dz=*/nullptr, /*accumulate=*/false, par);

    adam_->Step(par);
  }
  return last_loss;
}

// wf-hot-path: workspace-arena — batched inference straight off the
// caller's matrix into ws_ slots (the candidate-pool scoring path).
size_t DtmTrunk::PredictRows(const Matrix& xs) {
  if (xs.rows() == 0) {
    return 0;
  }
  assert(xs.cols() == input_dim_);
  if (options_.naive) {
    ForwardNaive(xs);
    return xs.rows();
  }
  Forward(xs, /*training=*/false);
  ws_.Count(SoftmaxInto(ws_.crash_logits, ws_.probs));
  return xs.rows();
}

size_t DtmTrunk::PredictRows(const std::vector<std::vector<double>>& xs) {
  if (xs.empty()) {
    return 0;
  }
  // Stage through the workspace so repeat same-shaped calls don't allocate.
  ws_.Count(ws_.x.Reshape(xs.size(), input_dim_) ? 1 : 0);
  for (size_t i = 0; i < xs.size(); ++i) {
    assert(xs[i].size() == input_dim_);
    std::copy(xs[i].begin(), xs[i].end(), ws_.x.Row(i));
  }
  return PredictRows(ws_.x);
}

// wf-hot-path: workspace-arena — single-row staging through ws_.x.
size_t DtmTrunk::PredictRow(const std::vector<double>& x) {
  assert(x.size() == input_dim_);
  // Route straight through the batched forward: stage the single row in the
  // workspace, no per-call vector-of-vectors.
  ws_.Count(ws_.x.Reshape(1, input_dim_) ? 1 : 0);
  std::copy(x.begin(), x.end(), ws_.x.Row(0));
  return PredictRows(ws_.x);
}

void DtmTrunk::ForwardNaive(const Matrix& xs) {
  auto dense_naive = [](const Matrix& in, DenseLayer& layer) {
    Matrix out = NaiveMatMul(in, layer.weight().value);
    AddRowInPlace(out, layer.bias().value);
    return out;
  };
  auto relu_naive = [](const Matrix& in) {
    Matrix out = in;
    for (double& v : out.data()) {
      v = std::max(0.0, v);
    }
    return out;
  };
  auto rbf_naive = [](const Matrix& in, RbfLayer& layer) {
    const Matrix& c = layer.centroid_values();
    Matrix phi(in.rows(), c.rows());
    double inv = 1.0 / (2.0 * layer.gamma() * layer.gamma());
    for (size_t n = 0; n < in.rows(); ++n) {
      for (size_t ci = 0; ci < c.rows(); ++ci) {
        phi.At(n, ci) = std::exp(-RowSqDist(in, n, c, ci) * inv);
      }
    }
    return phi;
  };

  Matrix h1 = relu_naive(dense_naive(xs, dense1_));  // Dropout inactive at inference.
  Matrix h2 = relu_naive(dense_naive(h1, dense2_));
  Matrix crash_logits = dense_naive(h2, crash_head_);
  ws_.yhat = dense_naive(h2, perf_head_);
  Matrix phi = ConcatCols(ConcatCols(rbf_naive(xs, rbf0_), rbf_naive(h1, rbf1_)),
                          rbf_naive(h2, rbf2_));
  ws_.s = dense_naive(phi, unc_head_);
  ws_.probs = Softmax(crash_logits);
}

bool DtmTrunk::Save(const std::string& path) const {
  auto* self = const_cast<DtmTrunk*>(this);
  return SaveParamsToFile(self->Params(), path);
}

bool DtmTrunk::Load(const std::string& path) {
  return LoadParamsFromFile(Params(), path);
}

void DtmTrunk::Workspace::ReserveGather(size_t batch) {
  size_t caps = batch_index.capacity() + crash_target.capacity() + mask.capacity();
  batch_index.resize(batch);
  crash_target.resize(batch);
  mask.resize(batch);
  size_t caps_after = batch_index.capacity() + crash_target.capacity() + mask.capacity();
  if (caps_after != caps) {
    ++grow_count;
  }
}

size_t DtmTrunk::Workspace::Bytes() const {
  const Matrix* buffers[] = {&x,     &h1,    &h2,    &crash_logits, &yhat,  &s,
                             &phi0,  &phi1,  &phi2,  &phi,          &probs, &y,
                             &dlogits, &dyhat, &ds,  &dphi,         &dphi0, &dphi1,
                             &dphi2, &dh2,   &dh2_scratch,          &dh1};
  size_t bytes = 0;
  for (const Matrix* m : buffers) {
    bytes += m->size() * sizeof(double);
  }
  bytes += batch_index.size() * sizeof(size_t) + crash_target.size() * sizeof(int) +
           mask.size() / 8;
  return bytes;
}

size_t DtmTrunk::MemoryBytes() const {
  size_t bytes = 0;
  auto* self = const_cast<DtmTrunk*>(this);
  for (ParamBlock* p : self->Params()) {
    // Value + gradient + two Adam moments.
    bytes += 4 * p->value.size() * sizeof(double);
  }
  for (const auto& x : xs_) {
    bytes += x.size() * sizeof(double);
  }
  bytes += crashed_.size() / 8 + objectives_.size() * sizeof(double);
  bytes += ws_.Bytes();  // The scratch arena is live model state too.
  return bytes;
}

}  // namespace wayfinder
