#include "src/core/pareto.h"

#include <cassert>

namespace wayfinder {

namespace {

// True when a dominates b: a >= b in every coordinate, a > b in at least one.
bool Dominates(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  bool strictly_better_somewhere = false;
  for (size_t k = 0; k < a.size(); ++k) {
    if (a[k] < b[k]) {
      return false;
    }
    if (a[k] > b[k]) {
      strictly_better_somewhere = true;
    }
  }
  return strictly_better_somewhere;
}

}  // namespace

std::vector<size_t> ParetoFrontIndices(const std::vector<std::vector<double>>& points) {
  std::vector<size_t> front;
  for (size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < points.size() && !dominated; ++j) {
      dominated = j != i && Dominates(points[j], points[i]);
    }
    if (!dominated) {
      front.push_back(i);
    }
  }
  return front;
}

std::vector<size_t> ParetoFront(const std::vector<TrialRecord>& history,
                                const std::vector<MetricSpec>& metrics) {
  std::vector<size_t> successful;
  std::vector<std::vector<double>> points;
  for (size_t i = 0; i < history.size(); ++i) {
    if (history[i].crashed()) {
      continue;
    }
    std::vector<double> row(metrics.size());
    for (size_t k = 0; k < metrics.size(); ++k) {
      double raw = metrics[k].extract(history[i].outcome);
      row[k] = metrics[k].higher_is_better ? raw : -raw;
    }
    successful.push_back(i);
    points.push_back(std::move(row));
  }
  std::vector<size_t> front;
  for (size_t index : ParetoFrontIndices(points)) {
    front.push_back(successful[index]);
  }
  return front;
}

}  // namespace wayfinder
