// The parallel proposal pipeline: deterministic, optionally-threaded
// candidate-pool assembly shared by the DTM-backed searchers
// (DeepTuneSearcher and MultiMetricSearcher).
//
// Once DTM prediction is batched (one fused forward pass per pool), pool
// *assembly* — line-search decode, elite mutation, random sampling, and
// feature encoding — is the dominant serial fraction of a searcher
// iteration. This helper shards that work across the process-wide thread
// pool while keeping the paper's determinism guarantee intact:
//
//   * every candidate index draws from its own counter-derived RNG stream,
//     seeded from (pool_seed, block salt, candidate index) — never from the
//     session's shared `SearchContext::rng` — so the produced pool does not
//     depend on how candidates were partitioned across threads;
//   * the pool layout (which indices are line-search, mutation, or random
//     candidates) is pure arithmetic over the spec, computed identically at
//     any thread count;
//   * each candidate is encoded directly into its row of the caller's
//     persistent `encoded` matrix, so the warm path allocates nothing for
//     staging.
//
// The result: the full search trajectory is bit-identical at any
// `threads` value — including fully serial (0) — which is what the
// trajectory-pinning tests assert.
#ifndef WAYFINDER_SRC_CORE_PROPOSAL_H_
#define WAYFINDER_SRC_CORE_PROPOSAL_H_

#include <cstdint>
#include <vector>

#include "src/configspace/config_space.h"
#include "src/nn/matrix.h"
#include "src/platform/trial.h"

namespace wayfinder {

// Pool composition knobs (mirrors the searcher options that feed it).
struct ProposalPoolSpec {
  size_t pool_size = 128;
  // Fraction of the pool derived from the elite set (line search + mutation).
  double exploit_fraction = 0.6;
  size_t max_mutations = 4;
  // Emit the model-guided coordinate line-search block (DeepTune's pool head;
  // the multi-metric searcher skips it).
  bool line_search = true;
  // Concurrent shards over the shared ThreadPool; 0/1 = fully serial.
  size_t threads = 0;
};

// Fills `pool` (resized to spec.pool_size) and `encoded` (reshaped to
// pool_size x FeatureDimension) with the candidate pool for one proposal
// iteration:
//
//   [ line-search grids | elite mutations | random samples ]
//
// `pool_seed` must change per iteration (the searchers hash their seed, an
// iteration counter, and one serial draw from the session RNG). Both output
// containers should persist across calls so the warm path reuses their
// buffers. Bit-identical at any spec.threads value.
void AssembleProposalPool(const ConfigSpace& space,
                          const std::vector<Configuration>& elites,
                          const SampleOptions& sample_options,
                          const ProposalPoolSpec& spec, uint64_t pool_seed,
                          std::vector<Configuration>& pool, Matrix& encoded);

// Batch selection over a scored pool, shared by the DTM-backed searchers'
// ProposeBatch overrides: appends up to `n` distinct candidates to `batch`
// in stable score-descending order (ties keep pool order). Candidates whose
// configuration was already evaluated in `history` rank behind unseen ones —
// the session would only dedup-retry them, and each retry costs a full pool
// re-ranking — but can still fill the tail when the pool lacks n distinct
// unseen members. May append fewer than n; callers top up (e.g. with random
// samples). The selection is a pure function of its inputs.
void SelectTopCandidates(const std::vector<double>& scores,
                         const std::vector<Configuration>& pool,
                         const std::vector<TrialRecord>* history, size_t n,
                         std::vector<Configuration>* batch);

// Ring of the most recent `window` evaluated configurations in encoded form,
// for the dissimilarity term of candidate scoring. Synced incrementally —
// each trial is encoded exactly once, ever, instead of window-many
// re-encodes per iteration — and shared by both DTM-backed searchers.
// Detects a replaced history (searcher reused across sessions, resume into
// a different prior) and rebuilds from scratch. Dissimilarity takes a min
// over rows, so ring order never affects scores.
class EncodedHistoryRing {
 public:
  // Brings the ring up to date with `history`, encoding only the trials
  // appended since the last call.
  void Sync(const ConfigSpace& space, const std::vector<TrialRecord>& history,
            size_t window);

  const Matrix& rows() const { return encoded_; }
  size_t row_count() const { return rows_; }
  size_t bytes() const { return encoded_.size() * sizeof(double); }

 private:
  Matrix encoded_;
  size_t rows_ = 0;    // Valid rows (<= window).
  size_t next_ = 0;    // Ring write cursor.
  size_t synced_ = 0;  // History entries consumed so far.
  uint64_t last_synced_hash_ = 0;  // Guards against a swapped history.
};

// Per-searcher proposal-pipeline state: the seeding recipe for the
// counter-derived candidate streams plus the persistent pool/encode/ring
// scratch. One struct shared by both DTM-backed searchers so the
// determinism-critical parts cannot drift apart.
struct ProposalState {
  explicit ProposalState(uint64_t model_seed)
      : search_seed(HashCombine(model_seed, StableHash("proposal-pipeline"))) {}

  // Pool seed for the next Propose: mixes the searcher seed, an iteration
  // counter, and exactly one serial draw of session entropy. All three are
  // independent of thread partitioning, which is what keeps the trajectory
  // bit-identical at any thread count.
  uint64_t NextPoolSeed(Rng& session_rng) {
    return HashCombine(HashCombine(search_seed, ++iteration), session_rng.Next());
  }

  // Live bytes of the proposal scratch (candidate pool, encoded batch,
  // history ring), for the searchers' MemoryBytes accounting.
  size_t ScratchBytes() const {
    size_t bytes = encoded.size() * sizeof(double) + history.bytes();
    for (const Configuration& candidate : pool) {
      bytes += candidate.Size() * sizeof(int64_t);
    }
    return bytes;
  }

  uint64_t search_seed = 0;
  uint64_t iteration = 0;
  std::vector<Configuration> pool;
  Matrix encoded;
  EncodedHistoryRing history;
};

}  // namespace wayfinder

#endif  // WAYFINDER_SRC_CORE_PROPOSAL_H_
