// The DeepTune searcher — Figure 3's loop as a platform Searcher:
//
//   1. generate a diverse pool of candidate permutations (random samples
//      plus mutations of the best configurations found so far);
//   2. predict each candidate's crash probability, objective, and
//      uncertainty with the DTM;
//   3. rank with the scoring function (Eq. 3 merged with the prediction);
//   4. hand the top candidate to the platform for evaluation;
//   5. update the DTM with the outcome.
//
// Transfer learning (§3.3): SaveModel persists the DTM after a session;
// LoadModel warm-starts a new searcher for a related application on the
// same configuration space.
#ifndef WAYFINDER_SRC_CORE_DEEPTUNE_H_
#define WAYFINDER_SRC_CORE_DEEPTUNE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/core/dtm.h"
#include "src/core/proposal.h"
#include "src/core/scoring.h"
#include "src/platform/searcher.h"

namespace wayfinder {

struct DeepTuneOptions {
  DtmOptions model;
  ScoreOptions scoring;
  size_t pool_size = 128;
  // Fraction of the pool mutated from the best configurations seen so far
  // (the exploitation half of the pool's diversity).
  double exploit_fraction = 0.6;
  size_t max_mutations = 4;
  // Iterations of pure random proposals before the model takes over.
  size_t warmup = 12;
  // Train the model once per this many observations.
  size_t update_every = 1;
};

class DeepTuneSearcher : public Searcher {
 public:
  explicit DeepTuneSearcher(const ConfigSpace* space, const DeepTuneOptions& options = {});

  std::string Name() const override { return "deeptune"; }
  Configuration Propose(SearchContext& context) override;
  // Real batch proposal: ONE pool assembly + ONE fused DTM forward pass,
  // then the n top-ranked distinct candidates — not n repeated serial
  // Proposes (which would assemble and rank n pools). During warmup the
  // batch is n random samples, like the serial path.
  void ProposeBatch(SearchContext& context, size_t n,
                    std::vector<Configuration>* batch) override;
  void Observe(const TrialRecord& trial, SearchContext& context) override;
  // Drift: the elite set ranks configurations by pre-drift objectives —
  // drop it and retrain now; the session's elite re-validation feeds the
  // old best back at its post-drift value.
  void OnDrift(SearchContext& context) override;
  size_t MemoryBytes() const override;

  // Checkpoint v2 live state: the pool-seed iteration counter, the one piece
  // of proposal-side state an Observe replay cannot rebuild (the model,
  // elites, and history ring all retrain/refill bit-exactly from replay).
  std::string ExportState() const override;
  bool RestoreState(const std::string& state) override;

  // Transfer learning.
  bool SaveModel(const std::string& path) const { return model_.Save(path); }
  bool LoadModel(const std::string& path);
  bool transferred() const { return transferred_; }

  const DeepTuneModel& model() const { return model_; }
  DeepTuneModel& mutable_model() { return model_; }

  // Model verdict for an arbitrary configuration (Table 3 evaluation and
  // the §4.1 parameter-importance analysis).
  DtmPrediction PredictConfig(const Configuration& config);

  // Model-estimated impact of each parameter: change in predicted objective
  // when the parameter sweeps its domain with everything else at the best
  // known configuration (§4.1 "High-Impact Configuration Parameters").
  std::vector<double> ParameterImpacts(SearchContext& context);

 private:
  // Assembles the candidate pool (PR-3 proposal pipeline) and returns the
  // Eq. 2/3 rank score of every pool row — the shared engine behind Propose
  // (argmax) and ProposeBatch (top-n distinct).
  std::vector<double> ScorePool(SearchContext& context);

  const ConfigSpace* space_;
  DeepTuneOptions options_;
  DeepTuneModel model_;
  ScoreOptions scoring_;
  size_t observed_ = 0;
  bool transferred_ = false;
  // Best configurations seen (for pool exploitation), most recent best last.
  std::vector<Configuration> elites_;
  std::vector<double> elite_objectives_;

  // Proposal pipeline state (seeding recipe + persistent pool/encode/ring
  // scratch): candidate streams are counter-derived, never the shared
  // session RNG per candidate, so the pool is bit-identical at any thread
  // count. Shared shape with MultiMetricSearcher via ProposalState.
  static constexpr size_t kHistoryWindow = 128;
  ProposalState proposal_;
};

}  // namespace wayfinder

#endif  // WAYFINDER_SRC_CORE_DEEPTUNE_H_
