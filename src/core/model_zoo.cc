#include "src/core/model_zoo.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/forest/random_forest.h"

namespace wayfinder {

namespace fs = std::filesystem;

std::vector<double> ComputeImportanceFingerprint(Testbench& bench, size_t samples,
                                                 uint64_t seed) {
  const ConfigSpace& space = bench.space();
  Rng rng(seed);
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  size_t attempts = 0;
  const size_t max_attempts = samples * 10;  // Crash headroom.
  while (xs.size() < samples && attempts < max_attempts) {
    ++attempts;
    Configuration config = space.RandomConfiguration(rng, SampleOptions::FavorRuntime());
    TrialOutcome outcome = bench.Evaluate(config, rng, /*clock=*/nullptr);
    if (!outcome.ok()) {
      continue;
    }
    xs.push_back(space.Encode(config));
    ys.push_back(outcome.metric);
  }
  if (xs.size() < 8) {
    return std::vector<double>(space.FeatureDimension(), 0.0);
  }
  ForestOptions options;
  options.seed = seed ^ 0xf06e57;
  RandomForestRegressor forest(options);
  forest.Fit(xs, ys);
  return forest.FeatureImportance();
}

ModelZoo::ModelZoo(const std::string& directory) : directory_(directory) {
  std::error_code ec;
  fs::create_directories(directory_, ec);
}

std::string ModelZoo::ModelPath(const std::string& name) const {
  return (fs::path(directory_) / (name + ".wfnn")).string();
}

std::string ModelZoo::FingerprintPath(const std::string& name) const {
  return (fs::path(directory_) / (name + ".fingerprint")).string();
}

bool ModelZoo::Publish(const std::string& name, const DeepTuneSearcher& searcher,
                       const std::vector<double>& fingerprint) {
  if (name.empty() || name.find('/') != std::string::npos) {
    return false;  // Entry names must be plain file stems.
  }
  if (!searcher.SaveModel(ModelPath(name))) {
    return false;
  }
  std::ofstream out(FingerprintPath(name));
  if (!out) {
    return false;
  }
  out.precision(17);
  out << "wayfinder-fingerprint v1\n";
  out << "dim " << searcher.model().input_dim() << "\n";
  out << "importance";
  for (double v : fingerprint) {
    out << " " << v;
  }
  out << "\n";
  return static_cast<bool>(out);
}

std::vector<ZooEntry> ModelZoo::List() const {
  std::vector<ZooEntry> entries;
  std::error_code ec;
  for (const auto& item : fs::directory_iterator(directory_, ec)) {
    if (item.path().extension() != ".fingerprint") {
      continue;
    }
    std::ifstream in(item.path());
    std::string line;
    if (!std::getline(in, line) || line != "wayfinder-fingerprint v1") {
      continue;
    }
    ZooEntry entry;
    entry.name = item.path().stem().string();
    std::string keyword;
    in >> keyword >> entry.input_dim;
    if (keyword != "dim") {
      continue;
    }
    in >> keyword;
    if (keyword != "importance") {
      continue;
    }
    double value = 0.0;
    while (in >> value) {
      entry.fingerprint.push_back(value);
    }
    // The model file must exist alongside the fingerprint.
    if (!fs::exists(ModelPath(entry.name))) {
      continue;
    }
    entries.push_back(std::move(entry));
  }
  std::sort(entries.begin(), entries.end(),
            [](const ZooEntry& a, const ZooEntry& b) { return a.name < b.name; });
  return entries;
}

std::vector<DonorMatch> ModelZoo::RankDonors(const std::vector<double>& fingerprint) const {
  std::vector<DonorMatch> matches;
  for (const ZooEntry& entry : List()) {
    if (entry.fingerprint.size() != fingerprint.size()) {
      continue;
    }
    matches.push_back({entry.name, ImportanceSimilarity(entry.fingerprint, fingerprint)});
  }
  std::sort(matches.begin(), matches.end(), [](const DonorMatch& a, const DonorMatch& b) {
    return a.similarity > b.similarity;
  });
  return matches;
}

bool ModelZoo::Adopt(const std::string& name, DeepTuneSearcher* searcher) const {
  return searcher->LoadModel(ModelPath(name));
}

bool ModelZoo::Remove(const std::string& name) {
  std::error_code ec;
  bool removed_model = fs::remove(ModelPath(name), ec);
  bool removed_fingerprint = fs::remove(FingerprintPath(name), ec);
  return removed_model || removed_fingerprint;
}

}  // namespace wayfinder
