// Multi-metric DeepTune Model — the §3.2 extension implemented.
//
// The paper's DTM "can be extended to handle multiple metrics by adding
// additional output layers to F_p and F_u. This modification allows the
// DTM to make predictions for multiple targets simultaneously." This class
// is that modification: the objective head emits K outputs and the
// uncertainty head K log-variances, trained with a K-column heteroscedastic
// loss. Each metric keeps its own z-score normalizer so req/s and MB can
// share one network.
//
// Like `DeepTuneModel`, this is a thin head over the shared `DtmTrunk`
// (src/core/dtm_trunk.h) — the same single Forward/Backward/Update/Workspace
// implementation at K = metric_count. The zero-alloc workspace arena, the
// dispatched SIMD kernel backend, and bit-identical threading all come from
// the trunk.
#ifndef WAYFINDER_SRC_CORE_MULTI_DTM_H_
#define WAYFINDER_SRC_CORE_MULTI_DTM_H_

#include <string>
#include <vector>

#include "src/core/dtm_trunk.h"

namespace wayfinder {

struct MultiDtmPrediction {
  double crash_prob = 0.0;
  std::vector<double> objectives;  // One ŷ per metric (normalized units).
  std::vector<double> sigmas;      // One σ̂ per metric.
};

class MultiDtm {
 public:
  // `metric_count` >= 1; metric_count == 1 behaves like DeepTuneModel.
  MultiDtm(size_t input_dim, size_t metric_count, const DtmOptions& options = {})
      : trunk_(input_dim, metric_count, options) {}

  size_t input_dim() const { return trunk_.input_dim(); }
  size_t metric_count() const { return trunk_.head_count(); }
  size_t sample_count() const { return trunk_.sample_count(); }

  // `objectives` must have metric_count entries, all in each metric's raw
  // higher-is-better orientation; ignored for crashed trials.
  void AddSample(const std::vector<double>& x, bool crashed,
                 const std::vector<double>& objectives);

  // Runs steps_per_update minibatch gradient steps; returns the last loss.
  double Update() { return trunk_.Update(); }

  MultiDtmPrediction Predict(const std::vector<double>& x);
  std::vector<MultiDtmPrediction> PredictBatch(const std::vector<std::vector<double>>& xs);
  // Batched inference over a row-major (N x input_dim) candidate matrix —
  // one fused forward pass for the whole pool, no per-candidate staging.
  std::vector<MultiDtmPrediction> PredictBatch(const Matrix& xs);

  // Per-metric z-score normalization over successful observations.
  double NormalizeObjective(size_t metric, double objective) const {
    return trunk_.NormalizeObjective(metric, objective);
  }
  double DenormalizeObjective(size_t metric, double normalized) const {
    return trunk_.DenormalizeObjective(metric, normalized);
  }

  std::vector<ParamBlock*> Params() { return trunk_.Params(); }
  bool Save(const std::string& path) const { return trunk_.Save(path); }
  bool Load(const std::string& path) { return trunk_.Load(path); }
  size_t MemoryBytes() const { return trunk_.MemoryBytes(); }

  const DtmOptions& options() const { return trunk_.options(); }

  // Times any workspace buffer had to (re)allocate. Stable across repeated
  // same-shaped Forward/Update rounds — the zero-alloc-after-warmup
  // guarantee that tests assert on.
  size_t workspace_grow_count() const { return trunk_.workspace_grow_count(); }

  // The SIMD backend this model resolved at construction.
  const char* kernel_backend_name() const { return trunk_.kernel_backend_name(); }

 private:
  std::vector<MultiDtmPrediction> Emit(size_t n) const;

  DtmTrunk trunk_;
};

}  // namespace wayfinder

#endif  // WAYFINDER_SRC_CORE_MULTI_DTM_H_
