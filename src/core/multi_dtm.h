// Multi-metric DeepTune Model — the §3.2 extension implemented.
//
// The paper's DTM "can be extended to handle multiple metrics by adding
// additional output layers to F_p and F_u. This modification allows the
// DTM to make predictions for multiple targets simultaneously." This class
// is that modification: the same two-branch architecture as DeepTuneModel
// (shared trunk, crash head, stacked RBF uncertainty branch), but the
// objective head emits K outputs and the uncertainty head K log-variances,
// trained with a K-column heteroscedastic loss. Each metric keeps its own
// z-score normalizer so req/s and MB can share one network.
//
// Runs on the same fast path as DeepTuneModel: a workspace arena of scratch
// matrices (zero heap allocation once warm — `workspace_grow_count()` pins
// it), the dispatched SIMD kernel backend (`DtmOptions::kernels`), batched
// per-head forwards, and optional row/block threading (`DtmOptions::threads`)
// with bit-identical results at any thread count.
#ifndef WAYFINDER_SRC_CORE_MULTI_DTM_H_
#define WAYFINDER_SRC_CORE_MULTI_DTM_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/dtm.h"
#include "src/nn/layers.h"
#include "src/nn/losses.h"
#include "src/nn/optimizer.h"
#include "src/util/rng.h"

namespace wayfinder {

struct MultiDtmPrediction {
  double crash_prob = 0.0;
  std::vector<double> objectives;  // One ŷ per metric (normalized units).
  std::vector<double> sigmas;      // One σ̂ per metric.
};

class MultiDtm {
 public:
  // `metric_count` >= 1; metric_count == 1 behaves like DeepTuneModel.
  MultiDtm(size_t input_dim, size_t metric_count, const DtmOptions& options = {});

  size_t input_dim() const { return input_dim_; }
  size_t metric_count() const { return metric_count_; }
  size_t sample_count() const { return xs_.size(); }

  // `objectives` must have metric_count entries, all in each metric's raw
  // higher-is-better orientation; ignored for crashed trials.
  void AddSample(const std::vector<double>& x, bool crashed,
                 const std::vector<double>& objectives);

  // Runs steps_per_update minibatch gradient steps; returns the last loss.
  double Update();

  MultiDtmPrediction Predict(const std::vector<double>& x);
  std::vector<MultiDtmPrediction> PredictBatch(const std::vector<std::vector<double>>& xs);
  // Batched inference over a row-major (N x input_dim) candidate matrix —
  // one fused forward pass for the whole pool, no per-candidate staging.
  std::vector<MultiDtmPrediction> PredictBatch(const Matrix& xs);

  // Per-metric z-score normalization over successful observations.
  double NormalizeObjective(size_t metric, double objective) const;
  double DenormalizeObjective(size_t metric, double normalized) const;

  std::vector<ParamBlock*> Params();
  bool Save(const std::string& path) const;
  bool Load(const std::string& path);
  size_t MemoryBytes() const;

  const DtmOptions& options() const { return options_; }

  // Times any workspace buffer had to (re)allocate. Stable across repeated
  // same-shaped Forward/Update rounds — the zero-alloc-after-warmup
  // guarantee that tests assert on.
  size_t workspace_grow_count() const { return ws_.grow_count; }

  // The SIMD backend this model resolved at construction ("portable"/"avx2").
  const char* kernel_backend_name() const;

 private:
  // Scratch arena for one forward/backward round, mirroring
  // DeepTuneModel::Workspace with K-wide head buffers.
  struct Workspace {
    Matrix x;                          // Staged input batch.
    Matrix h1, h2;                     // Trunk activations (in-place ReLU/dropout).
    Matrix crash_logits, yhat, s;      // Head outputs (yhat/s are N x K).
    Matrix phi0, phi1, phi2, phi;      // RBF activations and their concat.
    Matrix probs;                      // Softmax output for prediction.
    Matrix y;                          // Staged N x K regression targets.
    Matrix dlogits, dyhat, ds;         // Loss gradients.
    Matrix dphi, dphi0, dphi1, dphi2;  // Uncertainty-branch gradients.
    Matrix dh2, dh2_scratch, dh1;      // Trunk gradients.
    // Training-loop gather scratch.
    std::vector<size_t> batch_index;
    std::vector<int> crash_target;
    std::vector<bool> mask;
    size_t grow_count = 0;

    void Count(size_t grew) { grow_count += grew; }
    void ReserveGather(size_t batch);
    size_t Bytes() const;
  };

  // Fast path: runs the network over `x` into the workspace. `x` must stay
  // alive/unmodified until the round's backward pass completes.
  void Forward(const Matrix& x, bool training);
  std::vector<MultiDtmPrediction> PredictFromWorkspace(size_t n);
  Parallelism Par() const;
  void RefreshNormalizers();

  size_t input_dim_;
  size_t metric_count_;
  DtmOptions options_;
  Rng rng_;

  DenseLayer dense1_;
  ReluLayer relu1_;
  DropoutLayer dropout_;
  DenseLayer dense2_;
  ReluLayer relu2_;
  DenseLayer crash_head_;
  DenseLayer perf_head_;  // hidden2 -> K.
  RbfLayer rbf0_;
  RbfLayer rbf1_;
  RbfLayer rbf2_;
  DenseLayer unc_head_;   // 3*centroids -> K.
  std::unique_ptr<Adam> adam_;
  const KernelOps* kernels_ = nullptr;  // Resolved once from options().kernels.
  Workspace ws_;

  // Replay buffer.
  std::vector<std::vector<double>> xs_;
  std::vector<bool> crashed_;
  std::vector<std::vector<double>> objectives_;

  std::vector<double> metric_mean_;
  std::vector<double> metric_std_;
  bool normalizer_dirty_ = true;
};

}  // namespace wayfinder

#endif  // WAYFINDER_SRC_CORE_MULTI_DTM_H_
