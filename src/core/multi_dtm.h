// Multi-metric DeepTune Model — the §3.2 extension implemented.
//
// The paper's DTM "can be extended to handle multiple metrics by adding
// additional output layers to F_p and F_u. This modification allows the
// DTM to make predictions for multiple targets simultaneously." This class
// is that modification: the same two-branch architecture as DeepTuneModel
// (shared trunk, crash head, stacked RBF uncertainty branch), but the
// objective head emits K outputs and the uncertainty head K log-variances,
// trained with a K-column heteroscedastic loss. Each metric keeps its own
// z-score normalizer so req/s and MB can share one network.
#ifndef WAYFINDER_SRC_CORE_MULTI_DTM_H_
#define WAYFINDER_SRC_CORE_MULTI_DTM_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/dtm.h"
#include "src/nn/layers.h"
#include "src/nn/losses.h"
#include "src/nn/optimizer.h"
#include "src/util/rng.h"

namespace wayfinder {

struct MultiDtmPrediction {
  double crash_prob = 0.0;
  std::vector<double> objectives;  // One ŷ per metric (normalized units).
  std::vector<double> sigmas;      // One σ̂ per metric.
};

class MultiDtm {
 public:
  // `metric_count` >= 1; metric_count == 1 behaves like DeepTuneModel.
  MultiDtm(size_t input_dim, size_t metric_count, const DtmOptions& options = {});

  size_t input_dim() const { return input_dim_; }
  size_t metric_count() const { return metric_count_; }
  size_t sample_count() const { return xs_.size(); }

  // `objectives` must have metric_count entries, all in each metric's raw
  // higher-is-better orientation; ignored for crashed trials.
  void AddSample(const std::vector<double>& x, bool crashed,
                 const std::vector<double>& objectives);

  // Runs steps_per_update minibatch gradient steps; returns the last loss.
  double Update();

  MultiDtmPrediction Predict(const std::vector<double>& x);
  std::vector<MultiDtmPrediction> PredictBatch(const std::vector<std::vector<double>>& xs);

  // Per-metric z-score normalization over successful observations.
  double NormalizeObjective(size_t metric, double objective) const;
  double DenormalizeObjective(size_t metric, double normalized) const;

  std::vector<ParamBlock*> Params();
  bool Save(const std::string& path) const;
  bool Load(const std::string& path);
  size_t MemoryBytes() const;

  const DtmOptions& options() const { return options_; }

 private:
  struct ForwardCache {
    Matrix h1_pre, h1_act, h1_drop, h2_act;
    Matrix crash_logits, yhat;
    Matrix phi0, phi1, phi2, s;
  };

  ForwardCache Forward(const Matrix& x, bool training);
  void RefreshNormalizers();

  size_t input_dim_;
  size_t metric_count_;
  DtmOptions options_;
  Rng rng_;

  DenseLayer dense1_;
  ReluLayer relu1_;
  DropoutLayer dropout_;
  DenseLayer dense2_;
  ReluLayer relu2_;
  DenseLayer crash_head_;
  DenseLayer perf_head_;  // hidden2 -> K.
  RbfLayer rbf0_;
  RbfLayer rbf1_;
  RbfLayer rbf2_;
  DenseLayer unc_head_;   // 3*centroids -> K.
  std::unique_ptr<Adam> adam_;

  // Replay buffer.
  std::vector<std::vector<double>> xs_;
  std::vector<bool> crashed_;
  std::vector<std::vector<double>> objectives_;

  std::vector<double> metric_mean_;
  std::vector<double> metric_std_;
  bool normalizer_dirty_ = true;
};

}  // namespace wayfinder

#endif  // WAYFINDER_SRC_CORE_MULTI_DTM_H_
