#include "src/core/proposal.h"

#include <algorithm>
#include <unordered_set>

#include "src/obs/metrics.h"
#include "src/util/thread_pool.h"

namespace wayfinder {
namespace {

// Where proposal wall time goes: pool assembly is the searcher-side long
// pole (mutation + encoding over the whole pool).
obs::Histogram& g_pool_assembly_ns =
    obs::Registry::Instance().GetHistogram("core.pool_assembly_ns");

// Coordinate line-search grid resolution (candidates per swept parameter).
constexpr size_t kGridPoints = 5;

// Stream salts: keep the three candidate blocks (and the per-group parameter
// lottery) on disjoint counter-derived RNG streams even where their index
// ranges overlap.
constexpr uint64_t kLineGroupSalt = 0x11f35a1e;
constexpr uint64_t kMutateSalt = 0x2317ab9d;
constexpr uint64_t kRandomSalt = 0x35e0d3c7;

// The per-candidate generator: seeded from (pool_seed, salt, index) only, so
// candidate i's draws are independent of every other candidate and of the
// thread that happens to run it.
Rng StreamFor(uint64_t pool_seed, uint64_t salt, uint64_t index) {
  return Rng(HashCombine(HashCombine(pool_seed, salt), index));
}

}  // namespace

void AssembleProposalPool(const ConfigSpace& space,
                          const std::vector<Configuration>& elites,
                          const SampleOptions& sample_options,
                          const ProposalPoolSpec& spec, uint64_t pool_seed,
                          std::vector<Configuration>& pool, Matrix& encoded) {
  obs::ScopedTimerNs assembly_timer(g_pool_assembly_ns);
  const size_t pool_size = spec.pool_size;
  const size_t dim = space.FeatureDimension();
  pool.resize(pool_size);
  encoded.Reshape(pool_size, dim);
  if (pool_size == 0) {
    return;
  }

  // --- pool layout (pure arithmetic; identical at any thread count) --------
  // Phase-biased parameter weights, shared read-only by every shard.
  const std::vector<double> weights = space.MutationWeights(sample_options);
  double weight_total = 0.0;
  for (double w : weights) {
    weight_total += w;
  }
  const size_t exploit =
      elites.empty() ? 0
                     : static_cast<size_t>(static_cast<double>(pool_size) *
                                           spec.exploit_fraction);
  // Line-search block: groups of kGridPoints candidates sweeping one
  // lottery-drawn parameter across a value grid from an elite base.
  size_t line_total = 0;
  if (spec.line_search && exploit > 0 && weight_total > 0.0) {
    size_t line_candidates = exploit / 2;
    size_t groups = (line_candidates + kGridPoints - 1) / kGridPoints;
    line_total = std::min(groups * kGridPoints, pool_size);
  }
  const size_t mutate_end = std::max(line_total, exploit);

  // --- sharded generation ---------------------------------------------------
  // Each candidate mutates and encodes independently: ConfigSpace's sampling
  // and encoding methods are pure over immutable space state (see the
  // thread-safety note in config_space.h), every candidate has its own RNG
  // stream, and each shard writes disjoint pool entries / encoded rows.
  ThreadPool* tp = spec.threads > 1 ? &ThreadPool::Shared() : nullptr;
  ParallelFor(tp, pool_size, /*grain=*/8, spec.threads, [&](size_t i0, size_t i1) {
    for (size_t i = i0; i < i1; ++i) {
      Configuration& out = pool[i];
      if (i < line_total) {
        size_t group = i / kGridPoints;
        const Configuration& base = elites[group % elites.size()];
        // Every member of a group re-derives the group's parameter lottery —
        // cheap, and it keeps the draw off any shared stream.
        Rng group_rng = StreamFor(pool_seed, kLineGroupSalt, group);
        size_t param = group_rng.WeightedIndex(weights);
        out = base;
        double code = static_cast<double>(i % kGridPoints) /
                      static_cast<double>(kGridPoints - 1);
        out.SetRaw(param, space.DecodeParam(param, code));
        space.ApplyConstraints(&out);
      } else if (i < mutate_end) {
        const Configuration& base = elites[i % elites.size()];
        Rng rng = StreamFor(pool_seed, kMutateSalt, i);
        size_t mutations = 1 + static_cast<size_t>(rng.UniformInt(
                                   0, static_cast<int64_t>(spec.max_mutations) - 1));
        space.NeighborInto(base, rng, mutations, weights, &out);
      } else {
        Rng rng = StreamFor(pool_seed, kRandomSalt, i);
        if (out.space() != &space) {
          out = space.DefaultConfiguration();  // Bind once; reused when warm.
        }
        space.RandomConfigurationInto(rng, sample_options, &out);
      }
      space.EncodeInto(out, encoded.Row(i));
    }
  });
}

void EncodedHistoryRing::Sync(const ConfigSpace& space,
                              const std::vector<TrialRecord>& history, size_t window) {
  size_t dim = space.FeatureDimension();
  // Detect a replaced history: the vector shrank, or the last trial we
  // synced is no longer the same configuration at that position.
  bool replaced = history.size() < synced_;
  if (!replaced && synced_ > 0) {
    replaced = history[synced_ - 1].config.Hash() != last_synced_hash_;
  }
  if (replaced) {
    rows_ = 0;
    next_ = 0;
    synced_ = 0;
  }
  if (encoded_.rows() != window || encoded_.cols() != dim) {
    // A ring of a different shape holds nothing usable: drop it rather than
    // let stale cursors count garbage rows as history.
    encoded_.Reshape(window, dim);
    rows_ = 0;
    next_ = 0;
    synced_ = 0;
  }
  // Only the window's worth of tail can ever be live in the ring.
  size_t begin = synced_;
  if (history.size() - begin > window) {
    begin = history.size() - window;
  }
  for (size_t i = begin; i < history.size(); ++i) {
    space.EncodeInto(history[i].config, encoded_.Row(next_));
    next_ = (next_ + 1) % window;
    rows_ = std::min(rows_ + 1, window);
  }
  synced_ = history.size();
  if (synced_ > 0) {
    last_synced_hash_ = history[synced_ - 1].config.Hash();
  }
}

void SelectTopCandidates(const std::vector<double>& scores,
                         const std::vector<Configuration>& pool,
                         const std::vector<TrialRecord>* history, size_t n,
                         std::vector<Configuration>* batch) {
  std::vector<size_t> order(scores.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) { return scores[a] > scores[b]; });
  std::unordered_set<uint64_t> evaluated;
  if (history != nullptr) {
    evaluated.reserve(history->size());
    for (const TrialRecord& trial : *history) {
      evaluated.insert(trial.config.Hash());
    }
  }
  std::unordered_set<uint64_t> taken;
  // Pass 1: best-scoring distinct candidates the session has not evaluated.
  // Pass 2: if the pool cannot fill the batch with unseen members, allow
  // already-evaluated ones (the session's dedup policy decides their fate).
  for (int allow_evaluated = 0; allow_evaluated <= 1 && batch->size() < n;
       ++allow_evaluated) {
    for (size_t i : order) {
      if (batch->size() >= n) {
        break;
      }
      uint64_t hash = pool[i].Hash();
      if (!allow_evaluated && evaluated.count(hash) != 0) {
        continue;
      }
      if (taken.insert(hash).second) {
        batch->push_back(pool[i]);
      }
    }
  }
}

}  // namespace wayfinder
