#include "src/core/multi_dtm.h"

#include <cassert>

namespace wayfinder {

void MultiDtm::AddSample(const std::vector<double>& x, bool crashed,
                         const std::vector<double>& objectives) {
  assert(crashed || objectives.size() == trunk_.head_count());
  trunk_.AddSample(x, crashed, crashed ? nullptr : objectives.data());
}

std::vector<MultiDtmPrediction> MultiDtm::Emit(size_t n) const {
  size_t k_count = trunk_.head_count();
  std::vector<MultiDtmPrediction> predictions(n);
  for (size_t i = 0; i < n; ++i) {
    predictions[i].crash_prob = trunk_.CrashProb(i);
    predictions[i].objectives.resize(k_count);
    predictions[i].sigmas.resize(k_count);
    for (size_t k = 0; k < k_count; ++k) {
      predictions[i].objectives[k] = trunk_.Objective(i, k);
      predictions[i].sigmas[k] = trunk_.Sigma(i, k);
    }
  }
  return predictions;
}

MultiDtmPrediction MultiDtm::Predict(const std::vector<double>& x) {
  trunk_.PredictRow(x);
  return Emit(1).front();
}

std::vector<MultiDtmPrediction> MultiDtm::PredictBatch(
    const std::vector<std::vector<double>>& xs) {
  return Emit(trunk_.PredictRows(xs));
}

std::vector<MultiDtmPrediction> MultiDtm::PredictBatch(const Matrix& xs) {
  return Emit(trunk_.PredictRows(xs));
}

}  // namespace wayfinder
