// The DeepTune Model (DTM) — Figure 4 of the paper.
//
// A multitask neural network F(x) -> (k̂, ŷ, σ̂) mapping an encoded
// configuration to its crash probability, expected (normalized) objective,
// and predicted uncertainty. Two branches share a trunk:
//
//   * prediction branch F_p: dense -> ReLU -> dropout -> dense -> ReLU with
//     two heads — crash logits (2-way softmax) and the objective ŷ;
//   * uncertainty branch F_u: a stack of Gaussian RBF layers, one parallel
//     to each trunk stage (input, hidden-1, hidden-2). Their activations are
//     concatenated and a linear head emits s = log σ². Because RBF neurons
//     respond by distance to learned centroids (prototypes of the data,
//     Eq. 1), inputs far from everything seen produce near-zero activations
//     and the head falls back to its bias — uncertainty degrades gracefully
//     on outliers, which conventional activations cannot do (§5).
//
// Trained end-to-end on L = L_CCE + L_Reg + L_Cham (§3.2): cross-entropy on
// crash labels, heteroscedastic regression (Kendall & Gal) coupling ŷ with
// the uncertainty branch's s, and a Chamfer regularizer distributing each
// RBF layer's centroids over its input distribution.
//
// Updates are incremental — a constant number of gradient steps per new
// observation — so per-iteration cost stays O(1) in model work and O(n)
// overall, unlike Gaussian-process or causal-graph refits (§2.3, Figure 7).
#ifndef WAYFINDER_SRC_CORE_DTM_H_
#define WAYFINDER_SRC_CORE_DTM_H_

#include <memory>
#include <string>
#include <vector>

#include "src/nn/kernels.h"
#include "src/nn/layers.h"
#include "src/nn/losses.h"
#include "src/nn/optimizer.h"
#include "src/util/rng.h"

namespace wayfinder {

struct DtmOptions {
  size_t hidden1 = 64;
  size_t hidden2 = 32;
  size_t rbf_centroids = 12;
  // gamma for an RBF layer = gamma_factor * sqrt(input width); the paper's
  // gamma = 0.1 assumes per-dimension-normalized scalar-ish latents, which
  // this generalizes to arbitrary widths.
  double gamma_factor = 0.7;
  double dropout = 0.10;
  double learning_rate = 2e-3;
  size_t batch_size = 32;
  size_t steps_per_update = 32;  // Constant per observation: O(n) total.
  double chamfer_weight = 0.05;
  uint64_t seed = 0xd7a1;
  // Parallelism of forward/backward row blocks, the training-loop minibatch
  // gather, and per-block Adam updates over the process-wide shared
  // ThreadPool: number of concurrent chunks, 0 (or 1) = fully serial.
  // Partitioning never changes per-element arithmetic, so any value gives
  // bit-identical results.
  size_t threads = 0;
  // SIMD kernel backend for this model's forward/backward/update math.
  // kAuto follows the process default (WF_KERNELS env, else CPUID). Backends
  // are bit-identical by construction, so this only changes speed.
  KernelBackend kernels = KernelBackend::kAuto;
  // Route inference through the scalar, allocation-per-op reference path
  // (textbook kernels, one fresh matrix per op — the seed implementation).
  // Baseline for bench_micro_matmul's --naive mode and equivalence tests.
  bool naive = false;
};

struct DtmPrediction {
  double crash_prob = 0.0;  // k̂
  double objective = 0.0;   // ŷ, in normalized objective units.
  double sigma = 1.0;       // σ̂ from the uncertainty branch.
};

class DeepTuneModel {
 public:
  DeepTuneModel(size_t input_dim, const DtmOptions& options = {});

  size_t input_dim() const { return input_dim_; }
  size_t sample_count() const { return xs_.size(); }

  // Adds one observation. `objective` is ignored for crashed trials.
  void AddSample(const std::vector<double>& x, bool crashed, double objective);

  // Runs `steps_per_update` minibatch gradient steps on the replay buffer.
  // Returns the last batch's total loss (0 when there is nothing to train).
  double Update();

  DtmPrediction Predict(const std::vector<double>& x);
  std::vector<DtmPrediction> PredictBatch(const std::vector<std::vector<double>>& xs);
  // Batched inference over a row-major (N x input_dim) candidate matrix —
  // one fused forward pass for the whole pool, no per-candidate staging.
  std::vector<DtmPrediction> PredictBatch(const Matrix& xs);

  // Objective normalization (z-score over successful observations).
  double NormalizeObjective(double objective) const;
  double DenormalizeObjective(double normalized) const;

  // Trainable blocks in a stable order (for Adam and serialization).
  std::vector<ParamBlock*> Params();

  // Transfer learning (§3.3): persist/restore the trained weights. Loading
  // requires an identical architecture (input dim and options).
  bool Save(const std::string& path) const;
  bool Load(const std::string& path);

  // Live state footprint (weights + optimizer moments + replay buffer).
  size_t MemoryBytes() const;

  const DtmOptions& options() const { return options_; }

  // Times any workspace buffer had to (re)allocate. Stable across repeated
  // same-shaped Forward calls — the zero-alloc-after-warmup guarantee that
  // tests assert on.
  size_t workspace_grow_count() const { return ws_.grow_count; }

  // The SIMD backend this model resolved at construction ("portable"/"avx2").
  const char* kernel_backend_name() const;

 private:
  // Scratch arena for one forward/backward round. Buffers are reshaped in
  // place every call and only ever grow, so a warm model's hot path does no
  // heap allocation.
  struct Workspace {
    Matrix x;                          // Staged input batch.
    Matrix h1, h2;                     // Trunk activations (in-place ReLU/dropout).
    Matrix crash_logits, yhat, s;      // Head outputs.
    Matrix phi0, phi1, phi2, phi;      // RBF activations and their concat.
    Matrix probs;                      // Softmax output for prediction.
    Matrix dlogits, dyhat, ds;         // Loss gradients.
    Matrix dphi, dphi0, dphi1, dphi2;  // Uncertainty-branch gradients.
    Matrix dh2, dh2_scratch, dh1;      // Trunk gradients.
    // Training-loop gather scratch: minibatch replay indices and targets.
    std::vector<size_t> batch_index;
    std::vector<int> crash_target;
    std::vector<double> y;
    std::vector<bool> mask;
    size_t grow_count = 0;

    void Count(size_t grew) { grow_count += grew; }
    // Resizes the gather scratch, counting vector buffer growth like Matrix
    // reshapes so the zero-alloc guarantee covers the whole training loop.
    void ReserveGather(size_t batch);
    size_t Bytes() const;
  };

  // Fast path: runs the network over `x` into the workspace. `x` must stay
  // alive/unmodified until the round's backward pass completes.
  void Forward(const Matrix& x, bool training);
  std::vector<DtmPrediction> PredictFromWorkspace(size_t n);
  std::vector<DtmPrediction> PredictBatchNaive(const Matrix& xs);
  Parallelism Par() const;
  void RefreshNormalizer();

  size_t input_dim_;
  DtmOptions options_;
  Rng rng_;

  DenseLayer dense1_;
  ReluLayer relu1_;
  DropoutLayer dropout_;
  DenseLayer dense2_;
  ReluLayer relu2_;
  DenseLayer crash_head_;
  DenseLayer perf_head_;
  RbfLayer rbf0_;
  RbfLayer rbf1_;
  RbfLayer rbf2_;
  DenseLayer unc_head_;
  std::unique_ptr<Adam> adam_;
  const KernelOps* kernels_ = nullptr;  // Resolved once from options().kernels.
  Workspace ws_;

  // Replay buffer.
  std::vector<std::vector<double>> xs_;
  std::vector<bool> crashed_;
  std::vector<double> objectives_;  // Raw; NaN for crashed trials.

  double objective_mean_ = 0.0;
  double objective_std_ = 1.0;
  bool normalizer_dirty_ = true;
};

}  // namespace wayfinder

#endif  // WAYFINDER_SRC_CORE_DTM_H_
