// The DeepTune Model (DTM) — Figure 4 of the paper.
//
// A multitask neural network F(x) -> (k̂, ŷ, σ̂) mapping an encoded
// configuration to its crash probability, expected (normalized) objective,
// and predicted uncertainty. Two branches share a trunk:
//
//   * prediction branch F_p: dense -> ReLU -> dropout -> dense -> ReLU with
//     two heads — crash logits (2-way softmax) and the objective ŷ;
//   * uncertainty branch F_u: a stack of Gaussian RBF layers, one parallel
//     to each trunk stage (input, hidden-1, hidden-2). Their activations are
//     concatenated and a linear head emits s = log σ². Because RBF neurons
//     respond by distance to learned centroids (prototypes of the data,
//     Eq. 1), inputs far from everything seen produce near-zero activations
//     and the head falls back to its bias — uncertainty degrades gracefully
//     on outliers, which conventional activations cannot do (§5).
//
// Trained end-to-end on L = L_CCE + L_Reg + L_Cham (§3.2): cross-entropy on
// crash labels, heteroscedastic regression (Kendall & Gal) coupling ŷ with
// the uncertainty branch's s, and a Chamfer regularizer distributing each
// RBF layer's centroids over its input distribution.
//
// This class is the K = 1 head over the shared `DtmTrunk`
// (src/core/dtm_trunk.h), which owns the network, the backward pass, the
// optimizer, the replay buffer, and every bit-determinism contract. The
// head only converts the trunk's row accessors into DtmPrediction structs.
#ifndef WAYFINDER_SRC_CORE_DTM_H_
#define WAYFINDER_SRC_CORE_DTM_H_

#include <string>
#include <vector>

#include "src/core/dtm_trunk.h"

namespace wayfinder {

struct DtmPrediction {
  double crash_prob = 0.0;  // k̂
  double objective = 0.0;   // ŷ, in normalized objective units.
  double sigma = 1.0;       // σ̂ from the uncertainty branch.
};

class DeepTuneModel {
 public:
  DeepTuneModel(size_t input_dim, const DtmOptions& options = {})
      : trunk_(input_dim, /*head_count=*/1, options) {}

  size_t input_dim() const { return trunk_.input_dim(); }
  size_t sample_count() const { return trunk_.sample_count(); }

  // Adds one observation. `objective` is ignored for crashed trials.
  void AddSample(const std::vector<double>& x, bool crashed, double objective) {
    trunk_.AddSample(x, crashed, &objective);
  }

  // Runs `steps_per_update` minibatch gradient steps on the replay buffer.
  // Returns the last batch's total loss (0 when there is nothing to train).
  double Update() { return trunk_.Update(); }

  DtmPrediction Predict(const std::vector<double>& x);
  std::vector<DtmPrediction> PredictBatch(const std::vector<std::vector<double>>& xs);
  // Batched inference over a row-major (N x input_dim) candidate matrix —
  // one fused forward pass for the whole pool, no per-candidate staging.
  std::vector<DtmPrediction> PredictBatch(const Matrix& xs);

  // Objective normalization (z-score over successful observations).
  double NormalizeObjective(double objective) const {
    return trunk_.NormalizeObjective(0, objective);
  }
  double DenormalizeObjective(double normalized) const {
    return trunk_.DenormalizeObjective(0, normalized);
  }

  // Trainable blocks in a stable order (for Adam and serialization).
  std::vector<ParamBlock*> Params() { return trunk_.Params(); }

  // Transfer learning (§3.3): persist/restore the trained weights. Loading
  // requires an identical architecture (input dim and options).
  bool Save(const std::string& path) const { return trunk_.Save(path); }
  bool Load(const std::string& path) { return trunk_.Load(path); }

  // Live state footprint (weights + optimizer moments + replay buffer).
  size_t MemoryBytes() const { return trunk_.MemoryBytes(); }

  const DtmOptions& options() const { return trunk_.options(); }

  // Times any workspace buffer had to (re)allocate. Stable across repeated
  // same-shaped Forward calls — the zero-alloc-after-warmup guarantee that
  // tests assert on.
  size_t workspace_grow_count() const { return trunk_.workspace_grow_count(); }

  // The SIMD backend this model resolved at construction.
  const char* kernel_backend_name() const { return trunk_.kernel_backend_name(); }

 private:
  std::vector<DtmPrediction> Emit(size_t n) const;

  DtmTrunk trunk_;
};

}  // namespace wayfinder

#endif  // WAYFINDER_SRC_CORE_DTM_H_
