#include "src/core/dtm.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/nn/serialize.h"
#include "src/util/stats.h"

namespace wayfinder {

DeepTuneModel::DeepTuneModel(size_t input_dim, const DtmOptions& options)
    : input_dim_(input_dim),
      options_(options),
      rng_(options.seed),
      dense1_(input_dim, options.hidden1, rng_),
      dropout_(options.dropout),
      dense2_(options.hidden1, options.hidden2, rng_),
      crash_head_(options.hidden2, 2, rng_),
      perf_head_(options.hidden2, 1, rng_),
      rbf0_(input_dim, options.rbf_centroids,
            options.gamma_factor * std::sqrt(static_cast<double>(input_dim)), rng_),
      rbf1_(options.hidden1, options.rbf_centroids,
            options.gamma_factor * std::sqrt(static_cast<double>(options.hidden1)), rng_),
      rbf2_(options.hidden2, options.rbf_centroids,
            options.gamma_factor * std::sqrt(static_cast<double>(options.hidden2)), rng_),
      unc_head_(3 * options.rbf_centroids, 1, rng_) {
  std::vector<ParamBlock*> params = Params();
  AdamOptions adam_options;
  adam_options.learning_rate = options.learning_rate;
  adam_options.weight_decay = 1e-5;
  adam_ = std::make_unique<Adam>(params, adam_options);
}

std::vector<ParamBlock*> DeepTuneModel::Params() {
  std::vector<ParamBlock*> params;
  for (ParamBlock* p : dense1_.Params()) {
    params.push_back(p);
  }
  for (ParamBlock* p : dense2_.Params()) {
    params.push_back(p);
  }
  for (ParamBlock* p : crash_head_.Params()) {
    params.push_back(p);
  }
  for (ParamBlock* p : perf_head_.Params()) {
    params.push_back(p);
  }
  for (ParamBlock* p : rbf0_.Params()) {
    params.push_back(p);
  }
  for (ParamBlock* p : rbf1_.Params()) {
    params.push_back(p);
  }
  for (ParamBlock* p : rbf2_.Params()) {
    params.push_back(p);
  }
  for (ParamBlock* p : unc_head_.Params()) {
    params.push_back(p);
  }
  return params;
}

void DeepTuneModel::AddSample(const std::vector<double>& x, bool crashed, double objective) {
  assert(x.size() == input_dim_);
  xs_.push_back(x);
  crashed_.push_back(crashed);
  objectives_.push_back(crashed ? std::nan("") : objective);
  normalizer_dirty_ = true;
}

void DeepTuneModel::RefreshNormalizer() {
  if (!normalizer_dirty_) {
    return;
  }
  RunningStats stats;
  for (size_t i = 0; i < objectives_.size(); ++i) {
    if (!crashed_[i]) {
      stats.Add(objectives_[i]);
    }
  }
  objective_mean_ = stats.Mean();
  objective_std_ = stats.StdDev() > 1e-9 ? stats.StdDev() : 1.0;
  normalizer_dirty_ = false;
}

double DeepTuneModel::NormalizeObjective(double objective) const {
  return (objective - objective_mean_) / objective_std_;
}

double DeepTuneModel::DenormalizeObjective(double normalized) const {
  return normalized * objective_std_ + objective_mean_;
}

DeepTuneModel::ForwardCache DeepTuneModel::Forward(const Matrix& x, bool training) {
  ForwardCache cache;
  cache.h1_pre = dense1_.Forward(x);
  cache.h1_act = relu1_.Forward(cache.h1_pre);
  cache.h1_drop = dropout_.Forward(cache.h1_act, rng_, training);
  Matrix h2_pre = dense2_.Forward(cache.h1_drop);
  cache.h2_act = relu2_.Forward(h2_pre);
  cache.crash_logits = crash_head_.Forward(cache.h2_act);
  cache.yhat = perf_head_.Forward(cache.h2_act);
  cache.phi0 = rbf0_.Forward(x);
  cache.phi1 = rbf1_.Forward(cache.h1_drop);
  cache.phi2 = rbf2_.Forward(cache.h2_act);
  Matrix phi = ConcatCols(ConcatCols(cache.phi0, cache.phi1), cache.phi2);
  cache.s = unc_head_.Forward(phi);
  return cache;
}

double DeepTuneModel::Update() {
  if (xs_.empty()) {
    return 0.0;
  }
  RefreshNormalizer();
  double last_loss = 0.0;
  size_t batch = std::min(options_.batch_size, xs_.size());
  for (size_t step = 0; step < options_.steps_per_update; ++step) {
    // Sample a minibatch (with replacement) from the replay buffer.
    Matrix x(batch, input_dim_);
    std::vector<int> crash_target(batch);
    std::vector<double> y(batch, 0.0);
    std::vector<bool> mask(batch, false);
    for (size_t b = 0; b < batch; ++b) {
      size_t i = static_cast<size_t>(
          rng_.UniformInt(0, static_cast<int64_t>(xs_.size()) - 1));
      for (size_t j = 0; j < input_dim_; ++j) {
        x.At(b, j) = xs_[i][j];
      }
      crash_target[b] = crashed_[i] ? 1 : 0;
      if (!crashed_[i]) {
        y[b] = NormalizeObjective(objectives_[i]);
        mask[b] = true;
      }
    }

    ForwardCache cache = Forward(x, /*training=*/true);

    // --- Losses ------------------------------------------------------------
    Matrix dlogits;
    double loss_cce = SoftmaxCrossEntropy(cache.crash_logits, crash_target, &dlogits);
    Matrix dyhat;
    Matrix ds;
    double loss_reg = HeteroscedasticLoss(cache.yhat, cache.s, y, mask, &dyhat, &ds);
    double loss_cham = rbf0_.AccumulateChamferGradient(options_.chamfer_weight) +
                       rbf1_.AccumulateChamferGradient(options_.chamfer_weight) +
                       rbf2_.AccumulateChamferGradient(options_.chamfer_weight);
    last_loss = loss_cce + loss_reg + options_.chamfer_weight * loss_cham;

    // --- Backward ------------------------------------------------------------
    Matrix dphi = unc_head_.Backward(ds);
    size_t k = options_.rbf_centroids;
    Matrix dphi0 = SliceCols(dphi, 0, k);
    Matrix dphi1 = SliceCols(dphi, k, 2 * k);
    Matrix dphi2 = SliceCols(dphi, 2 * k, 3 * k);

    Matrix dh2 = crash_head_.Backward(dlogits);
    {
      Matrix dh2_perf = perf_head_.Backward(dyhat);
      Matrix dh2_rbf = rbf2_.Backward(dphi2);
      for (size_t i = 0; i < dh2.size(); ++i) {
        dh2.data()[i] += dh2_perf.data()[i] + dh2_rbf.data()[i];
      }
    }
    Matrix dh2_pre = relu2_.Backward(dh2);
    Matrix dh1_drop = dense2_.Backward(dh2_pre);
    {
      Matrix dh1_rbf = rbf1_.Backward(dphi1);
      for (size_t i = 0; i < dh1_drop.size(); ++i) {
        dh1_drop.data()[i] += dh1_rbf.data()[i];
      }
    }
    Matrix dh1_act = dropout_.Backward(dh1_drop);
    Matrix dh1_pre = relu1_.Backward(dh1_act);
    dense1_.Backward(dh1_pre);
    rbf0_.Backward(dphi0);  // Input gradient discarded.

    adam_->Step();
  }
  return last_loss;
}

DtmPrediction DeepTuneModel::Predict(const std::vector<double>& x) {
  return PredictBatch({x}).front();
}

std::vector<DtmPrediction> DeepTuneModel::PredictBatch(
    const std::vector<std::vector<double>>& xs) {
  std::vector<DtmPrediction> predictions;
  if (xs.empty()) {
    return predictions;
  }
  Matrix x(xs.size(), input_dim_);
  for (size_t i = 0; i < xs.size(); ++i) {
    assert(xs[i].size() == input_dim_);
    for (size_t j = 0; j < input_dim_; ++j) {
      x.At(i, j) = xs[i][j];
    }
  }
  ForwardCache cache = Forward(x, /*training=*/false);
  Matrix probs = Softmax(cache.crash_logits);
  predictions.resize(xs.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    predictions[i].crash_prob = probs.At(i, 1);
    predictions[i].objective = cache.yhat.At(i, 0);
    double s = std::clamp(cache.s.At(i, 0), -10.0, 10.0);
    predictions[i].sigma = std::exp(0.5 * s);
  }
  return predictions;
}

bool DeepTuneModel::Save(const std::string& path) const {
  auto* self = const_cast<DeepTuneModel*>(this);
  return SaveParamsToFile(self->Params(), path);
}

bool DeepTuneModel::Load(const std::string& path) {
  return LoadParamsFromFile(Params(), path);
}

size_t DeepTuneModel::MemoryBytes() const {
  size_t bytes = 0;
  auto* self = const_cast<DeepTuneModel*>(this);
  for (ParamBlock* p : self->Params()) {
    // Value + gradient + two Adam moments.
    bytes += 4 * p->value.size() * sizeof(double);
  }
  for (const auto& x : xs_) {
    bytes += x.size() * sizeof(double);
  }
  bytes += crashed_.size() / 8 + objectives_.size() * sizeof(double);
  return bytes;
}

}  // namespace wayfinder
