#include "src/core/dtm.h"

namespace wayfinder {

std::vector<DtmPrediction> DeepTuneModel::Emit(size_t n) const {
  std::vector<DtmPrediction> predictions(n);
  for (size_t i = 0; i < n; ++i) {
    predictions[i].crash_prob = trunk_.CrashProb(i);
    predictions[i].objective = trunk_.Objective(i, 0);
    predictions[i].sigma = trunk_.Sigma(i, 0);
  }
  return predictions;
}

DtmPrediction DeepTuneModel::Predict(const std::vector<double>& x) {
  trunk_.PredictRow(x);
  return Emit(1).front();
}

std::vector<DtmPrediction> DeepTuneModel::PredictBatch(
    const std::vector<std::vector<double>>& xs) {
  return Emit(trunk_.PredictRows(xs));
}

std::vector<DtmPrediction> DeepTuneModel::PredictBatch(const Matrix& xs) {
  return Emit(trunk_.PredictRows(xs));
}

}  // namespace wayfinder
