#include "src/core/dtm.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/nn/serialize.h"
#include "src/util/stats.h"
#include "src/util/thread_pool.h"

namespace wayfinder {

DeepTuneModel::DeepTuneModel(size_t input_dim, const DtmOptions& options)
    : input_dim_(input_dim),
      options_(options),
      rng_(options.seed),
      dense1_(input_dim, options.hidden1, rng_),
      dropout_(options.dropout),
      dense2_(options.hidden1, options.hidden2, rng_),
      crash_head_(options.hidden2, 2, rng_),
      perf_head_(options.hidden2, 1, rng_),
      rbf0_(input_dim, options.rbf_centroids,
            options.gamma_factor * std::sqrt(static_cast<double>(input_dim)), rng_),
      rbf1_(options.hidden1, options.rbf_centroids,
            options.gamma_factor * std::sqrt(static_cast<double>(options.hidden1)), rng_),
      rbf2_(options.hidden2, options.rbf_centroids,
            options.gamma_factor * std::sqrt(static_cast<double>(options.hidden2)), rng_),
      unc_head_(3 * options.rbf_centroids, 1, rng_),
      kernels_(&KernelsFor(options.kernels)) {
  std::vector<ParamBlock*> params = Params();
  AdamOptions adam_options;
  adam_options.learning_rate = options.learning_rate;
  adam_options.weight_decay = 1e-5;
  adam_ = std::make_unique<Adam>(params, adam_options);
}

const char* DeepTuneModel::kernel_backend_name() const { return kernels_->name; }

std::vector<ParamBlock*> DeepTuneModel::Params() {
  std::vector<ParamBlock*> params;
  for (ParamBlock* p : dense1_.Params()) {
    params.push_back(p);
  }
  for (ParamBlock* p : dense2_.Params()) {
    params.push_back(p);
  }
  for (ParamBlock* p : crash_head_.Params()) {
    params.push_back(p);
  }
  for (ParamBlock* p : perf_head_.Params()) {
    params.push_back(p);
  }
  for (ParamBlock* p : rbf0_.Params()) {
    params.push_back(p);
  }
  for (ParamBlock* p : rbf1_.Params()) {
    params.push_back(p);
  }
  for (ParamBlock* p : rbf2_.Params()) {
    params.push_back(p);
  }
  for (ParamBlock* p : unc_head_.Params()) {
    params.push_back(p);
  }
  return params;
}

void DeepTuneModel::AddSample(const std::vector<double>& x, bool crashed, double objective) {
  assert(x.size() == input_dim_);
  xs_.push_back(x);
  crashed_.push_back(crashed);
  objectives_.push_back(crashed ? std::nan("") : objective);
  normalizer_dirty_ = true;
}

void DeepTuneModel::RefreshNormalizer() {
  if (!normalizer_dirty_) {
    return;
  }
  RunningStats stats;
  for (size_t i = 0; i < objectives_.size(); ++i) {
    if (!crashed_[i]) {
      stats.Add(objectives_[i]);
    }
  }
  objective_mean_ = stats.Mean();
  objective_std_ = stats.StdDev() > 1e-9 ? stats.StdDev() : 1.0;
  normalizer_dirty_ = false;
}

double DeepTuneModel::NormalizeObjective(double objective) const {
  return (objective - objective_mean_) / objective_std_;
}

double DeepTuneModel::DenormalizeObjective(double normalized) const {
  return normalized * objective_std_ + objective_mean_;
}

Parallelism DeepTuneModel::Par() const {
  if (options_.threads <= 1) {
    return Parallelism{nullptr, 1, kernels_};
  }
  return Parallelism{&ThreadPool::Shared(), options_.threads, kernels_};
}

void DeepTuneModel::Forward(const Matrix& x, bool training) {
  Parallelism par = Par();
  ws_.Count(dense1_.ForwardInto(x, ws_.h1, par));  // Fused x W + b.
  relu1_.ForwardInPlace(ws_.h1, par);
  dropout_.ForwardInPlace(ws_.h1, rng_, training);
  ws_.Count(dense2_.ForwardInto(ws_.h1, ws_.h2, par));
  relu2_.ForwardInPlace(ws_.h2, par);
  ws_.Count(crash_head_.ForwardInto(ws_.h2, ws_.crash_logits, par));
  ws_.Count(perf_head_.ForwardInto(ws_.h2, ws_.yhat, par));
  ws_.Count(rbf0_.ForwardInto(x, ws_.phi0, par));
  ws_.Count(rbf1_.ForwardInto(ws_.h1, ws_.phi1, par));
  ws_.Count(rbf2_.ForwardInto(ws_.h2, ws_.phi2, par));
  ws_.Count(ConcatCols3Into(ws_.phi0, ws_.phi1, ws_.phi2, ws_.phi));
  ws_.Count(unc_head_.ForwardInto(ws_.phi, ws_.s, par));
}

double DeepTuneModel::Update() {
  if (xs_.empty()) {
    return 0.0;
  }
  RefreshNormalizer();
  Parallelism par = Par();
  double last_loss = 0.0;
  size_t batch = std::min(options_.batch_size, xs_.size());
  ws_.Count(ws_.x.Reshape(batch, input_dim_) ? 1 : 0);
  ws_.ReserveGather(batch);
  for (size_t step = 0; step < options_.steps_per_update; ++step) {
    // Sample a minibatch (with replacement) from the replay buffer. Indices
    // and targets are drawn serially (the RNG stream and the vector<bool>
    // mask are order-sensitive); only the wide row copies go parallel.
    for (size_t b = 0; b < batch; ++b) {
      size_t i = static_cast<size_t>(
          rng_.UniformInt(0, static_cast<int64_t>(xs_.size()) - 1));
      ws_.batch_index[b] = i;
      ws_.crash_target[b] = crashed_[i] ? 1 : 0;
      ws_.y[b] = 0.0;
      ws_.mask[b] = false;
      if (!crashed_[i]) {
        ws_.y[b] = NormalizeObjective(objectives_[i]);
        ws_.mask[b] = true;
      }
    }
    ParallelFor(par.pool, batch, /*grain=*/8, par.max_ways, [&](size_t b0, size_t b1) {
      for (size_t b = b0; b < b1; ++b) {
        const std::vector<double>& row = xs_[ws_.batch_index[b]];
        std::copy(row.begin(), row.end(), ws_.x.Row(b));
      }
    });

    Forward(ws_.x, /*training=*/true);

    // --- Losses ------------------------------------------------------------
    double loss_cce =
        SoftmaxCrossEntropy(ws_.crash_logits, ws_.crash_target, &ws_.dlogits, ws_.probs);
    double loss_reg =
        HeteroscedasticLoss(ws_.yhat, ws_.s, ws_.y, ws_.mask, &ws_.dyhat, &ws_.ds);
    double loss_cham = rbf0_.AccumulateChamferGradient(options_.chamfer_weight, par) +
                       rbf1_.AccumulateChamferGradient(options_.chamfer_weight, par) +
                       rbf2_.AccumulateChamferGradient(options_.chamfer_weight, par);
    last_loss = loss_cce + loss_reg + options_.chamfer_weight * loss_cham;

    // --- Backward -----------------------------------------------------------
    ws_.Count(unc_head_.BackwardInto(ws_.ds, &ws_.dphi, par));
    size_t k = options_.rbf_centroids;
    ws_.Count(SliceColsInto(ws_.dphi, 0, k, ws_.dphi0));
    ws_.Count(SliceColsInto(ws_.dphi, k, 2 * k, ws_.dphi1));
    ws_.Count(SliceColsInto(ws_.dphi, 2 * k, 3 * k, ws_.dphi2));

    ws_.Count(crash_head_.BackwardInto(ws_.dlogits, &ws_.dh2, par));
    ws_.Count(perf_head_.BackwardInto(ws_.dyhat, &ws_.dh2_scratch, par));
    for (size_t i = 0; i < ws_.dh2.size(); ++i) {
      ws_.dh2.data()[i] += ws_.dh2_scratch.data()[i];
    }
    rbf2_.BackwardInto(ws_.dphi2, &ws_.dh2, /*accumulate=*/true, par);
    relu2_.BackwardInPlace(ws_.dh2);
    ws_.Count(dense2_.BackwardInto(ws_.dh2, &ws_.dh1, par));
    rbf1_.BackwardInto(ws_.dphi1, &ws_.dh1, /*accumulate=*/true, par);
    dropout_.BackwardInPlace(ws_.dh1);
    relu1_.BackwardInPlace(ws_.dh1);
    dense1_.BackwardInto(ws_.dh1, /*dx=*/nullptr, par);
    // Input gradient discarded.
    rbf0_.BackwardInto(ws_.dphi0, /*dz=*/nullptr, /*accumulate=*/false, par);

    adam_->Step(par);
  }
  return last_loss;
}

DtmPrediction DeepTuneModel::Predict(const std::vector<double>& x) {
  assert(x.size() == input_dim_);
  if (options_.naive) {
    Matrix staged = Matrix::FromRow(x);
    return PredictBatchNaive(staged).front();
  }
  // Route straight through the batched forward: stage the single row in the
  // workspace, no per-call vector-of-vectors.
  ws_.Count(ws_.x.Reshape(1, input_dim_) ? 1 : 0);
  std::copy(x.begin(), x.end(), ws_.x.Row(0));
  Forward(ws_.x, /*training=*/false);
  return PredictFromWorkspace(1).front();
}

std::vector<DtmPrediction> DeepTuneModel::PredictBatch(
    const std::vector<std::vector<double>>& xs) {
  if (xs.empty()) {
    return {};
  }
  // Stage through the workspace so repeat same-shaped calls don't allocate.
  ws_.Count(ws_.x.Reshape(xs.size(), input_dim_) ? 1 : 0);
  for (size_t i = 0; i < xs.size(); ++i) {
    assert(xs[i].size() == input_dim_);
    std::copy(xs[i].begin(), xs[i].end(), ws_.x.Row(i));
  }
  if (options_.naive) {
    return PredictBatchNaive(ws_.x);
  }
  Forward(ws_.x, /*training=*/false);
  return PredictFromWorkspace(ws_.x.rows());
}

std::vector<DtmPrediction> DeepTuneModel::PredictBatch(const Matrix& xs) {
  if (xs.rows() == 0) {
    return {};
  }
  assert(xs.cols() == input_dim_);
  if (options_.naive) {
    return PredictBatchNaive(xs);
  }
  Forward(xs, /*training=*/false);
  return PredictFromWorkspace(xs.rows());
}

std::vector<DtmPrediction> DeepTuneModel::PredictFromWorkspace(size_t n) {
  ws_.Count(SoftmaxInto(ws_.crash_logits, ws_.probs));
  std::vector<DtmPrediction> predictions(n);
  for (size_t i = 0; i < n; ++i) {
    predictions[i].crash_prob = ws_.probs.At(i, 1);
    predictions[i].objective = ws_.yhat.At(i, 0);
    double s = std::clamp(ws_.s.At(i, 0), -10.0, 10.0);
    predictions[i].sigma = std::exp(0.5 * s);
  }
  return predictions;
}

// The seed implementation, verbatim in structure: textbook kernels and a
// fresh matrix per op. Kept as the correctness and performance baseline for
// equivalence tests and bench_micro_matmul --naive.
std::vector<DtmPrediction> DeepTuneModel::PredictBatchNaive(const Matrix& xs) {
  auto dense_naive = [](const Matrix& in, DenseLayer& layer) {
    Matrix out = NaiveMatMul(in, layer.weight().value);
    AddRowInPlace(out, layer.bias().value);
    return out;
  };
  auto relu_naive = [](const Matrix& in) {
    Matrix out = in;
    for (double& v : out.data()) {
      v = std::max(0.0, v);
    }
    return out;
  };
  auto rbf_naive = [](const Matrix& in, RbfLayer& layer) {
    const Matrix& c = layer.centroid_values();
    Matrix phi(in.rows(), c.rows());
    double inv = 1.0 / (2.0 * layer.gamma() * layer.gamma());
    for (size_t n = 0; n < in.rows(); ++n) {
      for (size_t ci = 0; ci < c.rows(); ++ci) {
        phi.At(n, ci) = std::exp(-RowSqDist(in, n, c, ci) * inv);
      }
    }
    return phi;
  };

  Matrix h1 = relu_naive(dense_naive(xs, dense1_));  // Dropout inactive at inference.
  Matrix h2 = relu_naive(dense_naive(h1, dense2_));
  Matrix crash_logits = dense_naive(h2, crash_head_);
  Matrix yhat = dense_naive(h2, perf_head_);
  Matrix phi = ConcatCols(ConcatCols(rbf_naive(xs, rbf0_), rbf_naive(h1, rbf1_)),
                          rbf_naive(h2, rbf2_));
  Matrix s = dense_naive(phi, unc_head_);
  Matrix probs = Softmax(crash_logits);

  std::vector<DtmPrediction> predictions(xs.rows());
  for (size_t i = 0; i < xs.rows(); ++i) {
    predictions[i].crash_prob = probs.At(i, 1);
    predictions[i].objective = yhat.At(i, 0);
    double si = std::clamp(s.At(i, 0), -10.0, 10.0);
    predictions[i].sigma = std::exp(0.5 * si);
  }
  return predictions;
}

bool DeepTuneModel::Save(const std::string& path) const {
  auto* self = const_cast<DeepTuneModel*>(this);
  return SaveParamsToFile(self->Params(), path);
}

bool DeepTuneModel::Load(const std::string& path) {
  return LoadParamsFromFile(Params(), path);
}

void DeepTuneModel::Workspace::ReserveGather(size_t batch) {
  size_t caps = batch_index.capacity() + crash_target.capacity() + y.capacity() +
                mask.capacity();
  batch_index.resize(batch);
  crash_target.resize(batch);
  y.resize(batch);
  mask.resize(batch);
  size_t caps_after = batch_index.capacity() + crash_target.capacity() + y.capacity() +
                      mask.capacity();
  if (caps_after != caps) {
    ++grow_count;
  }
}

size_t DeepTuneModel::Workspace::Bytes() const {
  const Matrix* buffers[] = {&x,     &h1,    &h2,    &crash_logits, &yhat,  &s,
                             &phi0,  &phi1,  &phi2,  &phi,          &probs, &dlogits,
                             &dyhat, &ds,    &dphi,  &dphi0,        &dphi1, &dphi2,
                             &dh2,   &dh2_scratch,   &dh1};
  size_t bytes = 0;
  for (const Matrix* m : buffers) {
    bytes += m->size() * sizeof(double);
  }
  bytes += batch_index.size() * sizeof(size_t) + crash_target.size() * sizeof(int) +
           y.size() * sizeof(double) + mask.size() / 8;
  return bytes;
}

size_t DeepTuneModel::MemoryBytes() const {
  size_t bytes = 0;
  auto* self = const_cast<DeepTuneModel*>(this);
  for (ParamBlock* p : self->Params()) {
    // Value + gradient + two Adam moments.
    bytes += 4 * p->value.size() * sizeof(double);
  }
  for (const auto& x : xs_) {
    bytes += x.size() * sizeof(double);
  }
  bytes += crashed_.size() / 8 + objectives_.size() * sizeof(double);
  bytes += ws_.Bytes();  // The scratch arena is live model state too.
  return bytes;
}

}  // namespace wayfinder
