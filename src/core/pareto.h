// Pareto-front extraction for multi-metric histories (§3.2 extension).
//
// A weighted average collapses metrics into one number before the search; a
// Pareto front answers the complementary question after it: which evaluated
// configurations are not dominated on any weighting? Harnesses use this to
// report the achievable trade-off curve (throughput vs memory in Figure 11
// / Table 4 terms) rather than a single point.
#ifndef WAYFINDER_SRC_CORE_PARETO_H_
#define WAYFINDER_SRC_CORE_PARETO_H_

#include <vector>

#include "src/core/multi_metric.h"
#include "src/platform/trial.h"

namespace wayfinder {

// Indices of the non-dominated rows of `points`, where every coordinate is
// maximized. Row a dominates row b when a >= b everywhere and a > b
// somewhere. Duplicate rows are all kept (none dominates the other).
// O(n^2); histories are hundreds of points.
std::vector<size_t> ParetoFrontIndices(const std::vector<std::vector<double>>& points);

// Indices into `history` of the successful trials on the Pareto front under
// `metrics` (polarity handled: lower-is-better metrics are negated).
// Crashed trials never appear.
std::vector<size_t> ParetoFront(const std::vector<TrialRecord>& history,
                                const std::vector<MetricSpec>& metrics);

}  // namespace wayfinder

#endif  // WAYFINDER_SRC_CORE_PARETO_H_
