#include "src/core/scoring.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace wayfinder {

namespace {

double DissimilarityFromNearest(double nearest, size_t dim) {
  // Per-dimension normalization keeps ds in a useful range regardless of
  // the space's width.
  double normalized = nearest / static_cast<double>(std::max<size_t>(1, dim)) * 16.0;
  return 1.0 - 1.0 / (1.0 + normalized);
}

}  // namespace

double Dissimilarity(const std::vector<double>& x,
                     const std::vector<std::vector<double>>& known) {
  if (known.empty()) {
    return 1.0;
  }
  double nearest = std::numeric_limits<double>::max();
  for (const auto& sample : known) {
    double sq = 0.0;
    size_t n = std::min(sample.size(), x.size());
    for (size_t j = 0; j < n; ++j) {
      double d = x[j] - sample[j];
      sq += d * d;
    }
    nearest = std::min(nearest, sq);
  }
  return DissimilarityFromNearest(nearest, x.size());
}

double Dissimilarity(const double* x, size_t dim, const Matrix& known, size_t known_rows) {
  if (known_rows == 0) {
    return 1.0;
  }
  double nearest = std::numeric_limits<double>::max();
  for (size_t r = 0; r < known_rows; ++r) {
    nearest = std::min(nearest, SqDist(x, known.Row(r), dim));
  }
  return DissimilarityFromNearest(nearest, dim);
}

std::vector<double> NormalizeSigmas(const std::vector<DtmPrediction>& predictions) {
  std::vector<double> sigmas(predictions.size(), 0.0);
  double max_sigma = 1e-12;
  for (size_t i = 0; i < predictions.size(); ++i) {
    sigmas[i] = predictions[i].sigma;
    max_sigma = std::max(max_sigma, sigmas[i]);
  }
  for (double& s : sigmas) {
    s /= max_sigma;
  }
  return sigmas;
}

double RankScore(const DtmPrediction& prediction, double dissimilarity, double sigma_norm,
                 const ScoreOptions& options) {
  // Eq. 3: sf = alpha * ds + (1 - alpha) * F_u.
  double sf = options.alpha * dissimilarity + (1.0 - options.alpha) * sigma_norm;
  double score = options.predict_weight * prediction.objective + sf;
  if (prediction.crash_prob > options.crash_threshold) {
    // Predicted-to-crash candidates only survive if nothing better exists.
    score -= options.crash_penalty * (prediction.crash_prob - options.crash_threshold);
  }
  return score;
}

}  // namespace wayfinder
