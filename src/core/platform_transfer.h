// Cross-platform performance estimation (§3.5 future work, implemented).
//
// "Wayfinder could be extended to predict performance for hardware/
// workloads that are different from those evaluated, using [...]
// cross-platform performance estimation methods". The paper's citation for
// the cross-platform case (Valov et al., ICPE'17) found that performance
// models transfer across hardware through a simple *linear* map: measure a
// small sample of configurations on both platforms, fit
// metric_B ≈ slope * metric_A + intercept by least squares, and rescale
// the rich platform-A history into platform-B units. This module is that
// method: it turns an expensive full search on the deployment platform
// into a handful of paired calibration runs.
#ifndef WAYFINDER_SRC_CORE_PLATFORM_TRANSFER_H_
#define WAYFINDER_SRC_CORE_PLATFORM_TRANSFER_H_

#include <cstddef>
#include <vector>

#include "src/configspace/config_space.h"
#include "src/platform/trial.h"
#include "src/simos/testbench.h"
#include "src/util/rng.h"

namespace wayfinder {

// A fitted linear map from source-platform metric values to target-platform
// metric values.
struct LinearTransfer {
  double slope = 1.0;
  double intercept = 0.0;
  // Pearson correlation of the paired calibration sample; low values mean
  // the platforms rank configurations differently and the transfer is
  // unreliable (the caller should fall back to measuring on the target).
  double correlation = 0.0;
  size_t pairs = 0;

  double Predict(double source_metric) const {
    return slope * source_metric + intercept;
  }
  // Rule of thumb from the transfer literature: a linear map is usable when
  // the platforms agree on configuration ordering.
  bool Reliable() const { return pairs >= 8 && correlation >= 0.7; }
};

// Fits the map by ordinary least squares over paired measurements
// (source[i], target[i]) of the *same* configurations. Degenerate inputs
// (fewer than 2 pairs, zero variance) return the identity map with
// correlation 0.
LinearTransfer FitLinearTransfer(const std::vector<double>& source,
                                 const std::vector<double>& target);

// End-to-end calibration: evaluates `pairs` random configurations on both
// testbenches (skipping configurations that crash on either) and fits the
// transfer. Deterministic in `seed`. Both benches must expose the same
// configuration space.
LinearTransfer CalibrateTransfer(Testbench& source, Testbench& target, size_t pairs,
                                 uint64_t seed);

// Maps a source-platform history into target-platform units: objectives and
// metrics are transformed, crashed trials pass through unchanged. The
// result can seed a searcher (SearchSession::Resume or Observe replay) so
// a target-platform search starts from transferred knowledge instead of
// from scratch.
std::vector<TrialRecord> TransferHistory(const std::vector<TrialRecord>& source_history,
                                         const LinearTransfer& transfer);

}  // namespace wayfinder

#endif  // WAYFINDER_SRC_CORE_PLATFORM_TRANSFER_H_
