// Model zoo: a directory of trained DeepTune models with application
// fingerprints, and similarity-driven donor selection for transfer learning.
//
// §3.3 establishes when transfer helps: "when applications share
// characteristics [...] it is probable that a model pre-trained on one
// application will be useful for the other", quantified by the Figure 5
// cross-similarity matrix of random-forest feature-importance vectors. The
// zoo operationalizes that: publishing a model stores its weights together
// with the application's importance fingerprint; before specializing a new
// application, RankDonors orders the published models by fingerprint
// cosine similarity so the caller warm-starts from the closest relative
// (Redis -> Nginx: yes; NPB -> Nginx: no).
#ifndef WAYFINDER_SRC_CORE_MODEL_ZOO_H_
#define WAYFINDER_SRC_CORE_MODEL_ZOO_H_

#include <string>
#include <vector>

#include "src/core/deeptune.h"
#include "src/simos/testbench.h"

namespace wayfinder {

// The Figure 5 fingerprint: evaluate `samples` random (runtime-favored)
// configurations on `bench`, fit a regression forest on the successes, and
// return its normalized feature-importance vector. Deterministic in `seed`.
std::vector<double> ComputeImportanceFingerprint(Testbench& bench, size_t samples,
                                                 uint64_t seed);

struct ZooEntry {
  std::string name;       // Entry name (usually the application).
  size_t input_dim = 0;   // Feature dimension the model was trained on.
  std::vector<double> fingerprint;
};

struct DonorMatch {
  std::string name;
  double similarity = 0.0;
};

class ModelZoo {
 public:
  // `directory` is created if absent.
  explicit ModelZoo(const std::string& directory);

  // Saves the searcher's model weights plus the fingerprint under `name`.
  // Overwrites an existing entry of the same name.
  bool Publish(const std::string& name, const DeepTuneSearcher& searcher,
               const std::vector<double>& fingerprint);

  // All entries currently in the zoo (sorted by name).
  std::vector<ZooEntry> List() const;

  // Entries ranked by descending fingerprint similarity to `fingerprint`;
  // entries with a different input dimension are excluded.
  std::vector<DonorMatch> RankDonors(const std::vector<double>& fingerprint) const;

  // Loads the named entry's weights into `searcher` (marks it transferred).
  bool Adopt(const std::string& name, DeepTuneSearcher* searcher) const;

  // Removes an entry; false when absent.
  bool Remove(const std::string& name);

  const std::string& directory() const { return directory_; }

 private:
  std::string ModelPath(const std::string& name) const;
  std::string FingerprintPath(const std::string& name) const;

  std::string directory_;
};

}  // namespace wayfinder

#endif  // WAYFINDER_SRC_CORE_MODEL_ZOO_H_
