#include "src/core/deeptune.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace wayfinder {

DeepTuneSearcher::DeepTuneSearcher(const ConfigSpace* space, const DeepTuneOptions& options)
    : space_(space),
      options_(options),
      model_(space->FeatureDimension(), options.model),
      scoring_(options.scoring) {}

bool DeepTuneSearcher::LoadModel(const std::string& path) {
  transferred_ = model_.Load(path);
  return transferred_;
}

Configuration DeepTuneSearcher::Propose(SearchContext& context) {
  // Cold start: sample randomly until there is something to learn from —
  // unless a transferred model already knows the space (§3.3), in which
  // case it takes over immediately.
  size_t warmup = transferred_ ? std::min<size_t>(2, options_.warmup) : options_.warmup;
  if (observed_ < warmup) {
    return space_->RandomConfiguration(*context.rng, context.sample_options);
  }

  // --- 1. Candidate pool ----------------------------------------------------
  // Diversity by construction: (a) coordinate line-search candidates — the
  // best configurations with one parameter swept across a small value grid,
  // which the model then ranks (model-guided coordinate descent); (b) small
  // multi-parameter mutations of the elites; (c) fresh random samples.
  std::vector<Configuration> pool;
  pool.reserve(options_.pool_size);
  size_t exploit = elites_.empty()
                       ? 0
                       : static_cast<size_t>(static_cast<double>(options_.pool_size) *
                                             options_.exploit_fraction);
  constexpr size_t kGridPoints = 5;
  // Phase-biased parameter lottery for the line search.
  std::vector<double> param_weights(space_->Size(), 0.0);
  for (size_t i = 0; i < space_->Size(); ++i) {
    if (!space_->IsFrozen(i)) {
      param_weights[i] = context.sample_options.ProbFor(space_->Param(i).phase);
    }
  }
  double weight_total = 0.0;
  for (double w : param_weights) {
    weight_total += w;
  }
  size_t line_candidates = exploit / 2;
  for (size_t i = 0; i < line_candidates && weight_total > 0.0; i += kGridPoints) {
    const Configuration& base = elites_[(i / kGridPoints) % elites_.size()];
    size_t param = context.rng->WeightedIndex(param_weights);
    for (size_t g = 0; g < kGridPoints && pool.size() < options_.pool_size; ++g) {
      Configuration candidate = base;
      double code = static_cast<double>(g) / static_cast<double>(kGridPoints - 1);
      candidate.SetRaw(param, space_->DecodeParam(param, code));
      space_->ApplyConstraints(&candidate);
      pool.push_back(std::move(candidate));
    }
  }
  while (pool.size() < exploit) {
    const Configuration& base = elites_[pool.size() % elites_.size()];
    size_t mutations = 1 + static_cast<size_t>(context.rng->UniformInt(
                               0, static_cast<int64_t>(options_.max_mutations) - 1));
    pool.push_back(space_->Neighbor(base, *context.rng, mutations, context.sample_options));
  }
  while (pool.size() < options_.pool_size) {
    pool.push_back(space_->RandomConfiguration(*context.rng, context.sample_options));
  }

  // --- 2. Model predictions ---------------------------------------------------
  // The whole candidate pool is encoded into one row-major batch matrix and
  // ranked with a single DTM forward pass.
  size_t dim = space_->FeatureDimension();
  pool_encoded_.Reshape(pool.size(), dim);
  for (size_t i = 0; i < pool.size(); ++i) {
    space_->EncodeInto(pool[i], pool_encoded_.Row(i));
  }
  std::vector<DtmPrediction> predictions = model_.PredictBatch(pool_encoded_);
  std::vector<double> sigma_norm = NormalizeSigmas(predictions);

  // --- 3. Scoring (Eq. 2 + Eq. 3 merged with the prediction) ------------------
  // ds() against the most recent evaluations; older points matter less and
  // the window keeps proposal cost O(1) per iteration. The encoded window
  // lives in a ring cache that only ever encodes each trial once.
  if (context.history != nullptr) {
    SyncHistoryCache(*context.history);
  }
  size_t best = 0;
  double best_score = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < pool.size(); ++i) {
    double ds = Dissimilarity(pool_encoded_.Row(i), dim, history_encoded_, history_rows_);
    double score = RankScore(predictions[i], ds, sigma_norm[i], scoring_);
    if (score > best_score) {
      best_score = score;
      best = i;
    }
  }
  return pool[best];
}

void DeepTuneSearcher::SyncHistoryCache(const std::vector<TrialRecord>& history) {
  size_t dim = space_->FeatureDimension();
  // Detect a replaced history (searcher reused across sessions, resume into
  // a different prior): the vector shrank, or the last trial we synced is no
  // longer the same configuration at that position.
  bool replaced = history.size() < history_synced_;
  if (!replaced && history_synced_ > 0) {
    replaced = history[history_synced_ - 1].config.Hash() != last_synced_hash_;
  }
  if (replaced) {
    history_rows_ = 0;
    history_next_ = 0;
    history_synced_ = 0;
  }
  if (history_encoded_.rows() != kHistoryWindow || history_encoded_.cols() != dim) {
    history_encoded_.Reshape(kHistoryWindow, dim);
  }
  // Only the window's worth of tail can ever be live in the ring.
  size_t begin = history_synced_;
  if (history.size() - begin > kHistoryWindow) {
    begin = history.size() - kHistoryWindow;
  }
  for (size_t i = begin; i < history.size(); ++i) {
    space_->EncodeInto(history[i].config, history_encoded_.Row(history_next_));
    history_next_ = (history_next_ + 1) % kHistoryWindow;
    history_rows_ = std::min(history_rows_ + 1, kHistoryWindow);
  }
  history_synced_ = history.size();
  if (history_synced_ > 0) {
    last_synced_hash_ = history[history_synced_ - 1].config.Hash();
  }
}

void DeepTuneSearcher::Observe(const TrialRecord& trial, SearchContext& context) {
  (void)context;
  model_.AddSample(space_->EncodeMemoized(trial.config), trial.crashed(),
                   trial.HasObjective() ? trial.objective : 0.0);
  ++observed_;

  if (trial.HasObjective()) {
    // Maintain a small elite set for pool exploitation.
    constexpr size_t kEliteCount = 4;
    if (elites_.size() < kEliteCount) {
      elites_.push_back(trial.config);
      elite_objectives_.push_back(trial.objective);
    } else {
      size_t worst = 0;
      for (size_t i = 1; i < elite_objectives_.size(); ++i) {
        if (elite_objectives_[i] < elite_objectives_[worst]) {
          worst = i;
        }
      }
      if (trial.objective > elite_objectives_[worst]) {
        elites_[worst] = trial.config;
        elite_objectives_[worst] = trial.objective;
      }
    }
  }
  if (observed_ % options_.update_every == 0) {
    model_.Update();
  }
}

size_t DeepTuneSearcher::MemoryBytes() const {
  size_t bytes = model_.MemoryBytes();
  for (const Configuration& elite : elites_) {
    bytes += elite.Size() * sizeof(int64_t);
  }
  // Proposal-path scratch and the encoded-history ring.
  bytes += (pool_encoded_.size() + history_encoded_.size()) * sizeof(double);
  return bytes;
}

DtmPrediction DeepTuneSearcher::PredictConfig(const Configuration& config) {
  return model_.Predict(space_->EncodeMemoized(config));
}

std::vector<double> DeepTuneSearcher::ParameterImpacts(SearchContext& context) {
  (void)context;
  Configuration base = space_->DefaultConfiguration();
  if (!elites_.empty()) {
    size_t best = 0;
    for (size_t i = 1; i < elite_objectives_.size(); ++i) {
      if (elite_objectives_[i] > elite_objectives_[best]) {
        best = i;
      }
    }
    base = elites_[best];
  }
  std::vector<double> impacts(space_->Size(), 0.0);
  std::vector<double> features = space_->Encode(base);
  for (size_t i = 0; i < space_->Size(); ++i) {
    double lo = std::numeric_limits<double>::max();
    double hi = -std::numeric_limits<double>::max();
    std::vector<double> probe = features;
    for (int g = 0; g <= 4; ++g) {
      probe[i] = static_cast<double>(g) / 4.0;
      double yhat = model_.Predict(probe).objective;
      lo = std::min(lo, yhat);
      hi = std::max(hi, yhat);
    }
    impacts[i] = hi - lo;
  }
  return impacts;
}

}  // namespace wayfinder
