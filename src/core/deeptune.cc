#include "src/core/deeptune.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "src/platform/searcher_registry.h"

namespace wayfinder {

DeepTuneSearcher::DeepTuneSearcher(const ConfigSpace* space, const DeepTuneOptions& options)
    : space_(space),
      options_(options),
      model_(space->FeatureDimension(), options.model),
      scoring_(options.scoring),
      proposal_(options.model.seed) {}

bool DeepTuneSearcher::LoadModel(const std::string& path) {
  transferred_ = model_.Load(path);
  return transferred_;
}

std::vector<double> DeepTuneSearcher::ScorePool(SearchContext& context) {
  // --- 1. Candidate pool ----------------------------------------------------
  // Diversity by construction: (a) coordinate line-search candidates — the
  // best configurations with one parameter swept across a small value grid,
  // which the model then ranks (model-guided coordinate descent); (b) small
  // multi-parameter mutations of the elites; (c) fresh random samples.
  //
  // Assembly is sharded over the thread pool by the shared proposal pipeline
  // (src/core/proposal.h): candidates mutate and encode in parallel on
  // counter-derived RNG streams, so the pool — and the whole trajectory — is
  // bit-identical at any thread count. The session RNG contributes exactly
  // one serial draw of per-iteration entropy, independent of partitioning.
  ProposalPoolSpec spec;
  spec.pool_size = options_.pool_size;
  spec.exploit_fraction = options_.exploit_fraction;
  spec.max_mutations = options_.max_mutations;
  spec.line_search = true;
  spec.threads = options_.model.threads;
  AssembleProposalPool(*space_, elites_, context.sample_options, spec,
                       proposal_.NextPoolSeed(*context.rng), proposal_.pool,
                       proposal_.encoded);

  // --- 2. Model predictions ---------------------------------------------------
  // The assembled pool is already one row-major batch matrix; rank it with a
  // single DTM forward pass.
  size_t dim = space_->FeatureDimension();
  std::vector<DtmPrediction> predictions = model_.PredictBatch(proposal_.encoded);
  std::vector<double> sigma_norm = NormalizeSigmas(predictions);

  // --- 3. Scoring (Eq. 2 + Eq. 3 merged with the prediction) ------------------
  // ds() against the most recent evaluations; older points matter less and
  // the window keeps proposal cost O(1) per iteration. The encoded window
  // lives in a ring cache that only ever encodes each trial once.
  if (context.history != nullptr) {
    proposal_.history.Sync(*space_, *context.history, kHistoryWindow);
  }
  std::vector<double> scores(proposal_.pool.size());
  for (size_t i = 0; i < proposal_.pool.size(); ++i) {
    double ds = Dissimilarity(proposal_.encoded.Row(i), dim, proposal_.history.rows(),
                              proposal_.history.row_count());
    scores[i] = RankScore(predictions[i], ds, sigma_norm[i], scoring_);
  }
  return scores;
}

Configuration DeepTuneSearcher::Propose(SearchContext& context) {
  // Cold start: sample randomly until there is something to learn from —
  // unless a transferred model already knows the space (§3.3), in which
  // case it takes over immediately.
  size_t warmup = transferred_ ? std::min<size_t>(2, options_.warmup) : options_.warmup;
  if (observed_ < warmup) {
    return space_->RandomConfiguration(*context.rng, context.sample_options);
  }
  std::vector<double> scores = ScorePool(context);
  size_t best = 0;
  for (size_t i = 1; i < scores.size(); ++i) {
    if (scores[i] > scores[best]) {
      best = i;
    }
  }
  return proposal_.pool[best];
}

void DeepTuneSearcher::ProposeBatch(SearchContext& context, size_t n,
                                    std::vector<Configuration>* batch) {
  batch->clear();
  batch->reserve(n);
  size_t warmup = transferred_ ? std::min<size_t>(2, options_.warmup) : options_.warmup;
  if (observed_ < warmup) {
    for (size_t i = 0; i < n; ++i) {
      batch->push_back(space_->RandomConfiguration(*context.rng, context.sample_options));
    }
    return;
  }
  // One pool ranking serves the whole round: the n best-scoring distinct
  // candidates, history-unseen ones first (see SelectTopCandidates). A pool
  // with fewer than n distinct members (tiny spaces) tops up with fresh
  // random samples so the session still gets a full round.
  std::vector<double> scores = ScorePool(context);
  SelectTopCandidates(scores, proposal_.pool, context.history, n, batch);
  while (batch->size() < n) {
    batch->push_back(space_->RandomConfiguration(*context.rng, context.sample_options));
  }
}

void DeepTuneSearcher::Observe(const TrialRecord& trial, SearchContext& context) {
  (void)context;
  if (trial.outcome.transient()) {
    // Timeouts/flakes carry no (config -> outcome) signal: learning them as
    // crashes would teach the model that good configurations fail. Count
    // the observation (warmup/update cadence track trials, not samples)
    // but keep the sample out of the model.
    ++observed_;
    if (observed_ % options_.update_every == 0) {
      model_.Update();
    }
    return;
  }
  model_.AddSample(space_->EncodeMemoized(trial.config), trial.crashed(),
                   trial.HasObjective() ? trial.objective : 0.0);
  ++observed_;

  if (trial.HasObjective()) {
    // Maintain a small elite set for pool exploitation.
    constexpr size_t kEliteCount = 4;
    if (elites_.size() < kEliteCount) {
      elites_.push_back(trial.config);
      elite_objectives_.push_back(trial.objective);
    } else {
      size_t worst = 0;
      for (size_t i = 1; i < elite_objectives_.size(); ++i) {
        if (elite_objectives_[i] < elite_objectives_[worst]) {
          worst = i;
        }
      }
      if (trial.objective > elite_objectives_[worst]) {
        elites_[worst] = trial.config;
        elite_objectives_[worst] = trial.objective;
      }
    }
  }
  if (observed_ % options_.update_every == 0) {
    model_.Update();
  }
}

void DeepTuneSearcher::OnDrift(SearchContext& context) {
  (void)context;
  elites_.clear();
  elite_objectives_.clear();
  model_.Update();
}

std::string DeepTuneSearcher::ExportState() const {
  return "pool-iteration " + std::to_string(proposal_.iteration);
}

bool DeepTuneSearcher::RestoreState(const std::string& state) {
  if (state.empty()) {
    return true;  // v1 checkpoints carry no live state.
  }
  unsigned long long iteration = 0;
  if (std::sscanf(state.c_str(), "pool-iteration %llu", &iteration) != 1) {
    return false;
  }
  proposal_.iteration = static_cast<uint64_t>(iteration);
  return true;
}

size_t DeepTuneSearcher::MemoryBytes() const {
  size_t bytes = model_.MemoryBytes();
  // Elite set: configurations and their objectives.
  for (const Configuration& elite : elites_) {
    bytes += elite.Size() * sizeof(int64_t);
  }
  bytes += elite_objectives_.capacity() * sizeof(double);
  // Proposal-path scratch: the candidate pool, its encoded batch matrix,
  // and the encoded-history ring.
  bytes += proposal_.ScratchBytes();
  // The memoized-encode cache lives in the (shared) ConfigSpace but is
  // populated by this searcher's Observe/PredictConfig path — count it here
  // so Figure 10 reflects the searcher's true footprint. Caveat: with
  // several searchers on one space, each reports the whole shared cache.
  bytes += space_->EncodeCacheBytes();
  return bytes;
}

DtmPrediction DeepTuneSearcher::PredictConfig(const Configuration& config) {
  return model_.Predict(space_->EncodeMemoized(config));
}

std::vector<double> DeepTuneSearcher::ParameterImpacts(SearchContext& context) {
  (void)context;
  Configuration base = space_->DefaultConfiguration();
  if (!elites_.empty()) {
    size_t best = 0;
    for (size_t i = 1; i < elite_objectives_.size(); ++i) {
      if (elite_objectives_[i] > elite_objectives_[best]) {
        best = i;
      }
    }
    base = elites_[best];
  }
  std::vector<double> impacts(space_->Size(), 0.0);
  std::vector<double> features = space_->Encode(base);
  for (size_t i = 0; i < space_->Size(); ++i) {
    double lo = std::numeric_limits<double>::max();
    double hi = -std::numeric_limits<double>::max();
    std::vector<double> probe = features;
    for (int g = 0; g <= 4; ++g) {
      probe[i] = static_cast<double>(g) / 4.0;
      double yhat = model_.Predict(probe).objective;
      lo = std::min(lo, yhat);
      hi = std::max(hi, yhat);
    }
    impacts[i] = hi - lo;
  }
  return impacts;
}

namespace {
const SearcherRegistration kRegistration{
    {"deeptune",
     "DTM-guided pool search: predict crash/objective/uncertainty, rank by Eq. 3",
     /*multi_metric_variant=*/"deeptune-multi",
     /*supports_transfer=*/true},
    [](const SearcherArgs& args) {
      DeepTuneOptions options;
      options.model.seed = args.seed;
      return std::make_unique<DeepTuneSearcher>(args.space, options);
    }};
}  // namespace

}  // namespace wayfinder
