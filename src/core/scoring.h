// DeepTune's candidate scoring (§3.2, Eq. 2-3).
//
// ds(x, X) measures how far a candidate sits from everything already
// evaluated (novelty); sf(x, X) blends that with the model's predicted
// uncertainty. Ranking additionally merges the predicted objective, per the
// paper's description of the scoring function ("merging the model
// prediction, the predicted uncertainty, and the dissimilarity").
#ifndef WAYFINDER_SRC_CORE_SCORING_H_
#define WAYFINDER_SRC_CORE_SCORING_H_

#include <vector>

#include "src/core/dtm.h"

namespace wayfinder {

// Eq. 2 with ||x - X||^2 taken to the nearest known sample: 0 for a point
// already in X, approaching 1 far away. Distances are normalized by the
// feature dimension so the score is comparable across spaces.
double Dissimilarity(const std::vector<double>& x,
                     const std::vector<std::vector<double>>& known);

// Same score over the batched layout: `x` is one row of the candidate
// matrix (`dim` wide) and `known` the first `known_rows` rows of an
// encoded-history matrix. Avoids any per-candidate staging.
double Dissimilarity(const double* x, size_t dim, const Matrix& known, size_t known_rows);

struct ScoreOptions {
  double alpha = 0.5;           // Eq. 3 exploration blend.
  double predict_weight = 1.0;  // Weight of the predicted objective ŷ.
  double crash_threshold = 0.5; // Candidates above this k̂ are deprioritized.
  double crash_penalty = 4.0;   // Score penalty applied past the threshold.
};

// Final ranking score for one candidate. `sigma_norm` must be the
// pool-normalized uncertainty in [0, 1].
double RankScore(const DtmPrediction& prediction, double dissimilarity, double sigma_norm,
                 const ScoreOptions& options);

// Normalizes sigmas of a candidate pool into [0, 1] (max-scaled).
std::vector<double> NormalizeSigmas(const std::vector<DtmPrediction>& predictions);

}  // namespace wayfinder

#endif  // WAYFINDER_SRC_CORE_SCORING_H_
