#include "src/core/wayfinder_api.h"

#include "src/bayes/bayes_search.h"
#include "src/core/multi_metric.h"
#include "src/causal/causal_search.h"
#include "src/platform/grid_search.h"
#include "src/platform/random_search.h"
#include "src/search/annealing_search.h"
#include "src/search/genetic_search.h"
#include "src/search/hill_climb.h"
#include "src/search/smac_search.h"

namespace wayfinder {

std::unique_ptr<Searcher> MakeSearcher(const std::string& name, const ConfigSpace* space,
                                       uint64_t seed) {
  if (name == "random") {
    return std::make_unique<RandomSearcher>();
  }
  if (name == "grid") {
    return std::make_unique<GridSearcher>();
  }
  if (name == "bayesopt") {
    return std::make_unique<BayesSearcher>(space);
  }
  if (name == "causal") {
    return std::make_unique<CausalSearcher>(space);
  }
  if (name == "annealing") {
    return std::make_unique<AnnealingSearcher>();
  }
  if (name == "genetic") {
    return std::make_unique<GeneticSearcher>();
  }
  if (name == "hillclimb") {
    return std::make_unique<HillClimbSearcher>();
  }
  if (name == "smac") {
    SmacOptions options;
    options.forest.seed = seed;
    return std::make_unique<SmacSearcher>(space, options);
  }
  if (name == "deeptune") {
    DeepTuneOptions options;
    options.model.seed = seed;
    return std::make_unique<DeepTuneSearcher>(space, options);
  }
  return nullptr;
}

std::unique_ptr<Searcher> MakeJobSearcher(const JobSpec& spec, const ConfigSpace* space,
                                          std::string* error) {
  if (spec.IsMultiMetric()) {
    if (spec.algorithm != "deeptune") {
      *error = "metric: multi requires the deeptune algorithm";
      return nullptr;
    }
    std::vector<MetricSpec> metrics;
    for (const JobMetric& job_metric : spec.metrics) {
      metrics.push_back(job_metric.name == "memory"
                            ? MetricSpec::MemoryFootprint(job_metric.weight)
                            : MetricSpec::AppThroughput(job_metric.weight));
    }
    MultiMetricOptions options;
    options.model.seed = spec.seed;
    return std::make_unique<MultiMetricSearcher>(space, std::move(metrics), options);
  }
  std::unique_ptr<Searcher> searcher = MakeSearcher(spec.algorithm, space, spec.seed);
  if (searcher == nullptr) {
    *error = "unknown search algorithm: " + spec.algorithm;
  }
  return searcher;
}

JobRunResult RunJob(const JobSpec& spec, const std::string& model_in,
                    const std::string& model_out) {
  JobRunResult result;
  result.spec = spec;
  result.space = std::make_shared<ConfigSpace>(BuildJobSpace(spec));

  std::unique_ptr<Searcher> searcher =
      MakeJobSearcher(spec, result.space.get(), &result.error);
  if (searcher == nullptr) {
    return result;
  }
  auto* deeptune = dynamic_cast<DeepTuneSearcher*>(searcher.get());
  if (!model_in.empty()) {
    if (deeptune == nullptr) {
      result.error = "transfer learning requires the deeptune algorithm";
      return result;
    }
    if (!deeptune->LoadModel(model_in)) {
      result.error = "cannot load model: " + model_in;
      return result;
    }
  }

  TestbenchOptions bench_options;
  bench_options.substrate = spec.SubstrateKind();
  bench_options.seed = HashCombine(spec.seed, StableHash(spec.name));
  Testbench bench(result.space.get(), spec.app, bench_options);

  result.session = RunSearch(&bench, searcher.get(), spec.ToSessionOptions());
  if (deeptune != nullptr && !model_out.empty()) {
    if (!deeptune->SaveModel(model_out)) {
      result.error = "cannot save model: " + model_out;
      return result;
    }
  }
  result.ok = true;
  return result;
}

JobRunResult RunJobText(const std::string& yaml_text, const std::string& model_in,
                        const std::string& model_out) {
  JobParseResult parsed = ParseJobText(yaml_text);
  if (!parsed.ok) {
    JobRunResult result;
    result.error = parsed.error;
    return result;
  }
  return RunJob(parsed.spec, model_in, model_out);
}

JobRunResult RunJobFile(const std::string& path, const std::string& model_in,
                        const std::string& model_out) {
  JobParseResult parsed = ParseJobFile(path);
  if (!parsed.ok) {
    JobRunResult result;
    result.error = parsed.error;
    return result;
  }
  return RunJob(parsed.spec, model_in, model_out);
}

}  // namespace wayfinder
