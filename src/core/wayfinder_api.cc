#include "src/core/wayfinder_api.h"

namespace wayfinder {

std::unique_ptr<Searcher> MakeSearcher(const std::string& name, const ConfigSpace* space,
                                       uint64_t seed) {
  SearcherArgs args;
  args.space = space;
  args.seed = seed;
  return SearcherRegistry::Instance().Create(name, args);
}

std::unique_ptr<Searcher> MakeJobSearcher(const JobSpec& spec, const ConfigSpace* space,
                                          std::string* error) {
  const SearcherRegistry& registry = SearcherRegistry::Instance();
  SearcherArgs args;
  args.space = space;
  args.seed = spec.seed;
  std::string name = spec.algorithm;
  if (spec.IsMultiMetric()) {
    // Route through the algorithm's registered multi-metric variant; no
    // algorithm names appear here, so out-of-tree multi-metric searchers
    // work the same way.
    const SearcherInfo* info = registry.Find(spec.algorithm);
    if (info == nullptr) {
      *error = "unknown search algorithm: " + spec.algorithm;
      return nullptr;
    }
    if (!info->SupportsMultiMetric()) {
      *error = "metric: multi requires a multi-metric-capable algorithm "
               "(got " + spec.algorithm + "; try deeptune)";
      return nullptr;
    }
    name = info->multi_metric_variant;
    for (const JobMetric& job_metric : spec.metrics) {
      args.metrics.emplace_back(job_metric.name, job_metric.weight);
    }
  }
  std::unique_ptr<Searcher> searcher = registry.Create(name, args);
  if (searcher == nullptr) {
    *error = "unknown search algorithm: " + name;
  }
  return searcher;
}

JobRunResult RunJob(const JobSpec& spec, const std::string& model_in,
                    const std::string& model_out) {
  JobRunResult result;
  result.spec = spec;
  result.space = std::make_shared<ConfigSpace>(BuildJobSpace(spec));

  std::unique_ptr<Searcher> searcher =
      MakeJobSearcher(spec, result.space.get(), &result.error);
  if (searcher == nullptr) {
    return result;
  }
  auto* deeptune = dynamic_cast<DeepTuneSearcher*>(searcher.get());
  if (!model_in.empty()) {
    if (deeptune == nullptr) {
      result.error = "transfer learning requires the deeptune algorithm";
      return result;
    }
    if (!deeptune->LoadModel(model_in)) {
      result.error = "cannot load model: " + model_in;
      return result;
    }
  }

  Testbench bench(result.space.get(), spec.app, spec.ToTestbenchOptions());

  result.session = RunSearch(&bench, searcher.get(), spec.ToSessionOptions());
  if (deeptune != nullptr && !model_out.empty()) {
    if (!deeptune->SaveModel(model_out)) {
      result.error = "cannot save model: " + model_out;
      return result;
    }
  }
  result.ok = true;
  return result;
}

JobRunResult RunJobText(const std::string& yaml_text, const std::string& model_in,
                        const std::string& model_out) {
  JobParseResult parsed = ParseJobText(yaml_text);
  if (!parsed.ok) {
    JobRunResult result;
    result.error = parsed.error;
    return result;
  }
  return RunJob(parsed.spec, model_in, model_out);
}

JobRunResult RunJobFile(const std::string& path, const std::string& model_in,
                        const std::string& model_out) {
  JobParseResult parsed = ParseJobFile(path);
  if (!parsed.ok) {
    JobRunResult result;
    result.error = parsed.error;
    return result;
  }
  return RunJob(parsed.spec, model_in, model_out);
}

}  // namespace wayfinder
