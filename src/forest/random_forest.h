// Regression random forest with impurity-based feature importance
// (Breiman 2001) — the feature-importance algorithm §3.3 uses to build the
// Figure 5 cross-similarity matrix between applications.
#ifndef WAYFINDER_SRC_FOREST_RANDOM_FOREST_H_
#define WAYFINDER_SRC_FOREST_RANDOM_FOREST_H_

#include <cstdint>
#include <vector>

#include "src/util/rng.h"

namespace wayfinder {

struct ForestOptions {
  size_t trees = 60;
  size_t max_depth = 9;
  size_t min_samples_leaf = 4;
  // Features tried per split; 0 = sqrt(d).
  size_t features_per_split = 0;
  uint64_t seed = 0xf02e57;
};

class RandomForestRegressor {
 public:
  explicit RandomForestRegressor(const ForestOptions& options = {});

  // Fits on rows `xs` with targets `ys`.
  void Fit(const std::vector<std::vector<double>>& xs, const std::vector<double>& ys);

  double Predict(const std::vector<double>& x) const;

  // Mean and (sample) variance of the per-tree predictions. SMAC-style
  // Bayesian optimization uses the ensemble spread as a posterior-variance
  // proxy when computing expected improvement. {0, 0} before Fit.
  struct PredictionStats {
    double mean = 0.0;
    double variance = 0.0;
  };
  PredictionStats PredictStats(const std::vector<double>& x) const;

  // Total variance reduction attributed to each feature, normalized to sum
  // to 1 (all-zero when the forest never split).
  std::vector<double> FeatureImportance() const;

  bool IsFitted() const { return !trees_.empty(); }

  // Bytes of node storage across all trees (Figure-7-style accounting).
  size_t MemoryBytes() const;

 private:
  struct Node {
    int feature = -1;       // -1 = leaf.
    double threshold = 0.0;
    double value = 0.0;     // Leaf prediction.
    int left = -1;
    int right = -1;
  };
  struct Tree {
    std::vector<Node> nodes;
  };

  int BuildNode(Tree& tree, const std::vector<std::vector<double>>& xs,
                const std::vector<double>& ys, std::vector<size_t>& indices, size_t begin,
                size_t end, size_t depth, Rng& rng);

  ForestOptions options_;
  std::vector<Tree> trees_;
  std::vector<double> importance_;
  size_t feature_count_ = 0;
};

// Cosine similarity between two non-negative importance vectors (0 when
// either is all-zero). Figure 5's "cross-similarity".
double ImportanceSimilarity(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace wayfinder

#endif  // WAYFINDER_SRC_FOREST_RANDOM_FOREST_H_
