#include "src/forest/random_forest.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace wayfinder {

RandomForestRegressor::RandomForestRegressor(const ForestOptions& options) : options_(options) {}

namespace {

struct SplitResult {
  bool found = false;
  size_t feature = 0;
  double threshold = 0.0;
  double gain = 0.0;
  size_t split_point = 0;  // Index into the (reordered) range.
};

double RangeMean(const std::vector<double>& ys, const std::vector<size_t>& indices, size_t begin,
                 size_t end) {
  double sum = 0.0;
  for (size_t i = begin; i < end; ++i) {
    sum += ys[indices[i]];
  }
  return sum / static_cast<double>(end - begin);
}

double RangeSse(const std::vector<double>& ys, const std::vector<size_t>& indices, size_t begin,
                size_t end, double mean) {
  double sse = 0.0;
  for (size_t i = begin; i < end; ++i) {
    double d = ys[indices[i]] - mean;
    sse += d * d;
  }
  return sse;
}

}  // namespace

int RandomForestRegressor::BuildNode(Tree& tree, const std::vector<std::vector<double>>& xs,
                                     const std::vector<double>& ys,
                                     std::vector<size_t>& indices, size_t begin, size_t end,
                                     size_t depth, Rng& rng) {
  Node node;
  double mean = RangeMean(ys, indices, begin, end);
  node.value = mean;
  size_t count = end - begin;
  if (depth >= options_.max_depth || count < 2 * options_.min_samples_leaf) {
    tree.nodes.push_back(node);
    return static_cast<int>(tree.nodes.size() - 1);
  }
  double parent_sse = RangeSse(ys, indices, begin, end, mean);
  if (parent_sse <= 1e-12) {
    tree.nodes.push_back(node);
    return static_cast<int>(tree.nodes.size() - 1);
  }

  size_t mtry = options_.features_per_split != 0
                    ? options_.features_per_split
                    : std::max<size_t>(1, static_cast<size_t>(std::sqrt(
                                              static_cast<double>(feature_count_))));
  SplitResult best;
  for (size_t trial = 0; trial < mtry; ++trial) {
    size_t feature = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(feature_count_) - 1));
    // Random threshold between the range's min and max of this feature
    // (extremely-randomized-trees style: fast and unbiased enough).
    double lo = xs[indices[begin]][feature];
    double hi = lo;
    for (size_t i = begin; i < end; ++i) {
      lo = std::min(lo, xs[indices[i]][feature]);
      hi = std::max(hi, xs[indices[i]][feature]);
    }
    if (hi - lo < 1e-12) {
      continue;
    }
    double threshold = rng.Uniform(lo, hi);
    // Partition (stable counting first to check leaf sizes).
    size_t left_count = 0;
    double left_sum = 0.0;
    double right_sum = 0.0;
    for (size_t i = begin; i < end; ++i) {
      if (xs[indices[i]][feature] <= threshold) {
        ++left_count;
        left_sum += ys[indices[i]];
      } else {
        right_sum += ys[indices[i]];
      }
    }
    size_t right_count = count - left_count;
    if (left_count < options_.min_samples_leaf || right_count < options_.min_samples_leaf) {
      continue;
    }
    double left_mean = left_sum / static_cast<double>(left_count);
    double right_mean = right_sum / static_cast<double>(right_count);
    // Gain = parent SSE - child SSE, computed with the mean-shift identity.
    double child_sse = 0.0;
    for (size_t i = begin; i < end; ++i) {
      double y = ys[indices[i]];
      double m = xs[indices[i]][feature] <= threshold ? left_mean : right_mean;
      child_sse += (y - m) * (y - m);
    }
    double gain = parent_sse - child_sse;
    if (gain > best.gain) {
      best.found = true;
      best.feature = feature;
      best.threshold = threshold;
      best.gain = gain;
    }
  }
  if (!best.found) {
    tree.nodes.push_back(node);
    return static_cast<int>(tree.nodes.size() - 1);
  }

  // Reorder the range around the winning split.
  auto middle = std::partition(indices.begin() + static_cast<long>(begin),
                               indices.begin() + static_cast<long>(end), [&](size_t idx) {
                                 return xs[idx][best.feature] <= best.threshold;
                               });
  size_t split = static_cast<size_t>(middle - indices.begin());
  importance_[best.feature] += best.gain;

  node.feature = static_cast<int>(best.feature);
  node.threshold = best.threshold;
  tree.nodes.push_back(node);
  int my_index = static_cast<int>(tree.nodes.size() - 1);
  int left = BuildNode(tree, xs, ys, indices, begin, split, depth + 1, rng);
  int right = BuildNode(tree, xs, ys, indices, split, end, depth + 1, rng);
  tree.nodes[static_cast<size_t>(my_index)].left = left;
  tree.nodes[static_cast<size_t>(my_index)].right = right;
  return my_index;
}

void RandomForestRegressor::Fit(const std::vector<std::vector<double>>& xs,
                                const std::vector<double>& ys) {
  assert(xs.size() == ys.size());
  trees_.clear();
  if (xs.empty()) {
    importance_.clear();
    return;
  }
  feature_count_ = xs.front().size();
  importance_.assign(feature_count_, 0.0);
  Rng rng(options_.seed);
  trees_.resize(options_.trees);
  for (Tree& tree : trees_) {
    // Bootstrap sample.
    std::vector<size_t> indices(xs.size());
    for (size_t& idx : indices) {
      idx = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(xs.size()) - 1));
    }
    Rng tree_rng = rng.Fork();
    BuildNode(tree, xs, ys, indices, 0, indices.size(), 0, tree_rng);
  }
}

double RandomForestRegressor::Predict(const std::vector<double>& x) const {
  return PredictStats(x).mean;
}

RandomForestRegressor::PredictionStats RandomForestRegressor::PredictStats(
    const std::vector<double>& x) const {
  PredictionStats stats;
  if (trees_.empty()) {
    return stats;
  }
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const Tree& tree : trees_) {
    // Parents are pushed before their children, so the root is node 0.
    int node_index = 0;
    double leaf = 0.0;
    while (true) {
      const Node& node = tree.nodes[static_cast<size_t>(node_index)];
      if (node.feature < 0 || node.left < 0 || node.right < 0) {
        leaf = node.value;
        break;
      }
      node_index = x[static_cast<size_t>(node.feature)] <= node.threshold ? node.left : node.right;
    }
    sum += leaf;
    sum_sq += leaf * leaf;
  }
  double n = static_cast<double>(trees_.size());
  stats.mean = sum / n;
  if (trees_.size() > 1) {
    stats.variance = std::max(0.0, (sum_sq - sum * sum / n) / (n - 1.0));
  }
  return stats;
}

size_t RandomForestRegressor::MemoryBytes() const {
  size_t bytes = sizeof(*this) + importance_.size() * sizeof(double);
  for (const Tree& tree : trees_) {
    bytes += tree.nodes.size() * sizeof(Node);
  }
  return bytes;
}

std::vector<double> RandomForestRegressor::FeatureImportance() const {
  std::vector<double> importance = importance_;
  double total = std::accumulate(importance.begin(), importance.end(), 0.0);
  if (total > 0.0) {
    for (double& v : importance) {
      v /= total;
    }
  }
  return importance;
}

double ImportanceSimilarity(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  double dot = 0.0;
  double na = 0.0;
  double nb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na <= 0.0 || nb <= 0.0) {
    return 0.0;
  }
  return dot / std::sqrt(na * nb);
}

}  // namespace wayfinder
