#include "src/search/hill_climb.h"

#include "src/platform/searcher_registry.h"

namespace wayfinder {

HillClimbSearcher::HillClimbSearcher(const HillClimbOptions& options) : options_(options) {}

Configuration HillClimbSearcher::Propose(SearchContext& context) {
  if (!incumbent_.has_value()) {
    return context.space->RandomConfiguration(*context.rng, context.sample_options);
  }
  return context.space->Neighbor(*incumbent_, *context.rng, options_.step,
                                 context.sample_options);
}

void HillClimbSearcher::Observe(const TrialRecord& trial, SearchContext& /*context*/) {
  if (trial.HasObjective() &&
      (!incumbent_.has_value() || trial.objective > incumbent_objective_)) {
    incumbent_ = trial.config;
    incumbent_objective_ = trial.objective;
    stagnation_ = 0;
    return;
  }
  if (++stagnation_ >= options_.patience) {
    incumbent_.reset();
    stagnation_ = 0;
    ++restarts_;
  }
}

size_t HillClimbSearcher::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  if (incumbent_.has_value()) {
    bytes += incumbent_->Size() * sizeof(int64_t);
  }
  return bytes;
}

namespace {
const SearcherRegistration kRegistration{
    {"hillclimb", "stochastic hill climbing with random restarts from the incumbent",
     /*multi_metric_variant=*/""},
    [](const SearcherArgs&) { return std::make_unique<HillClimbSearcher>(); }};
}  // namespace

}  // namespace wayfinder
