// Simulated-annealing searcher.
//
// A classic single-trajectory metaheuristic plugged into Wayfinder's
// modular search API (§3.1): propose a neighbor of the current
// configuration, accept improvements always and regressions with
// probability exp(Δ/T), and cool T geometrically. The mutation radius
// shrinks with the temperature so early iterations explore broadly and
// late iterations fine-tune. Crashed trials are always rejected and the
// trajectory reheats after prolonged stagnation, which keeps the walk from
// pinning itself inside an invalid region of the space.
#ifndef WAYFINDER_SRC_SEARCH_ANNEALING_SEARCH_H_
#define WAYFINDER_SRC_SEARCH_ANNEALING_SEARCH_H_

#include <cstdint>
#include <optional>
#include <string>

#include "src/platform/searcher.h"

namespace wayfinder {

struct AnnealingOptions {
  // Initial temperature in units of the running objective spread; the
  // acceptance test normalizes Δ by the spread so the schedule is
  // metric-agnostic (req/s and µs/op anneal identically).
  double initial_temperature = 1.0;
  double cooling_rate = 0.985;       // T <- T * cooling_rate per observation.
  double min_temperature = 0.02;
  size_t max_mutations = 6;          // Mutation radius at T = initial.
  // Consecutive rejections before the trajectory reheats to the initial
  // temperature and restarts from the best configuration seen.
  size_t reheat_after = 30;
};

class AnnealingSearcher : public Searcher {
 public:
  explicit AnnealingSearcher(const AnnealingOptions& options = {});

  std::string Name() const override { return "annealing"; }
  Configuration Propose(SearchContext& context) override;
  void Observe(const TrialRecord& trial, SearchContext& context) override;
  size_t MemoryBytes() const override;

  double temperature() const { return temperature_; }
  size_t reheats() const { return reheats_; }

 private:
  size_t MutationCount(Rng& rng) const;

  AnnealingOptions options_;
  double temperature_;
  std::optional<Configuration> current_;
  double current_objective_ = 0.0;
  std::optional<Configuration> best_;
  double best_objective_ = 0.0;
  // Running spread estimate of successful objectives (Welford).
  size_t successes_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  size_t rejections_in_a_row_ = 0;
  size_t reheats_ = 0;
};

}  // namespace wayfinder

#endif  // WAYFINDER_SRC_SEARCH_ANNEALING_SEARCH_H_
