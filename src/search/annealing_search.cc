#include "src/search/annealing_search.h"

#include <algorithm>
#include <cmath>

#include "src/obs/metrics.h"
#include "src/platform/searcher_registry.h"

namespace wayfinder {

namespace {

// Acceptance dynamics: moves taken vs. refused, and schedule restarts —
// together they say whether the cooling schedule matches the landscape.
obs::Counter& g_accepts =
    obs::Registry::Instance().GetCounter("search.annealing_accepts");
obs::Counter& g_rejects =
    obs::Registry::Instance().GetCounter("search.annealing_rejects");
obs::Counter& g_reheats =
    obs::Registry::Instance().GetCounter("search.annealing_reheats");

}  // namespace

AnnealingSearcher::AnnealingSearcher(const AnnealingOptions& options)
    : options_(options), temperature_(options.initial_temperature) {}

size_t AnnealingSearcher::MutationCount(Rng& rng) const {
  // Radius shrinks linearly with temperature, never below one mutation.
  double fraction = temperature_ / options_.initial_temperature;
  size_t radius = static_cast<size_t>(std::lround(fraction * static_cast<double>(
                                                                 options_.max_mutations)));
  radius = std::clamp<size_t>(radius, 1, options_.max_mutations);
  // 1..radius uniformly, so small steps stay common even when hot.
  return static_cast<size_t>(rng.UniformInt(1, static_cast<int64_t>(radius)));
}

Configuration AnnealingSearcher::Propose(SearchContext& context) {
  if (!current_.has_value()) {
    return context.space->RandomConfiguration(*context.rng, context.sample_options);
  }
  return context.space->Neighbor(*current_, *context.rng, MutationCount(*context.rng),
                                 context.sample_options);
}

void AnnealingSearcher::Observe(const TrialRecord& trial, SearchContext& context) {
  bool accepted = false;
  if (trial.HasObjective()) {
    double y = trial.objective;
    ++successes_;
    double delta_mean = y - mean_;
    mean_ += delta_mean / static_cast<double>(successes_);
    m2_ += delta_mean * (y - mean_);
    double spread = successes_ > 1
                        ? std::sqrt(m2_ / static_cast<double>(successes_ - 1))
                        : 1.0;
    if (spread <= 0.0) {
      spread = 1.0;
    }

    if (!current_.has_value()) {
      accepted = true;
    } else {
      double delta = (y - current_objective_) / spread;
      if (delta >= 0.0) {
        accepted = true;
      } else {
        double p = std::exp(delta / std::max(temperature_, 1e-9));
        accepted = context.rng->Uniform() < p;
      }
    }
    if (accepted) {
      current_ = trial.config;
      current_objective_ = y;
    }
    if (!best_.has_value() || y > best_objective_) {
      best_ = trial.config;
      best_objective_ = y;
    }
  }

  (accepted ? g_accepts : g_rejects).Add(1);
  temperature_ = std::max(temperature_ * options_.cooling_rate, options_.min_temperature);
  rejections_in_a_row_ = accepted ? 0 : rejections_in_a_row_ + 1;
  if (rejections_in_a_row_ >= options_.reheat_after) {
    temperature_ = options_.initial_temperature;
    rejections_in_a_row_ = 0;
    ++reheats_;
    g_reheats.Add(1);
    if (best_.has_value()) {
      current_ = best_;
      current_objective_ = best_objective_;
    } else {
      current_.reset();  // Everything crashed so far: restart from random.
    }
  }
}

size_t AnnealingSearcher::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  if (current_.has_value()) {
    bytes += current_->Size() * sizeof(int64_t);
  }
  if (best_.has_value()) {
    bytes += best_->Size() * sizeof(int64_t);
  }
  return bytes;
}

namespace {
const SearcherRegistration kRegistration{
    {"annealing", "simulated annealing over configuration neighbors with a cooling schedule",
     /*multi_metric_variant=*/""},
    [](const SearcherArgs&) { return std::make_unique<AnnealingSearcher>(); }};
}  // namespace

}  // namespace wayfinder
