#include "src/search/smac_search.h"

#include "src/obs/metrics.h"
#include "src/platform/searcher_registry.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace wayfinder {

namespace {

// Standard normal pdf / cdf for the closed-form EI.
double NormalPdf(double z) { return std::exp(-0.5 * z * z) / std::sqrt(2.0 * M_PI); }
double NormalCdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

// Surrogate cost: how often and how long the forest refits.
obs::Counter& g_refits = obs::Registry::Instance().GetCounter("search.smac_refits");
obs::Histogram& g_refit_ns =
    obs::Registry::Instance().GetHistogram("search.smac_refit_ns");

}  // namespace

SmacSearcher::SmacSearcher(const ConfigSpace* space, const SmacOptions& options)
    : space_(space), options_(options), forest_(options.forest) {}

double SmacSearcher::ExpectedImprovement(double mean, double variance, double best,
                                         double xi) {
  double sigma = std::sqrt(std::max(variance, 0.0));
  double improvement = mean - best - xi;
  if (sigma < 1e-12) {
    return std::max(improvement, 0.0);
  }
  double z = improvement / sigma;
  return improvement * NormalCdf(z) + sigma * NormalPdf(z);
}

Configuration SmacSearcher::Propose(SearchContext& context) {
  if (xs_.size() < options_.warmup || !forest_.IsFitted() || !has_success_) {
    return context.space->RandomConfiguration(*context.rng, context.sample_options);
  }

  // Grow the candidate pool: neighbors of incumbents plus random samples.
  std::vector<Configuration> pool;
  pool.reserve(options_.pool_size);
  size_t local = incumbents_.empty()
                     ? 0
                     : static_cast<size_t>(options_.local_fraction *
                                           static_cast<double>(options_.pool_size));
  for (size_t i = 0; i < local; ++i) {
    const Configuration& base = incumbents_[static_cast<size_t>(
        context.rng->UniformInt(0, static_cast<int64_t>(incumbents_.size()) - 1))];
    size_t mutations = static_cast<size_t>(
        context.rng->UniformInt(1, static_cast<int64_t>(options_.max_mutations)));
    pool.push_back(space_->Neighbor(base, *context.rng, mutations, context.sample_options));
  }
  while (pool.size() < options_.pool_size) {
    pool.push_back(space_->RandomConfiguration(*context.rng, context.sample_options));
  }

  // Normalize the incumbent objective the same way the training targets are.
  double best_score = -std::numeric_limits<double>::infinity();
  size_t best_index = 0;
  for (size_t i = 0; i < pool.size(); ++i) {
    auto stats = forest_.PredictStats(space_->Encode(pool[i]));
    double ei = ExpectedImprovement(stats.mean, stats.variance, best_raw_, options_.xi);
    if (ei > best_score) {
      best_score = ei;
      best_index = i;
    }
  }
  return pool[best_index];
}

void SmacSearcher::Observe(const TrialRecord& trial, SearchContext& /*context*/) {
  xs_.push_back(space_->Encode(trial.config));
  crashed_.push_back(trial.crashed());
  if (trial.HasObjective()) {
    ys_raw_.push_back(trial.objective);
    if (!has_success_ || trial.objective > best_raw_) {
      best_raw_ = trial.objective;
      has_success_ = true;
      incumbents_.push_back(trial.config);
      if (incumbents_.size() > 8) {
        incumbents_.erase(incumbents_.begin());
      }
    }
  } else {
    ys_raw_.push_back(std::nan(""));
  }
  ++since_refit_;
  if (since_refit_ >= options_.refit_every && xs_.size() >= options_.warmup) {
    MaybeRefit();
    since_refit_ = 0;
  }
}

void SmacSearcher::MaybeRefit() {
  if (!has_success_) {
    return;
  }
  // Impute crashes at the worst successful objective seen (SMAC's standard
  // treatment of failed runs), so the surrogate learns a cliff there.
  double worst = std::numeric_limits<double>::infinity();
  for (double y : ys_raw_) {
    if (!std::isnan(y)) {
      worst = std::min(worst, y);
    }
  }
  std::vector<double> ys(ys_raw_.size());
  for (size_t i = 0; i < ys_raw_.size(); ++i) {
    ys[i] = std::isnan(ys_raw_[i]) ? worst : ys_raw_[i];
  }
  {
    obs::ScopedTimerNs refit_timer(g_refit_ns);
    forest_.Fit(xs_, ys);
  }
  g_refits.Add(1);
  ++refits_;
}

size_t SmacSearcher::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  for (const auto& row : xs_) {
    bytes += row.size() * sizeof(double);
  }
  bytes += ys_raw_.size() * sizeof(double) + crashed_.size() / 8;
  for (const Configuration& incumbent : incumbents_) {
    bytes += incumbent.Size() * sizeof(int64_t);
  }
  bytes += forest_.MemoryBytes();
  return bytes;
}

namespace {
const SearcherRegistration kRegistration{
    {"smac", "random-forest surrogate with expected-improvement candidate ranking",
     /*multi_metric_variant=*/""},
    [](const SearcherArgs& args) {
      SmacOptions options;
      options.forest.seed = args.seed;
      return std::make_unique<SmacSearcher>(args.space, options);
    }};
}  // namespace

}  // namespace wayfinder
