// Random-restart hill climbing.
//
// The simplest local-search baseline worth having next to random search:
// propose single-parameter neighbors of the incumbent, move only on strict
// improvement, and restart from a fresh random sample after `patience`
// consecutive non-improvements. Deliberately greedy — its tendency to get
// trapped by local optima and crash walls is the contrast that motivates
// DeepTune's exploration term (Eq. 3).
#ifndef WAYFINDER_SRC_SEARCH_HILL_CLIMB_H_
#define WAYFINDER_SRC_SEARCH_HILL_CLIMB_H_

#include <cstdint>
#include <optional>
#include <string>

#include "src/platform/searcher.h"

namespace wayfinder {

struct HillClimbOptions {
  size_t patience = 20;   // Non-improvements before a random restart.
  size_t step = 1;        // Parameters mutated per proposal.
};

class HillClimbSearcher : public Searcher {
 public:
  explicit HillClimbSearcher(const HillClimbOptions& options = {});

  std::string Name() const override { return "hillclimb"; }
  Configuration Propose(SearchContext& context) override;
  void Observe(const TrialRecord& trial, SearchContext& context) override;
  size_t MemoryBytes() const override;

  size_t restarts() const { return restarts_; }

 private:
  HillClimbOptions options_;
  std::optional<Configuration> incumbent_;
  double incumbent_objective_ = 0.0;
  size_t stagnation_ = 0;
  size_t restarts_ = 0;
};

}  // namespace wayfinder

#endif  // WAYFINDER_SRC_SEARCH_HILL_CLIMB_H_
