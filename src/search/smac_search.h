// SMAC-style searcher: Bayesian optimization with a random-forest surrogate.
//
// §5 of the paper singles out SMAC as the scalable alternative to
// Gaussian-process Bayesian optimization — random forests handle the
// categorical/high-dimensional inputs GPs struggle with (§2.3), at the
// price of cruder posterior-uncertainty estimates. This searcher refits a
// regression forest on the encoded history every few observations, scores a
// candidate pool with expected improvement (using the ensemble spread as
// the posterior variance), and proposes the argmax. Crashed trials are
// imputed at the worst objective seen so far, which teaches the surrogate
// to steer around the crash region without a dedicated crash head.
#ifndef WAYFINDER_SRC_SEARCH_SMAC_SEARCH_H_
#define WAYFINDER_SRC_SEARCH_SMAC_SEARCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/forest/random_forest.h"
#include "src/platform/searcher.h"

namespace wayfinder {

struct SmacOptions {
  ForestOptions forest;
  size_t pool_size = 128;
  // Fraction of the pool grown as neighbors of the best configurations
  // (SMAC's local search around incumbents); the rest is random.
  double local_fraction = 0.5;
  size_t max_mutations = 3;
  size_t warmup = 10;        // Random proposals before the surrogate engages.
  size_t refit_every = 4;    // Observations between forest refits.
  double xi = 0.01;          // EI exploration margin, in normalized units.
};

class SmacSearcher : public Searcher {
 public:
  explicit SmacSearcher(const ConfigSpace* space, const SmacOptions& options = {});

  std::string Name() const override { return "smac"; }
  Configuration Propose(SearchContext& context) override;
  void Observe(const TrialRecord& trial, SearchContext& context) override;
  size_t MemoryBytes() const override;

  size_t refits() const { return refits_; }
  const RandomForestRegressor& surrogate() const { return forest_; }

 private:
  void MaybeRefit();

  // Expected improvement of N(mean, variance) over `best`, with margin xi.
  static double ExpectedImprovement(double mean, double variance, double best, double xi);

  const ConfigSpace* space_;
  SmacOptions options_;
  RandomForestRegressor forest_;

  // Training set mirrors the observed history: encoded configs and
  // z-normalized objectives (crashes imputed at the running worst).
  std::vector<std::vector<double>> xs_;
  std::vector<double> ys_raw_;
  std::vector<bool> crashed_;
  double best_raw_ = 0.0;
  bool has_success_ = false;
  size_t since_refit_ = 0;
  size_t refits_ = 0;

  // Incumbents for pool-local search, best last.
  std::vector<Configuration> incumbents_;
};

}  // namespace wayfinder

#endif  // WAYFINDER_SRC_SEARCH_SMAC_SEARCH_H_
