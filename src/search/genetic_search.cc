#include "src/search/genetic_search.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/obs/metrics.h"
#include "src/platform/searcher_registry.h"

namespace wayfinder {

namespace {

// Operator mix: how proposals split between crossover children and random
// immigrants — the knob the exploration/exploitation balance turns on.
obs::Counter& g_crossovers =
    obs::Registry::Instance().GetCounter("search.genetic_crossovers");
obs::Counter& g_immigrants =
    obs::Registry::Instance().GetCounter("search.genetic_immigrants");

}  // namespace

GeneticSearcher::GeneticSearcher(const GeneticOptions& options) : options_(options) {}

const GeneticSearcher::Individual& GeneticSearcher::SelectParent(
    SearchContext& context) const {
  size_t best = static_cast<size_t>(
      context.rng->UniformInt(0, static_cast<int64_t>(pool_.size()) - 1));
  for (size_t round = 1; round < options_.tournament; ++round) {
    size_t challenger = static_cast<size_t>(
        context.rng->UniformInt(0, static_cast<int64_t>(pool_.size()) - 1));
    // Pool is sorted best-first, so a lower index wins the tournament.
    best = std::min(best, challenger);
  }
  return pool_[best];
}

Configuration GeneticSearcher::Crossover(const Configuration& a, const Configuration& b,
                                         SearchContext& context) const {
  std::vector<int64_t> genes(a.Size());
  for (size_t i = 0; i < a.Size(); ++i) {
    genes[i] = context.rng->Bernoulli(0.5) ? a.Raw(i) : b.Raw(i);
  }
  Configuration child(context.space, std::move(genes));
  context.space->ApplyConstraints(&child);
  return child;
}

void GeneticSearcher::Mutate(Configuration* child, SearchContext& context) const {
  const ConfigSpace& space = *context.space;
  // Flip probability targeting `mutations_per_child` expected flips over the
  // parameters the phase bias allows to move.
  double movable = 0.0;
  for (size_t i = 0; i < space.Size(); ++i) {
    if (!space.IsFrozen(i)) {
      movable += context.sample_options.ProbFor(space.Param(i).phase);
    }
  }
  if (movable <= 0.0) {
    return;
  }
  double flip = std::min(1.0, options_.mutations_per_child / movable);
  for (size_t i = 0; i < space.Size(); ++i) {
    if (space.IsFrozen(i)) {
      continue;
    }
    double gate = context.sample_options.ProbFor(space.Param(i).phase);
    if (context.rng->Bernoulli(flip * gate)) {
      child->SetRaw(i, space.RandomValue(i, *context.rng));
    }
  }
  space.ApplyConstraints(child);
}

Configuration GeneticSearcher::Propose(SearchContext& context) {
  bool seeding = pool_.size() < options_.population;
  if (seeding || context.rng->Bernoulli(options_.immigrant_prob)) {
    g_immigrants.Add(1);
    return context.space->RandomConfiguration(*context.rng, context.sample_options);
  }
  g_crossovers.Add(1);
  const Individual& mother = SelectParent(context);
  const Individual& father = SelectParent(context);
  Configuration child = context.rng->Bernoulli(options_.crossover_prob)
                            ? Crossover(mother.config, father.config, context)
                            : (mother.fitness >= father.fitness ? mother.config
                                                                : father.config);
  Mutate(&child, context);
  return child;
}

void GeneticSearcher::Observe(const TrialRecord& trial, SearchContext& /*context*/) {
  Individual incoming;
  incoming.config = trial.config;
  incoming.fitness = trial.HasObjective() ? trial.objective
                                          : -std::numeric_limits<double>::infinity();
  auto position = std::lower_bound(
      pool_.begin(), pool_.end(), incoming,
      [](const Individual& a, const Individual& b) { return a.fitness > b.fitness; });
  pool_.insert(position, std::move(incoming));
  if (pool_.size() > options_.population) {
    pool_.resize(options_.population);
  }
}

double GeneticSearcher::BestFitness() const {
  if (pool_.empty() || std::isinf(pool_.front().fitness)) {
    return std::nan("");
  }
  return pool_.front().fitness;
}

size_t GeneticSearcher::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  for (const Individual& member : pool_) {
    bytes += sizeof(Individual) + member.config.Size() * sizeof(int64_t);
  }
  return bytes;
}

namespace {
const SearcherRegistration kRegistration{
    {"genetic", "steady-state GA: tournament parents, uniform crossover, elitist pool",
     /*multi_metric_variant=*/""},
    [](const SearcherArgs&) { return std::make_unique<GeneticSearcher>(); }};
}  // namespace

}  // namespace wayfinder
