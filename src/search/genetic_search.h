// Genetic-algorithm searcher.
//
// A steady-state GA over configurations: the first `population` proposals
// seed the gene pool with random samples; afterwards each proposal is the
// uniform crossover of two tournament-selected parents plus per-parameter
// mutation. Observed trials are inserted back into the pool, which is
// truncated elitistically (crashes score -inf and are evicted first), so
// the pool concentrates on valid, high-objective regions — a different
// route to the crash avoidance DeepTune gets from its crash head.
#ifndef WAYFINDER_SRC_SEARCH_GENETIC_SEARCH_H_
#define WAYFINDER_SRC_SEARCH_GENETIC_SEARCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/platform/searcher.h"

namespace wayfinder {

struct GeneticOptions {
  size_t population = 24;
  size_t tournament = 3;          // Contestants per parent selection.
  double crossover_prob = 0.9;    // Else: clone the fitter parent.
  // Expected number of mutated parameters per child; converted into a
  // per-parameter flip probability over the non-frozen, phase-allowed set.
  double mutations_per_child = 2.0;
  // A slice of proposals stays fully random to keep injecting diversity.
  double immigrant_prob = 0.08;
};

class GeneticSearcher : public Searcher {
 public:
  explicit GeneticSearcher(const GeneticOptions& options = {});

  std::string Name() const override { return "genetic"; }
  Configuration Propose(SearchContext& context) override;
  void Observe(const TrialRecord& trial, SearchContext& context) override;
  // The GA's natural batch is a generation, which the inherited ProposeBatch
  // loop already produces: n children bred against the pool as it stands at
  // the start of the round (Observe only runs when the round commits), or n
  // random founders while seeding.
  size_t MemoryBytes() const override;

  size_t PoolSize() const { return pool_.size(); }
  // Best (valid) fitness currently in the pool; NaN when the pool is empty.
  double BestFitness() const;

 private:
  struct Individual {
    Configuration config;
    double fitness = 0.0;  // Higher is better; crashes use -inf.
  };

  const Individual& SelectParent(SearchContext& context) const;
  Configuration Crossover(const Configuration& a, const Configuration& b,
                          SearchContext& context) const;
  void Mutate(Configuration* child, SearchContext& context) const;

  GeneticOptions options_;
  std::vector<Individual> pool_;  // Sorted by fitness, best first.
};

}  // namespace wayfinder

#endif  // WAYFINDER_SRC_SEARCH_GENETIC_SEARCH_H_
