#include "src/simos/sysfs.h"

#include <cstdlib>

namespace wayfinder {

SimulatedSysfs::SimulatedSysfs(const ConfigSpace* space, uint64_t seed,
                               bool bracket_choice_files)
    : space_(space), bracket_choice_files_(bracket_choice_files) {
  for (size_t i = 0; i < space_->Size(); ++i) {
    const ParamSpec& spec = space_->Param(i);
    if (spec.phase != ParamPhase::kRuntime) {
      continue;
    }
    FileState state;
    state.param_index = i;
    state.current = spec.default_value;
    state.locked = HashCombine(seed, StableHash(spec.name)) % 10 == 0;
    files_.emplace(spec.name, state);
    paths_.push_back(spec.name);
  }
}

std::vector<std::string> SimulatedSysfs::ListWritablePaths() { return paths_; }

std::optional<std::string> SimulatedSysfs::ReadValue(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return std::nullopt;
  }
  const ParamSpec& spec = space_->Param(it->second.param_index);
  if (spec.kind == ParamKind::kString) {
    if (!bracket_choice_files_) {
      return spec.FormatValue(it->second.current);  // Plain /proc/sys style.
    }
    // /sys multi-choice convention: all tokens, active one bracketed.
    std::string rendered;
    for (size_t c = 0; c < spec.choices.size(); ++c) {
      if (!rendered.empty()) {
        rendered += " ";
      }
      bool active = static_cast<int64_t>(c) == it->second.current;
      rendered += active ? "[" + spec.choices[c] + "]" : spec.choices[c];
    }
    return rendered;
  }
  return std::to_string(it->second.current);
}

void SimulatedSysfs::RebootToDefaults() {
  ++crash_count_;
  for (auto& [path, state] : files_) {
    state.current = space_->Param(state.param_index).default_value;
  }
}

ProbeWriteResult SimulatedSysfs::TryWrite(const std::string& path, const std::string& value) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return ProbeWriteResult::kRejected;
  }
  FileState& state = it->second;
  if (state.locked) {
    return ProbeWriteResult::kRejected;
  }
  const ParamSpec& spec = space_->Param(state.param_index);
  if (spec.kind == ParamKind::kString) {
    // Text files accept only their known tokens; the prober skips these.
    for (size_t c = 0; c < spec.choices.size(); ++c) {
      if (spec.choices[c] == value) {
        state.current = static_cast<int64_t>(c);
        return ProbeWriteResult::kOk;
      }
    }
    return ProbeWriteResult::kRejected;
  }
  const char* begin = value.c_str();
  char* end = nullptr;
  long long parsed = std::strtoll(begin, &end, 10);
  if (end == begin || *end != '\0') {
    return ProbeWriteResult::kRejected;
  }
  int64_t v = static_cast<int64_t>(parsed);
  // Far outside the true range: the kernel tries to apply it and the guest
  // falls over (the undocumented-validity hazard of §3.4).
  double limit = 100.0 * static_cast<double>(std::max<int64_t>(1, spec.max_value));
  if (static_cast<double>(v) > limit && spec.kind != ParamKind::kBool) {
    RebootToDefaults();
    return ProbeWriteResult::kCrash;
  }
  if (!spec.InDomain(v)) {
    return ProbeWriteResult::kRejected;
  }
  state.current = v;
  return ProbeWriteResult::kOk;
}

}  // namespace wayfinder
