// Simulated /proc/sys + /sys pseudo-filesystem of a booted guest.
//
// Backs the §3.4 runtime-space prober: exposes every runtime parameter of a
// ConfigSpace as a writable pseudo-file whose *true* accepted range is known
// only to the simulation (the prober has to discover it by probing, exactly
// like on real hardware). Writes far outside the accepted range can crash
// the guest; the guest reboots to defaults automatically.
#ifndef WAYFINDER_SRC_SIMOS_SYSFS_H_
#define WAYFINDER_SRC_SIMOS_SYSFS_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/configspace/config_space.h"
#include "src/configspace/probe.h"
#include "src/util/rng.h"

namespace wayfinder {

class SimulatedSysfs : public RuntimeProbeTarget {
 public:
  // Exposes the runtime parameters of `space`. A hashed ~10% of files are
  // read-only in practice (writes rejected), and integer writes beyond
  // 100x the true maximum crash the guest. With `bracket_choice_files`,
  // categorical files render in the /sys multi-choice convention -- every
  // token listed with the active one bracketed ("noop [mq-deadline]
  // kyber") -- which the prober can mine for the full choice set.
  explicit SimulatedSysfs(const ConfigSpace* space, uint64_t seed = 0x5f5f5f,
                          bool bracket_choice_files = false);

  std::vector<std::string> ListWritablePaths() override;
  std::optional<std::string> ReadValue(const std::string& path) override;
  ProbeWriteResult TryWrite(const std::string& path, const std::string& value) override;

  // Number of times a write crashed (and rebooted) the guest.
  size_t crash_count() const { return crash_count_; }

 private:
  struct FileState {
    size_t param_index = 0;
    bool locked = false;      // Writes rejected outright.
    int64_t current = 0;      // Live value (reset to default on crash).
  };

  void RebootToDefaults();

  const ConfigSpace* space_;
  bool bracket_choice_files_;
  std::unordered_map<std::string, FileState> files_;
  std::vector<std::string> paths_;
  size_t crash_count_ = 0;
};

}  // namespace wayfinder

#endif  // WAYFINDER_SRC_SIMOS_SYSFS_H_
