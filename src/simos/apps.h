// Application and benchmark-tool profiles for the simulated substrate.
//
// The paper evaluates four applications with distinct OS-sensitivity
// classes: Nginx (network-intensive, benchmarked with wrk), Redis
// (network-intensive, redis-benchmark), SQLite (storage-intensive, LevelDB's
// db_bench SQLite harness), and the NAS Parallel Benchmarks (CPU/memory-
// intensive). The profile captures everything the simulated testbench needs:
// which kernel subsystems the app stresses, the default-configuration
// baseline for its metric, run-to-run noise, and how long one benchmark run
// takes in simulated seconds.
#ifndef WAYFINDER_SRC_SIMOS_APPS_H_
#define WAYFINDER_SRC_SIMOS_APPS_H_

#include <string>
#include <vector>

namespace wayfinder {

enum class AppId { kNginx, kRedis, kSqlite, kNpb };

// Per-subsystem sensitivity weights in [0, 1]; 0 means the app's metric does
// not react to that subsystem at all.
struct SubsystemWeights {
  double net = 0.0;
  double vm = 0.0;
  double sched = 0.0;
  double block = 0.0;
  double fs = 0.0;
  double debug = 0.0;
  double security = 0.0;
  double power = 0.0;
  double drivers = 0.0;
  double crypto = 0.0;
  double kernel = 0.0;
  double app = 0.0;  // Application-level knobs (Unikraft/Nginx space).

  double For(const std::string& subsystem) const;
};

struct AppProfile {
  AppId id = AppId::kNginx;
  std::string name;           // "nginx"
  std::string bench_tool;     // "wrk"
  std::string metric_name;    // "throughput"
  std::string metric_unit;    // "req/s"
  bool maximize = true;       // SQLite minimizes µs/op.
  double baseline = 0.0;      // Metric under the default configuration.
  double noise_cv = 0.02;     // Run-to-run coefficient of variation.
  int cores = 1;
  // One benchmark run costs this many simulated seconds (± spread).
  double test_seconds_mean = 60.0;
  double test_seconds_spread = 15.0;
  SubsystemWeights weights;
  // Overall scale of how much OS configuration can move the metric, in log
  // space (0.4 ~ "±40% swing possible", matching Figure 2 for Nginx).
  double os_sensitivity = 0.4;
};

// Profile registry.
const AppProfile& GetApp(AppId id);
const std::vector<AppProfile>& AllApps();
const char* AppName(AppId id);
// Lookup by name ("nginx", "redis", "sqlite", "npb"); aborts on unknown
// names — use TryParseApp for user input.
AppId ParseApp(const std::string& name);
bool TryParseApp(const std::string& name, AppId* out);

}  // namespace wayfinder

#endif  // WAYFINDER_SRC_SIMOS_APPS_H_
