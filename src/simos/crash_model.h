// Configuration crash model.
//
// The paper observes that about one third of random Linux configurations
// fail: they do not build, do not boot, or crash/hang at runtime (§2.2,
// grouped as "crashes"). This model decides deterministically (plus a small
// flake probability) whether a configuration fails and at which stage:
//
//   * fragile numeric parameters: a hashed subset of int/hex parameters has
//     a danger zone at one extreme of its domain — values inside it crash
//     (the undocumented-validity problem of §3.4);
//   * essential compile-time options: a hashed subset of default-on
//     bool/tristate compile options cannot be disabled without breaking the
//     boot (what Undertaker/Cozart must learn to keep);
//   * curated rules: a few real failure modes (memory over-reservation,
//     overcommit strictness vs. allocator-heavy apps, undersized unikernel
//     heaps, NR_CPUS below the application's core count).
//
// Being mostly deterministic in the configuration is what makes crashes
// *learnable* — DeepTune's crash head exploits exactly this structure.
#ifndef WAYFINDER_SRC_SIMOS_CRASH_MODEL_H_
#define WAYFINDER_SRC_SIMOS_CRASH_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/configspace/config_space.h"
#include "src/simos/apps.h"
#include "src/util/rng.h"

namespace wayfinder {

struct CrashOutcome {
  bool crashed = false;
  ParamPhase stage = ParamPhase::kRuntime;  // Build / boot / run failure.
  std::string reason;
};

class CrashModel {
 public:
  explicit CrashModel(const ConfigSpace* space, uint64_t seed = 0xdeadc0de);

  // Deterministic verdict plus a small random flake (default 0.5%).
  CrashOutcome Check(AppId app, const Configuration& config, Rng& run_rng) const;

  // Deterministic part only (no flake); used by tests and by the analysis
  // of prediction accuracy.
  CrashOutcome CheckDeterministic(AppId app, const Configuration& config) const;

  // True when disabling this compile-time option breaks the boot. The
  // Cozart-style debloater consults this: dynamic analysis sees these
  // options' code execute during boot and keeps them.
  bool IsEssentialCompileOption(size_t param_index) const;

  // Indices of fragile numeric parameters with their danger-zone start in
  // encoded [0,1] (crash when encoded value >= threshold or <= threshold,
  // per `high_side`). Exposed for tests.
  struct FragileZone {
    size_t param = 0;
    double threshold = 0.0;
    bool high_side = true;
  };
  const std::vector<FragileZone>& fragile_zones() const { return fragile_zones_; }

  // Essential options, as consecutive pairs (crash requires both of a pair
  // disabled). Exposed for tests.
  const std::vector<size_t>& essential_pairs() const { return essential_pairs_; }

  // The essential tristate option ("n" fails to boot), if the space has one.
  std::optional<size_t> essential_tristate() const { return essential_tristate_; }

  double flake_probability() const { return flake_probability_; }
  void set_flake_probability(double p) { flake_probability_ = p; }

 private:
  const ConfigSpace* space_;
  std::vector<FragileZone> fragile_zones_;
  std::vector<bool> essential_;
  std::vector<size_t> essential_pairs_;
  std::optional<size_t> essential_tristate_;
  double flake_probability_ = 0.005;
};

}  // namespace wayfinder

#endif  // WAYFINDER_SRC_SIMOS_CRASH_MODEL_H_
