#include "src/simos/fault_plan.h"

#include <cstdio>

namespace wayfinder {

bool FaultPlan::Active() const {
  return flake_prob > 0.0 || timeout_prob > 0.0 || hang_prob > 0.0 ||
         noise_sigma > 0.0 || drift_at > 0.0;
}

bool FaultPlan::InjectsTransients() const {
  return flake_prob > 0.0 || timeout_prob > 0.0 || hang_prob > 0.0;
}

double FaultPlan::NoiseSigmaFor(uint64_t config_hash) const {
  // Map the hash into [0.5, 1.5): configurations deterministically differ in
  // how noisy their measurements are.
  double unit = static_cast<double>(config_hash % 1024u) / 1024.0;
  return noise_sigma * (0.5 + unit);
}

std::string FaultPlan::Describe() const {
  if (!Active()) {
    return "clean";
  }
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "flake=%.3g timeout=%.3g hang=%.3g watchdog=%.0fs noise=%.3g "
                "drift@%.0fs x%.2g",
                flake_prob, timeout_prob, hang_prob, timeout_seconds, noise_sigma,
                drift_at, drift_magnitude);
  return buffer;
}

}  // namespace wayfinder
