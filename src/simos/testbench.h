// The simulated build/boot/benchmark testbench.
//
// One Wayfinder iteration evaluates a configuration by (1) building an OS
// image, (2) booting it in a VM, and (3) running the application benchmark
// (§3.1). This class simulates those phases: each consumes simulated seconds
// on the caller's SimClock with realistic durations, and the outcome comes
// from the deterministic performance/crash/memory models. The build phase
// can be skipped when only runtime parameters changed since the previously
// built image — the platform layer decides that (the paper's build-skip
// optimization).
#ifndef WAYFINDER_SRC_SIMOS_TESTBENCH_H_
#define WAYFINDER_SRC_SIMOS_TESTBENCH_H_

#include <memory>
#include <string>

#include "src/configspace/config_space.h"
#include "src/simos/apps.h"
#include "src/simos/crash_model.h"
#include "src/simos/fault_plan.h"
#include "src/simos/memory_model.h"
#include "src/simos/perf_model.h"
#include "src/util/rng.h"
#include "src/util/sim_clock.h"

namespace wayfinder {

// Result of evaluating one configuration end to end.
struct TrialOutcome {
  // kTimeout is the transient watchdog class (benchmark exceeded its budget
  // or hung and was killed); unlike the other failures it says nothing
  // about the configuration — the same config would likely succeed retried.
  enum class Status { kOk, kBuildFailed, kBootFailed, kRunCrashed, kTimeout };

  Status status = Status::kOk;
  bool ok() const { return status == Status::kOk; }
  // Transient-class failure: infrastructure noise a re-measurement policy
  // may retry, as opposed to a config-caused crash a searcher should learn.
  // Timeouts are transient by status; flakes carry a "transient:" reason.
  bool transient() const {
    return status == Status::kTimeout ||
           (status != Status::kOk && failure_reason.rfind("transient:", 0) == 0);
  }

  double metric = 0.0;        // App metric (valid when ok()).
  double memory_mb = 0.0;     // Boot footprint (valid unless build failed).
  double build_seconds = 0.0;  // 0 when the build was skipped.
  double boot_seconds = 0.0;
  double run_seconds = 0.0;
  bool build_skipped = false;
  std::string failure_reason;

  double TotalSeconds() const { return build_seconds + boot_seconds + run_seconds; }
};

// Stable text names for TrialOutcome::Status — the shared vocabulary of the
// checkpoint and trial-store file formats (one list, so the formats cannot
// drift apart).
const char* TrialStatusName(TrialOutcome::Status status);
bool TrialStatusFromName(const std::string& name, TrialOutcome::Status* status);

struct TestbenchOptions {
  Substrate substrate = Substrate::kLinuxKvm;
  uint64_t seed = 0xbe27c4;
  double default_footprint_mb = 210.0;
  // Probability that a trial fails for reasons unrelated to the
  // configuration (host hiccup, QEMU flake, benchmark-tool timeout). Such
  // failures are label noise for the searchers: the same configuration
  // would succeed on retry. 0 disables injection.
  double transient_flake_prob = 0.0;
  // When positive, every phase of every evaluation costs exactly this many
  // simulated seconds (crashes included), so all trials have equal total
  // duration. A testing seam for executor-equivalence pins that need the
  // sliding-window schedule to degenerate to lock-step rounds; outcomes
  // (crash/metric/memory) are computed normally. 0 = realistic durations.
  double fixed_trial_seconds = 0.0;
  // Hostile-world scenario: timeouts, hangs, flakes, heteroscedastic noise,
  // and scheduled workload drift. The default (inactive) plan is a strict
  // no-op — zero extra RNG draws — so existing trajectory pins stay
  // bit-identical.
  FaultPlan faults;
};

class Testbench {
 public:
  Testbench(const ConfigSpace* space, AppId app, const TestbenchOptions& options = {});

  // Evaluates `config`. When `skip_build` is set the compile/boot image is
  // reused (the caller must have verified compile/boot params are unchanged)
  // and build failures cannot occur. When `boot_only` is set the application
  // benchmark is skipped: the trial measures boot memory only (the Figure 10
  // memory-footprint experiments boot images without running a workload).
  // Advances `clock` by each phase's cost.
  TrialOutcome Evaluate(const Configuration& config, Rng& rng, SimClock* clock,
                        bool skip_build = false, bool boot_only = false);

  AppId app() const { return app_; }
  const ConfigSpace& space() const { return *space_; }
  const PerfModel& perf_model() const { return perf_model_; }
  const CrashModel& crash_model() const { return crash_model_; }
  const MemoryModel& memory_model() const { return memory_model_; }
  Substrate substrate() const { return options_.substrate; }

  // Duration models, exposed for the Figure 8 loop breakdown.
  double SampleBuildSeconds(Rng& rng) const;
  double SampleBootSeconds(Rng& rng) const;
  double SampleRunSeconds(Rng& rng) const;

  // Where this bench's clock sits in the session's global simulated
  // timeline. A serial session evaluates on the global clock directly
  // (origin 0); batch executors evaluate on per-slot clones with local
  // clocks starting at 0, and set the round's start time here so scheduled
  // faults (FaultPlan::drift_at) see global time.
  void SetSimTimeOrigin(double t) { sim_time_origin_ = t; }

 private:
  // The realistic-duration evaluation; the public Evaluate overrides its
  // durations when options_.fixed_trial_seconds is set.
  TrialOutcome EvaluateImpl(const Configuration& config, Rng& rng, SimClock* clock,
                            bool skip_build, bool boot_only);
  const ConfigSpace* space_;
  AppId app_;
  TestbenchOptions options_;
  PerfModel perf_model_;
  CrashModel crash_model_;
  MemoryModel memory_model_;
  // The post-drift landscape (FaultPlan::drift_at > 0 only). Shared and
  // immutable, so Testbench clones stay cheaply copyable.
  std::shared_ptr<const PerfModel> drifted_perf_;
  double sim_time_origin_ = 0.0;
};

}  // namespace wayfinder

#endif  // WAYFINDER_SRC_SIMOS_TESTBENCH_H_
