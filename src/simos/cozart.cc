#include "src/simos/cozart.h"

namespace wayfinder {

CozartDebloater::CozartDebloater(const ConfigSpace* space, const CrashModel* crash_model,
                                 double usage_threshold)
    : space_(space), crash_model_(crash_model), usage_threshold_(usage_threshold) {}

DebloatResult CozartDebloater::Debloat(AppId app) const {
  const AppProfile& profile = GetApp(app);
  DebloatResult result;
  result.baseline = space_->DefaultConfiguration();
  for (size_t i = 0; i < space_->Size(); ++i) {
    const ParamSpec& spec = space_->Param(i);
    if (spec.phase != ParamPhase::kCompileTime) {
      continue;
    }
    if (spec.kind != ParamKind::kBool && spec.kind != ParamKind::kTristate) {
      continue;
    }
    ++result.options_considered;
    if (result.baseline.Raw(i) == 0) {
      continue;  // Already off.
    }
    // The dynamic trace shows this subsystem's code running under the
    // workload: keep everything in it.
    if (profile.weights.For(spec.subsystem) >= usage_threshold_) {
      continue;
    }
    // Boot-essential options show up in the trace during boot.
    if (crash_model_->IsEssentialCompileOption(i)) {
      continue;
    }
    result.baseline.SetRaw(i, 0);
    result.disabled.push_back(i);
  }
  // Respect Kconfig dependencies after the sweep.
  space_->ApplyConstraints(&result.baseline);
  return result;
}

size_t CozartDebloater::FreezeDisabled(ConfigSpace* space, const DebloatResult& result) {
  size_t frozen = 0;
  for (size_t index : result.disabled) {
    if (space->Freeze(space->Param(index).name, 0)) {
      ++frozen;
    }
  }
  return frozen;
}

}  // namespace wayfinder
