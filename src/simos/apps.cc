#include "src/simos/apps.h"

#include <cstdlib>

namespace wayfinder {

double SubsystemWeights::For(const std::string& subsystem) const {
  if (subsystem == "net") {
    return net;
  }
  if (subsystem == "vm") {
    return vm;
  }
  if (subsystem == "sched") {
    return sched;
  }
  if (subsystem == "block") {
    return block;
  }
  if (subsystem == "fs") {
    return fs;
  }
  if (subsystem == "debug") {
    return debug;
  }
  if (subsystem == "security") {
    return security;
  }
  if (subsystem == "power") {
    return power;
  }
  if (subsystem == "drivers") {
    return drivers;
  }
  if (subsystem == "crypto") {
    return crypto;
  }
  if (subsystem == "app") {
    return app;
  }
  return kernel;
}

namespace {

std::vector<AppProfile> MakeApps() {
  std::vector<AppProfile> apps(4);

  // Nginx: network-intensive web server, throughput via wrk (Table 2
  // baseline 15731 req/s on the paper's testbed). The most OS-sensitive of
  // the four: Wayfinder finds +24%.
  AppProfile& nginx = apps[0];
  nginx.id = AppId::kNginx;
  nginx.name = "nginx";
  nginx.bench_tool = "wrk";
  nginx.metric_name = "throughput";
  nginx.metric_unit = "req/s";
  nginx.maximize = true;
  nginx.baseline = 15731.0;
  nginx.noise_cv = 0.025;
  nginx.cores = 16;
  nginx.test_seconds_mean = 70.0;
  nginx.test_seconds_spread = 20.0;
  nginx.weights = {.net = 1.0,
                   .vm = 0.30,
                   .sched = 0.40,
                   .block = 0.05,
                   .fs = 0.15,
                   .debug = 0.65,
                   .security = 0.35,
                   .power = 0.25,
                   .drivers = 0.05,
                   .crypto = 0.02,
                   .kernel = 0.15,
                   .app = 1.0};
  nginx.os_sensitivity = 0.40;

  // Redis: network-intensive key-value store, single-threaded (Table 2
  // baseline 58000 req/s). Wayfinder finds +14%.
  AppProfile& redis = apps[1];
  redis.id = AppId::kRedis;
  redis.name = "redis";
  redis.bench_tool = "redis-benchmark";
  redis.metric_name = "throughput";
  redis.metric_unit = "req/s";
  redis.maximize = true;
  redis.baseline = 58000.0;
  redis.noise_cv = 0.03;
  redis.cores = 1;
  redis.test_seconds_mean = 62.0;
  redis.test_seconds_spread = 15.0;
  redis.weights = {.net = 0.90,
                   .vm = 0.45,
                   .sched = 0.35,
                   .block = 0.04,
                   .fs = 0.10,
                   .debug = 0.60,
                   .security = 0.30,
                   .power = 0.20,
                   .drivers = 0.04,
                   .crypto = 0.02,
                   .kernel = 0.14,
                   .app = 0.0};
  redis.os_sensitivity = 0.28;

  // SQLite: storage-intensive (LevelDB's db_bench SQLite INSERT workload,
  // 284 µs/op, minimized). The default configuration is already close to
  // optimal for this scenario (Table 2 reports 1.00x).
  AppProfile& sqlite = apps[2];
  sqlite.id = AppId::kSqlite;
  sqlite.name = "sqlite";
  sqlite.bench_tool = "db_bench_sqlite3";
  sqlite.metric_name = "latency";
  sqlite.metric_unit = "us/op";
  sqlite.maximize = false;
  sqlite.baseline = 284.0;
  sqlite.noise_cv = 0.02;
  sqlite.cores = 1;
  sqlite.test_seconds_mean = 48.0;
  sqlite.test_seconds_spread = 10.0;
  sqlite.weights = {.net = 0.02,
                    .vm = 0.50,
                    .sched = 0.25,
                    .block = 0.90,
                    .fs = 0.80,
                    .debug = 0.55,
                    .security = 0.20,
                    .power = 0.15,
                    .drivers = 0.03,
                    .crypto = 0.02,
                    .kernel = 0.12,
                    .app = 0.0};
  sqlite.os_sensitivity = 0.22;

  // NPB: OpenMP FT/MG/CG/IS aggregate (1497 Mop/s). CPU/memory bound: the
  // OS configuration has close to no impact (+2% at best).
  AppProfile& npb = apps[3];
  npb.id = AppId::kNpb;
  npb.name = "npb";
  npb.bench_tool = "npb-suite";
  npb.metric_name = "throughput";
  npb.metric_unit = "Mop/s";
  npb.maximize = true;
  npb.baseline = 1497.0;
  npb.noise_cv = 0.015;
  npb.cores = 16;
  npb.test_seconds_mean = 75.0;
  npb.test_seconds_spread = 18.0;
  // Distinctively memory/scheduler-bound: the parameters that matter for
  // NPB (hugepages, CPU scheduling granularity) are not the ones the
  // system-intensive apps care about — the Figure 5 dissimilarity.
  npb.weights = {.net = 0.005,
                 .vm = 0.10,
                 .sched = 0.08,
                 .block = 0.005,
                 .fs = 0.005,
                 .debug = 0.02,
                 .security = 0.02,
                 .power = 0.04,
                 .drivers = 0.005,
                 .crypto = 0.005,
                 .kernel = 0.02,
                 .app = 0.0};
  npb.os_sensitivity = 0.05;

  return apps;
}

}  // namespace

const std::vector<AppProfile>& AllApps() {
  static const std::vector<AppProfile> apps = MakeApps();
  return apps;
}

const AppProfile& GetApp(AppId id) { return AllApps()[static_cast<size_t>(id)]; }

const char* AppName(AppId id) {
  switch (id) {
    case AppId::kNginx:
      return "nginx";
    case AppId::kRedis:
      return "redis";
    case AppId::kSqlite:
      return "sqlite";
    case AppId::kNpb:
      return "npb";
  }
  return "?";
}

bool TryParseApp(const std::string& name, AppId* out) {
  for (const AppProfile& app : AllApps()) {
    if (app.name == name) {
      *out = app.id;
      return true;
    }
  }
  return false;
}

AppId ParseApp(const std::string& name) {
  AppId id = AppId::kNginx;
  if (!TryParseApp(name, &id)) {
    std::abort();
  }
  return id;
}

}  // namespace wayfinder
