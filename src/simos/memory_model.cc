#include "src/simos/memory_model.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_map>

#include "src/util/rng.h"

namespace wayfinder {

namespace {

// Hand-set costs (MB at fully enabled) for compile options whose footprint
// is well known. Negative entries are handled via value scaling below.
const std::unordered_map<std::string, double>& CuratedCosts() {
  static const std::unordered_map<std::string, double> costs = {
      {"CONFIG_MODULES", 6.0},      {"CONFIG_IKCONFIG", 2.0},
      {"CONFIG_DEBUG_KERNEL", 9.0}, {"CONFIG_KASAN", 40.0},
      {"CONFIG_LOCKDEP", 6.0},      {"CONFIG_FTRACE", 4.0},
      {"CONFIG_SCHED_DEBUG", 1.5},  {"CONFIG_MEMCG", 3.0},
      {"CONFIG_CGROUPS", 2.5},      {"CONFIG_NUMA", 2.0},
      {"CONFIG_TRANSPARENT_HUGEPAGE", 3.0},
      {"CONFIG_COMPACTION", 1.0},   {"CONFIG_SWAP", 1.5},
      {"CONFIG_BLK_DEV_IO_TRACE", 1.2},
      {"CONFIG_RETPOLINE", 0.3},    {"CONFIG_SMP", 2.0},
  };
  return costs;
}

}  // namespace

MemoryModel::MemoryModel(const ConfigSpace* space, double default_footprint_mb, uint64_t seed)
    : space_(space), default_footprint_mb_(default_footprint_mb) {
  option_cost_mb_.assign(space_->Size(), 0.0);
  for (size_t i = 0; i < space_->Size(); ++i) {
    const ParamSpec& spec = space_->Param(i);
    if (spec.phase != ParamPhase::kCompileTime) {
      continue;
    }
    auto curated = CuratedCosts().find(spec.name);
    if (curated != CuratedCosts().end()) {
      option_cost_mb_[i] = curated->second;
      continue;
    }
    if (spec.kind == ParamKind::kBool || spec.kind == ParamKind::kTristate) {
      uint64_t h = HashCombine(seed, StableHash(spec.name));
      // Most features are cheap; a hashed tail is moderately expensive.
      double u = static_cast<double>(h % 100000) / 100000.0;
      option_cost_mb_[i] = 0.05 + 1.2 * u * u;
    }
  }
  // Anchor the default configuration at the published footprint.
  Configuration def = space_->DefaultConfiguration();
  anchor_offset_ = default_footprint_mb_ - RawCost(def);
}

double MemoryModel::RawCost(const Configuration& config) const {
  double total = 0.0;
  for (size_t i = 0; i < space_->Size(); ++i) {
    const ParamSpec& spec = space_->Param(i);
    double cost = option_cost_mb_[i];
    if (cost > 0.0) {
      double enabled = static_cast<double>(config.Raw(i)) /
                       (spec.kind == ParamKind::kTristate ? 2.0 : 1.0);
      total += cost * enabled;
      continue;
    }
    // A few numeric options scale memory directly.
    if (spec.name == "CONFIG_NR_CPUS") {
      total += 0.02 * static_cast<double>(config.Raw(i));
    } else if (spec.name == "CONFIG_LOG_BUF_SHIFT") {
      total += std::pow(2.0, static_cast<double>(config.Raw(i))) / (1024.0 * 1024.0);
    } else if (spec.name == "vm.min_free_kbytes") {
      // Reserved free memory shows up in boot-time consumption.
      total += 0.1 * static_cast<double>(config.Raw(i)) / 1024.0;
    }
  }
  return total;
}

double MemoryModel::FootprintMb(const Configuration& config) const {
  return std::max(24.0, anchor_offset_ + RawCost(config));
}

double MemoryModel::SampleFootprintMb(const Configuration& config, Rng& run_rng) const {
  return FootprintMb(config) * std::exp(run_rng.Normal(0.0, 0.003));
}

double MemoryModel::MinFootprintMb() const {
  Configuration config = space_->DefaultConfiguration();
  for (size_t i = 0; i < space_->Size(); ++i) {
    const ParamSpec& spec = space_->Param(i);
    if (spec.phase != ParamPhase::kCompileTime) {
      continue;
    }
    if (spec.kind == ParamKind::kBool || spec.kind == ParamKind::kTristate) {
      config.SetRaw(i, 0);
    } else if (spec.name == "CONFIG_NR_CPUS" || spec.name == "CONFIG_LOG_BUF_SHIFT") {
      config.SetRaw(i, spec.min_value);
    }
  }
  return FootprintMb(config);
}

}  // namespace wayfinder
