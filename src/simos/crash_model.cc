#include "src/simos/crash_model.h"

#include <algorithm>
#include <cmath>
#include <optional>

namespace wayfinder {

namespace {

bool IsNumeric(const ParamSpec& spec) {
  return spec.kind == ParamKind::kInt || spec.kind == ParamKind::kHex;
}

// Parameters governed by curated crash rules are excluded from the hashed
// fragile-zone lottery so the two mechanisms do not overlap.
bool HasCuratedRule(const std::string& name) {
  return name == "vm.min_free_kbytes" || name == "net.ipv4.tcp_rmem_max" ||
         name == "CONFIG_NR_CPUS" || name == "CONFIG_SMP" || name == "CONFIG_UK_HEAP_MB";
}

}  // namespace

CrashModel::CrashModel(const ConfigSpace* space, uint64_t seed) : space_(space) {
  essential_.assign(space_->Size(), false);

  // Fragile numeric parameters: ~10% of numeric options hide a danger zone
  // at one extreme of their (undocumented) range.
  for (size_t i = 0; i < space_->Size(); ++i) {
    const ParamSpec& spec = space_->Param(i);
    if (!IsNumeric(spec) || HasCuratedRule(spec.name)) {
      continue;
    }
    // Narrow or quantized domains would put entire values inside the zone,
    // inflating the random crash rate far beyond the calibrated ~4%/zone.
    if (spec.DomainSize() < 64 || !spec.value_set.empty()) {
      continue;
    }
    uint64_t h = HashCombine(seed, StableHash(spec.name));
    uint64_t s = h;
    if (SplitMix64(s) % 100 >= 12) {
      continue;
    }
    double zone = 0.02 + 0.03 * (static_cast<double>(SplitMix64(s) % 1000) / 1000.0);
    double default_code = space_->EncodeParam(i, spec.default_value);
    FragileZone fragile;
    fragile.param = i;
    fragile.high_side = default_code < 0.7;
    fragile.threshold = fragile.high_side ? 1.0 - zone : zone;
    // Never place the default inside the danger zone: the stock kernel boots.
    bool default_inside = fragile.high_side ? default_code >= fragile.threshold
                                            : default_code <= fragile.threshold;
    if (!default_inside) {
      fragile_zones_.push_back(fragile);
    }
  }

  // Essential compile options, in redundant pairs: the boot fails only when
  // both halves of a pair are disabled (e.g. neither console driver left).
  std::vector<size_t> candidates;
  for (size_t i = 0; i < space_->Size(); ++i) {
    const ParamSpec& spec = space_->Param(i);
    if (spec.phase == ParamPhase::kCompileTime && spec.kind == ParamKind::kBool &&
        spec.default_value == 1 && !HasCuratedRule(spec.name)) {
      candidates.push_back(i);
    }
  }
  // Deterministic selection: sort candidates by hash, take the first four.
  std::sort(candidates.begin(), candidates.end(), [&](size_t a, size_t b) {
    return HashCombine(seed ^ 0xabcd, StableHash(space_->Param(a).name)) <
           HashCombine(seed ^ 0xabcd, StableHash(space_->Param(b).name));
  });
  size_t take = std::min<size_t>(candidates.size(), 2);
  take -= take % 2;  // Whole pairs only.
  for (size_t k = 0; k < take; ++k) {
    essential_[candidates[k]] = true;
    essential_pairs_.push_back(candidates[k]);
  }

  // One essential tristate: the hashed-first default-enabled compile
  // tristate cannot be fully disabled (built-in console/rootfs driver class;
  // "m" still boots from an initramfs). Single-feature and thus learnable.
  std::vector<size_t> tristates;
  for (size_t i = 0; i < space_->Size(); ++i) {
    const ParamSpec& spec = space_->Param(i);
    if (spec.phase == ParamPhase::kCompileTime && spec.kind == ParamKind::kTristate &&
        spec.default_value >= 1) {
      tristates.push_back(i);
    }
  }
  std::sort(tristates.begin(), tristates.end(), [&](size_t a, size_t b) {
    return HashCombine(seed ^ 0x7357, StableHash(space_->Param(a).name)) <
           HashCombine(seed ^ 0x7357, StableHash(space_->Param(b).name));
  });
  if (!tristates.empty()) {
    essential_tristate_ = tristates.front();
    essential_[*essential_tristate_] = true;
  }
}

bool CrashModel::IsEssentialCompileOption(size_t param_index) const {
  return essential_[param_index];
}

CrashOutcome CrashModel::CheckDeterministic(AppId app, const Configuration& config) const {
  const AppProfile& profile = GetApp(app);

  // --- Curated rules ------------------------------------------------------
  auto value_of = [&](const char* name) -> std::optional<int64_t> {
    auto index = space_->Find(name);
    if (!index.has_value()) {
      return std::nullopt;
    }
    return config.Raw(*index);
  };
  // The kernel boots with too few CPUs; the failure surfaces when the
  // multicore workload starts (runtime stage — boot-only memory probes
  // never see it, as in the Figure 10 setup).
  if (auto cpus = value_of("CONFIG_NR_CPUS");
      cpus.has_value() && *cpus < profile.cores) {
    return {true, ParamPhase::kRuntime, "CONFIG_NR_CPUS below application core count"};
  }
  if (auto smp = value_of("CONFIG_SMP"); smp.has_value() && *smp == 0 && profile.cores > 1) {
    return {true, ParamPhase::kRuntime, "CONFIG_SMP disabled on multicore workload"};
  }
  if (auto heap = value_of("CONFIG_UK_HEAP_MB"); heap.has_value() && *heap <= 16) {
    return {true, ParamPhase::kRuntime, "unikernel heap too small for nginx"};
  }
  if (auto mfk = space_->Find("vm.min_free_kbytes"); mfk.has_value()) {
    if (space_->EncodeParam(*mfk, config.Raw(*mfk)) > 0.95) {
      return {true, ParamPhase::kRuntime, "vm.min_free_kbytes reserves nearly all memory"};
    }
  }
  if (auto rmem = space_->Find("net.ipv4.tcp_rmem_max"); rmem.has_value()) {
    bool net_app = app == AppId::kNginx || app == AppId::kRedis;
    if (net_app && space_->EncodeParam(*rmem, config.Raw(*rmem)) < 0.05) {
      return {true, ParamPhase::kRuntime, "tcp receive buffer starved; benchmark hangs"};
    }
  }

  // --- Essential compile options ---------------------------------------------
  if (essential_tristate_.has_value() && config.Raw(*essential_tristate_) == 0) {
    return {true, ParamPhase::kBootTime,
            space_->Param(*essential_tristate_).name + " fully disabled; no boot device"};
  }
  for (size_t k = 0; k + 1 < essential_pairs_.size(); k += 2) {
    if (config.Raw(essential_pairs_[k]) == 0 && config.Raw(essential_pairs_[k + 1]) == 0) {
      return {true, ParamPhase::kBootTime,
              "both redundant essential options disabled: " +
                  space_->Param(essential_pairs_[k]).name + ", " +
                  space_->Param(essential_pairs_[k + 1]).name};
    }
  }

  // --- Fragile numeric zones -----------------------------------------------
  for (const FragileZone& zone : fragile_zones_) {
    double code = space_->EncodeParam(zone.param, config.Raw(zone.param));
    bool inside = zone.high_side ? code >= zone.threshold : code <= zone.threshold;
    if (inside) {
      const ParamSpec& spec = space_->Param(zone.param);
      ParamPhase stage = spec.phase;
      return {true, stage, spec.name + " outside its undocumented valid range"};
    }
  }
  return {};
}

CrashOutcome CrashModel::Check(AppId app, const Configuration& config, Rng& run_rng) const {
  CrashOutcome outcome = CheckDeterministic(app, config);
  if (outcome.crashed) {
    return outcome;
  }
  if (run_rng.Bernoulli(flake_probability_)) {
    return {true, ParamPhase::kRuntime, "transient benchmark failure"};
  }
  return {};
}

}  // namespace wayfinder
