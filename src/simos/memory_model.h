// Kernel image memory-footprint model (Figure 10 / Figure 11 / Table 4).
//
// The paper measures the boot-time memory consumption of RISC-V Linux
// images under QEMU emulation: the default configuration costs 210 MB and
// Wayfinder's compile-time search brings it to ~192 MB. Our model charges a
// fixed base plus a per-option cost for every enabled compile-time feature
// (hashed for synthetic options, hand-set for the heavyweights: KASAN,
// LOG_BUF_SHIFT, NR_CPUS, MODULES, ...), anchored so the default
// configuration lands exactly on 210 MB.
#ifndef WAYFINDER_SRC_SIMOS_MEMORY_MODEL_H_
#define WAYFINDER_SRC_SIMOS_MEMORY_MODEL_H_

#include <cstdint>
#include <vector>

#include "src/configspace/config_space.h"

namespace wayfinder {

class MemoryModel {
 public:
  // `default_footprint_mb` anchors the default configuration's footprint.
  MemoryModel(const ConfigSpace* space, double default_footprint_mb = 210.0,
              uint64_t seed = 0xfee1600d);

  // Boot-time memory footprint in MB (deterministic).
  double FootprintMb(const Configuration& config) const;

  // With per-boot measurement noise.
  double SampleFootprintMb(const Configuration& config, Rng& run_rng) const;

  double default_footprint_mb() const { return default_footprint_mb_; }

  // Lower bound over per-option choices (not necessarily bootable).
  double MinFootprintMb() const;

 private:
  double RawCost(const Configuration& config) const;

  const ConfigSpace* space_;
  double default_footprint_mb_;
  double anchor_offset_ = 0.0;
  std::vector<double> option_cost_mb_;  // Cost when fully enabled.
};

}  // namespace wayfinder

#endif  // WAYFINDER_SRC_SIMOS_MEMORY_MODEL_H_
