// Deterministic application-performance model over OS configurations.
//
// This is the substitution for the paper's physical testbed (Xeon server,
// KVM guests, wrk/redis-benchmark/db_bench/NPB): a seeded, deterministic
// function from (application, configuration) to the application's metric,
// calibrated against every observable statistic the paper reports:
//
//   * the default configuration reproduces the Table 2 baselines exactly;
//   * ~100 curated real parameters carry hand-modeled response curves that
//     match published tuning knowledge (net.core.somaxconn helps, printk
//     verbosity hurts, KASAN is catastrophic, ...), so the "high-impact
//     parameters" Wayfinder reports in §4.1 are discoverable here too;
//   * every synthetic parameter gets a small hashed effect shared across
//     applications and scaled by the app's subsystem sensitivity, plus an
//     app-specific residual — which reproduces the Figure 5 cross-similarity
//     structure (Nginx/Redis/SQLite correlated, NPB not);
//   * per-application totals are rescaled so the best reachable improvement
//     and the worst random downside match Figure 2 / Figure 6 / Table 2;
//   * a handful of pairwise interaction terms make the landscape
//     non-additive, so learning-based search has an edge over random.
#ifndef WAYFINDER_SRC_SIMOS_PERF_MODEL_H_
#define WAYFINDER_SRC_SIMOS_PERF_MODEL_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/configspace/config_space.h"
#include "src/simos/apps.h"
#include "src/util/rng.h"

namespace wayfinder {

// Which substrate the configurations drive; affects baselines and the
// magnitude of reachable improvement (a unikernel's configuration moves its
// performance far more than Linux's, §4.4).
enum class Substrate { kLinuxKvm, kUnikraftKvm, kLinuxRiscvQemu };

class PerfModel {
 public:
  PerfModel(const ConfigSpace* space, Substrate substrate = Substrate::kLinuxKvm,
            uint64_t seed = 0x5eedf00d);

  const ConfigSpace& space() const { return *space_; }
  Substrate substrate() const { return substrate_; }

  // Metric for the app under this configuration: the deterministic model
  // value, without run-to-run noise. Higher-is-better apps get
  // baseline*exp(goodness); lower-is-better apps baseline*exp(-goodness).
  double MeanMetric(AppId app, const Configuration& config) const;

  // One benchmark-run sample: MeanMetric with multiplicative noise drawn
  // from `run_rng` at the app's noise_cv.
  double SampleMetric(AppId app, const Configuration& config, Rng& run_rng) const;

  // The metric of the default configuration (== the app baseline for this
  // substrate).
  double BaselineMetric(AppId app) const;

  // Log-space "goodness" relative to the default configuration (0 for the
  // default; positive is better for the app regardless of metric polarity).
  double Goodness(AppId app, const Configuration& config) const;

  // Ground-truth per-parameter impact magnitude (max |log response| over the
  // domain), used by the Figure 5 similarity analysis and by tests.
  std::vector<double> TrueImportance(AppId app) const;

  // Upper bound on reachable improvement: sum of per-parameter positive
  // headroom in log space.
  double MaxHeadroom(AppId app) const;

 private:
  enum class Shape { kLinearUp, kLinearDown, kPeak, kValley, kStepHigh };

  struct ParamEffect {
    double magnitude = 0.0;  // Log-space amplitude after all scaling.
    Shape shape = Shape::kLinearUp;
    double peak = 0.5;          // Peak/threshold position in encoded [0,1].
    double default_code = 0.0;  // Encoded default (response anchors to 0 here).
  };

  struct Interaction {
    size_t a = 0;
    size_t b = 0;
    double coefficient = 0.0;  // Applied to the product of deviations.
  };

  static double ShapeValue(const ParamEffect& effect, double x);
  // Response anchored at the default (0 there), before pos/neg rescale.
  static double RawResponse(const ParamEffect& effect, double x);
  double Response(AppId app, size_t param, double x) const;

  void BuildEffects(AppId app, uint64_t seed);
  void RescaleEffects(AppId app);
  void BuildInteractions(AppId app, uint64_t seed);

  const ConfigSpace* space_;
  Substrate substrate_;
  std::array<std::vector<ParamEffect>, 4> effects_;
  std::array<std::vector<Interaction>, 4> interactions_;
  std::array<double, 4> pos_scale_{1.0, 1.0, 1.0, 1.0};
  std::array<double, 4> neg_scale_{1.0, 1.0, 1.0, 1.0};
  std::array<double, 4> baseline_{};
  // Global "kernel bloat drag": enabled compile-time mass slows the app
  // down slightly; this is the effect Cozart-style debloating recovers.
  std::array<double, 4> bloat_drag_{};
  double default_bloat_ = 0.0;
  std::vector<double> compile_mass_;  // Per-param bloat contribution weight.
};

}  // namespace wayfinder

#endif  // WAYFINDER_SRC_SIMOS_PERF_MODEL_H_
