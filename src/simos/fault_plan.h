// Deterministic hostile-world scenario description for the Testbench.
//
// A FaultPlan models the failure classes a physical tuning fleet sees
// (§3.5's "the testbench must tolerate failures"): benchmark timeouts,
// hangs killed by a watchdog, transient infrastructure flakes, noisy repeat
// measurements, and the workload itself shifting mid-search. Each class is
// injected from the trial's own RNG stream, so injection is a pure function
// of (plan, trial seed) — two runs with the same plan and seeds produce the
// same faults, and the session's counter-derived retry streams can clear a
// transient fault deterministically.
//
// An EMPTY plan is a strict no-op: the Testbench makes zero extra RNG draws
// when every knob is at its default, so all pre-existing trajectory pins
// stay bit-identical (pinned by fault_plan_test).
#ifndef WAYFINDER_SRC_SIMOS_FAULT_PLAN_H_
#define WAYFINDER_SRC_SIMOS_FAULT_PLAN_H_

#include <cstdint>
#include <string>

namespace wayfinder {

struct FaultPlan {
  // Probability a trial fails at a uniformly chosen stage for reasons
  // unrelated to the configuration (host hiccup, QEMU flake). Combines
  // independently with TestbenchOptions::transient_flake_prob.
  double flake_prob = 0.0;
  // Probability the benchmark phase exceeds the watchdog budget; the trial
  // is charged `timeout_seconds` of simulated run time and reports
  // TrialOutcome::Status::kTimeout.
  double timeout_prob = 0.0;
  // Probability the workload hangs and the watchdog kills it — same charge
  // and status as a timeout, distinguished by failure_reason.
  double hang_prob = 0.0;
  // The watchdog window (simulated seconds) charged by a timeout or hang.
  double timeout_seconds = 600.0;
  // Heteroscedastic measurement noise: a successful trial's metric is
  // multiplied by exp(Normal(0, sigma_c)) where sigma_c depends on the
  // configuration (NoiseSigmaFor), modeling configs whose measurements are
  // intrinsically noisier. 0 disables.
  double noise_sigma = 0.0;
  // Mid-search workload drift: once a trial STARTS at simulated time >=
  // drift_at, its metric is sampled from a shifted PerfModel (same space
  // and substrate, drifted seed) blended at drift_magnitude. 0 = never.
  double drift_at = 0.0;
  // Blend weight of the drifted landscape in [0, 1]; 1 = full shift.
  double drift_magnitude = 1.0;

  // True when any knob injects anything. An inactive plan is the strict
  // no-op contract above.
  bool Active() const;
  // True when the plan can produce transient-class failures a retry could
  // clear (flake, timeout, hang).
  bool InjectsTransients() const;
  // Config-dependent noise level: noise_sigma scaled into [0.5x, 1.5x] by
  // the configuration hash, so variance is a deterministic property of the
  // configuration — the heteroscedastic part.
  double NoiseSigmaFor(uint64_t config_hash) const;
  // One-line human summary for logs and the wfctl status footer; "clean"
  // when inactive.
  std::string Describe() const;
};

}  // namespace wayfinder

#endif  // WAYFINDER_SRC_SIMOS_FAULT_PLAN_H_
