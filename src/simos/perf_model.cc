#include "src/simos/perf_model.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_map>

namespace wayfinder {

namespace {

// Hand-modeled response curves for the curated parameters. `magnitude` is a
// log-space amplitude before subsystem weighting; positive magnitudes with
// kLinearUp mean "raising the encoded value helps".
struct Curated {
  int shape;        // Matches PerfModel::Shape's order.
  double peak;      // Peak / threshold position in encoded [0, 1].
  double magnitude;
};

constexpr int kLinearUp = 0;
constexpr int kLinearDown = 1;
constexpr int kPeak = 2;
constexpr int kValley = 3;
constexpr int kStepHigh = 4;

const std::unordered_map<std::string, Curated>& CuratedTable() {
  static const std::unordered_map<std::string, Curated> table = {
      // --- Linux runtime: networking --------------------------------------
      {"net.core.somaxconn", {kPeak, 0.85, 0.095}},
      {"net.core.netdev_max_backlog", {kPeak, 0.80, 0.045}},
      {"net.core.rmem_default", {kPeak, 0.75, 0.065}},
      {"net.core.rmem_max", {kPeak, 0.80, 0.020}},
      {"net.core.wmem_default", {kPeak, 0.70, 0.025}},
      {"net.core.wmem_max", {kPeak, 0.75, 0.015}},
      {"net.core.busy_poll", {kPeak, 0.50, 0.040}},
      {"net.core.busy_read", {kPeak, 0.50, 0.015}},
      {"net.core.default_qdisc", {kPeak, 0.33, 0.035}},
      {"net.ipv4.tcp_max_syn_backlog", {kPeak, 0.85, 0.050}},
      {"net.ipv4.tcp_keepalive_time", {kPeak, 0.25, 0.050}},
      {"net.ipv4.tcp_keepalive_intvl", {kPeak, 0.40, 0.008}},
      {"net.ipv4.tcp_fin_timeout", {kPeak, 0.30, 0.015}},
      {"net.ipv4.tcp_tw_reuse", {kLinearUp, 0.5, 0.040}},
      {"net.ipv4.tcp_timestamps", {kLinearUp, 0.5, 0.008}},
      {"net.ipv4.tcp_sack", {kLinearUp, 0.5, 0.010}},
      {"net.ipv4.tcp_window_scaling", {kLinearUp, 0.5, 0.030}},
      {"net.ipv4.tcp_slow_start_after_idle", {kLinearDown, 0.5, 0.015}},
      {"net.ipv4.tcp_rmem_max", {kPeak, 0.80, 0.030}},
      {"net.ipv4.tcp_wmem_max", {kPeak, 0.75, 0.020}},
      {"net.ipv4.tcp_notsent_lowat", {kPeak, 0.45, 0.020}},
      {"net.ipv4.tcp_congestion_control", {kPeak, 0.67, 0.045}},
      {"net.ipv4.ip_local_port_range_lo", {kPeak, 0.30, 0.005}},
      // --- Linux runtime: virtual memory ----------------------------------
      {"vm.swappiness", {kPeak, 0.20, 0.012}},
      {"vm.dirty_ratio", {kPeak, 0.55, 0.020}},
      {"vm.dirty_background_ratio", {kPeak, 0.50, 0.015}},
      {"vm.dirty_expire_centisecs", {kPeak, 0.50, 0.012}},
      {"vm.dirty_writeback_centisecs", {kPeak, 0.50, 0.012}},
      {"vm.stat_interval", {kLinearUp, 0.5, 0.012}},
      {"vm.block_dump", {kLinearDown, 0.5, 0.080}},
      {"vm.overcommit_memory", {kPeak, 0.0, 0.008}},
      {"vm.min_free_kbytes", {kValley, 1.0, 0.030}},
      {"vm.vfs_cache_pressure", {kPeak, 0.40, 0.012}},
      {"vm.page-cluster", {kPeak, 0.40, 0.008}},
      // --- Linux runtime: scheduler ----------------------------------------
      {"kernel.sched_min_granularity_ns", {kPeak, 0.60, 0.020}},
      {"kernel.sched_wakeup_granularity_ns", {kPeak, 0.55, 0.018}},
      {"kernel.sched_migration_cost_ns", {kPeak, 0.70, 0.020}},
      {"kernel.sched_latency_ns", {kPeak, 0.50, 0.015}},
      {"kernel.sched_autogroup_enabled", {kLinearDown, 0.5, 0.010}},
      {"kernel.numa_balancing", {kLinearDown, 0.5, 0.015}},
      {"kernel.sched_rt_runtime_us", {kPeak, 0.95, 0.005}},
      {"kernel.timer_migration", {kLinearDown, 0.5, 0.005}},
      // --- Linux runtime: debug / security ----------------------------------
      {"kernel.printk", {kStepHigh, 0.80, -0.100}},
      {"kernel.printk_delay", {kLinearDown, 0.5, 0.120}},
      {"kernel.nmi_watchdog", {kLinearDown, 0.5, 0.008}},
      {"kernel.randomize_va_space", {kLinearDown, 0.5, 0.006}},
      // --- Linux runtime: fs / block ----------------------------------------
      {"fs.file-max", {kPeak, 0.90, 0.015}},
      {"fs.aio-max-nr", {kPeak, 0.70, 0.008}},
      {"fs.inotify.max_user_watches", {kPeak, 0.50, 0.003}},
      {"block.queue.scheduler", {kPeak, 0.00, 0.020}},
      {"block.queue.read_ahead_kb", {kPeak, 0.65, 0.020}},
      {"block.queue.nr_requests", {kPeak, 0.70, 0.015}},
      {"block.queue.rq_affinity", {kPeak, 0.50, 0.008}},
      {"block.queue.nomerges", {kLinearDown, 0.5, 0.010}},
      {"block.queue.wbt_lat_usec", {kPeak, 0.45, 0.012}},
      // --- Linux boot-time ----------------------------------------------------
      {"mitigations", {kPeak, 0.50, 0.050}},
      {"preempt", {kPeak, 0.00, 0.025}},
      {"transparent_hugepage", {kPeak, 0.00, 0.020}},
      {"nosmt", {kLinearDown, 0.5, 0.010}},
      {"quiet", {kLinearUp, 0.5, 0.005}},
      {"loglevel", {kStepHigh, 0.80, -0.040}},
      {"nohz_full", {kPeak, 1.00, 0.010}},
      {"audit", {kLinearDown, 0.5, 0.015}},
      {"selinux", {kLinearDown, 0.5, 0.012}},
      {"intel_pstate", {kPeak, 0.50, 0.010}},
      {"idle", {kPeak, 1.00, 0.030}},
      {"watchdog", {kLinearDown, 0.5, 0.008}},
      {"skew_tick", {kLinearUp, 0.5, 0.004}},
      {"processor.max_cstate", {kPeak, 0.00, 0.025}},
      {"pcie_aspm", {kPeak, 1.00, 0.012}},
      {"isolcpus_enable", {kLinearUp, 0.5, 0.006}},
      // --- Linux compile-time ---------------------------------------------------
      {"CONFIG_HZ", {kPeak, 1.00, 0.020}},
      {"CONFIG_PREEMPT_MODEL", {kPeak, 0.00, 0.015}},
      {"CONFIG_SLAB_ALLOCATOR", {kPeak, 0.50, 0.020}},
      {"CONFIG_NO_HZ_IDLE", {kLinearUp, 0.5, 0.008}},
      {"CONFIG_DEBUG_KERNEL", {kLinearDown, 0.5, 0.060}},
      {"CONFIG_KASAN", {kLinearDown, 0.5, 0.350}},
      {"CONFIG_LOCKDEP", {kLinearDown, 0.5, 0.120}},
      {"CONFIG_FTRACE", {kLinearDown, 0.5, 0.010}},
      {"CONFIG_BLK_DEV_IO_TRACE", {kLinearDown, 0.5, 0.030}},
      {"CONFIG_SCHED_DEBUG", {kLinearDown, 0.5, 0.008}},
      {"CONFIG_RETPOLINE", {kLinearDown, 0.5, 0.025}},
      {"CONFIG_PAGE_TABLE_ISOLATION", {kLinearDown, 0.5, 0.040}},
      {"CONFIG_TRANSPARENT_HUGEPAGE", {kLinearUp, 0.5, 0.010}},
      {"CONFIG_NUMA", {kPeak, 1.00, 0.004}},
      {"CONFIG_COMPACTION", {kLinearUp, 0.5, 0.004}},
      {"CONFIG_SWAP", {kLinearUp, 0.5, 0.003}},
      {"CONFIG_NET_RX_BUSY_POLL", {kLinearUp, 0.5, 0.012}},
      {"CONFIG_RPS", {kLinearUp, 0.5, 0.015}},
      {"CONFIG_XPS", {kLinearUp, 0.5, 0.012}},
      {"CONFIG_JUMP_LABEL", {kLinearUp, 0.5, 0.008}},
      // --- Unikraft + Nginx (Figure 9 space) -----------------------------------
      {"nginx.worker_processes", {kPeak, 0.33, 0.100}},
      {"nginx.worker_connections", {kPeak, 0.75, 0.150}},
      {"nginx.keepalive_timeout", {kPeak, 0.50, 0.080}},
      {"nginx.keepalive_requests", {kPeak, 0.75, 0.200}},
      {"nginx.sendfile", {kLinearUp, 0.5, 0.100}},
      {"nginx.tcp_nopush", {kLinearUp, 0.5, 0.050}},
      {"nginx.tcp_nodelay", {kLinearUp, 0.5, 0.080}},
      {"nginx.access_log", {kLinearDown, 0.5, 0.180}},
      {"nginx.open_file_cache", {kLinearUp, 0.5, 0.120}},
      {"nginx.listen_backlog", {kPeak, 0.70, 0.080}},
      {"CONFIG_UKALLOC", {kPeak, 0.33, 0.150}},
      {"CONFIG_UKSCHED", {kPeak, 0.00, 0.080}},
      {"CONFIG_UK_HEAP_MB", {kPeak, 0.60, 0.100}},
      {"CONFIG_UK_STACK_KB", {kPeak, 0.40, 0.040}},
      {"CONFIG_LWIP_TCP_SND_BUF", {kPeak, 0.80, 0.250}},
      {"CONFIG_LWIP_TCP_WND", {kPeak, 0.80, 0.250}},
      {"CONFIG_LWIP_TCP_MSS", {kPeak, 1.00, 0.120}},
      {"CONFIG_LWIP_NUM_PBUF", {kPeak, 0.80, 0.150}},
      {"CONFIG_LWIP_NUM_TCP_PCB", {kPeak, 0.70, 0.100}},
      {"CONFIG_LWIP_POOLS", {kLinearUp, 0.5, 0.080}},
      {"CONFIG_LWIP_NOTHREADS", {kLinearUp, 0.5, 0.100}},
      {"CONFIG_UKNETDEV_RX_DESCS", {kPeak, 0.75, 0.120}},
      {"CONFIG_UKNETDEV_TX_DESCS", {kPeak, 0.75, 0.100}},
      {"CONFIG_UK_HZ", {kPeak, 0.00, 0.030}},
      {"CONFIG_VFSCORE_ROOTFS", {kPeak, 0.00, 0.060}},
      {"CONFIG_UK_PRINT_KERN_MSG", {kLinearDown, 0.5, 0.100}},
      {"CONFIG_UK_DEBUG_PRINT", {kLinearDown, 0.5, 0.300}},
      {"CONFIG_UK_OPTIMIZE", {kPeak, 0.67, 0.120}},
      {"CONFIG_UK_LTO", {kLinearUp, 0.5, 0.060}},
      {"CONFIG_UK_MEMPOOL_PREALLOC", {kLinearUp, 0.5, 0.080}},
      {"CONFIG_UK_TRACEPOINTS", {kLinearDown, 0.5, 0.120}},
      {"CONFIG_VIRTIO_PCI_MODERN", {kLinearUp, 0.5, 0.040}},
  };
  return table;
}

// How strongly unimodal optima are pulled toward the default configuration.
// SQLite's default is near-optimal for its workload (Table 2: 1.00x).
double DefaultAffinity(AppId app) {
  switch (app) {
    case AppId::kNginx:
      return 0.12;
    case AppId::kRedis:
      return 0.30;
    case AppId::kSqlite:
      return 0.88;
    case AppId::kNpb:
      return 0.50;
  }
  return 0.0;
}

// Calibration targets: max reachable log-improvement (positive headroom
// budget) and max possible log-downside, per app and substrate. Derived
// from Table 2, Figure 2, Figure 6, and Figure 9.
struct Targets {
  double pos;
  double neg;
  double baseline;
  double bloat_drag;
};

Targets TargetsFor(Substrate substrate, AppId app) {
  if (substrate == Substrate::kUnikraftKvm) {
    // Only Nginx is evaluated on Unikraft; others reuse its shape scaled.
    Targets t{std::log(4.0), 1.2, 12000.0, 0.02};
    if (app != AppId::kNginx) {
      t.baseline = GetApp(app).baseline;
    }
    return t;
  }
  // Full-system TCG emulation runs the same configurations at roughly a
  // twelfth of native KVM throughput ("although emulation affects
  // performance, it does not impact memory consumption", §4.4). The
  // configuration-sensitivity structure is unchanged — which is exactly
  // what makes cross-platform linear transfer work (§3.5).
  constexpr double kQemuSlowdown = 12.0;
  if (substrate == Substrate::kLinuxRiscvQemu) {
    Targets t = TargetsFor(Substrate::kLinuxKvm, app);
    t.baseline /= kQemuSlowdown;
    return t;
  }
  switch (app) {
    case AppId::kNginx:
      return {std::log(1.42), 0.60, GetApp(app).baseline, 0.12};
    case AppId::kRedis:
      return {std::log(1.26), 0.55, GetApp(app).baseline, 0.06};
    case AppId::kSqlite:
      return {std::log(1.012), 1.20, GetApp(app).baseline, 0.04};
    case AppId::kNpb:
      return {std::log(1.025), 0.35, GetApp(app).baseline, 0.02};
  }
  return {0.1, 0.5, 1.0, 0.0};
}

}  // namespace

double PerfModel::ShapeValue(const ParamEffect& effect, double x) {
  switch (effect.shape) {
    case Shape::kLinearUp:
      return x;
    case Shape::kLinearDown:
      return -x;
    case Shape::kPeak: {
      double d = (x - effect.peak) / 0.35;
      return std::exp(-d * d);
    }
    case Shape::kValley: {
      double d = (x - effect.peak) / 0.35;
      return -std::exp(-d * d);
    }
    case Shape::kStepHigh:
      return x >= effect.peak ? 1.0 : 0.0;
  }
  return 0.0;
}

double PerfModel::RawResponse(const ParamEffect& effect, double x) {
  return effect.magnitude * (ShapeValue(effect, x) - ShapeValue(effect, effect.default_code));
}

double PerfModel::Response(AppId app, size_t param, double x) const {
  double raw = RawResponse(effects_[static_cast<size_t>(app)][param], x);
  return raw >= 0.0 ? raw * pos_scale_[static_cast<size_t>(app)]
                    : raw * neg_scale_[static_cast<size_t>(app)];
}

PerfModel::PerfModel(const ConfigSpace* space, Substrate substrate, uint64_t seed)
    : space_(space), substrate_(substrate) {
  // Bloat mass: each enabled compile-time bool/tristate contributes hashed
  // cache/TLB pressure; the default configuration's mass anchors zero.
  compile_mass_.assign(space_->Size(), 0.0);
  double default_mass = 0.0;
  double total_mass = 0.0;
  for (size_t i = 0; i < space_->Size(); ++i) {
    const ParamSpec& spec = space_->Param(i);
    if (spec.phase == ParamPhase::kCompileTime &&
        (spec.kind == ParamKind::kBool || spec.kind == ParamKind::kTristate)) {
      uint64_t h = HashCombine(seed, StableHash(spec.name));
      compile_mass_[i] = 0.2 + 0.8 * (static_cast<double>(h % 10000) / 10000.0);
      total_mass += compile_mass_[i];
      double enabled = static_cast<double>(spec.default_value) /
                       (spec.kind == ParamKind::kTristate ? 2.0 : 1.0);
      default_mass += compile_mass_[i] * enabled;
    }
  }
  if (total_mass > 0.0) {
    for (double& m : compile_mass_) {
      m /= total_mass;
    }
    default_bloat_ = default_mass / total_mass;
  }

  for (AppId app : {AppId::kNginx, AppId::kRedis, AppId::kSqlite, AppId::kNpb}) {
    Targets targets = TargetsFor(substrate_, app);
    baseline_[static_cast<size_t>(app)] = targets.baseline;
    bloat_drag_[static_cast<size_t>(app)] = targets.bloat_drag;
    BuildEffects(app, seed);
    RescaleEffects(app);
    BuildInteractions(app, seed);
  }
}

void PerfModel::BuildEffects(AppId app, uint64_t seed) {
  const AppProfile& profile = GetApp(app);
  double affinity = DefaultAffinity(app);
  auto& effects = effects_[static_cast<size_t>(app)];
  effects.assign(space_->Size(), ParamEffect{});

  for (size_t i = 0; i < space_->Size(); ++i) {
    const ParamSpec& spec = space_->Param(i);
    double weight = profile.weights.For(spec.subsystem);
    double default_code = space_->EncodeParam(i, spec.default_value);
    ParamEffect effect;
    effect.default_code = default_code;

    auto curated = CuratedTable().find(spec.name);
    if (curated != CuratedTable().end()) {
      effect.shape = static_cast<Shape>(curated->second.shape);
      effect.peak = curated->second.peak;
      effect.magnitude = curated->second.magnitude * std::max(weight, 0.01);
      if (effect.shape == Shape::kPeak) {
        // Pull the optimum toward the default for default-happy apps.
        effect.peak = effect.peak * (1.0 - affinity) + default_code * affinity;
      }
    } else {
      // Synthetic parameter: a shared hashed base effect scaled by the
      // app's subsystem weight, plus a small app-specific residual.
      uint64_t base_hash = HashCombine(seed, StableHash(spec.name));
      uint64_t s1 = base_hash;
      double u_active = static_cast<double>(SplitMix64(s1) % 100000) / 100000.0;
      double base_m = 0.0;
      if (u_active >= 0.55) {
        double u_mag = static_cast<double>(SplitMix64(s1) % 100000) / 100000.0;
        base_m = 0.0008 - 0.003 * std::log(std::max(1e-6, 1.0 - u_mag));
        base_m = std::min(base_m, 0.015);
        if (SplitMix64(s1) % 10 < 6) {
          base_m = -base_m;
        }
      }
      int shape_draw = static_cast<int>(SplitMix64(s1) % 3);
      effect.shape = shape_draw == 0 ? Shape::kLinearUp
                                     : (shape_draw == 1 ? Shape::kLinearDown : Shape::kPeak);
      effect.peak = static_cast<double>(SplitMix64(s1) % 1000) / 1000.0;

      uint64_t app_hash = HashCombine(base_hash, static_cast<uint64_t>(app) + 17);
      uint64_t s2 = app_hash;
      double u_eta = static_cast<double>(SplitMix64(s2) % 100000) / 100000.0;
      double eta = -0.0006 * std::log(std::max(1e-6, 1.0 - u_eta));
      eta = std::min(eta, 0.004);
      if (SplitMix64(s2) % 2 == 0) {
        eta = -eta;
      }
      effect.magnitude = base_m * weight + eta;
    }
    effects[i] = effect;
  }
}

void PerfModel::RescaleEffects(AppId app) {
  Targets targets = TargetsFor(substrate_, app);
  auto& effects = effects_[static_cast<size_t>(app)];
  // The calibration targets describe what the paper's experiments can reach.
  // On Linux those experiments favor runtime parameters (§4.1), so the
  // headroom budget is anchored on the runtime subset; on Unikraft the whole
  // (compile-time-heavy) space is in play.
  bool runtime_anchor = substrate_ != Substrate::kUnikraftKvm;
  double sum_pos = 0.0;
  double sum_neg = 0.0;
  for (size_t i = 0; i < effects.size(); ++i) {
    if (runtime_anchor && space_->Param(i).phase != ParamPhase::kRuntime) {
      continue;
    }
    double best = 0.0;
    double worst = 0.0;
    // Scan the encoded domain on a grid; responses are smooth enough.
    for (int g = 0; g <= 20; ++g) {
      double r = RawResponse(effects[i], static_cast<double>(g) / 20.0);
      best = std::max(best, r);
      worst = std::min(worst, r);
    }
    sum_pos += best;
    sum_neg += -worst;
  }
  pos_scale_[static_cast<size_t>(app)] =
      sum_pos > 1e-9 ? std::clamp(targets.pos / sum_pos, 0.05, 20.0) : 1.0;
  neg_scale_[static_cast<size_t>(app)] =
      sum_neg > 1e-9 ? std::clamp(targets.neg / sum_neg, 0.05, 20.0) : 1.0;
}

void PerfModel::BuildInteractions(AppId app, uint64_t seed) {
  auto& effects = effects_[static_cast<size_t>(app)];
  auto& interactions = interactions_[static_cast<size_t>(app)];
  interactions.clear();
  // Pair up the highest-magnitude parameters; interactions are a fraction of
  // the smaller main effect, so they perturb rather than dominate.
  std::vector<size_t> order(effects.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return std::abs(effects[a].magnitude) > std::abs(effects[b].magnitude);
  });
  size_t top = std::min<size_t>(order.size(), 12);
  uint64_t state = HashCombine(seed, static_cast<uint64_t>(app) + 101);
  for (size_t k = 0; k + 1 < top; k += 2) {
    Interaction inter;
    inter.a = order[k];
    inter.b = order[k + 1];
    double strength = 0.25 * std::min(std::abs(effects[inter.a].magnitude),
                                      std::abs(effects[inter.b].magnitude));
    inter.coefficient = (SplitMix64(state) % 2 == 0 ? 1.0 : -1.0) * strength *
                        pos_scale_[static_cast<size_t>(app)];
    interactions.push_back(inter);
  }
}

double PerfModel::Goodness(AppId app, const Configuration& config) const {
  const auto& effects = effects_[static_cast<size_t>(app)];
  double goodness = 0.0;
  for (size_t i = 0; i < effects.size(); ++i) {
    goodness += Response(app, i, space_->EncodeParam(i, config.Raw(i)));
  }
  for (const Interaction& inter : interactions_[static_cast<size_t>(app)]) {
    double da = space_->EncodeParam(inter.a, config.Raw(inter.a)) - effects[inter.a].default_code;
    double db = space_->EncodeParam(inter.b, config.Raw(inter.b)) - effects[inter.b].default_code;
    goodness += inter.coefficient * da * db;
  }
  // Kernel-bloat drag relative to the default compile configuration.
  double bloat = 0.0;
  for (size_t i = 0; i < compile_mass_.size(); ++i) {
    if (compile_mass_[i] > 0.0) {
      const ParamSpec& spec = space_->Param(i);
      double enabled = static_cast<double>(config.Raw(i)) /
                       (spec.kind == ParamKind::kTristate ? 2.0 : 1.0);
      bloat += compile_mass_[i] * enabled;
    }
  }
  goodness += bloat_drag_[static_cast<size_t>(app)] * (default_bloat_ - bloat);
  return goodness;
}

double PerfModel::MeanMetric(AppId app, const Configuration& config) const {
  const AppProfile& profile = GetApp(app);
  double goodness = Goodness(app, config);
  double baseline = baseline_[static_cast<size_t>(app)];
  return profile.maximize ? baseline * std::exp(goodness) : baseline * std::exp(-goodness);
}

double PerfModel::SampleMetric(AppId app, const Configuration& config, Rng& run_rng) const {
  const AppProfile& profile = GetApp(app);
  double mean = MeanMetric(app, config);
  double noisy = mean * std::exp(run_rng.Normal(0.0, profile.noise_cv));
  return noisy;
}

double PerfModel::BaselineMetric(AppId app) const {
  return baseline_[static_cast<size_t>(app)];
}

std::vector<double> PerfModel::TrueImportance(AppId app) const {
  const auto& effects = effects_[static_cast<size_t>(app)];
  std::vector<double> importance(effects.size(), 0.0);
  for (size_t i = 0; i < effects.size(); ++i) {
    double max_abs = 0.0;
    for (int g = 0; g <= 20; ++g) {
      max_abs = std::max(max_abs, std::abs(Response(app, i, static_cast<double>(g) / 20.0)));
    }
    importance[i] = max_abs;
  }
  return importance;
}

double PerfModel::MaxHeadroom(AppId app) const {
  const auto& effects = effects_[static_cast<size_t>(app)];
  double sum = 0.0;
  for (size_t i = 0; i < effects.size(); ++i) {
    double best = 0.0;
    for (int g = 0; g <= 20; ++g) {
      best = std::max(best, Response(app, i, static_cast<double>(g) / 20.0));
    }
    sum += best;
  }
  return sum;
}

}  // namespace wayfinder
