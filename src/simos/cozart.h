// Cozart-style compile-time debloater (§4.4, Figure 11, Table 4).
//
// Cozart [Kuo et al., SIGMETRICS'20] uses dynamic analysis to observe which
// kernel components a workload actually exercises, then disables the unused
// compile-time options, shrinking both the image and the remaining
// configuration space. Our simulated equivalent traces usage at subsystem
// granularity: options in subsystems the application's profile does not
// touch are disabled — except options whose code the boot itself executes
// (the crash model's "essential" set), which dynamic analysis would see
// running and keep.
#ifndef WAYFINDER_SRC_SIMOS_COZART_H_
#define WAYFINDER_SRC_SIMOS_COZART_H_

#include <string>
#include <vector>

#include "src/configspace/config_space.h"
#include "src/simos/apps.h"
#include "src/simos/crash_model.h"

namespace wayfinder {

struct DebloatResult {
  Configuration baseline;             // Default config with unused options off.
  std::vector<size_t> disabled;       // Parameter indices switched off.
  size_t options_considered = 0;      // Compile-time options inspected.
};

class CozartDebloater {
 public:
  // `crash_model` supplies the essential-option oracle (standing in for the
  // dynamic boot trace). `usage_threshold` is the subsystem sensitivity
  // below which the workload is considered not to use the subsystem.
  CozartDebloater(const ConfigSpace* space, const CrashModel* crash_model,
                  double usage_threshold = 0.06);

  DebloatResult Debloat(AppId app) const;

  // Freezes the disabled options in `space` so a subsequent search cannot
  // re-enable them (they are out of the reduced space). Returns the number
  // of parameters frozen.
  static size_t FreezeDisabled(ConfigSpace* space, const DebloatResult& result);

 private:
  const ConfigSpace* space_;
  const CrashModel* crash_model_;
  double usage_threshold_;
};

}  // namespace wayfinder

#endif  // WAYFINDER_SRC_SIMOS_COZART_H_
