#include "src/simos/testbench.h"

#include <algorithm>
#include <cmath>

namespace wayfinder {

const char* TrialStatusName(TrialOutcome::Status status) {
  switch (status) {
    case TrialOutcome::Status::kOk:
      return "ok";
    case TrialOutcome::Status::kBuildFailed:
      return "build-failed";
    case TrialOutcome::Status::kBootFailed:
      return "boot-failed";
    case TrialOutcome::Status::kRunCrashed:
      return "run-crashed";
  }
  return "?";
}

bool TrialStatusFromName(const std::string& name, TrialOutcome::Status* status) {
  if (name == "ok") {
    *status = TrialOutcome::Status::kOk;
  } else if (name == "build-failed") {
    *status = TrialOutcome::Status::kBuildFailed;
  } else if (name == "boot-failed") {
    *status = TrialOutcome::Status::kBootFailed;
  } else if (name == "run-crashed") {
    *status = TrialOutcome::Status::kRunCrashed;
  } else {
    return false;
  }
  return true;
}

Testbench::Testbench(const ConfigSpace* space, AppId app, const TestbenchOptions& options)
    : space_(space),
      app_(app),
      options_(options),
      perf_model_(space, options.substrate, options.seed),
      crash_model_(space, HashCombine(options.seed, 0xc4a5)),
      memory_model_(space, options.default_footprint_mb, HashCombine(options.seed, 0x3e30)) {}

double Testbench::SampleBuildSeconds(Rng& rng) const {
  // Full kernel builds dominate; unikernels build much faster. Lognormal-ish
  // spread mimics ccache hits and varying option counts.
  double mean = options_.substrate == Substrate::kUnikraftKvm ? 35.0 : 180.0;
  if (options_.substrate == Substrate::kLinuxRiscvQemu) {
    mean = 90.0;  // Slim embedded configs cross-compile faster.
  }
  double s = mean * std::exp(rng.Normal(0.0, 0.25));
  return std::max(5.0, s);
}

double Testbench::SampleBootSeconds(Rng& rng) const {
  double mean = options_.substrate == Substrate::kUnikraftKvm ? 0.5 : 9.0;
  if (options_.substrate == Substrate::kLinuxRiscvQemu) {
    mean = 25.0;  // Full-system emulation boots slowly.
  }
  return std::max(0.05, mean * std::exp(rng.Normal(0.0, 0.2)));
}

double Testbench::SampleRunSeconds(Rng& rng) const {
  const AppProfile& profile = GetApp(app_);
  double s = rng.Normal(profile.test_seconds_mean, profile.test_seconds_spread / 2.0);
  return std::clamp(s, profile.test_seconds_mean * 0.4, profile.test_seconds_mean * 2.5);
}

TrialOutcome Testbench::Evaluate(const Configuration& config, Rng& rng, SimClock* clock,
                                 bool skip_build, bool boot_only) {
  if (options_.fixed_trial_seconds <= 0.0) {
    return EvaluateImpl(config, rng, clock, skip_build, boot_only);
  }
  // Equal-duration mode: compute the outcome off-clock, then charge every
  // phase the fixed cost regardless of status so all trials take the same
  // total simulated time.
  TrialOutcome outcome = EvaluateImpl(config, rng, /*clock=*/nullptr, skip_build, boot_only);
  double f = options_.fixed_trial_seconds;
  outcome.build_seconds = skip_build ? 0.0 : f;
  outcome.boot_seconds = f;
  outcome.run_seconds = boot_only ? 0.0 : f;
  if (clock != nullptr) {
    clock->Advance(outcome.TotalSeconds());
  }
  return outcome;
}

TrialOutcome Testbench::EvaluateImpl(const Configuration& config, Rng& rng, SimClock* clock,
                                     bool skip_build, bool boot_only) {
  TrialOutcome outcome;
  CrashOutcome crash = crash_model_.Check(app_, config, rng);

  // Transient infrastructure flakes (fault injection): independent of the
  // configuration, a trial may fail at a uniformly chosen stage.
  if (options_.transient_flake_prob > 0.0 && rng.Bernoulli(options_.transient_flake_prob)) {
    crash.crashed = true;
    crash.reason = "transient: infrastructure flake";
    double stage = rng.Uniform();
    crash.stage = stage < 0.34   ? ParamPhase::kCompileTime
                  : stage < 0.67 ? ParamPhase::kBootTime
                                 : ParamPhase::kRuntime;
    if (skip_build && crash.stage == ParamPhase::kCompileTime) {
      crash.stage = ParamPhase::kBootTime;  // No build phase to fail in.
    }
  }

  // --- Build phase ---------------------------------------------------------
  if (skip_build) {
    outcome.build_skipped = true;
  } else {
    if (crash.crashed && crash.stage == ParamPhase::kCompileTime) {
      // Builds fail part-way through.
      outcome.status = TrialOutcome::Status::kBuildFailed;
      outcome.failure_reason = crash.reason;
      outcome.build_seconds = 0.35 * SampleBuildSeconds(rng);
      if (clock != nullptr) {
        clock->Advance(outcome.build_seconds);
      }
      return outcome;
    }
    outcome.build_seconds = SampleBuildSeconds(rng);
    if (clock != nullptr) {
      clock->Advance(outcome.build_seconds);
    }
  }
  outcome.memory_mb = memory_model_.SampleFootprintMb(config, rng);

  // --- Boot phase -----------------------------------------------------------
  outcome.boot_seconds = SampleBootSeconds(rng);
  if (clock != nullptr) {
    clock->Advance(outcome.boot_seconds);
  }
  if (crash.crashed && crash.stage == ParamPhase::kBootTime) {
    outcome.status = TrialOutcome::Status::kBootFailed;
    outcome.failure_reason = crash.reason;
    return outcome;
  }
  // A compile-stage crash with the build skipped can't happen: skip_build
  // requires identical compile/boot parameters to a previously built image.
  // Treat it as a boot failure defensively.
  if (crash.crashed && crash.stage == ParamPhase::kCompileTime) {
    outcome.status = TrialOutcome::Status::kBootFailed;
    outcome.failure_reason = crash.reason;
    return outcome;
  }

  // --- Benchmark phase --------------------------------------------------------
  if (boot_only) {
    // No workload runs: runtime-stage failures cannot surface. The image
    // booted; its footprint is the measurement.
    return outcome;
  }
  outcome.run_seconds = SampleRunSeconds(rng);
  if (crash.crashed) {
    // Runtime crashes/hangs surface part-way through the benchmark (hangs
    // cost the full watchdog window).
    outcome.run_seconds *= rng.Uniform(0.3, 1.2);
    if (clock != nullptr) {
      clock->Advance(outcome.run_seconds);
    }
    outcome.status = TrialOutcome::Status::kRunCrashed;
    outcome.failure_reason = crash.reason;
    return outcome;
  }
  if (clock != nullptr) {
    clock->Advance(outcome.run_seconds);
  }
  outcome.metric = perf_model_.SampleMetric(app_, config, rng);
  return outcome;
}

}  // namespace wayfinder
