#include "src/simos/testbench.h"

#include <algorithm>
#include <cmath>

namespace wayfinder {

const char* TrialStatusName(TrialOutcome::Status status) {
  switch (status) {
    case TrialOutcome::Status::kOk:
      return "ok";
    case TrialOutcome::Status::kBuildFailed:
      return "build-failed";
    case TrialOutcome::Status::kBootFailed:
      return "boot-failed";
    case TrialOutcome::Status::kRunCrashed:
      return "run-crashed";
    case TrialOutcome::Status::kTimeout:
      return "timeout";
  }
  return "?";
}

bool TrialStatusFromName(const std::string& name, TrialOutcome::Status* status) {
  if (name == "ok") {
    *status = TrialOutcome::Status::kOk;
  } else if (name == "build-failed") {
    *status = TrialOutcome::Status::kBuildFailed;
  } else if (name == "boot-failed") {
    *status = TrialOutcome::Status::kBootFailed;
  } else if (name == "run-crashed") {
    *status = TrialOutcome::Status::kRunCrashed;
  } else if (name == "timeout") {
    *status = TrialOutcome::Status::kTimeout;
  } else {
    return false;
  }
  return true;
}

Testbench::Testbench(const ConfigSpace* space, AppId app, const TestbenchOptions& options)
    : space_(space),
      app_(app),
      options_(options),
      perf_model_(space, options.substrate, options.seed),
      crash_model_(space, HashCombine(options.seed, 0xc4a5)),
      memory_model_(space, options.default_footprint_mb, HashCombine(options.seed, 0x3e30)) {
  if (options_.faults.drift_at > 0.0) {
    drifted_perf_ = std::make_shared<PerfModel>(space, options.substrate,
                                                HashCombine(options.seed, 0xd21f7));
  }
}

double Testbench::SampleBuildSeconds(Rng& rng) const {
  // Full kernel builds dominate; unikernels build much faster. Lognormal-ish
  // spread mimics ccache hits and varying option counts.
  double mean = options_.substrate == Substrate::kUnikraftKvm ? 35.0 : 180.0;
  if (options_.substrate == Substrate::kLinuxRiscvQemu) {
    mean = 90.0;  // Slim embedded configs cross-compile faster.
  }
  double s = mean * std::exp(rng.Normal(0.0, 0.25));
  return std::max(5.0, s);
}

double Testbench::SampleBootSeconds(Rng& rng) const {
  double mean = options_.substrate == Substrate::kUnikraftKvm ? 0.5 : 9.0;
  if (options_.substrate == Substrate::kLinuxRiscvQemu) {
    mean = 25.0;  // Full-system emulation boots slowly.
  }
  return std::max(0.05, mean * std::exp(rng.Normal(0.0, 0.2)));
}

double Testbench::SampleRunSeconds(Rng& rng) const {
  const AppProfile& profile = GetApp(app_);
  double s = rng.Normal(profile.test_seconds_mean, profile.test_seconds_spread / 2.0);
  return std::clamp(s, profile.test_seconds_mean * 0.4, profile.test_seconds_mean * 2.5);
}

TrialOutcome Testbench::Evaluate(const Configuration& config, Rng& rng, SimClock* clock,
                                 bool skip_build, bool boot_only) {
  if (options_.fixed_trial_seconds <= 0.0) {
    return EvaluateImpl(config, rng, clock, skip_build, boot_only);
  }
  // Equal-duration mode: compute the outcome off-clock, then charge every
  // phase the fixed cost regardless of status so all trials take the same
  // total simulated time.
  TrialOutcome outcome = EvaluateImpl(config, rng, /*clock=*/nullptr, skip_build, boot_only);
  double f = options_.fixed_trial_seconds;
  outcome.build_seconds = skip_build ? 0.0 : f;
  outcome.boot_seconds = f;
  outcome.run_seconds = boot_only ? 0.0 : f;
  if (clock != nullptr) {
    clock->Advance(outcome.TotalSeconds());
  }
  return outcome;
}

TrialOutcome Testbench::EvaluateImpl(const Configuration& config, Rng& rng, SimClock* clock,
                                     bool skip_build, bool boot_only) {
  TrialOutcome outcome;
  const FaultPlan& faults = options_.faults;
  // Global simulated time at which this trial starts (clones carry the
  // round start as their origin); decides whether scheduled drift applies.
  const double trial_start = sim_time_origin_ + (clock != nullptr ? clock->Now() : 0.0);
  CrashOutcome crash = crash_model_.Check(app_, config, rng);

  // Transient infrastructure flakes (fault injection): independent of the
  // configuration, a trial may fail at a uniformly chosen stage. The legacy
  // knob and the plan's combine as independent fault sources; with the plan
  // inactive the draw sequence is exactly the pre-plan one.
  double flake_prob = options_.transient_flake_prob;
  if (faults.flake_prob > 0.0) {
    flake_prob = 1.0 - (1.0 - flake_prob) * (1.0 - faults.flake_prob);
  }
  if (flake_prob > 0.0 && rng.Bernoulli(flake_prob)) {
    crash.crashed = true;
    crash.reason = "transient: infrastructure flake";
    double stage = rng.Uniform();
    crash.stage = stage < 0.34   ? ParamPhase::kCompileTime
                  : stage < 0.67 ? ParamPhase::kBootTime
                                 : ParamPhase::kRuntime;
    if (skip_build && crash.stage == ParamPhase::kCompileTime) {
      crash.stage = ParamPhase::kBootTime;  // No build phase to fail in.
    }
  }

  // --- Build phase ---------------------------------------------------------
  if (skip_build) {
    outcome.build_skipped = true;
  } else {
    if (crash.crashed && crash.stage == ParamPhase::kCompileTime) {
      // Builds fail part-way through.
      outcome.status = TrialOutcome::Status::kBuildFailed;
      outcome.failure_reason = crash.reason;
      outcome.build_seconds = 0.35 * SampleBuildSeconds(rng);
      if (clock != nullptr) {
        clock->Advance(outcome.build_seconds);
      }
      return outcome;
    }
    outcome.build_seconds = SampleBuildSeconds(rng);
    if (clock != nullptr) {
      clock->Advance(outcome.build_seconds);
    }
  }
  outcome.memory_mb = memory_model_.SampleFootprintMb(config, rng);

  // --- Boot phase -----------------------------------------------------------
  outcome.boot_seconds = SampleBootSeconds(rng);
  if (clock != nullptr) {
    clock->Advance(outcome.boot_seconds);
  }
  if (crash.crashed && crash.stage == ParamPhase::kBootTime) {
    outcome.status = TrialOutcome::Status::kBootFailed;
    outcome.failure_reason = crash.reason;
    return outcome;
  }
  // A compile-stage crash with the build skipped can't happen: skip_build
  // requires identical compile/boot parameters to a previously built image.
  // Treat it as a boot failure defensively.
  if (crash.crashed && crash.stage == ParamPhase::kCompileTime) {
    outcome.status = TrialOutcome::Status::kBootFailed;
    outcome.failure_reason = crash.reason;
    return outcome;
  }

  // --- Benchmark phase --------------------------------------------------------
  if (boot_only) {
    // No workload runs: runtime-stage failures cannot surface. The image
    // booted; its footprint is the measurement.
    return outcome;
  }
  // Watchdog faults: the benchmark exceeds its budget, or hangs until the
  // watchdog kills it. Either way the trial is charged the full watchdog
  // window — the expensive failure mode a re-measurement policy must
  // distinguish from config-caused crashes. One Bernoulli per active knob,
  // so the per-trial draw count is constant under a fixed plan.
  if (faults.timeout_prob > 0.0 || faults.hang_prob > 0.0) {
    bool timed_out = faults.timeout_prob > 0.0 && rng.Bernoulli(faults.timeout_prob);
    bool hung = faults.hang_prob > 0.0 && rng.Bernoulli(faults.hang_prob);
    if (timed_out || hung) {
      outcome.run_seconds = faults.timeout_seconds;
      if (clock != nullptr) {
        clock->Advance(outcome.run_seconds);
      }
      outcome.status = TrialOutcome::Status::kTimeout;
      outcome.failure_reason = timed_out ? "transient: benchmark exceeded watchdog"
                                         : "transient: hang killed by watchdog";
      return outcome;
    }
  }
  outcome.run_seconds = SampleRunSeconds(rng);
  if (crash.crashed) {
    // Runtime crashes/hangs surface part-way through the benchmark (hangs
    // cost the full watchdog window).
    outcome.run_seconds *= rng.Uniform(0.3, 1.2);
    if (clock != nullptr) {
      clock->Advance(outcome.run_seconds);
    }
    outcome.status = TrialOutcome::Status::kRunCrashed;
    outcome.failure_reason = crash.reason;
    return outcome;
  }
  if (clock != nullptr) {
    clock->Advance(outcome.run_seconds);
  }
  outcome.metric = perf_model_.SampleMetric(app_, config, rng);
  // Scheduled workload drift: trials starting after drift_at sample from a
  // shifted landscape, blended at drift_magnitude.
  if (drifted_perf_ != nullptr && trial_start >= faults.drift_at) {
    double shifted = drifted_perf_->SampleMetric(app_, config, rng);
    double blend = faults.drift_magnitude;
    outcome.metric = (1.0 - blend) * outcome.metric + blend * shifted;
  }
  // Heteroscedastic measurement noise: config-dependent variance on top of
  // the app's intrinsic noise_cv.
  if (faults.noise_sigma > 0.0) {
    outcome.metric *= std::exp(rng.Normal(0.0, faults.NoiseSigmaFor(config.Hash())));
  }
  return outcome;
}

}  // namespace wayfinder
