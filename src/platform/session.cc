#include "src/platform/session.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "src/obs/clock.h"
#include "src/obs/metrics.h"
#include "src/simos/apps.h"
#include "src/util/stats.h"
#include "src/util/thread_pool.h"

namespace wayfinder {

SearchSession::SearchSession(Testbench* bench, Searcher* searcher, const SessionOptions& options)
    : bench_(bench),
      searcher_(searcher),
      options_(options),
      rng_(options.seed),
      searcher_rng_(HashCombine(options.seed, 0x5ea7c4e7)) {}

bool SearchSession::SameImageParams(const Configuration& a, const Configuration& b) const {
  const ConfigSpace& space = bench_->space();
  for (size_t i = 0; i < space.Size(); ++i) {
    if (space.Param(i).phase == ParamPhase::kRuntime) {
      continue;
    }
    if (a.Raw(i) != b.Raw(i)) {
      return false;
    }
  }
  return true;
}

double TrialObjective(const TrialOutcome& outcome, ObjectiveKind objective, AppId app) {
  if (!outcome.ok()) {
    return std::nan("");
  }
  switch (objective) {
    case ObjectiveKind::kAppMetric: {
      const AppProfile& profile = GetApp(app);
      // Normalize polarity: objectives are always maximized.
      return profile.maximize ? outcome.metric : -outcome.metric;
    }
    case ObjectiveKind::kMemoryFootprint:
      return -outcome.memory_mb;
    case ObjectiveKind::kScore:
      // Placeholder; RefreshScoreObjectives recomputes all score
      // objectives over the history after each observation.
      return 0.0;
  }
  return std::nan("");
}

void RefreshScoreObjectives(std::vector<TrialRecord>* history) {
  // Eq. 4: s = mXNorm(throughput) - mXNorm(memory), over successful trials.
  std::vector<size_t> indices;
  std::vector<double> throughput;
  std::vector<double> memory;
  for (size_t i = 0; i < history->size(); ++i) {
    if ((*history)[i].outcome.ok()) {
      indices.push_back(i);
      throughput.push_back((*history)[i].outcome.metric);
      memory.push_back((*history)[i].outcome.memory_mb);
    }
  }
  std::vector<double> t_norm = MinMaxNormalize(throughput);
  std::vector<double> m_norm = MinMaxNormalize(memory);
  for (size_t k = 0; k < indices.size(); ++k) {
    (*history)[indices[k]].objective = t_norm[k] - m_norm[k];
  }
}

double SearchSession::ComputeObjective(const TrialOutcome& outcome) const {
  return TrialObjective(outcome, options_.objective, bench_->app());
}

void SearchSession::RefreshScores() { RefreshScoreObjectives(&history_); }

SearchContext SearchSession::MakeContext() {
  SearchContext context;
  context.space = &bench_->space();
  context.history = &history_;
  context.sample_options = options_.sample_options;
  context.rng = &searcher_rng_;
  return context;
}

void SearchSession::DedupProposal(SearchContext& context, Configuration* config) {
  for (size_t retry = 0; retry < options_.dedup_retries; ++retry) {
    if (seen_hashes_.count(config->Hash()) == 0) {
      break;
    }
    *config = searcher_->Propose(context);
  }
  seen_hashes_.insert(config->Hash());
}

void SearchSession::CommitTrial(PendingTrial&& pending, double end_time,
                                int64_t stamp_ns) {
  // Trial-scoped trace instants, stamped in deterministic commit order (the
  // batch executors call CommitTrial serially from the merge). Retries are
  // stamped here rather than inside the concurrent evaluation policy, so the
  // ring sees the same order the history does.
  if (obs::Enabled()) {
    const uint64_t iteration = history_.size();
    const int64_t now_ns = stamp_ns != 0 ? stamp_ns : obs::NowNs();
    // One stamp, one batched ring append for the whole trial: these are
    // bookkeeping instants, not spans, so sharing the stamp loses nothing
    // and keeps the per-trial overhead to a single clock read and lock.
    obs::TraceEvent instants[16];
    size_t n = 0;
    auto stamp = [&](obs::TraceKind kind) {
      instants[n++] = obs::TraceEvent{kind, iteration, now_ns, 0};
      if (n == sizeof(instants) / sizeof(instants[0])) {
        trace_.RecordBatch(instants, n);
        n = 0;
      }
    };
    if (!pending.skip_build) {
      stamp(obs::TraceKind::kBuild);
    }
    for (size_t i = 0; i < pending.retries; ++i) {
      stamp(obs::TraceKind::kRetry);
    }
    stamp(obs::TraceKind::kCommit);
    trace_.RecordBatch(instants, n);
  }
  TrialOutcome outcome = pending.outcome;
  if (outcome.ok() && options_.deploy_check != nullptr &&
      !options_.deploy_check(pending.config, outcome)) {
    // §3.5: a failed deployment check is learned exactly like a crash.
    outcome.status = TrialOutcome::Status::kRunCrashed;
    outcome.failure_reason = "deployment check failed";
    outcome.metric = 0.0;
  }
  if (!pending.skip_build) {
    ++builds_;
    if (outcome.status != TrialOutcome::Status::kBuildFailed) {
      last_built_image_ = pending.config;
    }
  } else {
    ++builds_skipped_;
  }

  TrialRecord record;
  record.iteration = history_.size();
  record.config = std::move(pending.config);
  record.outcome = outcome;
  record.objective = ComputeObjective(outcome);
  record.sim_time_end = end_time;
  retries_ += pending.retries;
  if (!outcome.ok()) {
    ++crashes_;
    switch (outcome.status) {
      case TrialOutcome::Status::kBuildFailed:
        ++build_failed_;
        break;
      case TrialOutcome::Status::kBootFailed:
        ++boot_failed_;
        break;
      case TrialOutcome::Status::kRunCrashed:
        ++run_crashed_;
        break;
      case TrialOutcome::Status::kTimeout:
        ++timeouts_;
        break;
      case TrialOutcome::Status::kOk:
        break;
    }
  }
  history_.push_back(std::move(record));
}

TrialOutcome SearchSession::EvaluateWithPolicy(Testbench* bench, const Configuration& config,
                                               Rng& rng, SimClock* clock, bool skip_build,
                                               bool boot_only, uint64_t seed_base,
                                               size_t* retries_used) const {
  TrialOutcome outcome = bench->Evaluate(config, rng, clock, skip_build, boot_only);
  // Transient-class failures say nothing about the configuration; re-issue
  // the trial on a fresh counter-derived stream, charging every attempt.
  for (size_t attempt = 1; attempt <= options_.retry_transient && outcome.transient();
       ++attempt) {
    Rng retry_rng(HashCombine(HashCombine(seed_base, 0x7e7271), attempt));
    outcome = bench->Evaluate(config, retry_rng, clock, skip_build, boot_only);
    ++*retries_used;
  }
  // Median-of-k for noisy measurements: the image is already built, so the
  // repeats skip the build phase; only the metric is re-measured.
  if (outcome.ok() && options_.measure_repeats > 1 && !boot_only) {
    std::vector<double> metrics{outcome.metric};
    for (size_t repeat = 1; repeat < options_.measure_repeats; ++repeat) {
      Rng repeat_rng(HashCombine(HashCombine(seed_base, 0x3e9ea7), repeat));
      TrialOutcome again =
          bench->Evaluate(config, repeat_rng, clock, /*skip_build=*/true, boot_only);
      if (again.ok()) {
        metrics.push_back(again.metric);
      }
    }
    std::sort(metrics.begin(), metrics.end());
    outcome.metric = metrics[(metrics.size() - 1) / 2];  // Lower median.
  }
  return outcome;
}

bool SearchSession::Step() {
  if (history_.size() >= options_.max_iterations || clock_.Now() >= options_.max_sim_seconds) {
    return false;
  }
  SearchContext context = MakeContext();

  const uint64_t trace_iter = history_.size();
  const bool tracing = obs::Enabled();
  WallTimer timer;
  PendingTrial pending;
  pending.config = searcher_->Propose(context);
  DedupProposal(context, &pending.config);
  // The propose span reuses the searcher-seconds stopwatch stamps, so
  // tracing it costs no clock reads the untraced loop does not already pay.
  const int64_t propose_ns = timer.ElapsedNs();
  double propose_seconds = static_cast<double>(propose_ns) * 1e-9;
  if (tracing) {
    trace_.Record(obs::TraceKind::kPropose, trace_iter, timer.start_ns(),
                  propose_ns);
  }

  pending.skip_build =
      last_built_image_.has_value() && SameImageParams(pending.config, *last_built_image_);
  bool boot_only = options_.objective == ObjectiveKind::kMemoryFootprint;
  // Serial evaluation draws from the session RNG and advances the session
  // clock directly — byte for byte the pre-batch loop (the policy wrapper
  // only draws extra streams when retries/repeats are enabled). The retry
  // seed base matches the batch slot formula at slot 0.
  pending.rng_seed = HashCombine(HashCombine(options_.seed, 0xba7c4),
                                 static_cast<uint64_t>(history_.size()));
  size_t retries = 0;
  // The evaluate span chains off the propose span's end stamp: the
  // bookkeeping between them is tens of nanoseconds, so sharing the stamp
  // costs no fidelity, and only the span's end pays a fresh clock read.
  const int64_t evaluate_start_ns = timer.start_ns() + propose_ns;
  pending.outcome = EvaluateWithPolicy(bench_, pending.config, rng_, &clock_,
                                       pending.skip_build, boot_only, pending.rng_seed,
                                       &retries);
  int64_t evaluate_end_ns = 0;
  if (tracing) {
    evaluate_end_ns = obs::NowNs();
    trace_.Record(obs::TraceKind::kEvaluate, trace_iter, evaluate_start_ns,
                  evaluate_end_ns - evaluate_start_ns);
  }
  pending.retries = retries;

  CommitTrial(std::move(pending), clock_.Now(), evaluate_end_ns);
  if (options_.objective == ObjectiveKind::kScore) {
    RefreshScores();
  }

  timer.Restart();
  searcher_->Observe(history_.back(), context);
  // Like the propose span, the observe span rides the stopwatch stamps.
  const int64_t observe_ns = timer.ElapsedNs();
  if (tracing) {
    trace_.Record(obs::TraceKind::kObserve, trace_iter, timer.start_ns(),
                  observe_ns);
  }
  history_.back().searcher_seconds =
      propose_seconds + static_cast<double>(observe_ns) * 1e-9;
  MaybeDetectDrift(context);
  return true;
}

void SearchSession::EnsureBenchClones(size_t n) {
  while (bench_clones_.size() < n) {
    bench_clones_.push_back(std::make_unique<Testbench>(*bench_));
  }
}

size_t SearchSession::StepBatch() {
  if (options_.parallel_evaluations <= 1) {
    return Step() ? 1 : 0;
  }
  if (options_.sliding_window) {
    return StepSlidingWave();
  }
  if (history_.size() >= options_.max_iterations || clock_.Now() >= options_.max_sim_seconds) {
    return 0;
  }
  size_t n = std::min(options_.parallel_evaluations,
                      options_.max_iterations - history_.size());
  SearchContext context = MakeContext();
  // Batch rounds draw proposal entropy from a counter-derived per-round
  // stream instead of the serial session stream: the round's randomness is
  // then a pure function of (seed, trials committed so far), so a session
  // Resume()d at a round boundary proposes exactly what the uninterrupted
  // run would have — replaying history never has to reconstruct how many
  // draws past proposals consumed.
  Rng round_rng(HashCombine(HashCombine(options_.seed, 0x6a7cb), history_.size()));
  context.rng = &round_rng;

  // --- Propose one batch, dedup each slot against history and earlier
  // slots (DedupProposal marks hashes seen as it goes). ---------------------
  const uint64_t trace_iter = history_.size();
  int64_t span_start = obs::Enabled() ? obs::NowNs() : 0;
  WallTimer timer;
  std::vector<Configuration> batch;
  searcher_->ProposeBatch(context, n, &batch);
  if (batch.empty()) {
    batch.push_back(searcher_->Propose(context));
  }
  n = std::min(n, batch.size());
  for (size_t slot = 0; slot < n; ++slot) {
    DedupProposal(context, &batch[slot]);
  }
  double propose_seconds = timer.ElapsedSeconds();
  if (span_start != 0) {
    trace_.Record(obs::TraceKind::kPropose, trace_iter, span_start,
                  obs::NowNs() - span_start);
  }

  // --- Evaluate the K slots concurrently. ----------------------------------
  // Each slot gets (a) its own Testbench clone — slot i of every round runs
  // on clone i, so any model-internal state evolves identically at any
  // thread count; (b) its own counter-derived RNG stream, seeded from the
  // session seed and the trial's global index; (c) its own SimClock. No
  // state is shared across slots, which is what makes the round — and the
  // whole history — independent of how slots land on physical threads.
  EnsureBenchClones(n);
  const double round_start = clock_.Now();
  const bool boot_only = options_.objective == ObjectiveKind::kMemoryFootprint;
  pending_.clear();
  pending_.resize(n);
  for (size_t slot = 0; slot < n; ++slot) {
    PendingTrial& pending = pending_[slot];
    pending.config = std::move(batch[slot]);
    // Every slot compares against the image built before the round: the
    // virtual testbenches start the round with the same cached image.
    pending.skip_build = last_built_image_.has_value() &&
                         SameImageParams(pending.config, *last_built_image_);
    pending.rng_seed = HashCombine(HashCombine(options_.seed, 0xba7c4),
                                   static_cast<uint64_t>(history_.size() + slot));
  }
  size_t ways = options_.eval_threads == 0 ? n : options_.eval_threads;
  span_start = obs::Enabled() ? obs::NowNs() : 0;
  ParallelFor(&ThreadPool::Shared(), n, /*grain=*/1, ways, [&](size_t begin, size_t end) {
    for (size_t slot = begin; slot < end; ++slot) {
      PendingTrial& pending = pending_[slot];
      Rng trial_rng(pending.rng_seed);
      SimClock local_clock;
      // Clone clocks start at 0: anchor them at the round start so
      // scheduled faults (drift_at) see global simulated time.
      bench_clones_[slot]->SetSimTimeOrigin(round_start);
      size_t retries = 0;
      pending.outcome = EvaluateWithPolicy(bench_clones_[slot].get(), pending.config,
                                           trial_rng, &local_clock, pending.skip_build,
                                           boot_only, pending.rng_seed, &retries);
      pending.retries = retries;
      pending.sim_seconds = local_clock.Now();
    }
  });
  if (span_start != 0) {
    // One wave-scoped evaluate span for the whole concurrent round.
    trace_.Record(obs::TraceKind::kEvaluate, trace_iter, span_start,
                  obs::NowNs() - span_start);
  }

  // --- Virtual-time merge: commit completions in the order the simulated
  // testbenches would have finished, ties broken by batch index. ------------
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return pending_[a].sim_seconds < pending_[b].sim_seconds;
  });
  double round_span = 0.0;
  for (size_t slot : order) {
    round_span = std::max(round_span, pending_[slot].sim_seconds);
    CommitTrial(std::move(pending_[slot]), round_start + pending_[slot].sim_seconds);
  }
  // The round ends when its slowest virtual testbench finishes.
  clock_.Advance(round_span);
  if (options_.objective == ObjectiveKind::kScore) {
    RefreshScores();
  }

  // --- Feed the committed round back, in commit order. ---------------------
  span_start = obs::Enabled() ? obs::NowNs() : 0;
  timer.Restart();
  searcher_->ObserveBatch(Span<const TrialRecord>(history_.data() + history_.size() - n, n),
                          context);
  if (span_start != 0) {
    trace_.Record(obs::TraceKind::kObserve, trace_iter, span_start,
                  obs::NowNs() - span_start);
  }
  double per_trial_seconds = (propose_seconds + timer.ElapsedSeconds()) / static_cast<double>(n);
  for (size_t i = history_.size() - n; i < history_.size(); ++i) {
    history_[i].searcher_seconds = per_trial_seconds;
  }
  MaybeDetectDrift(context);
  return n;
}

void SearchSession::RefillSlidingSlots() {
  size_t window = options_.parallel_evaluations;
  EnsureBenchClones(window);
  if (free_clones_.empty() && in_flight_.empty()) {
    // First refill: every clone is free, in slot order.
    for (size_t i = 0; i < window; ++i) {
      free_clones_.push_back(i);
    }
  }
  if (clock_.Now() >= options_.max_sim_seconds ||
      history_.size() + in_flight_.size() >= options_.max_iterations) {
    return;
  }
  size_t n = std::min(window - in_flight_.size(),
                      options_.max_iterations - history_.size() - in_flight_.size());
  if (n == 0) {
    return;
  }
  SearchContext context = MakeContext();
  // Same counter-derived entropy recipe as the lock-step round, keyed on
  // proposals launched instead of trials committed: the two counts agree
  // whenever commits happen in full waves, which is exactly the
  // equal-duration case the bit-for-bit pin covers.
  sliding_rng_ = Rng(HashCombine(HashCombine(options_.seed, 0x6a7cb), proposed_count_));
  context.rng = &sliding_rng_;

  int64_t span_start = obs::Enabled() ? obs::NowNs() : 0;
  WallTimer timer;
  std::vector<Configuration> batch;
  searcher_->ProposeBatch(context, n, &batch);
  if (batch.empty()) {
    batch.push_back(searcher_->Propose(context));
  }
  n = std::min(n, batch.size());
  for (size_t slot = 0; slot < n; ++slot) {
    DedupProposal(context, &batch[slot]);
  }
  pending_propose_seconds_ += timer.ElapsedSeconds();
  if (span_start != 0) {
    trace_.Record(obs::TraceKind::kPropose, proposed_count_, span_start,
                  obs::NowNs() - span_start);
  }

  // Launch the refills: each takes the oldest free clone, its own
  // counter-derived RNG stream, and its own local clock, exactly like a
  // lock-step slot. The physical evaluation happens eagerly — virtual time
  // decides when the result is allowed to commit.
  const double start_time = clock_.Now();
  const bool boot_only = options_.objective == ObjectiveKind::kMemoryFootprint;
  size_t first = in_flight_.size();
  for (size_t slot = 0; slot < n; ++slot) {
    InFlight flight;
    flight.trial.config = std::move(batch[slot]);
    flight.trial.skip_build = last_built_image_.has_value() &&
                              SameImageParams(flight.trial.config, *last_built_image_);
    flight.trial.rng_seed = HashCombine(HashCombine(options_.seed, 0xba7c4),
                                        static_cast<uint64_t>(proposed_count_ + slot));
    flight.sequence = proposed_count_ + slot;
    flight.clone = free_clones_.front();
    free_clones_.erase(free_clones_.begin());
    in_flight_.push_back(std::move(flight));
  }
  proposed_count_ += n;
  size_t ways = options_.eval_threads == 0 ? n : options_.eval_threads;
  span_start = obs::Enabled() ? obs::NowNs() : 0;
  ParallelFor(&ThreadPool::Shared(), n, /*grain=*/1, ways, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      InFlight& flight = in_flight_[first + i];
      Rng trial_rng(flight.trial.rng_seed);
      SimClock local_clock;
      bench_clones_[flight.clone]->SetSimTimeOrigin(start_time);
      size_t retries = 0;
      flight.trial.outcome = EvaluateWithPolicy(bench_clones_[flight.clone].get(),
                                                flight.trial.config, trial_rng, &local_clock,
                                                flight.trial.skip_build, boot_only,
                                                flight.trial.rng_seed, &retries);
      flight.trial.retries = retries;
      flight.trial.sim_seconds = local_clock.Now();
      flight.finish_time = start_time + flight.trial.sim_seconds;
    }
  });
  if (span_start != 0) {
    trace_.Record(obs::TraceKind::kEvaluate, proposed_count_ - n, span_start,
                  obs::NowNs() - span_start);
  }
}

size_t SearchSession::StepSlidingWave() {
  RefillSlidingSlots();
  if (in_flight_.empty()) {
    return 0;
  }
  // The commit wave: every in-flight trial tying the earliest virtual finish
  // time, in proposal order — the same order the lock-step merge's
  // stable_sort produces when a whole round finishes simultaneously.
  double earliest = in_flight_.front().finish_time;
  for (const InFlight& flight : in_flight_) {
    earliest = std::min(earliest, flight.finish_time);
  }
  std::vector<InFlight> wave;
  for (size_t i = 0; i < in_flight_.size();) {
    if (in_flight_[i].finish_time == earliest) {
      wave.push_back(std::move(in_flight_[i]));
      in_flight_.erase(in_flight_.begin() + i);
    } else {
      ++i;
    }
  }
  std::stable_sort(wave.begin(), wave.end(), [](const InFlight& a, const InFlight& b) {
    return a.sequence < b.sequence;
  });
  size_t n = wave.size();
  for (InFlight& flight : wave) {
    free_clones_.push_back(flight.clone);
    CommitTrial(std::move(flight.trial), flight.finish_time);
  }
  clock_.Advance(earliest - clock_.Now());
  if (options_.objective == ObjectiveKind::kScore) {
    RefreshScores();
  }

  SearchContext context = MakeContext();
  context.rng = &sliding_rng_;
  int64_t span_start = obs::Enabled() ? obs::NowNs() : 0;
  WallTimer timer;
  searcher_->ObserveBatch(Span<const TrialRecord>(history_.data() + history_.size() - n, n),
                          context);
  if (span_start != 0) {
    trace_.Record(obs::TraceKind::kObserve, history_.size() - n, span_start,
                  obs::NowNs() - span_start);
  }
  double per_trial_seconds =
      (pending_propose_seconds_ + timer.ElapsedSeconds()) / static_cast<double>(n);
  pending_propose_seconds_ = 0.0;
  for (size_t i = history_.size() - n; i < history_.size(); ++i) {
    history_[i].searcher_seconds = per_trial_seconds;
  }
  // Only at an empty window: a re-validation trial committed mid-window
  // would reorder against in-flight proposals.
  if (in_flight_.empty()) {
    MaybeDetectDrift(context);
  }
  return n;
}

void SearchSession::MaybeDetectDrift(SearchContext& context) {
  if (!options_.drift_detection) {
    return;
  }
  const size_t window = std::max<size_t>(options_.drift_window, 2);
  // All-time best successful objective, its index, the total success count,
  // and the best within the trailing window of successes.
  double best = 0.0;
  size_t best_index = 0;
  bool have_best = false;
  size_t successes = 0;
  for (size_t i = 0; i < history_.size(); ++i) {
    if (!history_[i].HasObjective()) {
      continue;
    }
    ++successes;
    if (!have_best || history_[i].objective > best) {
      best = history_[i].objective;
      best_index = i;
      have_best = true;
    }
  }
  // Need a pre-window baseline to regress against, and a cooldown of one
  // full window of fresh successes after the previous event.
  if (!have_best || successes < 2 * window ||
      successes - successes_at_last_drift_ < window) {
    return;
  }
  double recent_best = 0.0;
  bool have_recent = false;
  size_t counted = 0;
  for (size_t i = history_.size(); i > 0 && counted < window; --i) {
    const TrialRecord& trial = history_[i - 1];
    if (!trial.HasObjective()) {
      continue;
    }
    ++counted;
    if (!have_recent || trial.objective > recent_best) {
      recent_best = trial.objective;
      have_recent = true;
    }
  }
  double scale = std::max(std::fabs(best), 1e-9);
  if (best - recent_best <= options_.drift_threshold * scale) {
    return;
  }
  // Drift: even the best of a whole recent window sits far below the
  // historical elite — the landscape moved, not just one unlucky trial.
  ++drift_events_;
  successes_at_last_drift_ = successes;
  trace_.RecordInstant(obs::TraceKind::kDriftRevalidate, history_.size());
  searcher_->OnDrift(context);

  // Elite re-validation: re-measure the historical best configuration on
  // the current landscape so its post-drift value enters the history (and
  // the searcher's refreshed elite set) as a regular budget-charged trial.
  if (history_.size() >= options_.max_iterations || clock_.Now() >= options_.max_sim_seconds) {
    return;
  }
  PendingTrial pending;
  pending.config = history_[best_index].config;
  pending.rng_seed = HashCombine(HashCombine(options_.seed, 0xd21f7),
                                 static_cast<uint64_t>(drift_events_));
  pending.skip_build =
      last_built_image_.has_value() && SameImageParams(pending.config, *last_built_image_);
  Rng revalidate_rng(pending.rng_seed);
  size_t retries = 0;
  bool boot_only = options_.objective == ObjectiveKind::kMemoryFootprint;
  pending.outcome = EvaluateWithPolicy(bench_, pending.config, revalidate_rng, &clock_,
                                       pending.skip_build, boot_only, pending.rng_seed,
                                       &retries);
  pending.retries = retries;
  CommitTrial(std::move(pending), clock_.Now());
  if (options_.objective == ObjectiveKind::kScore) {
    RefreshScores();
  }
  searcher_->Observe(history_.back(), context);
}

SessionResult SearchSession::Finish() {
  SessionResult result;
  result.history = history_;
  result.total_sim_seconds = clock_.Now();
  result.crashes = crashes_;
  result.builds = builds_;
  result.builds_skipped = builds_skipped_;
  result.build_failures = build_failed_;
  result.boot_failures = boot_failed_;
  result.run_crashes = run_crashed_;
  result.timeouts = timeouts_;
  result.transient_retries = retries_;
  result.drift_events = drift_events_;
  for (size_t i = 0; i < result.history.size(); ++i) {
    const TrialRecord& trial = result.history[i];
    if (!trial.HasObjective()) {
      continue;
    }
    if (!result.best_index.has_value() ||
        trial.objective > result.history[*result.best_index].objective) {
      result.best_index = i;
    }
  }
  return result;
}

void SearchSession::Resume(const std::vector<TrialRecord>& prior) {
  assert(history_.empty() && "Resume must precede the first Step()");
  SearchContext context = MakeContext();
  for (const TrialRecord& trial : prior) {
    history_.push_back(trial);
    seen_hashes_.insert(trial.config.Hash());
    if (trial.crashed()) {
      ++crashes_;
      switch (trial.outcome.status) {
        case TrialOutcome::Status::kBuildFailed:
          ++build_failed_;
          break;
        case TrialOutcome::Status::kBootFailed:
          ++boot_failed_;
          break;
        case TrialOutcome::Status::kRunCrashed:
          ++run_crashed_;
          break;
        case TrialOutcome::Status::kTimeout:
          ++timeouts_;
          break;
        case TrialOutcome::Status::kOk:
          break;
      }
    }
    // The build-skip cache warms from the last image that actually built —
    // mirroring CommitTrial exactly, so a resumed session's cache state
    // matches the run that produced the history. (A build-skipped trial has
    // the same compile/boot parameters as that image anyway; only
    // SameImageParams-irrelevant runtime fields could differ.)
    if (!trial.outcome.build_skipped) {
      ++builds_;
      if (trial.outcome.status != TrialOutcome::Status::kBuildFailed) {
        last_built_image_ = trial.config;
      }
    } else {
      ++builds_skipped_;
    }
    searcher_->Observe(history_.back(), context);
  }
  if (!history_.empty()) {
    clock_.Advance(history_.back().sim_time_end - clock_.Now());
  }
  proposed_count_ = history_.size();
  if (options_.objective == ObjectiveKind::kScore) {
    RefreshScores();
  }
}

bool SearchSession::Resume(const std::vector<TrialRecord>& prior,
                           const CheckpointLiveState& live) {
  // Replay first: it runs against fresh RNG streams exactly like a plain
  // resume (Observe must not consume the restored state), then the live
  // positions overwrite the fresh ones.
  Resume(prior);
  if (!live.session_rng.empty() && !rng_.DeserializeState(live.session_rng)) {
    return false;
  }
  if (!live.searcher_rng.empty() && !searcher_rng_.DeserializeState(live.searcher_rng)) {
    return false;
  }
  return searcher_->RestoreState(live.searcher_state);
}

CheckpointLiveState SearchSession::ExportLiveState() const {
  CheckpointLiveState live;
  live.session_rng = rng_.SerializeState();
  live.searcher_rng = searcher_rng_.SerializeState();
  live.searcher_state = searcher_->ExportState();
  return live;
}

SessionResult SearchSession::Run() {
  while (StepBatch() > 0) {
  }
  return Finish();
}

SessionResult RunSearch(Testbench* bench, Searcher* searcher, const SessionOptions& options) {
  SearchSession session(bench, searcher, options);
  return session.Run();
}

std::vector<SeriesPoint> ObjectiveSeries(const std::vector<TrialRecord>& history) {
  std::vector<SeriesPoint> series;
  for (const TrialRecord& trial : history) {
    if (trial.HasObjective()) {
      series.push_back({trial.sim_time_end, trial.objective});
    }
  }
  return series;
}

std::vector<double> CrashRateSeries(const std::vector<TrialRecord>& history, size_t window) {
  std::vector<double> crashed(history.size());
  for (size_t i = 0; i < history.size(); ++i) {
    crashed[i] = history[i].crashed() ? 1.0 : 0.0;
  }
  return SmoothSeries(crashed, window);
}

}  // namespace wayfinder
