#include "src/platform/session.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "src/simos/apps.h"
#include "src/util/stats.h"
#include "src/util/thread_pool.h"

namespace wayfinder {

SearchSession::SearchSession(Testbench* bench, Searcher* searcher, const SessionOptions& options)
    : bench_(bench),
      searcher_(searcher),
      options_(options),
      rng_(options.seed),
      searcher_rng_(HashCombine(options.seed, 0x5ea7c4e7)) {}

bool SearchSession::SameImageParams(const Configuration& a, const Configuration& b) const {
  const ConfigSpace& space = bench_->space();
  for (size_t i = 0; i < space.Size(); ++i) {
    if (space.Param(i).phase == ParamPhase::kRuntime) {
      continue;
    }
    if (a.Raw(i) != b.Raw(i)) {
      return false;
    }
  }
  return true;
}

double TrialObjective(const TrialOutcome& outcome, ObjectiveKind objective, AppId app) {
  if (!outcome.ok()) {
    return std::nan("");
  }
  switch (objective) {
    case ObjectiveKind::kAppMetric: {
      const AppProfile& profile = GetApp(app);
      // Normalize polarity: objectives are always maximized.
      return profile.maximize ? outcome.metric : -outcome.metric;
    }
    case ObjectiveKind::kMemoryFootprint:
      return -outcome.memory_mb;
    case ObjectiveKind::kScore:
      // Placeholder; RefreshScoreObjectives recomputes all score
      // objectives over the history after each observation.
      return 0.0;
  }
  return std::nan("");
}

void RefreshScoreObjectives(std::vector<TrialRecord>* history) {
  // Eq. 4: s = mXNorm(throughput) - mXNorm(memory), over successful trials.
  std::vector<size_t> indices;
  std::vector<double> throughput;
  std::vector<double> memory;
  for (size_t i = 0; i < history->size(); ++i) {
    if ((*history)[i].outcome.ok()) {
      indices.push_back(i);
      throughput.push_back((*history)[i].outcome.metric);
      memory.push_back((*history)[i].outcome.memory_mb);
    }
  }
  std::vector<double> t_norm = MinMaxNormalize(throughput);
  std::vector<double> m_norm = MinMaxNormalize(memory);
  for (size_t k = 0; k < indices.size(); ++k) {
    (*history)[indices[k]].objective = t_norm[k] - m_norm[k];
  }
}

double SearchSession::ComputeObjective(const TrialOutcome& outcome) const {
  return TrialObjective(outcome, options_.objective, bench_->app());
}

void SearchSession::RefreshScores() { RefreshScoreObjectives(&history_); }

SearchContext SearchSession::MakeContext() {
  SearchContext context;
  context.space = &bench_->space();
  context.history = &history_;
  context.sample_options = options_.sample_options;
  context.rng = &searcher_rng_;
  return context;
}

void SearchSession::DedupProposal(SearchContext& context, Configuration* config) {
  for (size_t retry = 0; retry < options_.dedup_retries; ++retry) {
    if (seen_hashes_.count(config->Hash()) == 0) {
      break;
    }
    *config = searcher_->Propose(context);
  }
  seen_hashes_.insert(config->Hash());
}

void SearchSession::CommitTrial(PendingTrial&& pending, double end_time) {
  TrialOutcome outcome = pending.outcome;
  if (outcome.ok() && options_.deploy_check != nullptr &&
      !options_.deploy_check(pending.config, outcome)) {
    // §3.5: a failed deployment check is learned exactly like a crash.
    outcome.status = TrialOutcome::Status::kRunCrashed;
    outcome.failure_reason = "deployment check failed";
    outcome.metric = 0.0;
  }
  if (!pending.skip_build) {
    ++builds_;
    if (outcome.status != TrialOutcome::Status::kBuildFailed) {
      last_built_image_ = pending.config;
    }
  } else {
    ++builds_skipped_;
  }

  TrialRecord record;
  record.iteration = history_.size();
  record.config = std::move(pending.config);
  record.outcome = outcome;
  record.objective = ComputeObjective(outcome);
  record.sim_time_end = end_time;
  if (!outcome.ok()) {
    ++crashes_;
  }
  history_.push_back(std::move(record));
}

bool SearchSession::Step() {
  if (history_.size() >= options_.max_iterations || clock_.Now() >= options_.max_sim_seconds) {
    return false;
  }
  SearchContext context = MakeContext();

  WallTimer timer;
  PendingTrial pending;
  pending.config = searcher_->Propose(context);
  DedupProposal(context, &pending.config);
  double propose_seconds = timer.ElapsedSeconds();

  pending.skip_build =
      last_built_image_.has_value() && SameImageParams(pending.config, *last_built_image_);
  bool boot_only = options_.objective == ObjectiveKind::kMemoryFootprint;
  // Serial evaluation draws from the session RNG and advances the session
  // clock directly — byte for byte the pre-batch loop.
  pending.outcome =
      bench_->Evaluate(pending.config, rng_, &clock_, pending.skip_build, boot_only);

  CommitTrial(std::move(pending), clock_.Now());
  if (options_.objective == ObjectiveKind::kScore) {
    RefreshScores();
  }

  timer.Restart();
  searcher_->Observe(history_.back(), context);
  history_.back().searcher_seconds = propose_seconds + timer.ElapsedSeconds();
  return true;
}

void SearchSession::EnsureBenchClones(size_t n) {
  while (bench_clones_.size() < n) {
    bench_clones_.push_back(std::make_unique<Testbench>(*bench_));
  }
}

size_t SearchSession::StepBatch() {
  if (options_.parallel_evaluations <= 1) {
    return Step() ? 1 : 0;
  }
  if (options_.sliding_window) {
    return StepSlidingWave();
  }
  if (history_.size() >= options_.max_iterations || clock_.Now() >= options_.max_sim_seconds) {
    return 0;
  }
  size_t n = std::min(options_.parallel_evaluations,
                      options_.max_iterations - history_.size());
  SearchContext context = MakeContext();
  // Batch rounds draw proposal entropy from a counter-derived per-round
  // stream instead of the serial session stream: the round's randomness is
  // then a pure function of (seed, trials committed so far), so a session
  // Resume()d at a round boundary proposes exactly what the uninterrupted
  // run would have — replaying history never has to reconstruct how many
  // draws past proposals consumed.
  Rng round_rng(HashCombine(HashCombine(options_.seed, 0x6a7cb), history_.size()));
  context.rng = &round_rng;

  // --- Propose one batch, dedup each slot against history and earlier
  // slots (DedupProposal marks hashes seen as it goes). ---------------------
  WallTimer timer;
  std::vector<Configuration> batch;
  searcher_->ProposeBatch(context, n, &batch);
  if (batch.empty()) {
    batch.push_back(searcher_->Propose(context));
  }
  n = std::min(n, batch.size());
  for (size_t slot = 0; slot < n; ++slot) {
    DedupProposal(context, &batch[slot]);
  }
  double propose_seconds = timer.ElapsedSeconds();

  // --- Evaluate the K slots concurrently. ----------------------------------
  // Each slot gets (a) its own Testbench clone — slot i of every round runs
  // on clone i, so any model-internal state evolves identically at any
  // thread count; (b) its own counter-derived RNG stream, seeded from the
  // session seed and the trial's global index; (c) its own SimClock. No
  // state is shared across slots, which is what makes the round — and the
  // whole history — independent of how slots land on physical threads.
  EnsureBenchClones(n);
  const double round_start = clock_.Now();
  const bool boot_only = options_.objective == ObjectiveKind::kMemoryFootprint;
  pending_.clear();
  pending_.resize(n);
  for (size_t slot = 0; slot < n; ++slot) {
    PendingTrial& pending = pending_[slot];
    pending.config = std::move(batch[slot]);
    // Every slot compares against the image built before the round: the
    // virtual testbenches start the round with the same cached image.
    pending.skip_build = last_built_image_.has_value() &&
                         SameImageParams(pending.config, *last_built_image_);
    pending.rng_seed = HashCombine(HashCombine(options_.seed, 0xba7c4),
                                   static_cast<uint64_t>(history_.size() + slot));
  }
  size_t ways = options_.eval_threads == 0 ? n : options_.eval_threads;
  ParallelFor(&ThreadPool::Shared(), n, /*grain=*/1, ways, [&](size_t begin, size_t end) {
    for (size_t slot = begin; slot < end; ++slot) {
      PendingTrial& pending = pending_[slot];
      Rng trial_rng(pending.rng_seed);
      SimClock local_clock;
      pending.outcome = bench_clones_[slot]->Evaluate(pending.config, trial_rng,
                                                      &local_clock, pending.skip_build,
                                                      boot_only);
      pending.sim_seconds = local_clock.Now();
    }
  });

  // --- Virtual-time merge: commit completions in the order the simulated
  // testbenches would have finished, ties broken by batch index. ------------
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return pending_[a].sim_seconds < pending_[b].sim_seconds;
  });
  double round_span = 0.0;
  for (size_t slot : order) {
    round_span = std::max(round_span, pending_[slot].sim_seconds);
    CommitTrial(std::move(pending_[slot]), round_start + pending_[slot].sim_seconds);
  }
  // The round ends when its slowest virtual testbench finishes.
  clock_.Advance(round_span);
  if (options_.objective == ObjectiveKind::kScore) {
    RefreshScores();
  }

  // --- Feed the committed round back, in commit order. ---------------------
  timer.Restart();
  searcher_->ObserveBatch(Span<const TrialRecord>(history_.data() + history_.size() - n, n),
                          context);
  double per_trial_seconds = (propose_seconds + timer.ElapsedSeconds()) / static_cast<double>(n);
  for (size_t i = history_.size() - n; i < history_.size(); ++i) {
    history_[i].searcher_seconds = per_trial_seconds;
  }
  return n;
}

void SearchSession::RefillSlidingSlots() {
  size_t window = options_.parallel_evaluations;
  EnsureBenchClones(window);
  if (free_clones_.empty() && in_flight_.empty()) {
    // First refill: every clone is free, in slot order.
    for (size_t i = 0; i < window; ++i) {
      free_clones_.push_back(i);
    }
  }
  if (clock_.Now() >= options_.max_sim_seconds ||
      history_.size() + in_flight_.size() >= options_.max_iterations) {
    return;
  }
  size_t n = std::min(window - in_flight_.size(),
                      options_.max_iterations - history_.size() - in_flight_.size());
  if (n == 0) {
    return;
  }
  SearchContext context = MakeContext();
  // Same counter-derived entropy recipe as the lock-step round, keyed on
  // proposals launched instead of trials committed: the two counts agree
  // whenever commits happen in full waves, which is exactly the
  // equal-duration case the bit-for-bit pin covers.
  sliding_rng_ = Rng(HashCombine(HashCombine(options_.seed, 0x6a7cb), proposed_count_));
  context.rng = &sliding_rng_;

  WallTimer timer;
  std::vector<Configuration> batch;
  searcher_->ProposeBatch(context, n, &batch);
  if (batch.empty()) {
    batch.push_back(searcher_->Propose(context));
  }
  n = std::min(n, batch.size());
  for (size_t slot = 0; slot < n; ++slot) {
    DedupProposal(context, &batch[slot]);
  }
  pending_propose_seconds_ += timer.ElapsedSeconds();

  // Launch the refills: each takes the oldest free clone, its own
  // counter-derived RNG stream, and its own local clock, exactly like a
  // lock-step slot. The physical evaluation happens eagerly — virtual time
  // decides when the result is allowed to commit.
  const double start_time = clock_.Now();
  const bool boot_only = options_.objective == ObjectiveKind::kMemoryFootprint;
  size_t first = in_flight_.size();
  for (size_t slot = 0; slot < n; ++slot) {
    InFlight flight;
    flight.trial.config = std::move(batch[slot]);
    flight.trial.skip_build = last_built_image_.has_value() &&
                              SameImageParams(flight.trial.config, *last_built_image_);
    flight.trial.rng_seed = HashCombine(HashCombine(options_.seed, 0xba7c4),
                                        static_cast<uint64_t>(proposed_count_ + slot));
    flight.sequence = proposed_count_ + slot;
    flight.clone = free_clones_.front();
    free_clones_.erase(free_clones_.begin());
    in_flight_.push_back(std::move(flight));
  }
  proposed_count_ += n;
  size_t ways = options_.eval_threads == 0 ? n : options_.eval_threads;
  ParallelFor(&ThreadPool::Shared(), n, /*grain=*/1, ways, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      InFlight& flight = in_flight_[first + i];
      Rng trial_rng(flight.trial.rng_seed);
      SimClock local_clock;
      flight.trial.outcome =
          bench_clones_[flight.clone]->Evaluate(flight.trial.config, trial_rng,
                                                &local_clock, flight.trial.skip_build,
                                                boot_only);
      flight.trial.sim_seconds = local_clock.Now();
      flight.finish_time = start_time + flight.trial.sim_seconds;
    }
  });
}

size_t SearchSession::StepSlidingWave() {
  RefillSlidingSlots();
  if (in_flight_.empty()) {
    return 0;
  }
  // The commit wave: every in-flight trial tying the earliest virtual finish
  // time, in proposal order — the same order the lock-step merge's
  // stable_sort produces when a whole round finishes simultaneously.
  double earliest = in_flight_.front().finish_time;
  for (const InFlight& flight : in_flight_) {
    earliest = std::min(earliest, flight.finish_time);
  }
  std::vector<InFlight> wave;
  for (size_t i = 0; i < in_flight_.size();) {
    if (in_flight_[i].finish_time == earliest) {
      wave.push_back(std::move(in_flight_[i]));
      in_flight_.erase(in_flight_.begin() + i);
    } else {
      ++i;
    }
  }
  std::stable_sort(wave.begin(), wave.end(), [](const InFlight& a, const InFlight& b) {
    return a.sequence < b.sequence;
  });
  size_t n = wave.size();
  for (InFlight& flight : wave) {
    free_clones_.push_back(flight.clone);
    CommitTrial(std::move(flight.trial), flight.finish_time);
  }
  clock_.Advance(earliest - clock_.Now());
  if (options_.objective == ObjectiveKind::kScore) {
    RefreshScores();
  }

  SearchContext context = MakeContext();
  context.rng = &sliding_rng_;
  WallTimer timer;
  searcher_->ObserveBatch(Span<const TrialRecord>(history_.data() + history_.size() - n, n),
                          context);
  double per_trial_seconds =
      (pending_propose_seconds_ + timer.ElapsedSeconds()) / static_cast<double>(n);
  pending_propose_seconds_ = 0.0;
  for (size_t i = history_.size() - n; i < history_.size(); ++i) {
    history_[i].searcher_seconds = per_trial_seconds;
  }
  return n;
}

SessionResult SearchSession::Finish() {
  SessionResult result;
  result.history = history_;
  result.total_sim_seconds = clock_.Now();
  result.crashes = crashes_;
  result.builds = builds_;
  result.builds_skipped = builds_skipped_;
  for (size_t i = 0; i < result.history.size(); ++i) {
    const TrialRecord& trial = result.history[i];
    if (!trial.HasObjective()) {
      continue;
    }
    if (!result.best_index.has_value() ||
        trial.objective > result.history[*result.best_index].objective) {
      result.best_index = i;
    }
  }
  return result;
}

void SearchSession::Resume(const std::vector<TrialRecord>& prior) {
  assert(history_.empty() && "Resume must precede the first Step()");
  SearchContext context = MakeContext();
  for (const TrialRecord& trial : prior) {
    history_.push_back(trial);
    seen_hashes_.insert(trial.config.Hash());
    if (trial.crashed()) {
      ++crashes_;
    }
    // The build-skip cache warms from the last image that actually built —
    // mirroring CommitTrial exactly, so a resumed session's cache state
    // matches the run that produced the history. (A build-skipped trial has
    // the same compile/boot parameters as that image anyway; only
    // SameImageParams-irrelevant runtime fields could differ.)
    if (!trial.outcome.build_skipped) {
      ++builds_;
      if (trial.outcome.status != TrialOutcome::Status::kBuildFailed) {
        last_built_image_ = trial.config;
      }
    } else {
      ++builds_skipped_;
    }
    searcher_->Observe(history_.back(), context);
  }
  if (!history_.empty()) {
    clock_.Advance(history_.back().sim_time_end - clock_.Now());
  }
  proposed_count_ = history_.size();
  if (options_.objective == ObjectiveKind::kScore) {
    RefreshScores();
  }
}

bool SearchSession::Resume(const std::vector<TrialRecord>& prior,
                           const CheckpointLiveState& live) {
  // Replay first: it runs against fresh RNG streams exactly like a plain
  // resume (Observe must not consume the restored state), then the live
  // positions overwrite the fresh ones.
  Resume(prior);
  if (!live.session_rng.empty() && !rng_.DeserializeState(live.session_rng)) {
    return false;
  }
  if (!live.searcher_rng.empty() && !searcher_rng_.DeserializeState(live.searcher_rng)) {
    return false;
  }
  return searcher_->RestoreState(live.searcher_state);
}

CheckpointLiveState SearchSession::ExportLiveState() const {
  CheckpointLiveState live;
  live.session_rng = rng_.SerializeState();
  live.searcher_rng = searcher_rng_.SerializeState();
  live.searcher_state = searcher_->ExportState();
  return live;
}

SessionResult SearchSession::Run() {
  while (StepBatch() > 0) {
  }
  return Finish();
}

SessionResult RunSearch(Testbench* bench, Searcher* searcher, const SessionOptions& options) {
  SearchSession session(bench, searcher, options);
  return session.Run();
}

std::vector<SeriesPoint> ObjectiveSeries(const std::vector<TrialRecord>& history) {
  std::vector<SeriesPoint> series;
  for (const TrialRecord& trial : history) {
    if (trial.HasObjective()) {
      series.push_back({trial.sim_time_end, trial.objective});
    }
  }
  return series;
}

std::vector<double> CrashRateSeries(const std::vector<TrialRecord>& history, size_t window) {
  std::vector<double> crashed(history.size());
  for (size_t i = 0; i < history.size(); ++i) {
    crashed[i] = history[i].crashed() ? 1.0 : 0.0;
  }
  return SmoothSeries(crashed, window);
}

}  // namespace wayfinder
