#include "src/platform/session.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/simos/apps.h"
#include "src/util/stats.h"

namespace wayfinder {

SearchSession::SearchSession(Testbench* bench, Searcher* searcher, const SessionOptions& options)
    : bench_(bench),
      searcher_(searcher),
      options_(options),
      rng_(options.seed),
      searcher_rng_(HashCombine(options.seed, 0x5ea7c4e7)) {}

bool SearchSession::SameImageParams(const Configuration& a, const Configuration& b) const {
  const ConfigSpace& space = bench_->space();
  for (size_t i = 0; i < space.Size(); ++i) {
    if (space.Param(i).phase == ParamPhase::kRuntime) {
      continue;
    }
    if (a.Raw(i) != b.Raw(i)) {
      return false;
    }
  }
  return true;
}

double SearchSession::ComputeObjective(const TrialOutcome& outcome) const {
  if (!outcome.ok()) {
    return std::nan("");
  }
  switch (options_.objective) {
    case ObjectiveKind::kAppMetric: {
      const AppProfile& profile = GetApp(bench_->app());
      // Normalize polarity: objectives are always maximized.
      return profile.maximize ? outcome.metric : -outcome.metric;
    }
    case ObjectiveKind::kMemoryFootprint:
      return -outcome.memory_mb;
    case ObjectiveKind::kScore:
      // Placeholder; RefreshScores() recomputes all score objectives over
      // the history after each observation.
      return 0.0;
  }
  return std::nan("");
}

void SearchSession::RefreshScores() {
  // Eq. 4: s = mXNorm(throughput) - mXNorm(memory), over successful trials.
  std::vector<size_t> indices;
  std::vector<double> throughput;
  std::vector<double> memory;
  for (size_t i = 0; i < history_.size(); ++i) {
    if (history_[i].outcome.ok()) {
      indices.push_back(i);
      throughput.push_back(history_[i].outcome.metric);
      memory.push_back(history_[i].outcome.memory_mb);
    }
  }
  std::vector<double> t_norm = MinMaxNormalize(throughput);
  std::vector<double> m_norm = MinMaxNormalize(memory);
  for (size_t k = 0; k < indices.size(); ++k) {
    history_[indices[k]].objective = t_norm[k] - m_norm[k];
  }
}

bool SearchSession::Step() {
  if (history_.size() >= options_.max_iterations || clock_.Now() >= options_.max_sim_seconds) {
    return false;
  }
  SearchContext context;
  context.space = &bench_->space();
  context.history = &history_;
  context.sample_options = options_.sample_options;
  context.rng = &searcher_rng_;

  WallTimer timer;
  Configuration config = searcher_->Propose(context);
  for (size_t retry = 0; retry < options_.dedup_retries; ++retry) {
    uint64_t hash = config.Hash();
    bool seen = std::find(seen_hashes_.begin(), seen_hashes_.end(), hash) != seen_hashes_.end();
    if (!seen) {
      break;
    }
    config = searcher_->Propose(context);
  }
  double propose_seconds = timer.ElapsedSeconds();
  seen_hashes_.push_back(config.Hash());

  bool skip_build =
      last_built_image_.has_value() && SameImageParams(config, *last_built_image_);
  bool boot_only = options_.objective == ObjectiveKind::kMemoryFootprint;
  TrialOutcome outcome = bench_->Evaluate(config, rng_, &clock_, skip_build, boot_only);
  if (outcome.ok() && options_.deploy_check != nullptr &&
      !options_.deploy_check(config, outcome)) {
    // §3.5: a failed deployment check is learned exactly like a crash.
    outcome.status = TrialOutcome::Status::kRunCrashed;
    outcome.failure_reason = "deployment check failed";
    outcome.metric = 0.0;
  }
  if (!skip_build) {
    ++builds_;
    if (outcome.status != TrialOutcome::Status::kBuildFailed) {
      last_built_image_ = config;
    }
  } else {
    ++builds_skipped_;
  }

  TrialRecord record;
  record.iteration = history_.size();
  record.config = std::move(config);
  record.outcome = outcome;
  record.objective = ComputeObjective(outcome);
  record.sim_time_end = clock_.Now();
  if (!outcome.ok()) {
    ++crashes_;
  }
  history_.push_back(std::move(record));
  if (options_.objective == ObjectiveKind::kScore) {
    RefreshScores();
  }

  timer.Restart();
  searcher_->Observe(history_.back(), context);
  history_.back().searcher_seconds = propose_seconds + timer.ElapsedSeconds();
  return true;
}

SessionResult SearchSession::Finish() {
  SessionResult result;
  result.history = history_;
  result.total_sim_seconds = clock_.Now();
  result.crashes = crashes_;
  result.builds = builds_;
  result.builds_skipped = builds_skipped_;
  for (size_t i = 0; i < result.history.size(); ++i) {
    const TrialRecord& trial = result.history[i];
    if (!trial.HasObjective()) {
      continue;
    }
    if (!result.best_index.has_value() ||
        trial.objective > result.history[*result.best_index].objective) {
      result.best_index = i;
    }
  }
  return result;
}

void SearchSession::Resume(const std::vector<TrialRecord>& prior) {
  assert(history_.empty() && "Resume must precede the first Step()");
  SearchContext context;
  context.space = &bench_->space();
  context.history = &history_;
  context.sample_options = options_.sample_options;
  context.rng = &searcher_rng_;
  for (const TrialRecord& trial : prior) {
    history_.push_back(trial);
    seen_hashes_.push_back(trial.config.Hash());
    if (trial.crashed()) {
      ++crashes_;
    }
    // The build-skip cache warms from the last image that built.
    if (trial.outcome.status != TrialOutcome::Status::kBuildFailed) {
      last_built_image_ = trial.config;
    }
    if (!trial.outcome.build_skipped) {
      ++builds_;
    } else {
      ++builds_skipped_;
    }
    searcher_->Observe(history_.back(), context);
  }
  if (!history_.empty()) {
    clock_.Advance(history_.back().sim_time_end - clock_.Now());
  }
  if (options_.objective == ObjectiveKind::kScore) {
    RefreshScores();
  }
}

SessionResult SearchSession::Run() {
  while (Step()) {
  }
  return Finish();
}

SessionResult RunSearch(Testbench* bench, Searcher* searcher, const SessionOptions& options) {
  SearchSession session(bench, searcher, options);
  return session.Run();
}

std::vector<SeriesPoint> ObjectiveSeries(const std::vector<TrialRecord>& history) {
  std::vector<SeriesPoint> series;
  for (const TrialRecord& trial : history) {
    if (trial.HasObjective()) {
      series.push_back({trial.sim_time_end, trial.objective});
    }
  }
  return series;
}

std::vector<double> CrashRateSeries(const std::vector<TrialRecord>& history, size_t window) {
  std::vector<double> crashed(history.size());
  for (size_t i = 0; i < history.size(); ++i) {
    crashed[i] = history[i].crashed() ? 1.0 : 0.0;
  }
  return SmoothSeries(crashed, window);
}

}  // namespace wayfinder
