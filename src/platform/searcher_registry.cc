#include "src/platform/searcher_registry.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace wayfinder {

SearcherRegistry& SearcherRegistry::Instance() {
  static SearcherRegistry* registry = new SearcherRegistry();  // Never destroyed.
  return *registry;
}

namespace {

// Sorted insert position by name (entries_ stays ordered so List() and
// RegisteredSearcherNames() are deterministic regardless of link order).
template <typename Entries>
auto LowerBound(Entries& entries, const std::string& name) {
  return std::lower_bound(
      entries.begin(), entries.end(), name,
      [](const auto& entry, const std::string& key) { return entry.info.name < key; });
}

}  // namespace

void SearcherRegistry::Register(SearcherInfo info, SearcherFactory factory) {
  auto it = LowerBound(entries_, info.name);
  if (it != entries_.end() && it->info.name == info.name) {
    std::fprintf(stderr, "SearcherRegistry: duplicate registration of '%s'\n",
                 info.name.c_str());
    std::abort();
  }
  entries_.insert(it, Entry{std::move(info), std::move(factory)});
}

std::unique_ptr<Searcher> SearcherRegistry::Create(const std::string& name,
                                                   const SearcherArgs& args) const {
  auto it = LowerBound(entries_, name);
  if (it == entries_.end() || it->info.name != name) {
    return nullptr;
  }
  return it->factory(args);
}

const SearcherInfo* SearcherRegistry::Find(const std::string& name) const {
  auto it = LowerBound(entries_, name);
  if (it == entries_.end() || it->info.name != name) {
    return nullptr;
  }
  return &it->info;
}

std::vector<SearcherInfo> SearcherRegistry::List() const {
  std::vector<SearcherInfo> infos;
  infos.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    infos.push_back(entry.info);
  }
  return infos;
}

std::vector<std::string> RegisteredSearcherNames() {
  std::vector<std::string> names;
  for (const SearcherInfo& info : SearcherRegistry::Instance().List()) {
    names.push_back(info.name);
  }
  return names;
}

}  // namespace wayfinder
