#include "src/platform/checkpoint.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/platform/fs_faults.h"

namespace wayfinder {

namespace {

void WriteCheckpoint(std::ostream& out, const std::vector<TrialRecord>& history,
                     const CheckpointLiveState* live) {
  out.precision(17);  // Round-trip doubles exactly.
  size_t params = history.empty() ? 0 : history.front().config.Size();
  out << "wayfinder-checkpoint v2\n";
  out << "params " << params << "\n";
  if (live != nullptr) {
    if (!live->session_rng.empty()) {
      out << "rng-session " << live->session_rng << "\n";
    }
    if (!live->searcher_rng.empty()) {
      out << "rng-searcher " << live->searcher_rng << "\n";
    }
    if (!live->searcher_state.empty()) {
      out << "searcher-state " << live->searcher_state << "\n";
    }
  }
  // Aggregate failure taxonomy, derived from the trial statuses so readers
  // that ignore the line lose nothing; written only when any class fired.
  size_t build_failed = 0, boot_failed = 0, run_crashed = 0, timeouts = 0;
  for (const TrialRecord& trial : history) {
    switch (trial.outcome.status) {
      case TrialOutcome::Status::kBuildFailed: ++build_failed; break;
      case TrialOutcome::Status::kBootFailed: ++boot_failed; break;
      case TrialOutcome::Status::kRunCrashed: ++run_crashed; break;
      case TrialOutcome::Status::kTimeout: ++timeouts; break;
      case TrialOutcome::Status::kOk: break;
    }
  }
  if (build_failed + boot_failed + run_crashed + timeouts > 0) {
    out << "failures";
    if (build_failed > 0) {
      out << " " << TrialStatusName(TrialOutcome::Status::kBuildFailed) << " " << build_failed;
    }
    if (boot_failed > 0) {
      out << " " << TrialStatusName(TrialOutcome::Status::kBootFailed) << " " << boot_failed;
    }
    if (run_crashed > 0) {
      out << " " << TrialStatusName(TrialOutcome::Status::kRunCrashed) << " " << run_crashed;
    }
    if (timeouts > 0) {
      out << " " << TrialStatusName(TrialOutcome::Status::kTimeout) << " " << timeouts;
    }
    out << "\n";
  }
  for (const TrialRecord& trial : history) {
    const TrialOutcome& o = trial.outcome;
    out << "trial " << trial.iteration << " " << TrialStatusName(o.status) << " " << o.metric
        << " " << o.memory_mb << " " << o.build_seconds << " " << o.boot_seconds << " "
        << o.run_seconds << " " << (o.build_skipped ? 1 : 0) << " "
        << (trial.HasObjective() ? trial.objective : std::nan("")) << " "
        << trial.sim_time_end << " " << trial.searcher_seconds;
    if (!o.failure_reason.empty()) {
      // Rest-of-line field: reasons contain spaces but never newlines.
      out << " ";
      for (char c : o.failure_reason) {
        out << (c == '\n' || c == '\r' ? ' ' : c);
      }
    }
    out << "\n";
    out << "values";
    for (size_t i = 0; i < trial.config.Size(); ++i) {
      out << " " << trial.config.Raw(i);
    }
    out << "\n";
  }
}

CheckpointLoadResult ReadCheckpoint(const ConfigSpace& space, std::istream& in) {
  CheckpointLoadResult result;
  std::string line;
  int version = 0;
  if (std::getline(in, line)) {
    if (line == "wayfinder-checkpoint v1") {
      version = 1;
    } else if (line == "wayfinder-checkpoint v2") {
      version = 2;
    }
  }
  if (version == 0) {
    result.error = "bad header";
    return result;
  }
  size_t params = 0;
  {
    if (!std::getline(in, line)) {
      result.error = "missing params line";
      return result;
    }
    std::istringstream header(line);
    std::string keyword;
    header >> keyword >> params;
    if (keyword != "params") {
      result.error = "missing params line";
      return result;
    }
    if (params != 0 && params != space.Size()) {
      result.error = "checkpoint has " + std::to_string(params) + " parameters, space has " +
                     std::to_string(space.Size());
      return result;
    }
  }

  int line_number = 2;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) {
      continue;
    }
    std::istringstream trial_in(line);
    std::string keyword;
    trial_in >> keyword;
    // The v2 live-state lines sit between the params header and the first
    // trial; the rest of each line is taken verbatim.
    if (version >= 2 && result.history.empty() &&
        (keyword == "rng-session" || keyword == "rng-searcher" ||
         keyword == "searcher-state")) {
      std::string rest;
      std::getline(trial_in >> std::ws, rest);
      if (rest.empty()) {
        result.error = "line " + std::to_string(line_number) + ": empty " + keyword;
        return result;
      }
      if (keyword == "rng-session") {
        result.live.session_rng = rest;
      } else if (keyword == "rng-searcher") {
        result.live.searcher_rng = rest;
      } else {
        result.live.searcher_state = rest;
      }
      continue;
    }
    if (version >= 2 && result.history.empty() && keyword == "failures") {
      // Name/count pairs in TrialStatusName vocabulary; unknown names are
      // skipped so future classes do not break older readers.
      std::string name;
      size_t count = 0;
      while (trial_in >> name >> count) {
        TrialOutcome::Status status;
        if (!TrialStatusFromName(name, &status)) {
          continue;
        }
        switch (status) {
          case TrialOutcome::Status::kBuildFailed: result.build_failures = count; break;
          case TrialOutcome::Status::kBootFailed: result.boot_failures = count; break;
          case TrialOutcome::Status::kRunCrashed: result.run_crashes = count; break;
          case TrialOutcome::Status::kTimeout: result.timeouts = count; break;
          case TrialOutcome::Status::kOk: break;
        }
      }
      continue;
    }
    if (keyword != "trial") {
      // Forward compatibility: unknown keywords in the header area (before
      // the first trial) are future optional sections in the spirit of the
      // live-state and failures lines — skipped, not preserved (a reader
      // this old cannot round-trip what it cannot parse). A `values` line
      // here is structural damage, not a future section, and an unknown
      // keyword between trial records would silently detach a trial from
      // its values — both still reject.
      if (version >= 2 && result.history.empty() && keyword != "values") {
        continue;
      }
      result.error = "line " + std::to_string(line_number) + ": expected trial record";
      return result;
    }
    TrialRecord trial;
    std::string status_name;
    std::string objective_text;  // iostreams do not parse "nan"; strtod does.
    int skipped = 0;
    trial_in >> trial.iteration >> status_name >> trial.outcome.metric >>
        trial.outcome.memory_mb >> trial.outcome.build_seconds >>
        trial.outcome.boot_seconds >> trial.outcome.run_seconds >> skipped >>
        objective_text >> trial.sim_time_end >> trial.searcher_seconds;
    if (!trial_in || !TrialStatusFromName(status_name, &trial.outcome.status)) {
      result.error = "line " + std::to_string(line_number) + ": malformed trial record";
      return result;
    }
    {
      const char* begin = objective_text.c_str();
      char* end = nullptr;
      trial.objective = std::strtod(begin, &end);
      if (end == begin || *end != '\0') {
        result.error = "line " + std::to_string(line_number) + ": malformed objective";
        return result;
      }
    }
    trial.outcome.build_skipped = skipped != 0;
    // Optional trailing failure reason: everything after searcher_seconds
    // (absent in files written before the field existed).
    if (std::string reason; std::getline(trial_in >> std::ws, reason) && !reason.empty()) {
      trial.outcome.failure_reason = std::move(reason);
    }

    if (!std::getline(in, line)) {
      result.error = "line " + std::to_string(line_number) + ": trial without values";
      return result;
    }
    ++line_number;
    std::istringstream values_in(line);
    values_in >> keyword;
    if (keyword != "values") {
      result.error = "line " + std::to_string(line_number) + ": expected values";
      return result;
    }
    std::vector<int64_t> values(space.Size());
    for (size_t i = 0; i < space.Size(); ++i) {
      if (!(values_in >> values[i])) {
        result.error = "line " + std::to_string(line_number) + ": too few values";
        return result;
      }
      if (!space.Param(i).InDomain(values[i])) {
        result.error = "line " + std::to_string(line_number) + ": value out of domain for " +
                       space.Param(i).name;
        return result;
      }
    }
    trial.config = Configuration(&space, std::move(values));
    result.history.push_back(std::move(trial));
  }
  result.ok = true;
  return result;
}

}  // namespace

std::string CheckpointToText(const std::vector<TrialRecord>& history,
                             const CheckpointLiveState* live) {
  std::ostringstream out;
  WriteCheckpoint(out, history, live);
  return out.str();
}

bool SaveCheckpoint(const std::vector<TrialRecord>& history, const std::string& path,
                    const CheckpointLiveState* live) {
  // Atomic replace (tmp + fsync + rename, through the fs-fault seam): a
  // crash mid-save leaves the previous checkpoint intact, never a torn one
  // — these files are exactly what a post-crash `--resume` depends on.
  return AtomicWriteFile(path, CheckpointToText(history, live));
}

CheckpointLoadResult LoadCheckpoint(const ConfigSpace& space, const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    CheckpointLoadResult result;
    result.error = "cannot open " + path;
    return result;
  }
  return ReadCheckpoint(space, in);
}

CheckpointLoadResult LoadCheckpointText(const ConfigSpace& space, const std::string& text) {
  std::istringstream in(text);
  return ReadCheckpoint(space, in);
}

}  // namespace wayfinder
