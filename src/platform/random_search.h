// Random search: every proposal is a fresh (phase-biased) random sample,
// ignoring the exploration history. The paper's baseline — strong on very
// large spaces, but blind to crashes.
#ifndef WAYFINDER_SRC_PLATFORM_RANDOM_SEARCH_H_
#define WAYFINDER_SRC_PLATFORM_RANDOM_SEARCH_H_

#include "src/platform/searcher.h"

namespace wayfinder {

class RandomSearcher : public Searcher {
 public:
  std::string Name() const override { return "random"; }
  Configuration Propose(SearchContext& context) override;
  // Batches trivially through the inherited ProposeBatch loop: n
  // independent samples IS random search's natural batch.
};

}  // namespace wayfinder

#endif  // WAYFINDER_SRC_PLATFORM_RANDOM_SEARCH_H_
