// YAML job files (§3.1, §3.4): the user-facing description of one
// specialization job — which OS/space to explore, which application and
// metric to optimize, the budget, the search algorithm, and any frozen
// (security-critical) parameters.
//
// Example:
//
//   name: nginx-linux-throughput
//   os: linux                 # linux | unikraft | linux-riscv
//   application: nginx        # nginx | redis | sqlite | npb
//   metric: performance       # performance | memory | score | multi
//   metrics:                  # only for metric: multi
//     - name: throughput
//       weight: 1.0
//     - name: memory
//       weight: 0.5
//   budget:
//     iterations: 250
//     sim_seconds: 18000
//   parallel: 4               # concurrent trial evaluations (default 1)
//   sliding: true             # sliding-window executor (default lock-step)
//   search:
//     algorithm: deeptune     # any registered name — see `wfctl algorithms`
//     favor: runtime          # runtime | compile | none
//     seed: 42
//   freeze:
//     - name: kernel.randomize_va_space
//       value: 2
//   faults:                   # hostile-world scenario (all default to off)
//     flake_prob: 0.05        # transient infrastructure flakes
//     timeout_prob: 0.03      # benchmark exceeds the watchdog
//     hang_prob: 0.02         # hang killed by the watchdog
//     timeout_s: 600          # watchdog window (simulated seconds)
//     noise_sigma: 0.1        # heteroscedastic measurement noise
//     drift_at: 40000         # workload drift at this sim-time (0 = never)
//     drift_magnitude: 1.0    # blend weight of the drifted landscape
//     retries: 2              # re-measurement policy: transient retries
//     repeats: 1              # median-of-k repeats for noisy apps
#ifndef WAYFINDER_SRC_PLATFORM_JOB_FILE_H_
#define WAYFINDER_SRC_PLATFORM_JOB_FILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/platform/session.h"
#include "src/simos/apps.h"
#include "src/simos/perf_model.h"
#include "src/util/yaml.h"

namespace wayfinder {

struct FrozenParam {
  std::string name;
  int64_t value = 0;
};

// One entry of a multi-metric job's `metrics:` list (Â§3.2 extension).
// Supported names: "throughput" (maximized) and "memory" (minimized).
struct JobMetric {
  std::string name;
  double weight = 1.0;
};

struct JobSpec {
  std::string name;
  std::string os = "linux";  // linux | unikraft | linux-riscv
  AppId app = AppId::kNginx;
  ObjectiveKind objective = ObjectiveKind::kAppMetric;
  std::string algorithm = "deeptune";
  std::string favor = "none";  // runtime | compile | none
  uint64_t seed = 42;
  size_t iterations = 250;
  double sim_seconds = std::numeric_limits<double>::infinity();
  // Concurrent trial evaluations per session round (SessionOptions::
  // parallel_evaluations); 1 = the serial loop.
  size_t parallel = 1;
  // Sliding-window executor (SessionOptions::sliding_window): commit the
  // earliest finisher and refill its slot instead of lock-step rounds.
  bool sliding = false;
  std::vector<FrozenParam> freeze;
  // Non-empty when `metric: multi`: the weighted metrics to co-optimize.
  std::vector<JobMetric> metrics;
  // Hostile-world scenario (`faults:` mapping); inactive by default so
  // every pre-existing job file runs bit-identically.
  FaultPlan faults;
  // Re-measurement policy knobs riding in the `faults:` mapping
  // (SessionOptions::retry_transient / measure_repeats).
  size_t fault_retries = 0;
  size_t measure_repeats = 1;

  bool IsMultiMetric() const { return !metrics.empty(); }

  Substrate SubstrateKind() const;
  SampleOptions SamplingBias() const;
  SessionOptions ToSessionOptions() const;
  // The one recipe every runner (RunJob, the wfd daemon, wfctl start) uses
  // to seed a Testbench for this job — substrate, per-job model seed, and
  // the fault plan — so standalone and daemon runs agree bit-for-bit.
  TestbenchOptions ToTestbenchOptions() const;
};

struct JobParseResult {
  bool ok = false;
  JobSpec spec;
  std::string error;
};

JobParseResult ParseJob(const YamlNode& root);
JobParseResult ParseJobText(const std::string& yaml_text);
JobParseResult ParseJobFile(const std::string& path);

// Builds the configuration space the job asks for (by `os`), applying the
// freeze list.
ConfigSpace BuildJobSpace(const JobSpec& spec);

}  // namespace wayfinder

#endif  // WAYFINDER_SRC_PLATFORM_JOB_FILE_H_
