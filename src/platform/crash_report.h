// Crash analytics over an exploration history.
//
// §2.2 observes that about a third of random configurations crash, and §4.1
// closes with the parameters that *negatively* impact performance (printk
// verbosity, block-I/O debugging). This module answers the operational
// question in between: given a finished history, which parameters are most
// associated with the crashes — where did the search waste its time, and
// what should a job file freeze next run? For every parameter it compares
// the crash rate of trials that moved it off its default against the crash
// rate of trials that left it alone.
#ifndef WAYFINDER_SRC_PLATFORM_CRASH_REPORT_H_
#define WAYFINDER_SRC_PLATFORM_CRASH_REPORT_H_

#include <string>
#include <vector>

#include "src/configspace/config_space.h"
#include "src/platform/trial.h"

namespace wayfinder {

// Crash association of one parameter.
struct CrashCorrelate {
  size_t param_index = 0;
  std::string name;
  size_t moved_trials = 0;    // Trials where the parameter was non-default.
  size_t moved_crashes = 0;
  double moved_crash_rate = 0.0;
  double baseline_crash_rate = 0.0;  // Crash rate when left at default.
  // moved_crash_rate - baseline_crash_rate; positive = crash-associated.
  double lift = 0.0;
};

struct CrashReport {
  size_t trials = 0;
  size_t crashes = 0;
  size_t build_failures = 0;
  size_t boot_failures = 0;
  size_t run_crashes = 0;
  size_t timeouts = 0;
  // Simulated seconds consumed by crashed trials (the §2.2 "wasted
  // resources").
  double wasted_sim_seconds = 0.0;
  double total_sim_seconds = 0.0;
  // Parameters sorted by descending lift. Only parameters moved in at least
  // `min_moved` trials are scored (small samples are noise).
  std::vector<CrashCorrelate> correlates;
};

// Builds the report. `min_moved` filters parameters with too few moved
// trials to estimate a rate (default 5).
CrashReport AnalyzeCrashes(const ConfigSpace& space, const std::vector<TrialRecord>& history,
                           size_t min_moved = 5);

// Renders the report's header and the top `top_n` correlates as text.
std::string FormatCrashReport(const CrashReport& report, size_t top_n = 10);

}  // namespace wayfinder

#endif  // WAYFINDER_SRC_PLATFORM_CRASH_REPORT_H_
