// Grid search: sweeps the space systematically, one parameter value after
// the other (§3.1). Starting from the default configuration, it visits, for
// every parameter in order, each value of a per-parameter grid (the full
// domain for booleans/tristates/categoricals, `numeric_grid_points` for
// numeric domains) with all other parameters held at their defaults. When
// the sweep is exhausted it restarts with two-parameter combinations of the
// best single-parameter settings.
//
// The paper omits grid search from the evaluation because it is well known
// to lose to random search on large spaces; it is included here for
// completeness of the platform API (and the ablation benches use it on tiny
// spaces where it is exact).
#ifndef WAYFINDER_SRC_PLATFORM_GRID_SEARCH_H_
#define WAYFINDER_SRC_PLATFORM_GRID_SEARCH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/platform/searcher.h"

namespace wayfinder {

class GridSearcher : public Searcher {
 public:
  explicit GridSearcher(size_t numeric_grid_points = 5);

  std::string Name() const override { return "grid"; }
  Configuration Propose(SearchContext& context) override;
  void Observe(const TrialRecord& trial, SearchContext& context) override;
  // Grid search batches naturally through the inherited ProposeBatch loop:
  // the next n grid points (the sweep order is fixed, so a batch is just a
  // window of it). Because a batch is observed out of proposal order
  // (virtual-time commit), every Propose records which parameter its
  // candidate sweeps, keyed by configuration hash, and ObserveBatch credits
  // through that map instead of the serial last-proposal cursor (which by
  // observe time belongs to the round's last slot).
  void ObserveBatch(Span<const TrialRecord> trials, SearchContext& context) override;

 private:
  // Candidate raw values for one parameter.
  std::vector<int64_t> GridValues(const ConfigSpace& space, size_t param) const;
  void AdvanceCursor(const ConfigSpace& space);
  void RecordPendingParam(uint64_t hash, size_t param);

  size_t numeric_grid_points_;
  size_t param_cursor_ = 0;
  size_t value_cursor_ = 0;
  bool exhausted_ = false;
  // Best observed value per parameter during the single-parameter sweep.
  std::vector<int64_t> best_value_;
  std::vector<double> best_objective_;
  // Pending proposal bookkeeping: which (param, value) the last proposal
  // touched, so Observe can credit it.
  size_t last_param_ = 0;
  // Batch bookkeeping: config hash -> swept parameters (space.Size() for
  // phase-2 combination proposals), filled by every Propose and drained by
  // ObserveBatch. A list, not a single param: sweeping param A at its
  // default value and param B at its default value both yield the default
  // configuration, and one evaluation of it is legitimately the result for
  // every such sweep point. Entries for proposals the session deduped away
  // linger, but a hash identifies a configuration, so a later hit still
  // credits the parameters those sweeps touched.
  std::unordered_map<uint64_t, std::vector<size_t>> pending_params_;
};

}  // namespace wayfinder

#endif  // WAYFINDER_SRC_PLATFORM_GRID_SEARCH_H_
