// Pluggable search-algorithm interface (§3.1: "Wayfinder offers a modular
// API to ease the integration of pluggable search algorithms").
//
// A searcher proposes the next configuration to evaluate and observes every
// finished trial. Implementations in this repository: random search, grid
// search (src/platform), Bayesian optimization (src/bayes), Unicorn-style
// causal search (src/causal), and DeepTune (src/core).
#ifndef WAYFINDER_SRC_PLATFORM_SEARCHER_H_
#define WAYFINDER_SRC_PLATFORM_SEARCHER_H_

#include <string>
#include <vector>

#include "src/configspace/config_space.h"
#include "src/platform/trial.h"
#include "src/util/rng.h"

namespace wayfinder {

// Read-only view the session exposes to searchers.
struct SearchContext {
  const ConfigSpace* space = nullptr;
  const std::vector<TrialRecord>* history = nullptr;
  SampleOptions sample_options;  // Phase bias requested by the job.
  Rng* rng = nullptr;            // Searcher-owned randomness stream.
};

class Searcher {
 public:
  virtual ~Searcher() = default;

  virtual std::string Name() const = 0;

  // Next configuration to evaluate.
  virtual Configuration Propose(SearchContext& context) = 0;

  // Called after every trial (including crashes) so the searcher can update
  // its model. Objectives in `trial` are already higher-is-better.
  virtual void Observe(const TrialRecord& trial, SearchContext& context);

  // Bytes of live algorithm state (models, kernel matrices, causal graphs);
  // drives the Figure 7 memory comparison.
  virtual size_t MemoryBytes() const;
};

}  // namespace wayfinder

#endif  // WAYFINDER_SRC_PLATFORM_SEARCHER_H_
