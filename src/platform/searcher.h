// Pluggable search-algorithm interface (§3.1: "Wayfinder offers a modular
// API to ease the integration of pluggable search algorithms").
//
// A searcher proposes configurations to evaluate and observes every finished
// trial. The surface is batch-first: the session asks for `n` candidates at
// once (ProposeBatch) and feeds completions back a batch at a time
// (ObserveBatch), which is what lets it evaluate trials concurrently.
// Algorithms that only think one trial at a time implement the serial
// Propose/Observe pair and inherit loop-based batch defaults; algorithms
// with a natural batch shape (a ranked candidate pool, a GA generation)
// override the batch entry points directly.
//
// Implementations register themselves with the SearcherRegistry
// (src/platform/searcher_registry.h); `MakeSearcher` and the wfctl help text
// are driven from that registry, so a new algorithm needs no core edits.
#ifndef WAYFINDER_SRC_PLATFORM_SEARCHER_H_
#define WAYFINDER_SRC_PLATFORM_SEARCHER_H_

#include <string>
#include <vector>

#include "src/configspace/config_space.h"
#include "src/platform/trial.h"
#include "src/util/rng.h"
#include "src/util/span.h"

namespace wayfinder {

// Read-only view the session exposes to searchers.
struct SearchContext {
  const ConfigSpace* space = nullptr;
  const std::vector<TrialRecord>* history = nullptr;
  SampleOptions sample_options;  // Phase bias requested by the job.
  Rng* rng = nullptr;            // Searcher-owned randomness stream.
};

class Searcher {
 public:
  virtual ~Searcher() = default;

  virtual std::string Name() const = 0;

  // Next configuration to evaluate.
  virtual Configuration Propose(SearchContext& context) = 0;

  // Called after every trial (including crashes) so the searcher can update
  // its model. Objectives in `trial` are already higher-is-better.
  virtual void Observe(const TrialRecord& trial, SearchContext& context);

  // Appends `n` candidates for one concurrent evaluation round to `batch`
  // (`batch` is cleared first). The default loops Propose, so every serial
  // searcher works under a batch-concurrent session unchanged; model-based
  // searchers override it to emit the top-n of a single pool ranking, and
  // population searchers to emit one generation. Candidates should be
  // distinct where the algorithm can manage it — the session dedups against
  // history, not within a proposer's batch.
  virtual void ProposeBatch(SearchContext& context, size_t n,
                            std::vector<Configuration>* batch);

  // Feeds one committed evaluation round back, in the session's canonical
  // (virtual-time) commit order. The default loops Observe, preserving the
  // exact per-trial learning cadence of a serial session.
  virtual void ObserveBatch(Span<const TrialRecord> trials, SearchContext& context);

  // The session's drift detector concluded the workload shifted under the
  // search: objectives observed before this call may describe a landscape
  // that no longer exists. Model-based searchers discard or revalidate
  // stale state (DeepTune clears its elite set and forces a retrain);
  // stateless searchers ignore it. Default: no-op.
  virtual void OnDrift(SearchContext& context);

  // Bytes of live algorithm state (models, kernel matrices, causal graphs);
  // drives the Figure 7 memory comparison.
  virtual size_t MemoryBytes() const;

  // Opaque single-line state for checkpoint v2: whatever an Observe replay
  // of the history canNOT reconstruct (e.g. DeepTune's pool-seed iteration
  // counter; its model retrains bit-exactly from the replay and is excluded
  // on purpose). Stateless searchers return "". RestoreState is called after
  // the replay and must reject text it did not write.
  virtual std::string ExportState() const { return ""; }
  virtual bool RestoreState(const std::string& state) { return state.empty(); }
};

}  // namespace wayfinder

#endif  // WAYFINDER_SRC_PLATFORM_SEARCHER_H_
