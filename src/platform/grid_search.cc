#include "src/platform/grid_search.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/platform/searcher_registry.h"

namespace wayfinder {

GridSearcher::GridSearcher(size_t numeric_grid_points)
    : numeric_grid_points_(std::max<size_t>(2, numeric_grid_points)) {}

std::vector<int64_t> GridSearcher::GridValues(const ConfigSpace& space, size_t param) const {
  const ParamSpec& spec = space.Param(param);
  if (!spec.value_set.empty()) {
    return spec.value_set;
  }
  switch (spec.kind) {
    case ParamKind::kBool:
      return {0, 1};
    case ParamKind::kTristate:
      return {0, 1, 2};
    case ParamKind::kString: {
      std::vector<int64_t> values;
      for (int64_t i = 0; i < static_cast<int64_t>(spec.choices.size()); ++i) {
        values.push_back(i);
      }
      return values;
    }
    case ParamKind::kInt:
    case ParamKind::kHex: {
      std::vector<int64_t> values;
      for (size_t g = 0; g < numeric_grid_points_; ++g) {
        double f = static_cast<double>(g) / static_cast<double>(numeric_grid_points_ - 1);
        int64_t v = space.DecodeParam(param, f);
        if (values.empty() || values.back() != v) {
          values.push_back(v);
        }
      }
      return values;
    }
  }
  return {spec.default_value};
}

void GridSearcher::AdvanceCursor(const ConfigSpace& space) {
  ++value_cursor_;
  while (param_cursor_ < space.Size()) {
    if (space.IsFrozen(param_cursor_) ||
        value_cursor_ >= GridValues(space, param_cursor_).size()) {
      ++param_cursor_;
      value_cursor_ = 0;
      continue;
    }
    return;
  }
  exhausted_ = true;
}

Configuration GridSearcher::Propose(SearchContext& context) {
  const ConfigSpace& space = *context.space;
  if (best_value_.empty()) {
    best_value_.resize(space.Size());
    best_objective_.assign(space.Size(), -std::numeric_limits<double>::infinity());
    for (size_t i = 0; i < space.Size(); ++i) {
      best_value_[i] = space.Param(i).default_value;
    }
    // Position on the first unfrozen parameter.
    value_cursor_ = 0;
    param_cursor_ = 0;
    while (param_cursor_ < space.Size() && space.IsFrozen(param_cursor_)) {
      ++param_cursor_;
    }
    if (param_cursor_ >= space.Size()) {
      exhausted_ = true;
    }
  }
  if (exhausted_) {
    // Phase 2: combine the per-parameter winners, perturbing a random pair
    // to keep exploring (exact enumeration is infeasible at this size).
    Configuration config(&space, best_value_);
    space.ApplyConstraints(&config);
    if (context.rng != nullptr && space.Size() >= 2) {
      size_t a = static_cast<size_t>(
          context.rng->UniformInt(0, static_cast<int64_t>(space.Size()) - 1));
      config.SetRaw(a, space.RandomValue(a, *context.rng));
      space.ApplyConstraints(&config);
    }
    last_param_ = space.Size();  // Sentinel: no single-parameter credit.
    RecordPendingParam(config.Hash(), last_param_);
    return config;
  }
  Configuration config = space.DefaultConfiguration();
  std::vector<int64_t> values = GridValues(space, param_cursor_);
  config.SetRaw(param_cursor_, values[value_cursor_]);
  space.ApplyConstraints(&config);
  last_param_ = param_cursor_;
  // Batch bookkeeping (harmless in serial mode, where Observe uses the
  // last_param_ cursor): ObserveBatch credits by config hash, and a session
  // dedup re-proposal reaches here through plain Propose too.
  RecordPendingParam(config.Hash(), last_param_);
  AdvanceCursor(space);
  return config;
}

void GridSearcher::RecordPendingParam(uint64_t hash, size_t param) {
  std::vector<size_t>& params = pending_params_[hash];
  if (std::find(params.begin(), params.end(), param) == params.end()) {
    params.push_back(param);
  }
}

void GridSearcher::Observe(const TrialRecord& trial, SearchContext& context) {
  (void)context;
  if (!trial.HasObjective() || last_param_ >= best_value_.size()) {
    return;
  }
  if (trial.objective > best_objective_[last_param_]) {
    best_objective_[last_param_] = trial.objective;
    best_value_[last_param_] = trial.config.Raw(last_param_);
  }
}

void GridSearcher::ObserveBatch(Span<const TrialRecord> trials, SearchContext& context) {
  (void)context;
  for (const TrialRecord& trial : trials) {
    auto it = pending_params_.find(trial.config.Hash());
    if (it == pending_params_.end()) {
      // Not a proposal of ours (e.g. a random top-up from elsewhere) —
      // attribution unknown, so credit nothing. Never fall back to
      // last_param_ here: in batch mode that cursor belongs to whichever
      // slot proposed last, not to this trial.
      continue;
    }
    std::vector<size_t> params = std::move(it->second);
    pending_params_.erase(it);
    if (!trial.HasObjective()) {
      continue;
    }
    // One evaluation settles every sweep point that produced this exact
    // configuration (duplicate grid points share the hash by construction).
    for (size_t param : params) {
      if (param >= best_value_.size()) {
        continue;
      }
      if (trial.objective > best_objective_[param]) {
        best_objective_[param] = trial.objective;
        best_value_[param] = trial.config.Raw(param);
      }
    }
  }
}

namespace {
const SearcherRegistration kRegistration{
    {"grid", "systematic one-parameter-at-a-time sweep, then combinations of winners",
     /*multi_metric_variant=*/""},
    [](const SearcherArgs&) { return std::make_unique<GridSearcher>(); }};
}  // namespace

}  // namespace wayfinder
