#include "src/platform/fs_faults.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <unistd.h>

namespace wayfinder {

namespace {
// Guards plan_/rng_ mutation against the (test-only) Arm/Disarm callers;
// the armed_ atomic keeps the disarmed fast path lock-free.
std::mutex g_plan_mutex;
}  // namespace

FsFaultInjector& FsFaultInjector::Instance() {
  static FsFaultInjector* injector = new FsFaultInjector();
  return *injector;
}

void FsFaultInjector::Arm(const FsFaultPlan& plan) {
  std::lock_guard<std::mutex> lock(g_plan_mutex);
  plan_ = plan;
  rng_ = Rng(plan.seed);
  writes_.store(0, std::memory_order_relaxed);
  fsyncs_.store(0, std::memory_order_relaxed);
  renames_.store(0, std::memory_order_relaxed);
  armed_.store(!plan.Empty(), std::memory_order_relaxed);
}

void FsFaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(g_plan_mutex);
  armed_.store(false, std::memory_order_relaxed);
  plan_ = FsFaultPlan();
}

FsFaultInjector::WriteAction FsFaultInjector::NextWrite() {
  std::lock_guard<std::mutex> lock(g_plan_mutex);
  size_t index = writes_.fetch_add(1, std::memory_order_relaxed);
  if (index == plan_.fail_write_at) {
    return WriteAction::kFail;
  }
  if (index == plan_.short_write_at) {
    return WriteAction::kShort;
  }
  if (plan_.write_fail_prob > 0.0 && rng_.Bernoulli(plan_.write_fail_prob)) {
    return WriteAction::kFail;
  }
  return WriteAction::kPass;
}

bool FsFaultInjector::NextFsyncFails() {
  std::lock_guard<std::mutex> lock(g_plan_mutex);
  size_t index = fsyncs_.fetch_add(1, std::memory_order_relaxed);
  if (index == plan_.fail_fsync_at) {
    return true;
  }
  return plan_.fsync_fail_prob > 0.0 && rng_.Bernoulli(plan_.fsync_fail_prob);
}

FsFaultInjector::RenameAction FsFaultInjector::NextRename() {
  std::lock_guard<std::mutex> lock(g_plan_mutex);
  size_t index = renames_.fetch_add(1, std::memory_order_relaxed);
  if (index == plan_.crash_before_rename_at) {
    return RenameAction::kCrashBefore;
  }
  if (index == plan_.crash_after_rename_at) {
    return RenameAction::kCrashAfter;
  }
  return RenameAction::kPass;
}

size_t FaultWrite(const void* data, size_t size, std::FILE* stream) {
  FsFaultInjector& injector = FsFaultInjector::Instance();
  if (injector.armed()) {
    switch (injector.NextWrite()) {
      case FsFaultInjector::WriteAction::kFail:
        errno = ENOSPC;
        return 0;
      case FsFaultInjector::WriteAction::kShort: {
        // Half the record lands on disk — the torn tail a crashed append
        // leaves behind. The half really is written so recovery scans see it.
        size_t half = size / 2;
        size_t wrote = std::fwrite(data, 1, half, stream);
        std::fflush(stream);
        errno = ENOSPC;
        return wrote;
      }
      case FsFaultInjector::WriteAction::kPass:
        break;
    }
  }
  return std::fwrite(data, 1, size, stream);
}

bool FaultFsync(int fd) {
  FsFaultInjector& injector = FsFaultInjector::Instance();
  if (injector.armed() && injector.NextFsyncFails()) {
    errno = EIO;
    return false;
  }
  return ::fsync(fd) == 0;
}

bool FaultRename(const std::string& from, const std::string& to) {
  FsFaultInjector& injector = FsFaultInjector::Instance();
  if (injector.armed()) {
    switch (injector.NextRename()) {
      case FsFaultInjector::RenameAction::kCrashBefore:
        errno = EIO;
        return false;
      case FsFaultInjector::RenameAction::kCrashAfter:
        ::rename(from.c_str(), to.c_str());
        errno = EIO;
        return false;
      case FsFaultInjector::RenameAction::kPass:
        break;
    }
  }
  return ::rename(from.c_str(), to.c_str()) == 0;
}

bool AtomicWriteFile(const std::string& path, const std::string& data,
                     std::string* error) {
  auto fail = [&](const std::string& what) {
    if (error != nullptr) {
      *error = what + ": " + std::strerror(errno);
    }
    return false;
  };
  std::string tmp = path + ".tmp";
  std::FILE* out = std::fopen(tmp.c_str(), "w");
  if (out == nullptr) {
    return fail("open " + tmp);
  }
  if (FaultWrite(data.data(), data.size(), out) != data.size() ||
      std::fflush(out) != 0) {
    int saved = errno;
    std::fclose(out);
    std::remove(tmp.c_str());
    errno = saved;
    return fail("write " + tmp);
  }
  if (!FaultFsync(fileno(out))) {
    int saved = errno;
    std::fclose(out);
    std::remove(tmp.c_str());
    errno = saved;
    return fail("fsync " + tmp);
  }
  std::fclose(out);
  if (!FaultRename(tmp, path)) {
    // An injected "crash" deliberately leaves the tmp file behind — that is
    // the stale-tmp hazard the store's Open() cleanup exists for. A real
    // rename failure gets tidied up.
    if (!FsFaultInjector::Instance().armed()) {
      std::remove(tmp.c_str());
    }
    return fail("rename " + tmp);
  }
  return true;
}

}  // namespace wayfinder
