// The exploration session: Wayfinder's core loop (§3.1), batch-concurrent.
//
// Serial mode (parallel_evaluations = 1, the default): repeatedly (1) ask
// the search algorithm for the next configuration, (2) build + boot +
// benchmark it on the testbench — skipping the build when compile-/boot-time
// parameters are unchanged since the last built image — and (3) feed the
// outcome back to the algorithm. Bit-identical to the pre-batch loop, pinned
// by test.
//
// Batch mode (parallel_evaluations = K > 1): the session models K virtual
// testbenches racing in simulated time. Each round it asks the searcher for
// one batch (Searcher::ProposeBatch), evaluates the K trials concurrently on
// the shared ThreadPool against per-slot Testbench clones, and commits the
// completions in deterministic virtual-time order — ascending simulated
// duration, ties broken by batch index — before feeding them back through
// Searcher::ObserveBatch. Every trial draws from its own counter-derived RNG
// stream and its own SimClock, so the history is bit-identical at any
// eval_threads value (physical concurrency never leaks into results); only
// K itself, which is part of the experiment, shapes the trajectory.
//
// Runs until an iteration or simulated-time budget is exhausted and returns
// the full history plus the best configuration found.
#ifndef WAYFINDER_SRC_PLATFORM_SESSION_H_
#define WAYFINDER_SRC_PLATFORM_SESSION_H_

#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/configspace/config_space.h"
#include "src/obs/trace.h"
#include "src/platform/checkpoint.h"
#include "src/platform/searcher.h"
#include "src/platform/trial.h"
#include "src/simos/testbench.h"
#include "src/util/sim_clock.h"

namespace wayfinder {

// What the session optimizes.
enum class ObjectiveKind {
  kAppMetric,        // The application's own metric (polarity from the app).
  kMemoryFootprint,  // Boot memory consumption, minimized (Figure 10).
  kScore,            // s = mXNorm(throughput) - mXNorm(memory) (Eq. 4, Fig 11).
};

struct SessionOptions {
  size_t max_iterations = 250;
  double max_sim_seconds = std::numeric_limits<double>::infinity();
  ObjectiveKind objective = ObjectiveKind::kAppMetric;
  SampleOptions sample_options;  // Phase bias (favor runtime/compile-time).
  uint64_t seed = 0x5e55;
  // Re-propose when a searcher suggests an already-evaluated configuration
  // (up to this many retries; 0 disables dedup).
  size_t dedup_retries = 8;
  // Virtual testbenches evaluating concurrently. 1 = the serial loop,
  // bit-identical to the pre-batch session. K > 1 proposes K-wide batches
  // and merges completions in virtual-time order; K is part of the
  // experiment (it shapes the trajectory), unlike eval_threads below.
  size_t parallel_evaluations = 1;
  // Physical threads evaluating one batch (0 = one per batch slot). Purely
  // an execution knob: histories are bit-identical at any value, pinned by
  // test.
  size_t eval_threads = 0;
  // Sliding-window executor (parallel_evaluations > 1 only): instead of
  // lock-step K-wide rounds, commit the earliest virtual finisher(s) and
  // refill just the freed slots, keeping K trials in flight at all times —
  // higher utilization when trial durations vary widely. Trials that finish
  // at exactly the same virtual time commit as one wave (ties by proposal
  // order), so with equal-duration trials the schedule degenerates to
  // lock-step rounds and the history is bit-identical to the default
  // executor, pinned by test. Off by default: lock-step is the
  // deterministic baseline the PR-4 pins were written against.
  bool sliding_window = false;
  // §3.5 "more comprehensive benchmarks": an optional user check of the
  // deployment (e.g. run a test suite against the booted image). Returning
  // false demotes an otherwise-successful trial to a run crash, so the
  // searcher learns the configurations that cause the misbehavior. In batch
  // mode the check runs serially at commit time, so it need not be
  // thread-safe.
  std::function<bool(const Configuration&, const TrialOutcome&)> deploy_check;
  // --- Re-measurement policy (robustness under fault injection) ------------
  // Retry a transient-class failure (timeout, hang, infrastructure flake —
  // TrialOutcome::transient()) up to this many extra times before committing
  // it. Retries draw from counter-derived RNG streams and every attempt is
  // budget-charged on the trial's clock; only the final attempt enters the
  // history. 0 disables (the default: bit-identical to the pre-policy loop).
  size_t retry_transient = 0;
  // Median-of-k repeated measurement for noisy benchmarks: a successful
  // trial's benchmark re-runs k-1 more times (build skipped, budget-charged)
  // and the committed metric is the median of the successful repeats.
  // 1 disables (default).
  size_t measure_repeats = 1;
  // --- Drift detection ------------------------------------------------------
  // Sliding-window drift detector: when the best objective among the last
  // drift_window successes regresses more than drift_threshold (relative to
  // the all-time best) below that best, the session declares a drift event:
  // Searcher::OnDrift fires (partial retrain / elite invalidation) and the
  // historical best configuration is re-evaluated on the current landscape
  // (elite re-validation, committed as a regular budget-charged trial).
  // Off by default; jobs scheduling FaultPlan::drift_at enable it.
  bool drift_detection = false;
  size_t drift_window = 8;
  double drift_threshold = 0.25;
};

struct SessionResult {
  std::vector<TrialRecord> history;
  // Index into history of the best successful trial; nullopt if none.
  std::optional<size_t> best_index;
  double total_sim_seconds = 0.0;
  size_t crashes = 0;
  size_t builds = 0;
  size_t builds_skipped = 0;
  // Failure taxonomy (crashes broken down by class) plus the robustness
  // policy counters: transient attempts the retry policy consumed, and
  // drift events the detector declared.
  size_t build_failures = 0;
  size_t boot_failures = 0;
  size_t run_crashes = 0;
  size_t timeouts = 0;
  size_t transient_retries = 0;
  size_t drift_events = 0;

  const TrialRecord* best() const {
    return best_index.has_value() ? &history[*best_index] : nullptr;
  }
  double CrashRate() const {
    return history.empty() ? 0.0
                           : static_cast<double>(crashes) / static_cast<double>(history.size());
  }
  // Simulated time at which the best configuration was first evaluated
  // (Table 2's "avg. time to find"); 0 when nothing succeeded.
  double TimeToBest() const { return best_index.has_value() ? history[*best_index].sim_time_end : 0.0; }
};

class SearchSession {
 public:
  SearchSession(Testbench* bench, Searcher* searcher, const SessionOptions& options);

  // Runs the full loop. Can be called once per session object.
  SessionResult Run();

  // Restores a previously checkpointed history before the first Step():
  // re-seeds the dedup set, counters, and simulated clock, and replays
  // every trial through the searcher's Observe so its model catches up.
  // Aborts if called after stepping.
  void Resume(const std::vector<TrialRecord>& prior);

  // Resume plus checkpoint-v2 live state: after the replay, the session and
  // searcher RNG streams and the searcher's opaque state are restored to
  // the interrupted run's exact position, so the continuation is
  // bit-identical to the uninterrupted run — including model-based
  // searchers (the model retrains from the replay; the live state carries
  // what replay cannot rebuild). Empty live fields are skipped (a v1
  // checkpoint degrades to the plain Resume above). False when any present
  // field fails to parse; the session is then unusable.
  bool Resume(const std::vector<TrialRecord>& prior, const CheckpointLiveState& live);

  // Snapshot of the live randomness for a v2 checkpoint. Meaningful only
  // at a commit boundary — AtCommitBoundary() true — because a sliding
  // session with trials in flight has consumed proposal entropy for trials
  // the history does not (yet) contain; callers checkpoint such sessions
  // without live state (replay-only resume, which is always safe).
  CheckpointLiveState ExportLiveState() const;

  // True when every proposed trial has committed: after Run(), between
  // serial/lock-step steps, or between sliding waves with an empty window.
  bool AtCommitBoundary() const { return in_flight_.empty(); }

  // Runs a single serial iteration; exposed for fine-grained tests and for
  // benches that interleave sessions. Returns false when the budget is
  // exhausted.
  bool Step();

  // Runs one proposal round at the configured parallelism and returns the
  // number of trials committed (0 = budget exhausted). At
  // parallel_evaluations = 1 this is exactly one Step(); above it, one
  // ProposeBatch / concurrent-evaluate / virtual-time-merge / ObserveBatch
  // round of up to parallel_evaluations trials.
  size_t StepBatch();

  const std::vector<TrialRecord>& history() const { return history_; }
  const SimClock& clock() const { return clock_; }
  size_t transient_retries() const { return retries_; }
  size_t drift_events() const { return drift_events_; }
  // Per-session trace ring (src/obs/trace.h). Recording self-gates on
  // obs::Enabled(), so a metrics-off run never reads the wall clock here.
  // Exposed non-const so the service layer can stamp durability events
  // (journal-append, store-append) into the same timeline.
  obs::TraceRing& trace() { return trace_; }
  SessionResult Finish();

 private:
  // One in-flight slot of a concurrent evaluation round.
  struct PendingTrial {
    Configuration config;
    TrialOutcome outcome;
    double sim_seconds = 0.0;  // Virtual duration of this trial alone.
    bool skip_build = false;
    uint64_t rng_seed = 0;
    size_t retries = 0;  // Transient retries this trial consumed.
  };

  // One trial in flight under the sliding-window executor.
  struct InFlight {
    PendingTrial trial;
    double finish_time = 0.0;  // Absolute virtual time it completes.
    size_t clone = 0;          // Testbench clone evaluating it.
    uint64_t sequence = 0;     // Proposal order; breaks finish-time ties.
  };

  double ComputeObjective(const TrialOutcome& outcome) const;
  // Recomputes min-max normalized scores over the successful history
  // (ObjectiveKind::kScore shifts as observations accumulate).
  void RefreshScores();
  bool SameImageParams(const Configuration& a, const Configuration& b) const;
  SearchContext MakeContext();
  // Dedup helper: re-proposes while `config` repeats history, then marks its
  // hash seen. Mirrors the serial retry loop exactly.
  void DedupProposal(SearchContext& context, Configuration* config);
  // Commits one evaluated trial: deploy check, counters, build cache,
  // objective, history append. Shared by the serial and batch paths.
  // stamp_ns, when nonzero, is a TraceClock stamp the caller already took
  // (the serial loop reuses its evaluate-span end read); zero means read
  // the clock here. Only consulted while recording is enabled.
  void CommitTrial(PendingTrial&& pending, double end_time,
                   int64_t stamp_ns = 0);
  // One evaluation under the re-measurement policy: evaluate, retry
  // transient failures up to retry_transient times on counter-derived
  // streams keyed off `seed_base`, then median-of-measure_repeats the
  // metric of a success. Every attempt advances `clock` (budget-charged).
  // Thread-safe: touches only options_ and its arguments, so batch slots
  // call it concurrently.
  TrialOutcome EvaluateWithPolicy(Testbench* bench, const Configuration& config, Rng& rng,
                                  SimClock* clock, bool skip_build, bool boot_only,
                                  uint64_t seed_base, size_t* retries_used) const;
  // Drift detector + elite re-validation; runs after each observation wave
  // when options_.drift_detection is set.
  void MaybeDetectDrift(SearchContext& context);
  void EnsureBenchClones(size_t n);
  // Sliding-window executor: one commit wave (simultaneous finishers) plus
  // the refill that precedes it. Returns trials committed, 0 when drained.
  size_t StepSlidingWave();
  // Proposes and launches trials for every free slot, respecting the
  // iteration/time budget. Proposal entropy is keyed on proposed_count_ so
  // that with equal-duration trials the streams line up with the lock-step
  // executor's exactly.
  void RefillSlidingSlots();

  Testbench* bench_;
  Searcher* searcher_;
  SessionOptions options_;
  SimClock clock_;
  Rng rng_;
  Rng searcher_rng_;
  std::vector<TrialRecord> history_;
  // Hashes of every evaluated (or batch-pending) configuration; O(1) lookup
  // keeps dedup flat at 250+ iterations x dedup_retries and under batching.
  std::unordered_set<uint64_t> seen_hashes_;
  std::optional<Configuration> last_built_image_;
  // Per-slot Testbench clones for concurrent evaluation (slot i of every
  // batch always evaluates on clone i, so physical scheduling cannot leak
  // into any model-internal state).
  std::vector<std::unique_ptr<Testbench>> bench_clones_;
  std::vector<PendingTrial> pending_;  // Batch scratch, reused per round.
  // Sliding-window state: trials in flight, the clone indices free to host a
  // refill (FIFO, so the equal-duration schedule reuses clones exactly like
  // lock-step), proposals launched so far, and the wall-clock proposal cost
  // accrued since the last commit wave.
  std::vector<InFlight> in_flight_;
  std::vector<size_t> free_clones_;
  size_t proposed_count_ = 0;
  double pending_propose_seconds_ = 0.0;
  // The sliding executor's proposal entropy stream: re-seeded at each refill
  // from (seed, proposed_count_) and left live for the following commit
  // wave's ObserveBatch — mirroring how a lock-step round's single RNG
  // carries from its proposals into its observation.
  Rng sliding_rng_{0};
  size_t crashes_ = 0;
  size_t builds_ = 0;
  size_t builds_skipped_ = 0;
  // Failure taxonomy + robustness policy counters (surfaced in
  // SessionResult and the daemon's session status).
  size_t build_failed_ = 0;
  size_t boot_failed_ = 0;
  size_t run_crashed_ = 0;
  size_t timeouts_ = 0;
  size_t retries_ = 0;
  size_t drift_events_ = 0;
  // Successful-trial count at the last drift event; the detector waits a
  // full window of fresh successes before it may fire again (cooldown).
  size_t successes_at_last_drift_ = 0;
  // Stage timeline for `wfctl trace` — propose/evaluate/observe spans plus
  // build/retry/commit/drift instants, stamped only when obs::Enabled().
  obs::TraceRing trace_;
};

// Convenience wrapper: construct, run, return.
SessionResult RunSearch(Testbench* bench, Searcher* searcher, const SessionOptions& options);

// Objective of one outcome under `objective` for application `app` — the
// definition SearchSession applies to its own trials (NaN for crashed
// trials; kScore yields the 0.0 placeholder RefreshScoreObjectives then
// overwrites). Exposed so the wfd service can re-derive objectives when
// warm-starting a searcher from trials recorded under a different job's
// objective definition.
double TrialObjective(const TrialOutcome& outcome, ObjectiveKind objective, AppId app);

// Recomputes Eq. 4 score objectives in place: min-max normalized
// throughput minus normalized memory over the successful records.
void RefreshScoreObjectives(std::vector<TrialRecord>* history);

// --- Series extraction for the evolution figures ---------------------------

// (time, value) points of successful trials' objectives in history order.
struct SeriesPoint {
  double time = 0.0;
  double value = 0.0;
};
std::vector<SeriesPoint> ObjectiveSeries(const std::vector<TrialRecord>& history);

// Trailing-window crash rate aligned with history order.
std::vector<double> CrashRateSeries(const std::vector<TrialRecord>& history, size_t window = 25);

}  // namespace wayfinder

#endif  // WAYFINDER_SRC_PLATFORM_SESSION_H_
