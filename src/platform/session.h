// The exploration session: Wayfinder's core loop (§3.1).
//
// Repeatedly: (1) ask the search algorithm for the next configuration,
// (2) build + boot + benchmark it on the testbench — skipping the build
// when compile-/boot-time parameters are unchanged since the last built
// image — and (3) feed the outcome back to the algorithm. Runs until an
// iteration or simulated-time budget is exhausted and returns the full
// history plus the best configuration found.
#ifndef WAYFINDER_SRC_PLATFORM_SESSION_H_
#define WAYFINDER_SRC_PLATFORM_SESSION_H_

#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/configspace/config_space.h"
#include "src/platform/searcher.h"
#include "src/platform/trial.h"
#include "src/simos/testbench.h"
#include "src/util/sim_clock.h"

namespace wayfinder {

// What the session optimizes.
enum class ObjectiveKind {
  kAppMetric,        // The application's own metric (polarity from the app).
  kMemoryFootprint,  // Boot memory consumption, minimized (Figure 10).
  kScore,            // s = mXNorm(throughput) - mXNorm(memory) (Eq. 4, Fig 11).
};

struct SessionOptions {
  size_t max_iterations = 250;
  double max_sim_seconds = std::numeric_limits<double>::infinity();
  ObjectiveKind objective = ObjectiveKind::kAppMetric;
  SampleOptions sample_options;  // Phase bias (favor runtime/compile-time).
  uint64_t seed = 0x5e55;
  // Re-propose when a searcher suggests an already-evaluated configuration
  // (up to this many retries; 0 disables dedup).
  size_t dedup_retries = 8;
  // §3.5 "more comprehensive benchmarks": an optional user check of the
  // deployment (e.g. run a test suite against the booted image). Returning
  // false demotes an otherwise-successful trial to a run crash, so the
  // searcher learns the configurations that cause the misbehavior.
  std::function<bool(const Configuration&, const TrialOutcome&)> deploy_check;
};

struct SessionResult {
  std::vector<TrialRecord> history;
  // Index into history of the best successful trial; nullopt if none.
  std::optional<size_t> best_index;
  double total_sim_seconds = 0.0;
  size_t crashes = 0;
  size_t builds = 0;
  size_t builds_skipped = 0;

  const TrialRecord* best() const {
    return best_index.has_value() ? &history[*best_index] : nullptr;
  }
  double CrashRate() const {
    return history.empty() ? 0.0
                           : static_cast<double>(crashes) / static_cast<double>(history.size());
  }
  // Simulated time at which the best configuration was first evaluated
  // (Table 2's "avg. time to find"); 0 when nothing succeeded.
  double TimeToBest() const { return best_index.has_value() ? history[*best_index].sim_time_end : 0.0; }
};

class SearchSession {
 public:
  SearchSession(Testbench* bench, Searcher* searcher, const SessionOptions& options);

  // Runs the full loop. Can be called once per session object.
  SessionResult Run();

  // Restores a previously checkpointed history before the first Step():
  // re-seeds the dedup set, counters, and simulated clock, and replays
  // every trial through the searcher's Observe so its model catches up.
  // Aborts if called after stepping.
  void Resume(const std::vector<TrialRecord>& prior);

  // Runs a single iteration; exposed for fine-grained tests and for benches
  // that interleave sessions. Returns false when the budget is exhausted.
  bool Step();

  const std::vector<TrialRecord>& history() const { return history_; }
  const SimClock& clock() const { return clock_; }
  SessionResult Finish();

 private:
  double ComputeObjective(const TrialOutcome& outcome) const;
  // Recomputes min-max normalized scores over the successful history
  // (ObjectiveKind::kScore shifts as observations accumulate).
  void RefreshScores();
  bool SameImageParams(const Configuration& a, const Configuration& b) const;

  Testbench* bench_;
  Searcher* searcher_;
  SessionOptions options_;
  SimClock clock_;
  Rng rng_;
  Rng searcher_rng_;
  std::vector<TrialRecord> history_;
  std::vector<uint64_t> seen_hashes_;
  std::optional<Configuration> last_built_image_;
  size_t crashes_ = 0;
  size_t builds_ = 0;
  size_t builds_skipped_ = 0;
};

// Convenience wrapper: construct, run, return.
SessionResult RunSearch(Testbench* bench, Searcher* searcher, const SessionOptions& options);

// --- Series extraction for the evolution figures ---------------------------

// (time, value) points of successful trials' objectives in history order.
struct SeriesPoint {
  double time = 0.0;
  double value = 0.0;
};
std::vector<SeriesPoint> ObjectiveSeries(const std::vector<TrialRecord>& history);

// Trailing-window crash rate aligned with history order.
std::vector<double> CrashRateSeries(const std::vector<TrialRecord>& history, size_t window = 25);

}  // namespace wayfinder

#endif  // WAYFINDER_SRC_PLATFORM_SESSION_H_
