// Self-registering searcher registry — the single source of truth for
// which search algorithms exist.
//
// Every searcher implementation registers a name, a factory, and metadata
// from a static initializer in its own translation unit:
//
//   namespace {
//   const SearcherRegistration kRegistration{
//       {"random", "fresh phase-biased random sample each proposal"},
//       [](const SearcherArgs&) { return std::make_unique<RandomSearcher>(); }};
//   }  // namespace
//
// `MakeSearcher`/`MakeJobSearcher` (src/core/wayfinder_api.cc) are plain
// registry lookups, `wfctl algorithms` and the searchers test matrix iterate
// RegisteredSearcherNames(), and an out-of-tree searcher (see
// examples/custom_searcher.cpp) plugs into all of them by linking one object
// file — no core edits. The library is built as a CMake OBJECT library so
// registration TUs are never dropped by archive linking.
#ifndef WAYFINDER_SRC_PLATFORM_SEARCHER_REGISTRY_H_
#define WAYFINDER_SRC_PLATFORM_SEARCHER_REGISTRY_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/platform/searcher.h"

namespace wayfinder {

// Everything a factory may need. Single-metric factories read `space` and
// `seed`; the multi-metric variants also read `metrics` ((name, weight)
// pairs straight from the job file; empty means "use the factory default").
struct SearcherArgs {
  const ConfigSpace* space = nullptr;
  uint64_t seed = 0x5eed;
  std::vector<std::pair<std::string, double>> metrics;
};

using SearcherFactory = std::function<std::unique_ptr<Searcher>(const SearcherArgs&)>;

// Registration-time metadata, surfaced by `wfctl algorithms` and used by
// MakeJobSearcher to route `metric: multi` jobs without naming algorithms.
struct SearcherInfo {
  // The lookup key; must match the instance's Name().
  std::string name;
  // One-line help text.
  std::string summary;
  // Registered name of the searcher constructed for `metric: multi` jobs
  // that ask for this algorithm; empty = multi-metric unsupported.
  std::string multi_metric_variant;
  // Supports SaveModel/LoadModel warm starts (wfctl --model-in/--model-out).
  bool supports_transfer = false;
  bool SupportsMultiMetric() const { return !multi_metric_variant.empty(); }
};

class SearcherRegistry {
 public:
  // Process-wide instance (function-local static, safe during static init).
  static SearcherRegistry& Instance();

  // Registers a searcher; aborts on a duplicate name (two algorithms
  // claiming one name is a build error, not a runtime condition).
  void Register(SearcherInfo info, SearcherFactory factory);

  // Constructs by registered name; nullptr for unknown names.
  std::unique_ptr<Searcher> Create(const std::string& name,
                                   const SearcherArgs& args) const;

  // Metadata lookup; nullptr for unknown names.
  const SearcherInfo* Find(const std::string& name) const;

  // All registered entries, sorted by name.
  std::vector<SearcherInfo> List() const;

 private:
  struct Entry {
    SearcherInfo info;
    SearcherFactory factory;
  };
  std::vector<Entry> entries_;  // Kept sorted by info.name.
};

// Static-init registration handle: constructing one registers the searcher.
class SearcherRegistration {
 public:
  SearcherRegistration(SearcherInfo info, SearcherFactory factory) {
    SearcherRegistry::Instance().Register(std::move(info), std::move(factory));
  }
};

// Sorted names of every registered searcher — the matrix for help text,
// examples, and tests.
std::vector<std::string> RegisteredSearcherNames();

}  // namespace wayfinder

#endif  // WAYFINDER_SRC_PLATFORM_SEARCHER_REGISTRY_H_
