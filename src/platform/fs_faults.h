// Filesystem fault-injection seam for the durable writers (session journal,
// TrialStore, checkpoints). Production code funnels its write/fsync/rename
// calls through the Fault* wrappers below; tests arm a process-global
// FsFaultPlan to inject the classic durability hazards deterministically:
//
//   * ENOSPC on the Nth write          (fail_write_at)
//   * short/torn write on the Nth op   (short_write_at: half the bytes land)
//   * fsync failure on the Nth fsync   (fail_fsync_at, errno EIO)
//   * crash *before* the Nth rename    (crash_before_rename_at: tmp file
//                                       stays, destination untouched)
//   * crash *after* the Nth rename     (crash_after_rename_at: rename lands,
//                                       but the caller sees a failure — the
//                                       post-rename cleanup never runs)
//
// plus seeded probabilistic variants (write_fail_prob / fsync_fail_prob on
// an Rng stream) for soak-style churn. A disarmed seam is a single relaxed
// atomic load on top of the libc call, cheap enough to leave compiled into
// release builds; an armed empty plan injects nothing.
//
// The deterministic indices count *per op class* from the moment of Arm(),
// so a test can align a fault with, say, exactly the journal append for
// wave 3. Op counters are readable for that alignment. The seam is
// process-global and not thread-synchronized beyond atomics: tests arm it
// around single-threaded recovery scenarios, not under concurrent load.
#ifndef WAYFINDER_SRC_PLATFORM_FS_FAULTS_H_
#define WAYFINDER_SRC_PLATFORM_FS_FAULTS_H_

#include <atomic>
#include <cstddef>
#include <cstdio>
#include <string>

#include "src/util/rng.h"

namespace wayfinder {

// One scheduled fault plan. Index knobs are op ordinals counted from Arm()
// (0 = the first op of that class); kNever disables a knob.
struct FsFaultPlan {
  static constexpr size_t kNever = static_cast<size_t>(-1);

  size_t fail_write_at = kNever;          // ENOSPC, zero bytes written.
  size_t short_write_at = kNever;         // ENOSPC after half the bytes land.
  size_t fail_fsync_at = kNever;          // EIO; data durability unknown.
  size_t crash_before_rename_at = kNever; // Rename skipped entirely.
  size_t crash_after_rename_at = kNever;  // Rename performed, failure reported.

  // Probabilistic faults on a seeded stream (for soak churn). The stream is
  // only consulted for op classes with a nonzero probability, so a plan with
  // both at 0.0 draws no random numbers.
  uint64_t seed = 0;
  double write_fail_prob = 0.0;
  double fsync_fail_prob = 0.0;

  bool Empty() const {
    return fail_write_at == kNever && short_write_at == kNever &&
           fail_fsync_at == kNever && crash_before_rename_at == kNever &&
           crash_after_rename_at == kNever && write_fail_prob == 0.0 &&
           fsync_fail_prob == 0.0;
  }
};

// Process-global injector. Arm() installs a plan and resets the op counters;
// Disarm() restores pass-through behaviour.
class FsFaultInjector {
 public:
  static FsFaultInjector& Instance();

  void Arm(const FsFaultPlan& plan);
  void Disarm();
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  // Ops of each class seen since Arm() (0 when disarmed) — lets a test align
  // a fault index with a specific append or verify the seam was exercised.
  size_t writes_seen() const { return writes_.load(std::memory_order_relaxed); }
  size_t fsyncs_seen() const { return fsyncs_.load(std::memory_order_relaxed); }
  size_t renames_seen() const { return renames_.load(std::memory_order_relaxed); }

  // Internal: consulted by the Fault* wrappers. Each returns the action the
  // wrapper must take for the current op of that class.
  enum class WriteAction { kPass, kFail, kShort };
  WriteAction NextWrite();
  bool NextFsyncFails();
  enum class RenameAction { kPass, kCrashBefore, kCrashAfter };
  RenameAction NextRename();

 private:
  FsFaultInjector() = default;

  std::atomic<bool> armed_{false};
  std::atomic<size_t> writes_{0};
  std::atomic<size_t> fsyncs_{0};
  std::atomic<size_t> renames_{0};
  FsFaultPlan plan_;
  Rng rng_;
};

// fwrite through the seam. Returns the byte count actually written; on an
// injected fault errno is ENOSPC and the count is short (possibly zero).
size_t FaultWrite(const void* data, size_t size, std::FILE* stream);

// fsync through the seam; false with errno set on (real or injected) failure.
bool FaultFsync(int fd);

// rename through the seam; false with errno set on failure. An injected
// crash_before leaves `from` in place (the stale-tmp hazard); an injected
// crash_after performs the rename but still reports failure, modelling a
// crash between the rename and any post-rename bookkeeping.
bool FaultRename(const std::string& from, const std::string& to);

// Writes `data` to `path` atomically — tmp file, FaultWrite, fflush,
// FaultFsync, FaultRename — so a crash or injected fault at any step leaves
// either the old destination or the new one, never a torn file. The tmp
// path is `path` + ".tmp". False on failure with a reason in `error`; the
// tmp file is unlinked on every failure except an injected crash (which by
// definition gets no chance to clean up).
bool AtomicWriteFile(const std::string& path, const std::string& data,
                     std::string* error = nullptr);

}  // namespace wayfinder

#endif  // WAYFINDER_SRC_PLATFORM_FS_FAULTS_H_
