#include "src/platform/job_file.h"

#include "src/configspace/linux_space.h"
#include "src/configspace/unikraft_space.h"

namespace wayfinder {

Substrate JobSpec::SubstrateKind() const {
  if (os == "unikraft") {
    return Substrate::kUnikraftKvm;
  }
  if (os == "linux-riscv") {
    return Substrate::kLinuxRiscvQemu;
  }
  return Substrate::kLinuxKvm;
}

SampleOptions JobSpec::SamplingBias() const {
  if (favor == "runtime") {
    return SampleOptions::FavorRuntime();
  }
  if (favor == "compile") {
    return SampleOptions::FavorCompileTime();
  }
  return SampleOptions();
}

SessionOptions JobSpec::ToSessionOptions() const {
  SessionOptions options;
  options.max_iterations = iterations;
  options.max_sim_seconds = sim_seconds;
  options.objective = objective;
  options.sample_options = SamplingBias();
  options.seed = seed;
  options.parallel_evaluations = parallel;
  options.sliding_window = sliding;
  options.retry_transient = fault_retries;
  options.measure_repeats = measure_repeats;
  // A job that schedules workload drift gets the detector for free; clean
  // jobs keep it off (no detector scans, no re-validation trials).
  options.drift_detection = faults.drift_at > 0.0;
  return options;
}

TestbenchOptions JobSpec::ToTestbenchOptions() const {
  TestbenchOptions options;
  options.substrate = SubstrateKind();
  options.seed = HashCombine(seed, StableHash(name));
  options.faults = faults;
  return options;
}

JobParseResult ParseJob(const YamlNode& root) {
  JobParseResult result;
  if (!root.IsMapping()) {
    result.error = "job file root must be a mapping";
    return result;
  }
  JobSpec& spec = result.spec;
  spec.name = root.GetString("name", "unnamed-job");
  spec.os = root.GetString("os", "linux");
  if (spec.os != "linux" && spec.os != "unikraft" && spec.os != "linux-riscv") {
    result.error = "unknown os: " + spec.os;
    return result;
  }
  std::string app_name = root.GetString("application", "nginx");
  if (!TryParseApp(app_name, &spec.app)) {
    result.error = "unknown application: " + app_name;
    return result;
  }
  std::string metric = root.GetString("metric", "performance");
  if (metric == "performance") {
    spec.objective = ObjectiveKind::kAppMetric;
  } else if (metric == "memory") {
    spec.objective = ObjectiveKind::kMemoryFootprint;
  } else if (metric == "score") {
    spec.objective = ObjectiveKind::kScore;
  } else if (metric == "multi") {
    // Multi-metric jobs report through the Eq. 4 score objective; the
    // weighted per-metric search happens inside the searcher (Â§3.2).
    spec.objective = ObjectiveKind::kScore;
    const YamlNode* metrics = root.Get("metrics");
    if (metrics == nullptr || !metrics->IsSequence() || metrics->Size() == 0) {
      result.error = "metric: multi requires a non-empty metrics list";
      return result;
    }
    for (size_t i = 0; i < metrics->Size(); ++i) {
      const YamlNode& entry = metrics->At(i);
      JobMetric job_metric;
      job_metric.name = entry.GetString("name");
      job_metric.weight = entry.GetDouble("weight", 1.0);
      if (job_metric.name != "throughput" && job_metric.name != "memory") {
        result.error = "unknown metric name: " + job_metric.name;
        return result;
      }
      if (job_metric.weight < 0.0) {
        result.error = "metric weight must be non-negative: " + job_metric.name;
        return result;
      }
      spec.metrics.push_back(std::move(job_metric));
    }
  } else {
    result.error = "unknown metric: " + metric;
    return result;
  }
  if (const YamlNode* budget = root.Get("budget"); budget != nullptr) {
    spec.iterations = static_cast<size_t>(budget->GetInt("iterations", 250));
    double sim_seconds = budget->GetDouble("sim_seconds", 0.0);
    if (sim_seconds > 0.0) {
      spec.sim_seconds = sim_seconds;
    }
  }
  int64_t parallel = root.GetInt("parallel", 1);
  if (parallel < 1) {
    result.error = "parallel must be a positive trial count";
    return result;
  }
  spec.parallel = static_cast<size_t>(parallel);
  spec.sliding = root.GetBool("sliding", false);
  if (const YamlNode* search = root.Get("search"); search != nullptr) {
    spec.algorithm = search->GetString("algorithm", "deeptune");
    spec.favor = search->GetString("favor", "none");
    spec.seed = static_cast<uint64_t>(search->GetInt("seed", 42));
  }
  if (const YamlNode* faults = root.Get("faults"); faults != nullptr) {
    if (!faults->IsMapping()) {
      result.error = "faults must be a mapping";
      return result;
    }
    spec.faults.flake_prob = faults->GetDouble("flake_prob", 0.0);
    spec.faults.timeout_prob = faults->GetDouble("timeout_prob", 0.0);
    spec.faults.hang_prob = faults->GetDouble("hang_prob", 0.0);
    spec.faults.timeout_seconds = faults->GetDouble("timeout_s", 600.0);
    spec.faults.noise_sigma = faults->GetDouble("noise_sigma", 0.0);
    spec.faults.drift_at = faults->GetDouble("drift_at", 0.0);
    spec.faults.drift_magnitude = faults->GetDouble("drift_magnitude", 1.0);
    for (double prob : {spec.faults.flake_prob, spec.faults.timeout_prob,
                        spec.faults.hang_prob}) {
      if (prob < 0.0 || prob > 1.0) {
        result.error = "fault probabilities must be in [0, 1]";
        return result;
      }
    }
    if (spec.faults.drift_magnitude < 0.0 || spec.faults.drift_magnitude > 1.0) {
      result.error = "drift_magnitude must be in [0, 1]";
      return result;
    }
    int64_t retries = faults->GetInt("retries", 0);
    int64_t repeats = faults->GetInt("repeats", 1);
    if (retries < 0 || repeats < 1) {
      result.error = "faults retries must be >= 0 and repeats >= 1";
      return result;
    }
    spec.fault_retries = static_cast<size_t>(retries);
    spec.measure_repeats = static_cast<size_t>(repeats);
  }
  if (const YamlNode* freeze = root.Get("freeze"); freeze != nullptr) {
    if (!freeze->IsSequence()) {
      result.error = "freeze must be a sequence";
      return result;
    }
    for (size_t i = 0; i < freeze->Size(); ++i) {
      const YamlNode& entry = freeze->At(i);
      FrozenParam frozen;
      frozen.name = entry.GetString("name");
      frozen.value = entry.GetInt("value", 0);
      if (frozen.name.empty()) {
        result.error = "freeze entry missing name";
        return result;
      }
      spec.freeze.push_back(std::move(frozen));
    }
  }
  result.ok = true;
  return result;
}

JobParseResult ParseJobText(const std::string& yaml_text) {
  YamlParseResult yaml = ParseYaml(yaml_text);
  if (!yaml.ok) {
    JobParseResult result;
    result.error = "YAML error at line " + std::to_string(yaml.error_line) + ": " + yaml.error;
    return result;
  }
  return ParseJob(yaml.root);
}

JobParseResult ParseJobFile(const std::string& path) {
  YamlParseResult yaml = ParseYamlFile(path);
  if (!yaml.ok) {
    JobParseResult result;
    result.error = "YAML error in " + path + ": " + yaml.error;
    return result;
  }
  return ParseJob(yaml.root);
}

ConfigSpace BuildJobSpace(const JobSpec& spec) {
  // The space is canonical per OS family — deliberately independent of the
  // job's search seed, and shared between "linux" and "linux-riscv" (same
  // Kconfig tree, different target arch). Cross-job operations (transfer
  // learning across applications, cross-platform history transfer,
  // checkpoint resume under an edited job file) all rely on two jobs
  // agreeing on the space.
  ConfigSpace space;
  if (spec.os == "unikraft") {
    space = BuildUnikraftSpace();
  } else {
    space = BuildLinuxSearchSpace();
  }
  for (const FrozenParam& frozen : spec.freeze) {
    space.Freeze(frozen.name, frozen.value);
  }
  return space;
}

}  // namespace wayfinder
