// Record of one evaluated configuration — the unit of the exploration
// history that search algorithms learn from.
#ifndef WAYFINDER_SRC_PLATFORM_TRIAL_H_
#define WAYFINDER_SRC_PLATFORM_TRIAL_H_

#include <cmath>
#include <cstddef>
#include <vector>

#include "src/configspace/config_space.h"
#include "src/simos/testbench.h"

namespace wayfinder {

struct TrialRecord {
  size_t iteration = 0;
  Configuration config;
  TrialOutcome outcome;

  // Session-defined objective (higher is always better after polarity
  // normalization); NaN for crashed trials.
  double objective = std::nan("");

  // Simulated clock when the trial finished.
  double sim_time_end = 0.0;

  // Wall-clock seconds the search algorithm spent deciding on / learning
  // from this trial (the Figure 8 "DeepTune update time").
  double searcher_seconds = 0.0;

  bool crashed() const { return !outcome.ok(); }
  bool HasObjective() const { return !std::isnan(objective); }
};

}  // namespace wayfinder

#endif  // WAYFINDER_SRC_PLATFORM_TRIAL_H_
