// Session checkpointing: persist an exploration history to disk and restore
// it into a fresh session (SearchSession::Resume), so a long specialization
// job survives restarts — the paper's platform runs jobs "in the
// background" over days (Appendix A.4), which is only practical with
// resumable state.
//
// The format is a line-oriented text file:
//
//   wayfinder-checkpoint v1
//   params <param-count>
//   trial <iter> <status> <metric> <memory> <build_s> <boot_s> <run_s>
//         ... <skipped> <objective> <sim_end> <searcher_s>   (one line)
//   values <v0> <v1> ... (param-count raw values)
//   ... (one trial/values pair per record)
//
// Model weights are checkpointed separately via DeepTuneSearcher::SaveModel;
// a resumed session replays the history through Observe, which retrains any
// searcher deterministically enough for the search to continue.
#ifndef WAYFINDER_SRC_PLATFORM_CHECKPOINT_H_
#define WAYFINDER_SRC_PLATFORM_CHECKPOINT_H_

#include <string>
#include <vector>

#include "src/configspace/config_space.h"
#include "src/platform/trial.h"

namespace wayfinder {

// Writes `history` to `path`; false on I/O failure.
bool SaveCheckpoint(const std::vector<TrialRecord>& history, const std::string& path);

struct CheckpointLoadResult {
  bool ok = false;
  std::vector<TrialRecord> history;
  std::string error;
};

// Reads a checkpoint written against (a space identical to) `space`.
// Validates the header, parameter count, and every value's domain.
CheckpointLoadResult LoadCheckpoint(const ConfigSpace& space, const std::string& path);

}  // namespace wayfinder

#endif  // WAYFINDER_SRC_PLATFORM_CHECKPOINT_H_
