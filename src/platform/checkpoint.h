// Session checkpointing: persist an exploration history to disk and restore
// it into a fresh session (SearchSession::Resume), so a long specialization
// job survives restarts — the paper's platform runs jobs "in the
// background" over days (Appendix A.4), which is only practical with
// resumable state.
//
// The format is a line-oriented text file:
//
//   wayfinder-checkpoint v2
//   params <param-count>
//   rng-session <rng state tokens>        (v2, optional)
//   rng-searcher <rng state tokens>       (v2, optional)
//   searcher-state <opaque single line>   (v2, optional)
//   failures <status-name> <count> ...    (v2, optional; nonzero classes)
//   trial <iter> <status> <metric> <memory> <build_s> <boot_s> <run_s>
//         ... <skipped> <objective> <sim_end> <searcher_s> [failure reason]
//   values <v0> <v1> ... (param-count raw values)
//   ... (one trial/values pair per record)
//
// The `failures` line aggregates the per-class failure taxonomy
// (TrialStatusName tokens — the same vocabulary the trial lines use), and a
// failed trial's line may end with its free-text failure reason; both are
// optional trailing extensions, so v2 files written before them still load
// and old readers that stop at searcher_s stay compatible.
//
// v2 adds the three optional live-state lines. With them, Resume() continues
// the interrupted run bit-exactly — including model-based searchers, whose
// model retrains from the replay while the RNG streams and the searcher's
// opaque state (Searcher::ExportState) pick up exactly where the run
// stopped. v1 files (no live-state lines) still load; their resume replays
// the history but restarts the randomness, the pre-v2 behaviour.
//
// Model weights can additionally be checkpointed via
// DeepTuneSearcher::SaveModel, but a resumed session replays the history
// through Observe, which retrains any searcher bit-deterministically.
#ifndef WAYFINDER_SRC_PLATFORM_CHECKPOINT_H_
#define WAYFINDER_SRC_PLATFORM_CHECKPOINT_H_

#include <string>
#include <vector>

#include "src/configspace/config_space.h"
#include "src/platform/trial.h"

namespace wayfinder {

// The v2 live-state sections. Empty strings mean "absent" (a v1 checkpoint
// or a caller that only wants the history).
struct CheckpointLiveState {
  std::string session_rng;     // Rng::SerializeState of the evaluation stream.
  std::string searcher_rng;    // ... of the proposal stream.
  std::string searcher_state;  // Searcher::ExportState (opaque, single line).

  bool Any() const {
    return !session_rng.empty() || !searcher_rng.empty() || !searcher_state.empty();
  }
};

// Renders `history` (plus optional live state) as checkpoint text — the
// payload the wfd service returns for `wfctl result`.
std::string CheckpointToText(const std::vector<TrialRecord>& history,
                             const CheckpointLiveState* live = nullptr);

// Writes `history` to `path`; false on I/O failure.
bool SaveCheckpoint(const std::vector<TrialRecord>& history, const std::string& path,
                    const CheckpointLiveState* live = nullptr);

struct CheckpointLoadResult {
  bool ok = false;
  std::vector<TrialRecord> history;
  CheckpointLiveState live;  // All-empty for v1 files.
  // Aggregate failure taxonomy from the optional v2 `failures` line (all
  // zero when the file predates it); the writer derives it from the trial
  // statuses, so it always agrees with `history`.
  size_t build_failures = 0;
  size_t boot_failures = 0;
  size_t run_crashes = 0;
  size_t timeouts = 0;
  std::string error;
};

// Reads a checkpoint written against (a space identical to) `space`.
// Validates the header, parameter count, and every value's domain. Accepts
// v1 and v2 files.
CheckpointLoadResult LoadCheckpoint(const ConfigSpace& space, const std::string& path);
CheckpointLoadResult LoadCheckpointText(const ConfigSpace& space, const std::string& text);

}  // namespace wayfinder

#endif  // WAYFINDER_SRC_PLATFORM_CHECKPOINT_H_
