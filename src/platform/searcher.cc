#include "src/platform/searcher.h"

namespace wayfinder {

void Searcher::Observe(const TrialRecord& trial, SearchContext& context) {
  (void)trial;
  (void)context;
}

size_t Searcher::MemoryBytes() const { return 0; }

}  // namespace wayfinder
