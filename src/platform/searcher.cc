#include "src/platform/searcher.h"

namespace wayfinder {

void Searcher::Observe(const TrialRecord& trial, SearchContext& context) {
  (void)trial;
  (void)context;
}

void Searcher::ProposeBatch(SearchContext& context, size_t n,
                            std::vector<Configuration>* batch) {
  batch->clear();
  batch->reserve(n);
  for (size_t i = 0; i < n; ++i) {
    batch->push_back(Propose(context));
  }
}

void Searcher::ObserveBatch(Span<const TrialRecord> trials, SearchContext& context) {
  for (const TrialRecord& trial : trials) {
    Observe(trial, context);
  }
}

void Searcher::OnDrift(SearchContext& context) { (void)context; }

size_t Searcher::MemoryBytes() const { return 0; }

}  // namespace wayfinder
