#include "src/platform/crash_report.h"

#include <algorithm>
#include <sstream>

namespace wayfinder {

CrashReport AnalyzeCrashes(const ConfigSpace& space, const std::vector<TrialRecord>& history,
                           size_t min_moved) {
  CrashReport report;
  report.trials = history.size();
  Configuration defaults = space.DefaultConfiguration();

  // Per-parameter crash counts, split by moved / left-at-default.
  std::vector<size_t> moved(space.Size(), 0);
  std::vector<size_t> moved_crashed(space.Size(), 0);
  std::vector<size_t> still(space.Size(), 0);
  std::vector<size_t> still_crashed(space.Size(), 0);

  for (const TrialRecord& trial : history) {
    bool crashed = trial.crashed();
    if (crashed) {
      ++report.crashes;
      switch (trial.outcome.status) {
        case TrialOutcome::Status::kBuildFailed:
          ++report.build_failures;
          break;
        case TrialOutcome::Status::kBootFailed:
          ++report.boot_failures;
          break;
        case TrialOutcome::Status::kRunCrashed:
          ++report.run_crashes;
          break;
        case TrialOutcome::Status::kTimeout:
          ++report.timeouts;
          break;
        case TrialOutcome::Status::kOk:
          break;
      }
      report.wasted_sim_seconds += trial.outcome.TotalSeconds();
    }
    report.total_sim_seconds += trial.outcome.TotalSeconds();

    for (size_t i = 0; i < space.Size(); ++i) {
      bool is_moved = trial.config.Raw(i) != defaults.Raw(i);
      if (is_moved) {
        ++moved[i];
        moved_crashed[i] += crashed ? 1 : 0;
      } else {
        ++still[i];
        still_crashed[i] += crashed ? 1 : 0;
      }
    }
  }

  for (size_t i = 0; i < space.Size(); ++i) {
    if (moved[i] < min_moved || still[i] == 0) {
      continue;
    }
    CrashCorrelate correlate;
    correlate.param_index = i;
    correlate.name = space.Param(i).name;
    correlate.moved_trials = moved[i];
    correlate.moved_crashes = moved_crashed[i];
    correlate.moved_crash_rate =
        static_cast<double>(moved_crashed[i]) / static_cast<double>(moved[i]);
    correlate.baseline_crash_rate =
        static_cast<double>(still_crashed[i]) / static_cast<double>(still[i]);
    correlate.lift = correlate.moved_crash_rate - correlate.baseline_crash_rate;
    report.correlates.push_back(std::move(correlate));
  }
  std::sort(report.correlates.begin(), report.correlates.end(),
            [](const CrashCorrelate& a, const CrashCorrelate& b) { return a.lift > b.lift; });
  return report;
}

std::string FormatCrashReport(const CrashReport& report, size_t top_n) {
  std::ostringstream oss;
  oss.precision(3);
  double crash_rate = report.trials > 0 ? static_cast<double>(report.crashes) /
                                              static_cast<double>(report.trials)
                                        : 0.0;
  oss << "crashes: " << report.crashes << "/" << report.trials << " (rate " << crash_rate
      << "; build " << report.build_failures << ", boot " << report.boot_failures
      << ", run " << report.run_crashes << ", timeout " << report.timeouts << ")\n";
  if (report.total_sim_seconds > 0.0) {
    oss << "wasted time: " << static_cast<long long>(report.wasted_sim_seconds) << "s of "
        << static_cast<long long>(report.total_sim_seconds) << "s simulated ("
        << 100.0 * report.wasted_sim_seconds / report.total_sim_seconds << "%)\n";
  }
  if (report.correlates.empty()) {
    oss << "no parameter moved often enough to correlate with crashes\n";
    return oss.str();
  }
  oss << "top crash-associated parameters (crash-rate lift when moved off default):\n";
  size_t shown = 0;
  for (const CrashCorrelate& correlate : report.correlates) {
    if (correlate.lift <= 0.0 || shown >= top_n) {
      break;
    }
    oss << "  " << correlate.name << "  +" << correlate.lift << " ("
        << correlate.moved_crashes << "/" << correlate.moved_trials << " moved vs baseline "
        << correlate.baseline_crash_rate << ")\n";
    ++shown;
  }
  if (shown == 0) {
    oss << "  (none with positive lift)\n";
  }
  return oss.str();
}

}  // namespace wayfinder
