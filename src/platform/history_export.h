// Export of exploration histories for offline analysis/plotting — the
// platform's equivalent of the paper artifact's pre-generated datasets.
#ifndef WAYFINDER_SRC_PLATFORM_HISTORY_EXPORT_H_
#define WAYFINDER_SRC_PLATFORM_HISTORY_EXPORT_H_

#include <string>
#include <vector>

#include "src/platform/trial.h"

namespace wayfinder {

// Writes one row per trial: iteration, sim time, status, objective, metric,
// memory, phase durations, and the configuration hash. Returns false when
// the file cannot be written.
bool ExportHistoryCsv(const std::vector<TrialRecord>& history, const std::string& path);

// Summary statistics of a history, for quick reporting.
struct HistorySummary {
  size_t trials = 0;
  size_t crashes = 0;
  size_t build_failures = 0;
  size_t boot_failures = 0;
  size_t run_crashes = 0;
  size_t timeouts = 0;
  double best_objective = 0.0;
  bool has_best = false;
  double total_sim_seconds = 0.0;
  double mean_searcher_seconds = 0.0;
};

HistorySummary SummarizeHistory(const std::vector<TrialRecord>& history);

}  // namespace wayfinder

#endif  // WAYFINDER_SRC_PLATFORM_HISTORY_EXPORT_H_
