#include "src/platform/history_export.h"

#include <algorithm>

#include "src/util/table.h"

namespace wayfinder {

namespace {

const char* StatusName(TrialOutcome::Status status) {
  switch (status) {
    case TrialOutcome::Status::kOk:
      return "ok";
    case TrialOutcome::Status::kBuildFailed:
      return "build_failed";
    case TrialOutcome::Status::kBootFailed:
      return "boot_failed";
    case TrialOutcome::Status::kRunCrashed:
      return "run_crashed";
    case TrialOutcome::Status::kTimeout:
      return "timeout";
  }
  return "?";
}

}  // namespace

bool ExportHistoryCsv(const std::vector<TrialRecord>& history, const std::string& path) {
  CsvWriter csv(path, {"iteration", "sim_time_s", "status", "objective", "metric", "memory_mb",
                       "build_s", "boot_s", "run_s", "build_skipped", "searcher_s",
                       "config_hash"});
  if (!csv.ok()) {
    return false;
  }
  for (const TrialRecord& trial : history) {
    csv.WriteRow({std::to_string(trial.iteration), TablePrinter::Num(trial.sim_time_end, 1),
                  StatusName(trial.outcome.status),
                  trial.HasObjective() ? TablePrinter::Num(trial.objective, 4) : "",
                  TablePrinter::Num(trial.outcome.metric, 2),
                  TablePrinter::Num(trial.outcome.memory_mb, 2),
                  TablePrinter::Num(trial.outcome.build_seconds, 1),
                  TablePrinter::Num(trial.outcome.boot_seconds, 2),
                  TablePrinter::Num(trial.outcome.run_seconds, 1),
                  trial.outcome.build_skipped ? "1" : "0",
                  TablePrinter::Num(trial.searcher_seconds, 4),
                  std::to_string(trial.config.Hash())});
  }
  return true;
}

HistorySummary SummarizeHistory(const std::vector<TrialRecord>& history) {
  HistorySummary summary;
  summary.trials = history.size();
  double searcher_sum = 0.0;
  for (const TrialRecord& trial : history) {
    switch (trial.outcome.status) {
      case TrialOutcome::Status::kOk:
        break;
      case TrialOutcome::Status::kBuildFailed:
        ++summary.build_failures;
        ++summary.crashes;
        break;
      case TrialOutcome::Status::kBootFailed:
        ++summary.boot_failures;
        ++summary.crashes;
        break;
      case TrialOutcome::Status::kRunCrashed:
        ++summary.run_crashes;
        ++summary.crashes;
        break;
      case TrialOutcome::Status::kTimeout:
        ++summary.timeouts;
        ++summary.crashes;
        break;
    }
    if (trial.HasObjective() &&
        (!summary.has_best || trial.objective > summary.best_objective)) {
      summary.best_objective = trial.objective;
      summary.has_best = true;
    }
    summary.total_sim_seconds = std::max(summary.total_sim_seconds, trial.sim_time_end);
    searcher_sum += trial.searcher_seconds;
  }
  if (!history.empty()) {
    summary.mean_searcher_seconds = searcher_sum / static_cast<double>(history.size());
  }
  return summary;
}

}  // namespace wayfinder
