#include "src/platform/random_search.h"

#include "src/platform/searcher_registry.h"

namespace wayfinder {

Configuration RandomSearcher::Propose(SearchContext& context) {
  return context.space->RandomConfiguration(*context.rng, context.sample_options);
}

namespace {
const SearcherRegistration kRegistration{
    {"random", "fresh phase-biased random sample each proposal (the paper's baseline)",
     /*multi_metric_variant=*/""},
    [](const SearcherArgs&) { return std::make_unique<RandomSearcher>(); }};
}  // namespace

}  // namespace wayfinder
