#include "src/platform/random_search.h"

namespace wayfinder {

Configuration RandomSearcher::Propose(SearchContext& context) {
  return context.space->RandomConfiguration(*context.rng, context.sample_options);
}

}  // namespace wayfinder
