// Deterministic, forkable pseudo-random number generation.
//
// Everything in Wayfinder that is stochastic (space sampling, the simulated
// kernel's behaviour, NN initialization, search policies) draws from an
// explicit Rng instance so that whole experiments replay bit-identically from
// a single seed. The generator is xoshiro256++, seeded via splitmix64.
#ifndef WAYFINDER_SRC_UTIL_RNG_H_
#define WAYFINDER_SRC_UTIL_RNG_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace wayfinder {

// Mixes a 64-bit state into a well-distributed output. Used for seeding and
// for stateless per-key randomness (see HashMix / StableHash).
uint64_t SplitMix64(uint64_t& state);

// FNV-1a hash of a string, for deriving stable per-name seeds.
uint64_t StableHash(std::string_view text);

// Combines two 64-bit values into one hash, order-sensitive.
uint64_t HashCombine(uint64_t a, uint64_t b);

// xoshiro256++ generator with convenience sampling methods.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Returns the next raw 64-bit output.
  uint64_t Next();

  // Uniform double in [0, 1).
  double Uniform();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Standard normal via Box-Muller (cached second value).
  double Normal();

  // Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  // Bernoulli draw with success probability p.
  bool Bernoulli(double p);

  // Index in [0, weights.size()) with probability proportional to weights.
  // Requires at least one strictly positive weight.
  size_t WeightedIndex(const std::vector<double>& weights);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

  // Returns a statistically independent child generator. Forking advances
  // this generator, so repeated forks yield distinct streams.
  Rng Fork();

  // Full generator state (xoshiro words + the cached Box-Muller value) as a
  // single line of hex tokens, and its inverse. Checkpoints persist these so
  // a resumed session's randomness continues exactly where the interrupted
  // run stopped. DeserializeState rejects malformed text and leaves the
  // generator untouched.
  std::string SerializeState() const;
  bool DeserializeState(const std::string& text);

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace wayfinder

#endif  // WAYFINDER_SRC_UTIL_RNG_H_
