#include "src/util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>

namespace wayfinder {

void RunningStats::Add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStats::Mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::Variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::StdDev() const { return std::sqrt(Variance()); }

double RunningStats::Min() const { return count_ == 0 ? 0.0 : min_; }

double RunningStats::Max() const { return count_ == 0 ? 0.0 : max_; }

double Mean(const std::vector<double>& values) {
  if (values.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double v : values) {
    sum += v;
  }
  return sum / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) {
    return 0.0;
  }
  double mean = Mean(values);
  double sum_sq = 0.0;
  for (double v : values) {
    sum_sq += (v - mean) * (v - mean);
  }
  return std::sqrt(sum_sq / static_cast<double>(values.size() - 1));
}

double Quantile(std::vector<double> values, double q) {
  if (values.empty()) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  double pos = q * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double PearsonCorrelation(const std::vector<double>& xs, const std::vector<double>& ys) {
  assert(xs.size() == ys.size());
  size_t n = xs.size();
  if (n < 2) {
    return 0.0;
  }
  double mx = Mean(xs);
  double my = Mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double dx = xs[i] - mx;
    double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) {
    return 0.0;
  }
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> MinMaxNormalize(const std::vector<double>& values) {
  std::vector<double> out(values.size(), 0.5);
  if (values.empty()) {
    return out;
  }
  double lo = *std::min_element(values.begin(), values.end());
  double hi = *std::max_element(values.begin(), values.end());
  if (hi - lo <= 0.0) {
    return out;
  }
  for (size_t i = 0; i < values.size(); ++i) {
    out[i] = (values[i] - lo) / (hi - lo);
  }
  return out;
}

void ZScoreNormalizer::Fit(const std::vector<std::vector<double>>& rows) {
  means_.clear();
  stds_.clear();
  if (rows.empty()) {
    return;
  }
  size_t width = rows.front().size();
  means_.assign(width, 0.0);
  stds_.assign(width, 0.0);
  for (const auto& row : rows) {
    assert(row.size() == width);
    for (size_t j = 0; j < width; ++j) {
      means_[j] += row[j];
    }
  }
  for (size_t j = 0; j < width; ++j) {
    means_[j] /= static_cast<double>(rows.size());
  }
  for (const auto& row : rows) {
    for (size_t j = 0; j < width; ++j) {
      double d = row[j] - means_[j];
      stds_[j] += d * d;
    }
  }
  for (size_t j = 0; j < width; ++j) {
    stds_[j] = std::sqrt(stds_[j] / static_cast<double>(rows.size()));
  }
}

std::vector<double> ZScoreNormalizer::Transform(const std::vector<double>& row) const {
  assert(row.size() == means_.size());
  std::vector<double> out(row.size());
  for (size_t j = 0; j < row.size(); ++j) {
    double spread = stds_[j] > 1e-12 ? stds_[j] : 1.0;
    out[j] = (row[j] - means_[j]) / spread;
  }
  return out;
}

std::vector<double> SmoothSeries(const std::vector<double>& values, size_t window) {
  std::vector<double> out(values.size());
  if (window == 0) {
    window = 1;
  }
  double sum = 0.0;
  for (size_t i = 0; i < values.size(); ++i) {
    sum += values[i];
    if (i >= window) {
      sum -= values[i - window];
    }
    size_t count = std::min(i + 1, window);
    out[i] = sum / static_cast<double>(count);
  }
  return out;
}

std::vector<double> EmaSeries(const std::vector<double>& values, double alpha) {
  std::vector<double> out(values.size());
  double ema = 0.0;
  for (size_t i = 0; i < values.size(); ++i) {
    ema = (i == 0) ? values[i] : alpha * values[i] + (1.0 - alpha) * ema;
    out[i] = ema;
  }
  return out;
}

std::vector<double> RunningBest(const std::vector<double>& values, bool maximize) {
  std::vector<double> out(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    if (i == 0) {
      out[i] = values[i];
    } else {
      out[i] = maximize ? std::max(out[i - 1], values[i]) : std::min(out[i - 1], values[i]);
    }
  }
  return out;
}

size_t ArgBest(const std::vector<double>& values, bool maximize) {
  if (values.empty()) {
    return std::numeric_limits<size_t>::max();
  }
  size_t best = 0;
  for (size_t i = 1; i < values.size(); ++i) {
    bool better = maximize ? values[i] > values[best] : values[i] < values[best];
    if (better) {
      best = i;
    }
  }
  return best;
}

MeanCi MeanConfidenceInterval(const std::vector<double>& values, double z) {
  MeanCi ci;
  if (values.empty()) {
    return ci;
  }
  RunningStats stats;
  for (double v : values) {
    stats.Add(v);
  }
  ci.mean = stats.Mean();
  if (stats.Count() >= 2) {
    ci.half_width = z * stats.StdDev() / std::sqrt(static_cast<double>(stats.Count()));
  }
  return ci;
}

}  // namespace wayfinder
