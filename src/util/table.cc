#include "src/util/table.h"

#include <cstdio>
#include <iomanip>
#include <sstream>

namespace wayfinder {

TablePrinter::TablePrinter(std::vector<std::string> header) : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Num(double value, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << value;
  return oss.str();
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t j = 0; j < header_.size(); ++j) {
    widths[j] = header_[j].size();
  }
  for (const auto& row : rows_) {
    for (size_t j = 0; j < row.size(); ++j) {
      widths[j] = std::max(widths[j], row[j].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t j = 0; j < row.size(); ++j) {
      os << std::left << std::setw(static_cast<int>(widths[j]) + 2) << row[j];
    }
    os << "\n";
  };
  print_row(header_);
  size_t total = 0;
  for (size_t w : widths) {
    total += w + 2;
  }
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) {
    print_row(row);
  }
}

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header) {
  FILE* f = std::fopen(path.c_str(), "w");
  file_ = f;
  ok_ = (f != nullptr);
  if (ok_) {
    WriteRow(header);
  }
}

CsvWriter::~CsvWriter() {
  if (file_ != nullptr) {
    std::fclose(static_cast<FILE*>(file_));
  }
}

void CsvWriter::WriteEscaped(const std::string& cell) {
  FILE* f = static_cast<FILE*>(file_);
  bool needs_quote = cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quote) {
    std::fputs(cell.c_str(), f);
    return;
  }
  std::fputc('"', f);
  for (char c : cell) {
    if (c == '"') {
      std::fputc('"', f);
    }
    std::fputc(c, f);
  }
  std::fputc('"', f);
}

void CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  if (!ok_) {
    return;
  }
  FILE* f = static_cast<FILE*>(file_);
  for (size_t j = 0; j < cells.size(); ++j) {
    if (j > 0) {
      std::fputc(',', f);
    }
    WriteEscaped(cells[j]);
  }
  std::fputc('\n', f);
}

void CsvWriter::WriteRow(const std::vector<double>& cells) {
  std::vector<std::string> text;
  text.reserve(cells.size());
  for (double v : cells) {
    std::ostringstream oss;
    oss << v;
    text.push_back(oss.str());
  }
  WriteRow(text);
}

}  // namespace wayfinder
