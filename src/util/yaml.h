// Minimal YAML-subset parser for Wayfinder job files.
//
// The paper's platform takes YAML "job files" describing the configuration
// space and the benchmark scripts (§3.1, §3.4). We implement the subset those
// files need rather than pulling in a YAML dependency:
//   * block mappings and sequences driven by indentation,
//   * "- " sequence entries, including inline "- key: value" mappings,
//   * scalars with optional single/double quotes,
//   * flow sequences "[a, b, c]",
//   * "#" comments and blank lines.
// Anchors, aliases, multi-document streams, and block scalars are out of
// scope and rejected with a parse error.
#ifndef WAYFINDER_SRC_UTIL_YAML_H_
#define WAYFINDER_SRC_UTIL_YAML_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace wayfinder {

// A parsed YAML value: scalar, sequence, or mapping (order-preserving).
class YamlNode {
 public:
  enum class Kind { kScalar, kSequence, kMapping };

  YamlNode() : kind_(Kind::kScalar) {}
  static YamlNode Scalar(std::string value);
  static YamlNode Sequence();
  static YamlNode Mapping();

  Kind kind() const { return kind_; }
  bool IsScalar() const { return kind_ == Kind::kScalar; }
  bool IsSequence() const { return kind_ == Kind::kSequence; }
  bool IsMapping() const { return kind_ == Kind::kMapping; }

  // Scalar accessors. AsInt/AsDouble/AsBool return nullopt when the scalar
  // does not parse as the requested type (or when not a scalar).
  const std::string& AsString() const { return scalar_; }
  std::optional<int64_t> AsInt() const;
  std::optional<double> AsDouble() const;
  std::optional<bool> AsBool() const;

  // Sequence access.
  size_t Size() const;
  const YamlNode& At(size_t index) const;
  void Append(YamlNode child);

  // Mapping access. Get returns nullptr when the key is absent.
  bool Has(const std::string& key) const;
  const YamlNode* Get(const std::string& key) const;
  void Set(const std::string& key, YamlNode value);
  const std::vector<std::pair<std::string, YamlNode>>& Entries() const { return entries_; }

  // Typed convenience getters with defaults, for mappings.
  std::string GetString(const std::string& key, const std::string& fallback = "") const;
  int64_t GetInt(const std::string& key, int64_t fallback = 0) const;
  double GetDouble(const std::string& key, double fallback = 0.0) const;
  bool GetBool(const std::string& key, bool fallback = false) const;

 private:
  Kind kind_;
  std::string scalar_;
  std::vector<YamlNode> items_;
  std::vector<std::pair<std::string, YamlNode>> entries_;
};

// Result of parsing: either a root node or an error with a line number.
struct YamlParseResult {
  bool ok = false;
  YamlNode root;
  std::string error;
  int error_line = 0;
};

// Parses a YAML document from a string.
YamlParseResult ParseYaml(const std::string& text);

// Parses a YAML document from a file; returns an error result when the file
// cannot be read.
YamlParseResult ParseYamlFile(const std::string& path);

}  // namespace wayfinder

#endif  // WAYFINDER_SRC_UTIL_YAML_H_
