#include "src/util/log.h"

#include <atomic>
#include <cstdio>

namespace wayfinder {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  return base;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) >= g_level.load();
}

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
}

}  // namespace wayfinder
