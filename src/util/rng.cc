#include "src/util/rng.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace wayfinder {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t StableHash(std::string_view text) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (char c : text) {
    hash ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

uint64_t HashCombine(uint64_t a, uint64_t b) {
  uint64_t state = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  return SplitMix64(state);
}

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) {
    word = SplitMix64(sm);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random bits into the mantissa.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {
    // Full 64-bit range.
    return static_cast<int64_t>(Next());
  }
  // Rejection sampling to avoid modulo bias.
  uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t draw;
  do {
    draw = Next();
  } while (draw >= limit);
  return lo + static_cast<int64_t>(draw % span);
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  double u2 = Uniform();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::Normal(double mean, double stddev) { return mean + stddev * Normal(); }

bool Rng::Bernoulli(double p) { return Uniform() < p; }

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    total += (w > 0.0 ? w : 0.0);
  }
  assert(total > 0.0);
  double draw = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += (weights[i] > 0.0 ? weights[i] : 0.0);
    if (draw < acc) {
      return i;
    }
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(HashCombine(Next(), Next())); }

std::string Rng::SerializeState() const {
  // Five hex words + a cached flag: the four xoshiro words, then the cached
  // Box-Muller normal as its IEEE-754 bit pattern (exact round trip).
  char buffer[128];
  uint64_t cached_bits;
  static_assert(sizeof(cached_bits) == sizeof(cached_normal_), "double is 64-bit");
  std::memcpy(&cached_bits, &cached_normal_, sizeof(cached_bits));
  std::snprintf(buffer, sizeof(buffer), "%016llx %016llx %016llx %016llx %d %016llx",
                static_cast<unsigned long long>(state_[0]),
                static_cast<unsigned long long>(state_[1]),
                static_cast<unsigned long long>(state_[2]),
                static_cast<unsigned long long>(state_[3]),
                has_cached_normal_ ? 1 : 0,
                static_cast<unsigned long long>(cached_bits));
  return buffer;
}

bool Rng::DeserializeState(const std::string& text) {
  unsigned long long words[4];
  int has_cached = 0;
  unsigned long long cached_bits = 0;
  if (std::sscanf(text.c_str(), "%llx %llx %llx %llx %d %llx", &words[0], &words[1],
                  &words[2], &words[3], &has_cached, &cached_bits) != 6 ||
      (has_cached != 0 && has_cached != 1)) {
    return false;
  }
  for (size_t i = 0; i < 4; ++i) {
    state_[i] = static_cast<uint64_t>(words[i]);
  }
  has_cached_normal_ = has_cached == 1;
  uint64_t bits = static_cast<uint64_t>(cached_bits);
  std::memcpy(&cached_normal_, &bits, sizeof(cached_normal_));
  return true;
}

}  // namespace wayfinder
