// Small statistics helpers shared by the optimizer, the simulated substrate,
// and the benchmark harnesses: streaming moments, quantiles, normalizers,
// and series smoothing (the paper smooths all evolution figures).
#ifndef WAYFINDER_SRC_UTIL_STATS_H_
#define WAYFINDER_SRC_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace wayfinder {

// Welford streaming mean/variance.
class RunningStats {
 public:
  void Add(double value);
  size_t Count() const { return count_; }
  double Mean() const;
  double Variance() const;  // Sample variance (n-1 denominator).
  double StdDev() const;
  double Min() const;
  double Max() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Mean of a vector; 0 for empty input.
double Mean(const std::vector<double>& values);

// Sample standard deviation; 0 for fewer than two values.
double StdDev(const std::vector<double>& values);

// Linear-interpolation quantile, q in [0, 1]. Input need not be sorted.
double Quantile(std::vector<double> values, double q);

// Pearson correlation; 0 when either side is constant.
double PearsonCorrelation(const std::vector<double>& xs, const std::vector<double>& ys);

// Maps values affinely into [0, 1]; constant inputs map to 0.5. This is the
// paper's mXNorm used by the throughput-memory score (Eq. 4).
std::vector<double> MinMaxNormalize(const std::vector<double>& values);

// Per-feature z-score normalizer fitted on a dataset, applied to new points.
class ZScoreNormalizer {
 public:
  // Fits per-column mean/std over rows (all rows must share one width).
  void Fit(const std::vector<std::vector<double>>& rows);
  // Applies (x - mean) / std per column; columns with ~zero spread pass
  // through centered only.
  std::vector<double> Transform(const std::vector<double>& row) const;
  bool IsFitted() const { return !means_.empty(); }
  size_t Width() const { return means_.size(); }
  const std::vector<double>& means() const { return means_; }
  const std::vector<double>& stds() const { return stds_; }

 private:
  std::vector<double> means_;
  std::vector<double> stds_;
};

// Trailing moving average with the given window; used to smooth the
// evolution series plotted in Figures 6, 9, 10, and 11.
std::vector<double> SmoothSeries(const std::vector<double>& values, size_t window);

// Two-sided confidence interval of the mean via the normal approximation
// (z = 1.96 for the default 95%). With n < 2 the half-width is 0 — callers
// must not read precision into a single sample. Used by the seed-stability
// harness to substantiate the artifact appendix's "trends and averages of
// multiple executions should be consistent" claim.
struct MeanCi {
  double mean = 0.0;
  double half_width = 0.0;
  double lo() const { return mean - half_width; }
  double hi() const { return mean + half_width; }
};
MeanCi MeanConfidenceInterval(const std::vector<double>& values, double z = 1.96);

// Exponential moving average with factor alpha in (0, 1].
std::vector<double> EmaSeries(const std::vector<double>& values, double alpha);

// Running best: out[i] = max (or min) of values[0..i].
std::vector<double> RunningBest(const std::vector<double>& values, bool maximize);

// Index of the best element (max if maximize, else min); SIZE_MAX for empty.
size_t ArgBest(const std::vector<double>& values, bool maximize);

}  // namespace wayfinder

#endif  // WAYFINDER_SRC_UTIL_STATS_H_
