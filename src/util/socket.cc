#include "src/util/socket.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

namespace wayfinder {

namespace {

// How a full-length read ended.
enum class IoEnd { kDone, kEof, kError };

// Reads exactly `n` bytes; *done reports how many arrived. kError covers
// errno-level failures, including a receive timeout (EAGAIN) set via
// SetRecvTimeout — both mean "this peer is no longer worth waiting for".
IoEnd ReadFull(int fd, char* out, size_t n, size_t* done) {
  *done = 0;
  while (*done < n) {
    ssize_t got = ::recv(fd, out + *done, n - *done, 0);
    if (got < 0) {
      if (errno == EINTR) {
        continue;
      }
      return IoEnd::kError;
    }
    if (got == 0) {
      return IoEnd::kEof;
    }
    *done += static_cast<size_t>(got);
  }
  return IoEnd::kDone;
}

bool WriteFull(int fd, const char* data, size_t n) {
  size_t done = 0;
  while (done < n) {
    ssize_t put = ::send(fd, data + done, n - done, MSG_NOSIGNAL);
    if (put < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    done += static_cast<size_t>(put);
  }
  return true;
}

}  // namespace

const char* FrameStatusName(FrameStatus status) {
  switch (status) {
    case FrameStatus::kOk:
      return "ok";
    case FrameStatus::kClosed:
      return "closed";
    case FrameStatus::kTruncated:
      return "truncated";
    case FrameStatus::kOversized:
      return "oversized";
    case FrameStatus::kError:
      return "error";
  }
  return "?";
}

FrameStatus ReadFrame(int fd, std::string* payload) {
  payload->clear();
  unsigned char header[4];
  size_t got = 0;
  IoEnd end = ReadFull(fd, reinterpret_cast<char*>(header), sizeof(header), &got);
  if (end != IoEnd::kDone) {
    if (end == IoEnd::kError) {
      return FrameStatus::kError;
    }
    // EOF: clean between frames, truncation inside a header.
    return got == 0 ? FrameStatus::kClosed : FrameStatus::kTruncated;
  }
  uint32_t length = (static_cast<uint32_t>(header[0]) << 24) |
                    (static_cast<uint32_t>(header[1]) << 16) |
                    (static_cast<uint32_t>(header[2]) << 8) |
                    static_cast<uint32_t>(header[3]);
  if (length > kMaxFrameBytes) {
    return FrameStatus::kOversized;
  }
  payload->resize(length);
  if (length > 0) {
    end = ReadFull(fd, payload->data(), length, &got);
    if (end != IoEnd::kDone) {
      payload->clear();
      // A peer that died mid-payload is truncation; a socket failure
      // (including a receive timeout) is an error.
      return end == IoEnd::kEof ? FrameStatus::kTruncated : FrameStatus::kError;
    }
  }
  return FrameStatus::kOk;
}

bool SetRecvTimeout(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  return ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) == 0;
}

bool SetSendTimeout(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  return ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) == 0;
}

bool SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

bool WriteFrame(int fd, const std::string& payload) {
  if (payload.size() > kMaxFrameBytes) {
    return false;
  }
  uint32_t length = static_cast<uint32_t>(payload.size());
  unsigned char header[4] = {static_cast<unsigned char>(length >> 24),
                             static_cast<unsigned char>(length >> 16),
                             static_cast<unsigned char>(length >> 8),
                             static_cast<unsigned char>(length)};
  return WriteFull(fd, reinterpret_cast<const char*>(header), sizeof(header)) &&
         WriteFull(fd, payload.data(), payload.size());
}

UnixConn& UnixConn::operator=(UnixConn&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void UnixConn::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

UnixConn ConnectUnix(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    return UnixConn();
  }
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return UnixConn();
  }
  addr.sun_family = AF_UNIX;
  ::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  // EINTR here is NOT retryable the way read/write is: a connect interrupted
  // by a signal completes asynchronously, and re-calling connect() on the
  // same in-progress socket yields EALREADY/EISCONN. Start over on a fresh
  // fd instead — cheap for a local Unix socket, and always correct.
  int rc;
  while ((rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr))) != 0 &&
         errno == EINTR) {
    ::close(fd);
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      return UnixConn();
    }
  }
  if (rc != 0) {
    ::close(fd);
    return UnixConn();
  }
  return UnixConn(fd);
}

UnixListener::~UnixListener() {
  if (fd_ >= 0) {
    ::close(fd_);
    // Unlink only while the path still holds OUR socket file: a daemon that
    // replaced a stale file of ours must not lose its endpoint when we die.
    struct stat st{};
    if (::stat(path_.c_str(), &st) == 0 && static_cast<uint64_t>(st.st_ino) == bound_ino_) {
      ::unlink(path_.c_str());
    }
  }
}

bool UnixListener::Listen(const std::string& path, int backlog) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    error_ = "socket path too long: " + path;
    return false;
  }
  // A stale file from a killed daemon blocks bind — but a LIVE daemon's
  // socket must not be stolen. Probe before unlinking: anything accepting
  // on the path wins.
  if (::access(path.c_str(), F_OK) == 0) {
    UnixConn probe = ConnectUnix(path);
    if (probe.ok()) {
      error_ = path + ": a daemon is already serving this socket";
      return false;
    }
    ::unlink(path.c_str());
  }
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    error_ = std::string("socket: ") + ::strerror(errno);
    return false;
  }
  addr.sun_family = AF_UNIX;
  ::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd_, backlog) != 0) {
    error_ = path + ": " + ::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  path_ = path;
  struct stat st{};
  if (::stat(path.c_str(), &st) == 0) {
    bound_ino_ = static_cast<uint64_t>(st.st_ino);
  }
  return true;
}

UnixConn UnixListener::AcceptFor(int timeout_ms) {
  pollfd pfd{fd_, POLLIN, 0};
  // An EINTR'd poll reports "no connection" without having waited its
  // timeout; retry so a signal-heavy host (the recovery soak sends SIGKILL
  // storms at siblings) cannot starve the accept loop.
  int ready;
  while ((ready = ::poll(&pfd, 1, timeout_ms)) < 0 && errno == EINTR) {
  }
  if (ready <= 0) {
    return UnixConn();
  }
  int fd;
  while ((fd = ::accept(fd_, nullptr, nullptr)) < 0 && errno == EINTR) {
  }
  return fd >= 0 ? UnixConn(fd) : UnixConn();
}

}  // namespace wayfinder
