#include "src/util/thread_pool.h"

#include <algorithm>
#include <exception>

namespace wayfinder {

namespace {
// Set for the lifetime of a pool worker thread. A ParallelFor issued from a
// worker (e.g. a kernel that parallelizes inside an already-parallel row
// chunk) must not block on the queue it is itself draining: with every
// worker busy the nested round's chunks would never be picked up and the
// worker would wait forever. Nested calls run inline instead — correct for
// any body (chunking is only a performance split) and deadlock-free.
thread_local bool tls_pool_worker = false;
}  // namespace

ThreadPool::ThreadPool(size_t threads) {
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::WorkerLoop() {
  tls_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        return;  // stop_ set and queue drained.
      }
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n, size_t grain, size_t max_ways,
                             const std::function<void(size_t, size_t)>& body) {
  if (n == 0) {
    return;
  }
  // Reentrant call from one of this process's pool workers: run inline.
  // Queueing and blocking here could deadlock once every worker is inside a
  // nested round (nobody left to drain the queue).
  if (tls_pool_worker) {
    body(0, n);
    return;
  }
  grain = std::max<size_t>(grain, 1);
  size_t ways = std::min({max_ways, thread_count() + 1, (n + grain - 1) / grain});
  if (ways <= 1) {
    body(0, n);
    return;
  }

  // One chunk per way; the caller runs chunk 0 so progress never depends on
  // a worker being free. All completion state lives under one mutex so the
  // last worker can never touch `shared` after the caller has woken up and
  // destroyed it.
  struct Shared {
    size_t remaining;
    std::mutex done_mutex;
    std::condition_variable done;
    std::exception_ptr error;
  } shared;
  shared.remaining = ways - 1;

  size_t chunk = (n + ways - 1) / ways;
  auto run_chunk = [&body, &shared](size_t begin, size_t end) {
    try {
      body(begin, end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(shared.done_mutex);
      if (!shared.error) {
        shared.error = std::current_exception();
      }
    }
  };

  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (size_t w = 1; w < ways; ++w) {
      size_t begin = w * chunk;
      size_t end = std::min(n, begin + chunk);
      tasks_.emplace_back([run_chunk, begin, end, &shared] {
        run_chunk(begin, end);
        std::lock_guard<std::mutex> done_lock(shared.done_mutex);
        if (--shared.remaining == 0) {
          shared.done.notify_one();
        }
      });
    }
  }
  wake_.notify_all();

  run_chunk(0, std::min(n, chunk));

  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(shared.done_mutex);
    shared.done.wait(lock, [&shared] { return shared.remaining == 0; });
    error = shared.error;
  }
  if (error) {
    std::rethrow_exception(error);
  }
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool(std::max<size_t>(1, std::thread::hardware_concurrency() > 0
                                                 ? std::thread::hardware_concurrency() - 1
                                                 : 1));
  return pool;
}

void ParallelFor(ThreadPool* pool, size_t n, size_t grain, size_t max_ways,
                 const std::function<void(size_t, size_t)>& body) {
  if (pool == nullptr || max_ways <= 1 || n <= grain) {
    if (n > 0) {
      body(0, n);
    }
    return;
  }
  pool->ParallelFor(n, grain, max_ways, body);
}

}  // namespace wayfinder
