// Minimal non-owning contiguous view, the C++17 stand-in for std::span.
//
// The batch search API (Searcher::ObserveBatch) hands searchers a window of
// freshly committed trials without copying and without pinning the call
// signature to a concrete container. Only the read-only surface the batch
// contract needs is provided.
#ifndef WAYFINDER_SRC_UTIL_SPAN_H_
#define WAYFINDER_SRC_UTIL_SPAN_H_

#include <cstddef>
#include <vector>

namespace wayfinder {

template <typename T>
class Span {
 public:
  Span() = default;
  Span(const T* data, size_t size) : data_(data), size_(size) {}
  // Implicit from a vector (the common call site: a history tail).
  Span(const std::vector<T>& items) : data_(items.data()), size_(items.size()) {}

  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const T& operator[](size_t i) const { return data_[i]; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  const T& front() const { return data_[0]; }
  const T& back() const { return data_[size_ - 1]; }

  // Trailing window of up to `n` elements.
  Span last(size_t n) const {
    return n >= size_ ? *this : Span(data_ + (size_ - n), n);
  }

 private:
  const T* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace wayfinder

#endif  // WAYFINDER_SRC_UTIL_SPAN_H_
