// Text-table and CSV emission for benchmark harnesses.
//
// Every bench binary prints the rows/series of the paper table or figure it
// regenerates; TablePrinter keeps that output aligned and CsvWriter persists
// the same data for plotting.
#ifndef WAYFINDER_SRC_UTIL_TABLE_H_
#define WAYFINDER_SRC_UTIL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace wayfinder {

// Accumulates rows of strings and prints them with padded columns.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  // Adds a row; it may have fewer cells than the header (padded empty).
  void AddRow(std::vector<std::string> cells);

  // Formats a double with the given precision (fixed notation).
  static std::string Num(double value, int precision = 2);

  // Writes the aligned table, header first, followed by a separator line.
  void Print(std::ostream& os) const;

  size_t RowCount() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Streams rows into a CSV file; commas/quotes/newlines are quoted per
// RFC 4180.
class CsvWriter {
 public:
  // Opens (truncates) the file and writes the header row. Check ok() after
  // construction.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  bool ok() const { return ok_; }

  void WriteRow(const std::vector<std::string>& cells);

  // Convenience overload for numeric rows.
  void WriteRow(const std::vector<double>& cells);

 private:
  void WriteEscaped(const std::string& cell);

  void* file_ = nullptr;  // FILE*, kept opaque to avoid <cstdio> in the header.
  bool ok_ = false;
};

}  // namespace wayfinder

#endif  // WAYFINDER_SRC_UTIL_TABLE_H_
