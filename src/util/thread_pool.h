// A small fixed-size thread pool with a blocking ParallelFor helper.
//
// Wayfinder's hot paths (batched DTM inference, large matmul row ranges)
// are data-parallel over independent row blocks, so a plain chunked
// parallel-for over a shared worker pool is all we need — no work stealing,
// no futures. The pool is opt-in everywhere (a null pool or a single-way
// split runs inline on the caller), and row partitioning never changes the
// per-row arithmetic, so results are bit-identical with and without threads.
#ifndef WAYFINDER_SRC_UTIL_THREAD_POOL_H_
#define WAYFINDER_SRC_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wayfinder {

class ThreadPool {
 public:
  // Spawns `threads` workers (0 is allowed: every ParallelFor runs inline).
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t thread_count() const { return workers_.size(); }

  // Runs body(begin, end) over [0, n) split into at most `max_ways` chunks
  // of at least `grain` items. The caller executes one chunk itself, so a
  // pool is never required to make progress. Blocks until every chunk is
  // done; the first exception thrown by any chunk is rethrown here.
  // Reentrancy-safe: called from a pool worker (a nested parallel region),
  // the whole range runs inline on that worker instead of deadlocking on
  // the queue it is draining.
  void ParallelFor(size_t n, size_t grain, size_t max_ways,
                   const std::function<void(size_t, size_t)>& body);

  // Process-wide pool, created on first use with hardware_concurrency - 1
  // workers (at least 1). Callers bound their own parallelism via the
  // `max_ways` argument of ParallelFor, so one shared pool serves every
  // model and searcher in the process.
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stop_ = false;
};

// Convenience wrapper: chunked parallel-for on `pool`, or a plain serial
// loop when `pool` is null or the range is below one grain.
void ParallelFor(ThreadPool* pool, size_t n, size_t grain, size_t max_ways,
                 const std::function<void(size_t, size_t)>& body);

}  // namespace wayfinder

#endif  // WAYFINDER_SRC_UTIL_THREAD_POOL_H_
