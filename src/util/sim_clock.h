// Simulated time source for the benchmarking substrate.
//
// The paper's evaluation plots search progress against wall-clock seconds of
// kernel builds, VM boots, and benchmark runs. Our substitute substrate does
// no real builds, so every pipeline phase advances a SimClock by the duration
// that phase would have cost. All "Time (s)" axes in the reproduced figures
// are SimClock seconds.
#ifndef WAYFINDER_SRC_UTIL_SIM_CLOCK_H_
#define WAYFINDER_SRC_UTIL_SIM_CLOCK_H_

#include <cstdint>

namespace wayfinder {

class SimClock {
 public:
  SimClock() = default;

  // Current simulated time in seconds since the experiment started.
  double Now() const { return now_seconds_; }

  // Advances the clock; negative durations are ignored.
  void Advance(double seconds) {
    if (seconds > 0.0) {
      now_seconds_ += seconds;
    }
  }

  void Reset() { now_seconds_ = 0.0; }

 private:
  double now_seconds_ = 0.0;
};

// Wall-clock stopwatch (real time), used to measure the optimizer's own
// update cost for the Figure 8 loop breakdown.
class WallTimer {
 public:
  WallTimer();
  // Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const;
  // Same read, in integer nanoseconds — trace spans reuse this stamp so a
  // traced trial pays no clock reads beyond the ones the searcher-seconds
  // bookkeeping already takes.
  int64_t ElapsedNs() const;
  // TraceClock stamp taken at construction or the last Restart().
  int64_t start_ns() const { return start_ns_; }
  void Restart();

 private:
  int64_t start_ns_ = 0;
};

}  // namespace wayfinder

#endif  // WAYFINDER_SRC_UTIL_SIM_CLOCK_H_
