// Unix-domain stream sockets and length-prefixed message frames — the
// transport under the wfd tuning service (src/service/).
//
// A frame is a 4-byte big-endian payload length followed by that many bytes
// of payload (the service layer puts small YAML documents in there). The
// reader enforces a hard payload cap so a hostile or corrupt peer cannot
// make the daemon allocate unbounded memory, and distinguishes a clean EOF
// between frames (kClosed) from a connection dying mid-frame (kTruncated).
//
// All helpers are blocking and signal-safe (EINTR restarts); writes use
// MSG_NOSIGNAL so a vanished peer surfaces as an error instead of SIGPIPE.
#ifndef WAYFINDER_SRC_UTIL_SOCKET_H_
#define WAYFINDER_SRC_UTIL_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace wayfinder {

// Largest payload a frame may carry (checkpoint texts of long sessions fit
// comfortably; anything bigger is a protocol violation).
constexpr size_t kMaxFrameBytes = 4 * 1024 * 1024;

enum class FrameStatus {
  kOk,
  kClosed,     // Clean EOF before any byte of a frame.
  kTruncated,  // Peer vanished mid-header or mid-payload.
  kOversized,  // Header announced more than kMaxFrameBytes.
  kError,      // errno-level socket failure.
};

const char* FrameStatusName(FrameStatus status);

// Reads one frame into `payload`. Blocking; returns kOk on success.
FrameStatus ReadFrame(int fd, std::string* payload);

// Cap how long a blocking read/write on `fd` may wait (SO_RCVTIMEO /
// SO_SNDTIMEO); an expired wait surfaces as kError from ReadFrame or a
// false return from WriteFrame. The daemon arms both on accepted
// connections so a client that neither sends nor drains its responses
// cannot wedge the single-threaded accept loop.
bool SetRecvTimeout(int fd, int timeout_ms);
bool SetSendTimeout(int fd, int timeout_ms);

// O_NONBLOCK, for fds owned by an event loop (src/transport/).
bool SetNonBlocking(int fd);

// Writes one frame. Returns false when the peer is gone or the payload
// exceeds kMaxFrameBytes.
bool WriteFrame(int fd, const std::string& payload);

// Owning fd wrapper (close on destruction, move-only).
class UnixConn {
 public:
  UnixConn() = default;
  explicit UnixConn(int fd) : fd_(fd) {}
  ~UnixConn() { Close(); }
  UnixConn(UnixConn&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  UnixConn& operator=(UnixConn&& other) noexcept;
  UnixConn(const UnixConn&) = delete;
  UnixConn& operator=(const UnixConn&) = delete;

  bool ok() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void Close();

 private:
  int fd_ = -1;
};

// Connects to a listening Unix-domain socket; !ok() on failure.
UnixConn ConnectUnix(const std::string& path);

// Listening Unix-domain socket bound to a filesystem path. A stale socket
// file (a daemon killed hard leaves one behind) is unlinked before binding
// — but only after probing that nothing answers on it, so a second daemon
// cannot steal a live one's endpoint. The destructor unlinks the path only
// while it still holds our bound inode, so stopping one daemon never
// deletes another's socket file.
class UnixListener {
 public:
  UnixListener() = default;
  ~UnixListener();
  UnixListener(UnixListener&&) = delete;
  UnixListener& operator=(UnixListener&&) = delete;

  // Binds and listens; false (with error()) on failure, including when a
  // live daemon already serves `path`.
  bool Listen(const std::string& path, int backlog = 16);

  // Accepts one connection, waiting at most `timeout_ms` (so an accept loop
  // can poll a stop flag). Returns a !ok() conn on timeout or error.
  UnixConn AcceptFor(int timeout_ms);

  bool ok() const { return fd_ >= 0; }
  int fd() const { return fd_; }  // For event loops that poll the listener.
  const std::string& error() const { return error_; }
  const std::string& path() const { return path_; }

 private:
  int fd_ = -1;
  uint64_t bound_ino_ = 0;  // Inode of the socket file we created.
  std::string path_;
  std::string error_;
};

}  // namespace wayfinder

#endif  // WAYFINDER_SRC_UTIL_SOCKET_H_
