#include "src/util/yaml.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace wayfinder {

YamlNode YamlNode::Scalar(std::string value) {
  YamlNode node;
  node.kind_ = Kind::kScalar;
  node.scalar_ = std::move(value);
  return node;
}

YamlNode YamlNode::Sequence() {
  YamlNode node;
  node.kind_ = Kind::kSequence;
  return node;
}

YamlNode YamlNode::Mapping() {
  YamlNode node;
  node.kind_ = Kind::kMapping;
  return node;
}

std::optional<int64_t> YamlNode::AsInt() const {
  if (!IsScalar() || scalar_.empty()) {
    return std::nullopt;
  }
  const char* begin = scalar_.c_str();
  char* end = nullptr;
  long long value = std::strtoll(begin, &end, 0);
  if (end == begin || *end != '\0') {
    return std::nullopt;
  }
  return static_cast<int64_t>(value);
}

std::optional<double> YamlNode::AsDouble() const {
  if (!IsScalar() || scalar_.empty()) {
    return std::nullopt;
  }
  const char* begin = scalar_.c_str();
  char* end = nullptr;
  double value = std::strtod(begin, &end);
  if (end == begin || *end != '\0') {
    return std::nullopt;
  }
  return value;
}

std::optional<bool> YamlNode::AsBool() const {
  if (!IsScalar()) {
    return std::nullopt;
  }
  if (scalar_ == "true" || scalar_ == "True" || scalar_ == "yes" || scalar_ == "on") {
    return true;
  }
  if (scalar_ == "false" || scalar_ == "False" || scalar_ == "no" || scalar_ == "off") {
    return false;
  }
  return std::nullopt;
}

size_t YamlNode::Size() const {
  if (IsSequence()) {
    return items_.size();
  }
  if (IsMapping()) {
    return entries_.size();
  }
  return 0;
}

const YamlNode& YamlNode::At(size_t index) const { return items_.at(index); }

void YamlNode::Append(YamlNode child) { items_.push_back(std::move(child)); }

bool YamlNode::Has(const std::string& key) const { return Get(key) != nullptr; }

const YamlNode* YamlNode::Get(const std::string& key) const {
  for (const auto& [k, v] : entries_) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

void YamlNode::Set(const std::string& key, YamlNode value) {
  for (auto& [k, v] : entries_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  entries_.emplace_back(key, std::move(value));
}

std::string YamlNode::GetString(const std::string& key, const std::string& fallback) const {
  const YamlNode* node = Get(key);
  return (node != nullptr && node->IsScalar()) ? node->AsString() : fallback;
}

int64_t YamlNode::GetInt(const std::string& key, int64_t fallback) const {
  const YamlNode* node = Get(key);
  if (node == nullptr) {
    return fallback;
  }
  return node->AsInt().value_or(fallback);
}

double YamlNode::GetDouble(const std::string& key, double fallback) const {
  const YamlNode* node = Get(key);
  if (node == nullptr) {
    return fallback;
  }
  return node->AsDouble().value_or(fallback);
}

bool YamlNode::GetBool(const std::string& key, bool fallback) const {
  const YamlNode* node = Get(key);
  if (node == nullptr) {
    return fallback;
  }
  return node->AsBool().value_or(fallback);
}

namespace {

struct Line {
  int indent = 0;
  std::string content;  // Trimmed, comment-stripped.
  int number = 0;       // 1-based source line.
};

std::string StripComment(const std::string& text) {
  bool in_single = false;
  bool in_double = false;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '\'' && !in_double) {
      in_single = !in_single;
    } else if (c == '"' && !in_single) {
      in_double = !in_double;
    } else if (c == '#' && !in_single && !in_double) {
      // YAML requires '#' to start a comment at start or after whitespace.
      if (i == 0 || std::isspace(static_cast<unsigned char>(text[i - 1])) != 0) {
        return text.substr(0, i);
      }
    }
  }
  return text;
}

std::string Trim(const std::string& text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])) != 0) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string Unquote(const std::string& text) {
  if (text.size() >= 2) {
    char first = text.front();
    char last = text.back();
    if ((first == '"' && last == '"') || (first == '\'' && last == '\'')) {
      return text.substr(1, text.size() - 2);
    }
  }
  return text;
}

class Parser {
 public:
  explicit Parser(const std::string& text) { Tokenize(text); }

  YamlParseResult Parse() {
    YamlParseResult result;
    if (!error_.empty()) {
      result.error = error_;
      result.error_line = error_line_;
      return result;
    }
    if (lines_.empty()) {
      result.ok = true;
      result.root = YamlNode::Mapping();
      return result;
    }
    YamlNode root = ParseBlock(lines_.front().indent);
    if (!error_.empty()) {
      result.error = error_;
      result.error_line = error_line_;
      return result;
    }
    if (pos_ != lines_.size()) {
      result.error = "trailing content at unexpected indentation";
      result.error_line = lines_[pos_].number;
      return result;
    }
    result.ok = true;
    result.root = std::move(root);
    return result;
  }

 private:
  void Fail(const std::string& message, int line) {
    if (error_.empty()) {
      error_ = message;
      error_line_ = line;
    }
  }

  void Tokenize(const std::string& text) {
    std::istringstream in(text);
    std::string raw;
    int number = 0;
    while (std::getline(in, raw)) {
      ++number;
      if (!raw.empty() && raw.back() == '\r') {
        raw.pop_back();
      }
      std::string stripped = StripComment(raw);
      std::string content = Trim(stripped);
      if (content.empty()) {
        continue;
      }
      if (content == "---") {
        continue;  // Tolerate a single document-start marker.
      }
      if (content[0] == '&' || content[0] == '*' || content == "|" || content == ">") {
        Fail("unsupported YAML feature (anchor/alias/block scalar)", number);
        continue;
      }
      int indent = 0;
      while (indent < static_cast<int>(stripped.size()) && stripped[indent] == ' ') {
        ++indent;
      }
      if (indent < static_cast<int>(stripped.size()) && stripped[indent] == '\t') {
        Fail("tabs are not allowed for indentation", number);
        continue;
      }
      lines_.push_back(Line{indent, content, number});
    }
  }

  // Splits "key: rest" at the first unquoted colon+space (or trailing colon).
  // Returns false when the line is not a mapping entry.
  static bool SplitKey(const std::string& content, std::string* key, std::string* rest) {
    bool in_single = false;
    bool in_double = false;
    int bracket_depth = 0;
    for (size_t i = 0; i < content.size(); ++i) {
      char c = content[i];
      if (c == '\'' && !in_double) {
        in_single = !in_single;
      } else if (c == '"' && !in_single) {
        in_double = !in_double;
      } else if ((c == '[' || c == '{') && !in_single && !in_double) {
        ++bracket_depth;
      } else if ((c == ']' || c == '}') && !in_single && !in_double) {
        --bracket_depth;
      } else if (c == ':' && !in_single && !in_double && bracket_depth == 0) {
        if (i + 1 == content.size() || content[i + 1] == ' ') {
          *key = Unquote(Trim(content.substr(0, i)));
          *rest = (i + 1 < content.size()) ? Trim(content.substr(i + 1)) : "";
          return true;
        }
      }
    }
    return false;
  }

  YamlNode ParseFlowSequence(const std::string& text, int line) {
    YamlNode seq = YamlNode::Sequence();
    std::string inner = Trim(text.substr(1, text.size() - 2));
    if (inner.empty()) {
      return seq;
    }
    bool in_single = false;
    bool in_double = false;
    int depth = 0;
    size_t start = 0;
    for (size_t i = 0; i <= inner.size(); ++i) {
      bool at_end = (i == inner.size());
      char c = at_end ? ',' : inner[i];
      if (!at_end) {
        if (c == '\'' && !in_double) {
          in_single = !in_single;
        } else if (c == '"' && !in_single) {
          in_double = !in_double;
        } else if ((c == '[' || c == '{') && !in_single && !in_double) {
          ++depth;
        } else if ((c == ']' || c == '}') && !in_single && !in_double) {
          --depth;
        }
      }
      if (c == ',' && !in_single && !in_double && depth == 0) {
        std::string item = Trim(inner.substr(start, i - start));
        if (item.empty()) {
          Fail("empty element in flow sequence", line);
        } else {
          seq.Append(ParseScalarOrFlow(item, line));
        }
        start = i + 1;
      }
    }
    return seq;
  }

  YamlNode ParseScalarOrFlow(const std::string& text, int line) {
    if (text.size() >= 2 && text.front() == '[' && text.back() == ']') {
      return ParseFlowSequence(text, line);
    }
    return YamlNode::Scalar(Unquote(text));
  }

  // Parses a block (mapping or sequence) whose entries sit at `indent`.
  YamlNode ParseBlock(int indent) {
    if (pos_ >= lines_.size()) {
      return YamlNode::Mapping();
    }
    if (lines_[pos_].content[0] == '-' &&
        (lines_[pos_].content.size() == 1 || lines_[pos_].content[1] == ' ')) {
      return ParseSequence(indent);
    }
    return ParseMapping(indent);
  }

  YamlNode ParseSequence(int indent) {
    YamlNode seq = YamlNode::Sequence();
    while (pos_ < lines_.size() && error_.empty()) {
      const Line& line = lines_[pos_];
      if (line.indent != indent) {
        if (line.indent > indent) {
          Fail("unexpected indentation inside sequence", line.number);
        }
        break;
      }
      if (line.content[0] != '-') {
        break;
      }
      std::string rest = Trim(line.content.substr(1));
      ++pos_;
      if (rest.empty()) {
        // Nested block under the dash.
        if (pos_ < lines_.size() && lines_[pos_].indent > indent) {
          seq.Append(ParseBlock(lines_[pos_].indent));
        } else {
          seq.Append(YamlNode::Scalar(""));
        }
        continue;
      }
      std::string key;
      std::string value;
      if (SplitKey(rest, &key, &value)) {
        // "- key: value" starts an inline mapping; further keys of the same
        // mapping appear indented past the dash.
        YamlNode map = YamlNode::Mapping();
        int entry_indent = indent + 2;
        if (value.empty() && pos_ < lines_.size() && lines_[pos_].indent > indent + 2) {
          map.Set(key, ParseBlock(lines_[pos_].indent));
        } else {
          map.Set(key, ParseScalarOrFlow(value, line.number));
        }
        while (pos_ < lines_.size() && error_.empty() && lines_[pos_].indent == entry_indent &&
               lines_[pos_].content[0] != '-') {
          ParseMappingEntry(&map, entry_indent);
        }
        seq.Append(std::move(map));
      } else {
        seq.Append(ParseScalarOrFlow(rest, line.number));
      }
    }
    return seq;
  }

  // Consumes one "key: ..." line (plus any nested block) into `map`.
  void ParseMappingEntry(YamlNode* map, int indent) {
    const Line& line = lines_[pos_];
    std::string key;
    std::string value;
    if (!SplitKey(line.content, &key, &value)) {
      Fail("expected 'key: value'", line.number);
      ++pos_;
      return;
    }
    if (map->Has(key)) {
      Fail("duplicate mapping key '" + key + "'", line.number);
    }
    ++pos_;
    if (!value.empty()) {
      map->Set(key, ParseScalarOrFlow(value, line.number));
      return;
    }
    if (pos_ < lines_.size() && lines_[pos_].indent > indent) {
      map->Set(key, ParseBlock(lines_[pos_].indent));
    } else if (pos_ < lines_.size() && lines_[pos_].indent == indent &&
               lines_[pos_].content[0] == '-') {
      // Sequences are commonly written at the same indent as their key.
      map->Set(key, ParseSequence(indent));
    } else {
      map->Set(key, YamlNode::Scalar(""));
    }
  }

  YamlNode ParseMapping(int indent) {
    YamlNode map = YamlNode::Mapping();
    while (pos_ < lines_.size() && error_.empty()) {
      const Line& line = lines_[pos_];
      if (line.indent != indent) {
        if (line.indent > indent) {
          Fail("unexpected indentation inside mapping", line.number);
        }
        break;
      }
      if (line.content[0] == '-') {
        break;
      }
      ParseMappingEntry(&map, indent);
    }
    return map;
  }

  std::vector<Line> lines_;
  size_t pos_ = 0;
  std::string error_;
  int error_line_ = 0;
};

}  // namespace

YamlParseResult ParseYaml(const std::string& text) { return Parser(text).Parse(); }

YamlParseResult ParseYamlFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    YamlParseResult result;
    result.error = "cannot open file: " + path;
    return result;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseYaml(buffer.str());
}

}  // namespace wayfinder
