// Leveled logging with a process-wide threshold.
//
// Usage: WF_LOG(Info) << "built image in " << seconds << "s";
// Messages below the threshold are formatted lazily (the stream body is not
// evaluated). Defaults to Warning so tests and benches stay quiet.
#ifndef WAYFINDER_SRC_UTIL_LOG_H_
#define WAYFINDER_SRC_UTIL_LOG_H_

#include <sstream>
#include <string>

namespace wayfinder {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Sets/gets the global threshold; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// One log statement; flushes to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

bool LogEnabled(LogLevel level);

}  // namespace wayfinder

#define WF_LOG(severity)                                                      \
  if (!::wayfinder::LogEnabled(::wayfinder::LogLevel::k##severity)) {         \
  } else                                                                      \
    ::wayfinder::LogMessage(::wayfinder::LogLevel::k##severity, __FILE__,     \
                            __LINE__)                                         \
        .stream()

#endif  // WAYFINDER_SRC_UTIL_LOG_H_
