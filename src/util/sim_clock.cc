#include "src/util/sim_clock.h"

#include <chrono>

namespace wayfinder {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

WallTimer::WallTimer() : start_ns_(NowNs()) {}

double WallTimer::ElapsedSeconds() const {
  return static_cast<double>(NowNs() - start_ns_) * 1e-9;
}

void WallTimer::Restart() { start_ns_ = NowNs(); }

}  // namespace wayfinder
