#include "src/util/sim_clock.h"

#include "src/obs/clock.h"

namespace wayfinder {

// Wall time comes from the TraceClock seam so that every monotonic-clock
// read in the tree funnels through src/obs/ (the obs-clock-seam lint rule).

WallTimer::WallTimer() : start_ns_(obs::NowNs()) {}

double WallTimer::ElapsedSeconds() const {
  return static_cast<double>(obs::NowNs() - start_ns_) * 1e-9;
}

int64_t WallTimer::ElapsedNs() const { return obs::NowNs() - start_ns_; }

void WallTimer::Restart() { start_ns_ = obs::NowNs(); }

}  // namespace wayfinder
