// Minimal C++ lexer for wf-lint (src/analyze/).
//
// The repo's invariant checks need to see *code*, not comments or string
// literals — a regex grep flags `// calls rand() here` and misses nothing
// else. This lexer produces a flat token stream where comments, string
// literals (including raw strings), character literals, and preprocessor
// directives are each single tokens, so rules can match identifier/punct
// sequences with zero false positives from prose or quoted text. Comments
// are kept in the stream (rules read the wf-lint suppression markers and
// the hot-path / lock-order convention tags out of them).
//
// It is deliberately NOT a full C++ front end: no keyword table, no
// semantic grouping, no template disambiguation. Every rule in
// src/analyze/rules.cc is written against this token vocabulary.
#ifndef WAYFINDER_SRC_ANALYZE_LEXER_H_
#define WAYFINDER_SRC_ANALYZE_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

namespace wayfinder {
namespace analyze {

enum class TokenKind {
  kIdentifier,    // [A-Za-z_][A-Za-z0-9_]*
  kNumber,        // pp-number (digits, hex, floats, digit separators)
  kString,        // "..." including raw strings; text keeps the quotes
  kCharLiteral,   // '...'
  kPunct,         // one operator/punctuator per token ("::" is one token)
  kComment,       // // or /* */; text keeps the comment markers
  kPreprocessor,  // whole directive incl. line continuations, one token
};

struct Token {
  TokenKind kind;
  std::string text;
  int line;  // 1-based line the token starts on.
};

// Tokenizes `source`. Never fails: unterminated constructs are closed at
// end-of-file and bytes that fit no token class become single-char kPunct
// tokens, so rules always get a stream to walk.
std::vector<Token> Lex(std::string_view source);

}  // namespace analyze
}  // namespace wayfinder

#endif  // WAYFINDER_SRC_ANALYZE_LEXER_H_
