#include "src/analyze/lexer.h"

#include <cctype>

namespace wayfinder {
namespace analyze {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-character punctuators, longest first so maximal munch works with a
// simple prefix scan. Only the ones rules could plausibly care about need to
// be grouped correctly; "::" and "->" are the load-bearing entries.
constexpr const char* kPuncts[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "<<", ">>", "<=", ">=", "==",
    "!=", "&&", "||", "++", "--", "+=", "-=", "*=", "/=", "%=", "&=",
    "|=", "^=", ".*",
};

}  // namespace

std::vector<Token> Lex(std::string_view source) {
  std::vector<Token> tokens;
  size_t i = 0;
  int line = 1;
  const size_t n = source.size();

  auto peek = [&](size_t off) -> char {
    return i + off < n ? source[i + off] : '\0';
  };
  auto count_lines = [&](std::string_view text) {
    for (char c : text) {
      if (c == '\n') ++line;
    }
  };

  while (i < n) {
    char c = source[i];

    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }

    // Preprocessor directive: only if '#' is the first non-whitespace byte on
    // the line. Continuation backslashes extend it; embedded // and /* are
    // swallowed conservatively (a multiline /* */ inside a directive ends it
    // at the comment's end, which is fine for wf-lint's purposes).
    if (c == '#') {
      bool at_line_start = true;
      for (size_t back = i; back > 0;) {
        --back;
        char b = source[back];
        if (b == '\n') break;
        if (b != ' ' && b != '\t' && b != '\r') {
          at_line_start = false;
          break;
        }
      }
      if (at_line_start) {
        size_t start = i;
        int start_line = line;
        while (i < n) {
          if (source[i] == '\n') {
            // Continuation only if the last non-CR byte was a backslash.
            size_t back = i;
            bool continued = false;
            while (back > start) {
              --back;
              if (source[back] == '\r') continue;
              continued = source[back] == '\\';
              break;
            }
            if (!continued) break;
            ++line;
          }
          ++i;
        }
        tokens.push_back(
            {TokenKind::kPreprocessor,
             std::string(source.substr(start, i - start)), start_line});
        continue;
      }
    }

    // Line comment.
    if (c == '/' && peek(1) == '/') {
      size_t start = i;
      while (i < n && source[i] != '\n') ++i;
      tokens.push_back({TokenKind::kComment,
                        std::string(source.substr(start, i - start)), line});
      continue;
    }

    // Block comment.
    if (c == '/' && peek(1) == '*') {
      size_t start = i;
      int start_line = line;
      i += 2;
      while (i < n && !(source[i] == '*' && peek(1) == '/')) {
        if (source[i] == '\n') ++line;
        ++i;
      }
      if (i < n) i += 2;  // Consume "*/"; unterminated closes at EOF.
      tokens.push_back({TokenKind::kComment,
                        std::string(source.substr(start, i - start)),
                        start_line});
      continue;
    }

    // Raw string literal: R"delim( ... )delim", with optional encoding
    // prefix. Checked before plain strings and identifiers.
    if ((c == 'R' && peek(1) == '"') ||
        ((c == 'u' || c == 'U' || c == 'L') && peek(1) == 'R' &&
         peek(2) == '"') ||
        (c == 'u' && peek(1) == '8' && peek(2) == 'R' && peek(3) == '"')) {
      size_t start = i;
      int start_line = line;
      while (source[i] != '"') ++i;  // Skip prefix up to the quote.
      ++i;
      std::string delim;
      while (i < n && source[i] != '(') delim.push_back(source[i++]);
      if (i < n) ++i;  // '('
      std::string closer = ")" + delim + "\"";
      size_t end = source.find(closer, i);
      if (end == std::string_view::npos) {
        i = n;
      } else {
        i = end + closer.size();
      }
      std::string text(source.substr(start, i - start));
      tokens.push_back({TokenKind::kString, text, start_line});
      count_lines(text);
      continue;
    }

    // Plain string / char literal (optional encoding prefix).
    {
      size_t quote_off = 0;
      if (c == 'u' && peek(1) == '8' && (peek(2) == '"' || peek(2) == '\'')) {
        quote_off = 2;
      } else if ((c == 'u' || c == 'U' || c == 'L') &&
                 (peek(1) == '"' || peek(1) == '\'')) {
        quote_off = 1;
      } else if (c == '"' || c == '\'') {
        quote_off = 0;
      } else {
        quote_off = static_cast<size_t>(-1);
      }
      if (quote_off != static_cast<size_t>(-1)) {
        char quote = peek(quote_off);
        size_t start = i;
        int start_line = line;
        i += quote_off + 1;
        while (i < n && source[i] != quote) {
          if (source[i] == '\\' && i + 1 < n) {
            i += 2;
            continue;
          }
          if (source[i] == '\n') {
            ++line;  // Unterminated literal; stop at the newline.
            break;
          }
          ++i;
        }
        if (i < n && source[i] == quote) ++i;
        tokens.push_back({quote == '"' ? TokenKind::kString
                                       : TokenKind::kCharLiteral,
                          std::string(source.substr(start, i - start)),
                          start_line});
        continue;
      }
    }

    // Identifier.
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(source[i])) ++i;
      tokens.push_back({TokenKind::kIdentifier,
                        std::string(source.substr(start, i - start)), line});
      continue;
    }

    // Number (pp-number: digits, hex/binary prefixes, exponents, separators,
    // and a leading dot as in `.5`).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      size_t start = i;
      ++i;
      while (i < n) {
        char d = source[i];
        if (IsIdentChar(d) || d == '.' || d == '\'') {
          ++i;
          continue;
        }
        if ((d == '+' || d == '-') && i > start) {
          char prev = source[i - 1];
          if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
            ++i;
            continue;
          }
        }
        break;
      }
      tokens.push_back({TokenKind::kNumber,
                        std::string(source.substr(start, i - start)), line});
      continue;
    }

    // Punctuator: longest multi-char match, else a single byte.
    {
      std::string_view rest = source.substr(i);
      std::string matched;
      for (const char* p : kPuncts) {
        std::string_view pv(p);
        if (rest.substr(0, pv.size()) == pv) {
          matched = std::string(pv);
          break;
        }
      }
      if (matched.empty()) matched = std::string(1, c);
      tokens.push_back({TokenKind::kPunct, matched, line});
      i += matched.size();
      continue;
    }
  }

  return tokens;
}

}  // namespace analyze
}  // namespace wayfinder
