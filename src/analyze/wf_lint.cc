#include "src/analyze/wf_lint.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <sstream>

#include "src/analyze/lexer.h"

namespace wayfinder {
namespace analyze {
namespace {

struct Suppression {
  int comment_line = 0;       // Line the comment starts on.
  int covered_line = 0;       // Line of code the suppression applies to.
  std::vector<std::string> rules;
  bool used = false;
};

void TrimInPlace(std::string& s) {
  size_t b = s.find_first_not_of(" \t");
  size_t e = s.find_last_not_of(" \t");
  s = b == std::string::npos ? std::string() : s.substr(b, e - b + 1);
}

// Parses every suppression marker out of the comment stream. A marker is a
// comment containing kMarker (the word wf-lint, a colon, a space, then
// allow and an open paren — assembled below so this comment is not itself
// a marker). Prose that merely mentions wf-lint is ignored, and a
// misspelled marker simply fails to suppress (the underlying diagnostic
// then fails the build, which is self-correcting). A recognized marker
// with an empty or unknown rule list becomes a bad-suppression diagnostic
// immediately.
std::vector<Suppression> CollectSuppressions(const std::string& path,
                                             const std::vector<Token>& tokens,
                                             std::vector<Diagnostic>* out) {
  std::vector<Suppression> sups;
  const std::string kMarker = std::string("wf-lint: ") + "allow(";
  for (size_t ti = 0; ti < tokens.size(); ++ti) {
    const Token& t = tokens[ti];
    if (t.kind != TokenKind::kComment) continue;
    size_t pos = t.text.find(kMarker);
    if (pos == std::string::npos) continue;

    std::string after = t.text.substr(pos + kMarker.size());
    bool ok = true;
    std::vector<std::string> rules;
    size_t close = after.find(')');
    if (close == std::string::npos) {
      ok = false;
    } else {
      std::stringstream ss(after.substr(0, close));
      std::string item;
      while (std::getline(ss, item, ',')) {
        TrimInPlace(item);
        if (item.empty()) continue;
        rules.push_back(item);
      }
      if (rules.empty()) ok = false;
    }
    if (ok) {
      for (const std::string& r : rules) {
        if (!IsKnownRule(r)) {
          out->push_back({path, t.line, "bad-suppression",
                          "suppression names unknown rule '" + r +
                              "' (see wf_lint --list-rules)"});
          ok = false;
        }
      }
    } else {
      out->push_back({path, t.line, "bad-suppression",
                      "suppression must name its rule: write the marker as "
                      "allow(rule-id) with a justification after it"});
    }
    if (!ok) continue;

    Suppression sup;
    sup.comment_line = t.line;
    sup.rules = std::move(rules);

    // Trailing comment (code earlier on the same line) covers its own line;
    // a standalone comment covers the next line holding code.
    bool trailing = false;
    for (size_t back = ti; back > 0;) {
      --back;
      const Token& b = tokens[back];
      if (b.line < t.line) break;
      if (b.kind != TokenKind::kComment) {
        trailing = true;
        break;
      }
    }
    if (trailing) {
      sup.covered_line = t.line;
    } else {
      int comment_end =
          t.line +
          static_cast<int>(std::count(t.text.begin(), t.text.end(), '\n'));
      sup.covered_line = 0;
      for (size_t fwd = ti + 1; fwd < tokens.size(); ++fwd) {
        const Token& f = tokens[fwd];
        if (f.kind == TokenKind::kComment) continue;
        if (f.line <= comment_end) continue;
        sup.covered_line = f.line;
        break;
      }
      if (sup.covered_line == 0) sup.covered_line = comment_end + 1;
    }
    sups.push_back(std::move(sup));
  }
  return sups;
}

void JsonEscape(const std::string& s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

std::vector<Diagnostic> LintSource(const std::string& rel_path,
                                   std::string_view content) {
  std::vector<Token> tokens = Lex(content);
  std::vector<Diagnostic> meta;  // bad-suppression findings.
  std::vector<Suppression> sups = CollectSuppressions(rel_path, tokens, &meta);

  std::vector<Diagnostic> raw = RunRules(rel_path, tokens);

  std::vector<Diagnostic> kept;
  for (Diagnostic& d : raw) {
    bool suppressed = false;
    for (Suppression& s : sups) {
      if (s.covered_line != d.line) continue;
      if (std::find(s.rules.begin(), s.rules.end(), d.rule) ==
          s.rules.end()) {
        continue;
      }
      s.used = true;
      suppressed = true;
    }
    if (!suppressed) kept.push_back(std::move(d));
  }
  for (const Suppression& s : sups) {
    if (!s.used) {
      std::string names;
      for (const std::string& r : s.rules) {
        if (!names.empty()) names += ", ";
        names += r;
      }
      kept.push_back({rel_path, s.comment_line, "unused-suppression",
                      "suppression for (" + names +
                          ") matches no diagnostic on line " +
                          std::to_string(s.covered_line) +
                          "; delete it (stale suppressions hide future "
                          "violations)"});
    }
  }
  kept.insert(kept.end(), meta.begin(), meta.end());
  std::stable_sort(kept.begin(), kept.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return a.line < b.line;
                   });
  return kept;
}

bool LintFile(const std::string& file_path, const std::string& rel_path,
              std::vector<Diagnostic>* out) {
  std::ifstream in(file_path, std::ios::binary);
  if (!in) {
    out->push_back({rel_path, 0, "io-error", "cannot read file"});
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string content = buf.str();
  std::vector<Diagnostic> diags = LintSource(rel_path, content);
  out->insert(out->end(), diags.begin(), diags.end());
  return true;
}

std::string FormatText(const std::vector<Diagnostic>& diagnostics) {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += d.file + ":" + std::to_string(d.line) + ": [" + d.rule + "] " +
           d.message + "\n";
  }
  return out;
}

std::string FormatJson(const std::vector<Diagnostic>& diagnostics) {
  std::map<std::string, int> by_rule;
  for (const Diagnostic& d : diagnostics) ++by_rule[d.rule];

  std::string out = "{\n  \"diagnostics\": [";
  bool first = true;
  for (const Diagnostic& d : diagnostics) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"file\": \"";
    JsonEscape(d.file, &out);
    out += "\", \"line\": " + std::to_string(d.line) + ", \"rule\": \"";
    JsonEscape(d.rule, &out);
    out += "\", \"message\": \"";
    JsonEscape(d.message, &out);
    out += "\"}";
  }
  out += diagnostics.empty() ? "],\n" : "\n  ],\n";
  out += "  \"by_rule\": {";
  first = true;
  for (const auto& entry : by_rule) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    JsonEscape(entry.first, &out);
    out += "\": " + std::to_string(entry.second);
  }
  out += by_rule.empty() ? "},\n" : "\n  },\n";
  out += "  \"count\": " + std::to_string(diagnostics.size()) + "\n}\n";
  return out;
}

}  // namespace analyze
}  // namespace wayfinder
