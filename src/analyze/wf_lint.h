// wf-lint engine: lex a file, run the in-scope rules (src/analyze/rules.h),
// then apply suppression markers. (The marker spelling is the word wf-lint,
// a colon, then allow + a parenthesized rule list — spelled out here
// obliquely because the engine scans *comments* for the literal sequence,
// and this header gets linted too. See docs/analysis.md for examples.)
//
// Suppression contract (enforced, not advisory):
//   * a suppression names one or more rule ids in its allow-list; anything
//     after the closing paren is the human justification and is ignored by
//     the engine;
//   * a trailing suppression covers its own line; a standalone comment line
//     covers the next line that holds code (so a comment block above the
//     offending statement works);
//   * naming an unknown rule — or writing `wf-lint:` without a parseable
//     allow(...) — is itself a diagnostic (`bad-suppression`);
//   * a suppression that matches no diagnostic is a diagnostic
//     (`unused-suppression`), so stale suppressions cannot accumulate and
//     deleting a load-bearing one always resurfaces the violation.
//
// See docs/analysis.md for the rule catalog and suppression policy.
#ifndef WAYFINDER_SRC_ANALYZE_WF_LINT_H_
#define WAYFINDER_SRC_ANALYZE_WF_LINT_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/analyze/rules.h"

namespace wayfinder {
namespace analyze {

// Lints one file's contents. `rel_path` is the repo-relative path with
// forward slashes — it drives rule scoping, so fixtures can pretend to live
// anywhere in the tree. Returned diagnostics are post-suppression and
// include any bad-suppression / unused-suppression findings, sorted by
// line.
std::vector<Diagnostic> LintSource(const std::string& rel_path,
                                   std::string_view content);

// Reads and lints `file_path`, reporting it as `rel_path`. Returns false
// (and appends an io diagnostic at line 0) when the file cannot be read.
bool LintFile(const std::string& file_path, const std::string& rel_path,
              std::vector<Diagnostic>* out);

// One "path:line: rule: message" line per diagnostic.
std::string FormatText(const std::vector<Diagnostic>& diagnostics);

// Stable JSON: {"diagnostics":[{file,line,rule,message}...],"count":N}
// with per-rule counts under "by_rule" — the CI artifact format
// (tools/bench_compare.py-style: machine-diffable across PRs).
std::string FormatJson(const std::vector<Diagnostic>& diagnostics);

}  // namespace analyze
}  // namespace wayfinder

#endif  // WAYFINDER_SRC_ANALYZE_WF_LINT_H_
